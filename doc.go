// Package gpudpf is a from-scratch Go reproduction of "GPU-based Private
// Information Retrieval for On-Device Machine Learning Inference"
// (Lam et al., ASPLOS 2024): two-server DPF-PIR with the paper's GPU
// execution strategies (modeled on a calibrated V100 device model — see
// DESIGN.md), partial batch retrieval, and the PIR+ML co-design (hot-table
// split, embedding co-location, fixed query budgets), evaluated end to end
// on synthetic MovieLens / Taobao / WikiText-2 stand-ins.
//
// The server request path is unified behind a single layered stack,
// dpf → strategy → store/engine (→ shardnet) → pir/batchpir →
// core/serving → cmd:
//
//   - internal/dpf holds the distributed point function itself: key
//     generation, per-level expansion, and the pruned range evaluation
//     (EvalRange) that makes row-range sharding cheap. Keys terminate
//     early by default (§3.1): the tree walk stops ⌈log₂(λ/w)⌉ = 2 levels
//     above the leaves and each 128-bit terminal seed converts into four
//     32-bit output lanes (LeafValuesInto / LeafRangeInto), cutting PRF
//     work ~4× per query. The wire format is versioned by the magic's low
//     byte — v1 (0xDF01) is the legacy full-depth layout, v2 (0xDF02)
//     adds an early-depth byte, carries bits-early correction words and a
//     group-wide final correction — and both unmarshal and evaluate
//     (golden fixtures per PRF pin both layouts in CI). The PRG layer is
//     batched: every PRF implements ExpandBatch (AES through an AES-NI
//     schedule+encrypt pipeline on amd64 that expands two nodes per asm
//     call with their key schedules pair-interleaved — the second node's
//     rounds hide the first's AESKEYGENASSIST latency — with a pure-Go
//     fallback; the others with hoisted per-call state), and
//     StepBothBatch / LeafValuesInto advance a whole tree frontier per
//     call with zero steady-state allocations. For scalar keys the final
//     level is fused: StepLeafBatch (and FrontierScratch.ExpandLeaves /
//     the membound walker on top of it) folds the terminal-seed →
//     32-bit-lane conversion into the last expansion step, so the tree's
//     widest frontier never round-trips through a buffer.
//   - internal/strategy implements the paper's execution strategies
//     (branch-parallel, level-by-level, memory-bounded fused traversal,
//     cooperative groups, multi-GPU, CPU baseline). Every strategy is
//     shard-aware: RunRange evaluates a batch against a row range,
//     returning partial answer shares that sum to the full answer — and
//     query-tiled: leaf shares for a tile of up to 32 queries are expanded
//     first, then ONE streaming pass over the row range accumulates all
//     the tile's dot products (accumulateTile), so a batch of B queries
//     streams the table ⌈B/32⌉ times instead of B. The accumulate itself
//     is kernel-dispatched like the AES path: on amd64 hosts with AVX2
//     (CPUID-probed at init, OSXSAVE/XCR0 included) rows of 8+ lanes run
//     an assembly kernel that multiply-accumulates 8 lanes per
//     VPMULLD/VPADDD with the answer accumulators held in YMM registers
//     across L1-resident row blocks; other CPUs, narrower rows, and
//     -tags purego builds take the scalar loop. Both are bit-identical
//     (mod-2^32 adds commute; property tests pin every dispatch boundary
//     on both CI legs). RunRangeInto accumulates into caller-provided
//     buffers through pooled scratch. The tile pass also parallelizes:
//     a strategy with Workers > 1 (strategy.WithWorkers wraps any
//     worker-tunable strategy) splits each tile's row range into row
//     blocks fanned across a bounded goroutine pool, each worker
//     accumulating into its own answer buffer through the same
//     AVX2/scalar dispatch, merged lane-wise mod 2^32 afterwards —
//     bit-identical to the sequential pass for every worker count,
//     strategy, PRF and fragmented view (property-tested on both CI
//     kernel legs). The memory-bounded walker additionally pipelines
//     tiles: tile N+1's leaf expansion (PRF-bound) overlaps tile N's
//     table stream (memory-bound) through double-buffered pooled leaf
//     scratch.
//   - internal/store owns the serving table: an epoch-versioned Store
//     whose snapshots are chunk-iterable views. Readers pin an immutable
//     Snapshot (one atomic refcount — no lock, no waiting on writers)
//     and stream it through the strategy.TableView contract — Chunks
//     yields maximal contiguous runs, so the in-RAM backing costs one
//     callback while delta-overlaid and paged epochs fragment
//     transparently. Updates are O(writes), not O(table): Apply /
//     Prepare install a sorted patch layer over the shared base, reads
//     merge overlays during iteration, and the chain compacts past a
//     configurable depth (paged bases fold to a single overlay — the
//     table is never materialized in RAM). store.PagedBacking serves
//     tables larger than memory from a file through a fixed-size-page
//     LRU cache (pirserver -table-file/-pagecache — single servers and
//     -shardnode instances alike), bit-identical to the in-RAM path and
//     CI-enforced with the cache budget a quarter of the table. The
//     paged read path is allocation-bounded and overlapped: evicted
//     page buffers recycle through a small free pool (a steady-state
//     streaming pass allocates nothing per page — AllocsPerRun-
//     enforced), little-endian hosts read file bytes directly into the
//     page's word buffer with no staging copy, and an async prefetcher
//     loads the next page while the strategy kernel consumes the
//     current one. Rollback semantics survive every backing shape:
//     superseded backings recycle once their last reader releases, an
//     aborted epoch rolls back to its retained predecessor, and
//     aborted epoch NUMBERS are burned — never reissued — so a stale
//     partial can never epoch-match a later, different table.
//   - internal/engine is the one seam every answer flows through: the
//     Backend interface plus the sharded Replica, which owns its table
//     through a store.Store, pins ONE snapshot per answer batch (the
//     whole batch sees one epoch; a concurrent update neither blocks nor
//     tears it — there is no Update/Answer lock at all), partitions the
//     rows into contiguous ranges and fans each key batch across a
//     bounded worker pool, merging per-shard partial sums in place.
//     When the worker budget exceeds the shard count, the surplus is
//     handed down into the strategy layer (strategy.WithWorkers), so a
//     few-shard replica on a wide machine still uses every core for the
//     row-block parallel accumulate; the analytic device-model counters
//     are unchanged by either fan-out.
//     Unmarshaled keys and shard partials are pooled, so the steady-state
//     Answer allocates nothing beyond the returned answer slices
//     (enforced by AllocsPerRun tests). The replica pins one
//     early-termination depth (Config.EarlyBits; default = what
//     pir.NewClient emits) and rejects mismatched keys at validation with
//     the configured PRF and the key's parsed wire version in the error —
//     the tiled walkers need depth-uniform batches. The seam is
//     range-aware (RangeBackend: AnswerRange returns partial shares for a
//     row sub-range) and epoch-aware (EpochRangeBackend tags partials
//     with the epoch they were computed at; EpochBackend carries
//     UpdateBatch and the two-phase update ops), which is what lets
//     engine.Cluster split one logical replica's row domain across N
//     shard backends — in-process replicas or remote nodes — fan each
//     batch out concurrently, and merge the per-shard partial sums
//     lane-wise mod 2^32, bit-identical to a single process. The merge
//     refuses partials from different epochs (a batch that straddles an
//     update commit re-fans; a persistent mismatch fails loudly with
//     ErrMixedEpoch), Cluster.UpdateBatch installs a multi-row update
//     all-or-nothing across every member via the epoch handshake
//     (prepare the target epoch everywhere, commit only when all ack, a
//     straggler aborts/rolls back everywhere), and each ClusterShard is a
//     replica GROUP: N members holding the same rows (the legacy
//     Backend/Standby pair still compiles, as a one- or two-member
//     group). Answer batches load-balance across the group's healthy
//     members (least-loaded with a rotating tiebreak), a member that dies
//     mid-batch is retried transparently on the next, and per-member
//     health is tracked — consecutive failures trip a breaker, a tripped
//     member sits out a backoff cooldown and is re-admitted through a
//     cheap Ping probe. The epoch handshake runs over every reachable
//     member; one that missed epochs is quarantined (refused by the merge
//     check rather than silently blended) until Cluster.Heal streams a
//     healthy peer's pinned snapshot into it — via SnapshotSink when the
//     member adopts snapshots directly, else over the epoch-update wire
//     ops — and provably lands it on the current epoch before lifting the
//     quarantine. A shard with no working member fails the batch with a
//     *ShardError enumerating every member by name with its own error; a
//     mixed-configuration member set (PRF, early depth, party, shape, or
//     a node assigned rows it does not hold — any member) is refused at
//     construction.
//   - internal/shardnet is the network form of that seam: a Server
//     exposes any RangeBackend over TCP and a pooled Client implements
//     it against a remote node. Frames are length-prefixed binary
//     (capped both ways, marshaled dpf keys carried as-is); gob appears
//     only inside the handshake frame, which pins the protocol version,
//     PRF, early-termination depth and party — rejections name both
//     sides' values — and advertises the table shape, the row range the
//     node holds, and (protocol v2) its current table epoch. Answer
//     responses carry the epoch their partials were computed at, and the
//     UpdateBatch / Epoch / PrepareUpdate / CommitUpdate / AbortUpdate
//     RPCs extend the epoch handshake across machines (batch writes are
//     held to the node's advertised row range, like answers). Protocol v3
//     adds the replica-group RPCs: Ping, the liveness probe behind the
//     cluster's health breaker, and SnapshotMeta / SnapshotChunk, which
//     stream a node's pinned table snapshot in capped, offset-resumable
//     frames (every chunk restates epoch, row range and offset, and the
//     client verifies the echo) so a stale member heals from a healthy
//     peer without a restart. A Client whose dial fails backs off with
//     seeded exponential jitter and fails fast inside the window — a
//     front retrying a dead member burns microseconds, not a TCP connect
//     timeout per attempt. Context deadlines and cancellation propagate
//     to connection deadlines, so a slow shard costs the caller its
//     deadline, not a hang.
//   - internal/pir and internal/batchpir are thin protocol adapters over
//     engine replicas: the two-server PIR protocol of §3.1 and the partial
//     batch retrieval scheme of §4.1 (bins answered concurrently).
//   - internal/core wires the private on-device inference service (both
//     parties queried concurrently); internal/serving adds the batching
//     front door and the load/latency simulator.
//   - cmd/pirserver serves real TCP traffic through the same
//     batcher+engine path the benchmarks measure; cmd/pirclient queries
//     it (and load-tests it with -repeat). With -shardnode i/n an
//     instance serves rows [i·rows/n, (i+1)·rows/n) over the shardnet
//     protocol (building, and paging in, only its own slice of the
//     deterministic table); with -cluster addr,... an instance holds no
//     rows and fronts a distributed replica over those nodes behind the
//     unchanged client protocol; -standby lists one standby node per
//     shard (empty slots allowed) for transparent mid-batch failover,
//     and -group generalizes both to N-member replica groups (members
//     separated by |, shards by comma). A shard node started with
//     -join peer pulls the peer's current snapshot over the v3 RPCs
//     before serving, so a replaced member catches up to the cluster's
//     epoch instead of rejoining stale.
//     -refresh/-refreshrows drive the transparent update path as a
//     deterministic background load — each generation's rows and values
//     derive from (seed, generation), so both parties rewrite identical
//     content; a single server installs each batch as one store epoch, a
//     cluster front runs the epoch handshake across all nodes and
//     standbys. SIGTERM/SIGINT shut down gracefully: stop accepting,
//     drain the in-flight batcher batches, close shardnet
//     serving/clients. Choose in-process shards (-shards)
//     while one machine's cores and memory suffice — no serialization,
//     no network hop; choose a cluster when the table or the PRF load
//     outgrows one machine, at the cost of one LAN round-trip and the
//     key batch being sent to every shard node.
//
// The implementation lives under internal/; see README.md for the layout,
// examples/ for runnable scenarios, and bench_test.go plus
// internal/engine's BenchmarkEngineAnswer for the per-artifact benchmark
// targets.
//
// # Reading the bench JSON
//
// cmd/benchjson measures the seed per-query hot path against the
// tiled/batched one and writes BENCH_hotpath.json. Each entry in "cases"
// is one (path, batch) measurement: "seed" is the pre-tiling per-query
// implementation evaluating full-depth (wire v1) keys, "tiled" the
// current hot path evaluating keys at the "early" termination depth,
// "tiled-paged" the same path reading the table out-of-core at a
// quarter-table page cache (its ratio over "tiled" is the paging tax),
// and "tiled-par" / "tiled-paged-par" their parallel variants with the
// table stream fanned across a worker per core. The sequential cases
// are pinned to GOMAXPROCS=1 ("gomaxprocs") so they compare against the
// committed single-threaded baseline on any host; the par cases run at
// the machine's full width ("gomaxprocs_par") — on a single-core host
// they degrade to the sequential path, so only compare them when
// gomaxprocs_par > 1. ns_per_op is one whole batch,
// qps = batch / seconds_per_op,
// mb_per_sec is the table-streaming bandwidth the §3.2.4 traffic model
// implies (mandatory table-pass bytes / wall time — how close the answer
// kernel gets to memory bandwidth), and allocs_per_op should stay in
// single digits for "tiled" (the seed path allocates per tree node).
// "speedup_tiled_over_seed" maps batch size → throughput ratio; CI's
// bench job regenerates the file as an artifact on every run, so the
// trajectory of these numbers is the repo's performance history — and its
// regression gate (benchjson -compare) fails the job if the speedup drops
// >15% below the committed file on any shared batch or tiled allocs/op
// leave single digits (ratios, not absolute ns/op: CI hardware differs
// from the machine that wrote the committed file), while -minqps adds an
// absolute batch-32 tiled-throughput floor that catches kernel
// regressions the ratio alone would miss, and its "par:32=..." entry
// floors the tiled-par case at 2× the sequential floor — the multi-core
// CI runners must show a real row-block-parallel speedup even though the
// single-core baseline host cannot measure one. With the SIMD answer
// kernel and pair-interleaved AES pipeline the committed file shows tiled
// batch-32 at ~50 ms/op (~640-690 QPS single-threaded, 13–15× the seed
// path, up from 76 ms / 8.4× scalar).
//
// # Reading the serving bench JSON
//
// cmd/pirload drives a running pirserver open-loop — arrivals fire at
// their scheduled offsets regardless of how many requests are in flight,
// so queueing collapse shows up as latency instead of silently throttling
// the workload — and writes BENCH_serving.json. "config" echoes the full
// workload parameterization (seed, client population, Zipf skew, offered
// qps, update fraction, conns); "schedule_fingerprint" hashes the expanded
// schedule, so two artifacts are comparable exactly when their
// fingerprints match (same seed ⇒ same fingerprint, bit-reproducibly).
// "offered_qps" is the schedule's arrival rate and "achieved_qps" counts
// only OK completions against wall time; their ratio is the
// machine-robust throughput signal. "latency" holds accepted-request
// p50/p95/p99/p999 in milliseconds measured from each op's SCHEDULED
// arrival (client-side queueing is charged to the server, as §6's
// serving experiments do); "counts" splits outcomes into ok / shed
// (admission refusals carrying the named overload error over the wire) /
// errors (everything else — any nonzero value fails the gate);
// "epoch_retries" is the server's mixed-epoch re-fan delta across the
// run, matching engine.Cluster's ErrMixedEpoch counter. The committed
// baseline (16384 rows, 400 offered QPS, 2% updates) achieves ~403/404
// QPS with p50 ≈ 4ms and p99 ≈ 8ms on the baseline host; CI's
// serving-bench job re-runs the same seed and gates on fingerprint
// equality, zero errors, achieved/offered within 0.10 of baseline, shed
// fraction within 0.05, and p99 inside max(4× baseline, 250ms).
//
// # CI matrix
//
// Beyond the amd64 vet/build/race-test job, CI runs the full test suite
// under -tags purego (the pure-Go AES fallback — the golden key fixtures
// prove it agrees byte-for-byte with the AES-NI path) and cross-builds
// linux/arm64 (with and without purego) and darwin/arm64, so the asm
// stubs and build-tag plumbing stay honest on every push. Two dedicated
// kernel-equivalence legs run the SIMD-vs-scalar, pair2-vs-pair,
// fused-vs-unfused, and parallel-vs-sequential property tests once under
// GOAMD64=v3 (asm kernels alongside AVX2 compiler codegen) and once
// under -tags purego (every dispatch collapsed to its scalar fallback),
// so the row-block parallel accumulate's bit-identity holds over both
// kernels. The distributed
// job runs the cluster integration and fault-injection suites (shard
// killed mid-batch with and without surviving group members, a replica
// group degraded to one live member, slow shard against a context
// deadline, handshake mismatches, cluster updates dying at prepare or
// commit, a stale member quarantined and healed over the snapshot RPCs
// under refresh churn, concurrent Update/Answer hammering over the
// epoch-versioned store, and shardnet nodes serving their row slice
// from -table-file paged stores bit-identical to in-RAM nodes over
// TCP) under -race and once under -tags purego, and
// smoke-runs the fuzz targets (the dpf key parser seeded from the golden
// fixtures, the shardnet frame codecs — handshake frames with the epoch
// field included, plus the v3 snapshot-transfer frames both ways — and
// the capped gob reader guarding pir.Serve) for a short -fuzztime on
// every push. The serving-bench job boots a real pirserver with admission
// control, drives it with pirload at the committed baseline's seed, gates
// the resulting BENCH_serving.json against the committed one, and shuts
// the server down with SIGTERM (a non-zero exit from the drain fails the
// job).
package gpudpf
