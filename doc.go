// Package gpudpf is a from-scratch Go reproduction of "GPU-based Private
// Information Retrieval for On-Device Machine Learning Inference"
// (Lam et al., ASPLOS 2024): two-server DPF-PIR with the paper's GPU
// execution strategies (modeled on a calibrated V100 device model — see
// DESIGN.md), partial batch retrieval, and the PIR+ML co-design (hot-table
// split, embedding co-location, fixed query budgets), evaluated end to end
// on synthetic MovieLens / Taobao / WikiText-2 stand-ins.
//
// The server request path is unified behind a single layered stack,
// dpf → strategy → engine → pir/batchpir → core/serving → cmd:
//
//   - internal/dpf holds the distributed point function itself: key
//     generation, per-level expansion, and the pruned range evaluation
//     (EvalRange) that makes row-range sharding cheap. Keys terminate
//     early by default (§3.1): the tree walk stops ⌈log₂(λ/w)⌉ = 2 levels
//     above the leaves and each 128-bit terminal seed converts into four
//     32-bit output lanes (LeafValuesInto / LeafRangeInto), cutting PRF
//     work ~4× per query. The wire format is versioned by the magic's low
//     byte — v1 (0xDF01) is the legacy full-depth layout, v2 (0xDF02)
//     adds an early-depth byte, carries bits-early correction words and a
//     group-wide final correction — and both unmarshal and evaluate
//     (golden fixtures per PRF pin both layouts in CI). The PRG layer is
//     batched: every PRF implements ExpandBatch (AES through an AES-NI
//     schedule+encrypt pipeline on amd64, with a pure-Go fallback; the
//     others with hoisted per-call state), and StepBothBatch /
//     LeafValuesInto advance a whole tree frontier per call with zero
//     steady-state allocations.
//   - internal/strategy implements the paper's execution strategies
//     (branch-parallel, level-by-level, memory-bounded fused traversal,
//     cooperative groups, multi-GPU, CPU baseline). Every strategy is
//     shard-aware: RunRange evaluates a batch against a row range,
//     returning partial answer shares that sum to the full answer — and
//     query-tiled: leaf shares for a tile of up to 32 queries are expanded
//     first, then ONE streaming pass over the row range accumulates all
//     the tile's dot products (accumulateTile), so a batch of B queries
//     streams the table ⌈B/32⌉ times instead of B. RunRangeInto
//     accumulates into caller-provided buffers through pooled scratch.
//   - internal/engine is the one seam every answer flows through: the
//     Backend interface plus the sharded Replica, which partitions a table
//     into contiguous row ranges and fans each key batch across a bounded
//     worker pool, merging per-shard partial sums in place. Unmarshaled
//     keys and shard partials are pooled, so the steady-state Answer
//     allocates nothing beyond the returned answer slices (enforced by
//     AllocsPerRun tests). The replica pins one early-termination depth
//     (Config.EarlyBits; default = what pir.NewClient emits) and rejects
//     mismatched keys at validation with the configured PRF and the key's
//     parsed wire version in the error — the tiled walkers need
//     depth-uniform batches. Future backends (GPU simulation,
//     multi-device, remote shards) plug in here.
//   - internal/pir and internal/batchpir are thin protocol adapters over
//     engine replicas: the two-server PIR protocol of §3.1 and the partial
//     batch retrieval scheme of §4.1 (bins answered concurrently).
//   - internal/core wires the private on-device inference service (both
//     parties queried concurrently); internal/serving adds the batching
//     front door and the load/latency simulator.
//   - cmd/pirserver serves real TCP traffic through the same
//     batcher+engine path the benchmarks measure; cmd/pirclient queries
//     it (and load-tests it with -repeat).
//
// The implementation lives under internal/; see README.md for the layout,
// examples/ for runnable scenarios, and bench_test.go plus
// internal/engine's BenchmarkEngineAnswer for the per-artifact benchmark
// targets.
//
// # Reading the bench JSON
//
// cmd/benchjson measures the seed per-query hot path against the
// tiled/batched one and writes BENCH_hotpath.json. Each entry in "cases"
// is one (path, batch) measurement: "seed" is the pre-tiling per-query
// implementation evaluating full-depth (wire v1) keys, "tiled" the
// current hot path evaluating keys at the "early" termination depth;
// ns_per_op is one whole batch, qps = batch / seconds_per_op, and
// allocs_per_op should stay in single digits for "tiled" (the seed path
// allocates per tree node). "speedup_tiled_over_seed" maps batch size →
// throughput ratio; CI's bench job regenerates the file as an artifact on
// every run, so the trajectory of these numbers is the repo's performance
// history — and its regression gate (benchjson -compare) fails the job if
// the speedup drops >15% below the committed file on any shared batch or
// tiled allocs/op leave single digits (ratios, not absolute ns/op: CI
// hardware differs from the machine that wrote the committed file).
//
// # CI matrix
//
// Beyond the amd64 vet/build/race-test job, CI runs the full test suite
// under -tags purego (the pure-Go AES fallback — the golden key fixtures
// prove it agrees byte-for-byte with the AES-NI path) and cross-builds
// linux/arm64 (with and without purego) and darwin/arm64, so the asm
// stubs and build-tag plumbing stay honest on every push.
package gpudpf
