// Package gpudpf is a from-scratch Go reproduction of "GPU-based Private
// Information Retrieval for On-Device Machine Learning Inference"
// (Lam et al., ASPLOS 2024): two-server DPF-PIR with the paper's GPU
// execution strategies (modeled on a calibrated V100 device model — see
// DESIGN.md), partial batch retrieval, and the PIR+ML co-design (hot-table
// split, embedding co-location, fixed query budgets), evaluated end to end
// on synthetic MovieLens / Taobao / WikiText-2 stand-ins.
//
// The implementation lives under internal/; see README.md for the layout,
// examples/ for runnable scenarios, and bench_test.go for the per-artifact
// benchmark targets.
package gpudpf
