// Package gpudpf is a from-scratch Go reproduction of "GPU-based Private
// Information Retrieval for On-Device Machine Learning Inference"
// (Lam et al., ASPLOS 2024): two-server DPF-PIR with the paper's GPU
// execution strategies (modeled on a calibrated V100 device model — see
// DESIGN.md), partial batch retrieval, and the PIR+ML co-design (hot-table
// split, embedding co-location, fixed query budgets), evaluated end to end
// on synthetic MovieLens / Taobao / WikiText-2 stand-ins.
//
// The server request path is unified behind a single layered stack,
// dpf → strategy → engine → pir/batchpir → core/serving → cmd:
//
//   - internal/dpf holds the distributed point function itself: key
//     generation, per-level expansion, and the pruned range evaluation
//     (EvalRange) that makes row-range sharding cheap.
//   - internal/strategy implements the paper's execution strategies
//     (branch-parallel, level-by-level, memory-bounded fused traversal,
//     cooperative groups, multi-GPU, CPU baseline). Every strategy is
//     shard-aware: RunRange evaluates a batch against a row range,
//     returning partial answer shares that sum to the full answer.
//   - internal/engine is the one seam every answer flows through: the
//     Backend interface plus the sharded Replica, which partitions a table
//     into contiguous row ranges and fans each key batch across a bounded
//     worker pool, merging per-shard partial sums. Future backends (GPU
//     simulation, multi-device, remote shards) plug in here.
//   - internal/pir and internal/batchpir are thin protocol adapters over
//     engine replicas: the two-server PIR protocol of §3.1 and the partial
//     batch retrieval scheme of §4.1 (bins answered concurrently).
//   - internal/core wires the private on-device inference service (both
//     parties queried concurrently); internal/serving adds the batching
//     front door and the load/latency simulator.
//   - cmd/pirserver serves real TCP traffic through the same
//     batcher+engine path the benchmarks measure; cmd/pirclient queries
//     it (and load-tests it with -repeat).
//
// The implementation lives under internal/; see README.md for the layout,
// examples/ for runnable scenarios, and bench_test.go plus
// internal/engine's BenchmarkEngineAnswer for the per-artifact benchmark
// targets.
package gpudpf
