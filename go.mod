module gpudpf

go 1.22
