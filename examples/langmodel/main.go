// Langmodel: private next-word prediction. The word-embedding table of an
// LSTM language model stays on the servers; the phone privately fetches
// the embeddings of the words in its context window and runs the recurrent
// model locally — the paper's WikiText-2 scenario.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gpudpf/internal/codesign"
	"gpudpf/internal/core"
	"gpudpf/internal/data"
	"gpudpf/internal/ml"
	"gpudpf/internal/netsim"
)

func main() {
	cfg := data.LMConfig{
		Vocab: 512, TrainTokens: 12000, TestTokens: 400,
		ZipfS: 1.1, BigramFollow: 0.7, Succ: 3, Seed: 3,
	}
	ds, err := data.GenLM(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Train the LM offline.
	const window = 16
	rng := rand.New(rand.NewSource(5))
	model := ml.NewLSTM(cfg.Vocab, 32, 24, rng)
	for epoch := 0; epoch < 6; epoch++ {
		for off := 0; off+window+1 <= len(ds.Train); off += window {
			model.TrainStep(ds.Train[off:off+window+1], 0.1)
		}
	}

	// Deploy the embedding table behind co-designed PIR: word frequency is
	// Zipf (hot table) and words co-occur in windows (co-location).
	trainTraces := ds.Traces(window, true)
	freq := data.Freq(trainTraces, cfg.Vocab)
	cooc := data.Cooccur(trainTraces, cfg.Vocab, 4)
	// A deliberately tight budget (4+4 queries for ~13 distinct words per
	// window) so the drop/quality trade-off is visible.
	layout, err := codesign.BuildLayout(cfg.Vocab, 32, freq, cooc, codesign.Params{
		C: 4, HotRows: 64, QHot: 4, QFull: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := core.New(core.Config{
		Layout: layout, Freq: freq, CacheEntries: 64,
		Link: netsim.FourG(), Seed: 9,
	}, model.Emb.Export())
	if err != nil {
		log.Fatal(err)
	}

	// Online: evaluate the test stream while fetching embeddings
	// privately; dropped words degrade to zero vectors, nothing else
	// changes.
	var nll, cleanNLL float64
	windows := 0
	droppedTotal := 0
	for off := 0; off+window <= len(ds.Test); off += window {
		tokens := ds.Test[off : off+window]
		wanted := map[uint64]bool{}
		var lookups []uint64
		for _, tok := range tokens {
			if !wanted[uint64(tok)] {
				wanted[uint64(tok)] = true
				lookups = append(lookups, uint64(tok))
			}
		}
		rows, tr, err := svc.FetchEmbeddings(lookups)
		if err != nil {
			log.Fatal(err)
		}
		droppedTotal += tr.Dropped
		dropped := map[int]bool{}
		for _, tok := range lookups {
			if _, ok := rows[tok]; !ok {
				dropped[int(tok)] = true
			}
		}
		nll += model.NLL(tokens, dropped)
		cleanNLL += model.NLL(tokens, nil)
		windows++
	}
	ppl := ml.PerplexityFromNLL(nll / float64(windows))
	clean := ml.PerplexityFromNLL(cleanNLL / float64(windows))
	fmt.Printf("private next-word prediction over %d windows\n", windows)
	fmt.Printf("perplexity with private fetches: %.1f (clean: %.1f, uniform: %d)\n", ppl, clean, cfg.Vocab)
	fmt.Printf("%d lookups dropped by the fixed query budgets across the whole stream\n", droppedTotal)
}
