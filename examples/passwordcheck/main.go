// Passwordcheck: compromised-credential checking via PIR — the paper's
// example of a non-ML application of the GPU DPF (§1.1). The breached-
// password corpus is bucketed by a hash prefix; the client privately
// retrieves its password's bucket and checks membership locally. Unlike
// the k-anonymity scheme deployed in practice (which reveals a hash
// prefix), PIR reveals nothing at all about the password.
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"log"

	"gpudpf/internal/pir"
)

const (
	bucketBits = 12 // 4096 buckets
	slotBytes  = 8  // truncated digest per breached password
	slots      = 16 // bucket capacity
)

func bucketOf(digest []byte) uint64 {
	return uint64(binary.LittleEndian.Uint16(digest)) % (1 << bucketBits)
}

func main() {
	breached := []string{
		"123456", "password", "qwerty", "letmein", "hunter2",
		"iloveyou", "dragon", "monkey", "sunshine", "princess",
	}

	// Server-side preprocessing: bucket truncated digests.
	table, err := pir.NewTable(1<<bucketBits, slots*slotBytes/4)
	if err != nil {
		log.Fatal(err)
	}
	fill := make(map[uint64]int)
	for _, pw := range breached {
		d := sha256.Sum256([]byte(pw))
		b := bucketOf(d[:])
		slot := fill[b]
		if slot >= slots {
			log.Fatalf("bucket %d overflow; grow the table", b)
		}
		fill[b]++
		row := table.Row(int(b))
		for i := 0; i < slotBytes/4; i++ {
			row[slot*slotBytes/4+i] = binary.LittleEndian.Uint32(d[4+i*4:])
		}
	}

	// Client and servers must agree on the PRF; ChaCha20 is the paper's
	// recommended standard-strength choice for GPU servers.
	client, err := pir.NewClient("chacha20", table.NumRows, nil)
	if err != nil {
		log.Fatal(err)
	}
	s0, err := pir.NewServer(0, table, pir.WithPRG("chacha20"))
	if err != nil {
		log.Fatal(err)
	}
	s1, err := pir.NewServer(1, table, pir.WithPRG("chacha20"))
	if err != nil {
		log.Fatal(err)
	}
	session := &pir.TwoServer{Client: client, E0: pir.InProcess{Server: s0}, E1: pir.InProcess{Server: s1}}

	check := func(pw string) bool {
		d := sha256.Sum256([]byte(pw))
		rows, _, err := session.Fetch([]uint64{bucketOf(d[:])})
		if err != nil {
			log.Fatal(err)
		}
		row := rows[0]
		for slot := 0; slot < slots; slot++ {
			match := true
			for i := 0; i < slotBytes/4; i++ {
				if row[slot*slotBytes/4+i] != binary.LittleEndian.Uint32(d[4+i*4:]) {
					match = false
					break
				}
			}
			if match && row[slot*slotBytes/4] != 0 {
				return true
			}
		}
		return false
	}

	for _, pw := range []string{"hunter2", "correct-horse-battery-staple", "password", "gpudpf-rocks"} {
		status := "OK (not in breach corpus)"
		if check(pw) {
			status = "COMPROMISED — appears in breach corpus"
		}
		fmt.Printf("%-32q %s\n", pw, status)
	}
	fmt.Printf("\neach check cost one %dB key per server; the servers never saw the password or its hash\n",
		client.KeyBytes())
}
