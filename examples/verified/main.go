// Verified: authenticated private retrieval. The table owner publishes a
// Merkle root; the client fetches a row *and* its authentication path via
// PIR (each tree level is its own PIR table), so a malicious server that
// tampers with answers is caught — while the queried index still never
// leaves the device. This extends the paper's honest-but-curious model
// toward the malicious setting it sketches in §2.1.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gpudpf/internal/integrity"
	"gpudpf/internal/pir"
)

func main() {
	// The model owner builds the table and publishes the commitment.
	const rows, lanes = 4096, 16
	table, err := pir.NewTable(rows, lanes)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2024))
	for i := range table.Data {
		table.Data[i] = rng.Uint32()
	}
	com, err := integrity.Commit(table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published Merkle root: %x...\n", com.Root[:8])

	connect := func(tab *pir.Table, n int) (*pir.TwoServer, error) {
		s0, err := pir.NewServer(0, tab)
		if err != nil {
			return nil, err
		}
		s1, err := pir.NewServer(1, tab)
		if err != nil {
			return nil, err
		}
		c, err := pir.NewClient("aes128", n, nil)
		if err != nil {
			return nil, err
		}
		return &pir.TwoServer{Client: c, E0: pir.InProcess{Server: s0}, E1: pir.InProcess{Server: s1}}, nil
	}
	session, err := integrity.NewVerifiedSession(com, table, connect)
	if err != nil {
		log.Fatal(err)
	}

	const secret = 1234
	row, stats, err := session.Fetch(secret)
	if err != nil {
		log.Fatal(err)
	}
	if row[0] != table.Row(secret)[0] {
		log.Fatal("row mismatch")
	}
	fmt.Printf("row %d fetched and VERIFIED against the root (%d levels, %.1fKB total)\n",
		secret, len(com.Levels), float64(stats.Total())/1024)

	// Now a malicious party-1 server tampers with one table entry.
	evil := &pir.Table{NumRows: rows, Lanes: lanes, Data: append([]uint32{}, table.Data...)}
	evil.Row(7)[0] ^= 1
	firstTable := true
	evilConnect := func(tab *pir.Table, n int) (*pir.TwoServer, error) {
		t1 := tab
		if firstTable {
			t1 = evil
			firstTable = false
		}
		s0, err := pir.NewServer(0, tab)
		if err != nil {
			return nil, err
		}
		s1, err := pir.NewServer(1, t1)
		if err != nil {
			return nil, err
		}
		c, err := pir.NewClient("aes128", n, nil)
		if err != nil {
			return nil, err
		}
		return &pir.TwoServer{Client: c, E0: pir.InProcess{Server: s0}, E1: pir.InProcess{Server: s1}}, nil
	}
	evilSession, err := integrity.NewVerifiedSession(com, table, evilConnect)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := evilSession.Fetch(secret); err != nil {
		fmt.Printf("tampered server detected: %v\n", err)
	} else {
		log.Fatal("tampering went undetected!")
	}
	fmt.Println("(PIR answers are linear in the whole table, so even a single tampered row corrupts every response — tampering is loud)")
}
