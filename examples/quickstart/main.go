// Quickstart: privately retrieve one row from a table replicated across
// two non-colluding servers. Neither server learns the queried index; the
// client adds the two answer shares to recover the row exactly.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gpudpf/internal/pir"
)

func main() {
	// 1. Both servers hold an identical embedding table (64K rows × 64B).
	const rows, lanes = 65536, 16
	table, err := pir.NewTable(rows, lanes)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := range table.Data {
		table.Data[i] = rng.Uint32()
	}
	server0, err := pir.NewServer(0, table)
	if err != nil {
		log.Fatal(err)
	}
	server1, err := pir.NewServer(1, table)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The client encodes its secret index into one key per server.
	client, err := pir.NewClient("aes128", rows, nil)
	if err != nil {
		log.Fatal(err)
	}
	session := &pir.TwoServer{
		Client: client,
		E0:     pir.InProcess{Server: server0}, // swap for pir.Dial(...) over TCP
		E1:     pir.InProcess{Server: server1},
	}

	const secretIndex = 31337
	got, stats, err := session.Fetch([]uint64{secretIndex})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The reconstruction is bit-exact.
	want := table.Row(secretIndex)
	for l := range want {
		if got[0][l] != want[l] {
			log.Fatalf("lane %d mismatch", l)
		}
	}
	fmt.Printf("privately fetched row %d from a %d-row table\n", secretIndex, rows)
	fmt.Printf("each server saw a %dB key that is indistinguishable from any other index\n", client.KeyBytes())
	fmt.Printf("total communication: %dB up, %dB down\n", stats.UpBytes, stats.DownBytes)
}
