// Recommendation: the paper's headline scenario (Figure 1b). A phone ranks
// candidate items with a small on-device MLP whose inputs include the
// user's private interaction history. The history embeddings live in a
// server-side table that is too large to ship to devices, so every lookup
// goes through the co-design-preprocessed two-server PIR path: hot-table
// split, co-location, fixed query budgets, and a client-side cache
// exploiting session locality (§2.3).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gpudpf/internal/codesign"
	"gpudpf/internal/core"
	"gpudpf/internal/data"
	"gpudpf/internal/ml"
	"gpudpf/internal/netsim"
)

func main() {
	// Synthetic MovieLens-style dataset: Zipf popularity + genre
	// co-occurrence, with per-user sessions.
	cfg := data.RecConfig{
		Name: "movielens", Items: 2048, Genres: 8, Candidates: 100,
		HistoryLen: 16, ZipfS: 1.2, Train: 2000, Test: 200,
		SessionLen: 6, Seed: 1,
	}
	ds, err := data.GenRec(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Train the embedding table + on-device MLP (offline, server side).
	const dim = 16
	rng := rand.New(rand.NewSource(99))
	emb := ml.NewEmbedding(cfg.Items, dim, rng)
	mlp := ml.NewMLP(dim+cfg.Genres, 24, rng)
	feats := func(s data.RecSample, pooled ml.Vec) ml.Vec {
		x := make(ml.Vec, dim+cfg.Genres)
		copy(x, pooled)
		x[dim+s.CandGenre] = 1
		return x
	}
	for epoch := 0; epoch < 4; epoch++ {
		for _, s := range ds.Train {
			pooled := make(ml.Vec, dim)
			emb.Bag(pooled, s.History, nil)
			_, dx := mlp.TrainStep(feats(s, pooled), s.Label, 0.05)
			emb.BagGrad(dx[:dim], s.History, nil, 0.4)
		}
	}

	// Deploy: preprocess the serving layout from training statistics.
	traces := ds.Traces(true)
	freq := data.Freq(traces, cfg.Items)
	cooc := data.Cooccur(traces, cfg.Items, 4)
	layout, err := codesign.BuildLayout(cfg.Items, dim, freq, cooc, codesign.Params{
		C: 2, HotRows: 100, QHot: 4, QFull: 24,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := core.New(core.Config{
		Layout:       layout,
		Freq:         freq,
		CacheEntries: 256,
		Link:         netsim.FourG(),
		Seed:         7,
	}, emb.Export())
	if err != nil {
		log.Fatal(err)
	}

	// Online: a user session of private inferences.
	fmt.Println("private on-device recommendation session:")
	var scores, labels []float64
	var totalComm int64
	hits, wanted := 0, 0
	for i, s := range ds.Test[:30] {
		rows, tr, err := svc.FetchEmbeddings(s.History)
		if err != nil {
			log.Fatal(err)
		}
		pooled := make(ml.Vec, dim)
		ml.BagFrom(pooled, rows, s.History)
		p := mlp.Predict(feats(s, pooled))
		scores = append(scores, p)
		labels = append(labels, s.Label)
		totalComm += tr.Comm.Total()
		hits += tr.CacheHits
		wanted += tr.Wanted
		if i < 3 {
			fmt.Printf("  inference %d: %d lookups (%d cached, %d dropped), %s total latency, %.1fKB\n",
				i, tr.Wanted, tr.CacheHits, tr.Dropped, tr.TotalLatency().Round(1e6), float64(tr.Comm.Total())/1024)
		}
	}
	fmt.Printf("session AUC over 30 private inferences: %.3f\n", ml.AUC(scores, labels))
	fmt.Printf("cache hit rate %.0f%% (temporal locality, §2.3); avg %.1fKB per inference\n",
		100*float64(hits)/float64(wanted), float64(totalComm)/30/1024)
	fmt.Println("the servers saw a fixed, pattern-independent query shape for every inference")
}
