// Command pirserver runs one party of the two-server PIR protocol over
// TCP. Start two instances (party 0 and party 1, ideally on different
// machines/clouds) with the same table seed, then query them with
// pirclient.
//
//	pirserver -party 0 -addr :7700 -rows 65536 -lanes 32 -seed 42
//	pirserver -party 1 -addr :7701 -rows 65536 -lanes 32 -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"

	"gpudpf/internal/pir"
)

func main() {
	party := flag.Int("party", 0, "which share this server computes (0 or 1)")
	addr := flag.String("addr", ":7700", "listen address")
	rows := flag.Int("rows", 65536, "table rows")
	lanes := flag.Int("lanes", 32, "uint32 lanes per row (entry bytes / 4)")
	seed := flag.Int64("seed", 42, "deterministic table content seed (must match the peer)")
	prg := flag.String("prg", "aes128", "PRF (must match clients): aes128, chacha20, siphash, highway, sha256")
	flag.Parse()

	tab, err := buildTable(*rows, *lanes, *seed)
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	srv, err := pir.NewServer(*party, tab, pir.WithPRG(*prg))
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	log.Printf("pirserver: party %d serving %d×%dB table on %s (prg=%s)",
		*party, *rows, *lanes*4, l.Addr(), *prg)
	if err := pir.Serve(l, srv); err != nil {
		log.Fatalf("pirserver: %v", err)
	}
}

// buildTable fills the table deterministically so two independently started
// parties hold identical replicas.
func buildTable(rows, lanes int, seed int64) (*pir.Table, error) {
	tab, err := pir.NewTable(rows, lanes)
	if err != nil {
		return nil, fmt.Errorf("building table: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	return tab, nil
}
