// Command pirserver runs one party of the two-server PIR protocol over
// TCP. Start two instances (party 0 and party 1, ideally on different
// machines/clouds) with the same table seed, then query them with
// pirclient.
//
// Requests flow through the same path the benchmarks measure: a
// serving.Batcher groups incoming keys under a size/deadline policy and
// executes each formed batch on a sharded engine.Replica, so concurrent
// clients share table passes instead of queueing behind each other.
//
//	pirserver -party 0 -addr :7700 -rows 65536 -lanes 32 -seed 42 -shards 4
//	pirserver -party 1 -addr :7701 -rows 65536 -lanes 32 -seed 42 -shards 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/engine"
	"gpudpf/internal/pir"
	"gpudpf/internal/serving"
)

func main() {
	party := flag.Int("party", 0, "which share this server computes (0 or 1)")
	addr := flag.String("addr", ":7700", "listen address")
	rows := flag.Int("rows", 65536, "table rows")
	lanes := flag.Int("lanes", 32, "uint32 lanes per row (entry bytes / 4)")
	seed := flag.Int64("seed", 42, "deterministic table content seed (must match the peer)")
	prg := flag.String("prg", "aes128", "PRF (must match clients): aes128, chacha20, siphash, highway, sha256")
	early := flag.Int("early", dpf.DefaultEarlyBits, "early-termination depth clients' keys carry (must match clients; 0 = legacy full-depth wire-v1 keys)")
	shards := flag.Int("shards", 0, "row-range shards evaluated concurrently (0 = unsharded)")
	workers := flag.Int("workers", 0, "shard worker pool size (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 64, "max keys per formed batch (0 disables the batching front door)")
	maxDelay := flag.Duration("maxdelay", 2*time.Millisecond, "max time a request waits for its batch to fill")
	flag.Parse()

	tab, err := buildTable(*rows, *lanes, *seed)
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	srv, err := pir.NewServer(*party, tab, pir.WithPRG(*prg), pir.WithEarly(*early), pir.WithSharding(*shards, *workers))
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	front := pir.Answerer(srv)
	if *batch > 0 {
		b, err := serving.NewEngineBatcher(serving.Policy{MaxBatch: *batch, MaxDelay: *maxDelay}, srv.Engine())
		if err != nil {
			log.Fatalf("pirserver: %v", err)
		}
		defer b.Close()
		front = batchFront{b, srv.Engine()}
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	log.Printf("pirserver: party %d serving %d×%dB table on %s (prg=%s early=%d shards=%d batch=%d)",
		*party, *rows, *lanes*4, l.Addr(), *prg, srv.Engine().EarlyBits(), srv.Engine().Shards(), *batch)
	if err := pir.Serve(l, front); err != nil {
		log.Fatalf("pirserver: %v", err)
	}
}

// batchFront feeds pre-batched TCP requests into the shared batching front
// door: each request's keys are submitted concurrently, so keys from many
// connections coalesce into the same engine batches. Keys are validated
// before submission — a malformed key fails only its own request, never
// the co-batched requests of other clients.
type batchFront struct {
	b   *serving.Batcher
	eng *engine.Replica
}

func (f batchFront) Answer(keys [][]byte) ([][]uint32, error) {
	for i, key := range keys {
		if err := f.eng.ValidateKey(key); err != nil {
			return nil, fmt.Errorf("key %d: %w", i, err)
		}
	}
	return f.b.SubmitAll(keys)
}

// buildTable fills the table deterministically so two independently started
// parties hold identical replicas.
func buildTable(rows, lanes int, seed int64) (*pir.Table, error) {
	tab, err := pir.NewTable(rows, lanes)
	if err != nil {
		return nil, fmt.Errorf("building table: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	return tab, nil
}
