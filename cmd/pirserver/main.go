// Command pirserver runs one party of the two-server PIR protocol over
// TCP. Start two instances (party 0 and party 1, ideally on different
// machines/clouds) with the same table seed, then query them with
// pirclient.
//
// Requests flow through the same path the benchmarks measure: a
// serving.Front groups incoming keys under a size/deadline policy and
// executes each formed batch on a sharded engine.Replica, so concurrent
// clients share table passes instead of queueing behind each other.
// -maxqueue bounds the admission queue — requests past the bound are shed
// immediately with a named overload error instead of collapsing queue
// latency — and -slo turns on adaptive batching: the front re-tunes the
// batch size and deadline against the measured arrival rate to stay
// inside the SLO. The wire protocol also carries a row-update op and a
// stats probe (admission and epoch-retry counters), which is what
// cmd/pirload drives and measures.
//
//	pirserver -party 0 -addr :7700 -rows 65536 -lanes 32 -seed 42 -shards 4
//	pirserver -party 1 -addr :7701 -rows 65536 -lanes 32 -seed 42 -shards 4
//
// One party can also span machines. Each machine runs a shard node that
// holds and serves one contiguous slice of the row domain over the
// shardnet protocol, and a front instance assembles them (with optional
// local shards) into one engine.Cluster behind the ordinary client-facing
// protocol — answers are bit-identical to the single-process server:
//
//	pirserver -party 0 -shardnode 0/2 -addr :7800 -rows 1048576 -seed 42
//	pirserver -party 0 -shardnode 1/2 -addr :7801 -rows 1048576 -seed 42
//	pirserver -party 0 -cluster host0:7800,host1:7801 -addr :7700 -rows 1048576
//
// With -standby the front also dials one standby node per shard (a comma
// list parallel to -cluster; empty slots mean no standby for that shard).
// A primary that dies mid-batch fails over transparently — answers stay
// bit-identical because the epoch handshake keeps standbys on the same
// table version as their primaries:
//
//	pirserver -party 0 -cluster host0:7800,host1:7801 \
//	          -standby host2:7800,host3:7801 -addr :7700 -rows 1048576
//
// -group generalizes both flags to N-member replica groups: commas still
// separate shards, pipes separate the members of one shard's group. The
// front load-balances answer batches across each group's healthy members,
// retries a failed member's batch on the next, and quarantines members
// that miss an epoch until they are healed:
//
//	pirserver -party 0 -group host0:7800|host2:7800|host4:7800,host1:7801|host3:7801 \
//	          -addr :7700 -rows 1048576
//
// A shard node started with -join pulls the current table snapshot from a
// healthy same-shard peer over the shardnet snapshot RPCs before serving,
// so a restarted (or brand-new) member enters rotation at the cluster's
// current epoch instead of waiting quarantined for a front-side heal:
//
//	pirserver -party 0 -shardnode 0/2 -join host0:7800 -addr :7802 -rows 1048576 -seed 42
//
// The shardnet handshake pins the wire version, PRF, early-termination
// depth and party (and advertises the node's table epoch), so a
// misconfigured node is refused at dial time with both values named
// instead of corrupting shares at merge time.
//
// Updates: -refresh/-refreshrows drive the paper's transparent update
// path (§4.2) as a deterministic background load — every tick a batch of
// rows is rewritten with content derived from (seed, row, generation), so
// independently started parties keep identical tables. On a single server
// the batch lands as one store epoch; on a cluster front it runs the
// prepare/commit epoch handshake across every shard node and standby —
// all-or-nothing, with concurrent answers pinned to the prior epoch.
//
// On SIGTERM/SIGINT the server shuts down gracefully: it stops accepting,
// drains the in-flight batcher batches, and closes shardnet
// serving/clients cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/engine"
	"gpudpf/internal/pir"
	"gpudpf/internal/serving"
	"gpudpf/internal/shardnet"
	"gpudpf/internal/store"
)

func main() {
	party := flag.Int("party", 0, "which share this server computes (0 or 1)")
	addr := flag.String("addr", ":7700", "listen address")
	rows := flag.Int("rows", 65536, "table rows")
	lanes := flag.Int("lanes", 32, "uint32 lanes per row (entry bytes / 4)")
	seed := flag.Int64("seed", 42, "deterministic table content seed (must match the peer, which must also run the same pirserver build — the seed→content scheme is not stable across versions)")
	prg := flag.String("prg", "aes128", "PRF (must match clients): aes128, chacha20, siphash, highway, sha256")
	early := flag.Int("early", dpf.DefaultEarlyBits, "early-termination depth clients' keys carry (must match clients; 0 = legacy full-depth wire-v1 keys)")
	shards := flag.Int("shards", 0, "row-range shards evaluated concurrently (0 = unsharded)")
	workers := flag.Int("workers", 0, "shard worker pool size (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 64, "max keys per formed batch (0 disables the batching front door)")
	maxDelay := flag.Duration("maxdelay", 2*time.Millisecond, "max time a request waits for its batch to fill")
	maxQueue := flag.Int("maxqueue", 0, "admission bound: max requests waiting or in service before new ones are shed with a named overload error (0 = unbounded)")
	slo := flag.Duration("slo", 0, "latency SLO for adaptive batching: the front door re-tunes -batch/-maxdelay against the measured arrival rate to stay inside it (0 = static policy)")
	shardNode := flag.String("shardnode", "", "serve one shard of the row domain over the shardnet protocol instead of the client protocol; format i/n = rows [i·rows/n,(i+1)·rows/n)")
	cluster := flag.String("cluster", "", "comma-separated shardnet node addresses; front a distributed replica over them instead of a local table")
	standby := flag.String("standby", "", "comma-separated standby node addresses, parallel to -cluster (empty slots allowed); a dead primary fails over to its standby mid-batch")
	group := flag.String("group", "", "replica groups per shard: comma-separated shards, each a |-separated list of member node addresses (e.g. \"a|b|c,d|e\"); generalizes -cluster/-standby to N load-balanced members")
	join := flag.String("join", "", "shard-node only: pull the current table snapshot from this healthy same-shard peer (host:port) over shardnet before serving, so a restarted member rejoins at the cluster's epoch")
	refresh := flag.Duration("refresh", 0, "rewrite a deterministic batch of rows this often (0 = off) — the transparent update path; both parties must use the same -refresh, -refreshrows and -seed")
	refreshRows := flag.Int("refreshrows", 64, "rows per refresh batch (one table epoch per batch; on a cluster front, one epoch handshake)")
	tableFile := flag.String("table-file", "", "serve table rows out-of-core from this file instead of holding them in RAM; created from (-rows,-lanes,-seed) if absent — on a shard node, only the node's row slice is filled — and validated against the flags if present (single server or -shardnode)")
	pageCache := flag.Int64("pagecache", store.DefaultPageCacheBytes, "page-cache byte budget for -table-file; tables larger than this are paged off disk on demand")
	flag.Parse()

	if *shardNode != "" && (*cluster != "" || *group != "") {
		log.Fatal("pirserver: -shardnode and -cluster/-group are mutually exclusive")
	}
	if *group != "" && (*cluster != "" || *standby != "") {
		log.Fatal("pirserver: -group replaces -cluster/-standby; use one addressing form or the other")
	}
	if *standby != "" && *cluster == "" {
		log.Fatal("pirserver: -standby requires -cluster")
	}
	if *join != "" && *shardNode == "" {
		log.Fatal("pirserver: -join belongs on a shard node (-shardnode)")
	}
	if *refreshRows < 1 {
		log.Fatal("pirserver: -refreshrows must be >= 1")
	}
	if *refresh != 0 && *shardNode != "" {
		log.Fatal("pirserver: -refresh belongs on the cluster front (or a single server), not on a shard node — nodes receive updates over shardnet")
	}
	if *tableFile != "" && (*cluster != "" || *group != "") {
		log.Fatal("pirserver: -table-file serves local table rows (single server or shard node); a cluster front holds no rows")
	}
	if *pageCache < 1 {
		log.Fatal("pirserver: -pagecache must be >= 1")
	}
	door := doorConfig{batch: *batch, maxDelay: *maxDelay, maxQueue: *maxQueue, slo: *slo}
	switch {
	case *shardNode != "":
		runShardNode(*shardNode, *join, *party, *addr, *rows, *lanes, *seed, *prg, *early, *shards, *workers, *tableFile, *pageCache)
	case *cluster != "" || *group != "":
		groups, display, err := parseGroups(*cluster, *standby, *group)
		if err != nil {
			log.Fatalf("pirserver: %v", err)
		}
		runClusterFront(groups, display, *party, *addr, *rows, *seed, *prg, *early, door, *refresh, *refreshRows)
	default:
		runSingle(*party, *addr, *rows, *lanes, *seed, *prg, *early, *shards, *workers, door, *refresh, *refreshRows, *tableFile, *pageCache)
	}
}

// doorConfig carries the batching-front-door flags: the static batch
// policy, the admission bound, and the adaptive-tuning SLO.
type doorConfig struct {
	batch    int
	maxDelay time.Duration
	maxQueue int
	slo      time.Duration
}

// parseGroups resolves the two cluster-front addressing forms into one
// member-address list per shard: -group "a|b|c,d|e" (commas separate
// shards, pipes separate one shard's replica-group members), or the
// legacy -cluster/-standby pair (one or two members per shard).
func parseGroups(cluster, standby, group string) (groups [][]string, display string, err error) {
	if group != "" {
		for i, shard := range strings.Split(group, ",") {
			var members []string
			for _, m := range strings.Split(shard, "|") {
				if m = strings.TrimSpace(m); m != "" {
					members = append(members, m)
				}
			}
			if len(members) == 0 {
				return nil, "", fmt.Errorf("-group shard %d lists no member addresses", i)
			}
			groups = append(groups, members)
		}
		return groups, group, nil
	}
	nodes := strings.Split(cluster, ",")
	var sbNodes []string
	if standby != "" {
		sbNodes = strings.Split(standby, ",")
		if len(sbNodes) != len(nodes) {
			return nil, "", fmt.Errorf("-standby lists %d addresses for %d -cluster nodes (use empty slots for shards without a standby)", len(sbNodes), len(nodes))
		}
	}
	for i, node := range nodes {
		members := []string{strings.TrimSpace(node)}
		if sbNodes != nil {
			if sb := strings.TrimSpace(sbNodes[i]); sb != "" {
				members = append(members, sb)
			}
		}
		groups = append(groups, members)
	}
	display = cluster
	if standby != "" {
		display += " with standbys " + standby
	}
	return groups, display, nil
}

// notifyShutdown closes the listener on SIGTERM/SIGINT, which unblocks the
// serving accept loop; the caller then drains and closes its stack in
// order. The returned channel reports whether a signal (vs. a listener
// failure) ended serving.
func notifyShutdown(l net.Listener) chan os.Signal {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		log.Printf("pirserver: %v: stopping accept loop, draining in-flight batches", s)
		l.Close()
	}()
	return sig
}

// runSingle is the classic single-process server: full local table behind
// the batching front door. With tableFile set, the table lives on disk and
// the server pages rows through a bounded cache instead of holding the
// whole table in RAM — same wire behavior, out-of-core memory profile.
func runSingle(party int, addr string, rows, lanes int, seed int64, prg string, early, shards, workers int, door doorConfig, refresh time.Duration, refreshRows int, tableFile string, pageCache int64) {
	var srv *pir.Server
	var err error
	opts := []pir.ServerOption{pir.WithPRG(prg), pir.WithEarly(early), pir.WithSharding(shards, workers)}
	if tableFile != "" {
		st, cleanup, perr := openPagedStore(tableFile, rows, lanes, seed, 0, rows, pageCache)
		if perr != nil {
			log.Fatalf("pirserver: -table-file %s: %v", tableFile, perr)
		}
		defer cleanup()
		srv, err = pir.NewServerOverStore(party, st, opts...)
	} else {
		var tab *pir.Table
		tab, err = buildTable(rows, lanes, seed, 0, rows)
		if err != nil {
			log.Fatalf("pirserver: %v", err)
		}
		srv, err = pir.NewServer(party, tab, opts...)
	}
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	log.Printf("pirserver: party %d serving %d×%dB table on %s (prg=%s early=%d shards=%d batch=%d maxqueue=%d slo=%v)",
		party, rows, lanes*4, l.Addr(), prg, srv.Engine().EarlyBits(), srv.Engine().Shards(), door.batch, door.maxQueue, door.slo)
	answerer, closeDoor := front(srv, srv.Engine(), door)
	stopRefresh := startRefresher(refresh, refreshRows, rows, lanes, seed, srv.Engine())
	sig := notifyShutdown(l)
	if err := pir.Serve(l, answerer); err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	signal.Stop(sig)
	close(sig)
	stopRefresh()
	closeDoor()
	log.Printf("pirserver: shutdown complete")
}

// runShardNode serves one contiguous slice of the row domain over the
// shardnet protocol: the node builds (and pages in) only its own rows of
// the deterministic table and answers AnswerRange RPCs from a cluster
// front. With tableFile set, the node's slice lives on disk behind the
// bounded page cache instead of in RAM — a cluster of paged nodes serves a
// table no single machine could hold, bit-identically to in-RAM nodes.
// With join non-empty, the node first pulls the current snapshot of its
// rows from that healthy same-shard peer, so it starts serving at the
// cluster's current epoch instead of generation 0.
func runShardNode(spec, join string, party int, addr string, rows, lanes int, seed int64, prg string, early, shards, workers int, tableFile string, pageCache int64) {
	idx, count, err := parseShardSpec(spec)
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	lo, hi := engine.ShardRange(rows, idx, count)
	if lo >= hi {
		log.Fatalf("pirserver: shard %d/%d of a %d-row table holds no rows", idx, count, rows)
	}
	opts := []pir.ServerOption{pir.WithPRG(prg), pir.WithEarly(early), pir.WithSharding(shards, workers)}
	var rep *engine.Replica
	if tableFile != "" {
		st, cleanup, perr := openPagedStore(tableFile, rows, lanes, seed, lo, hi, pageCache)
		if perr != nil {
			log.Fatalf("pirserver: -table-file %s: %v", tableFile, perr)
		}
		defer cleanup()
		rep, err = pir.NewReplicaOverStore(party, st, opts...)
	} else {
		var tab *pir.Table
		tab, err = buildTable(rows, lanes, seed, lo, hi)
		if err != nil {
			log.Fatalf("pirserver: %v", err)
		}
		rep, err = pir.NewReplica(party, tab, opts...)
	}
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	if join != "" {
		if err := joinFromPeer(rep, join, party, prg, lanes, lo, hi); err != nil {
			log.Fatalf("pirserver: -join %s: %v", join, err)
		}
	}
	node, err := shardnet.NewServer(rep, shardnet.ServerConfig{RowLo: lo, RowHi: hi})
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	log.Printf("pirserver: party %d shard node %d/%d serving rows [%d,%d) of %d×%dB table on %s (prg=%s early=%d)",
		party, idx, count, lo, hi, rows, lanes*4, l.Addr(), prg, rep.EarlyBits())
	sig := notifyShutdown(l)
	if err := node.Serve(l); err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	signal.Stop(sig)
	close(sig)
	node.Close() // close live connections, cancel in-flight backend work
	log.Printf("pirserver: shutdown complete")
}

// joinFromPeer pulls the donor peer's current table snapshot for rows
// [lo, hi) over the shardnet snapshot RPCs and installs it in rep before
// the node starts serving — the shard-node side of healing. The peer may
// legitimately advance its epoch mid-pull (refresh churn on the front);
// joinFromPeer retries a bounded number of rounds, and a node that still
// lands slightly behind simply starts quarantined until the front heals
// it, so best effort is safe.
func joinFromPeer(rep *engine.Replica, peer string, party int, prg string, lanes, lo, hi int) error {
	pin := rep.EarlyBits()
	if pin == 0 {
		pin = engine.FullDepthKeys
	}
	cl, err := shardnet.Dial(peer, shardnet.Options{PRG: prg, Early: pin, Party: party})
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx := context.Background()
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		done, err := joinOnce(ctx, rep, cl, peer, lanes, lo, hi)
		if err != nil {
			lastErr = err
			continue
		}
		if done {
			return nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("node did not converge to peer %s's epoch (churn too fast?); starting anyway — the front will heal it", peer)
		log.Printf("pirserver: join: %v", lastErr)
		return nil
	}
	return lastErr
}

// joinOnce runs one snapshot pull round; done reports the node's
// effective epoch has reached the peer's.
func joinOnce(ctx context.Context, rep *engine.Replica, cl *shardnet.Client, peer string, lanes, lo, hi int) (done bool, err error) {
	snapEpoch, effEpoch, pLo, pHi, err := cl.SnapshotMeta(ctx)
	if err != nil {
		return false, err
	}
	if pLo > lo || pHi < hi {
		return false, fmt.Errorf("peer holds rows [%d,%d), cannot donate [%d,%d)", pLo, pHi, lo, hi)
	}
	have, err := rep.Epoch(ctx)
	if err != nil {
		return false, err
	}
	if have >= effEpoch {
		log.Printf("pirserver: join: at epoch %d, peer %s effective epoch %d; in sync", have, peer, effEpoch)
		return true, nil
	}
	if snapEpoch <= have {
		// Only burned epoch numbers separate us: raise the floor (an abort
		// burns idempotently) instead of re-pulling a table we already hold.
		if err := rep.AbortUpdate(ctx, effEpoch); err != nil {
			return false, err
		}
		return false, nil // re-check next round
	}
	words := (hi - lo) * lanes
	buf := make([]uint32, 0, words)
	const chunkWords = 256 << 10
	for len(buf) < words {
		// Chunk offsets are relative to the peer's held range.
		off := (lo-pLo)*lanes + len(buf)
		chunk, err := cl.SnapshotChunk(ctx, snapEpoch, off, min(chunkWords, words-len(buf)))
		if err != nil {
			return false, err
		}
		if len(chunk) == 0 {
			return false, fmt.Errorf("peer snapshot stream ended at %d of %d words", len(buf), words)
		}
		if len(buf)+len(chunk) > words {
			return false, fmt.Errorf("peer snapshot stream overran %d words", words)
		}
		buf = append(buf, chunk...)
	}
	if err := rep.AdoptSnapshot(ctx, snapEpoch, effEpoch, lo, hi, buf); err != nil {
		return false, err
	}
	log.Printf("pirserver: join: adopted rows [%d,%d) at epoch %d (effective %d) from peer %s", lo, hi, snapEpoch, effEpoch, peer)
	return false, nil // next round verifies the peer did not move meanwhile
}

// runClusterFront assembles a distributed replica over remote shard nodes
// and serves the ordinary client protocol through it: the front holds no
// table rows itself, it validates keys, batches requests, fans each batch
// out as pruned-range evaluations load-balanced across each shard's
// replica-group members, and merges the partial shares.
func runClusterFront(groups [][]string, display string, party int, addr string, rows int, seed int64, prg string, early int, door doorConfig, refresh time.Duration, refreshRows int) {
	// Same flag validation as the other two modes (pir.WithEarly): a bad
	// -early must fail fast here too, not be silently clamped into an
	// "accept any depth" pin.
	if early < 0 || early > dpf.MaxEarlyBits {
		log.Fatalf("pirserver: early-termination depth %d out of range [0,%d]", early, dpf.MaxEarlyBits)
	}
	pin := dpf.ClampEarly(early, dpf.DomainBits(rows))
	if early == 0 {
		pin = engine.FullDepthKeys
	}
	dialNode := func(node string) *shardnet.Client {
		cl, err := shardnet.Dial(node, shardnet.Options{PRG: prg, Early: pin, Party: party})
		if err != nil {
			log.Fatalf("pirserver: node %s: %v", node, err)
		}
		if nr, nl := cl.Shape(); nr != rows {
			log.Fatalf("pirserver: node %s serves a %d×%d table, front expects %d rows", node, nr, nl, rows)
		}
		return cl
	}
	shardsCfg := make([]engine.ClusterShard, len(groups))
	total := 0
	for i, members := range groups {
		for _, node := range members {
			shardsCfg[i].Members = append(shardsCfg[i].Members, dialNode(node))
			shardsCfg[i].MemberNames = append(shardsCfg[i].MemberNames, node)
		}
		total += len(members)
	}
	cluster, err := engine.NewCluster(shardsCfg...)
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	// A formed batch is forwarded to every shard node whole; a front batch
	// the nodes would refuse — over their request key cap, or wide enough
	// that the ANSWER frame (batch × lanes × 4 bytes) exceeds the frame
	// cap — would fail only once load actually fills it. Clamp now instead.
	_, lanes := cluster.Shape()
	maxBatch := shardnet.DefaultMaxBatch
	if byResp := (shardnet.DefaultMaxFrame - 64) / (4 * lanes); byResp < maxBatch {
		maxBatch = byResp
	}
	if door.batch > maxBatch {
		log.Printf("pirserver: clamping -batch %d to %d (shard nodes' request/response frame caps at %d lanes)", door.batch, maxBatch, lanes)
		door.batch = maxBatch
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	log.Printf("pirserver: party %d cluster front over %d shards / %d members (%s) serving %d×%dB table on %s (prg=%s early=%d batch=%d maxqueue=%d slo=%v)",
		party, len(groups), total, display, rows, lanes*4, l.Addr(), prg, cluster.EarlyBits(), door.batch, door.maxQueue, door.slo)
	answerer, closeDoor := front(pir.BackendEndpoint{Backend: cluster}, cluster, door)
	stopRefresh := startRefresher(refresh, refreshRows, rows, lanes, seed, cluster)
	sig := notifyShutdown(l)
	if err := pir.Serve(l, answerer); err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	signal.Stop(sig)
	close(sig)
	stopRefresh()
	closeDoor()
	cluster.Close()
	log.Printf("pirserver: shutdown complete")
}

// updater is the slice of engine.EpochBackend both refreshable serving
// modes share: a Replica (one store epoch per batch) or a Cluster (one
// epoch handshake per batch).
type updater interface {
	UpdateBatch(ctx context.Context, writes []engine.RowWrite) (uint64, error)
}

// startRefresher drives the transparent update path: every `every`, the
// next generation's row batch — rows and content both derived from
// (seed, generation), so both parties running the same flags rewrite
// identical rows with identical values — lands as ONE atomic epoch.
// Returns a stop function that waits for the driver to exit.
func startRefresher(every time.Duration, rowsPerBatch, rows, lanes int, seed int64, be updater) (stop func()) {
	if every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for gen := uint64(1); ; gen++ {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			writes := refreshBatch(seed, gen, rows, lanes, rowsPerBatch)
			epoch, err := be.UpdateBatch(context.Background(), writes)
			if err != nil {
				log.Printf("pirserver: refresh generation %d failed (will retry next tick): %v", gen, err)
				gen-- // both parties must apply every generation in order
				continue
			}
			if gen == 1 || gen%64 == 0 {
				log.Printf("pirserver: refresh generation %d: %d rows installed as epoch %d", gen, len(writes), epoch)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// refreshBatch derives generation gen's row writes: a deterministic row
// set and deterministic content, both functions of (seed, gen) alone.
func refreshBatch(seed int64, gen uint64, rows, lanes, batch int) []engine.RowWrite {
	if batch > rows {
		batch = rows
	}
	writes := make([]engine.RowWrite, 0, batch)
	seen := make(map[uint64]bool, batch)
	// A splitmix64 stream keyed by (seed, gen) picks the rows.
	state := uint64(seed) ^ gen*0xA24BAED4963EE407
	for len(writes) < batch {
		state += 0x9E3779B97F4A7C15
		row := mix64(state) % uint64(rows)
		if seen[row] {
			continue
		}
		seen[row] = true
		vals := make([]uint32, lanes)
		fillRow(vals, seed, int(row), gen)
		writes = append(writes, engine.RowWrite{Row: row, Vals: vals})
	}
	return writes
}

// front wraps the direct answer path with the serving front door when
// batching is enabled: key validation, the batcher with admission control
// (door.maxQueue), adaptive policy tuning (door.slo), the wire update op,
// and the serving stats the load harness reads. The returned close drains
// pending batches and stops the batcher worker (a no-op closer when
// batching is off).
func front(direct pir.Answerer, be engine.Backend, door doorConfig) (pir.Answerer, func()) {
	if door.batch <= 0 {
		return direct, func() {}
	}
	f, err := serving.NewFront(serving.FrontConfig{
		Policy: serving.Policy{
			MaxBatch: door.batch,
			MaxDelay: door.maxDelay,
			MaxQueue: door.maxQueue,
		},
		SLO: door.slo,
	}, be)
	if err != nil {
		log.Fatalf("pirserver: %v", err)
	}
	return f, f.Close
}

// parseShardSpec parses "i/n".
func parseShardSpec(spec string) (idx, count int, err error) {
	i, n, ok := strings.Cut(spec, "/")
	if ok {
		if idx, err = strconv.Atoi(i); err == nil {
			count, err = strconv.Atoi(n)
		}
	}
	if !ok || err != nil || count < 1 || idx < 0 || idx >= count {
		return 0, 0, fmt.Errorf("bad -shardnode %q: want i/n with 0 ≤ i < n", spec)
	}
	return idx, count, nil
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// fillRow writes row `i`'s deterministic content for the given refresh
// generation (0 = the initial table): a splitmix64 stream keyed by
// (seed, row, gen), a few multiplies per lane with no generator state, so
// fill cost is a small constant times the words written.
func fillRow(dst []uint32, seed int64, i int, gen uint64) {
	state := uint64(seed) ^ (uint64(i)+1)*0x9E3779B97F4A7C15 ^ gen*0xA24BAED4963EE407
	for l := range dst {
		state += 0x9E3779B97F4A7C15
		dst[l] = uint32(mix64(state))
	}
}

// buildTable fills rows [lo, hi) of the table deterministically, so
// independently started parties — and independently started shard nodes of
// one party — hold identical content where their rows overlap. Each row's
// values derive from (seed, row) alone, so both memory AND fill time are
// proportional to the node's own slice: the last shard of a 2^27-row
// table starts as fast as the first. The seed→content mapping is a
// per-version convention, not a wire contract: every instance of a
// deployment (both parties, all shard nodes) must run the same pirserver
// build, as the -seed flag documents — replicas disagreeing on content
// reconstruct garbage with no error anywhere.
// openPagedStore serves the deterministic table out-of-core: if the file
// is absent it is written once by streaming rows [lo, hi) from (seed, row)
// — never materializing the table in RAM (rows outside the slice are
// zero, which a shard node never reads) — and thereafter the server pages
// rows through a cache bounded by pageCache bytes. An existing file must
// match the flags' shape; content is trusted to match the seed (the file
// IS the table — regenerate it after changing -seed or the served slice).
func openPagedStore(path string, rows, lanes int, seed int64, lo, hi int, pageCache int64) (*store.Store, func(), error) {
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		err := store.WriteTableFileRows(path, rows, lanes, func(i int, dst []uint32) {
			if i < lo || i >= hi {
				clear(dst)
				return
			}
			fillRow(dst, seed, i, 0)
		})
		if err != nil {
			return nil, nil, err
		}
		log.Printf("pirserver: wrote rows [%d,%d) of %d×%dB table to %s", lo, hi, rows, lanes*4, path)
	} else if err != nil {
		return nil, nil, err
	}
	pb, err := store.OpenPaged(path, store.PagedConfig{CacheBytes: pageCache})
	if err != nil {
		return nil, nil, err
	}
	if pb.Rows() != rows || pb.Lanes() != lanes {
		pb.Close()
		return nil, nil, fmt.Errorf("file holds a %d×%d table but flags say %d×%d", pb.Rows(), pb.Lanes(), rows, lanes)
	}
	st, err := store.NewPaged(pb)
	if err != nil {
		pb.Close()
		return nil, nil, err
	}
	return st, func() { pb.Close() }, nil
}

func buildTable(rows, lanes int, seed int64, lo, hi int) (*pir.Table, error) {
	tab, err := pir.NewTable(rows, lanes)
	if err != nil {
		return nil, fmt.Errorf("building table: %w", err)
	}
	for i := lo; i < hi; i++ {
		fillRow(tab.Data[i*lanes:(i+1)*lanes], seed, i, 0)
	}
	return tab, nil
}
