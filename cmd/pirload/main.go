// Command pirload drives open-loop, Zipf-skewed load against a running
// pirserver and reports serving latency the way cmd/benchjson reports
// kernel throughput: a machine-readable artifact (BENCH_serving.json)
// with achieved QPS, accepted-request latency percentiles, shed/error
// counts, and the server's epoch-retry count.
//
// Open-loop means arrivals come from a fixed-rate schedule, not from
// completions: a slow server does not slow the generator down, it piles
// requests up — which is how production traffic behaves and why
// closed-loop benchmarks understate tail latency. Every random choice
// (Poisson arrival gaps, client IDs from a configurable population,
// Zipf-skewed rows, the read/update interleave, DPF key material) derives
// from -seed through a PCG, so the same invocation replays the
// byte-identical workload; the artifact records the schedule fingerprint
// to prove it.
//
//	pirserver -party 0 -addr :7700 -rows 65536 -maxqueue 256 &
//	pirload -addr localhost:7700 -rows 65536 -qps 2000 -duration 10s
//
// With -compare the run gates against a committed baseline artifact the
// way `benchjson -compare` gates the hot path, using machine-tolerant
// ratios (achieved/offered throughput, shed fraction, a p99 band) plus
// hard invariants (same schedule fingerprint, zero non-shed errors).
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/engine"
	"gpudpf/internal/loadgen"
	"gpudpf/internal/pir"
)

func main() {
	addr := flag.String("addr", "localhost:7700", "pirserver address to drive")
	party := flag.Int("party", 0, "which party's key share to send (must match the server's -party)")
	rows := flag.Int("rows", 65536, "server table rows (must match the server)")
	lanes := flag.Int("lanes", 32, "server row lanes (must match the server; sizes generated update rows)")
	prg := flag.String("prg", "aes128", "PRF (must match the server)")
	early := flag.Int("early", dpf.DefaultEarlyBits, "early-termination depth (must match the server)")
	seed := flag.Uint64("seed", 1, "workload seed: same seed, same schedule and same key material")
	clients := flag.Uint64("clients", 1_000_000, "client population size request origins are drawn from")
	zipfS := flag.Float64("zipf", 1.2, "Zipf skew of the requested rows (> 1)")
	qps := flag.Float64("qps", 1000, "offered arrival rate")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive")
	updateFrac := flag.Float64("updatefrac", 0, "fraction of ops that are row-update batches instead of reads")
	updateRows := flag.Int("updaterows", 4, "rows per update op")
	conns := flag.Int("conns", 8, "TCP connections in the pool (client-side concurrency)")
	slo := flag.Duration("slo", 50*time.Millisecond, "latency SLO recorded in the artifact (informational; the server enforces its own -slo)")
	out := flag.String("out", "BENCH_serving.json", "artifact path (empty = stdout only)")
	compare := flag.String("compare", "", "baseline BENCH_serving.json to gate against; exits 1 on regression")
	flag.Parse()

	cfg := loadgen.Config{
		Seed:       *seed,
		Clients:    *clients,
		Rows:       uint64(*rows),
		ZipfS:      *zipfS,
		QPS:        *qps,
		Duration:   *duration,
		UpdateFrac: *updateFrac,
		UpdateRows: *updateRows,
	}
	ops, err := loadgen.Schedule(cfg)
	if err != nil {
		log.Fatalf("pirload: %v", err)
	}
	fp := loadgen.Fingerprint(ops)
	log.Printf("pirload: schedule: %d ops over %v at %.0f qps (fingerprint %016x)", len(ops), *duration, *qps, fp)

	keys, err := buildKeys(ops, *prg, *rows, *early, *party, *seed)
	if err != nil {
		log.Fatalf("pirload: %v", err)
	}

	// Updates get a dedicated conn so a read parked in the server's
	// batcher can't head-of-line-block the epoch pipeline.
	extra := 0
	if *updateFrac > 0 {
		extra = 1
	}
	pool := make([]loadgen.Target, *conns+extra)
	for i := range pool {
		r, err := pir.Dial(*addr)
		if err != nil {
			log.Fatalf("pirload: %v", err)
		}
		defer r.Close()
		pool[i] = r
	}
	targets, updateTargets := pool[:*conns], pool[*conns:]

	rep, err := loadgen.Run(loadgen.RunConfig{
		Targets:       targets,
		UpdateTargets: updateTargets,
		Schedule:      ops,
		KeyFor:        func(row uint64) []byte { return keys[row] },
		WritesFor: func(op loadgen.Op) []engine.RowWrite {
			return updateWrites(op, *seed, uint64(*rows), *lanes, *updateRows)
		},
	})
	if err != nil {
		log.Fatalf("pirload: %v", err)
	}

	o := output{
		SchemaVersion: 1,
		Generated:     time.Now().UTC().Format(time.RFC3339),
		Config: configEcho{
			Seed: *seed, Clients: *clients, Rows: *rows, Lanes: *lanes,
			ZipfS: *zipfS, QPS: *qps, DurationS: duration.Seconds(),
			UpdateFrac: *updateFrac, UpdateRows: *updateRows, Conns: *conns,
			Party: *party, PRG: *prg, Early: *early,
			SLOms: float64(*slo) / float64(time.Millisecond),
		},
		ScheduleOps:         len(ops),
		ScheduleFingerprint: fmt.Sprintf("%016x", fp),
		Report:              rep,
	}
	data, err := json.MarshalIndent(&o, "", "  ")
	if err != nil {
		log.Fatalf("pirload: %v", err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatalf("pirload: %v", err)
		}
	}
	os.Stdout.Write(data)
	log.Printf("pirload: achieved %.0f/%.0f qps, p50 %.2fms p99 %.2fms p999 %.2fms, ok=%d shed=%d err=%d epoch-retries=%d",
		rep.AchievedQPS, rep.OfferedQPS, rep.Latency.P50, rep.Latency.P99, rep.Latency.P999,
		rep.Counts.OK, rep.Counts.Shed, rep.Counts.Errors, rep.EpochRetries)

	if *compare != "" {
		base, err := readBaseline(*compare)
		if err != nil {
			log.Fatalf("pirload: -compare: %v", err)
		}
		if err := gate(&o, base); err != nil {
			log.Fatalf("pirload: REGRESSION vs %s: %v", *compare, err)
		}
		log.Printf("pirload: within baseline %s", *compare)
	}
}

// output is the BENCH_serving.json schema (documented in the repo root's
// doc.go).
type output struct {
	SchemaVersion       int        `json:"schema_version"`
	Generated           string     `json:"generated"`
	Config              configEcho `json:"config"`
	ScheduleOps         int        `json:"schedule_ops"`
	ScheduleFingerprint string     `json:"schedule_fingerprint"`
	loadgen.Report
}

type configEcho struct {
	Seed       uint64  `json:"seed"`
	Clients    uint64  `json:"clients"`
	Rows       int     `json:"rows"`
	Lanes      int     `json:"lanes"`
	ZipfS      float64 `json:"zipf_s"`
	QPS        float64 `json:"qps"`
	DurationS  float64 `json:"duration_s"`
	UpdateFrac float64 `json:"update_frac"`
	UpdateRows int     `json:"update_rows"`
	Conns      int     `json:"conns"`
	Party      int     `json:"party"`
	PRG        string  `json:"prg"`
	Early      int     `json:"early"`
	SLOms      float64 `json:"slo_ms"`
}

// buildKeys pre-generates the party's DPF key for every distinct row the
// schedule reads, from a PCG seeded by the workload seed — generation off
// the timed path (keys are the client's cost, not the server's), and
// deterministic so two runs of one seed send identical bytes.
func buildKeys(ops []loadgen.Op, prg string, rows, early, party int, seed uint64) (map[uint64][]byte, error) {
	cl, err := pir.NewClientEarly(prg, rows, early, &pcgReader{r: rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))})
	if err != nil {
		return nil, err
	}
	keys := make(map[uint64][]byte)
	for _, op := range ops {
		if op.Update {
			continue
		}
		if _, ok := keys[op.Row]; ok {
			continue
		}
		k0, k1, err := cl.Query(op.Row)
		if err != nil {
			return nil, fmt.Errorf("keygen row %d: %w", op.Row, err)
		}
		if party == 0 {
			keys[op.Row] = k0
		} else {
			keys[op.Row] = k1
		}
	}
	return keys, nil
}

// updateWrites expands an update op into its deterministic row batch:
// rows and content derive from (seed, op), splitmix64-style, mirroring
// pirserver's refresher so update cost is realistic (full rows, scattered
// placement).
func updateWrites(op loadgen.Op, seed, rows uint64, lanes, count int) []engine.RowWrite {
	if count < 1 {
		count = 1
	}
	writes := make([]engine.RowWrite, 0, count)
	seen := make(map[uint64]bool, count)
	state := seed ^ op.Client*0xa24baed4963ee407 ^ op.Row
	for len(writes) < count {
		state += 0x9e3779b97f4a7c15
		row := mix64(state) % rows
		if seen[row] {
			continue
		}
		seen[row] = true
		vals := make([]uint32, lanes)
		vstate := state
		for l := range vals {
			vstate += 0x9e3779b97f4a7c15
			vals[l] = uint32(mix64(vstate))
		}
		writes = append(writes, engine.RowWrite{Row: row, Vals: vals})
	}
	return writes
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// pcgReader adapts a seeded PCG as the io.Reader pir's key generator
// draws randomness from, making DPF key bytes a pure function of the
// workload seed.
type pcgReader struct {
	r *rand.Rand
}

func (p *pcgReader) Read(b []byte) (int, error) {
	n := len(b)
	for len(b) >= 8 {
		binary.LittleEndian.PutUint64(b, p.r.Uint64())
		b = b[8:]
	}
	if len(b) > 0 {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], p.r.Uint64())
		copy(b, w[:])
	}
	return n, nil
}

func readBaseline(path string) (*output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var o output
	if err := json.Unmarshal(data, &o); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &o, nil
}

// Gate tolerances. Latency on shared CI machines is noisy, so the gate
// leans on ratios and invariants rather than absolute milliseconds: the
// throughput ratio and shed fraction are machine-independent at a fixed
// offered rate, and the p99 band is wide (a genuine batching regression
// blows p99 up by far more than 4×, while scheduler jitter does not).
const (
	gateThroughputSlack = 0.10 // achieved/offered may drop this much vs baseline
	gateShedSlack       = 0.05 // shed fraction may grow this much vs baseline
	gateP99Factor       = 4.0  // p99 may grow this much vs baseline...
	gateP99FloorMs      = 250  // ...or up to this absolute floor, whichever is larger
)

// gate fails when cur regresses from base.
func gate(cur, base *output) error {
	if cur.ScheduleFingerprint != base.ScheduleFingerprint {
		return fmt.Errorf("schedule fingerprint %s does not match baseline %s — the runs drove different workloads; regenerate the baseline",
			cur.ScheduleFingerprint, base.ScheduleFingerprint)
	}
	if cur.Counts.Errors > 0 {
		return fmt.Errorf("%d non-shed errors (baseline %d)", cur.Counts.Errors, base.Counts.Errors)
	}
	curRatio := ratio(cur.AchievedQPS, cur.OfferedQPS)
	baseRatio := ratio(base.AchievedQPS, base.OfferedQPS)
	if curRatio < baseRatio-gateThroughputSlack {
		return fmt.Errorf("achieved/offered %.3f fell more than %.2f below baseline %.3f",
			curRatio, gateThroughputSlack, baseRatio)
	}
	if curShed, baseShed := shedFrac(cur), shedFrac(base); curShed > baseShed+gateShedSlack {
		return fmt.Errorf("shed fraction %.3f exceeds baseline %.3f by more than %.2f",
			curShed, baseShed, gateShedSlack)
	}
	if limit := max(base.Latency.P99*gateP99Factor, gateP99FloorMs); cur.Latency.P99 > limit {
		return fmt.Errorf("p99 %.2fms exceeds limit %.2fms (baseline p99 %.2fms)",
			cur.Latency.P99, limit, base.Latency.P99)
	}
	return nil
}

func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

func shedFrac(o *output) float64 {
	total := o.Counts.OK + o.Counts.Shed + o.Counts.Errors
	if total == 0 {
		return 0
	}
	return float64(o.Counts.Shed) / float64(total)
}
