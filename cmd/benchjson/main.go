// Command benchjson runs the engine hot-path comparison programmatically
// and writes a machine-readable benchmark file (default BENCH_hotpath.json)
// that starts the repo's measured performance trajectory.
//
// Two cases run per batch size, the same pair BenchmarkTiledAnswer
// measures:
//
//   - seed: the seed revision's per-query MemBoundTree hot path — scalar
//     PRF expansion (aes.NewCipher per tree node), freshly appended child
//     groups, one full table pass per query.
//   - tiled: the batched/tiled hot path — dpf.ExpandBatch frontiers,
//     pooled scratch, one streaming table pass per tile of 32 queries.
//
// Usage:
//
//	benchjson [-o BENCH_hotpath.json] [-rows 65536] [-lanes 16] [-batches 1,8,32,128]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/seedbaseline"
	"gpudpf/internal/strategy"
)

// Case is one measured benchmark configuration.
type Case struct {
	Name        string  `json:"name"`
	Batch       int     `json:"batch"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	QPS         float64 `json:"qps"`
}

// Output is the BENCH_hotpath.json schema.
type Output struct {
	GeneratedUnix int64              `json:"generated_unix"`
	GoOS          string             `json:"goos"`
	GoArch        string             `json:"goarch"`
	GoMaxProcs    int                `json:"gomaxprocs"`
	Rows          int                `json:"rows"`
	Lanes         int                `json:"lanes"`
	PRG           string             `json:"prg"`
	Cases         []Case             `json:"cases"`
	Speedup       map[string]float64 `json:"speedup_tiled_over_seed"`
}

func main() {
	out := flag.String("o", "BENCH_hotpath.json", "output file")
	rows := flag.Int("rows", 1<<16, "table rows")
	lanes := flag.Int("lanes", 16, "uint32 lanes per row")
	batches := flag.String("batches", "1,8,32,128", "comma-separated batch sizes")
	flag.Parse()

	tab, err := strategy.NewTable(*rows, *lanes)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	prg := dpf.NewAESPRG()

	o := Output{
		GeneratedUnix: time.Now().Unix(),
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Rows:          *rows,
		Lanes:         *lanes,
		PRG:           prg.Name(),
		Speedup:       map[string]float64{},
	}

	for _, bs := range strings.Split(*batches, ",") {
		batch, err := strconv.Atoi(strings.TrimSpace(bs))
		if err != nil || batch <= 0 {
			log.Fatalf("benchjson: bad batch %q", bs)
		}
		keys := make([]*dpf.Key, batch)
		for q := range keys {
			k0, _, err := dpf.Gen(prg, uint64(rng.Intn(tab.NumRows)), tab.Bits(), []uint32{1}, rng)
			if err != nil {
				log.Fatalf("benchjson: %v", err)
			}
			keys[q] = &k0
		}
		seed := measure("seed", batch, func() {
			seedbaseline.Run(prg, keys, tab, 128)
		})
		tiled := measure("tiled", batch, func() {
			var ctr gpu.Counters
			s := strategy.MemBoundTree{K: 128, Fused: true}
			if _, err := s.Run(prg, keys, tab, &ctr); err != nil {
				log.Fatalf("benchjson: %v", err)
			}
		})
		o.Cases = append(o.Cases, seed, tiled)
		if tiled.NsPerOp > 0 {
			o.Speedup[strconv.Itoa(batch)] = seed.NsPerOp / tiled.NsPerOp
		}
		fmt.Printf("batch=%d: seed %.1fms (%d allocs/op), tiled %.1fms (%d allocs/op), speedup %.2fx\n",
			batch, seed.NsPerOp/1e6, seed.AllocsPerOp, tiled.NsPerOp/1e6, tiled.AllocsPerOp,
			seed.NsPerOp/tiled.NsPerOp)
	}

	buf, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// measure runs fn via testing.Benchmark (which auto-scales iterations to
// its time target; the loop must run exactly b.N times or the per-op
// numbers skew).
func measure(name string, batch int, fn func()) Case {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	c := Case{
		Name:        name,
		Batch:       batch,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if c.NsPerOp > 0 {
		c.QPS = float64(batch) / (c.NsPerOp / 1e9)
	}
	return c
}
