// Command benchjson runs the engine hot-path comparison programmatically
// and writes a machine-readable benchmark file (default BENCH_hotpath.json)
// that starts the repo's measured performance trajectory.
//
// Five cases run per batch size — the BenchmarkTiledAnswer pair, an
// out-of-core leg, and their parallel variants:
//
//   - seed: the seed revision's per-query MemBoundTree hot path — scalar
//     PRF expansion (aes.NewCipher per tree node), freshly appended child
//     groups, one full table pass per query. The baseline predates the
//     early-termination wire format, so it always evaluates full-depth
//     (wire v1) keys.
//   - tiled: the batched/tiled hot path — dpf.ExpandBatch frontiers,
//     pooled scratch, one streaming table pass per tile of 32 queries, and
//     (at the default -early 2) early-terminated keys that cut PRF work
//     ~4× by converting each terminal seed into four leaf lanes (§3.1).
//   - tiled-paged: the same tiled hot path reading the table out-of-core
//     through a store.PagedBacking whose cache budget is a quarter of the
//     table, so every pass evicts and reloads pages. Its ns/op against
//     tiled shows the paging tax; the case is informational — the
//     -compare and -minqps gates only bind the "tiled" case (and, via the
//     "par:" -minqps prefix, "tiled-par").
//   - tiled-par / tiled-paged-par: the tiled and tiled-paged paths with
//     the table stream fanned across a worker per core
//     (strategy.WithWorkers): row-block parallel accumulate, pipelined
//     expand/stream overlap, and — on the paged leg — async page
//     readahead. Bit-identical answers; only the wall clock moves.
//
// The sequential cases are pinned to GOMAXPROCS=1 (matching the committed
// baseline's single-threaded numbers, whatever machine runs them); the
// parallel cases run at the host's full GOMAXPROCS, recorded separately
// as gomaxprocs_par. On a single-core host the par cases degrade to the
// sequential path and their ratio over tiled is ~1 — compare them only at
// gomaxprocs_par > 1.
//
// Each case also reports mb_per_sec, the table-streaming bandwidth the
// paper's §3.2.4 tableReadBytes model implies: the bytes the case's table
// passes must read (one full pass per query for seed, one per 32-query
// tile for tiled) divided by the measured time. It shows how close the
// answer kernel gets to memory bandwidth.
//
// With -compare FILE the run additionally gates against a committed
// baseline file: it fails (exit 1) if the tiled path's speedup over the
// seed path regresses more than 15% on any batch both files measured, or
// if tiled allocs/op leave single digits. Speedup ratios — not absolute
// ns/op — are compared because CI hardware differs from the machine that
// wrote the committed baseline; the ratio is the machine-normalized
// measure of the tiled path's health. -minqps "32=500" adds absolute
// tiled-throughput floors on top: a ratio gate alone cannot catch a
// kernel regression that slows seed and tiled alike. A "par:" prefix on a
// -minqps entry ("par:32=1000") floors the tiled-par case instead — CI
// uses it to require real parallel speedup on multi-core runners.
//
// Usage:
//
//	benchjson [-o BENCH_hotpath.json] [-rows 65536] [-lanes 16]
//	          [-batches 1,8,32,128] [-early 2] [-compare BENCH_hotpath.json]
//	          [-minqps "32=500,par:32=1000"]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/seedbaseline"
	"gpudpf/internal/store"
	"gpudpf/internal/strategy"
)

// maxSpeedupRegression is the -compare gate: the tiled/seed speedup may
// drop at most this fraction below the committed baseline's.
const maxSpeedupRegression = 0.15

// maxTiledAllocs is the -compare gate on tiled allocs/op ("single digits").
const maxTiledAllocs = 9

// tileQueries mirrors strategy's query-tile width: the tiled path streams
// the table once per tile of this many queries, which is what its
// tableReadBytes (and so mb_per_sec) accounting divides by.
const tileQueries = 32

// Case is one measured benchmark configuration.
type Case struct {
	Name        string  `json:"name"`
	Batch       int     `json:"batch"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	QPS         float64 `json:"qps"`
	// MBPerSec is the table-streaming bandwidth implied by the §3.2.4
	// traffic model: the case's mandatory table reads divided by wall time.
	MBPerSec float64 `json:"mb_per_sec"`
}

// Output is the BENCH_hotpath.json schema.
type Output struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoOS          string `json:"goos"`
	GoArch        string `json:"goarch"`
	// GoMaxProcs is what the sequential cases ran under — always 1, since
	// they are pinned for comparability with the committed single-threaded
	// baseline. GoMaxProcsPar is the host's full parallelism, which the
	// tiled-par/tiled-paged-par cases run at.
	GoMaxProcs    int                `json:"gomaxprocs"`
	GoMaxProcsPar int                `json:"gomaxprocs_par"`
	Rows          int                `json:"rows"`
	Lanes         int                `json:"lanes"`
	PRG           string             `json:"prg"`
	Early         int                `json:"early"`
	Cases         []Case             `json:"cases"`
	Speedup       map[string]float64 `json:"speedup_tiled_over_seed"`
}

func main() {
	out := flag.String("o", "BENCH_hotpath.json", "output file")
	rows := flag.Int("rows", 1<<16, "table rows")
	lanes := flag.Int("lanes", 16, "uint32 lanes per row")
	batches := flag.String("batches", "1,8,32,128", "comma-separated batch sizes")
	early := flag.Int("early", dpf.DefaultEarlyBits, "early-termination depth for the tiled path's keys (0 = full-depth wire-v1)")
	compare := flag.String("compare", "", "committed baseline JSON to gate against (fail on >15% speedup regression or double-digit tiled allocs)")
	minQPS := flag.String("minqps", "", `absolute throughput floors, comma-separated "batch=qps" entries binding the tiled case (e.g. "32=500"); a "par:" prefix binds tiled-par instead (e.g. "32=500,par:32=1000")`)
	flag.Parse()

	tab, err := strategy.NewTable(*rows, *lanes)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	prg := dpf.NewAESPRG()

	// The paged leg shares one file + store across batches: the cache
	// budget is a quarter of the table, so every streaming pass misses.
	pagedDir, err := os.MkdirTemp("", "benchjson-paged-")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	defer os.RemoveAll(pagedDir)
	pagedPath := filepath.Join(pagedDir, "table.gpdf")
	if err := store.WriteTableFile(pagedPath, tab); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	allTableBytes := int64(*rows) * int64(*lanes) * 4
	pb, err := store.OpenPaged(pagedPath, store.PagedConfig{CacheBytes: allTableBytes / 4})
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	defer pb.Close()
	pagedStore, err := store.NewPaged(pb)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	pagedSnap := pagedStore.Acquire()
	defer pagedSnap.Release()

	// Sequential cases are pinned to one P so their numbers compare against
	// the committed baseline regardless of host width; the parallel cases
	// get the host's full width back.
	procs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(procs)

	o := Output{
		GeneratedUnix: time.Now().Unix(),
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		GoMaxProcs:    1,
		GoMaxProcsPar: procs,
		Rows:          *rows,
		Lanes:         *lanes,
		PRG:           prg.Name(),
		Early:         *early,
		Speedup:       map[string]float64{},
	}

	for _, bs := range strings.Split(*batches, ",") {
		batch, err := strconv.Atoi(strings.TrimSpace(bs))
		if err != nil || batch <= 0 {
			log.Fatalf("benchjson: bad batch %q", bs)
		}
		// Same indices for both paths; the seed baseline predates the v2
		// wire format, so it gets full-depth keys while the tiled path
		// evaluates the configured format.
		indices := make([]uint64, batch)
		for q := range indices {
			indices[q] = uint64(rng.Intn(tab.NumRows))
		}
		seedKeys := genKeys(prg, tab, indices, 0, rng)
		tiledKeys := genKeys(prg, tab, indices, *early, rng)
		tableBytes := int64(*rows) * int64(*lanes) * 4
		// The seed baseline streams the table once per query; the tiled
		// path once per tile (§3.2.4's tableReadBytes model).
		tiles := int64((batch + tileQueries - 1) / tileQueries)
		runtime.GOMAXPROCS(1)
		seed := measure("seed", batch, int64(batch)*tableBytes, func() {
			seedbaseline.Run(prg, seedKeys, tab, 128)
		})
		tiled := measure("tiled", batch, tiles*tableBytes, func() {
			var ctr gpu.Counters
			s := strategy.MemBoundTree{K: 128, Fused: true}
			if _, err := s.Run(prg, tiledKeys, tab, &ctr); err != nil {
				log.Fatalf("benchjson: %v", err)
			}
		})
		tiledPaged := measure("tiled-paged", batch, tiles*tableBytes, func() {
			var ctr gpu.Counters
			s := strategy.MemBoundTree{K: 128, Fused: true}
			ans := strategy.NewAnswers(len(tiledKeys), *lanes)
			if err := s.RunRangeInto(prg, tiledKeys, pagedSnap, 0, *rows, &ctr, ans); err != nil {
				log.Fatalf("benchjson: %v", err)
			}
		})
		runtime.GOMAXPROCS(procs)
		tiledPar := measure("tiled-par", batch, tiles*tableBytes, func() {
			var ctr gpu.Counters
			s := strategy.WithWorkers(strategy.MemBoundTree{K: 128, Fused: true}, procs)
			if _, err := s.Run(prg, tiledKeys, tab, &ctr); err != nil {
				log.Fatalf("benchjson: %v", err)
			}
		})
		tiledPagedPar := measure("tiled-paged-par", batch, tiles*tableBytes, func() {
			var ctr gpu.Counters
			s := strategy.WithWorkers(strategy.MemBoundTree{K: 128, Fused: true}, procs)
			ans := strategy.NewAnswers(len(tiledKeys), *lanes)
			if err := s.RunRangeInto(prg, tiledKeys, pagedSnap, 0, *rows, &ctr, ans); err != nil {
				log.Fatalf("benchjson: %v", err)
			}
		})
		o.Cases = append(o.Cases, seed, tiled, tiledPaged, tiledPar, tiledPagedPar)
		if tiled.NsPerOp > 0 {
			o.Speedup[strconv.Itoa(batch)] = seed.NsPerOp / tiled.NsPerOp
		}
		fmt.Printf("batch=%d: seed %.1fms (%d allocs/op), tiled %.1fms (%d allocs/op), tiled-paged %.1fms, tiled-par %.1fms, tiled-paged-par %.1fms, speedup %.2fx\n",
			batch, seed.NsPerOp/1e6, seed.AllocsPerOp, tiled.NsPerOp/1e6, tiled.AllocsPerOp,
			tiledPaged.NsPerOp/1e6, tiledPar.NsPerOp/1e6, tiledPagedPar.NsPerOp/1e6, seed.NsPerOp/tiled.NsPerOp)
	}

	buf, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *compare != "" {
		if err := compareBaseline(*compare, o); err != nil {
			log.Fatalf("benchjson: regression gate: %v", err)
		}
		fmt.Printf("regression gate vs %s: ok\n", *compare)
	}
	if *minQPS != "" {
		if err := checkThroughputFloors(*minQPS, o); err != nil {
			log.Fatalf("benchjson: throughput floor: %v", err)
		}
		fmt.Printf("throughput floors (%s): ok\n", *minQPS)
	}
}

// checkThroughputFloors enforces -minqps: each "batch=qps" entry is an
// absolute floor on the tiled case's measured throughput at that batch; a
// "par:batch=qps" entry binds the tiled-par case instead. Unlike the
// -compare ratio gate, this catches a kernel regression that slows the
// seed baseline and the tiled path proportionally.
func checkThroughputFloors(spec string, got Output) error {
	for _, entry := range strings.Split(spec, ",") {
		batchStr, qpsStr, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return fmt.Errorf("bad -minqps entry %q (want [par:]batch=qps)", entry)
		}
		caseName := "tiled"
		if rest, isPar := strings.CutPrefix(batchStr, "par:"); isPar {
			caseName = "tiled-par"
			batchStr = rest
		}
		batch, err := strconv.Atoi(batchStr)
		if err != nil {
			return fmt.Errorf("bad -minqps batch %q", batchStr)
		}
		floor, err := strconv.ParseFloat(qpsStr, 64)
		if err != nil || floor <= 0 {
			return fmt.Errorf("bad -minqps floor %q", qpsStr)
		}
		found := false
		for _, c := range got.Cases {
			if c.Name != caseName || c.Batch != batch {
				continue
			}
			found = true
			if c.QPS < floor {
				return fmt.Errorf("batch %d: %s %.1f QPS below floor %.1f", batch, caseName, c.QPS, floor)
			}
			fmt.Printf("batch %d: %s %.1f QPS >= floor %.1f\n", batch, caseName, c.QPS, floor)
		}
		if !found {
			return fmt.Errorf("-minqps batch %d (%s) was not measured (check -batches)", batch, caseName)
		}
	}
	return nil
}

// genKeys generates one party-0 key per index at the given termination
// depth (clamped to the table's tree like the protocol clients clamp).
func genKeys(prg dpf.PRG, tab *strategy.Table, indices []uint64, early int, rng *rand.Rand) []*dpf.Key {
	early = dpf.ClampEarly(early, tab.Bits())
	keys := make([]*dpf.Key, len(indices))
	for q, idx := range indices {
		k0, _, err := dpf.GenEarly(prg, idx, tab.Bits(), []uint32{1}, early, rng)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		keys[q] = &k0
	}
	return keys
}

// compareBaseline diffs this run against a committed baseline: per batch
// present in both files, the tiled/seed speedup must not regress more than
// maxSpeedupRegression, and this run's tiled allocs/op must stay single
// digits.
func compareBaseline(path string, got Output) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Output
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	// Ratios are only comparable on the same workload shape: a rows/lanes/
	// early/prg drift between the committed file and the CI flags would
	// make the 15% threshold meaningless, so it is an error, not a silent
	// pass.
	if base.Rows != got.Rows || base.Lanes != got.Lanes || base.Early != got.Early || base.PRG != got.PRG {
		return fmt.Errorf("baseline shape (rows=%d lanes=%d early=%d prg=%s) != this run (rows=%d lanes=%d early=%d prg=%s); regenerate %s or fix the flags",
			base.Rows, base.Lanes, base.Early, base.PRG, got.Rows, got.Lanes, got.Early, got.PRG, path)
	}
	compared := 0
	for batch, baseline := range base.Speedup {
		current, ok := got.Speedup[batch]
		if !ok || baseline <= 0 {
			continue
		}
		compared++
		if current < baseline*(1-maxSpeedupRegression) {
			return fmt.Errorf("batch %s: tiled speedup %.2fx regressed >%.0f%% below committed %.2fx",
				batch, current, maxSpeedupRegression*100, baseline)
		}
		fmt.Printf("batch %s: speedup %.2fx vs committed %.2fx\n", batch, current, baseline)
	}
	if compared == 0 {
		return fmt.Errorf("no overlapping batches between this run and %s", path)
	}
	for _, c := range got.Cases {
		if c.Name == "tiled" && c.AllocsPerOp > maxTiledAllocs {
			return fmt.Errorf("batch %d: tiled path allocates %d/op, single digits required", c.Batch, c.AllocsPerOp)
		}
	}
	return nil
}

// measure runs fn via testing.Benchmark (which auto-scales iterations to
// its time target; the loop must run exactly b.N times or the per-op
// numbers skew).
func measure(name string, batch int, tableBytes int64, fn func()) Case {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	c := Case{
		Name:        name,
		Batch:       batch,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if c.NsPerOp > 0 {
		c.QPS = float64(batch) / (c.NsPerOp / 1e9)
		c.MBPerSec = float64(tableBytes) / (c.NsPerOp / 1e9) / 1e6
	}
	return c
}
