// Command pirclient privately retrieves rows from a pair of pirserver
// instances. Neither server learns which index was queried.
//
//	pirclient -server0 host0:7700 -server1 host1:7701 -rows 65536 -index 12345
//
// With -repeat N the fetch runs N times and reports aggregate
// queries/second — a simple load generator for the servers' batched
// engine path.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/pir"
)

func main() {
	s0 := flag.String("server0", "127.0.0.1:7700", "party-0 server address")
	s1 := flag.String("server1", "127.0.0.1:7701", "party-1 server address")
	rows := flag.Int("rows", 65536, "table rows (must match servers)")
	prg := flag.String("prg", "aes128", "PRF (must match servers)")
	early := flag.Int("early", dpf.DefaultEarlyBits, "early-termination depth for generated keys (must match servers; 0 = legacy full-depth wire-v1 keys)")
	indices := flag.String("index", "0", "comma-separated row indices to fetch privately")
	repeat := flag.Int("repeat", 1, "fetch the index set this many times and report aggregate QPS")
	flag.Parse()

	var wanted []uint64
	for _, part := range strings.Split(*indices, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			log.Fatalf("pirclient: bad index %q: %v", part, err)
		}
		wanted = append(wanted, v)
	}

	e0, err := pir.Dial(*s0)
	if err != nil {
		log.Fatalf("pirclient: %v", err)
	}
	defer e0.Close()
	e1, err := pir.Dial(*s1)
	if err != nil {
		log.Fatalf("pirclient: %v", err)
	}
	defer e1.Close()

	client, err := pir.NewClientEarly(*prg, *rows, *early, nil)
	if err != nil {
		log.Fatalf("pirclient: %v", err)
	}
	ts := &pir.TwoServer{Client: client, E0: e0, E1: e1}
	start := time.Now()
	got, stats, err := ts.Fetch(wanted)
	if err != nil {
		log.Fatalf("pirclient: %v", err)
	}
	for i := 1; i < *repeat; i++ {
		if _, _, err := ts.Fetch(wanted); err != nil {
			log.Fatalf("pirclient: repeat %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	for q, idx := range wanted {
		fmt.Printf("row %d: % x ...\n", idx, head(got[q], 8))
	}
	fmt.Printf("communication: %d bytes up, %d bytes down (%d bytes/query/server key)\n",
		stats.UpBytes, stats.DownBytes, client.KeyBytes())
	if *repeat > 1 {
		total := *repeat * len(wanted)
		fmt.Printf("load: %d queries in %v (%.0f queries/sec)\n",
			total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	}
}

func head(row []uint32, n int) []uint32 {
	if len(row) < n {
		return row
	}
	return row[:n]
}
