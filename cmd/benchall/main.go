// Command benchall regenerates every table and figure of the paper's
// evaluation section and prints them as aligned text tables.
//
// Usage:
//
//	benchall            # run everything (trains the three app models)
//	benchall -only fig6 # run one artifact
//	benchall -fast      # hardware-model artifacts only (no model training)
package main

import (
	"flag"
	"fmt"
	"os"

	"gpudpf/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single artifact (fig3, tab1, tab2, fig6, fig8, fig9, fig11, fig12, fig13, fig14, tab4, tab5, fig16, fig17, fig18, fig19, fig20)")
	fast := flag.Bool("fast", false, "skip the experiments that train ML models")
	flag.Parse()

	runners := map[string]func() (*experiments.Table, error){
		"fig3":          experiments.Fig3,
		"tab1":          experiments.Table1,
		"tab2":          experiments.Table2,
		"fig6":          experiments.Fig6,
		"fig8":          experiments.Fig8,
		"fig9":          experiments.Fig9,
		"fig11":         experiments.Fig11Table3,
		"fig12":         experiments.Fig12,
		"fig13":         experiments.Fig13,
		"fig14":         experiments.Fig14,
		"tab4":          experiments.Table4,
		"tab5":          experiments.Table5,
		"fig16":         experiments.Fig16,
		"fig17":         experiments.Fig17,
		"fig18":         experiments.Fig18,
		"fig19":         experiments.Fig19,
		"fig20":         experiments.Fig20,
		"ext-multigpu":  experiments.ExtMultiGPU,
		"ext-serving":   experiments.ExtServing,
		"ext-integrity": experiments.ExtIntegrity,
		"abl-coop":      experiments.AblationCoopThreshold,
		"abl-hotfrac":   experiments.AblationHotFraction,
		"abl-coloc":     experiments.AblationColocation,
	}
	if *only != "" {
		run, ok := runners[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchall: unknown artifact %q\n", *only)
			os.Exit(2)
		}
		emit(run)
		return
	}
	order := []string{"fig3", "tab1", "tab2", "fig6", "fig8", "fig9", "fig13", "fig14", "tab4", "tab5",
		"ext-multigpu", "ext-serving", "ext-integrity", "abl-coop"}
	slow := []string{"fig11", "fig12", "fig16", "fig17", "fig18", "fig19", "fig20", "abl-hotfrac", "abl-coloc"}
	if !*fast {
		order = append(order, slow...)
	}
	for _, id := range order {
		emit(runners[id])
	}
}

func emit(run func() (*experiments.Table, error)) {
	tab, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(tab.Render())
}
