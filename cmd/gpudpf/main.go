// Command gpudpf is a CLI for the DPF core: generate key pairs, expand
// them, and report modeled execution profiles for the paper's GPU
// strategies.
//
//	gpudpf gen -bits 20 -index 1234 -out0 k0.bin -out1 k1.bin
//	gpudpf eval -key k0.bin -at 1234
//	gpudpf bench -bits 20 -batch 64 -prg chacha20 -strategy membound
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "eval":
		cmdEval(os.Args[2:])
	case "bench":
		cmdBench(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gpudpf {gen|eval|bench} [flags]")
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bits := fs.Int("bits", 20, "tree depth (domain 2^bits)")
	index := fs.Uint64("index", 0, "secret index alpha")
	prgName := fs.String("prg", "aes128", "PRF")
	early := fs.Int("early", dpf.DefaultEarlyBits, "early-termination depth (0 = legacy full-depth wire-v1 keys)")
	out0 := fs.String("out0", "key0.bin", "party-0 key file")
	out1 := fs.String("out1", "key1.bin", "party-1 key file")
	fs.Parse(args)

	prg, err := dpf.NewPRG(*prgName)
	if err != nil {
		log.Fatalf("gpudpf gen: %v", err)
	}
	// Clamp the default depth for tiny trees like the protocol clients do,
	// so `gen -bits 2` keeps working; an explicitly requested depth that
	// does not fit still errors.
	if *early == dpf.DefaultEarlyBits {
		*early = dpf.ClampEarly(*early, *bits)
	}
	k0, k1, err := dpf.GenEarly(prg, *index, *bits, []uint32{1}, *early, rand.Reader)
	if err != nil {
		log.Fatalf("gpudpf gen: %v", err)
	}
	for _, pair := range []struct {
		path string
		k    *dpf.Key
	}{{*out0, &k0}, {*out1, &k1}} {
		raw, err := pair.k.MarshalBinary()
		if err != nil {
			log.Fatalf("gpudpf gen: %v", err)
		}
		if err := os.WriteFile(pair.path, raw, 0o644); err != nil {
			log.Fatalf("gpudpf gen: %v", err)
		}
	}
	fmt.Printf("wrote %s and %s (%d bytes each, wire v%d, domain 2^%d, prg %s)\n",
		*out0, *out1, dpf.MarshaledSizeEarly(*bits, 1, *early), wireVer(*early), *bits, *prgName)
}

func wireVer(early int) int {
	if early > 0 {
		return 2
	}
	return 1
}

func cmdEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	keyPath := fs.String("key", "key0.bin", "key file")
	at := fs.Uint64("at", 0, "evaluation index")
	prgName := fs.String("prg", "aes128", "PRF")
	fs.Parse(args)

	raw, err := os.ReadFile(*keyPath)
	if err != nil {
		log.Fatalf("gpudpf eval: %v", err)
	}
	var k dpf.Key
	if err := k.UnmarshalBinary(raw); err != nil {
		log.Fatalf("gpudpf eval: %v", err)
	}
	prg, err := dpf.NewPRG(*prgName)
	if err != nil {
		log.Fatalf("gpudpf eval: %v", err)
	}
	start := time.Now()
	v, err := dpf.EvalAt(prg, &k, *at)
	if err != nil {
		log.Fatalf("gpudpf eval: %v", err)
	}
	fmt.Printf("party %d share at %d: %v (%.1fµs)\n",
		k.Party, *at, v, float64(time.Since(start).Microseconds()))
}

func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	bits := fs.Int("bits", 20, "tree depth")
	batch := fs.Int("batch", 64, "batch size")
	lanes := fs.Int("lanes", 64, "entry lanes (bytes/4)")
	prgName := fs.String("prg", "aes128", "PRF")
	stratName := fs.String("strategy", "membound", "branch | level | membound | coop | cpu1 | cpu32")
	fs.Parse(args)

	prg, err := dpf.NewPRG(*prgName)
	if err != nil {
		log.Fatalf("gpudpf bench: %v", err)
	}
	strats := map[string]strategy.Strategy{
		"branch":   strategy.BranchParallel{},
		"level":    strategy.LevelByLevel{},
		"membound": strategy.MemBoundTree{K: strategy.DefaultK, Fused: true},
		"coop":     strategy.CoopGroups{},
		"cpu1":     strategy.CPUBaseline{Threads: 1},
		"cpu32":    strategy.CPUBaseline{Threads: 32},
	}
	s, ok := strats[*stratName]
	if !ok {
		log.Fatalf("gpudpf bench: unknown strategy %q", *stratName)
	}
	rep, err := s.Model(gpu.TeslaV100(), prg, *bits, *batch, *lanes)
	if err != nil {
		log.Fatalf("gpudpf bench: %v", err)
	}
	fmt.Println(rep)
}
