package pir

import (
	"crypto/rand"
	"fmt"
	"io"

	"gpudpf/internal/dpf"
)

// Client generates PIR queries and reconstructs answers. It is the
// on-device side of Figure 2: Gen is cheap enough for a phone-class CPU
// (Figure 3).
type Client struct {
	prg   dpf.PRG
	rng   io.Reader
	bits  int
	rows  int
	early int
}

// NewClient builds a client for a table with the given row count, using the
// named PRF (which must match the servers'). rng may be nil to use
// crypto/rand. Keys use the default early-termination depth (wire format
// v2, 2 levels for 4 lanes/leaf); use NewClientEarly to interoperate with
// servers configured for a different depth.
func NewClient(prgName string, rows int, rng io.Reader) (*Client, error) {
	return NewClientEarly(prgName, rows, dpf.DefaultEarlyBits, rng)
}

// NewClientEarly is NewClient with an explicit early-termination depth:
// early = 0 generates legacy full-depth (wire v1) keys; positive depths
// are clamped to what the table's tree supports, exactly as the server
// side clamps its configured depth, so matching flags stay matched on
// tiny tables.
func NewClientEarly(prgName string, rows, early int, rng io.Reader) (*Client, error) {
	prg, err := dpf.NewPRG(prgName)
	if err != nil {
		return nil, err
	}
	if rows <= 0 {
		return nil, fmt.Errorf("pir: table needs at least one row, got %d", rows)
	}
	if early < 0 || early > dpf.MaxEarlyBits {
		return nil, fmt.Errorf("pir: early-termination depth %d out of range [0,%d]", early, dpf.MaxEarlyBits)
	}
	if rng == nil {
		rng = rand.Reader
	}
	bits := dpf.DomainBits(rows)
	return &Client{prg: prg, rng: rng, bits: bits, rows: rows, early: dpf.ClampEarly(early, bits)}, nil
}

// Bits returns the DPF tree depth the client generates keys for.
func (c *Client) Bits() int { return c.bits }

// Early returns the early-termination depth the client's keys carry
// (0 = full-depth wire v1).
func (c *Client) Early() int { return c.early }

// Query encodes the secret index into one marshaled key per server.
// Each key alone is indistinguishable from a key for any other index.
func (c *Client) Query(index uint64) (key0, key1 []byte, err error) {
	if index >= uint64(c.rows) {
		return nil, nil, fmt.Errorf("pir: index %d outside table of %d rows", index, c.rows)
	}
	k0, k1, err := dpf.GenEarly(c.prg, index, c.bits, []uint32{1}, c.early, c.rng)
	if err != nil {
		return nil, nil, fmt.Errorf("pir: generating keys: %w", err)
	}
	if key0, err = k0.MarshalBinary(); err != nil {
		return nil, nil, err
	}
	if key1, err = k1.MarshalBinary(); err != nil {
		return nil, nil, err
	}
	return key0, key1, nil
}

// QueryBatch generates keys for a batch of indices; the q-th entry of each
// returned slice goes to the respective server.
func (c *Client) QueryBatch(indices []uint64) (keys0, keys1 [][]byte, err error) {
	keys0 = make([][]byte, len(indices))
	keys1 = make([][]byte, len(indices))
	for q, idx := range indices {
		keys0[q], keys1[q], err = c.Query(idx)
		if err != nil {
			return nil, nil, err
		}
	}
	return keys0, keys1, nil
}

// KeyBytes is the wire size of one key for this client's table shape and
// termination depth.
func (c *Client) KeyBytes() int { return dpf.MarshaledSizeEarly(c.bits, 1, c.early) }

// Reconstruct adds the two servers' answer shares lane-wise (mod 2^32),
// yielding the queried row.
func Reconstruct(share0, share1 []uint32) ([]uint32, error) {
	if len(share0) != len(share1) {
		return nil, fmt.Errorf("pir: share lengths differ: %d vs %d", len(share0), len(share1))
	}
	out := make([]uint32, len(share0))
	for i := range out {
		out[i] = share0[i] + share1[i]
	}
	return out, nil
}

// ReconstructFloats is Reconstruct for float32 embedding rows.
func ReconstructFloats(share0, share1 []uint32) ([]float32, error) {
	row, err := Reconstruct(share0, share1)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(row))
	UnpackFloats(out, row)
	return out, nil
}
