package pir

import (
	"crypto/rand"
	"fmt"
	"io"

	"gpudpf/internal/dpf"
)

// Client generates PIR queries and reconstructs answers. It is the
// on-device side of Figure 2: Gen is cheap enough for a phone-class CPU
// (Figure 3).
type Client struct {
	prg  dpf.PRG
	rng  io.Reader
	bits int
	rows int
}

// NewClient builds a client for a table with the given row count, using the
// named PRF (which must match the servers'). rng may be nil to use
// crypto/rand.
func NewClient(prgName string, rows int, rng io.Reader) (*Client, error) {
	prg, err := dpf.NewPRG(prgName)
	if err != nil {
		return nil, err
	}
	if rows <= 0 {
		return nil, fmt.Errorf("pir: table needs at least one row, got %d", rows)
	}
	if rng == nil {
		rng = rand.Reader
	}
	bits := 1
	for 1<<uint(bits) < rows {
		bits++
	}
	return &Client{prg: prg, rng: rng, bits: bits, rows: rows}, nil
}

// Bits returns the DPF tree depth the client generates keys for.
func (c *Client) Bits() int { return c.bits }

// Query encodes the secret index into one marshaled key per server.
// Each key alone is indistinguishable from a key for any other index.
func (c *Client) Query(index uint64) (key0, key1 []byte, err error) {
	if index >= uint64(c.rows) {
		return nil, nil, fmt.Errorf("pir: index %d outside table of %d rows", index, c.rows)
	}
	k0, k1, err := dpf.Gen(c.prg, index, c.bits, []uint32{1}, c.rng)
	if err != nil {
		return nil, nil, fmt.Errorf("pir: generating keys: %w", err)
	}
	if key0, err = k0.MarshalBinary(); err != nil {
		return nil, nil, err
	}
	if key1, err = k1.MarshalBinary(); err != nil {
		return nil, nil, err
	}
	return key0, key1, nil
}

// QueryBatch generates keys for a batch of indices; the q-th entry of each
// returned slice goes to the respective server.
func (c *Client) QueryBatch(indices []uint64) (keys0, keys1 [][]byte, err error) {
	keys0 = make([][]byte, len(indices))
	keys1 = make([][]byte, len(indices))
	for q, idx := range indices {
		keys0[q], keys1[q], err = c.Query(idx)
		if err != nil {
			return nil, nil, err
		}
	}
	return keys0, keys1, nil
}

// KeyBytes is the wire size of one key for this client's table shape.
func (c *Client) KeyBytes() int { return dpf.MarshaledSize(c.bits, 1) }

// Reconstruct adds the two servers' answer shares lane-wise (mod 2^32),
// yielding the queried row.
func Reconstruct(share0, share1 []uint32) ([]uint32, error) {
	if len(share0) != len(share1) {
		return nil, fmt.Errorf("pir: share lengths differ: %d vs %d", len(share0), len(share1))
	}
	out := make([]uint32, len(share0))
	for i := range out {
		out[i] = share0[i] + share1[i]
	}
	return out, nil
}

// ReconstructFloats is Reconstruct for float32 embedding rows.
func ReconstructFloats(share0, share1 []uint32) ([]float32, error) {
	row, err := Reconstruct(share0, share1)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(row))
	UnpackFloats(out, row)
	return out, nil
}
