package pir

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gpudpf/internal/engine"
	"gpudpf/internal/serving"
	"gpudpf/internal/wireio"
)

// Answerer is anything that can answer a marshaled key batch: a Server, an
// engine backend adapter, or a serving.Batcher front door.
type Answerer interface {
	Answer(keys [][]byte) ([][]uint32, error)
}

// BatchUpdater is the optional update capability of an Answerer: install a
// batch of row writes as one atomic table epoch and report the new epoch.
// *Server and serving.Front implement it; Serve probes for it to handle
// the wire update op.
type BatchUpdater interface {
	UpdateBatch(writes []engine.RowWrite) (uint64, error)
}

// Endpoint is one PIR server as seen by a client: in-process for
// simulation, or remote over TCP for a real two-cloud deployment.
type Endpoint interface {
	Answerer
	// Close releases the endpoint.
	Close() error
}

// InProcess wraps any Answerer (typically a *Server) as an Endpoint
// without a network.
type InProcess struct{ Server Answerer }

// Answer implements Endpoint.
func (e InProcess) Answer(keys [][]byte) ([][]uint32, error) { return e.Server.Answer(keys) }

// Close implements Endpoint.
func (e InProcess) Close() error { return nil }

// request and response are the gob wire messages. A request carries
// exactly one op: a key batch to answer (Keys), a row batch to install
// (Writes), or a stats probe (Stats). The op fields are mutually
// exclusive; a request mixing them is a protocol error. Old clients that
// only ever set Keys are wire-compatible — gob treats the absent fields
// as zero.
type request struct {
	Keys   [][]byte
	Writes []engine.RowWrite
	Stats  bool
}

type response struct {
	Answers [][]uint32
	// Epoch is the table epoch an update op installed.
	Epoch uint64
	// Stats answers a stats probe.
	Stats *serving.Stats
	Err   string
	// Code names well-known errors so remote clients can match them with
	// errors.Is instead of parsing Err strings: CodeOverloaded means the
	// request was shed at the admission bound (serving.ErrOverloaded).
	Code int
}

// Wire error codes carried in response.Code. 0 means "no named code" —
// the error (if any) is only the Err string.
const (
	// CodeOverloaded marks a request shed by admission control; a Remote
	// maps it back to serving.ErrOverloaded so a load generator can count
	// sheds as sheds, not as server faults.
	CodeOverloaded = 1
)

// errCode names an error for the wire (0 when it has no code).
func errCode(err error) int {
	if errors.Is(err, serving.ErrOverloaded) {
		return CodeOverloaded
	}
	return 0
}

// codeErr resolves a wire code back to its named error (nil for unknown
// codes — the Err string still carries the message).
func codeErr(code int) error {
	if code == CodeOverloaded {
		return serving.ErrOverloaded
	}
	return nil
}

// MaxRequestBytes caps one gob-encoded request message accepted by Serve.
// It is far above any legitimate batch (a key is a few hundred bytes; 8 MiB
// holds ~20k of them) but keeps a hostile peer from making the decoder
// allocate arbitrarily — gob grows its buffer to the DECLARED message size
// before reading the payload.
const MaxRequestBytes = 8 << 20

// ErrRequestTooLarge is the named protocol error a connection gets (and
// serveConn answers with) when a request message declares more than
// MaxRequestBytes; the connection is closed afterwards.
var ErrRequestTooLarge = fmt.Errorf("pir: request exceeds the %d-byte frame cap", MaxRequestBytes)

// MaxResponseBytes caps one gob-encoded response message a Remote client
// accepts — the mirror of MaxRequestBytes: answers scale with
// batch × lanes (a 512-key batch over 2 KiB rows — 512 lanes — is
// ~1 MiB), and a hostile or misdialed peer must not be able to make the
// CLIENT allocate arbitrarily either.
const MaxResponseBytes = 64 << 20

// ErrResponseTooLarge is the named error a Remote returns when the server
// declares a response over MaxResponseBytes.
var ErrResponseTooLarge = fmt.Errorf("pir: response exceeds the %d-byte frame cap", MaxResponseBytes)

// Serve runs a blocking accept loop answering PIR requests on l. Each
// connection carries a stream of gob-encoded request/response pairs. Serve
// returns when the listener closes. s may be a *Server or any other
// request path (e.g. a batching front door over an engine replica).
func Serve(l net.Listener, s Answerer) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("pir: accept: %w", err)
		}
		go serveConn(conn, s)
	}
}

// maxGobMessagesPerDecode bounds the gob messages one Decode may consume,
// on either side of the connection: a handful of type definitions plus
// the value. Without it a peer could stream endless small definition
// messages — each under the byte cap — growing the decoder's type tables
// without bound inside one Decode call.
const maxGobMessagesPerDecode = 64

// ErrTooManyMessages is the named protocol error for a peer whose single
// request or response consumed more than maxGobMessagesPerDecode gob
// messages — a different violation than the byte caps, named separately
// so nobody debugs a size limit that was never exceeded.
var ErrTooManyMessages = fmt.Errorf("pir: message exceeds the %d-gob-message cap", maxGobMessagesPerDecode)

// capViolation maps a limiter error to the named protocol error to report
// (nil when err is not a cap violation).
func capViolation(err error, tooBig error) error {
	switch {
	case errors.Is(err, wireio.ErrMessageTooBig):
		return tooBig
	case errors.Is(err, wireio.ErrMessageBudget):
		return ErrTooManyMessages
	}
	return nil
}

func serveConn(conn net.Conn, s Answerer) {
	defer conn.Close()
	// The limiter parses the gob message framing itself and rejects an
	// oversized declaration before the decoder allocates for it.
	lim := wireio.LimitGobMessages(conn, MaxRequestBytes)
	dec := gob.NewDecoder(lim)
	enc := gob.NewEncoder(conn)
	for {
		lim.ResetMessageBudget(maxGobMessagesPerDecode)
		var req request
		if err := dec.Decode(&req); err != nil {
			if violation := capViolation(err, ErrRequestTooLarge); violation != nil {
				// Name the protocol violation to the peer, then hang up:
				// the stream position is unrecoverable past a refused frame.
				_ = enc.Encode(&response{Err: violation.Error()})
				// The refused message's payload is likely still queued in
				// the kernel receive buffer; closing over unread bytes
				// RSTs the connection and discards the reply we just sent
				// before the peer can read it. Drain a bounded amount
				// under a deadline, then close.
				conn.SetReadDeadline(time.Now().Add(5 * time.Second))
				// Past maxDrainBytes the peer is not a confused client
				// worth a graceful goodbye; let the reset happen.
				const maxDrainBytes = 2 * MaxRequestBytes
				drain := lim.PendingBytes()
				if drain > maxDrainBytes {
					drain = maxDrainBytes
				}
				_, _ = io.CopyN(io.Discard, conn, drain)
			}
			return // EOF or broken peer; nothing to report on this side
		}
		resp := handle(s, &req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handle executes one decoded request against the server's request path,
// dispatching on which op the request carries.
func handle(s Answerer, req *request) *response {
	var resp response
	ops := 0
	if len(req.Keys) > 0 {
		ops++
	}
	if len(req.Writes) > 0 {
		ops++
	}
	if req.Stats {
		ops++
	}
	switch {
	case ops != 1:
		resp.Err = "pir: request must carry exactly one op (keys, writes, or stats)"
	case len(req.Keys) > 0:
		answers, err := s.Answer(req.Keys)
		if err != nil {
			resp.Err = err.Error()
			resp.Code = errCode(err)
		} else {
			resp.Answers = answers
		}
	case len(req.Writes) > 0:
		up, ok := s.(BatchUpdater)
		if !ok {
			resp.Err = "pir: server does not accept updates"
			break
		}
		epoch, err := up.UpdateBatch(req.Writes)
		if err != nil {
			resp.Err = err.Error()
			resp.Code = errCode(err)
		} else {
			resp.Epoch = epoch
		}
	default: // stats probe
		src, ok := s.(serving.StatsSource)
		if !ok {
			resp.Err = "pir: server does not report serving stats"
			break
		}
		stats := src.ServingStats()
		resp.Stats = &stats
	}
	return &resp
}

// Remote is a TCP Endpoint. It is safe for concurrent use; requests are
// serialized over one connection.
type Remote struct {
	mu   sync.Mutex
	conn net.Conn
	lim  *wireio.GobLimiter
	dec  *gob.Decoder
	enc  *gob.Encoder
}

// Dial connects to a PIR server started with Serve.
func Dial(addr string) (*Remote, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pir: dial %s: %w", addr, err)
	}
	lim := wireio.LimitGobMessages(conn, MaxResponseBytes)
	return &Remote{
		conn: conn,
		lim:  lim,
		dec:  gob.NewDecoder(lim),
		enc:  gob.NewEncoder(conn),
	}, nil
}

// roundTrip sends one request and decodes its response, mapping a named
// wire code back to its sentinel error so errors.Is works across the
// network boundary.
func (r *Remote) roundTrip(req *request) (*response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("pir: send: %w", err)
	}
	r.lim.ResetMessageBudget(maxGobMessagesPerDecode)
	var resp response
	if err := r.dec.Decode(&resp); err != nil {
		if violation := capViolation(err, ErrResponseTooLarge); violation != nil {
			return nil, fmt.Errorf("%w: %v", violation, err)
		}
		return nil, fmt.Errorf("pir: receive: %w", err)
	}
	if resp.Err != "" {
		if named := codeErr(resp.Code); named != nil {
			return nil, fmt.Errorf("pir: server: %w", named)
		}
		return nil, fmt.Errorf("pir: server: %s", resp.Err)
	}
	return &resp, nil
}

// Answer implements Endpoint.
func (r *Remote) Answer(keys [][]byte) ([][]uint32, error) {
	resp, err := r.roundTrip(&request{Keys: keys})
	if err != nil {
		return nil, err
	}
	return resp.Answers, nil
}

// UpdateBatch installs a batch of row writes on the server as one atomic
// table epoch and returns the epoch it installed (the wire face of
// BatchUpdater).
func (r *Remote) UpdateBatch(writes []engine.RowWrite) (uint64, error) {
	resp, err := r.roundTrip(&request{Writes: writes})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// Stats fetches the server's serving stats (admission outcomes and
// epoch-retry counts) — what the load harness reconciles its own shed and
// retry observations against.
func (r *Remote) Stats() (serving.Stats, error) {
	resp, err := r.roundTrip(&request{Stats: true})
	if err != nil {
		return serving.Stats{}, err
	}
	if resp.Stats == nil {
		return serving.Stats{}, errors.New("pir: server returned no stats")
	}
	return *resp.Stats, nil
}

// Close implements Endpoint.
func (r *Remote) Close() error { return r.conn.Close() }

// CommStats records the exact application-layer bytes a fetch moved.
type CommStats struct {
	// UpBytes is the client→servers key traffic (both servers).
	UpBytes int64
	// DownBytes is the servers→client share traffic (both servers).
	DownBytes int64
}

// Total is the full communication cost of the exchange.
func (c CommStats) Total() int64 { return c.UpBytes + c.DownBytes }

// TwoServer drives the complete protocol of Figure 2 against a pair of
// non-colluding endpoints.
type TwoServer struct {
	// Client generates keys and reconstructs rows.
	Client *Client
	// E0 and E1 are the party-0 and party-1 servers.
	E0, E1 Endpoint
}

// Fetch privately retrieves the given rows. Both servers are queried
// concurrently, mirroring the deployment where they are different clouds.
func (ts *TwoServer) Fetch(indices []uint64) ([][]uint32, CommStats, error) {
	var stats CommStats
	if len(indices) == 0 {
		return nil, stats, errors.New("pir: no indices to fetch")
	}
	keys0, keys1, err := ts.Client.QueryBatch(indices)
	if err != nil {
		return nil, stats, err
	}
	for q := range keys0 {
		stats.UpBytes += int64(len(keys0[q]) + len(keys1[q]))
	}

	type result struct {
		answers [][]uint32
		err     error
	}
	ch := make(chan result, 1)
	go func() {
		a, err := ts.E0.Answer(keys0)
		ch <- result{a, err}
	}()
	a1, err1 := ts.E1.Answer(keys1)
	r0 := <-ch
	if r0.err != nil {
		return nil, stats, fmt.Errorf("pir: server 0: %w", r0.err)
	}
	if err1 != nil {
		return nil, stats, fmt.Errorf("pir: server 1: %w", err1)
	}
	if len(r0.answers) != len(indices) || len(a1) != len(indices) {
		return nil, stats, fmt.Errorf("pir: servers returned %d/%d answers for %d queries",
			len(r0.answers), len(a1), len(indices))
	}
	rows := make([][]uint32, len(indices))
	for q := range indices {
		stats.DownBytes += int64(len(r0.answers[q])+len(a1[q])) * 4
		rows[q], err = Reconstruct(r0.answers[q], a1[q])
		if err != nil {
			return nil, stats, err
		}
	}
	return rows, stats, nil
}

// BackendEndpoint adapts any engine.Backend — typically an engine.Cluster
// whose shards live on other machines — as a local Endpoint, so TwoServer
// can drive the two-server protocol with each "server" being a whole
// distributed replica.
type BackendEndpoint struct {
	Backend engine.Backend
}

// Answer implements Endpoint.
func (e BackendEndpoint) Answer(keys [][]byte) ([][]uint32, error) {
	return e.Backend.Answer(context.Background(), keys)
}

// Close implements Endpoint, closing the backend when it is closeable
// (engine.Cluster closes its remote shard clients).
func (e BackendEndpoint) Close() error {
	if closer, ok := engine.AsCloser(e.Backend); ok {
		return closer.Close()
	}
	return nil
}

var _ Endpoint = InProcess{}
var _ Endpoint = (*Remote)(nil)
var _ Endpoint = BackendEndpoint{}
