package pir

import (
	"fmt"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

// Server is one of the two non-colluding PIR servers: it holds a replica of
// the table and expands client keys with a DPF execution strategy. The
// honest-but-curious server learns nothing from a key except the table
// shape and the query count.
type Server struct {
	party uint8
	prg   dpf.PRG
	tab   *Table
	strat strategy.Strategy
	ctr   gpu.Counters
}

// ServerOption customizes a Server.
type ServerOption func(*Server) error

// WithStrategy overrides the execution strategy (default: the paper's
// scheduler — membound-fused below 2^22 rows, cooperative groups above).
func WithStrategy(s strategy.Strategy) ServerOption {
	return func(sv *Server) error {
		if s == nil {
			return fmt.Errorf("pir: nil strategy")
		}
		sv.strat = s
		return nil
	}
}

// WithPRG overrides the PRF (default aes128; must match the client).
func WithPRG(name string) ServerOption {
	return func(sv *Server) error {
		prg, err := dpf.NewPRG(name)
		if err != nil {
			return err
		}
		sv.prg = prg
		return nil
	}
}

// NewServer builds a PIR server for one party (0 or 1) over the table.
func NewServer(party int, tab *Table, opts ...ServerOption) (*Server, error) {
	if party != 0 && party != 1 {
		return nil, fmt.Errorf("pir: party must be 0 or 1, got %d", party)
	}
	if tab == nil || tab.NumRows == 0 {
		return nil, fmt.Errorf("pir: server needs a table")
	}
	sv := &Server{
		party: uint8(party),
		prg:   dpf.NewAESPRG(),
		tab:   tab,
		strat: strategy.Schedule(tab.Bits()),
	}
	for _, opt := range opts {
		if err := opt(sv); err != nil {
			return nil, err
		}
	}
	return sv, nil
}

// Party returns which share (0 or 1) this server computes.
func (s *Server) Party() int { return int(s.party) }

// Table returns the served table (shared, not copied).
func (s *Server) Table() *Table { return s.tab }

// Counters exposes the accumulated execution counters (PRF blocks, modeled
// memory, traffic) for reporting.
func (s *Server) Counters() gpu.Stats { return s.ctr.Snapshot() }

// Answer expands a batch of marshaled keys against the table and returns
// one answer share per key. Keys for the wrong party or the wrong table
// shape are rejected.
func (s *Server) Answer(rawKeys [][]byte) ([][]uint32, error) {
	if len(rawKeys) == 0 {
		return nil, fmt.Errorf("pir: empty key batch")
	}
	keys := make([]*dpf.Key, len(rawKeys))
	for i, raw := range rawKeys {
		var k dpf.Key
		if err := k.UnmarshalBinary(raw); err != nil {
			return nil, fmt.Errorf("pir: key %d: %w", i, err)
		}
		if k.Party != s.party {
			return nil, fmt.Errorf("pir: key %d is for party %d, this server is party %d", i, k.Party, s.party)
		}
		keys[i] = &k
	}
	answers, err := s.strat.Run(s.prg, keys, s.tab, &s.ctr)
	if err != nil {
		return nil, fmt.Errorf("pir: evaluating batch: %w", err)
	}
	return answers, nil
}
