package pir

import (
	"context"
	"fmt"

	"gpudpf/internal/dpf"
	"gpudpf/internal/engine"
	"gpudpf/internal/gpu"
	"gpudpf/internal/store"
	"gpudpf/internal/strategy"
)

// Server is one of the two non-colluding PIR servers: a thin adapter over
// an engine.Replica that holds a replica of the table and expands client
// keys with a DPF execution strategy. The honest-but-curious server learns
// nothing from a key except the table shape and the query count.
type Server struct {
	eng *engine.Replica
}

// serverConfig collects option state before the engine replica is built.
type serverConfig struct {
	prg     dpf.PRG
	strat   strategy.Strategy
	shards  int
	workers int
	early   int // engine.Config.EarlyBits encoding (0 = default)
}

// ServerOption customizes a Server.
type ServerOption func(*serverConfig) error

// WithStrategy overrides the execution strategy (default: the paper's
// scheduler — membound-fused below 2^22 rows, cooperative groups above).
func WithStrategy(s strategy.Strategy) ServerOption {
	return func(cfg *serverConfig) error {
		if s == nil {
			return fmt.Errorf("pir: nil strategy")
		}
		cfg.strat = s
		return nil
	}
}

// WithPRG overrides the PRF (default aes128; must match the client).
func WithPRG(name string) ServerOption {
	return func(cfg *serverConfig) error {
		prg, err := dpf.NewPRG(name)
		if err != nil {
			return err
		}
		cfg.prg = prg
		return nil
	}
}

// WithEarly pins the early-termination depth (§3.1) served keys must
// carry, which must match the clients' (like the PRF): early = 0 serves
// legacy full-depth wire-v1 keys, 1..dpf.MaxEarlyBits serve wire-v2 keys
// of that depth. Without this option the server expects the dpf default —
// what pir.NewClient emits.
func WithEarly(early int) ServerOption {
	return func(cfg *serverConfig) error {
		if early < 0 || early > dpf.MaxEarlyBits {
			return fmt.Errorf("pir: early-termination depth %d out of range [0,%d]", early, dpf.MaxEarlyBits)
		}
		if early == 0 {
			cfg.early = engine.FullDepthKeys
		} else {
			cfg.early = early
		}
		return nil
	}
}

// WithSharding partitions the table into shards contiguous row ranges
// evaluated concurrently on a pool of workers goroutines (engine.Config's
// Shards/Workers; zero values keep the defaults).
func WithSharding(shards, workers int) ServerOption {
	return func(cfg *serverConfig) error {
		if shards < 0 || workers < 0 {
			return fmt.Errorf("pir: negative shards/workers (%d/%d)", shards, workers)
		}
		cfg.shards = shards
		cfg.workers = workers
		return nil
	}
}

// NewReplica resolves the server options into a sharded engine replica —
// the shared constructor behind Server and batchpir's per-bin engines.
func NewReplica(party int, tab *Table, opts ...ServerOption) (*engine.Replica, error) {
	if tab == nil || tab.NumRows == 0 {
		return nil, fmt.Errorf("pir: server needs a table")
	}
	var cfg serverConfig
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return engine.NewReplica(tab, engine.Config{
		Party:     party,
		Shards:    cfg.shards,
		Workers:   cfg.workers,
		PRG:       cfg.prg,
		EarlyBits: cfg.early,
		Strategy:  cfg.strat,
	})
}

// NewServer builds a PIR server for one party (0 or 1) over the table.
func NewServer(party int, tab *Table, opts ...ServerOption) (*Server, error) {
	eng, err := NewReplica(party, tab, opts...)
	if err != nil {
		return nil, err
	}
	return &Server{eng: eng}, nil
}

// NewReplicaOverStore resolves the server options into a replica over an
// existing epoch store — what NewServerOverStore and a paged shard node
// (cmd/pirserver -shardnode -table-file) build on.
func NewReplicaOverStore(party int, st *store.Store, opts ...ServerOption) (*engine.Replica, error) {
	if st == nil {
		return nil, fmt.Errorf("pir: server needs a store")
	}
	var cfg serverConfig
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return engine.NewReplicaOverStore(st, engine.Config{
		Party:     party,
		Shards:    cfg.shards,
		Workers:   cfg.workers,
		PRG:       cfg.prg,
		EarlyBits: cfg.early,
		Strategy:  cfg.strat,
	})
}

// NewServerOverStore builds a PIR server over an existing epoch store —
// the out-of-core entry point: the store may be paged off a table file
// (store.NewPaged), so the server answers queries against a table larger
// than memory without ever materializing it.
func NewServerOverStore(party int, st *store.Store, opts ...ServerOption) (*Server, error) {
	eng, err := NewReplicaOverStore(party, st, opts...)
	if err != nil {
		return nil, err
	}
	return &Server{eng: eng}, nil
}

// Party returns which share (0 or 1) this server computes.
func (s *Server) Party() int { return s.eng.Party() }

// Table materializes a copy of the current epoch's table (see
// engine.Replica.Table: snapshot buffers are only stable while pinned, so
// this accessor copies; a paged backing can surface a read error).
func (s *Server) Table() (*Table, error) { return s.eng.Table() }

// Engine returns the underlying engine replica — the Backend seam callers
// plug into for batched serving (serving.NewEngineBatcher) or direct
// context-aware answering.
func (s *Server) Engine() *engine.Replica { return s.eng }

// Counters exposes the accumulated execution counters (PRF blocks, modeled
// memory, traffic) for reporting.
func (s *Server) Counters() gpu.Stats { return s.eng.Counters() }

// Answer expands a batch of marshaled keys against the table and returns
// one answer share per key. Keys for the wrong party or the wrong table
// shape are rejected.
func (s *Server) Answer(rawKeys [][]byte) ([][]uint32, error) {
	answers, err := s.eng.Answer(context.Background(), rawKeys)
	if err != nil {
		return nil, fmt.Errorf("pir: %w", err)
	}
	return answers, nil
}

// Update overwrites one row's content (the paper's transparent update
// path, §4.2). The write is installed as a new table epoch: in-flight
// Answers keep the snapshot they pinned and are neither blocked nor torn.
func (s *Server) Update(row uint64, vals []uint32) error {
	if err := s.eng.Update(row, vals); err != nil {
		return fmt.Errorf("pir: %w", err)
	}
	return nil
}

// UpdateBatch overwrites a set of rows atomically as ONE new table epoch:
// an Answer sees all of the batch's writes or none. Returns the installed
// epoch.
func (s *Server) UpdateBatch(writes []engine.RowWrite) (uint64, error) {
	epoch, err := s.eng.UpdateBatch(context.Background(), writes)
	if err != nil {
		return 0, fmt.Errorf("pir: %w", err)
	}
	return epoch, nil
}

// Epoch returns the server table's current epoch (0 until the first
// update).
func (s *Server) Epoch() uint64 {
	epoch, _ := s.eng.Epoch(context.Background())
	return epoch
}
