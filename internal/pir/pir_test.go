package pir

import (
	"math/rand"
	"net"
	"testing"
	"testing/quick"

	"gpudpf/internal/strategy"
)

func fillTable(t *testing.T, rows, lanes int) *Table {
	t.Helper()
	tab, err := NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(rows*31 + lanes)))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	return tab
}

func newPair(t *testing.T, tab *Table, opts ...ServerOption) *TwoServer {
	t.Helper()
	s0, err := NewServer(0, tab, opts...)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewServer(1, tab, opts...)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient("aes128", tab.NumRows, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return &TwoServer{Client: c, E0: InProcess{s0}, E1: InProcess{s1}}
}

// TestEndToEndInProcess: the full protocol retrieves exact rows.
func TestEndToEndInProcess(t *testing.T) {
	tab := fillTable(t, 300, 8)
	ts := newPair(t, tab)
	indices := []uint64{0, 1, 137, 299}
	rows, stats, err := ts.Fetch(indices)
	if err != nil {
		t.Fatal(err)
	}
	for q, idx := range indices {
		want := tab.Row(int(idx))
		for l := range want {
			if rows[q][l] != want[l] {
				t.Fatalf("row %d lane %d: got %d want %d", idx, l, rows[q][l], want[l])
			}
		}
	}
	wantUp := int64(2 * len(indices) * ts.Client.KeyBytes())
	if stats.UpBytes != wantUp {
		t.Errorf("UpBytes = %d, want %d", stats.UpBytes, wantUp)
	}
	wantDown := int64(2 * len(indices) * tab.Lanes * 4)
	if stats.DownBytes != wantDown {
		t.Errorf("DownBytes = %d, want %d", stats.DownBytes, wantDown)
	}
	if stats.Total() != wantUp+wantDown {
		t.Error("Total != Up+Down")
	}
}

// TestEndToEndTCP exercises the real gob/TCP transport.
func TestEndToEndTCP(t *testing.T) {
	tab := fillTable(t, 128, 4)
	s0, err := NewServer(0, tab)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewServer(1, tab)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(l0, s0)
	go Serve(l1, s1)
	defer l0.Close()
	defer l1.Close()

	e0, err := Dial(l0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer e0.Close()
	e1, err := Dial(l1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()

	c, err := NewClient("aes128", tab.NumRows, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	ts := &TwoServer{Client: c, E0: e0, E1: e1}
	// Two sequential fetches over the same connections.
	for round := 0; round < 2; round++ {
		rows, _, err := ts.Fetch([]uint64{5, 99})
		if err != nil {
			t.Fatal(err)
		}
		for q, idx := range []int{5, 99} {
			want := tab.Row(idx)
			for l := range want {
				if rows[q][l] != want[l] {
					t.Fatalf("round %d row %d: mismatch", round, idx)
				}
			}
		}
	}
}

// TestFloatEmbeddingRoundTrip: float32 embeddings survive PIR bit-exactly.
func TestFloatEmbeddingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	emb := make([][]float32, 50)
	for i := range emb {
		emb[i] = make([]float32, 16)
		for j := range emb[i] {
			emb[i][j] = rng.Float32()*2 - 1
		}
	}
	tab, err := NewTableFromFloats(emb)
	if err != nil {
		t.Fatal(err)
	}
	ts := newPair(t, tab)
	keys0, keys1, err := ts.Client.QueryBatch([]uint64{17})
	if err != nil {
		t.Fatal(err)
	}
	a0, err := ts.E0.Answer(keys0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := ts.E1.Answer(keys1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReconstructFloats(a0[0], a1[0])
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		if got[j] != emb[17][j] {
			t.Fatalf("lane %d: %g != %g", j, got[j], emb[17][j])
		}
	}
}

// TestServerRejectsBadKeys: malformed, wrong-party and wrong-shape keys
// must be rejected.
func TestServerRejectsBadKeys(t *testing.T) {
	tab := fillTable(t, 64, 2)
	s0, err := NewServer(0, tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s0.Answer(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := s0.Answer([][]byte{{1, 2, 3}}); err == nil {
		t.Error("garbage key accepted")
	}
	c, err := NewClient("aes128", tab.NumRows, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	k0, k1, err := c.Query(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s0.Answer([][]byte{k1}); err == nil {
		t.Error("party-1 key accepted by party-0 server")
	}
	// Key for a differently-sized table.
	cBig, err := NewClient("aes128", 4096, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	kb0, _, err := cBig.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s0.Answer([][]byte{kb0}); err == nil {
		t.Error("wrong-depth key accepted")
	}
	_ = k0
}

// TestClientValidation: bad constructor args and out-of-range queries fail.
func TestClientValidation(t *testing.T) {
	if _, err := NewClient("nope", 10, nil); err == nil {
		t.Error("unknown PRG accepted")
	}
	if _, err := NewClient("aes128", 0, nil); err == nil {
		t.Error("zero rows accepted")
	}
	c, err := NewClient("aes128", 10, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(10); err == nil {
		t.Error("out-of-range index accepted")
	}
	if c.Bits() != 4 {
		t.Errorf("Bits() = %d, want 4 for 10 rows", c.Bits())
	}
}

// TestServerValidation: constructor errors.
func TestServerValidation(t *testing.T) {
	tab := fillTable(t, 8, 1)
	if _, err := NewServer(2, tab); err == nil {
		t.Error("party 2 accepted")
	}
	if _, err := NewServer(0, nil); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := NewServer(0, tab, WithPRG("nope")); err == nil {
		t.Error("unknown PRG accepted")
	}
	if _, err := NewServer(0, tab, WithStrategy(nil)); err == nil {
		t.Error("nil strategy accepted")
	}
}

// TestMismatchedPRG: a client and server disagreeing on the PRF produce
// garbage (but no error) — the shares simply don't reconstruct. This pins
// that PRF choice is part of the protocol contract.
func TestMismatchedPRG(t *testing.T) {
	tab := fillTable(t, 64, 1)
	s0, _ := NewServer(0, tab, WithPRG("chacha20"))
	s1, _ := NewServer(1, tab, WithPRG("chacha20"))
	c, err := NewClient("aes128", tab.NumRows, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ts := &TwoServer{Client: c, E0: InProcess{s0}, E1: InProcess{s1}}
	rows, _, err := ts.Fetch([]uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] == tab.Row(3)[0] {
		t.Skip("astronomically unlikely collision")
	}
}

// TestQuickAllStrategiesAgree: a random strategy/index matrix; all
// strategies must produce identical reconstructions.
func TestQuickAllStrategiesAgree(t *testing.T) {
	tab := fillTable(t, 200, 3)
	strats := []strategy.Strategy{
		strategy.BranchParallel{},
		strategy.LevelByLevel{},
		strategy.MemBoundTree{K: 16, Fused: true},
		strategy.CoopGroups{},
	}
	f := func(idxRaw uint16, pick uint8) bool {
		idx := uint64(idxRaw) % uint64(tab.NumRows)
		ts := newPair(t, tab, WithStrategy(strats[int(pick)%len(strats)]))
		rows, _, err := ts.Fetch([]uint64{idx})
		if err != nil {
			return false
		}
		want := tab.Row(int(idx))
		for l := range want {
			if rows[0][l] != want[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestNewTableFromFloatsValidation: ragged input is rejected.
func TestNewTableFromFloatsValidation(t *testing.T) {
	if _, err := NewTableFromFloats(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := NewTableFromFloats([][]float32{{1, 2}, {3}}); err == nil {
		t.Error("ragged input accepted")
	}
}
