// Package pir implements the two-server DPF-based private information
// retrieval protocol of the paper (§3.1, Figure 2): the client encodes a
// secret index into a DPF key pair with Gen, each non-colluding server
// expands its key against the (replicated) table with one of the
// internal/strategy execution strategies, and the client adds the two
// answer shares to recover the row — revealing the index to neither server.
package pir

import (
	"fmt"
	"math"

	"gpudpf/internal/strategy"
)

// Table re-exports the server-side table type. Rows hold uint32 lanes;
// shares are additive mod 2^32 lane-wise, so any fixed-width row encoding
// round-trips exactly (including raw float32 embeddings via Float32 bit
// casting — see PackFloats).
type Table = strategy.Table

// NewTable allocates a zeroed rows×lanes table.
func NewTable(rows, lanes int) (*Table, error) { return strategy.NewTable(rows, lanes) }

// NewTableFromFloats builds a table whose rows are float32 embedding
// vectors, stored bit-exactly. rows[i] must all share one length.
func NewTableFromFloats(rows [][]float32) (*Table, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("pir: empty embedding table")
	}
	lanes := len(rows[0])
	t, err := NewTable(len(rows), lanes)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if len(r) != lanes {
			return nil, fmt.Errorf("pir: row %d has %d lanes, want %d", i, len(r), lanes)
		}
		PackFloats(t.Row(i), r)
	}
	return t, nil
}

// PackFloats bit-casts a float32 vector into uint32 lanes.
func PackFloats(dst []uint32, src []float32) {
	for i, f := range src {
		dst[i] = math.Float32bits(f)
	}
}

// UnpackFloats bit-casts uint32 lanes back into float32s.
func UnpackFloats(dst []float32, src []uint32) {
	for i, u := range src {
		dst[i] = math.Float32frombits(u)
	}
}
