package pir

import (
	"encoding/gob"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"
)

// startServer serves tab on a loopback listener and returns its address.
func startServer(t *testing.T, tab *Table) string {
	t.Helper()
	s0, err := NewServer(0, tab)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, s0)
	return l.Addr().String()
}

func testTable(t *testing.T, rows, lanes int) *Table {
	t.Helper()
	tab, err := NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	return tab
}

// TestServeRejectsOversizedRequest: a peer declaring a request message over
// MaxRequestBytes gets the named protocol error back and its connection
// closed — and the server keeps serving well-behaved clients afterwards.
func TestServeRejectsOversizedRequest(t *testing.T) {
	tab := testTable(t, 64, 2)
	addr := startServer(t, tab)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A gob message header declaring a 512 MiB message, no payload: the
	// count 0x20000000 as a negated-length byte (-4 = 0xfc) plus four
	// big-endian bytes. The server must refuse on the header alone.
	if _, err := conn.Write([]byte{0xfc, 0x20, 0x00, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var resp response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("reading protocol error response: %v", err)
	}
	if !strings.Contains(resp.Err, "frame cap") {
		t.Fatalf("response error %q does not name the frame cap", resp.Err)
	}
	// The connection is dead past the refused frame.
	var again response
	if err := gob.NewDecoder(conn).Decode(&again); err == nil && again.Err == "" {
		t.Fatal("connection survived an oversized frame")
	}

	// A peer that has already written the entire oversized payload (as a
	// real gob client does before reading) must still RECEIVE the named
	// error: the server drains the queued bytes before closing so the
	// reply is not destroyed by a reset over unread data.
	full, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	hugeReq := request{Keys: [][]byte{make([]byte, MaxRequestBytes+(1<<20))}}
	if err := gob.NewEncoder(full).Encode(&hugeReq); err != nil {
		t.Fatal(err)
	}
	full.SetReadDeadline(time.Now().Add(10 * time.Second))
	var fullResp response
	if err := gob.NewDecoder(full).Decode(&fullResp); err != nil {
		t.Fatalf("reading protocol error after full oversized payload: %v", err)
	}
	if !strings.Contains(fullResp.Err, "frame cap") {
		t.Fatalf("response error %q does not name the frame cap", fullResp.Err)
	}

	// A fresh, honest client still gets served.
	e0, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer e0.Close()
	cl, err := NewClient("aes128", tab.NumRows, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	k0, _, err := cl.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e0.Answer([][]byte{k0}); err != nil {
		t.Fatalf("server unusable after oversized frame: %v", err)
	}
}

// TestServeAcceptsLargeLegitimateBatch: a batch well under the cap but far
// beyond one TCP segment still round-trips — the cap must not bite real
// traffic.
func TestServeAcceptsLargeLegitimateBatch(t *testing.T) {
	tab := testTable(t, 256, 2)
	addr := startServer(t, tab)
	e0, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer e0.Close()
	cl, err := NewClient("aes128", tab.NumRows, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	indices := make([]uint64, 512)
	for i := range indices {
		indices[i] = uint64(i % tab.NumRows)
	}
	keys0, _, err := cl.QueryBatch(indices)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := e0.Answer(keys0)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(indices) {
		t.Fatalf("%d answers for %d keys", len(answers), len(indices))
	}
}
