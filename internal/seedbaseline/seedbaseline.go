// Package seedbaseline preserves the seed revision's per-query
// MemBoundTree hot path (commit 991b2b3, fused K-bounded walk) as a
// frozen benchmark baseline: one scalar PRF expansion per tree node — for
// AES that is an aes.NewCipher heap allocation plus a fresh key schedule
// per node — freshly appended child groups at every level, a byte-loop
// seed XOR, and the dot product fused per leaf, i.e. one full table pass
// per query. BenchmarkTiledAnswer and cmd/benchjson both measure the
// tiled path against exactly this code, so it must not inherit the live
// packages' optimizations; counters are dropped, the ParallelFor query
// dispatch is kept so baseline and tiled path use the host the same way.
package seedbaseline

import (
	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

type node struct {
	s dpf.Seed
	t uint8
}

// stepBoth is the seed revision's StepBoth, including its byte-loop seed
// XOR (the live xorSeed is now two 64-bit ops — that win belongs to the
// measured side, not the baseline).
func stepBoth(prg dpf.PRG, s dpf.Seed, t uint8, cw dpf.CW) (ls dpf.Seed, lt uint8, rs dpf.Seed, rt uint8) {
	l, r, tl, tr := prg.Expand(s)
	if t == 1 {
		for i := range l {
			l[i] ^= cw.S[i]
			r[i] ^= cw.S[i]
		}
		tl ^= cw.TL
		tr ^= cw.TR
	}
	return l, tl, r, tr
}

// Run evaluates the batch the way the seed MemBoundTree.Run did (fused,
// frontier width k) and returns one answer share per key.
func Run(prg dpf.PRG, keys []*dpf.Key, tab *strategy.Table, k int) [][]uint32 {
	bits := tab.Bits()
	answers := make([][]uint32, len(keys))
	gpu.ParallelFor(len(keys), func(q int) {
		key := keys[q]
		ans := make([]uint32, tab.Lanes)
		var walk func(nodes []node, depth int, base uint64)
		walk = func(nodes []node, depth int, base uint64) {
			if depth == bits {
				for i, nd := range nodes {
					j := base + uint64(i)
					leaf := dpf.LeafValueScalar(key, nd.s, nd.t)
					if j < uint64(tab.NumRows) {
						for l, v := range tab.Row(int(j)) {
							ans[l] += leaf * v
						}
					}
				}
				return
			}
			cw := key.CWs[depth]
			children := make([]node, 0, 2*len(nodes))
			for _, nd := range nodes {
				ls, lt, rs, rt := stepBoth(prg, nd.s, nd.t, cw)
				children = append(children, node{ls, lt}, node{rs, rt})
			}
			if len(children) <= k {
				walk(children, depth+1, base)
				return
			}
			half := len(children) / 2
			span := uint64(1) << uint(bits-depth-1)
			walk(children[:half], depth+1, base)
			walk(children[half:], depth+1, base+uint64(half)*span)
		}
		walk([]node{{key.Root, key.Party}}, 0, 0)
		answers[q] = ans
	})
	return answers
}
