// Package integrity extends the honest-but-curious protocol toward the
// malicious setting the paper sketches (§2.1: "the model may be extended
// ... e.g. authentication for PIR"): the table owner publishes a Merkle
// root over the table; after privately reconstructing a row, the client
// also *privately* fetches the row's authentication path — each tree level
// is just another PIR table — and verifies it against the root.
//
// A malicious server can add an arbitrary delta to any answer share, which
// shifts the reconstructed row and/or path hashes by values of its
// choosing. Passing verification would require it to hit a (row', path')
// consistent with the published root, i.e. a second preimage on SHA-256,
// so wrong answers are detected except with negligible probability. The
// queried index still never leaves the client: every fetch, including the
// path fetches, is PIR.
//
// Caveat (also the paper's, §2.1): reacting visibly to a verification
// failure could leak one bit via selective failure; clients should fail
// closed and uniformly.
package integrity

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"gpudpf/internal/pir"
)

// HashLanes is the width of one stored hash (SHA-256 = 8 uint32 lanes).
const HashLanes = 8

// Commitment is the Merkle tree over a table, stored as one PIR table per
// level so authentication paths can be fetched privately.
type Commitment struct {
	// Bits is the padded tree depth; the leaf level has 2^Bits hashes.
	Bits int
	// Root is the published commitment.
	Root [32]byte
	// Levels[ℓ] holds the 2^(Bits-ℓ) node hashes of level ℓ, leaf level
	// first. The root itself is not served (clients hold it).
	Levels []*pir.Table
}

// Commit builds the Merkle commitment for a table. Rows beyond NumRows
// (padding up to the power-of-two domain) hash as all-zero rows.
func Commit(tab *pir.Table) (*Commitment, error) {
	if tab == nil || tab.NumRows == 0 {
		return nil, errors.New("integrity: empty table")
	}
	bits := tab.Bits()
	n := 1 << uint(bits)
	c := &Commitment{Bits: bits}

	// Leaf level.
	leaves, err := pir.NewTable(n, HashLanes)
	if err != nil {
		return nil, err
	}
	zeroRow := make([]uint32, tab.Lanes)
	for j := 0; j < n; j++ {
		row := zeroRow
		if j < tab.NumRows {
			row = tab.Row(j)
		}
		h := hashRow(row)
		packHash(leaves.Row(j), h)
	}
	c.Levels = append(c.Levels, leaves)

	// Internal levels.
	prev := leaves
	for size := n / 2; size >= 1; size /= 2 {
		level, err := pir.NewTable(size, HashLanes)
		if err != nil {
			return nil, err
		}
		for j := 0; j < size; j++ {
			h := hashPair(unpackHash(prev.Row(2*j)), unpackHash(prev.Row(2*j+1)))
			packHash(level.Row(j), h)
		}
		if size == 1 {
			c.Root = unpackHash(level.Row(0))
			break // the root is published, not served
		}
		c.Levels = append(c.Levels, level)
		prev = level
	}
	if n == 1 {
		c.Root = unpackHash(leaves.Row(0))
		c.Levels = nil
	}
	return c, nil
}

// Verify checks a reconstructed row against the root using the sibling
// hashes fetched for each level (siblings[ℓ] is the node at index
// (index>>ℓ)^1 of level ℓ).
func (c *Commitment) Verify(index uint64, row []uint32, siblings [][32]byte) error {
	if len(siblings) != len(c.Levels) {
		return fmt.Errorf("integrity: %d siblings for %d levels", len(siblings), len(c.Levels))
	}
	h := hashRow(row)
	for l, sib := range siblings {
		if (index>>uint(l))&1 == 0 {
			h = hashPair(h, sib)
		} else {
			h = hashPair(sib, h)
		}
	}
	if h != c.Root {
		return errors.New("integrity: Merkle verification failed — a server answered incorrectly")
	}
	return nil
}

// SiblingIndex is the level-ℓ node a verification of index needs.
func SiblingIndex(index uint64, level int) uint64 { return (index >> uint(level)) ^ 1 }

// VerifiedSession wraps a data-table session plus one session per Merkle
// level; all fetches are PIR, so the index stays private end to end.
type VerifiedSession struct {
	// Commitment carries the published root (Levels on the client side
	// are only used for shapes; servers hold their own copies).
	Commitment *Commitment
	// Data is the session against the data table; Path[ℓ] against level ℓ.
	Data *pir.TwoServer
	Path []*pir.TwoServer
}

// NewVerifiedSession builds the per-level PIR sessions against a server
// pair constructor (called once per table: the data table, then each
// level).
func NewVerifiedSession(com *Commitment, data *pir.Table,
	connect func(tab *pir.Table, rows int) (*pir.TwoServer, error)) (*VerifiedSession, error) {
	vs := &VerifiedSession{Commitment: com}
	var err error
	vs.Data, err = connect(data, data.NumRows)
	if err != nil {
		return nil, err
	}
	for _, level := range com.Levels {
		ts, err := connect(level, level.NumRows)
		if err != nil {
			return nil, err
		}
		vs.Path = append(vs.Path, ts)
	}
	return vs, nil
}

// Fetch privately retrieves and verifies one row. The communication cost is
// the data fetch plus one 32-byte-payload fetch per tree level (each over a
// geometrically smaller table).
func (vs *VerifiedSession) Fetch(index uint64) ([]uint32, pir.CommStats, error) {
	var total pir.CommStats
	rows, stats, err := vs.Data.Fetch([]uint64{index})
	if err != nil {
		return nil, total, err
	}
	total = stats
	siblings := make([][32]byte, len(vs.Path))
	for l, ts := range vs.Path {
		sib, stats, err := ts.Fetch([]uint64{SiblingIndex(index, l)})
		if err != nil {
			return nil, total, fmt.Errorf("integrity: level %d: %w", l, err)
		}
		total.UpBytes += stats.UpBytes
		total.DownBytes += stats.DownBytes
		siblings[l] = unpackHash(sib[0])
	}
	if err := vs.Commitment.Verify(index, rows[0], siblings); err != nil {
		return nil, total, err
	}
	return rows[0], total, nil
}

func hashRow(row []uint32) [32]byte {
	buf := make([]byte, 1+len(row)*4)
	buf[0] = 0x00 // domain separation: leaf
	for i, v := range row {
		binary.LittleEndian.PutUint32(buf[1+i*4:], v)
	}
	return sha256.Sum256(buf)
}

func hashPair(l, r [32]byte) [32]byte {
	var buf [65]byte
	buf[0] = 0x01 // domain separation: internal node
	copy(buf[1:33], l[:])
	copy(buf[33:], r[:])
	return sha256.Sum256(buf[:])
}

func packHash(dst []uint32, h [32]byte) {
	for i := 0; i < HashLanes; i++ {
		dst[i] = binary.LittleEndian.Uint32(h[i*4:])
	}
}

func unpackHash(row []uint32) [32]byte {
	var h [32]byte
	for i := 0; i < HashLanes && i < len(row); i++ {
		binary.LittleEndian.PutUint32(h[i*4:], row[i])
	}
	return h
}
