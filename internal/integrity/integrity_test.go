package integrity

import (
	"math/rand"
	"testing"

	"gpudpf/internal/pir"
)

func testTable(t *testing.T, rows, lanes int) *pir.Table {
	t.Helper()
	tab, err := pir.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(rows)))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	return tab
}

// inProcessConnect builds honest two-server sessions.
func inProcessConnect(t *testing.T) func(tab *pir.Table, rows int) (*pir.TwoServer, error) {
	t.Helper()
	return func(tab *pir.Table, rows int) (*pir.TwoServer, error) {
		s0, err := pir.NewServer(0, tab)
		if err != nil {
			return nil, err
		}
		s1, err := pir.NewServer(1, tab)
		if err != nil {
			return nil, err
		}
		c, err := pir.NewClient("aes128", rows, rand.New(rand.NewSource(77)))
		if err != nil {
			return nil, err
		}
		return &pir.TwoServer{Client: c, E0: pir.InProcess{Server: s0}, E1: pir.InProcess{Server: s1}}, nil
	}
}

// TestCommitDeterministic: same table, same root; different table,
// different root.
func TestCommitDeterministic(t *testing.T) {
	tab := testTable(t, 100, 4)
	a, err := Commit(tab)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Commit(tab)
	if err != nil {
		t.Fatal(err)
	}
	if a.Root != b.Root {
		t.Error("commitment not deterministic")
	}
	tab.Row(42)[1]++
	c, err := Commit(tab)
	if err != nil {
		t.Fatal(err)
	}
	if c.Root == a.Root {
		t.Error("mutation did not change the root")
	}
}

// TestCommitShapes: level sizes halve from 2^bits down to 2.
func TestCommitShapes(t *testing.T) {
	tab := testTable(t, 100, 4) // pads to 128
	c, err := Commit(tab)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bits != 7 {
		t.Fatalf("bits = %d, want 7", c.Bits)
	}
	if len(c.Levels) != 7 { // 128, 64, 32, 16, 8, 4, 2 (root not served)
		t.Fatalf("%d levels, want 7", len(c.Levels))
	}
	want := 128
	for l, level := range c.Levels {
		if level.NumRows != want {
			t.Fatalf("level %d has %d rows, want %d", l, level.NumRows, want)
		}
		want /= 2
	}
	if _, err := Commit(nil); err == nil {
		t.Error("nil table accepted")
	}
}

// TestVerifiedFetchHonest: honest servers verify for every index,
// including ones in the padded region boundary.
func TestVerifiedFetchHonest(t *testing.T) {
	tab := testTable(t, 100, 4)
	com, err := Commit(tab)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := NewVerifiedSession(com, tab, inProcessConnect(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []uint64{0, 1, 63, 64, 99} {
		row, stats, err := vs.Fetch(idx)
		if err != nil {
			t.Fatalf("index %d: %v", idx, err)
		}
		want := tab.Row(int(idx))
		for l := range want {
			if row[l] != want[l] {
				t.Fatalf("index %d: row mismatch", idx)
			}
		}
		if stats.Total() <= 0 {
			t.Fatal("no communication accounted")
		}
	}
}

// TestDetectsMaliciousServer: a server that corrupts its table copy (or
// equivalently shifts its answer share) is caught by verification.
func TestDetectsMaliciousServer(t *testing.T) {
	tab := testTable(t, 64, 4)
	com, err := Commit(tab)
	if err != nil {
		t.Fatal(err)
	}
	// Server 1 serves a tampered data-table replica; hash levels honest.
	evil := &pir.Table{NumRows: tab.NumRows, Lanes: tab.Lanes, Data: append([]uint32{}, tab.Data...)}
	evil.Row(13)[0] ^= 0xdeadbeef
	first := true
	connect := func(serveTab *pir.Table, rows int) (*pir.TwoServer, error) {
		t1 := serveTab
		if first {
			t1 = evil
			first = false
		}
		s0, err := pir.NewServer(0, serveTab)
		if err != nil {
			return nil, err
		}
		s1, err := pir.NewServer(1, t1)
		if err != nil {
			return nil, err
		}
		c, err := pir.NewClient("aes128", rows, rand.New(rand.NewSource(5)))
		if err != nil {
			return nil, err
		}
		return &pir.TwoServer{Client: c, E0: pir.InProcess{Server: s0}, E1: pir.InProcess{Server: s1}}, nil
	}
	vs, err := NewVerifiedSession(com, tab, connect)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := vs.Fetch(13); err == nil {
		t.Fatal("tampered row passed verification")
	}
	// Because the answer is a dot product over the whole table, one
	// tampered row perturbs *every* response (its secret-share coefficient
	// is pseudorandom and nonzero w.h.p.) — so even queries for other
	// indices must fail verification. Tampering is loud, not targeted.
	if _, _, err := vs.Fetch(7); err == nil {
		t.Fatal("linearity should corrupt unrelated rows too; verification must catch it")
	}
	// A fully honest session over the same commitment still verifies.
	honest, err := NewVerifiedSession(com, tab, inProcessConnect(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := honest.Fetch(7); err != nil {
		t.Fatalf("honest session failed: %v", err)
	}
}

// TestDetectsTamperedPath: corrupting a hash level is also caught.
func TestDetectsTamperedPath(t *testing.T) {
	tab := testTable(t, 32, 2)
	com, err := Commit(tab)
	if err != nil {
		t.Fatal(err)
	}
	com.Levels[1].Row(3)[0] ^= 1 // tamper the replica served to clients
	vs, err := NewVerifiedSession(com, tab, inProcessConnect(t))
	if err != nil {
		t.Fatal(err)
	}
	// Index whose level-1 sibling is node 3: index>>1 == 2 → sibling 3,
	// i.e. indices 4..5.
	if _, _, err := vs.Fetch(4); err == nil {
		t.Fatal("tampered path node passed verification")
	}
}

// TestVerifyValidation: wrong sibling counts error cleanly.
func TestVerifyValidation(t *testing.T) {
	tab := testTable(t, 16, 1)
	com, err := Commit(tab)
	if err != nil {
		t.Fatal(err)
	}
	if err := com.Verify(0, tab.Row(0), nil); err == nil {
		t.Error("missing siblings accepted")
	}
}

// TestSiblingIndex pins the path arithmetic.
func TestSiblingIndex(t *testing.T) {
	cases := []struct {
		idx   uint64
		level int
		want  uint64
	}{
		{0, 0, 1}, {1, 0, 0}, {5, 0, 4}, {5, 1, 3}, {5, 2, 0},
	}
	for _, c := range cases {
		if got := SiblingIndex(c.idx, c.level); got != c.want {
			t.Errorf("SiblingIndex(%d,%d) = %d, want %d", c.idx, c.level, got, c.want)
		}
	}
}

// TestOverheadIsLogarithmic: verified fetch costs ~bits extra small
// fetches, not a second full table pass per level.
func TestOverheadIsLogarithmic(t *testing.T) {
	tab := testTable(t, 1024, 16)
	com, err := Commit(tab)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := NewVerifiedSession(com, tab, inProcessConnect(t))
	if err != nil {
		t.Fatal(err)
	}
	_, verified, err := vs.Fetch(500)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := inProcessConnect(t)(tab, tab.NumRows)
	if err != nil {
		t.Fatal(err)
	}
	_, base, err := plain.Fetch([]uint64{500})
	if err != nil {
		t.Fatal(err)
	}
	if verified.Total() > 15*base.Total() {
		t.Errorf("verification overhead too large: %d vs %d bytes", verified.Total(), base.Total())
	}
}
