package dpf

import "math/bits"

// ChaChaPRG implements the GGM PRG with the ChaCha20 block function
// (RFC 8439). The node seed forms the 256-bit key (repeated twice); child
// seeds are the first 32 bytes of the block-0 keystream. ChaCha20 is an ARX
// cipher — adds, rotates, XORs — which GPUs execute natively, making it the
// paper's recommended standard-strength PRF for GPU PIR (Table 5: ~3.8x the
// AES-128 throughput).
type ChaChaPRG struct{}

// NewChaChaPRG returns the ChaCha20 PRG.
func NewChaChaPRG() *ChaChaPRG { return &ChaChaPRG{} }

// Name implements PRG.
func (*ChaChaPRG) Name() string { return "chacha20" }

// Expand implements PRG.
func (*ChaChaPRG) Expand(s Seed) (left, right Seed, tL, tR uint8) {
	var out [64]byte
	chachaBlock(&s, 0, &out)
	copy(left[:], out[0:16])
	copy(right[:], out[16:32])
	tL, tR = clearControlBits(&left, &right)
	return
}

// ExpandBatch implements PRG: the 64-byte block buffer is hoisted out of
// the per-node loop (ChaCha20 itself is already allocation-free).
func (*ChaChaPRG) ExpandBatch(seeds []Seed, left, right []Seed, tL, tR []uint8) {
	var out [64]byte
	for i := range seeds {
		chachaBlock(&seeds[i], 0, &out)
		copy(left[i][:], out[0:16])
		copy(right[i][:], out[16:32])
		tL[i], tR[i] = clearControlBits(&left[i], &right[i])
	}
}

// Fill implements PRG.
func (*ChaChaPRG) Fill(s Seed, dst []byte) {
	var out [64]byte
	ctr := uint32(1) // block 0 feeds Expand
	for off := 0; off < len(dst); off += 64 {
		chachaBlock(&s, ctr, &out)
		ctr++
		copy(dst[off:], out[:])
	}
}

// GPUCyclesPerBlock implements PRG (Table 5 ratio vs AES: ~3.8x faster).
func (*ChaChaPRG) GPUCyclesPerBlock() float64 { return 663 }

// CPUCyclesPerBlock implements PRG (vectorized ChaCha is fast on AVX2 but
// still slower than AES-NI per block).
func (*ChaChaPRG) CPUCyclesPerBlock() float64 { return 420 }

// chachaBlock computes one 64-byte ChaCha20 block. Key = seed||seed, nonce
// zero, 20 rounds per RFC 8439.
func chachaBlock(s *Seed, counter uint32, out *[64]byte) {
	var k [8]uint32
	for i := 0; i < 4; i++ {
		k[i] = leU32(s[i*4 : i*4+4])
		k[i+4] = k[i]
	}
	x := [16]uint32{
		0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
		k[0], k[1], k[2], k[3],
		k[4], k[5], k[6], k[7],
		counter, 0, 0, 0,
	}
	init := x
	for round := 0; round < 10; round++ {
		// Column rounds.
		quarter(&x[0], &x[4], &x[8], &x[12])
		quarter(&x[1], &x[5], &x[9], &x[13])
		quarter(&x[2], &x[6], &x[10], &x[14])
		quarter(&x[3], &x[7], &x[11], &x[15])
		// Diagonal rounds.
		quarter(&x[0], &x[5], &x[10], &x[15])
		quarter(&x[1], &x[6], &x[11], &x[12])
		quarter(&x[2], &x[7], &x[8], &x[13])
		quarter(&x[3], &x[4], &x[9], &x[14])
	}
	for i := 0; i < 16; i++ {
		v := x[i] + init[i]
		out[i*4] = byte(v)
		out[i*4+1] = byte(v >> 8)
		out[i*4+2] = byte(v >> 16)
		out[i*4+3] = byte(v >> 24)
	}
}

func quarter(a, b, c, d *uint32) {
	*a += *b
	*d = bits.RotateLeft32(*d^*a, 16)
	*c += *d
	*b = bits.RotateLeft32(*b^*c, 12)
	*a += *b
	*d = bits.RotateLeft32(*d^*a, 8)
	*c += *d
	*b = bits.RotateLeft32(*b^*c, 7)
}
