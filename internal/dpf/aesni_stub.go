//go:build !amd64 || purego

package dpf

// Non-amd64 builds (and -tags purego) take the pure-Go T-table AES path.

const aesniOK = false

func aesniExpandPair(seed, left, right *Seed) {
	panic("dpf: aesniExpandPair without AES-NI")
}

func aesniExpandPair2(seedA, seedB, leftA, rightA, leftB, rightB *Seed) {
	panic("dpf: aesniExpandPair2 without AES-NI")
}
