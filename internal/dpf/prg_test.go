package dpf

import (
	"testing"
	"testing/quick"
)

// TestPRGDeterminism: Expand and Fill must be pure functions of the seed.
func TestPRGDeterminism(t *testing.T) {
	for _, prg := range allPRGs(t) {
		prg := prg
		t.Run(prg.Name(), func(t *testing.T) {
			t.Parallel()
			var s Seed
			for i := range s {
				s[i] = byte(i * 7)
			}
			l1, r1, tl1, tr1 := prg.Expand(s)
			l2, r2, tl2, tr2 := prg.Expand(s)
			if l1 != l2 || r1 != r2 || tl1 != tl2 || tr1 != tr2 {
				t.Fatal("Expand not deterministic")
			}
			a := make([]byte, 100)
			b := make([]byte, 100)
			prg.Fill(s, a)
			prg.Fill(s, b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatal("Fill not deterministic")
				}
			}
		})
	}
}

// TestPRGChildIndependence: left and right children must differ, control
// bits must be cleared from the seeds, and different seeds must give
// different children (collision would break the GGM tree).
func TestPRGChildIndependence(t *testing.T) {
	for _, prg := range allPRGs(t) {
		prg := prg
		t.Run(prg.Name(), func(t *testing.T) {
			t.Parallel()
			seen := make(map[Seed]bool)
			for i := 0; i < 64; i++ {
				var s Seed
				s[0] = byte(i)
				s[5] = byte(i * 3)
				l, r, _, _ := prg.Expand(s)
				if l == r {
					t.Fatalf("seed %d: left == right", i)
				}
				if l[0]&1 != 0 || r[0]&1 != 0 {
					t.Fatalf("seed %d: control bit not cleared", i)
				}
				if seen[l] || seen[r] {
					t.Fatalf("seed %d: child collision", i)
				}
				seen[l], seen[r] = true, true
			}
		})
	}
}

// TestPRGAvalanche: flipping one seed bit should change roughly half the
// output bits — a weak but useful PRF sanity check.
func TestPRGAvalanche(t *testing.T) {
	for _, prg := range allPRGs(t) {
		prg := prg
		t.Run(prg.Name(), func(t *testing.T) {
			t.Parallel()
			var base Seed
			base[3] = 0x5a
			l0, r0, _, _ := prg.Expand(base)
			flipped := base
			flipped[3] ^= 0x10
			l1, r1, _, _ := prg.Expand(flipped)
			diff := 0
			for i := range l0 {
				diff += popcount(l0[i] ^ l1[i])
				diff += popcount(r0[i] ^ r1[i])
			}
			// 256 output bits; expect ~128 flips. Allow a broad band.
			if diff < 80 || diff > 176 {
				t.Errorf("avalanche %d/256 bits flipped, want ≈128", diff)
			}
		})
	}
}

// TestPRGFillBalance: counter-mode output should be bit-balanced.
func TestPRGFillBalance(t *testing.T) {
	for _, prg := range allPRGs(t) {
		prg := prg
		t.Run(prg.Name(), func(t *testing.T) {
			t.Parallel()
			var s Seed
			s[9] = 0xc3
			buf := make([]byte, 4096)
			prg.Fill(s, buf)
			ones := 0
			for _, b := range buf {
				ones += popcount(b)
			}
			frac := float64(ones) / float64(len(buf)*8)
			if frac < 0.47 || frac > 0.53 {
				t.Errorf("Fill bit balance %.4f outside [0.47, 0.53]", frac)
			}
		})
	}
}

// TestQuickPRGSeedSensitivity: distinct seeds give distinct children.
func TestQuickPRGSeedSensitivity(t *testing.T) {
	for _, prg := range allPRGs(t) {
		prg := prg
		t.Run(prg.Name(), func(t *testing.T) {
			f := func(a, b [16]byte) bool {
				if a == b {
					return true
				}
				la, ra, _, _ := prg.Expand(Seed(a))
				lb, rb, _, _ := prg.Expand(Seed(b))
				return la != lb && ra != rb
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSipHashVectors pins SipHash-2-4 to the reference test vector from the
// Aumasson–Bernstein paper (key 000102...0f, message 0001..07).
func TestSipHashVectors(t *testing.T) {
	// Reference vector: SipHash-2-4 of the 8-byte message 00..07 under key
	// 000102030405060708090a0b0c0d0e0f is 0x93f5f5799a932462 (SipHash
	// paper, appendix test values).
	k0 := leU64([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	k1 := leU64([]byte{8, 9, 10, 11, 12, 13, 14, 15})
	m := leU64([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	if got := siphash24(k0, k1, m); got != 0x93f5f5799a932462 {
		t.Errorf("siphash24 = %#x, want 0x93f5f5799a932462", got)
	}
}

// TestChaChaBlockVector pins the ChaCha20 block function against RFC 8439's
// structure: encrypting with an all-zero key must reproduce a keystream that
// is stable across refactors (self-consistency + first word spot check that
// the constants are wired correctly: with zero key/nonce/counter the first
// state word is the "expa" constant and the output must not equal it).
func TestChaChaBlockVector(t *testing.T) {
	var s Seed
	var out [64]byte
	chachaBlock(&s, 0, &out)
	first := leU32(out[0:4])
	if first == 0x61707865 {
		t.Error("chacha block output equals initial constant; rounds not applied")
	}
	var out2 [64]byte
	chachaBlock(&s, 1, &out2)
	if out == out2 {
		t.Error("different counters produced identical blocks")
	}
}

// TestNewPRG covers the constructor and its error path.
func TestNewPRG(t *testing.T) {
	for _, name := range AllPRGNames() {
		p, err := NewPRG(name)
		if err != nil {
			t.Fatalf("NewPRG(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPRG(%q).Name() = %q", name, p.Name())
		}
		if p.GPUCyclesPerBlock() <= 0 || p.CPUCyclesPerBlock() <= 0 {
			t.Errorf("%s: non-positive cycle model", name)
		}
	}
	if _, err := NewPRG("des"); err == nil {
		t.Error("NewPRG(des) should fail")
	}
}

// TestPRGRelativeSpeedModel pins the Table 5 ordering: on the GPU model,
// siphash < chacha20 < highway < aes128 <= sha256 in cycles (QPS order
// 7447 > 3640 > 1973 > 965 > 921).
func TestPRGRelativeSpeedModel(t *testing.T) {
	cost := map[string]float64{}
	for _, prg := range allPRGs(t) {
		cost[prg.Name()] = prg.GPUCyclesPerBlock()
	}
	if !(cost["siphash"] < cost["chacha20"] && cost["chacha20"] < cost["highway"] &&
		cost["highway"] < cost["aes128"] && cost["aes128"] <= cost["sha256"]) {
		t.Errorf("GPU cycle model violates Table 5 ordering: %v", cost)
	}
}

func popcount(b byte) int {
	n := 0
	for b != 0 {
		n += int(b & 1)
		b >>= 1
	}
	return n
}
