package dpf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// testRand returns a deterministic randomness source for Gen.
func testRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func allPRGs(t testing.TB) []PRG {
	t.Helper()
	var prgs []PRG
	for _, name := range AllPRGNames() {
		p, err := NewPRG(name)
		if err != nil {
			t.Fatalf("NewPRG(%q): %v", name, err)
		}
		prgs = append(prgs, p)
	}
	return prgs
}

func addMod(a, b []uint32) []uint32 {
	out := make([]uint32, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// TestPointFunctionCorrectness checks the defining DPF property for every
// PRG: shares sum to beta exactly at alpha and to zero elsewhere.
func TestPointFunctionCorrectness(t *testing.T) {
	for _, prg := range allPRGs(t) {
		prg := prg
		t.Run(prg.Name(), func(t *testing.T) {
			t.Parallel()
			rng := testRand(42)
			for _, bits := range []int{1, 2, 3, 5, 8, 10} {
				n := uint64(1) << uint(bits)
				alpha := uint64(rng.Int63n(int64(n)))
				beta := []uint32{1}
				k0, k1, err := Gen(prg, alpha, bits, beta, rng)
				if err != nil {
					t.Fatalf("Gen(bits=%d): %v", bits, err)
				}
				for j := uint64(0); j < n; j++ {
					v0, err := EvalAt(prg, &k0, j)
					if err != nil {
						t.Fatalf("EvalAt: %v", err)
					}
					v1, err := EvalAt(prg, &k1, j)
					if err != nil {
						t.Fatalf("EvalAt: %v", err)
					}
					sum := addMod(v0, v1)
					want := uint32(0)
					if j == alpha {
						want = 1
					}
					if sum[0] != want {
						t.Fatalf("bits=%d alpha=%d: sum at %d = %d, want %d", bits, alpha, j, sum[0], want)
					}
				}
			}
		})
	}
}

// TestMultiLaneBeta exercises vector-valued outputs, including widths that
// force Convert to draw extra PRG blocks (> 4 lanes).
func TestMultiLaneBeta(t *testing.T) {
	prg := NewAESPRG()
	rng := testRand(7)
	for _, lanes := range []int{1, 2, 4, 5, 8, 32, 64} {
		beta := make([]uint32, lanes)
		for i := range beta {
			beta[i] = rng.Uint32()
		}
		const bits = 6
		alpha := uint64(rng.Int63n(1 << bits))
		k0, k1, err := Gen(prg, alpha, bits, beta, rng)
		if err != nil {
			t.Fatalf("Gen(lanes=%d): %v", lanes, err)
		}
		for j := uint64(0); j < 1<<bits; j++ {
			v0, _ := EvalAt(prg, &k0, j)
			v1, _ := EvalAt(prg, &k1, j)
			sum := addMod(v0, v1)
			for i := range sum {
				want := uint32(0)
				if j == alpha {
					want = beta[i]
				}
				if sum[i] != want {
					t.Fatalf("lanes=%d j=%d lane=%d: got %d want %d", lanes, j, i, sum[i], want)
				}
			}
		}
	}
}

// TestEvalFullMatchesEvalAt checks full-domain expansion against pointwise
// evaluation for each PRG.
func TestEvalFullMatchesEvalAt(t *testing.T) {
	for _, prg := range allPRGs(t) {
		prg := prg
		t.Run(prg.Name(), func(t *testing.T) {
			t.Parallel()
			rng := testRand(99)
			const bits = 9
			k0, _, err := Gen(prg, 123, bits, []uint32{5, 6}, rng)
			if err != nil {
				t.Fatal(err)
			}
			full := EvalFull(prg, &k0)
			for j := uint64(0); j < 1<<bits; j++ {
				at, _ := EvalAt(prg, &k0, j)
				for l := 0; l < 2; l++ {
					if full[j*2+uint64(l)] != at[l] {
						t.Fatalf("j=%d lane=%d: full=%d at=%d", j, l, full[j*2+uint64(l)], at[l])
					}
				}
			}
		})
	}
}

// TestEvalRange checks the pruned DFS range evaluation against EvalFull,
// including shard boundaries that are not powers of two.
func TestEvalRange(t *testing.T) {
	prg := NewChaChaPRG()
	rng := testRand(4)
	const bits = 10
	const n = 1 << bits
	k0, _, err := Gen(prg, 700, bits, []uint32{9}, rng)
	if err != nil {
		t.Fatal(err)
	}
	full := EvalFull(prg, &k0)
	for _, r := range [][2]uint64{{0, n}, {0, 1}, {n - 1, n}, {13, 509}, {512, 1024}, {511, 513}, {5, 5}} {
		lo, hi := r[0], r[1]
		out := make([]uint32, hi-lo)
		if err := EvalRange(prg, &k0, lo, hi, out); err != nil {
			t.Fatalf("EvalRange(%d,%d): %v", lo, hi, err)
		}
		for j := lo; j < hi; j++ {
			if out[j-lo] != full[j] {
				t.Fatalf("range [%d,%d): mismatch at %d", lo, hi, j)
			}
		}
	}
	if err := EvalRange(prg, &k0, 10, 5, nil); err == nil {
		t.Fatal("EvalRange with lo>hi should fail")
	}
	if err := EvalRange(prg, &k0, 0, n+1, make([]uint32, n+1)); err == nil {
		t.Fatal("EvalRange beyond domain should fail")
	}
	if err := EvalRange(prg, &k0, 0, n, make([]uint32, 1)); err == nil {
		t.Fatal("EvalRange with short buffer should fail")
	}
}

// TestShardedSumEqualsFull verifies the multi-GPU sharding claim (§3.2.7):
// evaluating disjoint ranges and concatenating equals the full evaluation.
func TestShardedSumEqualsFull(t *testing.T) {
	prg := NewAESPRG()
	rng := testRand(11)
	const bits = 8
	const n = 1 << bits
	k0, _, err := Gen(prg, 200, bits, []uint32{3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	full := EvalFull(prg, &k0)
	const shards = 3 // deliberately not a divisor of n
	got := make([]uint32, 0, n)
	for s := 0; s < shards; s++ {
		lo := uint64(s) * n / shards
		hi := uint64(s+1) * n / shards
		buf := make([]uint32, hi-lo)
		if err := EvalRange(prg, &k0, lo, hi, buf); err != nil {
			t.Fatal(err)
		}
		got = append(got, buf...)
	}
	for j := range full {
		if got[j] != full[j] {
			t.Fatalf("shard mismatch at %d", j)
		}
	}
}

// TestGenValidation exercises Gen's error paths.
func TestGenValidation(t *testing.T) {
	prg := NewAESPRG()
	rng := testRand(1)
	if _, _, err := Gen(prg, 0, 0, []uint32{1}, rng); err == nil {
		t.Error("bits=0 should fail")
	}
	if _, _, err := Gen(prg, 0, MaxBits+1, []uint32{1}, rng); err == nil {
		t.Error("bits>MaxBits should fail")
	}
	if _, _, err := Gen(prg, 4, 2, []uint32{1}, rng); err == nil {
		t.Error("alpha outside domain should fail")
	}
	if _, _, err := Gen(prg, 0, 2, nil, rng); err == nil {
		t.Error("empty beta should fail")
	}
	if _, _, err := Gen(prg, 0, 2, []uint32{1}, bytes.NewReader(nil)); err == nil {
		t.Error("exhausted randomness should fail")
	}
}

// TestEvalAtValidation exercises EvalAt's bounds check.
func TestEvalAtValidation(t *testing.T) {
	prg := NewAESPRG()
	k0, _, err := Gen(prg, 1, 3, []uint32{1}, testRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalAt(prg, &k0, 8); err == nil {
		t.Error("index outside domain should fail")
	}
}

// TestQuickPointFunction is the property-based version of the correctness
// test: random (alpha, beta, probe) triples over a 2^12 domain.
func TestQuickPointFunction(t *testing.T) {
	prg := NewSipPRG()
	rng := testRand(1234)
	const bits = 12
	f := func(alphaRaw, probeRaw uint16, beta uint32) bool {
		alpha := uint64(alphaRaw) % (1 << bits)
		probe := uint64(probeRaw) % (1 << bits)
		k0, k1, err := Gen(prg, alpha, bits, []uint32{beta}, rng)
		if err != nil {
			return false
		}
		v0, err0 := EvalAt(prg, &k0, probe)
		v1, err1 := EvalAt(prg, &k1, probe)
		if err0 != nil || err1 != nil {
			return false
		}
		sum := v0[0] + v1[0]
		if probe == alpha {
			return sum == beta
		}
		return sum == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLinearity: DPFs are linear — the share-sum of two independent
// point functions evaluates to the sum of the points. This is the property
// the PIR matrix-vector reduction and the multi-GPU summation rely on.
func TestQuickLinearity(t *testing.T) {
	prg := NewAESPRG()
	rng := testRand(777)
	const bits = 8
	f := func(a1, a2 uint8, b1, b2 uint32) bool {
		k10, k11, err := Gen(prg, uint64(a1), bits, []uint32{b1}, rng)
		if err != nil {
			return false
		}
		k20, k21, err := Gen(prg, uint64(a2), bits, []uint32{b2}, rng)
		if err != nil {
			return false
		}
		// Sum of all four full evaluations must equal b1·e_{a1} + b2·e_{a2}.
		f10 := EvalFull(prg, &k10)
		f11 := EvalFull(prg, &k11)
		f20 := EvalFull(prg, &k20)
		f21 := EvalFull(prg, &k21)
		for j := 0; j < 1<<bits; j++ {
			sum := f10[j] + f11[j] + f20[j] + f21[j]
			var want uint32
			if j == int(a1) {
				want += b1
			}
			if j == int(a2) {
				want += b2
			}
			if sum != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleKeyPseudorandomness is a sanity check that one party's expansion
// looks random: leaf shares over a 2^12 domain should have roughly balanced
// bits (a grossly skewed distribution would indicate a broken construction
// leaking alpha).
func TestSingleKeyPseudorandomness(t *testing.T) {
	for _, prg := range allPRGs(t) {
		prg := prg
		t.Run(prg.Name(), func(t *testing.T) {
			t.Parallel()
			const bits = 12
			k0, _, err := Gen(prg, 1000, bits, []uint32{1}, testRand(5))
			if err != nil {
				t.Fatal(err)
			}
			full := EvalFull(prg, &k0)
			ones := 0
			for _, v := range full {
				for b := 0; b < 32; b++ {
					if v>>uint(b)&1 == 1 {
						ones++
					}
				}
			}
			total := len(full) * 32
			frac := float64(ones) / float64(total)
			if frac < 0.48 || frac > 0.52 {
				t.Errorf("bit balance %.4f outside [0.48, 0.52]; expansion not pseudorandom", frac)
			}
		})
	}
}

// TestDistinctKeysPerGen: two Gens of the same alpha must not produce equal
// keys (fresh randomness per call).
func TestDistinctKeysPerGen(t *testing.T) {
	prg := NewAESPRG()
	rng := testRand(6)
	a0, _, err := Gen(prg, 3, 4, []uint32{1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	b0, _, err := Gen(prg, 3, 4, []uint32{1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if a0.Root == b0.Root {
		t.Error("two Gens produced identical root seeds")
	}
}

// TestConvertBlocks pins the cost-model accounting for Convert.
func TestConvertBlocks(t *testing.T) {
	cases := []struct{ lanes, want int }{
		{1, 0}, {4, 0}, {5, 2}, {8, 2}, {9, 3}, {32, 8}, {512, 128},
	}
	for _, c := range cases {
		if got := ConvertBlocks(c.lanes); got != c.want {
			t.Errorf("ConvertBlocks(%d) = %d, want %d", c.lanes, got, c.want)
		}
	}
}

// TestLeafValueScalarMatchesLeafValue pins the scalar fast paths to the
// generic implementation: LeafValueScalar on a full-depth key, and each
// LeafLane slot of an early-terminated key's terminal group.
func TestLeafValueScalarMatchesLeafValue(t *testing.T) {
	prg := NewAESPRG()
	rng := testRand(8)
	const bits = 6
	for _, party := range []int{0, 1} {
		k0, k1, err := GenEarly(prg, 17, bits, []uint32{42}, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		k := &k0
		if party == 1 {
			k = &k1
		}
		s, tb := k.Root, k.Party
		for level := 0; level < bits; level++ {
			s, tb = Step(prg, s, tb, k.CWs[level], 1)
		}
		var buf [1]uint32
		want := LeafValue(prg, k, s, tb, buf[:])[0]
		if got := LeafValueScalar(k, s, tb); got != want {
			t.Errorf("party %d: scalar %d != generic %d", party, got, want)
		}
	}
	for _, party := range []int{0, 1} {
		e0, e1, err := GenEarly(prg, 17, bits, []uint32{42}, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		k := &e0
		if party == 1 {
			k = &e1
		}
		s, tb := k.Root, k.Party
		for level := 0; level < k.TreeDepth(); level++ {
			s, tb = Step(prg, s, tb, k.CWs[level], 1)
		}
		var buf [4]uint32
		group := LeafValue(prg, k, s, tb, buf[:])
		for sub := 0; sub < k.GroupSize(); sub++ {
			if got := LeafLane(k, s, tb, sub); got != group[sub] {
				t.Errorf("party %d sub %d: lane %d != group %d", party, sub, got, group[sub])
			}
		}
	}
}

// TestEarlyMatchesFullDepth is the §3.1 equivalence property: for every
// PRF and every supported termination depth, the early-terminated key
// pair computes exactly the same point function as a full-depth pair —
// shares reconstruct to beta at alpha and to zero elsewhere, via EvalAt,
// EvalFull, and EvalRange alike.
func TestEarlyMatchesFullDepth(t *testing.T) {
	for _, prg := range allPRGs(t) {
		prg := prg
		t.Run(prg.Name(), func(t *testing.T) {
			t.Parallel()
			rng := testRand(314)
			const bits = 7
			const n = uint64(1) << bits
			for _, early := range []int{0, 1, 2} {
				alpha := uint64(rng.Int63n(int64(n)))
				beta := []uint32{rng.Uint32()}
				k0, k1, err := GenEarly(prg, alpha, bits, beta, early, rng)
				if err != nil {
					t.Fatalf("GenEarly(early=%d): %v", early, err)
				}
				if k0.Early != early || len(k0.CWs) != bits-early || len(k0.Final) != 1<<uint(early) {
					t.Fatalf("early=%d: key shape Early=%d CWs=%d Final=%d", early, k0.Early, len(k0.CWs), len(k0.Final))
				}
				f0 := EvalFull(prg, &k0)
				f1 := EvalFull(prg, &k1)
				for j := uint64(0); j < n; j++ {
					want := uint32(0)
					if j == alpha {
						want = beta[0]
					}
					if got := f0[j] + f1[j]; got != want {
						t.Fatalf("early=%d: EvalFull sum at %d = %d, want %d", early, j, got, want)
					}
					v0, err := EvalAt(prg, &k0, j)
					if err != nil {
						t.Fatal(err)
					}
					if v0[0] != f0[j] {
						t.Fatalf("early=%d: EvalAt(%d) = %d, EvalFull = %d", early, j, v0[0], f0[j])
					}
				}
				// Unaligned ranges must clip terminal groups correctly.
				for _, r := range [][2]uint64{{0, n}, {1, 2}, {3, 97}, {n - 5, n}, {alpha, alpha + 1}} {
					out := make([]uint32, r[1]-r[0])
					if err := EvalRange(prg, &k0, r[0], r[1], out); err != nil {
						t.Fatal(err)
					}
					for j := r[0]; j < r[1]; j++ {
						if out[j-r[0]] != f0[j] {
							t.Fatalf("early=%d range [%d,%d): mismatch at %d", early, r[0], r[1], j)
						}
					}
				}
			}
		})
	}
}

// TestGenEarlyValidation exercises GenEarly's added error paths and Gen's
// default clamping.
func TestGenEarlyValidation(t *testing.T) {
	prg := NewAESPRG()
	rng := testRand(315)
	if _, _, err := GenEarly(prg, 0, 5, []uint32{1}, -1, rng); err == nil {
		t.Error("negative early should fail")
	}
	if _, _, err := GenEarly(prg, 0, 5, []uint32{1}, MaxEarlyBits+1, rng); err == nil {
		t.Error("early beyond MaxEarlyBits should fail")
	}
	if _, _, err := GenEarly(prg, 0, 2, []uint32{1}, 2, rng); err == nil {
		t.Error("early leaving no tree levels should fail")
	}
	if _, _, err := GenEarly(prg, 0, 5, []uint32{1, 2, 3}, 1, rng); err == nil {
		t.Error("terminal group wider than 4 lanes should fail")
	}
	// Gen clamps: scalar keys get the full default, wide betas none, tiny
	// domains whatever depth still leaves one level.
	cases := []struct{ bits, lanes, want int }{
		{20, 1, 2}, {20, 2, 1}, {20, 4, 0}, {20, 64, 0}, {1, 1, 0}, {2, 1, 1}, {3, 1, 2},
	}
	for _, c := range cases {
		if got := DefaultEarly(c.bits, c.lanes); got != c.want {
			t.Errorf("DefaultEarly(%d,%d) = %d, want %d", c.bits, c.lanes, got, c.want)
		}
	}
	k0, _, err := Gen(prg, 3, 10, []uint32{1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if k0.Early != DefaultEarlyBits {
		t.Errorf("Gen default Early = %d, want %d", k0.Early, DefaultEarlyBits)
	}
}
