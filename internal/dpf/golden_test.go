package dpf

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates testdata/golden_keys.json:
//
//	go test ./internal/dpf -run TestGoldenWireFormat -update-golden
//
// The fixtures are checked in so CI catches wire-format breaks (a v1 or v2
// layout change, a PRF implementation drift — including asm vs purego —
// or an evaluation regression) before a deployed client does.
var updateGolden = flag.Bool("update-golden", false, "regenerate the golden key fixtures")

// goldenKey is one serialized key pair with everything needed to verify
// it still unmarshals, round-trips byte-for-byte, and evaluates to its
// point function.
type goldenKey struct {
	PRG     string   `json:"prg"`
	Version int      `json:"version"`
	Bits    int      `json:"bits"`
	Early   int      `json:"early"`
	Alpha   uint64   `json:"alpha"`
	Beta    []uint32 `json:"beta"`
	Key0    string   `json:"key0_hex"`
	Key1    string   `json:"key1_hex"`
}

func goldenPath() string { return filepath.Join("testdata", "golden_keys.json") }

// generateGolden deterministically builds one v1 and one v2 fixture per
// PRF. The rng stream is fixed, and every PRF is deterministic, so the
// resulting bytes are identical on every platform — which is exactly what
// makes them a cross-build honesty check for the asm and purego AES paths.
func generateGolden(t *testing.T) []goldenKey {
	t.Helper()
	rng := testRand(20260728)
	const bits = 10
	var out []goldenKey
	for _, name := range AllPRGNames() {
		prg, err := NewPRG(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, early := range []int{0, DefaultEarlyBits} {
			alpha := uint64(rng.Int63n(1 << bits))
			beta := []uint32{rng.Uint32()}
			k0, k1, err := GenEarly(prg, alpha, bits, beta, early, rng)
			if err != nil {
				t.Fatal(err)
			}
			raw0, err := k0.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			raw1, err := k1.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, goldenKey{
				PRG:     name,
				Version: WireVersion(raw0),
				Bits:    bits,
				Early:   early,
				Alpha:   alpha,
				Beta:    beta,
				Key0:    hex.EncodeToString(raw0),
				Key1:    hex.EncodeToString(raw1),
			})
		}
	}
	return out
}

// TestGoldenWireFormat pins both wire formats and every PRF's evaluation
// to checked-in bytes: each fixture must carry its declared version,
// unmarshal, re-marshal byte-identically, and reconstruct its exact point
// function. A failure here means deployed clients' keys would break.
func TestGoldenWireFormat(t *testing.T) {
	if *updateGolden {
		fixtures := generateGolden(t)
		buf, err := json.MarshalIndent(fixtures, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fixtures to %s", len(fixtures), goldenPath())
	}
	raw, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("reading fixtures (regenerate with -update-golden): %v", err)
	}
	var fixtures []goldenKey
	if err := json.Unmarshal(raw, &fixtures); err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(AllPRGNames()); len(fixtures) != want {
		t.Fatalf("%d fixtures, want %d (v1+v2 per PRF)", len(fixtures), want)
	}

	// The checked-in bytes must also be exactly what today's Gen produces
	// from the fixed rng stream — Gen drift is a silent protocol break.
	regen := generateGolden(t)

	for i, g := range fixtures {
		t.Run(g.PRG+"/v"+string(rune('0'+g.Version)), func(t *testing.T) {
			prg, err := NewPRG(g.PRG)
			if err != nil {
				t.Fatal(err)
			}
			if !equalGolden(regen[i], g) {
				t.Errorf("Gen no longer reproduces the checked-in fixture (wire or PRF drift)")
			}
			for party, hexKey := range []string{g.Key0, g.Key1} {
				raw, err := hex.DecodeString(hexKey)
				if err != nil {
					t.Fatal(err)
				}
				if v := WireVersion(raw); v != g.Version {
					t.Fatalf("party %d: wire version %d, fixture says %d", party, v, g.Version)
				}
				var k Key
				if err := k.UnmarshalBinary(raw); err != nil {
					t.Fatalf("party %d: unmarshal: %v", party, err)
				}
				if k.Bits != g.Bits || k.Early != g.Early || int(k.Party) != party {
					t.Fatalf("party %d: header (bits=%d early=%d party=%d) != fixture (%d, %d, %d)",
						party, k.Bits, k.Early, k.Party, g.Bits, g.Early, party)
				}
				remarshaled, err := k.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if hex.EncodeToString(remarshaled) != hexKey {
					t.Fatalf("party %d: re-marshal is not byte-identical", party)
				}
			}
			var k0, k1 Key
			raw0, _ := hex.DecodeString(g.Key0)
			raw1, _ := hex.DecodeString(g.Key1)
			if err := k0.UnmarshalBinary(raw0); err != nil {
				t.Fatal(err)
			}
			if err := k1.UnmarshalBinary(raw1); err != nil {
				t.Fatal(err)
			}
			// EvalFull runs the fused scalar walk (ExpandLeaves →
			// StepLeafBatch → the pair-interleaved AES pipeline on amd64),
			// so the checked-in bytes pin the new entry points too.
			f0 := EvalFull(prg, &k0)
			f1 := EvalFull(prg, &k1)
			for j := uint64(0); j < 1<<uint(g.Bits); j++ {
				want := uint32(0)
				if j == g.Alpha {
					want = g.Beta[0]
				}
				if got := f0[j] + f1[j]; got != want {
					t.Fatalf("reconstruction at %d = %d, want %d", j, got, want)
				}
			}
			// Cross-check the fused walk against the unfused frontier +
			// conversion pipeline on the same fixture bytes.
			var fs FrontierScratch
			seeds, ts := fs.ExpandFrontier(prg, &k0)
			unfused := make([]uint32, k0.Domain())
			LeafValuesInto(&k0, seeds, ts, unfused)
			for j := range unfused {
				if f0[j] != unfused[j] {
					t.Fatalf("leaf %d: fused evaluation %d != unfused %d", j, f0[j], unfused[j])
				}
			}
		})
	}
}

func equalGolden(a, b goldenKey) bool {
	if a.PRG != b.PRG || a.Version != b.Version || a.Bits != b.Bits ||
		a.Early != b.Early || a.Alpha != b.Alpha || a.Key0 != b.Key0 || a.Key1 != b.Key1 {
		return false
	}
	if len(a.Beta) != len(b.Beta) {
		return false
	}
	for i := range a.Beta {
		if a.Beta[i] != b.Beta[i] {
			return false
		}
	}
	return true
}
