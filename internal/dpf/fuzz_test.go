package dpf

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"
)

// FuzzUnmarshalBinary hammers the key parser — the one decoder that eats
// raw bytes straight off the serving path's TCP sockets — with mutated
// wire keys, seeded from the golden v1+v2 fixtures of every PRF. Any
// accepted input must re-marshal byte-identically (the wire format is
// canonical) and evaluate without panicking.
func FuzzUnmarshalBinary(f *testing.F) {
	raw, err := os.ReadFile(goldenPath())
	if err != nil {
		f.Fatalf("reading golden fixtures: %v", err)
	}
	var fixtures []goldenKey
	if err := json.Unmarshal(raw, &fixtures); err != nil {
		f.Fatalf("parsing golden fixtures: %v", err)
	}
	for _, g := range fixtures {
		for _, h := range []string{g.Key0, g.Key1} {
			key, err := hex.DecodeString(h)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(key)
		}
	}
	f.Add([]byte{0x01, 0xdf})
	f.Add([]byte{0x02, 0xdf, 40, 1, 2})
	prg := NewAESPRG()
	f.Fuzz(func(t *testing.T, data []byte) {
		var k Key
		if err := k.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := k.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted key fails to re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted key is not canonical:\n in  %x\n out %x", data, out)
		}
		// Accepted keys must evaluate, not panic — at a leaf, and (cheap
		// only for parsed keys, whose size bounds lanes) at the domain edge.
		if _, err := EvalAt(prg, &k, 0); err != nil {
			t.Fatalf("accepted key fails to evaluate: %v", err)
		}
		if _, err := EvalAt(prg, &k, uint64(1)<<uint(k.Bits)-1); err != nil {
			t.Fatalf("accepted key fails to evaluate at domain edge: %v", err)
		}
	})
}
