package dpf

import "encoding/binary"

// Software AES-128 for the batched GGM hot path. GGM rekeys AES at every
// tree node, and crypto/aes can only consume a fresh key through
// aes.NewCipher — a heap allocation plus cipher.Block indirection per node.
// This file expands the key schedule into caller-provided scratch
// (aesRoundKeys) and encrypts through stack state only, so a whole frontier
// advances with zero allocations. Correctness is pinned to crypto/aes by
// TestAESBlockMatchesStdlib and transitively by the ExpandBatch-vs-Expand
// equivalence tests (the scalar Expand still goes through crypto/aes).

// aesSbox is the AES S-box (FIPS 197 figure 7).
var aesSbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// aesRcon holds the round constants x^(i) in GF(2^8) for the key schedule.
var aesRcon = [10]byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}

// aesTe are the combined SubBytes+MixColumns lookup tables (one rotation
// per table), built once at init from the S-box.
var aesTe [4][256]uint32

func init() {
	for i := 0; i < 256; i++ {
		s := aesSbox[i]
		s2 := aesXtime(s)
		s3 := s2 ^ s
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		aesTe[0][i] = w
		aesTe[1][i] = w>>8 | w<<24
		aesTe[2][i] = w>>16 | w<<16
		aesTe[3][i] = w>>24 | w<<8
	}
}

// aesXtime multiplies by x in GF(2^8) mod x^8+x^4+x^3+x+1.
func aesXtime(b byte) byte {
	r := b << 1
	if b&0x80 != 0 {
		r ^= 0x1b
	}
	return r
}

// aesRoundKeys is an expanded AES-128 key schedule: 11 round keys of four
// big-endian words each. It is plain scratch — expand() overwrites it in
// full, so one value can be re-keyed per tree node with no allocation.
type aesRoundKeys [44]uint32

// expand derives the round keys from a 16-byte seed (FIPS 197 §5.2),
// unrolled four words per round so only the SubWord step pays for lookups
// and the i%4 branch disappears — this runs once per tree node, so it is
// as hot as the block function itself.
func (rk *aesRoundKeys) expand(key *Seed) {
	w0 := beU32(key[0:4])
	w1 := beU32(key[4:8])
	w2 := beU32(key[8:12])
	w3 := beU32(key[12:16])
	rk[0], rk[1], rk[2], rk[3] = w0, w1, w2, w3
	for r := 0; r < 10; r++ {
		t := w3<<8 | w3>>24 // RotWord
		t = uint32(aesSbox[t>>24])<<24 | uint32(aesSbox[t>>16&0xff])<<16 |
			uint32(aesSbox[t>>8&0xff])<<8 | uint32(aesSbox[t&0xff]) // SubWord
		w0 ^= t ^ uint32(aesRcon[r])<<24
		w1 ^= w0
		w2 ^= w1
		w3 ^= w2
		rk[4*r+4], rk[4*r+5], rk[4*r+6], rk[4*r+7] = w0, w1, w2, w3
	}
}

// expand2 derives two seeds' round keys with the two serial SubWord chains
// interleaved. One key schedule has no instruction-level parallelism —
// every round waits on the previous w3 — so a frontier batch that expands
// nodes in pairs roughly halves the schedule's wall time.
func expand2(rkA, rkB *aesRoundKeys, a, b *Seed) {
	a0 := beU32(a[0:4])
	a1 := beU32(a[4:8])
	a2 := beU32(a[8:12])
	a3 := beU32(a[12:16])
	b0 := beU32(b[0:4])
	b1 := beU32(b[4:8])
	b2 := beU32(b[8:12])
	b3 := beU32(b[12:16])
	rkA[0], rkA[1], rkA[2], rkA[3] = a0, a1, a2, a3
	rkB[0], rkB[1], rkB[2], rkB[3] = b0, b1, b2, b3
	for r := 0; r < 10; r++ {
		rc := uint32(aesRcon[r]) << 24
		ta := a3<<8 | a3>>24
		tb := b3<<8 | b3>>24
		ta = uint32(aesSbox[ta>>24])<<24 | uint32(aesSbox[ta>>16&0xff])<<16 |
			uint32(aesSbox[ta>>8&0xff])<<8 | uint32(aesSbox[ta&0xff])
		tb = uint32(aesSbox[tb>>24])<<24 | uint32(aesSbox[tb>>16&0xff])<<16 |
			uint32(aesSbox[tb>>8&0xff])<<8 | uint32(aesSbox[tb&0xff])
		a0 ^= ta ^ rc
		b0 ^= tb ^ rc
		a1 ^= a0
		b1 ^= b0
		a2 ^= a1
		b2 ^= b1
		a3 ^= a2
		b3 ^= b2
		rkA[4*r+4], rkA[4*r+5], rkA[4*r+6], rkA[4*r+7] = a0, a1, a2, a3
		rkB[4*r+4], rkB[4*r+5], rkB[4*r+6], rkB[4*r+7] = b0, b1, b2, b3
	}
}

// encrypt computes one AES-128 block, dst = E_rk(src). dst and src must be
// 16 bytes and may alias.
func (rk *aesRoundKeys) encrypt(dst, src []byte) {
	s0 := beU32(src[0:4]) ^ rk[0]
	s1 := beU32(src[4:8]) ^ rk[1]
	s2 := beU32(src[8:12]) ^ rk[2]
	s3 := beU32(src[12:16]) ^ rk[3]
	k := 4
	for r := 0; r < 9; r++ {
		t0 := rk[k] ^ aesTe[0][s0>>24] ^ aesTe[1][s1>>16&0xff] ^ aesTe[2][s2>>8&0xff] ^ aesTe[3][s3&0xff]
		t1 := rk[k+1] ^ aesTe[0][s1>>24] ^ aesTe[1][s2>>16&0xff] ^ aesTe[2][s3>>8&0xff] ^ aesTe[3][s0&0xff]
		t2 := rk[k+2] ^ aesTe[0][s2>>24] ^ aesTe[1][s3>>16&0xff] ^ aesTe[2][s0>>8&0xff] ^ aesTe[3][s1&0xff]
		t3 := rk[k+3] ^ aesTe[0][s3>>24] ^ aesTe[1][s0>>16&0xff] ^ aesTe[2][s1>>8&0xff] ^ aesTe[3][s2&0xff]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes+ShiftRows only, no MixColumns.
	o0 := rk[40] ^ (uint32(aesSbox[s0>>24])<<24 | uint32(aesSbox[s1>>16&0xff])<<16 |
		uint32(aesSbox[s2>>8&0xff])<<8 | uint32(aesSbox[s3&0xff]))
	o1 := rk[41] ^ (uint32(aesSbox[s1>>24])<<24 | uint32(aesSbox[s2>>16&0xff])<<16 |
		uint32(aesSbox[s3>>8&0xff])<<8 | uint32(aesSbox[s0&0xff]))
	o2 := rk[42] ^ (uint32(aesSbox[s2>>24])<<24 | uint32(aesSbox[s3>>16&0xff])<<16 |
		uint32(aesSbox[s0>>8&0xff])<<8 | uint32(aesSbox[s1&0xff]))
	o3 := rk[43] ^ (uint32(aesSbox[s3>>24])<<24 | uint32(aesSbox[s0>>16&0xff])<<16 |
		uint32(aesSbox[s1>>8&0xff])<<8 | uint32(aesSbox[s2&0xff]))
	putBeU32(dst[0:4], o0)
	putBeU32(dst[4:8], o1)
	putBeU32(dst[8:12], o2)
	putBeU32(dst[12:16], o3)
}

// encryptPair computes the two GGM child blocks E_rk(0) and E_rk(ctr=1) —
// the plaintexts Expand feeds AES — with the round keys loaded once and
// the two independent dependency chains interleaved, so the load-bound
// T-table rounds overlap in the pipeline. Counter block 1 carries 0x01 in
// byte 0, i.e. 0x01000000 in the big-endian first state word.
func (rk *aesRoundKeys) encryptPair(left, right *Seed) {
	a0, a1, a2, a3 := rk[0], rk[1], rk[2], rk[3]
	b0, b1, b2, b3 := rk[0]^0x01000000, rk[1], rk[2], rk[3]
	// Reslicing four round-key words at a time lets the compiler drop the
	// per-round bounds checks (the len >= 4 guard covers ks[0..3]).
	for ks := rk[4:40]; len(ks) >= 4; ks = ks[4:] {
		k0, k1, k2, k3 := ks[0], ks[1], ks[2], ks[3]
		ta0 := k0 ^ aesTe[0][a0>>24] ^ aesTe[1][a1>>16&0xff] ^ aesTe[2][a2>>8&0xff] ^ aesTe[3][a3&0xff]
		tb0 := k0 ^ aesTe[0][b0>>24] ^ aesTe[1][b1>>16&0xff] ^ aesTe[2][b2>>8&0xff] ^ aesTe[3][b3&0xff]
		ta1 := k1 ^ aesTe[0][a1>>24] ^ aesTe[1][a2>>16&0xff] ^ aesTe[2][a3>>8&0xff] ^ aesTe[3][a0&0xff]
		tb1 := k1 ^ aesTe[0][b1>>24] ^ aesTe[1][b2>>16&0xff] ^ aesTe[2][b3>>8&0xff] ^ aesTe[3][b0&0xff]
		ta2 := k2 ^ aesTe[0][a2>>24] ^ aesTe[1][a3>>16&0xff] ^ aesTe[2][a0>>8&0xff] ^ aesTe[3][a1&0xff]
		tb2 := k2 ^ aesTe[0][b2>>24] ^ aesTe[1][b3>>16&0xff] ^ aesTe[2][b0>>8&0xff] ^ aesTe[3][b1&0xff]
		ta3 := k3 ^ aesTe[0][a3>>24] ^ aesTe[1][a0>>16&0xff] ^ aesTe[2][a1>>8&0xff] ^ aesTe[3][a2&0xff]
		tb3 := k3 ^ aesTe[0][b3>>24] ^ aesTe[1][b0>>16&0xff] ^ aesTe[2][b1>>8&0xff] ^ aesTe[3][b2&0xff]
		a0, a1, a2, a3 = ta0, ta1, ta2, ta3
		b0, b1, b2, b3 = tb0, tb1, tb2, tb3
	}
	putBeU32(left[0:4], rk[40]^(uint32(aesSbox[a0>>24])<<24|uint32(aesSbox[a1>>16&0xff])<<16|
		uint32(aesSbox[a2>>8&0xff])<<8|uint32(aesSbox[a3&0xff])))
	putBeU32(left[4:8], rk[41]^(uint32(aesSbox[a1>>24])<<24|uint32(aesSbox[a2>>16&0xff])<<16|
		uint32(aesSbox[a3>>8&0xff])<<8|uint32(aesSbox[a0&0xff])))
	putBeU32(left[8:12], rk[42]^(uint32(aesSbox[a2>>24])<<24|uint32(aesSbox[a3>>16&0xff])<<16|
		uint32(aesSbox[a0>>8&0xff])<<8|uint32(aesSbox[a1&0xff])))
	putBeU32(left[12:16], rk[43]^(uint32(aesSbox[a3>>24])<<24|uint32(aesSbox[a0>>16&0xff])<<16|
		uint32(aesSbox[a1>>8&0xff])<<8|uint32(aesSbox[a2&0xff])))
	putBeU32(right[0:4], rk[40]^(uint32(aesSbox[b0>>24])<<24|uint32(aesSbox[b1>>16&0xff])<<16|
		uint32(aesSbox[b2>>8&0xff])<<8|uint32(aesSbox[b3&0xff])))
	putBeU32(right[4:8], rk[41]^(uint32(aesSbox[b1>>24])<<24|uint32(aesSbox[b2>>16&0xff])<<16|
		uint32(aesSbox[b3>>8&0xff])<<8|uint32(aesSbox[b0&0xff])))
	putBeU32(right[8:12], rk[42]^(uint32(aesSbox[b2>>24])<<24|uint32(aesSbox[b3>>16&0xff])<<16|
		uint32(aesSbox[b0>>8&0xff])<<8|uint32(aesSbox[b1&0xff])))
	putBeU32(right[12:16], rk[43]^(uint32(aesSbox[b3>>24])<<24|uint32(aesSbox[b0>>16&0xff])<<16|
		uint32(aesSbox[b1>>8&0xff])<<8|uint32(aesSbox[b2&0xff])))
}

func beU32(b []byte) uint32 {
	return binary.BigEndian.Uint32(b)
}

func putBeU32(b []byte, v uint32) {
	binary.BigEndian.PutUint32(b, v)
}
