package dpf

import (
	"testing"
	"testing/quick"
)

// TestKeyRoundTrip: marshal → unmarshal must reproduce the key and the
// declared MarshaledSizeEarly exactly, across wire versions: the default
// Gen keys (v2 for scalar, v1 for wide betas) and explicit full-depth v1.
func TestKeyRoundTrip(t *testing.T) {
	prg := NewAESPRG()
	rng := testRand(31)
	for _, bits := range []int{1, 5, 12, 20} {
		for _, lanes := range []int{1, 4, 32} {
			for _, early := range []int{-1, 0} { // -1 = Gen's default depth
				beta := make([]uint32, lanes)
				beta[0] = 1
				var k0, k1 Key
				var err error
				if early < 0 {
					k0, k1, err = Gen(prg, uint64(bits), bits, beta, rng)
				} else {
					k0, k1, err = GenEarly(prg, uint64(bits), bits, beta, early, rng)
				}
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range []*Key{&k0, &k1} {
					raw, err := k.MarshalBinary()
					if err != nil {
						t.Fatalf("marshal(bits=%d,lanes=%d,early=%d): %v", bits, lanes, k.Early, err)
					}
					if len(raw) != MarshaledSizeEarly(bits, lanes, k.Early) {
						t.Fatalf("size %d != MarshaledSizeEarly %d", len(raw), MarshaledSizeEarly(bits, lanes, k.Early))
					}
					wantVer := 1
					if k.Early > 0 {
						wantVer = 2
					}
					if v := WireVersion(raw); v != wantVer {
						t.Fatalf("WireVersion = %d, want %d", v, wantVer)
					}
					var got Key
					if err := got.UnmarshalBinary(raw); err != nil {
						t.Fatalf("unmarshal: %v", err)
					}
					if got.Bits != k.Bits || got.Lanes != k.Lanes || got.Early != k.Early || got.Party != k.Party || got.Root != k.Root {
						t.Fatal("header fields mismatch after round trip")
					}
					for i := range k.CWs {
						if got.CWs[i] != k.CWs[i] {
							t.Fatalf("CW %d mismatch", i)
						}
					}
					for i := range k.Final {
						if got.Final[i] != k.Final[i] {
							t.Fatalf("final lane %d mismatch", i)
						}
					}
				}
			}
		}
	}
}

// TestUnmarshalRejectsGarbage: malformed wire data must error, not panic.
func TestUnmarshalRejectsGarbage(t *testing.T) {
	var k Key
	cases := map[string][]byte{
		"empty":     {},
		"short":     make([]byte, 10),
		"bad magic": append([]byte{0xff, 0xff}, make([]byte, 30)...),
	}
	for name, data := range cases {
		if err := k.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Corrupt a valid key in every byte position; none may panic, and
	// header corruptions must error.
	prg := NewAESPRG()
	k0, _, err := Gen(prg, 3, 4, []uint32{1}, testRand(3))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := k0.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		mut := make([]byte, len(raw))
		copy(mut, raw)
		mut[i] ^= 0xff
		var kk Key
		_ = kk.UnmarshalBinary(mut) // must not panic
	}
	// Truncations must error.
	for cut := 1; cut < len(raw); cut++ {
		var kk Key
		if err := kk.UnmarshalBinary(raw[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

// TestMarshalValidation: inconsistent keys must refuse to marshal.
func TestMarshalValidation(t *testing.T) {
	bad := []Key{
		{Bits: 0, Lanes: 1},
		{Bits: MaxBits + 1, Lanes: 1},
		{Bits: 3, Lanes: 1, CWs: make([]CW, 2), Final: []uint32{1}},
		{Bits: 3, Lanes: 2, CWs: make([]CW, 3), Final: []uint32{1}},
	}
	for i, k := range bad {
		if _, err := k.MarshalBinary(); err == nil {
			t.Errorf("case %d: expected marshal error", i)
		}
	}
}

// TestQuickRoundTripStillEvaluates: after a round trip the key must still
// satisfy the point-function property at alpha.
func TestQuickRoundTripStillEvaluates(t *testing.T) {
	prg := NewChaChaPRG()
	rng := testRand(77)
	const bits = 10
	f := func(alphaRaw uint16, beta uint32) bool {
		alpha := uint64(alphaRaw) % (1 << bits)
		k0, k1, err := Gen(prg, alpha, bits, []uint32{beta}, rng)
		if err != nil {
			return false
		}
		raw0, _ := k0.MarshalBinary()
		raw1, _ := k1.MarshalBinary()
		var r0, r1 Key
		if r0.UnmarshalBinary(raw0) != nil || r1.UnmarshalBinary(raw1) != nil {
			return false
		}
		v0, e0 := EvalAt(prg, &r0, alpha)
		v1, e1 := EvalAt(prg, &r1, alpha)
		if e0 != nil || e1 != nil {
			return false
		}
		return v0[0]+v1[0] == beta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestKeySizeIsLogarithmic pins the O(log L) communication claim: doubling
// the domain adds exactly 17 bytes.
func TestKeySizeIsLogarithmic(t *testing.T) {
	for bits := 1; bits < MaxBits; bits++ {
		if MarshaledSize(bits+1, 1)-MarshaledSize(bits, 1) != 17 {
			t.Fatalf("key growth at bits=%d is not 17 bytes/level", bits)
		}
	}
	// A 1M-entry scalar key is well under 1 KB — the paper quotes 1.25 KB
	// for its codeword format; ours is the tighter BGI15 layout.
	if s := MarshaledSize(20, 1); s > 1280 {
		t.Errorf("1M-entry key is %d bytes, want <= 1280", s)
	}
}
