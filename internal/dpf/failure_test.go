package dpf

import (
	"sync"
	"testing"
)

// TestCorruptedCorrectionWordBreaksSharing: failure injection — flipping
// any correction-word bit must destroy the point-function property
// somewhere in the domain (a malicious or buggy party cannot silently
// tamper with a key and keep the functionality).
func TestCorruptedCorrectionWordBreaksSharing(t *testing.T) {
	prg := NewAESPRG()
	const bits = 6
	const alpha = 37
	k0, k1, err := Gen(prg, alpha, bits, []uint32{1}, testRand(41))
	if err != nil {
		t.Fatal(err)
	}
	// A party only applies a level's correction word on nodes whose control
	// bit is 1 (party 0's root bit is 0, so corrupting its level-0 CW is a
	// no-op for it) — so corrupt each party in turn and require the damage
	// to show on at least one side per level. The default keys terminate
	// early, so there are TreeDepth correction words, not bits.
	corrupt := func(k Key, level int) Key {
		mut := k
		mut.CWs = make([]CW, len(k.CWs))
		copy(mut.CWs, k.CWs)
		mut.CWs[level].S[3] ^= 0x40
		return mut
	}
	check := func(a, b *Key) bool {
		for j := uint64(0); j < 1<<bits; j++ {
			v0, _ := EvalAt(prg, a, j)
			v1, _ := EvalAt(prg, b, j)
			want := uint32(0)
			if j == alpha {
				want = 1
			}
			if v0[0]+v1[0] != want {
				return true // broken, as expected
			}
		}
		return false
	}
	for level := 0; level < k0.TreeDepth(); level++ {
		m0 := corrupt(k0, level)
		m1 := corrupt(k1, level)
		if !check(&m0, &k1) && !check(&k0, &m1) {
			t.Errorf("corrupting CW level %d on either party left the point function intact", level)
		}
	}
}

// TestCorruptedFinalCWShiftsOnlyControlledLeaves: tampering the output
// correction word perturbs exactly the leaves whose control bit is set —
// the additive structure a malicious server could exploit, which is why
// internal/integrity exists.
func TestCorruptedFinalCWShiftsOnlyControlledLeaves(t *testing.T) {
	prg := NewAESPRG()
	// Early-terminated keys shift whole terminal groups together, so use a
	// domain with enough groups (2^6) that an all-ones/all-zeros control
	// frontier is vanishingly unlikely.
	const bits = 8
	k0, _, err := Gen(prg, 9, bits, []uint32{1}, testRand(42))
	if err != nil {
		t.Fatal(err)
	}
	// Shift every slot of the terminal-group final CW (the default key
	// carries one slot per leaf of the group).
	mut := k0
	mut.Final = make([]uint32, len(k0.Final))
	for i := range mut.Final {
		mut.Final[i] = k0.Final[i] + 100
	}
	changed := 0
	for j := uint64(0); j < 1<<bits; j++ {
		a, _ := EvalAt(prg, &k0, j)
		b, _ := EvalAt(prg, &mut, j)
		if a[0] != b[0] {
			changed++
			if diff := b[0] - a[0]; diff != 100 && diff != ^uint32(99) {
				t.Fatalf("leaf %d shifted by %d, want ±100", j, diff)
			}
		}
	}
	if changed == 0 {
		t.Error("final-CW tampering changed nothing; control bits broken")
	}
	if changed == 1<<bits {
		t.Error("every leaf has control bit 1; expansion not pseudorandom")
	}
}

// TestConcurrentEvalSharedKey: a Key is read-only after Gen; concurrent
// evaluation must be safe and consistent (run with -race to check).
func TestConcurrentEvalSharedKey(t *testing.T) {
	prg := NewChaChaPRG()
	const bits = 8
	k0, _, err := Gen(prg, 100, bits, []uint32{7}, testRand(43))
	if err != nil {
		t.Fatal(err)
	}
	ref := EvalFull(prg, &k0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j := (seed*31 + uint64(i)*17) % (1 << bits)
				v, err := EvalAt(prg, &k0, j)
				if err != nil {
					t.Error(err)
					return
				}
				if v[0] != ref[j] {
					t.Errorf("concurrent EvalAt(%d) = %d, want %d", j, v[0], ref[j])
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
}

// TestWideLanesConvertPath: beta wider than 4 lanes exercises the
// PRG-backed Convert in EvalFull and LeafValue consistently.
func TestWideLanesConvertPath(t *testing.T) {
	for _, prg := range allPRGs(t) {
		prg := prg
		t.Run(prg.Name(), func(t *testing.T) {
			t.Parallel()
			const bits = 5
			const lanes = 13 // odd, > 4: forces Fill with a ragged tail
			beta := make([]uint32, lanes)
			for i := range beta {
				beta[i] = uint32(i * 1000003)
			}
			k0, k1, err := Gen(prg, 20, bits, beta, testRand(44))
			if err != nil {
				t.Fatal(err)
			}
			f0 := EvalFull(prg, &k0)
			f1 := EvalFull(prg, &k1)
			for j := 0; j < 1<<bits; j++ {
				for l := 0; l < lanes; l++ {
					sum := f0[j*lanes+l] + f1[j*lanes+l]
					want := uint32(0)
					if j == 20 {
						want = beta[l]
					}
					if sum != want {
						t.Fatalf("j=%d lane=%d: %d != %d", j, l, sum, want)
					}
				}
			}
		})
	}
}

// TestBitsOneDomain: the smallest tree (two leaves) works for both alphas.
func TestBitsOneDomain(t *testing.T) {
	prg := NewSipPRG()
	for alpha := uint64(0); alpha < 2; alpha++ {
		k0, k1, err := Gen(prg, alpha, 1, []uint32{5}, testRand(45))
		if err != nil {
			t.Fatal(err)
		}
		for j := uint64(0); j < 2; j++ {
			v0, _ := EvalAt(prg, &k0, j)
			v1, _ := EvalAt(prg, &k1, j)
			want := uint32(0)
			if j == alpha {
				want = 5
			}
			if v0[0]+v1[0] != want {
				t.Fatalf("alpha=%d j=%d: got %d want %d", alpha, j, v0[0]+v1[0], want)
			}
		}
	}
}
