//go:build amd64 && !purego

package dpf

// Hardware AES for the batched GGM hot path. aesniExpandPair runs the
// whole per-node job — AES-128 key schedule from the node seed plus the
// two child-block encryptions E_seed(0), E_seed(1) — inside XMM registers
// with AESKEYGENASSIST/AESENC, so a frontier advance costs neither a heap
// allocation nor a round-key store/reload. The GGM rekey-per-node cost the
// paper singles out (§3.2.6) drops to the key-schedule dependency chain
// itself. Output is bit-identical to crypto/aes (TestAESBlockMatchesStdlib
// pins the pure-Go path, TestExpandBatchMatchesExpand pins this one).

// aesniExpandPair computes left = AES_seed(block0), right = AES_seed(block1)
// with the AES-NI schedule+encrypt pipeline. Implemented in aesni_amd64.s.
//
//go:noescape
func aesniExpandPair(seed, left, right *Seed)

// aesniExpandPair2 expands two nodes per call with the key schedules
// pair-interleaved: the second node's AESKEYGENASSIST ladder and AESENCs
// fill the latency of the first's serial schedule chain, which a
// single-node call leaves exposed. Bit-identical to two aesniExpandPair
// calls (TestAESNIExpandPair2MatchesPair pins it). Implemented in
// aesni_amd64.s.
//
//go:noescape
func aesniExpandPair2(seedA, seedB, leftA, rightA, leftB, rightB *Seed)

// hasAESNI reports CPUID.1:ECX.AES[bit 25]. Implemented in aesni_amd64.s.
func hasAESNI() bool

// aesniOK gates the hardware path; the pure-Go T-table implementation is
// the fallback (and the reference the tests compare against).
var aesniOK = hasAESNI()
