package dpf

import "math/bits"

// HighwayPRG implements the GGM PRG with a HighwayHash-style keyed
// permutation: a 1024-bit state (four 256-bit vectors) updated with
// multiply-add and zipper-merge style mixing, which is the instruction mix
// HighwayHash relies on. It fills Table 5's "HighwayHash PRF" row.
//
// NOTE: this is a HighwayHash-*style* PRF, not the reference HighwayHash
// (we do not claim test-vector compatibility), and like SipHash it is not a
// conservatively analyzed PRF — the paper draws the same caveat. See
// DESIGN.md's substitution table.
type HighwayPRG struct{}

// NewHighwayPRG returns the HighwayHash-style PRG.
func NewHighwayPRG() *HighwayPRG { return &HighwayPRG{} }

// Name implements PRG.
func (*HighwayPRG) Name() string { return "highway" }

// Expand implements PRG.
func (*HighwayPRG) Expand(s Seed) (left, right Seed, tL, tR uint8) {
	var st hwState
	st.reset(&s)
	st.update(0)
	var out [32]byte
	st.finalize(&out)
	copy(left[:], out[0:16])
	copy(right[:], out[16:32])
	tL, tR = clearControlBits(&left, &right)
	return
}

// ExpandBatch implements PRG: one hwState and output buffer are hoisted
// out of the loop and re-keyed per node.
func (*HighwayPRG) ExpandBatch(seeds []Seed, left, right []Seed, tL, tR []uint8) {
	var st hwState
	var out [32]byte
	for i := range seeds {
		st.reset(&seeds[i])
		st.update(0)
		st.finalize(&out)
		copy(left[i][:], out[0:16])
		copy(right[i][:], out[16:32])
		tL[i], tR[i] = clearControlBits(&left[i], &right[i])
	}
}

// Fill implements PRG.
func (*HighwayPRG) Fill(s Seed, dst []byte) {
	var st hwState
	var out [32]byte
	ctr := uint64(1)
	for off := 0; off < len(dst); off += 32 {
		st.reset(&s)
		st.update(ctr)
		ctr++
		st.finalize(&out)
		copy(dst[off:], out[:])
	}
}

// GPUCyclesPerBlock implements PRG (Table 5 ratio vs AES: ~2x faster).
func (*HighwayPRG) GPUCyclesPerBlock() float64 { return 1224 }

// CPUCyclesPerBlock implements PRG (HighwayHash targets AVX2 SIMD).
func (*HighwayPRG) CPUCyclesPerBlock() float64 { return 160 }

// hwState is the 1024-bit HighwayHash-style state: v0, v1 are the mixing
// vectors, mul0, mul1 accumulate multiply results.
type hwState struct {
	v0, v1, mul0, mul1 [4]uint64
}

var hwInit0 = [4]uint64{0xdbe6d5d5fe4cce2f, 0xa4093822299f31d0, 0x13198a2e03707344, 0x243f6a8885a308d3}
var hwInit1 = [4]uint64{0x3bd39e10cb0ef593, 0xc0acf169b5f18a8c, 0xbe5466cf34e90c6c, 0x452821e638d01377}

func (h *hwState) reset(s *Seed) {
	k0 := leU64(s[0:8])
	k1 := leU64(s[8:16])
	key := [4]uint64{k0, k1, bits.RotateLeft64(k0, 32), bits.RotateLeft64(k1, 32)}
	for i := 0; i < 4; i++ {
		h.mul0[i] = hwInit0[i]
		h.mul1[i] = hwInit1[i]
		h.v0[i] = key[i] ^ hwInit0[i]
		h.v1[i] = bits.RotateLeft64(key[i], 17) ^ hwInit1[i]
	}
}

// update absorbs one 256-bit block derived from the counter (broadcast into
// the four lanes with distinct tweaks, as HighwayHash lanes do).
func (h *hwState) update(ctr uint64) {
	var lanes [4]uint64
	for i := range lanes {
		lanes[i] = ctr + uint64(i)*0x9e3779b97f4a7c15
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 4; i++ {
			h.v1[i] += h.mul0[i] + lanes[i]
			h.mul0[i] ^= (h.v1[i] & 0xffffffff) * (h.v0[i] >> 32)
			h.v0[i] += h.mul1[i]
			h.mul1[i] ^= (h.v0[i] & 0xffffffff) * (h.v1[i] >> 32)
			h.v0[i] += zipperMerge(h.v1[i])
			h.v1[i] += zipperMerge(h.v0[i])
		}
		// Cross-lane diffusion so every output lane depends on every key
		// lane (the reference hash achieves this with its permute step).
		for i := 0; i < 4; i++ {
			h.v0[i] += h.v1[(i+1)&3]
			h.mul0[i] ^= h.mul1[(i+3)&3]
		}
	}
}

// zipperMerge permutes the bytes of v so multiply carries diffuse across
// byte positions, mirroring the role of HighwayHash's zipper-merge step.
func zipperMerge(v uint64) uint64 {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	p := [8]byte{b[3], b[6], b[2], b[5], b[1], b[4], b[0], b[7]}
	var out uint64
	for i := 7; i >= 0; i-- {
		out = out<<8 | uint64(p[i])
	}
	return out
}

func (h *hwState) finalize(out *[32]byte) {
	for i := 0; i < 4; i++ {
		// Each output word folds one lane from each state vector, offset so
		// both key parities contribute, then runs a strong ARX finalizer.
		v := h.v0[i] + h.v1[(i+1)&3] + h.mul0[(i+2)&3] + h.mul1[(i+3)&3]
		v ^= v >> 33
		v *= 0xff51afd7ed558ccd
		v ^= v >> 33
		v *= 0xc4ceb9fe1a85ec53
		v ^= v >> 33
		putU64(out[i*8:i*8+8], v)
	}
}
