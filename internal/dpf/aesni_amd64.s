//go:build amd64 && !purego

#include "textflag.h"

// func aesniExpandPair(seed, left, right *Seed)
//
// AES-128: expand the key schedule from *seed and encrypt the two GGM
// child plaintexts (block of zeros; block with byte0 = 1) in lockstep.
// The schedule never leaves the registers: each round key is produced by
// the standard AESKEYGENASSIST ladder (t = assist(key, rcon) broadcast;
// key ^= key<<32 ^ key<<64 ^ key<<96 ^ t) and consumed immediately by two
// AESENCs. Register use: X0 round key, X1 assist, X2 ladder temp,
// X8/X9 the two cipher states.
#define EXPAND_ROUND(rcon, enc) \
	AESKEYGENASSIST $rcon, X0, X1 \
	PSHUFD  $0xff, X1, X1 \
	MOVO    X0, X2        \
	PSLLDQ  $4, X2        \
	PXOR    X2, X0        \
	PSLLDQ  $4, X2        \
	PXOR    X2, X0        \
	PSLLDQ  $4, X2        \
	PXOR    X2, X0        \
	PXOR    X1, X0        \
	enc     X0, X8        \
	enc     X0, X9

TEXT ·aesniExpandPair(SB), NOSPLIT, $0-24
	MOVQ seed+0(FP), AX
	MOVQ left+8(FP), BX
	MOVQ right+16(FP), CX
	MOVOU (AX), X0       // round key 0 = node seed
	PXOR  X8, X8         // block 0: all zeros
	MOVQ  $1, DX
	MOVQ  DX, X9         // block 1: byte 0 = 0x01
	PXOR  X0, X8         // initial AddRoundKey
	PXOR  X0, X9
	EXPAND_ROUND(0x01, AESENC)
	EXPAND_ROUND(0x02, AESENC)
	EXPAND_ROUND(0x04, AESENC)
	EXPAND_ROUND(0x08, AESENC)
	EXPAND_ROUND(0x10, AESENC)
	EXPAND_ROUND(0x20, AESENC)
	EXPAND_ROUND(0x40, AESENC)
	EXPAND_ROUND(0x80, AESENC)
	EXPAND_ROUND(0x1b, AESENC)
	EXPAND_ROUND(0x36, AESENCLAST)
	MOVOU X8, (BX)
	MOVOU X9, (CX)
	RET

// func aesniExpandPair2(seedA, seedB, leftA, rightA, leftB, rightB *Seed)
//
// Two node expansions per call with the key schedules pair-interleaved.
// One AESKEYGENASSIST ladder has no instruction-level parallelism — every
// round waits on the previous round key — and early termination made the
// schedule relatively heavier (shorter trees, same one-schedule-per-node
// cost), so a single-node call leaves the AES units idle between ladder
// steps. Interleaving two independent schedules lets the second node's
// ladder and its four AESENCs fill the first's latency. Register use:
// X0/X3 the two round keys, X1/X4 assists, X2/X5 ladder temps,
// X8/X9 node A's cipher states, X10/X11 node B's.
#define EXPAND_ROUND2(rcon, enc) \
	AESKEYGENASSIST $rcon, X0, X1 \
	AESKEYGENASSIST $rcon, X3, X4 \
	PSHUFD  $0xff, X1, X1 \
	PSHUFD  $0xff, X4, X4 \
	MOVO    X0, X2        \
	MOVO    X3, X5        \
	PSLLDQ  $4, X2        \
	PSLLDQ  $4, X5        \
	PXOR    X2, X0        \
	PXOR    X5, X3        \
	PSLLDQ  $4, X2        \
	PSLLDQ  $4, X5        \
	PXOR    X2, X0        \
	PXOR    X5, X3        \
	PSLLDQ  $4, X2        \
	PSLLDQ  $4, X5        \
	PXOR    X2, X0        \
	PXOR    X5, X3        \
	PXOR    X1, X0        \
	PXOR    X4, X3        \
	enc     X0, X8        \
	enc     X0, X9        \
	enc     X3, X10       \
	enc     X3, X11

TEXT ·aesniExpandPair2(SB), NOSPLIT, $0-48
	MOVQ seedA+0(FP), AX
	MOVQ seedB+8(FP), BX
	MOVOU (AX), X0       // round key A0 = node A seed
	MOVOU (BX), X3       // round key B0 = node B seed
	PXOR  X8, X8         // A block 0: all zeros
	PXOR  X10, X10       // B block 0: all zeros
	MOVQ  $1, DX
	MOVQ  DX, X9         // A block 1: byte 0 = 0x01
	MOVQ  DX, X11        // B block 1: byte 0 = 0x01
	PXOR  X0, X8         // initial AddRoundKey
	PXOR  X0, X9
	PXOR  X3, X10
	PXOR  X3, X11
	EXPAND_ROUND2(0x01, AESENC)
	EXPAND_ROUND2(0x02, AESENC)
	EXPAND_ROUND2(0x04, AESENC)
	EXPAND_ROUND2(0x08, AESENC)
	EXPAND_ROUND2(0x10, AESENC)
	EXPAND_ROUND2(0x20, AESENC)
	EXPAND_ROUND2(0x40, AESENC)
	EXPAND_ROUND2(0x80, AESENC)
	EXPAND_ROUND2(0x1b, AESENC)
	EXPAND_ROUND2(0x36, AESENCLAST)
	MOVQ leftA+16(FP), AX
	MOVOU X8, (AX)
	MOVQ rightA+24(FP), AX
	MOVOU X9, (AX)
	MOVQ leftB+32(FP), AX
	MOVOU X10, (AX)
	MOVQ rightB+40(FP), AX
	MOVOU X11, (AX)
	RET

// func hasAESNI() bool
TEXT ·hasAESNI(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	SHRL $25, CX
	ANDL $1, CX
	MOVB CX, ret+0(FP)
	RET
