//go:build amd64 && !purego

#include "textflag.h"

// func aesniExpandPair(seed, left, right *Seed)
//
// AES-128: expand the key schedule from *seed and encrypt the two GGM
// child plaintexts (block of zeros; block with byte0 = 1) in lockstep.
// The schedule never leaves the registers: each round key is produced by
// the standard AESKEYGENASSIST ladder (t = assist(key, rcon) broadcast;
// key ^= key<<32 ^ key<<64 ^ key<<96 ^ t) and consumed immediately by two
// AESENCs. Register use: X0 round key, X1 assist, X2 ladder temp,
// X8/X9 the two cipher states.
#define EXPAND_ROUND(rcon, enc) \
	AESKEYGENASSIST $rcon, X0, X1 \
	PSHUFD  $0xff, X1, X1 \
	MOVO    X0, X2        \
	PSLLDQ  $4, X2        \
	PXOR    X2, X0        \
	PSLLDQ  $4, X2        \
	PXOR    X2, X0        \
	PSLLDQ  $4, X2        \
	PXOR    X2, X0        \
	PXOR    X1, X0        \
	enc     X0, X8        \
	enc     X0, X9

TEXT ·aesniExpandPair(SB), NOSPLIT, $0-24
	MOVQ seed+0(FP), AX
	MOVQ left+8(FP), BX
	MOVQ right+16(FP), CX
	MOVOU (AX), X0       // round key 0 = node seed
	PXOR  X8, X8         // block 0: all zeros
	MOVQ  $1, DX
	MOVQ  DX, X9         // block 1: byte 0 = 0x01
	PXOR  X0, X8         // initial AddRoundKey
	PXOR  X0, X9
	EXPAND_ROUND(0x01, AESENC)
	EXPAND_ROUND(0x02, AESENC)
	EXPAND_ROUND(0x04, AESENC)
	EXPAND_ROUND(0x08, AESENC)
	EXPAND_ROUND(0x10, AESENC)
	EXPAND_ROUND(0x20, AESENC)
	EXPAND_ROUND(0x40, AESENC)
	EXPAND_ROUND(0x80, AESENC)
	EXPAND_ROUND(0x1b, AESENC)
	EXPAND_ROUND(0x36, AESENCLAST)
	MOVOU X8, (BX)
	MOVOU X9, (CX)
	RET

// func hasAESNI() bool
TEXT ·hasAESNI(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	SHRL $25, CX
	ANDL $1, CX
	MOVB CX, ret+0(FP)
	RET
