//go:build amd64 && !purego

package dpf

import (
	mrand "math/rand"
	"testing"
)

// TestAESNIExpandPair2MatchesPair pins the pair-interleaved two-node
// pipeline bit-identical to two single-node calls: interleaving the key
// schedules reorders instructions, never values.
func TestAESNIExpandPair2MatchesPair(t *testing.T) {
	if !aesniOK {
		t.Skip("host has no AES-NI")
	}
	rng := mrand.New(mrand.NewSource(8))
	var sA, sB Seed
	var lA, rA, lB, rB Seed
	var wlA, wrA, wlB, wrB Seed
	for trial := 0; trial < 500; trial++ {
		rng.Read(sA[:])
		rng.Read(sB[:])
		aesniExpandPair2(&sA, &sB, &lA, &rA, &lB, &rB)
		aesniExpandPair(&sA, &wlA, &wrA)
		aesniExpandPair(&sB, &wlB, &wrB)
		if lA != wlA || rA != wrA || lB != wlB || rB != wrB {
			t.Fatalf("trial %d: pair2 (%x,%x,%x,%x) != pair (%x,%x,%x,%x)",
				trial, lA, rA, lB, rB, wlA, wrA, wlB, wrB)
		}
	}
}
