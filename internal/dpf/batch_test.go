package dpf

import (
	"crypto/aes"
	"crypto/rand"
	mrand "math/rand"
	"testing"
)

// TestAESBlockMatchesStdlib pins the software AES-128 (aesblock.go) to
// crypto/aes: same key schedule, same ciphertext, for random keys and
// plaintexts.
func TestAESBlockMatchesStdlib(t *testing.T) {
	rng := mrand.New(mrand.NewSource(1))
	var key, src [16]byte
	var got, want [16]byte
	var rk aesRoundKeys
	for trial := 0; trial < 200; trial++ {
		rng.Read(key[:])
		rng.Read(src[:])
		c, err := aes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		c.Encrypt(want[:], src[:])
		rk.expand((*Seed)(&key))
		rk.encrypt(got[:], src[:])
		if got != want {
			t.Fatalf("trial %d: software AES %x != stdlib %x (key %x, src %x)", trial, got, want, key, src)
		}
	}
}

// TestExpandBatchMatchesExpand pins every PRF's native ExpandBatch to its
// scalar Expand, bit for bit, across random seeds and batch widths.
func TestExpandBatchMatchesExpand(t *testing.T) {
	rng := mrand.New(mrand.NewSource(2))
	for _, name := range AllPRGNames() {
		prg, err := NewPRG(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{1, 2, 7, 64} {
				seeds := make([]Seed, n)
				for i := range seeds {
					rng.Read(seeds[i][:])
				}
				left := make([]Seed, n)
				right := make([]Seed, n)
				tl := make([]uint8, n)
				tr := make([]uint8, n)
				prg.ExpandBatch(seeds, left, right, tl, tr)
				for i := range seeds {
					wl, wr, wtl, wtr := prg.Expand(seeds[i])
					if left[i] != wl || right[i] != wr || tl[i] != wtl || tr[i] != wtr {
						t.Fatalf("n=%d i=%d: batch (%x,%x,%d,%d) != scalar (%x,%x,%d,%d)",
							n, i, left[i], right[i], tl[i], tr[i], wl, wr, wtl, wtr)
					}
				}
			}
		})
	}
}

// TestScalarExpandBatchFallback: the exported fallback matches the native
// batch implementations (they are both pinned to Expand).
func TestScalarExpandBatchFallback(t *testing.T) {
	prg := NewChaChaPRG()
	seeds := make([]Seed, 5)
	for i := range seeds {
		rand.Read(seeds[i][:])
	}
	l1 := make([]Seed, 5)
	r1 := make([]Seed, 5)
	tl1 := make([]uint8, 5)
	tr1 := make([]uint8, 5)
	l2 := make([]Seed, 5)
	r2 := make([]Seed, 5)
	tl2 := make([]uint8, 5)
	tr2 := make([]uint8, 5)
	prg.ExpandBatch(seeds, l1, r1, tl1, tr1)
	ScalarExpandBatch(prg, seeds, l2, r2, tl2, tr2)
	for i := range seeds {
		if l1[i] != l2[i] || r1[i] != r2[i] || tl1[i] != tl2[i] || tr1[i] != tr2[i] {
			t.Fatalf("i=%d: native and scalar fallback disagree", i)
		}
	}
}

// TestStepBothBatchMatchesStepBoth: a batched frontier advance produces the
// children StepBoth produces, in leaf order, control bits corrected.
func TestStepBothBatchMatchesStepBoth(t *testing.T) {
	rng := mrand.New(mrand.NewSource(3))
	for _, name := range AllPRGNames() {
		prg, err := NewPRG(name)
		if err != nil {
			t.Fatal(err)
		}
		const n = 9
		seeds := make([]Seed, n)
		ts := make([]uint8, n)
		for i := range seeds {
			rng.Read(seeds[i][:])
			ts[i] = uint8(i & 1)
		}
		var cw CW
		rng.Read(cw.S[:])
		cw.TL, cw.TR = 1, 0
		next := make([]Seed, 2*n)
		nextT := make([]uint8, 2*n)
		var sc BatchScratch
		StepBothBatch(prg, seeds, ts, cw, next, nextT, &sc)
		for i := 0; i < n; i++ {
			ls, lt, rs, rt := StepBoth(prg, seeds[i], ts[i], cw)
			if next[2*i] != ls || next[2*i+1] != rs || nextT[2*i] != lt || nextT[2*i+1] != rt {
				t.Fatalf("%s: node %d batch step disagrees with StepBoth", name, i)
			}
		}
	}
}

// TestStepBatchMatchesStep: the per-key batched descent matches Step for
// both child directions.
func TestStepBatchMatchesStep(t *testing.T) {
	rng := mrand.New(mrand.NewSource(4))
	prg := NewAESPRG()
	const n = 6
	for _, bit := range []uint8{0, 1} {
		seeds := make([]Seed, n)
		ts := make([]uint8, n)
		cws := make([]CW, n)
		wantS := make([]Seed, n)
		wantT := make([]uint8, n)
		for i := range seeds {
			rng.Read(seeds[i][:])
			rng.Read(cws[i].S[:])
			ts[i] = uint8(i % 2)
			cws[i].TL = uint8(i % 2)
			cws[i].TR = uint8((i + 1) % 2)
			wantS[i], wantT[i] = Step(prg, seeds[i], ts[i], cws[i], bit)
		}
		var sc BatchScratch
		StepBatch(prg, seeds, ts, cws, bit, &sc)
		for i := range seeds {
			if seeds[i] != wantS[i] || ts[i] != wantT[i] {
				t.Fatalf("bit=%d node %d: StepBatch disagrees with Step", bit, i)
			}
		}
	}
}

// TestEvalFullIntoMatchesEvalFull: the scratch-backed expansion reproduces
// EvalFull for scalar and multi-lane keys, and a reused scratch stays
// correct across differently sized keys.
func TestEvalFullIntoMatchesEvalFull(t *testing.T) {
	rng := mrand.New(mrand.NewSource(5))
	prg := NewSipPRG()
	var sc FrontierScratch
	for _, shape := range []struct{ bits, lanes int }{{6, 1}, {8, 1}, {5, 3}, {7, 8}, {4, 1}} {
		beta := make([]uint32, shape.lanes)
		for i := range beta {
			beta[i] = rng.Uint32()
		}
		k0, k1, err := Gen(prg, uint64(rng.Intn(1<<shape.bits)), shape.bits, beta, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []*Key{&k0, &k1} {
			want := EvalFull(prg, k)
			got := make([]uint32, len(want))
			EvalFullInto(prg, k, got, &sc)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bits=%d lanes=%d party=%d: EvalFullInto[%d]=%d want %d",
						shape.bits, shape.lanes, k.Party, i, got[i], want[i])
				}
			}
		}
	}
}

// TestLeafValuesIntoMatchesLeafValueScalar: the frontier-wide conversion is
// the scalar one on full-depth keys, and the per-lane group conversion on
// early-terminated keys; LeafRangeInto agrees on every sub-range.
func TestLeafValuesIntoMatchesLeafValueScalar(t *testing.T) {
	rng := mrand.New(mrand.NewSource(6))
	prg := NewAESPRG()
	k0, k1, err := GenEarly(prg, 11, 5, []uint32{9}, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []*Key{&k0, &k1} {
		const n = 8
		seeds := make([]Seed, n)
		ts := make([]uint8, n)
		for i := range seeds {
			rng.Read(seeds[i][:])
			ts[i] = uint8(i & 1)
		}
		got := make([]uint32, n)
		LeafValuesInto(k, seeds, ts, got)
		for i := range seeds {
			if want := LeafValueScalar(k, seeds[i], ts[i]); got[i] != want {
				t.Fatalf("party=%d leaf %d: %d want %d", k.Party, i, got[i], want)
			}
		}
	}
	e0, e1, err := GenEarly(prg, 11, 5, []uint32{9}, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []*Key{&e0, &e1} {
		const n = 8
		gs := k.GroupSize()
		seeds := make([]Seed, n)
		ts := make([]uint8, n)
		for i := range seeds {
			rng.Read(seeds[i][:])
			ts[i] = uint8(i & 1)
		}
		got := make([]uint32, n*gs)
		LeafValuesInto(k, seeds, ts, got)
		for i := range seeds {
			for sub := 0; sub < gs; sub++ {
				if want := LeafLane(k, seeds[i], ts[i], sub); got[i*gs+sub] != want {
					t.Fatalf("party=%d node %d sub %d: %d want %d", k.Party, i, sub, got[i*gs+sub], want)
				}
			}
		}
		// Every clipped sub-range of the frontier converts identically.
		total := uint64(n * gs)
		for _, r := range [][2]uint64{{0, total}, {0, 1}, {3, 5}, {1, total - 3}, {total - 1, total}} {
			sub := make([]uint32, r[1]-r[0])
			LeafRangeInto(k, seeds, ts, r[0], r[1], sub)
			for j := r[0]; j < r[1]; j++ {
				if sub[j-r[0]] != got[j] {
					t.Fatalf("party=%d LeafRangeInto[%d,%d): mismatch at leaf %d", k.Party, r[0], r[1], j)
				}
			}
		}
	}
}

// TestExpandBatchAllocs: once the scratch is warm, a frontier advance must
// not allocate — this is the tentpole's zero-allocation PRG contract. The
// sha256 PRF hoists its digest per call (a handful of allocations per
// batch, not per node), so it gets a small per-call budget.
func TestExpandBatchAllocs(t *testing.T) {
	const n = 128
	seeds := make([]Seed, n)
	for i := range seeds {
		rand.Read(seeds[i][:])
	}
	left := make([]Seed, n)
	right := make([]Seed, n)
	tl := make([]uint8, n)
	tr := make([]uint8, n)
	budgets := map[string]float64{"aes128": 0, "chacha20": 0, "siphash": 0, "highway": 0, "sha256": 4}
	for _, name := range AllPRGNames() {
		prg, err := NewPRG(name)
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			prg.ExpandBatch(seeds, left, right, tl, tr)
		})
		if allocs > budgets[name] {
			t.Errorf("%s: ExpandBatch of %d nodes allocates %.1f/call, budget %.0f", name, n, allocs, budgets[name])
		}
	}
}

// TestUnmarshalReusesCapacity: unmarshaling into a key that already holds
// big-enough slices must not allocate new ones (the engine's key pool
// relies on this).
func TestUnmarshalReusesCapacity(t *testing.T) {
	prg := NewAESPRG()
	rng := mrand.New(mrand.NewSource(7))
	k0, _, err := Gen(prg, 3, 10, []uint32{1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := k0.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var k Key
	if err := k.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := k.UnmarshalBinary(raw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state UnmarshalBinary allocates %.1f/call, want 0", allocs)
	}
	// And the reused key still round-trips.
	raw2, err := k.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw2) != string(raw) {
		t.Error("reused key does not round-trip")
	}
}
