package dpf

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"testing"
)

// TestStepLeafBatchMatchesUnfused pins the fused final step bit-identical
// to the two-pass pipeline it replaces (StepBothBatch into a terminal
// frontier, then LeafValuesInto over it), for every PRF, every
// early-termination depth, both parties, and frontier widths straddling
// the AES pipeline's pair loop (odd widths exercise the single-call tail).
func TestStepLeafBatchMatchesUnfused(t *testing.T) {
	rng := mrand.New(mrand.NewSource(6))
	for _, prg := range allPRGs(t) {
		t.Run(prg.Name(), func(t *testing.T) {
			for _, early := range []int{0, 1, 2} {
				const bits = 7
				alpha := uint64(rng.Intn(1 << bits))
				k0, k1, err := GenEarly(prg, alpha, bits, []uint32{rng.Uint32() | 1}, early, rand.Reader)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range []*Key{&k0, &k1} {
					// Walk the real tree to one level above the terminal
					// frontier, so the fused step sees genuine seeds and
					// control bits.
					var sc BatchScratch
					seeds, ts := []Seed{k.Root}, []uint8{k.Party}
					depth := k.TreeDepth()
					for level := 0; level < depth-1; level++ {
						next := make([]Seed, 2*len(seeds))
						nextT := make([]uint8, 2*len(seeds))
						StepBothBatch(prg, seeds, ts, k.CWs[level], next, nextT, &sc)
						seeds, ts = next, nextT
					}
					gl := k.GroupLanes()
					for _, w := range []int{1, 2, 3, 7, len(seeds)} {
						if w > len(seeds) {
							continue
						}
						fused := make([]uint32, 2*w*gl)
						StepLeafBatch(prg, k, seeds[:w], ts[:w], fused, &sc)

						term := make([]Seed, 2*w)
						termT := make([]uint8, 2*w)
						StepBothBatch(prg, seeds[:w], ts[:w], k.CWs[depth-1], term, termT, &sc)
						want := make([]uint32, 2*w*gl)
						LeafValuesInto(k, term, termT, want)

						for i := range want {
							if fused[i] != want[i] {
								t.Fatalf("early=%d party=%d w=%d out[%d]: fused %d != unfused %d",
									early, k.Party, w, i, fused[i], want[i])
							}
						}
					}
				}
			}
		})
	}
}

// TestExpandLeavesMatchesFrontier pins the fused full expansion
// (FrontierScratch.ExpandLeaves, the scalar EvalFullInto path) to the
// unfused ExpandFrontier + LeafValuesInto pipeline, and both to correct
// share reconstruction at alpha.
func TestExpandLeavesMatchesFrontier(t *testing.T) {
	rng := mrand.New(mrand.NewSource(7))
	for _, prg := range allPRGs(t) {
		t.Run(prg.Name(), func(t *testing.T) {
			for _, early := range []int{0, 1, 2} {
				for _, bits := range []int{1, 2, 3, 8} {
					e := ClampEarly(early, bits)
					alpha := uint64(rng.Intn(1 << bits))
					beta := rng.Uint32() | 1
					k0, k1, err := GenEarly(prg, alpha, bits, []uint32{beta}, e, rand.Reader)
					if err != nil {
						t.Fatal(err)
					}
					var sum []uint32
					for _, k := range []*Key{&k0, &k1} {
						var fused FrontierScratch
						got := make([]uint32, k.Domain())
						fused.ExpandLeaves(prg, k, got)

						var plain FrontierScratch
						seeds, ts := plain.ExpandFrontier(prg, k)
						want := make([]uint32, k.Domain())
						LeafValuesInto(k, seeds, ts, want)

						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("bits=%d early=%d party=%d leaf %d: fused %d != unfused %d",
									bits, e, k.Party, i, got[i], want[i])
							}
						}
						if sum == nil {
							sum = got
						} else {
							for i := range sum {
								sum[i] += got[i]
							}
						}
					}
					for i, v := range sum {
						want := uint32(0)
						if uint64(i) == alpha {
							want = beta
						}
						if v != want {
							t.Fatalf(fmt.Sprintf("bits=%d early=%d leaf %d: shares sum to %d, want %d", bits, e, i, v, want))
						}
					}
				}
			}
		})
	}
}
