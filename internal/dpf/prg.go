package dpf

import "fmt"

// PRG is the pseudorandom generator that drives the GGM tree. One Expand
// call derives both children of a node (256 bits of output); the embedded
// control bits are taken from — and then cleared in — the low bit of each
// child seed, the standard Boyle–Gilboa–Ishai packing.
//
// Implementations also report modeled per-block cycle costs used by the GPU
// and CPU device models (paper §3.2.6 observes that PRF choice dominates GPU
// DPF performance because GPUs lack AES hardware).
type PRG interface {
	// Name identifies the PRF for reports ("aes128", "chacha20", ...).
	Name() string
	// Expand derives the left and right child seeds and control bits.
	Expand(s Seed) (left, right Seed, tL, tR uint8)
	// ExpandBatch derives children for a whole frontier in one call:
	// for every i, (left[i], right[i], tL[i], tR[i]) = Expand(seeds[i]).
	// All five slices must have len(seeds). Implementations hoist per-call
	// state — key schedules, cipher state, digest blocks — out of the
	// per-node loop so advancing a K-wide frontier performs zero heap
	// allocations; ScalarExpandBatch is the reference fallback for wrapper
	// PRGs.
	ExpandBatch(seeds []Seed, left, right []Seed, tL, tR []uint8)
	// Fill deterministically expands s into dst (counter mode). Used by
	// Convert for wide output groups.
	Fill(s Seed, dst []byte)
	// GPUCyclesPerBlock is the modeled cycle cost of one 128-bit output
	// block on a single GPU thread (software implementation, no crypto
	// hardware).
	GPUCyclesPerBlock() float64
	// CPUCyclesPerBlock is the modeled cycle cost of one 128-bit output
	// block on one Xeon core, using hardware intrinsics where they exist
	// (AES-NI, SHA-NI, AVX2).
	CPUCyclesPerBlock() float64
}

// BlocksPerExpand is the number of 128-bit PRF blocks one Expand consumes.
// The paper counts "one PRF call per node child"; an Expand derives both
// children, hence two blocks.
const BlocksPerExpand = 2

// ScalarExpandBatch implements ExpandBatch by looping the scalar Expand —
// the semantic reference every native batch implementation must match
// bit-for-bit (the batch equivalence tests pin this). Wrapper PRGs that
// only decorate Expand can delegate here.
func ScalarExpandBatch(p PRG, seeds []Seed, left, right []Seed, tL, tR []uint8) {
	for i := range seeds {
		left[i], right[i], tL[i], tR[i] = p.Expand(seeds[i])
	}
}

// Convert maps a leaf seed into `lanes` output-group elements (Z_2^32 each).
// For lanes <= 4 the seed's own bits suffice (the "early termination"
// optimization: zero extra PRF calls, the case PIR uses). Wider outputs draw
// from the PRG in counter mode.
func Convert(prg PRG, s Seed, lanes int) []uint32 {
	out := make([]uint32, lanes)
	ConvertInto(prg, s, out)
	return out
}

// ConvertInto is Convert without the allocation.
func ConvertInto(prg PRG, s Seed, out []uint32) {
	lanes := len(out)
	if lanes <= 4 {
		for i := 0; i < lanes; i++ {
			out[i] = leU32(s[i*4 : i*4+4])
		}
		return
	}
	buf := make([]byte, lanes*4)
	prg.Fill(s, buf)
	for i := 0; i < lanes; i++ {
		out[i] = leU32(buf[i*4 : i*4+4])
	}
}

// ConvertBlocks is the number of extra PRF blocks a Convert of the given
// width costs, for the cost model.
func ConvertBlocks(lanes int) int {
	if lanes <= 4 {
		return 0
	}
	return (lanes*4 + 15) / 16
}

// NewPRG constructs a PRG by name. Valid names: aes128, chacha20, siphash,
// highway, sha256.
func NewPRG(name string) (PRG, error) {
	switch name {
	case "aes128":
		return NewAESPRG(), nil
	case "chacha20":
		return NewChaChaPRG(), nil
	case "siphash":
		return NewSipPRG(), nil
	case "highway":
		return NewHighwayPRG(), nil
	case "sha256":
		return NewSHA256PRG(), nil
	}
	return nil, fmt.Errorf("dpf: unknown PRG %q", name)
}

// AllPRGNames lists the supported PRFs in the order Table 5 reports them.
func AllPRGNames() []string {
	return []string{"aes128", "sha256", "chacha20", "siphash", "highway"}
}

// clearControlBits extracts the control bits from the low bit of byte 0 of
// each child and zeroes them so the seed space stays 127 bits + bit.
func clearControlBits(l, r *Seed) (tL, tR uint8) {
	tL = l[0] & 1
	tR = r[0] & 1
	l[0] &^= 1
	r[0] &^= 1
	return
}
