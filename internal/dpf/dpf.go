// Package dpf implements distributed point functions (DPFs) for two-server
// private information retrieval.
//
// A DPF lets a client split a point function f_{α,β} (which is β at index α
// and zero everywhere else) into two compact keys. Each key individually
// reveals nothing about α, yet the two parties' evaluations add up (mod 2^32,
// lane-wise) to β at α and to zero elsewhere. This is the construction of
// Boyle, Gilboa and Ishai ("Function Secret Sharing", 2015), the same
// optimal-asymptotics algorithm accelerated by the paper: O(λ·log L)
// communication and O(λ·L) evaluation work, one PRF call per tree node.
//
// The output group is Z_2^32 per lane; a table row of D bytes is D/4 lanes.
// PIR uses a scalar DPF (one lane, β = 1) whose full-domain expansion is a
// secret-shared one-hot vector that the server multiplies against the table.
package dpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Seed is a 128-bit PRG seed (λ = 128, matching the paper's security
// parameter).
type Seed [16]byte

// MaxBits is the largest supported tree depth. 2^40 entries is far beyond
// any embedding table in the paper (Criteo 1TB has 2^32).
const MaxBits = 40

// CW is a per-level correction word. The low bits TL and TR correct the
// control bits of the left and right children; S corrects the seed on the
// "lose" path so that the two parties' seeds collapse to equality off the
// special path.
type CW struct {
	S  Seed
	TL uint8
	TR uint8
}

// MaxEarlyBits is the deepest supported early termination: ⌈log₂(λ/w)⌉
// levels for λ = 128 and w = 32, i.e. one 128-bit terminal seed holds at
// most four 32-bit output lanes without extra PRF calls.
const MaxEarlyBits = 2

// DefaultEarlyBits is the early-termination depth Gen uses by default for
// scalar keys: stop ⌈log₂(λ/w)⌉ = 2 levels above the leaves and convert
// each terminal seed into four output lanes (paper §3.1), cutting the PRF
// work of a full expansion ~4×.
const DefaultEarlyBits = 2

// DefaultEarly clamps DefaultEarlyBits to what a key of the given tree
// depth and lane count supports: the terminal group (lanes << early 32-bit
// words) must fit the 128-bit seed, and at least one tree level must
// remain. Wide-beta keys (lanes > 2) therefore get no early termination;
// scalar PIR keys get the full 2 levels whenever bits ≥ 3.
func DefaultEarly(bits, lanes int) int {
	early := DefaultEarlyBits
	for early > 0 && lanes<<uint(early) > 4 {
		early--
	}
	return ClampEarly(early, bits)
}

// DomainBits returns the DPF tree depth covering a domain of rows
// entries: ⌈log₂(rows)⌉, minimum 1. Every layer that derives a tree depth
// from a row count (strategy.Table.Bits, pir.Client, the cluster front's
// key validation) must round through this one function — two layers
// disagreeing on the convention would turn a loud key rejection into
// accepted-then-garbage shares.
func DomainBits(rows int) int {
	bits := 1
	for 1<<uint(bits) < rows {
		bits++
	}
	return bits
}

// ClampEarly bounds an early-termination depth to what a tree of the given
// depth supports — at least one walked level must remain. Every layer that
// resolves a configured depth against a concrete table (pir.Client,
// engine.Replica, the cmd flags) clamps through this one function, so a
// client and server given the same flags stay matched even on tiny tables.
func ClampEarly(early, bits int) int {
	if early > bits-1 {
		early = bits - 1
	}
	if early < 0 {
		early = 0
	}
	return early
}

// Key is one party's share of a point function. A Key alone is
// computationally indistinguishable from a key for any other index.
type Key struct {
	// Bits is the tree depth n; the domain is [0, 2^Bits).
	Bits int
	// Lanes is the number of 32-bit output lanes per leaf (entry bytes/4).
	Lanes int
	// Early is the early-termination depth (§3.1): the tree walk stops
	// Early levels above the leaves, and each terminal seed converts into
	// the outputs of 2^Early consecutive leaves. 0 is the legacy full-depth
	// walk (wire format v1); Early > 0 keys marshal as wire format v2.
	Early int
	// Party is 0 or 1; party 1 negates its outputs so shares are additive.
	Party uint8
	// Root is this party's root seed.
	Root Seed
	// CWs holds one correction word per walked level (Bits - Early of
	// them), root to terminal nodes.
	CWs []CW
	// Final is the output-group correction applied at terminal nodes with
	// control bit 1; it spans the whole terminal group (Lanes << Early
	// lanes, the 2^Early leaves' outputs concatenated in leaf order).
	Final []uint32
}

// Domain returns the number of leaves 2^Bits.
func (k *Key) Domain() uint64 { return 1 << uint(k.Bits) }

// TreeDepth is the number of levels the evaluation tree actually walks:
// Bits - Early correction words from the root to the terminal frontier.
func (k *Key) TreeDepth() int { return k.Bits - k.Early }

// GroupSize is the number of consecutive leaves one terminal seed covers.
func (k *Key) GroupSize() int { return 1 << uint(k.Early) }

// GroupLanes is the number of 32-bit output lanes one terminal seed
// converts into: the group's leaves' lanes concatenated in leaf order.
func (k *Key) GroupLanes() int { return k.Lanes << uint(k.Early) }

// Gen generates a DPF key pair for the point function that evaluates to beta
// at index alpha and to zero elsewhere over a domain of 2^bits indices.
// Randomness is drawn from rng (use crypto/rand.Reader in production).
// Keys use the default early-termination depth (DefaultEarly): scalar keys
// stop the tree walk 2 levels early and convert each terminal seed into
// four output lanes, the §3.1 optimisation. Use GenEarly for an explicit
// depth (0 reproduces the legacy full-depth v1 keys).
func Gen(prg PRG, alpha uint64, bits int, beta []uint32, rng io.Reader) (k0, k1 Key, err error) {
	return GenEarly(prg, alpha, bits, beta, DefaultEarly(bits, len(beta)), rng)
}

// GenEarly is Gen with an explicit early-termination depth: the generated
// keys walk bits-early tree levels and convert each 128-bit terminal seed
// into the outputs of 2^early consecutive leaves. early must leave at
// least one tree level and the terminal group (len(beta) << early lanes)
// must fit the seed's four 32-bit words; early = 0 generates legacy
// full-depth (wire format v1) keys.
func GenEarly(prg PRG, alpha uint64, bits int, beta []uint32, early int, rng io.Reader) (k0, k1 Key, err error) {
	if bits <= 0 || bits > MaxBits {
		return k0, k1, fmt.Errorf("dpf: bits %d out of range [1,%d]", bits, MaxBits)
	}
	if alpha >= 1<<uint(bits) {
		return k0, k1, fmt.Errorf("dpf: alpha %d outside domain 2^%d", alpha, bits)
	}
	if len(beta) == 0 {
		return k0, k1, errors.New("dpf: beta must have at least one lane")
	}
	if early < 0 || early > MaxEarlyBits {
		return k0, k1, fmt.Errorf("dpf: early-termination depth %d out of range [0,%d]", early, MaxEarlyBits)
	}
	if early >= bits {
		return k0, k1, fmt.Errorf("dpf: early-termination depth %d leaves no tree levels for %d bits", early, bits)
	}
	// An early-terminated group must convert straight from the seed's four
	// 32-bit words; full-depth keys may be arbitrarily wide (Convert draws
	// extra PRG blocks beyond 4 lanes).
	if g := len(beta) << uint(early); early > 0 && g > 4 {
		return k0, k1, fmt.Errorf("dpf: terminal group of %d lanes (%d beta lanes << %d) exceeds the 4 a 128-bit seed holds", g, len(beta), early)
	}
	var roots [2]Seed
	for b := 0; b < 2; b++ {
		if _, err := io.ReadFull(rng, roots[b][:]); err != nil {
			return k0, k1, fmt.Errorf("dpf: reading randomness: %w", err)
		}
	}
	depth := bits - early
	cws := make([]CW, depth)

	s := roots          // current seeds per party
	t := [2]uint8{0, 1} // current control bits per party

	for level := 0; level < depth; level++ {
		// Bit of alpha at this level, MSB first.
		aBit := uint8(alpha>>uint(bits-1-level)) & 1

		var child [2][2]Seed // [party][side]
		var ct [2][2]uint8   // [party][side]
		for b := 0; b < 2; b++ {
			l, r, tl, tr := prg.Expand(s[b])
			child[b][0], child[b][1] = l, r
			ct[b][0], ct[b][1] = tl, tr
		}

		keep, lose := aBit, 1-aBit
		var cw CW
		cw.S = xorSeed(child[0][lose], child[1][lose])
		cw.TL = ct[0][0] ^ ct[1][0] ^ aBit ^ 1
		cw.TR = ct[0][1] ^ ct[1][1] ^ aBit
		cws[level] = cw

		cwKeep := cw.TL
		if keep == 1 {
			cwKeep = cw.TR
		}
		for b := 0; b < 2; b++ {
			ns := child[b][keep]
			if t[b] == 1 {
				ns = xorSeed(ns, cw.S)
			}
			nt := ct[b][keep] ^ (t[b] & cwKeep)
			s[b], t[b] = ns, nt
		}
	}

	// Final correction word over the terminal group's output lanes:
	// final = (-1)^{t1} * (betaGroup - Convert(s0) + Convert(s1)) mod 2^32,
	// where betaGroup places beta at the group slot the low `early` bits of
	// alpha select and zeros elsewhere — the other leaves of alpha's
	// terminal group must still share to zero.
	lanes := len(beta)
	groupLanes := lanes << uint(early)
	betaGroup := make([]uint32, groupLanes)
	sub := int(alpha) & (1<<uint(early) - 1)
	copy(betaGroup[sub*lanes:(sub+1)*lanes], beta)
	c0 := Convert(prg, s[0], groupLanes)
	c1 := Convert(prg, s[1], groupLanes)
	final := make([]uint32, groupLanes)
	for i := range final {
		v := betaGroup[i] - c0[i] + c1[i]
		if t[1] == 1 {
			v = -v
		}
		final[i] = v
	}

	mk := func(party uint8) Key {
		cwCopy := make([]CW, len(cws))
		copy(cwCopy, cws)
		fCopy := make([]uint32, groupLanes)
		copy(fCopy, final)
		return Key{
			Bits:  bits,
			Lanes: lanes,
			Early: early,
			Party: party,
			Root:  roots[party],
			CWs:   cwCopy,
			Final: fCopy,
		}
	}
	return mk(0), mk(1), nil
}

// Step descends one level of the evaluation tree: given the node state
// (seed, control bit) and this level's correction word, it returns the state
// of the child selected by bit (0 = left, 1 = right). This is the primitive
// every execution strategy in internal/strategy is built from; it costs one
// PRF call per invoked side pair (the PRG expands both children at once, so
// strategies that need both children should use StepBoth).
func Step(prg PRG, s Seed, t uint8, cw CW, bit uint8) (Seed, uint8) {
	l, r, tl, tr := prg.Expand(s)
	if t == 1 {
		l = xorSeed(l, cw.S)
		r = xorSeed(r, cw.S)
		tl ^= cw.TL
		tr ^= cw.TR
	}
	if bit == 0 {
		return l, tl
	}
	return r, tr
}

// StepBoth expands a node into both children in one PRG call.
func StepBoth(prg PRG, s Seed, t uint8, cw CW) (ls Seed, lt uint8, rs Seed, rt uint8) {
	l, r, tl, tr := prg.Expand(s)
	if t == 1 {
		l = xorSeed(l, cw.S)
		r = xorSeed(r, cw.S)
		tl ^= cw.TL
		tr ^= cw.TR
	}
	return l, tl, r, tr
}

// BatchScratch holds the reusable child buffers the batched tree steps
// expand through. The zero value is ready to use; buffers grow on demand
// and are retained, so steady-state frontier advances allocate nothing.
type BatchScratch struct {
	left, right []Seed
	tl, tr      []uint8
}

func (b *BatchScratch) grow(n int) {
	if cap(b.left) < n {
		b.left = make([]Seed, n)
		b.right = make([]Seed, n)
		b.tl = make([]uint8, n)
		b.tr = make([]uint8, n)
	}
	b.left, b.right = b.left[:n], b.right[:n]
	b.tl, b.tr = b.tl[:n], b.tr[:n]
}

// StepBothBatch advances a whole frontier one level in a single ExpandBatch
// call: the nodes (seeds[i], ts[i]) all sit at the same depth and share the
// correction word cw, and their children land in leaf order — node i's left
// child at next[2i], its right child at next[2i+1]. next and nextT must
// have length 2·len(seeds) and must not alias seeds/ts (use ping-pong
// buffers). This is the K-wide step the paper's memory-bounded traversal
// performs per kernel iteration (§3.2.3), with the PRF state hoisted so the
// whole level costs zero allocations.
func StepBothBatch(prg PRG, seeds []Seed, ts []uint8, cw CW, next []Seed, nextT []uint8, sc *BatchScratch) {
	if a, ok := prg.(*AESPRG); ok {
		// The default PRF gets a fully fused step: child blocks are
		// encrypted straight into next and the correction word applied in
		// place, skipping the scratch round trip (measurably hot at K-wide
		// frontiers).
		a.stepBothBatch(seeds, ts, cw, next, nextT)
		return
	}
	n := len(seeds)
	sc.grow(n)
	prg.ExpandBatch(seeds, sc.left, sc.right, sc.tl, sc.tr)
	for i := 0; i < n; i++ {
		l, r := sc.left[i], sc.right[i]
		lt, rt := sc.tl[i], sc.tr[i]
		if ts[i] == 1 {
			l = xorSeed(l, cw.S)
			r = xorSeed(r, cw.S)
			lt ^= cw.TL
			rt ^= cw.TR
		}
		next[2*i], next[2*i+1] = l, r
		nextT[2*i], nextT[2*i+1] = lt, rt
	}
}

// StepLeafBatch fuses the last walked level with the §3.1 terminal
// conversion for scalar keys: the nodes (seeds[i], ts[i]) sit one level
// above the terminal frontier and share the final correction word
// k.CWs[TreeDepth()-1]; each node's two terminal children are expanded,
// corrected, and converted straight into this party's output shares —
// dst[i·2·g : (i+1)·2·g] (g = GroupLanes()) receives node i's children's
// groups in leaf order — without the child seeds round-tripping through a
// frontier buffer. Like LeafValuesInto, this assumes a scalar key
// (Lanes == 1): conversion reads straight from the seed words with no
// extra PRF call. dst must have 2·len(seeds)·GroupLanes() entries.
func StepLeafBatch(prg PRG, k *Key, seeds []Seed, ts []uint8, dst []uint32, sc *BatchScratch) {
	cw := k.CWs[k.TreeDepth()-1]
	if a, ok := prg.(*AESPRG); ok {
		// The default PRF fuses all the way down: the pair-interleaved AES
		// pipeline's output blocks are corrected and converted out of a
		// stack buffer, skipping the batch scratch too.
		a.stepLeafBatch(k, seeds, ts, cw, dst)
		return
	}
	n := len(seeds)
	sc.grow(n)
	prg.ExpandBatch(seeds, sc.left, sc.right, sc.tl, sc.tr)
	gl := k.GroupLanes()
	for i := 0; i < n; i++ {
		l, r := sc.left[i], sc.right[i]
		lt, rt := sc.tl[i], sc.tr[i]
		if ts[i] == 1 {
			l = xorSeed(l, cw.S)
			r = xorSeed(r, cw.S)
			lt ^= cw.TL
			rt ^= cw.TR
		}
		convertLeafGroup(k, &l, lt, dst[2*i*gl:(2*i+1)*gl])
		convertLeafGroup(k, &r, rt, dst[(2*i+1)*gl:(2*i+2)*gl])
	}
}

// convertLeafGroup converts one corrected terminal seed of a scalar key
// into its group's output shares (final correction plus party sign), the
// per-node body of LeafValuesInto.
func convertLeafGroup(k *Key, s *Seed, t uint8, out []uint32) {
	neg := k.Party == 1
	for j := range out {
		v := leU32(s[j*4 : j*4+4])
		if t == 1 {
			v += k.Final[j]
		}
		if neg {
			v = -v
		}
		out[j] = v
	}
}

// StepBatch advances n independent per-key node states one level down the
// bit-selected child in one ExpandBatch call; cws[i] is key i's correction
// word for this level. seeds and ts are updated in place. This batches the
// path-per-leaf strategies across a query tile: the leaf index (hence bit)
// is shared, the keys differ.
func StepBatch(prg PRG, seeds []Seed, ts []uint8, cws []CW, bit uint8, sc *BatchScratch) {
	n := len(seeds)
	sc.grow(n)
	prg.ExpandBatch(seeds, sc.left, sc.right, sc.tl, sc.tr)
	for i := 0; i < n; i++ {
		var s Seed
		var t uint8
		if bit == 0 {
			s, t = sc.left[i], sc.tl[i]
		} else {
			s, t = sc.right[i], sc.tr[i]
		}
		if ts[i] == 1 {
			s = xorSeed(s, cws[i].S)
			if bit == 0 {
				t ^= cws[i].TL
			} else {
				t ^= cws[i].TR
			}
		}
		seeds[i], ts[i] = s, t
	}
}

// LeafValue converts one terminal node state into this party's output
// shares for the node's whole leaf group, applying the final correction
// word and the party sign. dst must have k.GroupLanes() entries (= k.Lanes
// for full-depth keys) and receives the group's leaves' lanes concatenated
// in leaf order; it is returned for convenience. The conversion happens in
// place via ConvertInto, so terminal groups up to four lanes wide (the PIR
// hot path, early-terminated or not) cost zero allocations.
func LeafValue(prg PRG, k *Key, s Seed, t uint8, dst []uint32) []uint32 {
	n := k.GroupLanes()
	dst = dst[:n]
	ConvertInto(prg, s, dst)
	for i := 0; i < n; i++ {
		v := dst[i]
		if t == 1 {
			v += k.Final[i]
		}
		if k.Party == 1 {
			v = -v
		}
		dst[i] = v
	}
	return dst
}

// LeafValuesInto converts a whole terminal frontier of a scalar key into
// this party's output shares: each terminal node yields its GroupSize()
// consecutive leaf values, so dst must have len(seeds) << Early entries.
// The conversion reads straight from the seed words with no PRF call —
// for early-terminated keys this is the §3.1 payoff: one 128-bit seed
// becomes four output lanes instead of four walked leaves.
func LeafValuesInto(k *Key, seeds []Seed, ts []uint8, dst []uint32) {
	neg := k.Party == 1
	if k.Early == 0 {
		final := k.Final[0]
		for i := range seeds {
			v := leU32(seeds[i][0:4])
			if ts[i] == 1 {
				v += final
			}
			if neg {
				v = -v
			}
			dst[i] = v
		}
		return
	}
	gs := k.GroupSize()
	for i := range seeds {
		out := dst[i*gs : (i+1)*gs]
		for j := 0; j < gs; j++ {
			v := leU32(seeds[i][j*4 : j*4+4])
			if ts[i] == 1 {
				v += k.Final[j]
			}
			if neg {
				v = -v
			}
			out[j] = v
		}
	}
}

// LeafRangeInto converts leaves [lo, hi) of a scalar key's terminal
// frontier into dst (hi-lo values): seeds[g] covers leaves
// [g<<Early, (g+1)<<Early) in the frontier's own coordinates, so lo and hi
// may cut through a terminal group — range walkers and shard boundaries
// land wherever they like, the group conversion clips.
func LeafRangeInto(k *Key, seeds []Seed, ts []uint8, lo, hi uint64, dst []uint32) {
	if k.Early == 0 {
		LeafValuesInto(k, seeds[lo:hi], ts[lo:hi], dst[:hi-lo])
		return
	}
	gs := uint64(k.GroupSize())
	neg := k.Party == 1
	for g := lo >> uint(k.Early); g<<uint(k.Early) < hi; g++ {
		base := g << uint(k.Early)
		jLo, jHi := uint64(0), gs
		if base < lo {
			jLo = lo - base
		}
		if base+gs > hi {
			jHi = hi - base
		}
		s, t := seeds[g], ts[g]
		out := dst[base+jLo-lo:]
		for j := jLo; j < jHi; j++ {
			v := leU32(s[j*4 : j*4+4])
			if t == 1 {
				v += k.Final[j]
			}
			if neg {
				v = -v
			}
			out[j-jLo] = v
		}
	}
}

// LeafValueScalar is LeafValue specialized to one-lane full-depth keys
// (the wire-v1 PIR hot path and the frozen seed baseline); it avoids the
// slice plumbing. Early-terminated keys convert whole groups — use
// LeafLane for one leaf of a terminal group.
func LeafValueScalar(k *Key, s Seed, t uint8) uint32 {
	// One lane converts straight from the seed; no extra PRF call.
	v := leU32(s[0:4])
	if t == 1 {
		v += k.Final[0]
	}
	if k.Party == 1 {
		v = -v
	}
	return v
}

// LeafLane converts a single lane of a scalar key's terminal group: the
// share of leaf (group<<Early)+sub is the seed's sub-th 32-bit word plus
// its slot of the final correction word. sub must be < GroupSize().
func LeafLane(k *Key, s Seed, t uint8, sub int) uint32 {
	v := leU32(s[sub*4 : sub*4+4])
	if t == 1 {
		v += k.Final[sub]
	}
	if k.Party == 1 {
		v = -v
	}
	return v
}

// EvalAt evaluates the key at a single index x, walking one root-to-
// terminal path (TreeDepth PRF calls) and converting the terminal seed's
// group, of which x's slot is returned.
func EvalAt(prg PRG, k *Key, x uint64) ([]uint32, error) {
	if x >= k.Domain() {
		return nil, fmt.Errorf("dpf: index %d outside domain 2^%d", x, k.Bits)
	}
	s, t := k.Root, k.Party
	depth := k.TreeDepth()
	for level := 0; level < depth; level++ {
		bit := uint8(x>>uint(k.Bits-1-level)) & 1
		s, t = Step(prg, s, t, k.CWs[level], bit)
	}
	group := make([]uint32, k.GroupLanes())
	LeafValue(prg, k, s, t, group)
	sub := int(x) & (k.GroupSize() - 1)
	return group[sub*k.Lanes : (sub+1)*k.Lanes], nil
}

// FrontierScratch holds the ping-pong level buffers a full breadth-first
// expansion walks through, plus the batch scratch underneath. The zero
// value is ready to use; buffers grow to the largest domain seen and are
// retained, so steady-state full expansions allocate nothing.
type FrontierScratch struct {
	seeds, next []Seed
	ts, nextT   []uint8
	batch       BatchScratch
}

func (f *FrontierScratch) grow(n uint64) {
	if uint64(cap(f.seeds)) < n {
		f.seeds = make([]Seed, n)
		f.next = make([]Seed, n)
		f.ts = make([]uint8, n)
		f.nextT = make([]uint8, n)
	}
}

// EvalFull expands the entire domain level by level and returns the flat
// share vector of length 2^Bits * Lanes. This is the reference expansion
// (and the core of the CPU level-by-level baseline): 2·(L>>Early)-2 PRF
// calls, O(L) intermediate memory.
func EvalFull(prg PRG, k *Key) []uint32 {
	out := make([]uint32, k.Domain()*uint64(k.Lanes))
	var sc FrontierScratch
	EvalFullInto(prg, k, out, &sc)
	return out
}

// ExpandFrontier expands the key's whole tree breadth-first through the
// scratch — one StepBothBatch (a single batched PRF call) per level — and
// returns the terminal frontier: Domain()>>Early seeds and control bits
// (node g covering leaves [g<<Early, (g+1)<<Early)), valid until the
// scratch's next use. Steady state allocates nothing once the scratch has
// seen the frontier size.
func (f *FrontierScratch) ExpandFrontier(prg PRG, k *Key) ([]Seed, []uint8) {
	f.grow(k.Domain() >> uint(k.Early))
	seeds, ts := f.seeds[:1], f.ts[:1]
	next, nextT := f.next, f.nextT
	seeds[0], ts[0] = k.Root, k.Party
	depth := k.TreeDepth()
	for level := 0; level < depth; level++ {
		w := len(seeds)
		StepBothBatch(prg, seeds, ts, k.CWs[level], next[:2*w], nextT[:2*w], &f.batch)
		seeds, next = next[:2*w], seeds[:cap(seeds)]
		ts, nextT = nextT[:2*w], ts[:cap(ts)]
	}
	// Keep the scratch's buffer identities stable for the next call.
	f.seeds, f.next = seeds[:cap(seeds)], next[:cap(next)]
	f.ts, f.nextT = ts[:cap(ts)], nextT[:cap(nextT)]
	return seeds, ts
}

// ExpandLeaves is ExpandFrontier fused with the terminal conversion for
// scalar keys: the breadth-first walk stops one level above the terminal
// frontier and the final StepLeafBatch converts the last level's children
// straight into dst (Domain() values) — the widest frontier level never
// materializes in the ping-pong buffers, halving the scratch high-water
// mark and skipping the separate LeafValuesInto pass over it.
func (f *FrontierScratch) ExpandLeaves(prg PRG, k *Key, dst []uint32) {
	f.grow(k.Domain() >> uint(k.Early+1))
	seeds, ts := f.seeds[:1], f.ts[:1]
	next, nextT := f.next, f.nextT
	seeds[0], ts[0] = k.Root, k.Party
	depth := k.TreeDepth()
	for level := 0; level < depth-1; level++ {
		w := len(seeds)
		StepBothBatch(prg, seeds, ts, k.CWs[level], next[:2*w], nextT[:2*w], &f.batch)
		seeds, next = next[:2*w], seeds[:cap(seeds)]
		ts, nextT = nextT[:2*w], ts[:cap(ts)]
	}
	StepLeafBatch(prg, k, seeds, ts, dst, &f.batch)
	// Keep the scratch's buffer identities stable for the next call.
	f.seeds, f.next = seeds[:cap(seeds)], next[:cap(next)]
	f.ts, f.nextT = ts[:cap(ts)], nextT[:cap(nextT)]
}

// EvalFullInto is EvalFull through caller-provided output and scratch. out
// must have length Domain()·Lanes.
func EvalFullInto(prg PRG, k *Key, out []uint32, sc *FrontierScratch) {
	if k.Lanes == 1 {
		// Scalar keys take the fused walk: the last level converts straight
		// into out.
		sc.ExpandLeaves(prg, k, out)
		return
	}
	seeds, ts := sc.ExpandFrontier(prg, k)
	// A terminal group's lanes are its leaves' lanes concatenated in leaf
	// order, which is exactly the flat output layout.
	groupLanes := uint64(k.GroupLanes())
	for g := range seeds {
		LeafValue(prg, k, seeds[g], ts[g], out[uint64(g)*groupLanes:(uint64(g)+1)*groupLanes])
	}
}

// EvalRange evaluates leaves [lo, hi) into out (len (hi-lo)*Lanes), using a
// depth-first traversal that prunes subtrees outside the range. Cost is
// O((hi-lo) + log L) PRF calls, which makes multi-GPU style sharding
// (paper §3.2.7) embarrassingly parallel. Leaf shares are converted
// directly into out, so scalar and ≤4-lane keys evaluate with zero
// allocations.
func EvalRange(prg PRG, k *Key, lo, hi uint64, out []uint32) error {
	if lo > hi || hi > k.Domain() {
		return fmt.Errorf("dpf: range [%d,%d) outside domain 2^%d", lo, hi, k.Bits)
	}
	if uint64(len(out)) < (hi-lo)*uint64(k.Lanes) {
		return fmt.Errorf("dpf: output buffer too small: %d < %d", len(out), (hi-lo)*uint64(k.Lanes))
	}
	if lo == hi {
		return nil
	}
	evalRangeWalk(prg, k, k.Root, k.Party, 0, 0, lo, hi, out)
	return nil
}

// evalRangeWalk is EvalRange's pruned descent. It is a plain recursive
// function (not a closure) so the walk itself never touches the heap.
// The recursion bottoms out at the terminal frontier (TreeDepth levels
// down), where one seed converts into its whole leaf group, clipped to
// [lo, hi).
func evalRangeWalk(prg PRG, k *Key, s Seed, t uint8, level int, base, lo, hi uint64, out []uint32) {
	span := uint64(1) << uint(k.Bits-level)
	if base >= hi || base+span <= lo {
		return
	}
	if level == k.TreeDepth() {
		if k.Early == 0 {
			if k.Lanes == 1 {
				out[base-lo] = LeafValueScalar(k, s, t)
			} else {
				lanes := uint64(k.Lanes)
				LeafValue(prg, k, s, t, out[(base-lo)*lanes:(base-lo+1)*lanes])
			}
			return
		}
		// The terminal group (≤ 4 lanes) converts into a stack buffer and
		// the in-range slice is copied out — group boundaries need not
		// align with [lo, hi).
		var buf [4]uint32
		group := LeafValue(prg, k, s, t, buf[:k.GroupLanes()])
		jLo, jHi := uint64(0), span
		if base < lo {
			jLo = lo - base
		}
		if base+span > hi {
			jHi = hi - base
		}
		lanes := uint64(k.Lanes)
		copy(out[(base+jLo-lo)*lanes:(base+jHi-lo)*lanes], group[jLo*lanes:jHi*lanes])
		return
	}
	ls, lt, rs, rt := StepBoth(prg, s, t, k.CWs[level])
	evalRangeWalk(prg, k, ls, lt, level+1, base, lo, hi, out)
	evalRangeWalk(prg, k, rs, rt, level+1, base+span/2, lo, hi, out)
}

// xorSeedInto XORs b into a in place, two 64-bit words at a time.
func xorSeedInto(a, b *Seed) {
	binary.LittleEndian.PutUint64(a[0:8], binary.LittleEndian.Uint64(a[0:8])^binary.LittleEndian.Uint64(b[0:8]))
	binary.LittleEndian.PutUint64(a[8:16], binary.LittleEndian.Uint64(a[8:16])^binary.LittleEndian.Uint64(b[8:16]))
}

// xorSeed XORs two seeds as a pair of 64-bit words (the compiler lowers
// the binary loads/stores to single moves — the byte loop this replaces
// showed up in the hot-path profile).
func xorSeed(a, b Seed) Seed {
	var out Seed
	binary.LittleEndian.PutUint64(out[0:8], binary.LittleEndian.Uint64(a[0:8])^binary.LittleEndian.Uint64(b[0:8]))
	binary.LittleEndian.PutUint64(out[8:16], binary.LittleEndian.Uint64(a[8:16])^binary.LittleEndian.Uint64(b[8:16]))
	return out
}

func leU32(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b)
}
