// Package dpf implements distributed point functions (DPFs) for two-server
// private information retrieval.
//
// A DPF lets a client split a point function f_{α,β} (which is β at index α
// and zero everywhere else) into two compact keys. Each key individually
// reveals nothing about α, yet the two parties' evaluations add up (mod 2^32,
// lane-wise) to β at α and to zero elsewhere. This is the construction of
// Boyle, Gilboa and Ishai ("Function Secret Sharing", 2015), the same
// optimal-asymptotics algorithm accelerated by the paper: O(λ·log L)
// communication and O(λ·L) evaluation work, one PRF call per tree node.
//
// The output group is Z_2^32 per lane; a table row of D bytes is D/4 lanes.
// PIR uses a scalar DPF (one lane, β = 1) whose full-domain expansion is a
// secret-shared one-hot vector that the server multiplies against the table.
package dpf

import (
	"errors"
	"fmt"
	"io"
)

// Seed is a 128-bit PRG seed (λ = 128, matching the paper's security
// parameter).
type Seed [16]byte

// MaxBits is the largest supported tree depth. 2^40 entries is far beyond
// any embedding table in the paper (Criteo 1TB has 2^32).
const MaxBits = 40

// CW is a per-level correction word. The low bits TL and TR correct the
// control bits of the left and right children; S corrects the seed on the
// "lose" path so that the two parties' seeds collapse to equality off the
// special path.
type CW struct {
	S  Seed
	TL uint8
	TR uint8
}

// Key is one party's share of a point function. A Key alone is
// computationally indistinguishable from a key for any other index.
type Key struct {
	// Bits is the tree depth n; the domain is [0, 2^Bits).
	Bits int
	// Lanes is the number of 32-bit output lanes (entry bytes / 4).
	Lanes int
	// Party is 0 or 1; party 1 negates its outputs so shares are additive.
	Party uint8
	// Root is this party's root seed.
	Root Seed
	// CWs holds one correction word per level, root to leaves.
	CWs []CW
	// Final is the output-group correction applied at leaves with control
	// bit 1.
	Final []uint32
}

// Domain returns the number of leaves 2^Bits.
func (k *Key) Domain() uint64 { return 1 << uint(k.Bits) }

// Gen generates a DPF key pair for the point function that evaluates to beta
// at index alpha and to zero elsewhere over a domain of 2^bits indices.
// Randomness is drawn from rng (use crypto/rand.Reader in production).
func Gen(prg PRG, alpha uint64, bits int, beta []uint32, rng io.Reader) (k0, k1 Key, err error) {
	if bits <= 0 || bits > MaxBits {
		return k0, k1, fmt.Errorf("dpf: bits %d out of range [1,%d]", bits, MaxBits)
	}
	if alpha >= 1<<uint(bits) {
		return k0, k1, fmt.Errorf("dpf: alpha %d outside domain 2^%d", alpha, bits)
	}
	if len(beta) == 0 {
		return k0, k1, errors.New("dpf: beta must have at least one lane")
	}
	var roots [2]Seed
	for b := 0; b < 2; b++ {
		if _, err := io.ReadFull(rng, roots[b][:]); err != nil {
			return k0, k1, fmt.Errorf("dpf: reading randomness: %w", err)
		}
	}
	cws := make([]CW, bits)

	s := roots          // current seeds per party
	t := [2]uint8{0, 1} // current control bits per party

	for level := 0; level < bits; level++ {
		// Bit of alpha at this level, MSB first.
		aBit := uint8(alpha>>uint(bits-1-level)) & 1

		var child [2][2]Seed // [party][side]
		var ct [2][2]uint8   // [party][side]
		for b := 0; b < 2; b++ {
			l, r, tl, tr := prg.Expand(s[b])
			child[b][0], child[b][1] = l, r
			ct[b][0], ct[b][1] = tl, tr
		}

		keep, lose := aBit, 1-aBit
		var cw CW
		cw.S = xorSeed(child[0][lose], child[1][lose])
		cw.TL = ct[0][0] ^ ct[1][0] ^ aBit ^ 1
		cw.TR = ct[0][1] ^ ct[1][1] ^ aBit
		cws[level] = cw

		cwKeep := cw.TL
		if keep == 1 {
			cwKeep = cw.TR
		}
		for b := 0; b < 2; b++ {
			ns := child[b][keep]
			if t[b] == 1 {
				ns = xorSeed(ns, cw.S)
			}
			nt := ct[b][keep] ^ (t[b] & cwKeep)
			s[b], t[b] = ns, nt
		}
	}

	// Final correction word over the output group:
	// final = (-1)^{t1} * (beta - Convert(s0) + Convert(s1)) mod 2^32.
	lanes := len(beta)
	c0 := Convert(prg, s[0], lanes)
	c1 := Convert(prg, s[1], lanes)
	final := make([]uint32, lanes)
	for i := range final {
		v := beta[i] - c0[i] + c1[i]
		if t[1] == 1 {
			v = -v
		}
		final[i] = v
	}

	mk := func(party uint8) Key {
		cwCopy := make([]CW, len(cws))
		copy(cwCopy, cws)
		fCopy := make([]uint32, lanes)
		copy(fCopy, final)
		return Key{
			Bits:  bits,
			Lanes: lanes,
			Party: party,
			Root:  roots[party],
			CWs:   cwCopy,
			Final: fCopy,
		}
	}
	return mk(0), mk(1), nil
}

// Step descends one level of the evaluation tree: given the node state
// (seed, control bit) and this level's correction word, it returns the state
// of the child selected by bit (0 = left, 1 = right). This is the primitive
// every execution strategy in internal/strategy is built from; it costs one
// PRF call per invoked side pair (the PRG expands both children at once, so
// strategies that need both children should use StepBoth).
func Step(prg PRG, s Seed, t uint8, cw CW, bit uint8) (Seed, uint8) {
	l, r, tl, tr := prg.Expand(s)
	if t == 1 {
		l = xorSeed(l, cw.S)
		r = xorSeed(r, cw.S)
		tl ^= cw.TL
		tr ^= cw.TR
	}
	if bit == 0 {
		return l, tl
	}
	return r, tr
}

// StepBoth expands a node into both children in one PRG call.
func StepBoth(prg PRG, s Seed, t uint8, cw CW) (ls Seed, lt uint8, rs Seed, rt uint8) {
	l, r, tl, tr := prg.Expand(s)
	if t == 1 {
		l = xorSeed(l, cw.S)
		r = xorSeed(r, cw.S)
		tl ^= cw.TL
		tr ^= cw.TR
	}
	return l, tl, r, tr
}

// LeafValue converts a leaf node state into this party's output-group share,
// applying the final correction word and the party sign. dst must have
// k.Lanes entries; it is returned for convenience.
func LeafValue(prg PRG, k *Key, s Seed, t uint8, dst []uint32) []uint32 {
	conv := Convert(prg, s, k.Lanes)
	for i := 0; i < k.Lanes; i++ {
		v := conv[i]
		if t == 1 {
			v += k.Final[i]
		}
		if k.Party == 1 {
			v = -v
		}
		dst[i] = v
	}
	return dst
}

// LeafValueScalar is LeafValue specialized to one-lane keys (the PIR hot
// path); it avoids the slice plumbing.
func LeafValueScalar(k *Key, s Seed, t uint8) uint32 {
	// One lane converts straight from the seed; no extra PRF call.
	v := leU32(s[0:4])
	if t == 1 {
		v += k.Final[0]
	}
	if k.Party == 1 {
		v = -v
	}
	return v
}

// EvalAt evaluates the key at a single index x, walking one root-to-leaf
// path (log L PRF calls).
func EvalAt(prg PRG, k *Key, x uint64) ([]uint32, error) {
	if x >= k.Domain() {
		return nil, fmt.Errorf("dpf: index %d outside domain 2^%d", x, k.Bits)
	}
	s, t := k.Root, k.Party
	for level := 0; level < k.Bits; level++ {
		bit := uint8(x>>uint(k.Bits-1-level)) & 1
		s, t = Step(prg, s, t, k.CWs[level], bit)
	}
	out := make([]uint32, k.Lanes)
	return LeafValue(prg, k, s, t, out), nil
}

// EvalFull expands the entire domain level by level and returns the flat
// share vector of length 2^Bits * Lanes. This is the reference expansion
// (and the core of the CPU level-by-level baseline): 2L-2 PRF calls, O(L)
// intermediate memory.
func EvalFull(prg PRG, k *Key) []uint32 {
	n := k.Domain()
	seeds := make([]Seed, 1, n)
	ts := make([]uint8, 1, n)
	seeds[0], ts[0] = k.Root, k.Party
	nextSeeds := make([]Seed, 0, n)
	nextTs := make([]uint8, 0, n)
	for level := 0; level < k.Bits; level++ {
		cw := k.CWs[level]
		nextSeeds = nextSeeds[:0]
		nextTs = nextTs[:0]
		for i := range seeds {
			ls, lt, rs, rt := StepBoth(prg, seeds[i], ts[i], cw)
			nextSeeds = append(nextSeeds, ls, rs)
			nextTs = append(nextTs, lt, rt)
		}
		seeds, nextSeeds = nextSeeds, seeds
		ts, nextTs = nextTs, ts
	}
	out := make([]uint32, n*uint64(k.Lanes))
	tmp := make([]uint32, k.Lanes)
	for j := uint64(0); j < n; j++ {
		LeafValue(prg, k, seeds[j], ts[j], tmp)
		copy(out[j*uint64(k.Lanes):], tmp)
	}
	return out
}

// EvalRange evaluates leaves [lo, hi) into out (len (hi-lo)*Lanes), using a
// depth-first traversal that prunes subtrees outside the range. Cost is
// O((hi-lo) + log L) PRF calls, which makes multi-GPU style sharding
// (paper §3.2.7) embarrassingly parallel.
func EvalRange(prg PRG, k *Key, lo, hi uint64, out []uint32) error {
	if lo > hi || hi > k.Domain() {
		return fmt.Errorf("dpf: range [%d,%d) outside domain 2^%d", lo, hi, k.Bits)
	}
	if uint64(len(out)) < (hi-lo)*uint64(k.Lanes) {
		return fmt.Errorf("dpf: output buffer too small: %d < %d", len(out), (hi-lo)*uint64(k.Lanes))
	}
	if lo == hi {
		return nil
	}
	tmp := make([]uint32, k.Lanes)
	var walk func(s Seed, t uint8, level int, base uint64)
	walk = func(s Seed, t uint8, level int, base uint64) {
		span := uint64(1) << uint(k.Bits-level)
		if base >= hi || base+span <= lo {
			return
		}
		if level == k.Bits {
			LeafValue(prg, k, s, t, tmp)
			copy(out[(base-lo)*uint64(k.Lanes):], tmp)
			return
		}
		ls, lt, rs, rt := StepBoth(prg, s, t, k.CWs[level])
		walk(ls, lt, level+1, base)
		walk(rs, rt, level+1, base+span/2)
	}
	walk(k.Root, k.Party, 0, 0)
	return nil
}

func xorSeed(a, b Seed) Seed {
	var out Seed
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
