package dpf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format (little endian):
//
//	magic   uint16 = 0xDF01
//	bits    uint8
//	party   uint8
//	lanes   uint32
//	root    [16]byte
//	cw      bits × { seed [16]byte; tbits uint8 (bit0=TL, bit1=TR) }
//	final   lanes × uint32
//
// Key size is therefore 24 + 17·log2(L) + 4·lanes bytes — the O(λ·log L)
// communication the paper's DPF achieves (§3.1): ~364 bytes for a 1M-entry
// table with a scalar output.

const keyMagic = 0xDF01

// MarshaledSize returns the exact wire size in bytes of a key for the given
// tree depth and lane count; the communication cost model uses this.
func MarshaledSize(bits, lanes int) int {
	return 24 + 17*bits + 4*lanes
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (k *Key) MarshalBinary() ([]byte, error) {
	if k.Bits <= 0 || k.Bits > MaxBits {
		return nil, fmt.Errorf("dpf: marshal: bad bits %d", k.Bits)
	}
	if len(k.CWs) != k.Bits {
		return nil, fmt.Errorf("dpf: marshal: %d correction words for %d bits", len(k.CWs), k.Bits)
	}
	if len(k.Final) != k.Lanes {
		return nil, fmt.Errorf("dpf: marshal: %d final lanes, want %d", len(k.Final), k.Lanes)
	}
	out := make([]byte, 0, MarshaledSize(k.Bits, k.Lanes))
	out = binary.LittleEndian.AppendUint16(out, keyMagic)
	out = append(out, byte(k.Bits), k.Party)
	out = binary.LittleEndian.AppendUint32(out, uint32(k.Lanes))
	out = append(out, k.Root[:]...)
	for _, cw := range k.CWs {
		out = append(out, cw.S[:]...)
		out = append(out, cw.TL|cw.TR<<1)
	}
	for _, f := range k.Final {
		out = binary.LittleEndian.AppendUint32(out, f)
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (k *Key) UnmarshalBinary(data []byte) error {
	if len(data) < 24 {
		return errors.New("dpf: unmarshal: short buffer")
	}
	if binary.LittleEndian.Uint16(data) != keyMagic {
		return errors.New("dpf: unmarshal: bad magic")
	}
	bits := int(data[2])
	party := data[3]
	lanes := int(binary.LittleEndian.Uint32(data[4:]))
	if bits <= 0 || bits > MaxBits {
		return fmt.Errorf("dpf: unmarshal: bad bits %d", bits)
	}
	if party > 1 {
		return fmt.Errorf("dpf: unmarshal: bad party %d", party)
	}
	if lanes <= 0 || lanes > 1<<20 {
		return fmt.Errorf("dpf: unmarshal: bad lanes %d", lanes)
	}
	want := MarshaledSize(bits, lanes)
	if len(data) != want {
		return fmt.Errorf("dpf: unmarshal: size %d, want %d", len(data), want)
	}
	k.Bits, k.Party, k.Lanes = bits, party, lanes
	off := 8
	copy(k.Root[:], data[off:off+16])
	off += 16
	// Reuse the receiver's slices when they are big enough, so pooled keys
	// (engine.Replica's steady-state Answer path) unmarshal without
	// allocating.
	if cap(k.CWs) >= bits {
		k.CWs = k.CWs[:bits]
	} else {
		k.CWs = make([]CW, bits)
	}
	for i := range k.CWs {
		copy(k.CWs[i].S[:], data[off:off+16])
		tb := data[off+16]
		if tb > 3 {
			return fmt.Errorf("dpf: unmarshal: bad control bits %#x at level %d", tb, i)
		}
		k.CWs[i].TL = tb & 1
		k.CWs[i].TR = tb >> 1
		off += 17
	}
	if cap(k.Final) >= lanes {
		k.Final = k.Final[:lanes]
	} else {
		k.Final = make([]uint32, lanes)
	}
	for i := range k.Final {
		k.Final[i] = binary.LittleEndian.Uint32(data[off:])
		off += 4
	}
	return nil
}
