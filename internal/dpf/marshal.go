package dpf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire formats (little endian). The low byte of the magic is the format
// version; unmarshal dispatches on it, so old clients' keys keep working.
//
// v1 (magic 0xDF01) — full-depth keys (Early = 0):
//
//	magic   uint16 = 0xDF01
//	bits    uint8
//	party   uint8
//	lanes   uint32
//	root    [16]byte
//	cw      bits × { seed [16]byte; tbits uint8 (bit0=TL, bit1=TR) }
//	final   lanes × uint32
//
// v2 (magic 0xDF02) — early-terminated keys (§3.1): the header gains the
// termination depth, the walk carries bits-early correction words, and the
// final correction spans the whole terminal group:
//
//	magic   uint16 = 0xDF02
//	bits    uint8
//	party   uint8
//	early   uint8  (1..MaxEarlyBits)
//	lanes   uint32
//	root    [16]byte
//	cw      (bits-early) × { seed [16]byte; tbits uint8 }
//	final   (lanes<<early) × uint32
//
// A v1 scalar key is 24 + 17·log2(L) + 4 bytes — the O(λ·log L)
// communication the paper's DPF achieves (§3.1): ~364 bytes for a 1M-entry
// table. The default v2 scalar key is smaller still (25 + 17·(log2(L)-2) +
// 16): two correction words shorter, twelve final bytes wider.

const (
	keyMagicV1 = 0xDF01
	keyMagicV2 = 0xDF02
)

// WireVersion reports the key wire format version of marshaled data: 1 or
// 2, or 0 if the buffer is too short to carry a magic or carries an
// unknown one. Engine validation errors use it to tell a client exactly
// which format it sent.
func WireVersion(data []byte) int {
	if len(data) < 2 {
		return 0
	}
	switch binary.LittleEndian.Uint16(data) {
	case keyMagicV1:
		return 1
	case keyMagicV2:
		return 2
	}
	return 0
}

// MarshaledSize returns the exact wire size in bytes of a full-depth (v1)
// key for the given tree depth and lane count.
func MarshaledSize(bits, lanes int) int {
	return 24 + 17*bits + 4*lanes
}

// MarshaledSizeEarly returns the exact wire size in bytes of a key with
// the given early-termination depth; early = 0 is the v1 size. The
// communication cost model uses this.
func MarshaledSizeEarly(bits, lanes, early int) int {
	if early == 0 {
		return MarshaledSize(bits, lanes)
	}
	return 25 + 17*(bits-early) + 4*(lanes<<uint(early))
}

// MarshalBinary implements encoding.BinaryMarshaler. Full-depth keys emit
// wire format v1 (so pre-early-termination consumers keep working);
// early-terminated keys emit v2.
func (k *Key) MarshalBinary() ([]byte, error) {
	if k.Bits <= 0 || k.Bits > MaxBits {
		return nil, fmt.Errorf("dpf: marshal: bad bits %d", k.Bits)
	}
	if k.Early < 0 || k.Early > MaxEarlyBits || k.Early >= k.Bits {
		return nil, fmt.Errorf("dpf: marshal: bad early-termination depth %d for %d bits", k.Early, k.Bits)
	}
	if k.Early > 0 && k.GroupLanes() > 4 {
		return nil, fmt.Errorf("dpf: marshal: terminal group of %d lanes exceeds the 4 a seed holds", k.GroupLanes())
	}
	if len(k.CWs) != k.TreeDepth() {
		return nil, fmt.Errorf("dpf: marshal: %d correction words for depth %d", len(k.CWs), k.TreeDepth())
	}
	if len(k.Final) != k.GroupLanes() {
		return nil, fmt.Errorf("dpf: marshal: %d final lanes, want %d", len(k.Final), k.GroupLanes())
	}
	out := make([]byte, 0, MarshaledSizeEarly(k.Bits, k.Lanes, k.Early))
	if k.Early == 0 {
		out = binary.LittleEndian.AppendUint16(out, keyMagicV1)
		out = append(out, byte(k.Bits), k.Party)
	} else {
		out = binary.LittleEndian.AppendUint16(out, keyMagicV2)
		out = append(out, byte(k.Bits), k.Party, byte(k.Early))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(k.Lanes))
	out = append(out, k.Root[:]...)
	for _, cw := range k.CWs {
		out = append(out, cw.S[:]...)
		out = append(out, cw.TL|cw.TR<<1)
	}
	for _, f := range k.Final {
		out = binary.LittleEndian.AppendUint32(out, f)
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Both wire
// versions unmarshal; v1 keys evaluate full-depth (Early = 0).
func (k *Key) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return errors.New("dpf: unmarshal: short buffer")
	}
	var early, off int
	switch binary.LittleEndian.Uint16(data) {
	case keyMagicV1:
		if len(data) < 24 {
			return errors.New("dpf: unmarshal: short buffer")
		}
		early, off = 0, 4
	case keyMagicV2:
		if len(data) < 25 {
			return errors.New("dpf: unmarshal: short buffer")
		}
		early, off = int(data[4]), 5
		if early < 1 || early > MaxEarlyBits {
			return fmt.Errorf("dpf: unmarshal: bad early-termination depth %d", early)
		}
	default:
		return errors.New("dpf: unmarshal: bad magic")
	}
	bits := int(data[2])
	party := data[3]
	lanes := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if bits <= 0 || bits > MaxBits {
		return fmt.Errorf("dpf: unmarshal: bad bits %d", bits)
	}
	if early >= bits {
		return fmt.Errorf("dpf: unmarshal: early-termination depth %d leaves no tree levels for %d bits", early, bits)
	}
	if party > 1 {
		return fmt.Errorf("dpf: unmarshal: bad party %d", party)
	}
	if lanes <= 0 || lanes > 1<<20 {
		return fmt.Errorf("dpf: unmarshal: bad lanes %d", lanes)
	}
	groupLanes := lanes << uint(early)
	if early > 0 && groupLanes > 4 {
		return fmt.Errorf("dpf: unmarshal: terminal group of %d lanes exceeds the 4 a seed holds", groupLanes)
	}
	want := MarshaledSizeEarly(bits, lanes, early)
	if len(data) != want {
		return fmt.Errorf("dpf: unmarshal: size %d, want %d", len(data), want)
	}
	k.Bits, k.Party, k.Lanes, k.Early = bits, party, lanes, early
	copy(k.Root[:], data[off:off+16])
	off += 16
	depth := bits - early
	// Reuse the receiver's slices when they are big enough, so pooled keys
	// (engine.Replica's steady-state Answer path) unmarshal without
	// allocating.
	if cap(k.CWs) >= depth {
		k.CWs = k.CWs[:depth]
	} else {
		k.CWs = make([]CW, depth)
	}
	for i := range k.CWs {
		copy(k.CWs[i].S[:], data[off:off+16])
		tb := data[off+16]
		if tb > 3 {
			return fmt.Errorf("dpf: unmarshal: bad control bits %#x at level %d", tb, i)
		}
		k.CWs[i].TL = tb & 1
		k.CWs[i].TR = tb >> 1
		off += 17
	}
	if cap(k.Final) >= groupLanes {
		k.Final = k.Final[:groupLanes]
	} else {
		k.Final = make([]uint32, groupLanes)
	}
	for i := range k.Final {
		k.Final[i] = binary.LittleEndian.Uint32(data[off:])
		off += 4
	}
	return nil
}
