package dpf

import (
	"encoding/binary"
	"math/bits"
)

// SipPRG implements the GGM PRG with SipHash-2-4 (Aumasson–Bernstein), the
// fastest PRF the paper evaluates (Table 5: ~7.7x AES-128 throughput on the
// GPU). SipHash is a 64-bit-output keyed PRF designed for short inputs; it
// is *not* as widely analyzed as AES or ChaCha20 for this use — the paper
// flags the same security/performance trade-off (§3.2.6), and so do we:
// prefer aes128 or chacha20 unless the threat model tolerates it.
//
// The node seed is the 128-bit SipHash key; the four 64-bit child words are
// SipHash(key, 0..3).
type SipPRG struct{}

// NewSipPRG returns the SipHash-2-4 PRG.
func NewSipPRG() *SipPRG { return &SipPRG{} }

// Name implements PRG.
func (*SipPRG) Name() string { return "siphash" }

// Expand implements PRG.
func (*SipPRG) Expand(s Seed) (left, right Seed, tL, tR uint8) {
	k0 := leU64(s[0:8])
	k1 := leU64(s[8:16])
	putU64(left[0:8], siphash24(k0, k1, 0))
	putU64(left[8:16], siphash24(k0, k1, 1))
	putU64(right[0:8], siphash24(k0, k1, 2))
	putU64(right[8:16], siphash24(k0, k1, 3))
	tL, tR = clearControlBits(&left, &right)
	return
}

// ExpandBatch implements PRG: the key words are decoded once per node and
// the four child halves derived back to back (SipHash is allocation-free
// already; batching removes the per-call Seed copies and bounds checks).
func (*SipPRG) ExpandBatch(seeds []Seed, left, right []Seed, tL, tR []uint8) {
	for i := range seeds {
		k0 := leU64(seeds[i][0:8])
		k1 := leU64(seeds[i][8:16])
		putU64(left[i][0:8], siphash24(k0, k1, 0))
		putU64(left[i][8:16], siphash24(k0, k1, 1))
		putU64(right[i][0:8], siphash24(k0, k1, 2))
		putU64(right[i][8:16], siphash24(k0, k1, 3))
		tL[i], tR[i] = clearControlBits(&left[i], &right[i])
	}
}

// Fill implements PRG.
func (*SipPRG) Fill(s Seed, dst []byte) {
	k0 := leU64(s[0:8])
	k1 := leU64(s[8:16])
	ctr := uint64(4) // 0..3 feed Expand
	var w [8]byte
	for off := 0; off < len(dst); off += 8 {
		putU64(w[:], siphash24(k0, k1, ctr))
		ctr++
		copy(dst[off:], w[:])
	}
}

// GPUCyclesPerBlock implements PRG (Table 5 ratio vs AES: ~7.7x faster; one
// "block" here is two 64-bit SipHash outputs).
func (*SipPRG) GPUCyclesPerBlock() float64 { return 324 }

// CPUCyclesPerBlock implements PRG.
func (*SipPRG) CPUCyclesPerBlock() float64 { return 130 }

// siphash24 computes SipHash-2-4 of an 8-byte little-endian message m under
// key (k0, k1).
func siphash24(k0, k1, m uint64) uint64 {
	v0 := k0 ^ 0x736f6d6570736575
	v1 := k1 ^ 0x646f72616e646f6d
	v2 := k0 ^ 0x6c7967656e657261
	v3 := k1 ^ 0x7465646279746573

	// Message block (8 bytes) followed by the length byte b = 8<<56.
	b := uint64(8) << 56

	v3 ^= m
	sipRound(&v0, &v1, &v2, &v3)
	sipRound(&v0, &v1, &v2, &v3)
	v0 ^= m

	v3 ^= b
	sipRound(&v0, &v1, &v2, &v3)
	sipRound(&v0, &v1, &v2, &v3)
	v0 ^= b

	v2 ^= 0xff
	sipRound(&v0, &v1, &v2, &v3)
	sipRound(&v0, &v1, &v2, &v3)
	sipRound(&v0, &v1, &v2, &v3)
	sipRound(&v0, &v1, &v2, &v3)
	return v0 ^ v1 ^ v2 ^ v3
}

func sipRound(v0, v1, v2, v3 *uint64) {
	*v0 += *v1
	*v1 = bits.RotateLeft64(*v1, 13)
	*v1 ^= *v0
	*v0 = bits.RotateLeft64(*v0, 32)
	*v2 += *v3
	*v3 = bits.RotateLeft64(*v3, 16)
	*v3 ^= *v2
	*v0 += *v3
	*v3 = bits.RotateLeft64(*v3, 21)
	*v3 ^= *v0
	*v2 += *v1
	*v1 = bits.RotateLeft64(*v1, 17)
	*v1 ^= *v2
	*v2 = bits.RotateLeft64(*v2, 32)
}

func leU64(b []byte) uint64 {
	return binary.LittleEndian.Uint64(b)
}
