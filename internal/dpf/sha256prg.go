package dpf

import (
	"crypto/hmac"
	"crypto/sha256"
	"hash"
)

// SHA256PRG implements the GGM PRG with HMAC-SHA-256 keyed by the node seed,
// the hash-function row of Table 5. HMAC of a one-block message costs four
// SHA-256 compressions, which makes it the slowest PRF in the suite on both
// CPU and GPU — it is included for completeness and for deployments that
// standardize on hash-based PRFs.
type SHA256PRG struct{}

// NewSHA256PRG returns the HMAC-SHA-256 PRG.
func NewSHA256PRG() *SHA256PRG { return &SHA256PRG{} }

// Name implements PRG.
func (*SHA256PRG) Name() string { return "sha256" }

// Expand implements PRG.
func (*SHA256PRG) Expand(s Seed) (left, right Seed, tL, tR uint8) {
	mac := hmac.New(sha256.New, s[:])
	mac.Write([]byte{0})
	sum := mac.Sum(nil)
	copy(left[:], sum[0:16])
	copy(right[:], sum[16:32])
	tL, tR = clearControlBits(&left, &right)
	return
}

// ExpandBatch implements PRG. hmac.New allocates two fresh digests per
// node; here a single SHA-256 state, the key pads and the sum buffer are
// hoisted out of the loop and the HMAC composition H(opad‖H(ipad‖msg)) is
// applied manually, so the batch costs a handful of allocations total
// instead of several per node.
func (*SHA256PRG) ExpandBatch(seeds []Seed, left, right []Seed, tL, tR []uint8) {
	d := sha256.New()
	var pad [64]byte
	var msg [1]byte
	sum := make([]byte, 32)
	for i := range seeds {
		sum = hmacSeedSum(d, &pad, &seeds[i], msg[:], sum[:0])
		copy(left[i][:], sum[0:16])
		copy(right[i][:], sum[16:32])
		tL[i], tR[i] = clearControlBits(&left[i], &right[i])
	}
}

// hmacSeedSum computes HMAC-SHA-256(seed, msg) into out (cap ≥ 32),
// reusing the caller's digest and pad scratch. Bit-identical to
// hmac.New(sha256.New, seed[:]) — the 16-byte key is zero-padded to the
// 64-byte block per RFC 2104 — which the PRG equivalence tests pin.
func hmacSeedSum(d hash.Hash, pad *[64]byte, s *Seed, msg, out []byte) []byte {
	for i := 0; i < 16; i++ {
		pad[i] = s[i] ^ 0x36
	}
	for i := 16; i < 64; i++ {
		pad[i] = 0x36
	}
	d.Reset()
	d.Write(pad[:])
	d.Write(msg)
	inner := d.Sum(out[:0])
	for i := 0; i < 16; i++ {
		pad[i] = s[i] ^ 0x5c
	}
	for i := 16; i < 64; i++ {
		pad[i] = 0x5c
	}
	d.Reset()
	d.Write(pad[:])
	d.Write(inner)
	return d.Sum(inner[:0])
}

// Fill implements PRG.
func (*SHA256PRG) Fill(s Seed, dst []byte) {
	ctr := byte(1) // counter 0 feeds Expand
	for off := 0; off < len(dst); off += 32 {
		mac := hmac.New(sha256.New, s[:])
		mac.Write([]byte{ctr})
		ctr++
		sum := mac.Sum(nil)
		copy(dst[off:], sum)
	}
}

// GPUCyclesPerBlock implements PRG (Table 5: slightly slower than AES-128).
func (*SHA256PRG) GPUCyclesPerBlock() float64 { return 2620 }

// CPUCyclesPerBlock implements PRG.
func (*SHA256PRG) CPUCyclesPerBlock() float64 { return 520 }
