package dpf

import (
	"crypto/hmac"
	"crypto/sha256"
)

// SHA256PRG implements the GGM PRG with HMAC-SHA-256 keyed by the node seed,
// the hash-function row of Table 5. HMAC of a one-block message costs four
// SHA-256 compressions, which makes it the slowest PRF in the suite on both
// CPU and GPU — it is included for completeness and for deployments that
// standardize on hash-based PRFs.
type SHA256PRG struct{}

// NewSHA256PRG returns the HMAC-SHA-256 PRG.
func NewSHA256PRG() *SHA256PRG { return &SHA256PRG{} }

// Name implements PRG.
func (*SHA256PRG) Name() string { return "sha256" }

// Expand implements PRG.
func (*SHA256PRG) Expand(s Seed) (left, right Seed, tL, tR uint8) {
	mac := hmac.New(sha256.New, s[:])
	mac.Write([]byte{0})
	sum := mac.Sum(nil)
	copy(left[:], sum[0:16])
	copy(right[:], sum[16:32])
	tL, tR = clearControlBits(&left, &right)
	return
}

// Fill implements PRG.
func (*SHA256PRG) Fill(s Seed, dst []byte) {
	ctr := byte(1) // counter 0 feeds Expand
	for off := 0; off < len(dst); off += 32 {
		mac := hmac.New(sha256.New, s[:])
		mac.Write([]byte{ctr})
		ctr++
		sum := mac.Sum(nil)
		copy(dst[off:], sum)
	}
}

// GPUCyclesPerBlock implements PRG (Table 5: slightly slower than AES-128).
func (*SHA256PRG) GPUCyclesPerBlock() float64 { return 2620 }

// CPUCyclesPerBlock implements PRG.
func (*SHA256PRG) CPUCyclesPerBlock() float64 { return 520 }
