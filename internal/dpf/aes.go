package dpf

import (
	"crypto/aes"
	"encoding/binary"
)

// AESPRG implements the GGM PRG with AES-128 in a fixed-key-per-node counter
// construction: the node seed is the AES key and the children are
// AES_s(0) and AES_s(1). This matches the CPU baseline's PRF (Google's DPF
// library uses AES-128 with AES-NI) and the paper's default GPU PRF.
//
// GGM rekeys AES at every node, so the key schedule is on the hot path; that
// is exactly why AES is comparatively slow on GPUs (no AES hardware) and why
// the paper explores other PRFs (§3.2.6).
type AESPRG struct{}

// NewAESPRG returns the AES-128 PRG.
func NewAESPRG() *AESPRG { return &AESPRG{} }

// Name implements PRG.
func (*AESPRG) Name() string { return "aes128" }

// Expand implements PRG.
func (*AESPRG) Expand(s Seed) (left, right Seed, tL, tR uint8) {
	c, err := aes.NewCipher(s[:])
	if err != nil {
		// aes.NewCipher only fails on bad key length; a Seed is 16 bytes.
		panic("dpf: aes key setup: " + err.Error())
	}
	var in Seed
	c.Encrypt(left[:], in[:])
	in[0] = 1
	c.Encrypt(right[:], in[:])
	tL, tR = clearControlBits(&left, &right)
	return
}

// ExpandBatch implements PRG. Instead of aes.NewCipher per node (a heap
// allocation plus cipher.Block indirection, the GGM-rekey cost §3.2.6 pins
// as the bottleneck), the key schedule is expanded into stack scratch that
// is re-keyed for every seed — the whole frontier advances with zero
// allocations.
func (*AESPRG) ExpandBatch(seeds []Seed, left, right []Seed, tL, tR []uint8) {
	if aesniOK {
		// Two nodes per asm call: the pair-interleaved schedules hide the
		// AESKEYGENASSIST ladder's serial latency (the same pairing the
		// pure-Go expand2 path below does in software).
		i := 0
		for ; i+1 < len(seeds); i += 2 {
			aesniExpandPair2(&seeds[i], &seeds[i+1],
				&left[i], &right[i], &left[i+1], &right[i+1])
			tL[i], tR[i] = clearControlBits(&left[i], &right[i])
			tL[i+1], tR[i+1] = clearControlBits(&left[i+1], &right[i+1])
		}
		if i < len(seeds) {
			aesniExpandPair(&seeds[i], &left[i], &right[i])
			tL[i], tR[i] = clearControlBits(&left[i], &right[i])
		}
		return
	}
	var rkA, rkB aesRoundKeys
	i := 0
	for ; i+1 < len(seeds); i += 2 {
		expand2(&rkA, &rkB, &seeds[i], &seeds[i+1])
		rkA.encryptPair(&left[i], &right[i])
		rkB.encryptPair(&left[i+1], &right[i+1])
		tL[i], tR[i] = clearControlBits(&left[i], &right[i])
		tL[i+1], tR[i+1] = clearControlBits(&left[i+1], &right[i+1])
	}
	if i < len(seeds) {
		rkA.expand(&seeds[i])
		rkA.encryptPair(&left[i], &right[i])
		tL[i], tR[i] = clearControlBits(&left[i], &right[i])
	}
}

// stepBothBatch is the fused frontier advance StepBothBatch dispatches to
// for AES: children are encrypted directly into next (interleaved leaf
// order) and the correction word is applied in place — no intermediate
// scratch buffers at all.
func (*AESPRG) stepBothBatch(seeds []Seed, ts []uint8, cw CW, next []Seed, nextT []uint8) {
	correct := func(i int) {
		l, r := &next[2*i], &next[2*i+1]
		lt := l[0] & 1
		rt := r[0] & 1
		l[0] &^= 1
		r[0] &^= 1
		if ts[i] == 1 {
			xorSeedInto(l, &cw.S)
			xorSeedInto(r, &cw.S)
			lt ^= cw.TL
			rt ^= cw.TR
		}
		nextT[2*i], nextT[2*i+1] = lt, rt
	}
	if aesniOK {
		i := 0
		for ; i+1 < len(seeds); i += 2 {
			aesniExpandPair2(&seeds[i], &seeds[i+1],
				&next[2*i], &next[2*i+1], &next[2*i+2], &next[2*i+3])
			correct(i)
			correct(i + 1)
		}
		if i < len(seeds) {
			aesniExpandPair(&seeds[i], &next[2*i], &next[2*i+1])
			correct(i)
		}
		return
	}
	var rkA, rkB aesRoundKeys
	i := 0
	for ; i+1 < len(seeds); i += 2 {
		expand2(&rkA, &rkB, &seeds[i], &seeds[i+1])
		rkA.encryptPair(&next[2*i], &next[2*i+1])
		rkB.encryptPair(&next[2*i+2], &next[2*i+3])
		correct(i)
		correct(i + 1)
	}
	if i < len(seeds) {
		rkA.expand(&seeds[i])
		rkA.encryptPair(&next[2*i], &next[2*i+1])
		correct(i)
	}
}

// stepLeafBatch is the fused final step StepLeafBatch dispatches to for
// AES: each pipeline call expands a pair of terminal-frontier parents into
// a stack buffer whose four children are corrected and converted straight
// into the output lanes — the child seeds never touch a frontier or batch
// scratch buffer, so the tree's widest level costs only the AES calls and
// the conversion arithmetic.
func (*AESPRG) stepLeafBatch(k *Key, seeds []Seed, ts []uint8, cw CW, dst []uint32) {
	gl := k.GroupLanes()
	var buf [4]Seed
	correctConvert := func(i int, l, r *Seed) {
		lt := l[0] & 1
		rt := r[0] & 1
		l[0] &^= 1
		r[0] &^= 1
		if ts[i] == 1 {
			xorSeedInto(l, &cw.S)
			xorSeedInto(r, &cw.S)
			lt ^= cw.TL
			rt ^= cw.TR
		}
		convertLeafGroup(k, l, lt, dst[2*i*gl:(2*i+1)*gl])
		convertLeafGroup(k, r, rt, dst[(2*i+1)*gl:(2*i+2)*gl])
	}
	if aesniOK {
		i := 0
		for ; i+1 < len(seeds); i += 2 {
			aesniExpandPair2(&seeds[i], &seeds[i+1], &buf[0], &buf[1], &buf[2], &buf[3])
			correctConvert(i, &buf[0], &buf[1])
			correctConvert(i+1, &buf[2], &buf[3])
		}
		if i < len(seeds) {
			aesniExpandPair(&seeds[i], &buf[0], &buf[1])
			correctConvert(i, &buf[0], &buf[1])
		}
		return
	}
	var rkA, rkB aesRoundKeys
	i := 0
	for ; i+1 < len(seeds); i += 2 {
		expand2(&rkA, &rkB, &seeds[i], &seeds[i+1])
		rkA.encryptPair(&buf[0], &buf[1])
		rkB.encryptPair(&buf[2], &buf[3])
		correctConvert(i, &buf[0], &buf[1])
		correctConvert(i+1, &buf[2], &buf[3])
	}
	if i < len(seeds) {
		rkA.expand(&seeds[i])
		rkA.encryptPair(&buf[0], &buf[1])
		correctConvert(i, &buf[0], &buf[1])
	}
}

// Fill implements PRG (counter mode starting at block 2 so it never collides
// with the child blocks).
func (*AESPRG) Fill(s Seed, dst []byte) {
	c, err := aes.NewCipher(s[:])
	if err != nil {
		panic("dpf: aes key setup: " + err.Error())
	}
	var in, out Seed
	ctr := uint64(2)
	for off := 0; off < len(dst); off += 16 {
		putU64(in[:8], ctr)
		ctr++
		c.Encrypt(out[:], in[:])
		copy(dst[off:], out[:])
	}
}

// GPUCyclesPerBlock implements PRG. Calibrated so the V100 model reproduces
// the paper's Table 4 AES-128 throughput (≈1.4k QPS on a 1M-entry table).
// Software table-free AES on a GPU thread costs thousands of cycles per
// block; there is no AES-NI equivalent on the SMs.
func (*AESPRG) GPUCyclesPerBlock() float64 { return 2500 }

// CPUCyclesPerBlock implements PRG. With AES-NI the block cipher itself is
// ~20 cycles, but GGM re-keys per node: the key schedule plus tree
// bookkeeping dominates. Calibrated to Table 4's Xeon baseline: 638 ms
// single-threaded on a 1M-entry table = 1.34e9 cycles over ~2.1e6 blocks,
// i.e. ~640 cycles per 128-bit block.
func (*AESPRG) CPUCyclesPerBlock() float64 { return 640 }

func putU64(b []byte, v uint64) {
	binary.LittleEndian.PutUint64(b, v)
}
