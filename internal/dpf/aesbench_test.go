package dpf

import "testing"

// BenchmarkScalarExpand measures the scalar AES Expand — one
// aes.NewCipher (heap allocation + key schedule) per call, the GGM rekey
// cost the paper pins as the PRF bottleneck (§3.2.6).
func BenchmarkScalarExpand(b *testing.B) {
	prg := NewAESPRG()
	var s Seed
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, _, _, _ := prg.Expand(s)
		s = l
	}
}

// BenchmarkBatchExpand128 measures a 128-wide ExpandBatch (one K-wide
// frontier advance): AES-NI schedule+encrypt per node on amd64, pure-Go
// T-tables elsewhere, zero allocations either way.
func BenchmarkBatchExpand128(b *testing.B) {
	prg := NewAESPRG()
	seeds := make([]Seed, 128)
	left := make([]Seed, 128)
	right := make([]Seed, 128)
	tl := make([]uint8, 128)
	tr := make([]uint8, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prg.ExpandBatch(seeds, left, right, tl, tr)
		copy(seeds, left)
	}
}
