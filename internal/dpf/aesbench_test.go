package dpf

import "testing"

// BenchmarkScalarExpand measures the scalar AES Expand — one
// aes.NewCipher (heap allocation + key schedule) per call, the GGM rekey
// cost the paper pins as the PRF bottleneck (§3.2.6).
func BenchmarkScalarExpand(b *testing.B) {
	prg := NewAESPRG()
	var s Seed
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, _, _, _ := prg.Expand(s)
		s = l
	}
}

// BenchmarkBatchExpand128 measures a 128-wide ExpandBatch (one K-wide
// frontier advance): the pair-interleaved AES-NI schedule+encrypt pipeline
// on amd64 (two nodes per asm call hiding the key-schedule latency),
// pure-Go T-tables elsewhere, zero allocations either way.
func BenchmarkBatchExpand128(b *testing.B) {
	prg := NewAESPRG()
	seeds := make([]Seed, 128)
	left := make([]Seed, 128)
	right := make([]Seed, 128)
	tl := make([]uint8, 128)
	tr := make([]uint8, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prg.ExpandBatch(seeds, left, right, tl, tr)
		copy(seeds, left)
	}
}

// BenchmarkStepLeafBatch128 measures the fused final step on a 128-wide
// frontier against the two-pass pipeline it replaces (StepBothBatch into a
// terminal buffer, LeafValuesInto over it): same arithmetic, no frontier
// round trip.
func BenchmarkStepLeafBatch128(b *testing.B) {
	prg := NewAESPRG()
	k0, _, err := GenEarly(prg, 5, 10, []uint32{1}, DefaultEarlyBits, zeroReader{})
	if err != nil {
		b.Fatal(err)
	}
	seeds := make([]Seed, 128)
	ts := make([]uint8, 128)
	var sc BatchScratch
	dst := make([]uint32, 2*128*k0.GroupLanes())
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			StepLeafBatch(prg, &k0, seeds, ts, dst, &sc)
		}
	})
	term := make([]Seed, 256)
	termT := make([]uint8, 256)
	b.Run("unfused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			StepBothBatch(prg, seeds, ts, k0.CWs[k0.TreeDepth()-1], term, termT, &sc)
			LeafValuesInto(&k0, term, termT, dst)
		}
	})
}

// zeroReader is a deterministic randomness source for benchmark key
// generation.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(i)
	}
	return len(p), nil
}
