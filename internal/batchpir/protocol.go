package batchpir

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand/v2"

	"gpudpf/internal/engine"
	"gpudpf/internal/gpu"
	"gpudpf/internal/pir"
)

// Server is one party's PBR server: a thin adapter over one engine.Replica
// per bin. Bins are independent sub-tables, so a round's per-bin queries
// are evaluated concurrently on the host's bounded worker pool instead of
// bin-by-bin — the batch-parallel serving loop the paper's throughput
// numbers assume.
type Server struct {
	cfg  Config
	bins []*engine.Replica
}

// NewServer splits the table per cfg and builds per-bin engine replicas for
// the given party.
func NewServer(party int, tab *pir.Table, cfg Config, opts ...pir.ServerOption) (*Server, error) {
	binTabs, err := SplitTable(cfg, tab)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, bins: make([]*engine.Replica, len(binTabs))}
	for b, bt := range binTabs {
		s.bins[b], err = pir.NewReplica(party, bt, opts...)
		if err != nil {
			return nil, fmt.Errorf("batchpir: bin %d: %w", b, err)
		}
	}
	return s, nil
}

// Update overwrites one row's content in place (an embedding-table value
// update without insertion/deletion — the paper's transparent update path,
// §4.2 "Changes to Embedding Table"). Clients are unaffected: indexing and
// key shapes do not change. The write is serialized against in-flight
// Answers on the affected bin.
func (s *Server) Update(row uint64, vals []uint32) error {
	if row >= uint64(s.cfg.NumRows) {
		return fmt.Errorf("batchpir: update row %d outside table of %d rows", row, s.cfg.NumRows)
	}
	bin, off := s.cfg.Bin(row)
	if err := s.bins[bin].Update(off, vals); err != nil {
		return fmt.Errorf("batchpir: %w", err)
	}
	return nil
}

// Answer evaluates one key per bin and returns one share row per bin.
func (s *Server) Answer(keys [][]byte) ([][]uint32, error) {
	return s.AnswerContext(context.Background(), keys)
}

// AnswerContext is Answer with cancellation: bins are fanned across the
// bounded host pool, and ctx stops unstarted bins.
func (s *Server) AnswerContext(ctx context.Context, keys [][]byte) ([][]uint32, error) {
	if len(keys) != len(s.bins) {
		return nil, fmt.Errorf("batchpir: got %d keys for %d bins", len(keys), len(s.bins))
	}
	out := make([][]uint32, len(keys))
	errs := make([]error, len(keys))
	gpu.ParallelFor(len(s.bins), func(b int) {
		ans, err := s.bins[b].Answer(ctx, [][]byte{keys[b]})
		if err != nil {
			errs[b] = err
			return
		}
		out[b] = ans[0]
	})
	for b, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("batchpir: bin %d: %w", b, err)
		}
	}
	return out, nil
}

// Client plans PBR rounds and generates per-bin keys.
type Client struct {
	cfg Config
	pc  *pir.Client
	rng *rand.Rand
}

// rngReader adapts the planning RNG into the io.Reader key generation
// consumes, so one seeded stream drives both dummy offsets and keys in
// reproducible tests.
type rngReader struct{ rng *rand.Rand }

func (r rngReader) Read(p []byte) (n int, err error) {
	for len(p) >= 8 {
		binary.LittleEndian.PutUint64(p, r.rng.Uint64())
		p = p[8:]
		n += 8
	}
	if len(p) > 0 {
		v := r.rng.Uint64()
		for i := range p {
			p[i] = byte(v >> (8 * i))
		}
		n += len(p)
	}
	return n, nil
}

// NewClient builds a PBR client. rng drives dummy-offset selection and key
// generation (pass a seeded source for reproducible tests; nil draws a
// random seed and keeps crypto/rand for key generation).
func NewClient(prgName string, cfg Config, rng *rand.Rand) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var keyRng io.Reader
	if rng == nil {
		rng = rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
	} else {
		keyRng = rngReader{rng}
	}
	pc, err := pir.NewClient(prgName, cfg.BinSize, keyRng)
	if err != nil {
		return nil, err
	}
	return &Client{cfg: cfg, pc: pc, rng: rng}, nil
}

// KeysForOffsets generates one key pair per bin for externally planned
// offsets (e.g. a codesign.Layout plan that routed rows across hot and full
// tables). len(offsets) must equal the bin count.
func (c *Client) KeysForOffsets(offsets []uint64) ([][]byte, [][]byte, error) {
	if len(offsets) != c.cfg.NumBins() {
		return nil, nil, fmt.Errorf("batchpir: %d offsets for %d bins", len(offsets), c.cfg.NumBins())
	}
	keys0 := make([][]byte, len(offsets))
	keys1 := make([][]byte, len(offsets))
	var err error
	for b, off := range offsets {
		keys0[b], keys1[b], err = c.pc.Query(off)
		if err != nil {
			return nil, nil, err
		}
	}
	return keys0, keys1, nil
}

// Queries plans the wanted indices and generates one key pair per bin.
func (c *Client) Queries(indices []uint64) (Plan, [][]byte, [][]byte, error) {
	plan, err := BuildPlan(c.cfg, indices, c.rng)
	if err != nil {
		return Plan{}, nil, nil, err
	}
	keys0 := make([][]byte, len(plan.Offsets))
	keys1 := make([][]byte, len(plan.Offsets))
	for b, off := range plan.Offsets {
		keys0[b], keys1[b], err = c.pc.Query(off)
		if err != nil {
			return Plan{}, nil, nil, err
		}
	}
	return plan, keys0, keys1, nil
}

// Decode reconstructs the retrieved rows from the two servers' per-bin
// shares, keyed by original table index. Dummy bins are discarded.
func Decode(plan Plan, shares0, shares1 [][]uint32) (map[uint64][]uint32, error) {
	if len(shares0) != len(plan.Offsets) || len(shares1) != len(plan.Offsets) {
		return nil, fmt.Errorf("batchpir: share count %d/%d does not match %d bins",
			len(shares0), len(shares1), len(plan.Offsets))
	}
	out := make(map[uint64][]uint32)
	for b, served := range plan.Served {
		if served < 0 {
			continue
		}
		row, err := pir.Reconstruct(shares0[b], shares1[b])
		if err != nil {
			return nil, err
		}
		out[uint64(served)] = row
	}
	return out, nil
}

// TwoServer composes a client with both parties' servers (in-process).
type TwoServer struct {
	Client *Client
	S0, S1 *Server
}

// Fetch runs one PBR round: it returns the retrieved rows by index, the
// plan (including drops), and the exact communication cost.
func (ts *TwoServer) Fetch(indices []uint64) (map[uint64][]uint32, Plan, pir.CommStats, error) {
	var stats pir.CommStats
	plan, k0, k1, err := ts.Client.Queries(indices)
	if err != nil {
		return nil, Plan{}, stats, err
	}
	for b := range k0 {
		stats.UpBytes += int64(len(k0[b]) + len(k1[b]))
	}
	a0, err := ts.S0.Answer(k0)
	if err != nil {
		return nil, Plan{}, stats, err
	}
	a1, err := ts.S1.Answer(k1)
	if err != nil {
		return nil, Plan{}, stats, err
	}
	for b := range a0 {
		stats.DownBytes += int64(len(a0[b])+len(a1[b])) * 4
	}
	rows, err := Decode(plan, a0, a1)
	if err != nil {
		return nil, Plan{}, stats, err
	}
	return rows, plan, stats, nil
}
