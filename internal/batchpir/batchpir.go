// Package batchpir implements partial batch retrieval (PBR), the batch-PIR
// scheme the paper adopts from Servan-Schreiber et al. (§4.1): the table is
// segmented into L/I contiguous bins of I entries, and the client issues
// exactly one DPF query per bin — always to every bin, so the server learns
// nothing about which bins matter. A multi-lookup that spreads across bins
// costs one table pass total instead of one pass per lookup; lookups that
// collide in a bin beyond the first are dropped, which is what the ML
// co-design (internal/codesign) trades against model quality.
package batchpir

import (
	"fmt"
	"math"
	"math/rand/v2"

	"gpudpf/internal/dpf"
	"gpudpf/internal/pir"
)

// Config describes a PBR segmentation.
type Config struct {
	// NumRows is the table length L.
	NumRows int
	// BinSize is the entries-per-bin parameter I. Smaller bins mean fewer
	// collisions (fewer drops) but more bins and hence more keys
	// (communication); larger bins mean the opposite — the §4.1 trade-off.
	BinSize int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumRows <= 0 {
		return fmt.Errorf("batchpir: NumRows must be positive, got %d", c.NumRows)
	}
	if c.BinSize <= 0 || c.BinSize > c.NumRows {
		return fmt.Errorf("batchpir: BinSize must be in [1, %d], got %d", c.NumRows, c.BinSize)
	}
	return nil
}

// NumBins is the number of bins ⌈L/I⌉.
func (c Config) NumBins() int { return (c.NumRows + c.BinSize - 1) / c.BinSize }

// Bin returns which bin an index falls into and its offset within the bin.
func (c Config) Bin(index uint64) (bin int, offset uint64) {
	return int(index / uint64(c.BinSize)), index % uint64(c.BinSize)
}

// BinRows is the number of rows bin b actually holds (the last bin may be
// short).
func (c Config) BinRows(b int) int {
	if b == c.NumBins()-1 {
		if r := c.NumRows - b*c.BinSize; r < c.BinSize {
			return r
		}
	}
	return c.BinSize
}

// BinBits is the DPF depth for a bin query.
func (c Config) BinBits() int {
	bits := 1
	for 1<<uint(bits) < c.BinSize {
		bits++
	}
	return bits
}

// KeyBytesPerQuery is the total client→servers key traffic of one PBR
// round: one key per bin per server, in the default early-terminated wire
// format batchpir clients emit.
func (c Config) KeyBytesPerQuery() int64 {
	bits := c.BinBits()
	return int64(c.NumBins()) * int64(dpf.MarshaledSizeEarly(bits, 1, dpf.DefaultEarly(bits, 1))) * 2
}

// DownBytesPerQuery is the servers→client share traffic of one PBR round.
func (c Config) DownBytesPerQuery(lanes int) int64 {
	return int64(c.NumBins()) * int64(lanes) * 4 * 2
}

// Plan is the outcome of assigning a wanted index set to bins.
type Plan struct {
	// Offsets[b] is the in-bin offset queried in bin b (a real want or a
	// dummy — the server cannot tell).
	Offsets []uint64
	// Served maps each bin to the original index it retrieves, or -1 for a
	// dummy query.
	Served []int64
	// Retrieved lists the wanted indices that will be returned.
	Retrieved []uint64
	// Dropped lists wanted indices lost to bin collisions, in input order.
	Dropped []uint64
}

// BuildPlan assigns wanted indices to bins, first come first served: when
// several wants collide in one bin, earlier entries win, so callers should
// order indices by importance. Every bin gets exactly one query; bins
// without a want receive a uniformly random dummy offset, keeping the
// query count and shape independent of the access pattern (the §4.2
// leakage requirement). Duplicate indices beyond the first are dropped.
func BuildPlan(cfg Config, indices []uint64, rng *rand.Rand) (Plan, error) {
	if err := cfg.Validate(); err != nil {
		return Plan{}, err
	}
	nb := cfg.NumBins()
	p := Plan{
		Offsets: make([]uint64, nb),
		Served:  make([]int64, nb),
	}
	for b := range p.Served {
		p.Served[b] = -1
	}
	seen := make(map[uint64]bool, len(indices))
	for _, idx := range indices {
		if idx >= uint64(cfg.NumRows) {
			return Plan{}, fmt.Errorf("batchpir: index %d outside table of %d rows", idx, cfg.NumRows)
		}
		if seen[idx] {
			continue // duplicate lookups are served by the same bin query
		}
		bin, off := cfg.Bin(idx)
		if p.Served[bin] >= 0 {
			p.Dropped = append(p.Dropped, idx)
			continue
		}
		seen[idx] = true
		p.Offsets[bin] = off
		p.Served[bin] = int64(idx)
		p.Retrieved = append(p.Retrieved, idx)
	}
	for b := range p.Offsets {
		if p.Served[b] < 0 {
			p.Offsets[b] = uint64(rng.IntN(cfg.BinRows(b)))
		}
	}
	return p, nil
}

// DropRate is the fraction of distinct wanted indices the plan loses.
func (p Plan) DropRate() float64 {
	total := len(p.Retrieved) + len(p.Dropped)
	if total == 0 {
		return 0
	}
	return float64(len(p.Dropped)) / float64(total)
}

// ExpectedRetrievalRate is the analytic fraction of q uniformly random
// distinct lookups PBR retrieves with the given bin count: occupied bins
// over queries, E = B(1-(1-1/B)^q)/q.
func ExpectedRetrievalRate(q, bins int) float64 {
	if q <= 0 || bins <= 0 {
		return 0
	}
	b := float64(bins)
	return b * (1 - math.Pow(1-1/b, float64(q))) / float64(q)
}

// SplitTable splits the table into per-bin sub-tables (contiguous row
// ranges; a short final bin is zero-padded to BinSize so every bin
// accepts the same key shape). Every bin COPIES its rows out of the
// parent: bins are handed to engine replicas, whose epoch-versioned
// stores adopt the buffer as snapshot backing (and recycle it as copy
// scratch once superseded) — bins aliasing one parent array would let
// two replicas, or both parties' servers over the same table, scribble
// over each other's epoch-0 snapshots. The parent stays the caller's
// own mutable reference copy.
func SplitTable(cfg Config, tab *pir.Table) ([]*pir.Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tab.NumRows != cfg.NumRows {
		return nil, fmt.Errorf("batchpir: table has %d rows, config says %d", tab.NumRows, cfg.NumRows)
	}
	bins := make([]*pir.Table, cfg.NumBins())
	for b := range bins {
		lo := b * cfg.BinSize
		rows := cfg.BinRows(b)
		data := make([]uint32, cfg.BinSize*tab.Lanes)
		copy(data, tab.Data[lo*tab.Lanes:(lo+rows)*tab.Lanes])
		bins[b] = &pir.Table{NumRows: cfg.BinSize, Lanes: tab.Lanes, Data: data}
	}
	return bins, nil
}
