package batchpir

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"gpudpf/internal/pir"
)

func testTable(t *testing.T, rows, lanes int) *pir.Table {
	t.Helper()
	tab, err := pir.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(uint64(rows), 0))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	return tab
}

func TestConfig(t *testing.T) {
	c := Config{NumRows: 100, BinSize: 32}
	if c.NumBins() != 4 {
		t.Errorf("NumBins = %d, want 4", c.NumBins())
	}
	if r := c.BinRows(3); r != 4 {
		t.Errorf("last bin rows = %d, want 4", r)
	}
	if r := c.BinRows(0); r != 32 {
		t.Errorf("first bin rows = %d, want 32", r)
	}
	if c.BinBits() != 5 {
		t.Errorf("BinBits = %d, want 5", c.BinBits())
	}
	bin, off := c.Bin(70)
	if bin != 2 || off != 6 {
		t.Errorf("Bin(70) = (%d,%d), want (2,6)", bin, off)
	}
	for _, bad := range []Config{{0, 1}, {10, 0}, {10, 11}} {
		if bad.Validate() == nil {
			t.Errorf("config %+v should be invalid", bad)
		}
	}
}

func TestBuildPlan(t *testing.T) {
	cfg := Config{NumRows: 64, BinSize: 16} // 4 bins
	rng := rand.New(rand.NewPCG(1, 0))
	// 3, 5 collide in bin 0; 20 in bin 1; 50 in bin 3. Bin 2 gets a dummy.
	plan, err := BuildPlan(cfg, []uint64{3, 5, 20, 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Offsets) != 4 {
		t.Fatalf("plan has %d bins, want 4", len(plan.Offsets))
	}
	if len(plan.Retrieved) != 3 || len(plan.Dropped) != 1 || plan.Dropped[0] != 5 {
		t.Errorf("retrieved %v dropped %v; want first-come-first-served with 5 dropped",
			plan.Retrieved, plan.Dropped)
	}
	if plan.Served[2] != -1 {
		t.Error("bin 2 should be a dummy")
	}
	if got := plan.DropRate(); got != 0.25 {
		t.Errorf("DropRate = %g, want 0.25", got)
	}
	// Duplicates are deduped, not dropped.
	plan2, err := BuildPlan(cfg, []uint64{3, 3, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Retrieved) != 1 || len(plan2.Dropped) != 0 {
		t.Errorf("duplicates should dedupe: %+v", plan2)
	}
	// Out-of-range index errors.
	if _, err := BuildPlan(cfg, []uint64{64}, rng); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// TestPlanShapeIsPatternIndependent pins the leakage invariant: the number
// and domain of queries is the same no matter the access pattern.
func TestPlanShapeIsPatternIndependent(t *testing.T) {
	cfg := Config{NumRows: 128, BinSize: 16}
	rng := rand.New(rand.NewPCG(2, 0))
	patterns := [][]uint64{
		{},
		{0},
		{0, 1, 2, 3, 4, 5, 6, 7}, // all in bin 0
		{0, 16, 32, 48, 64, 80, 96, 112},
	}
	for _, p := range patterns {
		plan, err := BuildPlan(cfg, p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Offsets) != cfg.NumBins() {
			t.Errorf("pattern %v: %d queries, want %d regardless of pattern",
				p, len(plan.Offsets), cfg.NumBins())
		}
		for b, off := range plan.Offsets {
			if off >= uint64(cfg.BinRows(b)) {
				t.Errorf("pattern %v: bin %d offset %d outside bin", p, b, off)
			}
		}
	}
}

// TestEndToEnd: PBR retrieves exactly the planned rows, including when the
// last bin is short and gets padded.
func TestEndToEnd(t *testing.T) {
	for _, shape := range []struct{ rows, binSize int }{{64, 16}, {100, 32}, {50, 50}, {33, 8}} {
		cfg := Config{NumRows: shape.rows, BinSize: shape.binSize}
		tab := testTable(t, shape.rows, 3)
		s0, err := NewServer(0, tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := NewServer(1, tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClient("aes128", cfg, rand.New(rand.NewPCG(3, 0)))
		if err != nil {
			t.Fatal(err)
		}
		ts := &TwoServer{Client: c, S0: s0, S1: s1}
		want := []uint64{0, uint64(shape.rows) - 1, uint64(shape.rows) / 2}
		rows, plan, stats, err := ts.Fetch(want)
		if err != nil {
			t.Fatalf("rows=%d bin=%d: %v", shape.rows, shape.binSize, err)
		}
		for _, idx := range plan.Retrieved {
			got, ok := rows[idx]
			if !ok {
				t.Fatalf("retrieved index %d missing from decode", idx)
			}
			wantRow := tab.Row(int(idx))
			for l := range wantRow {
				if got[l] != wantRow[l] {
					t.Fatalf("rows=%d idx=%d lane=%d: got %d want %d",
						shape.rows, idx, l, got[l], wantRow[l])
				}
			}
		}
		if stats.UpBytes != cfg.KeyBytesPerQuery() {
			t.Errorf("UpBytes=%d, model says %d", stats.UpBytes, cfg.KeyBytesPerQuery())
		}
		if stats.DownBytes != cfg.DownBytesPerQuery(tab.Lanes) {
			t.Errorf("DownBytes=%d, model says %d", stats.DownBytes, cfg.DownBytesPerQuery(tab.Lanes))
		}
	}
}

// TestExpectedRetrievalRate: analytic model vs Monte Carlo within 2%.
func TestExpectedRetrievalRate(t *testing.T) {
	cfg := Config{NumRows: 1024, BinSize: 32} // 32 bins
	rng := rand.New(rand.NewPCG(4, 0))
	const q = 16
	const trials = 2000
	got := 0.0
	for trial := 0; trial < trials; trial++ {
		idx := make([]uint64, 0, q)
		seen := map[uint64]bool{}
		for len(idx) < q {
			v := uint64(rng.IntN(cfg.NumRows))
			if !seen[v] {
				seen[v] = true
				idx = append(idx, v)
			}
		}
		plan, err := BuildPlan(cfg, idx, rng)
		if err != nil {
			t.Fatal(err)
		}
		got += float64(len(plan.Retrieved)) / q
	}
	got /= trials
	want := ExpectedRetrievalRate(q, cfg.NumBins())
	if diff := got - want; diff < -0.02 || diff > 0.02 {
		t.Errorf("Monte Carlo retrieval %g vs analytic %g", got, want)
	}
	// Edge cases.
	if ExpectedRetrievalRate(0, 10) != 0 || ExpectedRetrievalRate(10, 0) != 0 {
		t.Error("degenerate inputs should return 0")
	}
	if r := ExpectedRetrievalRate(1, 10); r < 1-1e-9 || r > 1+1e-9 {
		t.Errorf("single query never drops: %g", r)
	}
}

// TestBinTradeoffMonotonicity pins §4.1: shrinking bins monotonically
// improves retrieval (fewer collisions) at the price of more key traffic.
func TestBinTradeoffMonotonicity(t *testing.T) {
	const rows = 4096
	const q = 32
	prevRate := -1.0
	prevComm := int64(-1)
	for _, binSize := range []int{1024, 256, 64, 16} {
		cfg := Config{NumRows: rows, BinSize: binSize}
		rate := ExpectedRetrievalRate(q, cfg.NumBins())
		comm := cfg.KeyBytesPerQuery()
		if rate < prevRate {
			t.Errorf("binSize=%d: retrieval rate %g decreased", binSize, rate)
		}
		if comm < prevComm {
			t.Errorf("binSize=%d: comm %d should grow as bins multiply", binSize, comm)
		}
		prevRate, prevComm = rate, comm
	}
}

// TestQuickDecodeMatchesTable: random index sets always decode to exact
// rows for everything the plan retrieved.
func TestQuickDecodeMatchesTable(t *testing.T) {
	cfg := Config{NumRows: 128, BinSize: 32}
	tab := testTable(t, cfg.NumRows, 2)
	s0, err := NewServer(0, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewServer(1, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient("siphash", cfg, rand.New(rand.NewPCG(5, 0)))
	if err != nil {
		t.Fatal(err)
	}
	s0p, _ := NewServer(0, tab, cfg, pir.WithPRG("siphash"))
	s1p, _ := NewServer(1, tab, cfg, pir.WithPRG("siphash"))
	_ = s0
	_ = s1
	ts := &TwoServer{Client: c, S0: s0p, S1: s1p}
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		idx := make([]uint64, len(raw))
		for i, r := range raw {
			idx[i] = uint64(r) % uint64(cfg.NumRows)
		}
		rows, plan, _, err := ts.Fetch(idx)
		if err != nil {
			return false
		}
		for _, ridx := range plan.Retrieved {
			want := tab.Row(int(ridx))
			got := rows[ridx]
			for l := range want {
				if got[l] != want[l] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestServerAnswerValidation: wrong key counts are rejected.
func TestServerAnswerValidation(t *testing.T) {
	cfg := Config{NumRows: 64, BinSize: 16}
	tab := testTable(t, 64, 1)
	s0, err := NewServer(0, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s0.Answer([][]byte{{1}}); err == nil {
		t.Error("wrong key count accepted")
	}
}
