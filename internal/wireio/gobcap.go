// Package wireio hardens the repo's network decoders against hostile
// peers. A gob stream is a sequence of messages, each preceded by its byte
// count; encoding/gob grows its message buffer to that declared count
// BEFORE reading the payload, so a peer that writes a few header bytes
// claiming a gigabyte message makes the decoder allocate a gigabyte.
// pir.Serve's request decoder reads its gob stream through
// LimitGobMessages, which parses the message framing itself and refuses
// oversized declarations before any allocation happens. (shardnet's gob
// use — the handshake — is capped separately by its own length framing,
// which reads the whole message into a bounded frame before decoding.)
package wireio

import (
	"errors"
	"fmt"
	"io"
)

// ErrMessageTooBig is returned (wrapped, with both sizes) when a gob
// message's declared byte count exceeds the reader's cap. Consumers
// translate it into their protocol's named error.
var ErrMessageTooBig = errors.New("wireio: gob message exceeds size cap")

// ErrMessageBudget is returned when more gob messages arrive within one
// budget window (ResetMessageBudget) than the consumer allowed. One
// Decode call legitimately consumes a handful of messages (type
// definitions, then the value); a peer streaming endless small
// type-definition messages would otherwise grow the decoder's type map
// without bound while every individual message stays under the size cap.
var ErrMessageBudget = errors.New("wireio: too many gob messages in one decode")

// LimitGobMessages wraps r for use by a gob.Decoder: the returned reader
// passes the stream through unmodified, but parses each gob message's
// byte-count header and fails with ErrMessageTooBig (wrapped) before the
// decoder sees — and allocates for — a message declared larger than max
// bytes. Call ResetMessageBudget before each Decode to additionally bound
// how many messages that Decode may consume. The reader assumes r carries
// a well-formed gob stream from the current position; feed it to exactly
// one decoder.
func LimitGobMessages(r io.Reader, max int) *GobLimiter {
	return &GobLimiter{gobLimitReader{r: r, max: uint64(max)}}
}

// GobLimiter is the reader LimitGobMessages returns; see there.
type GobLimiter struct {
	gobLimitReader
}

// ResetMessageBudget allows the next n gob messages (n <= 0 disables the
// check). Call it before each Decode so a long-lived connection's budget
// applies per request, not per connection lifetime.
func (g *GobLimiter) ResetMessageBudget(n int) {
	if n <= 0 {
		n = 0
	}
	g.msgBudget = n
}

// PendingBytes reports how many bytes of the current (possibly refused)
// message have not been read from the underlying reader — what a server
// should drain before replying and closing, so the peer's kernel does not
// discard the reply with a RST over unread request bytes.
func (g *GobLimiter) PendingBytes() int64 {
	return int64(g.remain)
}

// gobLimitReader tracks gob message boundaries: at a boundary it reads and
// validates the next count header from the underlying reader, then replays
// the header bytes and passes the payload through.
type gobLimitReader struct {
	r   io.Reader
	max uint64
	// hdr buffers the current message's count header for replay to the
	// decoder (which parses the count itself); gob counts are at most
	// 1 + 8 bytes.
	hdr    [9]byte
	hdrLen int
	hdrPos int
	// remain is how many payload bytes of the current message are still
	// owed to the decoder.
	remain uint64
	// msgBudget, when positive, is decremented per message header; hitting
	// zero fails with ErrMessageBudget.
	msgBudget int
	err       error
}

func (g *gobLimitReader) Read(p []byte) (int, error) {
	if g.err != nil {
		return 0, g.err
	}
	if len(p) == 0 {
		return 0, nil
	}
	if g.hdrPos == g.hdrLen && g.remain == 0 {
		if err := g.nextHeader(); err != nil {
			g.err = err
			return 0, err
		}
	}
	if g.hdrPos < g.hdrLen {
		n := copy(p, g.hdr[g.hdrPos:g.hdrLen])
		g.hdrPos += n
		return n, nil
	}
	if uint64(len(p)) > g.remain {
		p = p[:g.remain]
	}
	n, err := g.r.Read(p)
	g.remain -= uint64(n)
	if err != nil {
		g.err = err
	}
	return n, err
}

// nextHeader reads one gob message count from the underlying reader,
// staging the raw header bytes for replay. The encoding (encoding/gob
// "Encoding Details"): a count below 128 is one byte holding the value;
// otherwise one byte holding the negated byte length n (as int8) followed
// by the count in n big-endian bytes.
func (g *gobLimitReader) nextHeader() error {
	if _, err := io.ReadFull(g.r, g.hdr[:1]); err != nil {
		return err // clean io.EOF at a boundary = end of stream
	}
	// msgBudget: 0 = unlimited, n > 0 = n more messages allowed, -1 =
	// exhausted (the previous message was the last allowed one).
	if g.msgBudget < 0 {
		return fmt.Errorf("%w", ErrMessageBudget)
	}
	if g.msgBudget > 0 {
		g.msgBudget--
		if g.msgBudget == 0 {
			g.msgBudget = -1
		}
	}
	b := g.hdr[0]
	if b <= 0x7f {
		g.hdrLen, g.remain = 1, uint64(b)
	} else {
		n := -int(int8(b))
		if n < 1 || n > 8 {
			return fmt.Errorf("wireio: corrupt gob count byte %#x", b)
		}
		if _, err := io.ReadFull(g.r, g.hdr[1:1+n]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		var v uint64
		for _, c := range g.hdr[1 : 1+n] {
			v = v<<8 | uint64(c)
		}
		g.hdrLen, g.remain = 1+n, v
	}
	g.hdrPos = 0
	if g.remain > g.max {
		return fmt.Errorf("%w: peer declared a %d-byte message, cap is %d", ErrMessageTooBig, g.remain, g.max)
	}
	return nil
}
