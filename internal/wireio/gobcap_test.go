package wireio

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"testing"
)

type msg struct {
	A int
	B string
	C []byte
}

// TestPassThrough: a well-formed gob stream under the cap decodes through
// the limiter exactly as it would straight off the wire.
func TestPassThrough(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	want := []msg{{1, "one", []byte{0xde}}, {2, "two", bytes.Repeat([]byte{7}, 300)}, {3, "three", nil}}
	for _, m := range want {
		if err := enc.Encode(&m); err != nil {
			t.Fatal(err)
		}
	}
	dec := gob.NewDecoder(LimitGobMessages(bytes.NewReader(buf.Bytes()), 1<<16))
	for i, w := range want {
		var got msg
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.A != w.A || got.B != w.B || !bytes.Equal(got.C, w.C) {
			t.Fatalf("message %d: got %+v want %+v", i, got, w)
		}
	}
	var extra msg
	if err := dec.Decode(&extra); err != io.EOF {
		t.Fatalf("after stream end: %v, want io.EOF", err)
	}
}

// TestOversizedDeclaration: a header declaring a message over the cap is
// rejected before any payload is consumed — the underlying reader never
// advances past the header.
func TestOversizedDeclaration(t *testing.T) {
	// Gob count encoding for 1<<30: byte -4 (=0xfc), then 4 big-endian
	// bytes. No payload follows; the limiter must fail on the header alone.
	hostile := []byte{0xfc, 0x40, 0x00, 0x00, 0x00}
	r := bytes.NewReader(hostile)
	var dst [16]byte
	_, err := LimitGobMessages(r, 1<<20).Read(dst[:])
	if !errors.Is(err, ErrMessageTooBig) {
		t.Fatalf("got %v, want ErrMessageTooBig", err)
	}
	if r.Len() != 0 {
		// All five header bytes were consumed, nothing more was asked for.
		t.Fatalf("%d header bytes left unread", r.Len())
	}
}

// TestCorruptCount: an impossible count byte (negated length > 8) errors
// instead of being treated as a giant length.
func TestCorruptCount(t *testing.T) {
	var dst [16]byte
	_, err := LimitGobMessages(bytes.NewReader([]byte{0x80}), 1<<20).Read(dst[:])
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("got %v, want corrupt-count error", err)
	}
}

// TestUnderCapBoundary: a message of exactly the cap passes; one byte over
// is rejected.
func TestUnderCapBoundary(t *testing.T) {
	payload := bytes.Repeat([]byte{1}, 200)
	stream := append([]byte{0xff, 200}, payload...) // count 200 as 1 big-endian byte
	got, err := io.ReadAll(LimitGobMessages(bytes.NewReader(stream), 200))
	if err != nil {
		t.Fatalf("at-cap message: %v", err)
	}
	if !bytes.Equal(got, stream) {
		t.Fatal("at-cap message not passed through byte-identically")
	}
	_, err = io.ReadAll(LimitGobMessages(bytes.NewReader(stream), 199))
	if !errors.Is(err, ErrMessageTooBig) {
		t.Fatalf("over-cap message: %v, want ErrMessageTooBig", err)
	}
}

// TestMessageBudget: a stream of endless small messages is cut off at the
// per-decode budget — the defense against unbounded gob type-definition
// streams — while a budget-sized burst passes and a reset renews it.
func TestMessageBudget(t *testing.T) {
	msg := func(n int) []byte {
		var out []byte
		for i := 0; i < n; i++ {
			out = append(out, 0x02, byte(i), byte(i)) // 2-byte message each
		}
		return out
	}
	lim := LimitGobMessages(bytes.NewReader(msg(10)), 1<<10)
	lim.ResetMessageBudget(4)
	got, err := io.ReadAll(lim)
	if !errors.Is(err, ErrMessageBudget) {
		t.Fatalf("11th message onward: err %v, want ErrMessageBudget", err)
	}
	if len(got) != 4*3 {
		t.Fatalf("passed %d bytes through, want the 4 budgeted messages (12 bytes)", len(got))
	}

	lim = LimitGobMessages(bytes.NewReader(msg(4)), 1<<10)
	lim.ResetMessageBudget(4)
	if _, err := io.ReadAll(lim); err != nil {
		t.Fatalf("at-budget stream: %v", err)
	}

	// Reset renews the allowance mid-stream.
	lim = LimitGobMessages(bytes.NewReader(msg(6)), 1<<10)
	lim.ResetMessageBudget(3)
	var buf [9]byte
	if _, err := io.ReadFull(lim, buf[:]); err != nil {
		t.Fatal(err)
	}
	lim.ResetMessageBudget(3)
	if _, err := io.ReadAll(lim); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

// FuzzGobLimitReader: arbitrary bytes must never panic the framing parser,
// and any stream it passes through must come out byte-identical.
func FuzzGobLimitReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x7f})
	f.Add([]byte{0xff, 200})
	f.Add([]byte{0xfc, 0x40, 0x00, 0x00, 0x00})
	var seed bytes.Buffer
	_ = gob.NewEncoder(&seed).Encode(&msg{A: 9, B: "seed", C: []byte{1, 2, 3}})
	f.Add(seed.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := io.ReadAll(LimitGobMessages(bytes.NewReader(data), 1<<12))
		if err == nil || err == io.EOF {
			if !bytes.Equal(got, data) {
				t.Fatalf("clean stream not passed through identically: %d of %d bytes", len(got), len(data))
			}
			return
		}
		// On error the reader must have passed through only a prefix.
		if !bytes.Equal(got, data[:len(got)]) {
			t.Fatal("error path emitted bytes that are not a stream prefix")
		}
	})
}
