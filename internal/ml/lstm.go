package ml

import (
	"math"
	"math/rand"
)

// LSTM is the paper's WikiText-2 language model (§5.1): a word-embedding
// table (the object PIR protects), a single LSTM layer, and a softmax
// output projection, trained with truncated BPTT. A dropped embedding
// lookup feeds a zero vector at that position — the PBR failure mode the
// co-design experiments measure through perplexity.
type LSTM struct {
	// V is the vocabulary; E the embedding width; H the hidden width.
	V, E, H int
	// Emb is the protected word-embedding table.
	Emb *Embedding
	// Wx (4H×E), Wh (4H×H) and B (4H) are the gate parameters, gate order
	// input, forget, cell, output.
	Wx, Wh *Mat
	B      Vec
	// Wo (V×H) and Bo (V) are the output projection.
	Wo *Mat
	Bo Vec
}

// NewLSTM builds an initialized model.
func NewLSTM(v, e, h int, rng *rand.Rand) *LSTM {
	m := &LSTM{
		V: v, E: e, H: h,
		Emb: NewEmbedding(v, e, rng),
		Wx:  NewMat(4*h, e),
		Wh:  NewMat(4*h, h),
		B:   make(Vec, 4*h),
		Wo:  NewMat(v, h),
		Bo:  make(Vec, v),
	}
	m.Wx.InitXavier(rng)
	m.Wh.InitXavier(rng)
	m.Wo.InitXavier(rng)
	// Forget-gate bias at 1 (standard trick for gradient flow).
	for i := h; i < 2*h; i++ {
		m.B[i] = 1
	}
	return m
}

// step caches one timestep's forward state for BPTT.
type step struct {
	x, tgt     int
	e          Vec // input embedding (zero if dropped)
	i, f, g, o Vec
	c, h       Vec
	tanhC      Vec
	probs      Vec
	dropped    bool
}

// forward runs the model over tokens[0..len-2] predicting tokens[1..],
// returning the mean NLL and the per-step caches (nil if caches is false).
func (m *LSTM) forward(tokens []int, dropped map[int]bool, caches bool) (float64, []*step) {
	T := len(tokens) - 1
	if T <= 0 {
		return 0, nil
	}
	h := make(Vec, m.H)
	c := make(Vec, m.H)
	z := make(Vec, 4*m.H)
	zh := make(Vec, 4*m.H)
	var steps []*step
	var nll float64
	for t := 0; t < T; t++ {
		st := &step{x: tokens[t], tgt: tokens[t+1], e: make(Vec, m.E)}
		if dropped == nil || !dropped[tokens[t]] {
			copy(st.e, m.Emb.Row(tokens[t]))
		} else {
			st.dropped = true
		}
		m.Wx.MatVec(z, st.e)
		m.Wh.MatVec(zh, h)
		st.i = make(Vec, m.H)
		st.f = make(Vec, m.H)
		st.g = make(Vec, m.H)
		st.o = make(Vec, m.H)
		st.c = make(Vec, m.H)
		st.h = make(Vec, m.H)
		st.tanhC = make(Vec, m.H)
		for j := 0; j < m.H; j++ {
			st.i[j] = Sigmoid(z[j] + zh[j] + m.B[j])
			st.f[j] = Sigmoid(z[m.H+j] + zh[m.H+j] + m.B[m.H+j])
			st.g[j] = Tanh(z[2*m.H+j] + zh[2*m.H+j] + m.B[2*m.H+j])
			st.o[j] = Sigmoid(z[3*m.H+j] + zh[3*m.H+j] + m.B[3*m.H+j])
			st.c[j] = st.f[j]*c[j] + st.i[j]*st.g[j]
			st.tanhC[j] = Tanh(st.c[j])
			st.h[j] = st.o[j] * st.tanhC[j]
		}
		copy(c, st.c)
		copy(h, st.h)

		logits := make(Vec, m.V)
		m.Wo.MatVec(logits, st.h)
		Axpy(logits, 1, m.Bo)
		st.probs = softmax(logits)
		target := tokens[t+1]
		nll += -math.Log(st.probs[target] + 1e-12)
		if caches {
			steps = append(steps, st)
		}
	}
	return nll / float64(T), steps
}

// NLL returns the mean negative log-likelihood over the token stream, with
// the given vocabulary ids' embeddings dropped (zeroed) at the input.
func (m *LSTM) NLL(tokens []int, dropped map[int]bool) float64 {
	nll, _ := m.forward(tokens, dropped, false)
	return nll
}

// Perplexity is exp(NLL) — the paper's LM quality metric (lower is better).
func (m *LSTM) Perplexity(tokens []int, dropped map[int]bool) float64 {
	return math.Exp(m.NLL(tokens, dropped))
}

// TrainStep runs truncated BPTT over one token window and applies SGD,
// returning the window's mean NLL.
func (m *LSTM) TrainStep(tokens []int, lr float64) float64 {
	loss, steps := m.forward(tokens, nil, true)
	T := len(steps)
	if T == 0 {
		return 0
	}
	scale := 1 / float64(T)

	dWx := NewMat(4*m.H, m.E)
	dWh := NewMat(4*m.H, m.H)
	dB := make(Vec, 4*m.H)
	dWo := NewMat(m.V, m.H)
	dBo := make(Vec, m.V)
	embGrads := map[int]Vec{}

	dhNext := make(Vec, m.H)
	dcNext := make(Vec, m.H)
	dz := make(Vec, 4*m.H)
	for t := T - 1; t >= 0; t-- {
		st := steps[t]
		// Output layer.
		dlogits := make(Vec, m.V)
		copy(dlogits, st.probs)
		dlogits[st.tgt] -= 1
		for j := range dlogits {
			dlogits[j] *= scale
		}
		dWo.AddOuterScaled(1, dlogits, st.h)
		Axpy(dBo, 1, dlogits)
		dh := make(Vec, m.H)
		m.Wo.MatVecT(dh, dlogits)
		Axpy(dh, 1, dhNext)

		dc := make(Vec, m.H)
		copy(dc, dcNext)
		var cPrev Vec
		if t > 0 {
			cPrev = steps[t-1].c
		} else {
			cPrev = make(Vec, m.H)
		}
		for j := 0; j < m.H; j++ {
			do := dh[j] * st.tanhC[j]
			dcj := dc[j] + dh[j]*st.o[j]*(1-st.tanhC[j]*st.tanhC[j])
			di := dcj * st.g[j]
			df := dcj * cPrev[j]
			dg := dcj * st.i[j]
			dcNext[j] = dcj * st.f[j]
			dz[j] = di * st.i[j] * (1 - st.i[j])
			dz[m.H+j] = df * st.f[j] * (1 - st.f[j])
			dz[2*m.H+j] = dg * (1 - st.g[j]*st.g[j])
			dz[3*m.H+j] = do * st.o[j] * (1 - st.o[j])
		}
		var hPrev Vec
		if t > 0 {
			hPrev = steps[t-1].h
		} else {
			hPrev = make(Vec, m.H)
		}
		dWx.AddOuterScaled(1, dz, st.e)
		dWh.AddOuterScaled(1, dz, hPrev)
		Axpy(dB, 1, dz)
		m.Wh.MatVecT(dhNext, dz)
		if !st.dropped {
			de, ok := embGrads[st.x]
			if !ok {
				de = make(Vec, m.E)
				embGrads[st.x] = de
			}
			tmp := make(Vec, m.E)
			m.Wx.MatVecT(tmp, dz)
			Axpy(de, 1, tmp)
		}
	}

	// SGD updates.
	Axpy(m.Wx.W, -lr, dWx.W)
	Axpy(m.Wh.W, -lr, dWh.W)
	Axpy(m.B, -lr, dB)
	Axpy(m.Wo.W, -lr, dWo.W)
	Axpy(m.Bo, -lr, dBo)
	for idx, g := range embGrads {
		Axpy(m.Emb.Row(idx), -lr, g)
	}
	return loss
}

// FLOPs is the multiply-accumulate count of one next-token inference, for
// the client latency model.
func (m *LSTM) FLOPs() float64 {
	return 2 * float64(4*m.H*(m.E+m.H)+m.V*m.H)
}

func softmax(logits Vec) Vec {
	maxv := logits[0]
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	out := make(Vec, len(logits))
	for i, v := range logits {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
