package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatOps(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.W, []float64{1, 2, 3, 4, 5, 6})
	x := Vec{1, 0, -1}
	dst := make(Vec, 2)
	m.MatVec(dst, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Errorf("MatVec = %v, want [-2 -2]", dst)
	}
	y := Vec{1, 2}
	dt := make(Vec, 3)
	m.MatVecT(dt, y)
	if dt[0] != 9 || dt[1] != 12 || dt[2] != 15 {
		t.Errorf("MatVecT = %v, want [9 12 15]", dt)
	}
	m2 := NewMat(2, 3)
	m2.AddOuterScaled(2, y, x)
	if m2.W[0] != 2 || m2.W[2] != -2 || m2.W[3] != 4 {
		t.Errorf("AddOuterScaled = %v", m2.W)
	}
}

func TestSigmoidStable(t *testing.T) {
	if s := Sigmoid(1000); s != 1 {
		t.Errorf("Sigmoid(1000) = %g", s)
	}
	if s := Sigmoid(-1000); s != 0 {
		t.Errorf("Sigmoid(-1000) = %g", s)
	}
	if s := Sigmoid(0); s != 0.5 {
		t.Errorf("Sigmoid(0) = %g", s)
	}
}

// TestMLPGradientCheck compares TrainStep's input gradient against central
// finite differences.
func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(6, 5, rng)
	x := make(Vec, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	label := 1.0

	lossAt := func(xx Vec) float64 {
		p, _ := m.Forward(xx)
		return -(label * math.Log(p+1e-12))
	}
	// lr=0 keeps parameters fixed so dx corresponds to the same weights.
	_, dx := m.TrainStep(x, label, 0)
	const eps = 1e-6
	for i := range x {
		xp := make(Vec, len(x))
		copy(xp, x)
		xp[i] += eps
		xm := make(Vec, len(x))
		copy(xm, x)
		xm[i] -= eps
		num := (lossAt(xp) - lossAt(xm)) / (2 * eps)
		if math.Abs(num-dx[i]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("dx[%d]: analytic %g vs numeric %g", i, dx[i], num)
		}
	}
}

// TestMLPLearnsSeparableTask: AUC should exceed 0.95 on a linearly
// separable problem after a few epochs.
func TestMLPLearnsSeparableTask(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(4, 8, rng)
	sample := func() (Vec, float64) {
		x := make(Vec, 4)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		label := 0.0
		if x[0]+x[1]-x[2] > 0 {
			label = 1
		}
		return x, label
	}
	for it := 0; it < 4000; it++ {
		x, y := sample()
		m.TrainStep(x, y, 0.05)
	}
	var scores, labels []float64
	for i := 0; i < 500; i++ {
		x, y := sample()
		scores = append(scores, m.Predict(x))
		labels = append(labels, y)
	}
	if auc := AUC(scores, labels); auc < 0.95 {
		t.Errorf("AUC = %g, want > 0.95", auc)
	}
}

func TestEmbeddingBag(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := NewEmbedding(10, 4, rng)
	dst := make(Vec, 4)
	e.Bag(dst, []uint64{2, 5}, nil)
	for j := 0; j < 4; j++ {
		want := (e.Row(2)[j] + e.Row(5)[j]) / 2
		if math.Abs(dst[j]-want) > 1e-12 {
			t.Errorf("bag lane %d: %g want %g", j, dst[j], want)
		}
	}
	// Drops remove contributions.
	e.Bag(dst, []uint64{2, 5}, map[uint64]bool{5: true})
	for j := 0; j < 4; j++ {
		if dst[j] != e.Row(2)[j] {
			t.Errorf("dropped bag lane %d: %g want %g", j, dst[j], e.Row(2)[j])
		}
	}
	// All dropped → zero vector.
	e.Bag(dst, []uint64{2}, map[uint64]bool{2: true})
	for j := range dst {
		if dst[j] != 0 {
			t.Error("fully dropped bag should be zero")
		}
	}
}

// TestBagFromMatchesBag: pooling PIR-fetched float32 rows agrees with
// direct pooling up to float32 quantization.
func TestBagFromMatchesBag(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := NewEmbedding(20, 8, rng)
	exported := e.Export()
	idx := []uint64{1, 7, 13}
	fetched := map[uint64][]float32{}
	for _, i := range idx {
		fetched[i] = exported[i]
	}
	a := make(Vec, 8)
	b := make(Vec, 8)
	e.Bag(a, idx, nil)
	BagFrom(b, fetched, idx)
	for j := range a {
		if math.Abs(a[j]-b[j]) > 1e-6 {
			t.Errorf("lane %d: direct %g vs fetched %g", j, a[j], b[j])
		}
	}
	// A missing row behaves like a drop.
	delete(fetched, 7)
	BagFrom(b, fetched, idx)
	e.Bag(a, idx, map[uint64]bool{7: true})
	for j := range a {
		if math.Abs(a[j]-b[j]) > 1e-6 {
			t.Errorf("drop lane %d: %g vs %g", j, a[j], b[j])
		}
	}
}

// cloneLSTM deep-copies a model for finite-difference checks.
func cloneLSTM(m *LSTM) *LSTM {
	cp := *m
	cp.Emb = &Embedding{V: m.Emb.V, Dim: m.Emb.Dim, W: cloneMat(m.Emb.W)}
	cp.Wx = cloneMat(m.Wx)
	cp.Wh = cloneMat(m.Wh)
	cp.Wo = cloneMat(m.Wo)
	cp.B = append(Vec{}, m.B...)
	cp.Bo = append(Vec{}, m.Bo...)
	return &cp
}

func cloneMat(m *Mat) *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.W, m.W)
	return c
}

// TestLSTMGradientCheck verifies BPTT against finite differences on
// representative parameters (gate weight, recurrent weight, output weight,
// bias, embedding).
func TestLSTMGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewLSTM(7, 3, 4, rng)
	tokens := []int{1, 4, 2, 6, 0, 3, 5, 1, 2}

	// With lr=1, weight delta = -gradient.
	applied := cloneLSTM(m)
	applied.TrainStep(tokens, 1)

	check := func(name string, w, updated Vec, flat int) {
		grad := w[flat] - updated[flat]
		const eps = 1e-5
		orig := w[flat]
		w[flat] = orig + eps
		lp := m.NLL(tokens, nil)
		w[flat] = orig - eps
		lm := m.NLL(tokens, nil)
		w[flat] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("%s[%d]: analytic %g vs numeric %g", name, flat, grad, num)
		}
	}
	check("Wx", m.Wx.W, applied.Wx.W, 2)
	check("Wx", m.Wx.W, applied.Wx.W, 17)
	check("Wh", m.Wh.W, applied.Wh.W, 5)
	check("Wo", m.Wo.W, applied.Wo.W, 9)
	check("B", m.B, applied.B, 1)
	check("Bo", m.Bo, applied.Bo, 3)
	check("Emb", m.Emb.W.W, applied.Emb.W.W, 4*3+1) // row 4, lane 1 (token 4 appears)
}

// TestLSTMLearnsStructure: on a deterministic cyclic sequence, training
// should drive perplexity far below the uniform baseline (= vocab size).
func TestLSTMLearnsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const v = 8
	m := NewLSTM(v, 6, 12, rng)
	var stream []int
	for i := 0; i < 400; i++ {
		stream = append(stream, i%v)
	}
	before := m.Perplexity(stream, nil)
	for epoch := 0; epoch < 30; epoch++ {
		for off := 0; off+16 < len(stream); off += 15 {
			m.TrainStep(stream[off:off+16], 0.1)
		}
	}
	after := m.Perplexity(stream, nil)
	if after > before/2 || after > 2.0 {
		t.Errorf("perplexity %g -> %g; cyclic sequence should be nearly deterministic", before, after)
	}
}

// TestLSTMDropHurtsPerplexity: zeroing frequent words' embeddings must not
// improve perplexity and should visibly hurt it on a trained model.
func TestLSTMDropHurtsPerplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const v = 8
	m := NewLSTM(v, 6, 12, rng)
	var stream []int
	for i := 0; i < 300; i++ {
		stream = append(stream, i%v)
	}
	for epoch := 0; epoch < 20; epoch++ {
		for off := 0; off+16 < len(stream); off += 15 {
			m.TrainStep(stream[off:off+16], 0.1)
		}
	}
	clean := m.Perplexity(stream, nil)
	degraded := m.Perplexity(stream, map[int]bool{0: true, 1: true, 2: true, 3: true})
	if degraded <= clean {
		t.Errorf("dropping half the vocab should hurt: clean %g, degraded %g", clean, degraded)
	}
}

func TestAUC(t *testing.T) {
	// Perfect separation.
	if a := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []float64{1, 1, 0, 0}); a != 1 {
		t.Errorf("perfect AUC = %g", a)
	}
	// Inverted.
	if a := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []float64{1, 1, 0, 0}); a != 0 {
		t.Errorf("inverted AUC = %g", a)
	}
	// All tied scores → 0.5.
	if a := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []float64{1, 0, 1, 0}); a != 0.5 {
		t.Errorf("tied AUC = %g", a)
	}
	// Degenerate labels → 0.5.
	if a := AUC([]float64{0.3, 0.7}, []float64{1, 1}); a != 0.5 {
		t.Errorf("single-class AUC = %g", a)
	}
	if a := AUC(nil, nil); a != 0.5 {
		t.Errorf("empty AUC = %g", a)
	}
	// Random scores ≈ 0.5.
	rng := rand.New(rand.NewSource(8))
	var s, l []float64
	for i := 0; i < 5000; i++ {
		s = append(s, rng.Float64())
		l = append(l, float64(rng.Intn(2)))
	}
	if a := AUC(s, l); a < 0.47 || a > 0.53 {
		t.Errorf("random AUC = %g, want ≈0.5", a)
	}
}

func TestFLOPsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if (NewMLP(10, 20, rng)).FLOPs() <= 0 {
		t.Error("MLP FLOPs must be positive")
	}
	if (NewLSTM(50, 8, 16, rng)).FLOPs() <= 0 {
		t.Error("LSTM FLOPs must be positive")
	}
}
