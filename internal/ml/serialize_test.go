package ml

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestMLPSaveLoadRoundTrip: a reloaded model predicts identically.
func TestMLPSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(6, 9, rng)
	for i := 0; i < 50; i++ {
		x := make(Vec, 6)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		m.TrainStep(x, float64(i%2), 0.05)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMLP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := make(Vec, 6)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		if got.Predict(x) != m.Predict(x) {
			t.Fatal("reloaded MLP predicts differently")
		}
	}
}

// TestLSTMSaveLoadRoundTrip: a reloaded LM scores identically.
func TestLSTMSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewLSTM(12, 4, 6, rng)
	tokens := []int{1, 4, 2, 6, 0, 3, 5, 1, 2, 11, 7}
	m.TrainStep(tokens, 0.1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLSTM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NLL(tokens, nil) != m.NLL(tokens, nil) {
		t.Fatal("reloaded LSTM scores differently")
	}
	// Training continues to work on the reloaded model.
	before := got.NLL(tokens, nil)
	for i := 0; i < 20; i++ {
		got.TrainStep(tokens, 0.1)
	}
	if got.NLL(tokens, nil) >= before {
		t.Error("reloaded LSTM does not train")
	}
}

// TestLoadRejectsGarbage: malformed streams fail cleanly.
func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadMLP(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Error("garbage MLP stream accepted")
	}
	if _, err := LoadLSTM(bytes.NewReader(nil)); err == nil {
		t.Error("empty LSTM stream accepted")
	}
	// Truncated valid stream.
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(3, 3, rng)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := LoadMLP(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated MLP stream accepted")
	}
}
