package ml

import (
	"math/rand"
)

// Embedding is a V×Dim embedding table — the object the PIR system serves
// from the cloud. Lookup order: train with float64 weights here, export to
// a float32 PIR table with Export, and at inference feed back whatever rows
// the (possibly lossy, drop-prone) private retrieval returned via BagFrom.
type Embedding struct {
	// V is the vocabulary (row) count; Dim the vector width.
	V, Dim int
	// W holds the rows.
	W *Mat
}

// NewEmbedding allocates an initialized table.
func NewEmbedding(v, dim int, rng *rand.Rand) *Embedding {
	e := &Embedding{V: v, Dim: dim, W: NewMat(v, dim)}
	for i := range e.W.W {
		e.W.W[i] = rng.NormFloat64() * 0.1
	}
	return e
}

// Row returns the embedding for index i.
func (e *Embedding) Row(i int) Vec { return e.W.Row(i) }

// Bag mean-pools the rows for the given indices into dst, skipping indices
// marked dropped (the PBR failure mode §4.1: a dropped lookup simply does
// not contribute). If every index is dropped dst is zero — the model sees
// an empty feature, exactly like a cold-start user.
func (e *Embedding) Bag(dst Vec, indices []uint64, dropped map[uint64]bool) {
	checkLen("bag dst", len(dst), e.Dim)
	for j := range dst {
		dst[j] = 0
	}
	n := 0
	for _, idx := range indices {
		if dropped != nil && dropped[idx] {
			continue
		}
		Axpy(dst, 1, e.Row(int(idx)))
		n++
	}
	if n > 1 {
		inv := 1 / float64(n)
		for j := range dst {
			dst[j] *= inv
		}
	}
}

// BagGrad back-propagates the pooled gradient into the table with SGD step
// size lr, mirroring Bag's mean pooling.
func (e *Embedding) BagGrad(grad Vec, indices []uint64, dropped map[uint64]bool, lr float64) {
	n := 0
	for _, idx := range indices {
		if dropped == nil || !dropped[idx] {
			n++
		}
	}
	if n == 0 {
		return
	}
	scale := -lr
	if n > 1 {
		scale /= float64(n)
	}
	for _, idx := range indices {
		if dropped != nil && dropped[idx] {
			continue
		}
		Axpy(e.Row(int(idx)), scale, grad)
	}
}

// Export quantizes the table to float32 rows for PIR serving.
func (e *Embedding) Export() [][]float32 {
	out := make([][]float32, e.V)
	for i := range out {
		row := e.Row(i)
		f := make([]float32, e.Dim)
		for j, v := range row {
			f[j] = float32(v)
		}
		out[i] = f
	}
	return out
}

// BagFrom mean-pools already-fetched float32 rows (what the private
// retrieval actually returned) into dst; missing rows are the drop case.
func BagFrom(dst Vec, rows map[uint64][]float32, indices []uint64) {
	for j := range dst {
		dst[j] = 0
	}
	n := 0
	for _, idx := range indices {
		row, ok := rows[idx]
		if !ok {
			continue
		}
		for j, v := range row {
			dst[j] += float64(v)
		}
		n++
	}
	if n > 1 {
		inv := 1 / float64(n)
		for j := range dst {
			dst[j] *= inv
		}
	}
}
