package ml

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Model serialization: the deployment split in the paper trains models
// server-side and ships the small dense part (MLP / LSTM weights minus the
// protected embedding table) to devices (§2.1). Gob keeps this stdlib-only;
// the formats are versioned so stale on-device models fail loudly.

const (
	mlpFormatVersion  = 1
	lstmFormatVersion = 1
)

type mlpWire struct {
	Version    int
	In, Hidden int
	W1         []float64
	B1         []float64
	W2         []float64
	B2         float64
}

// Save writes the MLP to w.
func (m *MLP) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(mlpWire{
		Version: mlpFormatVersion,
		In:      m.In, Hidden: m.Hidden,
		W1: m.W1.W, B1: m.B1, W2: m.W2, B2: m.B2,
	})
}

// LoadMLP reads an MLP written by Save.
func LoadMLP(r io.Reader) (*MLP, error) {
	var wire mlpWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("ml: decoding MLP: %w", err)
	}
	if wire.Version != mlpFormatVersion {
		return nil, fmt.Errorf("ml: MLP format version %d, want %d", wire.Version, mlpFormatVersion)
	}
	if wire.In <= 0 || wire.Hidden <= 0 ||
		len(wire.W1) != wire.In*wire.Hidden || len(wire.B1) != wire.Hidden || len(wire.W2) != wire.Hidden {
		return nil, fmt.Errorf("ml: inconsistent MLP shapes in stream")
	}
	m := &MLP{In: wire.In, Hidden: wire.Hidden, W1: &Mat{Rows: wire.Hidden, Cols: wire.In, W: wire.W1},
		B1: wire.B1, W2: wire.W2, B2: wire.B2}
	return m, nil
}

type lstmWire struct {
	Version int
	V, E, H int
	Emb     []float64
	Wx, Wh  []float64
	B       []float64
	Wo      []float64
	Bo      []float64
}

// Save writes the LSTM (including its embedding table — strip it for
// on-device deployment by exporting the embedding separately).
func (m *LSTM) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(lstmWire{
		Version: lstmFormatVersion,
		V:       m.V, E: m.E, H: m.H,
		Emb: m.Emb.W.W, Wx: m.Wx.W, Wh: m.Wh.W, B: m.B, Wo: m.Wo.W, Bo: m.Bo,
	})
}

// LoadLSTM reads an LSTM written by Save.
func LoadLSTM(r io.Reader) (*LSTM, error) {
	var wire lstmWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("ml: decoding LSTM: %w", err)
	}
	if wire.Version != lstmFormatVersion {
		return nil, fmt.Errorf("ml: LSTM format version %d, want %d", wire.Version, lstmFormatVersion)
	}
	if wire.V <= 0 || wire.E <= 0 || wire.H <= 0 ||
		len(wire.Emb) != wire.V*wire.E ||
		len(wire.Wx) != 4*wire.H*wire.E || len(wire.Wh) != 4*wire.H*wire.H ||
		len(wire.B) != 4*wire.H || len(wire.Wo) != wire.V*wire.H || len(wire.Bo) != wire.V {
		return nil, fmt.Errorf("ml: inconsistent LSTM shapes in stream")
	}
	return &LSTM{
		V: wire.V, E: wire.E, H: wire.H,
		Emb: &Embedding{V: wire.V, Dim: wire.E, W: &Mat{Rows: wire.V, Cols: wire.E, W: wire.Emb}},
		Wx:  &Mat{Rows: 4 * wire.H, Cols: wire.E, W: wire.Wx},
		Wh:  &Mat{Rows: 4 * wire.H, Cols: wire.H, W: wire.Wh},
		B:   wire.B,
		Wo:  &Mat{Rows: wire.V, Cols: wire.H, W: wire.Wo},
		Bo:  wire.Bo,
	}, nil
}
