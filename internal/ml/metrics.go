package ml

import (
	"math"
	"sort"
)

// AUC computes the area under the ROC curve from scores and binary labels
// using the rank statistic (equivalent to the Mann–Whitney U), with ties
// averaged. It is the paper's recommendation-quality metric; returns 0.5
// for degenerate inputs (single-class labels).
func AUC(scores []float64, labels []float64) float64 {
	n := len(scores)
	if n == 0 || len(labels) != n {
		return 0.5
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1 // 1-based average rank of the tie group
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	var pos, sumPos float64
	for i := range labels {
		if labels[i] > 0.5 {
			pos++
			sumPos += ranks[i]
		}
	}
	neg := float64(n) - pos
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return (sumPos - pos*(pos+1)/2) / (pos * neg)
}

// PerplexityFromNLL converts a mean negative log-likelihood to perplexity.
func PerplexityFromNLL(nll float64) float64 { return math.Exp(nll) }
