package ml

import (
	"math"
	"math/rand"
)

// MLP is the paper's two-layer on-device ranking model (§5.1, [43]):
// input → hidden (ReLU) → logit, trained with binary cross-entropy. The
// whole model is a few hundred KB — small enough to ship to a phone, which
// is the premise of the private on-device architecture (§2.1).
type MLP struct {
	// In and Hidden are the layer widths.
	In, Hidden int
	// W1 (Hidden×In), B1, W2 (1×Hidden), B2 are the parameters.
	W1 *Mat
	B1 Vec
	W2 Vec
	B2 float64
}

// NewMLP builds an initialized model.
func NewMLP(in, hidden int, rng *rand.Rand) *MLP {
	m := &MLP{In: in, Hidden: hidden, W1: NewMat(hidden, in), B1: make(Vec, hidden), W2: make(Vec, hidden)}
	m.W1.InitXavier(rng)
	limit := math.Sqrt(6.0 / float64(hidden+1))
	for i := range m.W2 {
		m.W2[i] = (rng.Float64()*2 - 1) * limit
	}
	return m
}

// Forward returns the click probability for input x, and the hidden
// pre-activations needed for backprop (nil scratch allocates).
func (m *MLP) Forward(x Vec) (prob float64, hidden Vec) {
	checkLen("mlp input", len(x), m.In)
	hidden = make(Vec, m.Hidden)
	m.W1.MatVec(hidden, x)
	for i := range hidden {
		hidden[i] += m.B1[i]
		if hidden[i] < 0 {
			hidden[i] = 0 // ReLU
		}
	}
	return Sigmoid(Dot(m.W2, hidden) + m.B2), hidden
}

// Predict returns only the probability.
func (m *MLP) Predict(x Vec) float64 {
	p, _ := m.Forward(x)
	return p
}

// TrainStep performs one SGD step on (x, label) with binary cross-entropy
// and returns the loss and the gradient w.r.t. the input (for embedding
// backprop).
func (m *MLP) TrainStep(x Vec, label float64, lr float64) (loss float64, dx Vec) {
	p, hidden := m.Forward(x)
	// BCE loss and its logit gradient.
	eps := 1e-12
	loss = -(label*math.Log(p+eps) + (1-label)*math.Log(1-p+eps))
	dLogit := p - label

	// Hidden gradient through ReLU.
	dHidden := make(Vec, m.Hidden)
	for i := range dHidden {
		if hidden[i] > 0 {
			dHidden[i] = dLogit * m.W2[i]
		}
	}
	// Input gradient (before weight update, as in standard backprop).
	dx = make(Vec, m.In)
	m.W1.MatVecT(dx, dHidden)

	// Parameter updates.
	Axpy(m.W2, -lr*dLogit, hidden)
	m.B2 -= lr * dLogit
	m.W1.AddOuterScaled(-lr, dHidden, x)
	Axpy(m.B1, -lr, dHidden)
	return loss, dx
}

// FLOPs is the multiply-accumulate count of one inference, used by the
// client latency model (Figure 12's on-device DNN component).
func (m *MLP) FLOPs() float64 {
	return 2 * float64(m.In*m.Hidden+m.Hidden)
}
