// Package ml implements the on-device models the paper evaluates: a
// two-layer MLP recommendation model (MovieLens / Taobao, §5.1) and an LSTM
// language model (WikiText-2), together with the embedding-bag layer whose
// lookups the PIR system protects, and the quality metrics (ROC-AUC,
// perplexity). Everything is from scratch on float64 with plain SGD; the
// models are deliberately small — what the experiments measure is quality
// *sensitivity to dropped embedding lookups*, not leaderboard accuracy.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec is a dense vector.
type Vec = []float64

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	W          []float64
}

// NewMat allocates a zero matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, W: make([]float64, rows*cols)}
}

// Row returns row i as a slice.
func (m *Mat) Row(i int) Vec { return m.W[i*m.Cols : (i+1)*m.Cols] }

// InitXavier fills the matrix with Glorot-uniform weights.
func (m *Mat) InitXavier(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.W {
		m.W[i] = (rng.Float64()*2 - 1) * limit
	}
}

// MatVec computes dst = m·x (dst len Rows, x len Cols).
func (m *Mat) MatVec(dst, x Vec) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range x {
			s += row[j] * v
		}
		dst[i] = s
	}
}

// MatVecT computes dst = mᵀ·x (dst len Cols, x len Rows).
func (m *Mat) MatVecT(dst, x Vec) {
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// AddOuterScaled accumulates m += scale · x·yᵀ (x len Rows, y len Cols);
// the SGD weight update.
func (m *Mat) AddOuterScaled(scale float64, x, y Vec) {
	for i := 0; i < m.Rows; i++ {
		if x[i] == 0 {
			continue
		}
		row := m.Row(i)
		s := scale * x[i]
		for j, v := range y {
			row[j] += s * v
		}
	}
}

// Sigmoid is the logistic function, numerically stabilized.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Tanh is math.Tanh (re-exported for symmetry in the LSTM code).
func Tanh(x float64) float64 { return math.Tanh(x) }

// Dot is the inner product.
func Dot(a, b Vec) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes dst += scale·src.
func Axpy(dst Vec, scale float64, src Vec) {
	for i, v := range src {
		dst[i] += scale * v
	}
}

// checkLen panics with a descriptive message on length mismatch; internal
// invariant guard for the hand-written backprop.
func checkLen(name string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("ml: %s length %d, want %d", name, got, want))
	}
}
