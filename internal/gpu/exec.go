package gpu

import (
	"runtime"
	"sync"
)

// ParallelFor executes fn(i) for i in [0, n) across the host's cores. It is
// the executor the strategies use so their DPF expansions really run in
// parallel (the modeled device time is computed separately from counters).
// fn must be safe for concurrent invocation on distinct i.
func ParallelFor(n int, fn func(i int)) {
	ParallelForChunked(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ParallelForChunked splits [0, n) into contiguous chunks and runs
// fn(lo, hi) per chunk on a bounded worker pool. chunk <= 0 picks a chunk
// size that gives each worker a few chunks for load balance.
func ParallelForChunked(n, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if chunk <= 0 {
		chunk = (n + workers*4 - 1) / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	if workers == 1 || n <= chunk {
		fn(0, n)
		return
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				lo := next
				next += chunk
				mu.Unlock()
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}
