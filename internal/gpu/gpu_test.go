package gpu

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestV100Preset(t *testing.T) {
	d := TeslaV100()
	if d.TotalLanes() != 5120 {
		t.Errorf("V100 lanes = %d, want 5120", d.TotalLanes())
	}
	if d.GlobalMemBytes != 16<<30 {
		t.Errorf("V100 memory = %d, want 16GiB", d.GlobalMemBytes)
	}
	if d.LaneCyclesPerSecond() < 7e12 || d.LaneCyclesPerSecond() > 7.1e12 {
		t.Errorf("V100 lane-cycles/s = %g, want ≈7.07e12", d.LaneCyclesPerSecond())
	}
}

func TestOccupancy(t *testing.T) {
	d := TeslaV100()
	cases := []struct {
		par  int64
		want float64
	}{
		{0, 0},
		{-5, 0},
		{1, 32.0 / 5120},      // one warp
		{32, 32.0 / 5120},     // still one warp
		{33, 64.0 / 5120},     // rounds to two warps
		{5120, 1.0},           // exactly full
		{1 << 30, 1.0},        // saturated
		{2560, 2560.0 / 5120}, // half
	}
	for _, c := range cases {
		if got := d.Occupancy(c.par); got != c.want {
			t.Errorf("Occupancy(%d) = %g, want %g", c.par, got, c.want)
		}
	}
}

// TestEstimateComputeBound: a pure-compute kernel's time should equal
// cycles / (lanes × clock) and scale down with parallelism.
func TestEstimateComputeBound(t *testing.T) {
	d := TeslaV100()
	p := KernelProfile{
		Stats:             Stats{PRFBlocks: 1 << 20, Launches: 0},
		PRGCyclesPerBlock: 2500,
		Parallelism:       1 << 20,
	}
	tm, util, err := d.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if util != 1.0 {
		t.Errorf("util = %g, want 1.0", util)
	}
	wantSec := float64(1<<20) * 2500 / d.LaneCyclesPerSecond()
	got := tm.Seconds()
	if got < wantSec*0.99 || got > wantSec*1.01 {
		t.Errorf("time %g, want %g", got, wantSec)
	}

	// Quarter the parallelism → quadruple the time.
	p.Parallelism = 5120 / 4
	tm2, util2, err := d.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if util2 != 0.25 {
		t.Errorf("util = %g, want 0.25", util2)
	}
	ratio := tm2.Seconds() / tm.Seconds()
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("time ratio %g, want 4", ratio)
	}
}

// TestEstimateMemoryBound: when byte traffic dominates, time follows the
// bandwidth term.
func TestEstimateMemoryBound(t *testing.T) {
	d := TeslaV100()
	p := KernelProfile{
		Stats:             Stats{PRFBlocks: 1, ReadBytes: 9 << 30},
		PRGCyclesPerBlock: 2500,
		Parallelism:       1 << 20,
	}
	tm, _, err := d.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	wantSec := float64(9<<30) / d.MemBandwidthBps
	if got := tm.Seconds(); got < wantSec*0.99 || got > wantSec*1.05 {
		t.Errorf("memory-bound time %g, want %g", got, wantSec)
	}
}

// TestEstimateOOM: exceeding device memory must be reported, not modeled.
func TestEstimateOOM(t *testing.T) {
	d := TeslaV100()
	p := KernelProfile{
		Stats:       Stats{PeakMemBytes: d.GlobalMemBytes + 1},
		Parallelism: 128,
	}
	if _, _, err := d.Estimate(p); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

// TestEstimateLaunchOverhead: launches add fixed overhead.
func TestEstimateLaunchOverhead(t *testing.T) {
	d := TeslaV100()
	base := KernelProfile{Stats: Stats{PRFBlocks: 100}, PRGCyclesPerBlock: 100, Parallelism: 100}
	t0, _, _ := d.Estimate(base)
	base.Stats.Launches = 10
	t1, _, _ := d.Estimate(base)
	if t1-t0 != 10*d.LaunchOverhead {
		t.Errorf("launch overhead delta = %v, want %v", t1-t0, 10*d.LaunchOverhead)
	}
}

// TestQuickEstimateMonotone: modeled time must be monotone in PRF work.
func TestQuickEstimateMonotone(t *testing.T) {
	d := TeslaV100()
	f := func(aRaw, bRaw uint32) bool {
		a, b := int64(aRaw%1e6)+1, int64(bRaw%1e6)+1
		if a > b {
			a, b = b, a
		}
		pa := KernelProfile{Stats: Stats{PRFBlocks: a}, PRGCyclesPerBlock: 700, Parallelism: 4096}
		pb := pa
		pb.Stats.PRFBlocks = b
		ta, _, _ := d.Estimate(pa)
		tb, _, _ := d.Estimate(pb)
		return ta <= tb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountersPeakTracking(t *testing.T) {
	var c Counters
	c.Alloc(100)
	c.Alloc(50)
	c.Free(100)
	c.Alloc(30)
	s := c.Snapshot()
	if s.PeakMemBytes != 150 {
		t.Errorf("peak = %d, want 150", s.PeakMemBytes)
	}
	c.Reset()
	if c.Snapshot() != (Stats{}) {
		t.Error("Reset did not zero counters")
	}
}

// TestCountersConcurrent hammers the peak tracker from many goroutines; the
// peak must be at least each goroutine's own allocation and at most the sum.
func TestCountersConcurrent(t *testing.T) {
	var c Counters
	const g = 32
	const per = 1000
	done := make(chan struct{})
	for i := 0; i < g; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < per; j++ {
				c.Alloc(10)
				c.AddPRFBlocks(1)
				c.Free(10)
			}
		}()
	}
	for i := 0; i < g; i++ {
		<-done
	}
	s := c.Snapshot()
	if s.PRFBlocks != g*per {
		t.Errorf("PRFBlocks = %d, want %d", s.PRFBlocks, g*per)
	}
	if s.PeakMemBytes < 10 || s.PeakMemBytes > 10*g {
		t.Errorf("peak = %d, want in [10, %d]", s.PeakMemBytes, 10*g)
	}
}

func TestParallelForCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 4096} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		ParallelFor(n, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("n=%d: index %d visited twice", n, i)
			}
			hits.Add(1)
		})
		if hits.Load() != int64(n) {
			t.Errorf("n=%d: %d hits", n, hits.Load())
		}
	}
}

func TestParallelForChunkedBounds(t *testing.T) {
	var total atomic.Int64
	ParallelForChunked(1000, 64, func(lo, hi int) {
		if lo < 0 || hi > 1000 || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != 1000 {
		t.Errorf("covered %d of 1000", total.Load())
	}
}

func TestCPUModelScaling(t *testing.T) {
	xeon := XeonGold6230()
	oneThread := xeon.CPUTime(1e9, 1)
	allThreads := xeon.CPUTime(1e9, 32)
	speedup := oneThread.Seconds() / allThreads.Seconds()
	// Table 4 shows ~17.7x on the 1M row; the model should land nearby.
	if speedup < 15 || speedup > 20 {
		t.Errorf("28-core speedup %g, want ≈17.6", speedup)
	}
	if xeon.CPUTime(2.1e9, 1) != time.Second {
		t.Errorf("1 core at 2.1GHz should take 1s for 2.1e9 cycles, got %v", xeon.CPUTime(2.1e9, 1))
	}
	if got := xeon.CPUTime(1e9, 0); got != xeon.CPUTime(1e9, 1) {
		t.Errorf("threads=0 should clamp to 1: %v", got)
	}
}

func TestGenProfileGrowsWithBits(t *testing.T) {
	prev := 0.0
	for bits := 1; bits <= 30; bits++ {
		c := GenProfile(320, bits, 1)
		if c <= prev {
			t.Fatalf("GenProfile not increasing at bits=%d", bits)
		}
		prev = c
	}
	// Gen must stay trivially cheap compared to Eval: a 2^20-domain Gen on
	// a 3GHz core is well under a millisecond (Figure 3's point).
	i3 := IntelCorei3()
	if lat := i3.CPUTime(GenProfile(320, 20, 1), 1); lat > time.Millisecond {
		t.Errorf("Gen latency %v, want < 1ms", lat)
	}
}
