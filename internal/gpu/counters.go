package gpu

import "sync/atomic"

// Counters accumulates the observable quantities the cost model is driven
// by. Strategies increment counters while doing the real computation; the
// model converts the totals into modeled device time. All methods are safe
// for concurrent use.
type Counters struct {
	prfBlocks  atomic.Int64
	readBytes  atomic.Int64
	writeBytes atomic.Int64
	launches   atomic.Int64
	curMem     atomic.Int64
	peakMem    atomic.Int64
}

// AddPRFBlocks records n 128-bit PRF output blocks.
func (c *Counters) AddPRFBlocks(n int64) { c.prfBlocks.Add(n) }

// AddRead records n bytes read from global memory.
func (c *Counters) AddRead(n int64) { c.readBytes.Add(n) }

// AddWrite records n bytes written to global memory.
func (c *Counters) AddWrite(n int64) { c.writeBytes.Add(n) }

// AddLaunch records one kernel launch.
func (c *Counters) AddLaunch() { c.launches.Add(1) }

// Alloc records a device-memory allocation and updates the peak.
func (c *Counters) Alloc(bytes int64) {
	cur := c.curMem.Add(bytes)
	for {
		peak := c.peakMem.Load()
		if cur <= peak || c.peakMem.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// Free records a device-memory release.
func (c *Counters) Free(bytes int64) { c.curMem.Add(-bytes) }

// Stats is an immutable snapshot of a Counters.
type Stats struct {
	// PRFBlocks is the number of 128-bit PRF blocks computed.
	PRFBlocks int64
	// ReadBytes and WriteBytes are global-memory traffic.
	ReadBytes  int64
	WriteBytes int64
	// Launches is the kernel-launch count.
	Launches int64
	// PeakMemBytes is the high-water device memory mark.
	PeakMemBytes int64
}

// Snapshot returns the current totals.
func (c *Counters) Snapshot() Stats {
	return Stats{
		PRFBlocks:    c.prfBlocks.Load(),
		ReadBytes:    c.readBytes.Load(),
		WriteBytes:   c.writeBytes.Load(),
		Launches:     c.launches.Load(),
		PeakMemBytes: c.peakMem.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.prfBlocks.Store(0)
	c.readBytes.Store(0)
	c.writeBytes.Store(0)
	c.launches.Store(0)
	c.curMem.Store(0)
	c.peakMem.Store(0)
}
