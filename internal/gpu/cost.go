package gpu

import (
	"errors"
	"time"
)

// KernelProfile summarizes one kernel (or fused kernel pipeline) for the
// cost model.
type KernelProfile struct {
	// Stats are the counted totals for the kernel.
	Stats Stats
	// PRGCyclesPerBlock is the modeled per-thread cost of one PRF block on
	// this device.
	PRGCyclesPerBlock float64
	// Parallelism is the number of independent work items the kernel
	// exposes concurrently (e.g. batch × frontier width). It bounds how
	// many lanes the device can keep busy.
	Parallelism int64
	// ArithCycles is additional non-PRF per-lane arithmetic (dot products,
	// reductions), in lane-cycles.
	ArithCycles float64
}

// ErrOutOfMemory reports that a kernel's working set exceeds device memory.
var ErrOutOfMemory = errors.New("gpu: working set exceeds device global memory")

// Estimate converts a kernel profile into modeled device time and achieved
// utilization using a roofline: the kernel takes the maximum of its compute
// time and its memory time, plus launch overhead. Compute time divides the
// total cycle demand over the lanes the kernel can actually occupy.
func (d *Device) Estimate(p KernelProfile) (time.Duration, float64, error) {
	if p.Stats.PeakMemBytes > d.GlobalMemBytes {
		return 0, 0, ErrOutOfMemory
	}
	util := d.Occupancy(p.Parallelism)
	activeLanes := util * float64(d.TotalLanes())
	if activeLanes < 1 {
		activeLanes = 1
	}
	cycles := float64(p.Stats.PRFBlocks)*p.PRGCyclesPerBlock + p.ArithCycles
	computeSec := cycles / (activeLanes * d.ClockHz)
	memSec := float64(p.Stats.ReadBytes+p.Stats.WriteBytes) / d.MemBandwidthBps
	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	t := time.Duration(sec*float64(time.Second)) + time.Duration(p.Stats.Launches)*d.LaunchOverhead
	return t, util, nil
}

// Occupancy returns the fraction of device lanes a kernel with the given
// exposed parallelism can occupy. Work is scheduled in warp granules, so
// small parallelism rounds up to whole warps but cannot exceed 1.0.
func (d *Device) Occupancy(parallelism int64) float64 {
	if parallelism <= 0 {
		return 0
	}
	warps := (parallelism + int64(d.WarpSize) - 1) / int64(d.WarpSize)
	lanes := warps * int64(d.WarpSize)
	total := int64(d.TotalLanes())
	if lanes >= total {
		return 1.0
	}
	return float64(lanes) / float64(total)
}

// GenProfile models client-side key generation: Gen walks one root-to-leaf
// path expanding both parties per level (2 Expand calls = 4 blocks/level)
// plus the final conversion.
func GenProfile(cpuCyclesPerBlock float64, bits, lanes int) float64 {
	blocks := float64(4*bits + 2*convertBlocksModel(lanes))
	// GGM bookkeeping roughly doubles the pure PRF cost on a scalar core.
	return blocks * cpuCyclesPerBlock * 2
}

func convertBlocksModel(lanes int) int {
	if lanes <= 4 {
		return 1
	}
	return (lanes*4 + 15) / 16
}
