// Package gpu models the accelerator and host hardware the paper evaluates
// on, and provides the bounded parallel executor the DPF execution
// strategies run on.
//
// This repository cannot drive a real CUDA device (see DESIGN.md's
// substitution table), so the package pairs two things:
//
//  1. a real, host-parallel executor (ParallelFor) so every strategy
//     actually computes correct DPF outputs, and
//  2. an analytic device model — a compute/memory roofline over *counted*
//     PRF blocks, bytes moved and exposed parallelism — calibrated against
//     the paper's measured V100 and Xeon numbers (Tables 4 and 5).
//
// The modeled latencies and throughputs reproduce the paper's shapes
// because they are driven by the same algorithmic quantities the real
// kernels are bound by, not by hardcoded curves.
package gpu

import "time"

// Device describes a GPU-class accelerator for the cost model.
type Device struct {
	// Name is a human-readable device name.
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// CoresPerSM is the number of scalar lanes per SM.
	CoresPerSM int
	// ClockHz is the sustained SM clock.
	ClockHz float64
	// GlobalMemBytes is device memory capacity; exceeding it is an OOM.
	GlobalMemBytes int64
	// SharedMemPerSMBytes is the on-chip scratch per SM.
	SharedMemPerSMBytes int
	// MemBandwidthBps is sustained global-memory bandwidth in bytes/s.
	MemBandwidthBps float64
	// MaxThreadsPerSM is the occupancy limit of resident threads per SM.
	MaxThreadsPerSM int
	// WarpSize is the SIMT width; parallelism is consumed in warp
	// granules.
	WarpSize int
	// LaunchOverhead is the fixed cost of one kernel launch.
	LaunchOverhead time.Duration
}

// TeslaV100 returns the model of the NVIDIA V100 the paper benchmarks on
// (16 GB SXM2: 80 SMs × 64 FP32 lanes, 1.38 GHz, 900 GB/s HBM2).
func TeslaV100() *Device {
	return &Device{
		Name:                "NVIDIA Tesla V100-SXM2-16GB",
		SMs:                 80,
		CoresPerSM:          64,
		ClockHz:             1.38e9,
		GlobalMemBytes:      16 << 30,
		SharedMemPerSMBytes: 96 << 10,
		MemBandwidthBps:     900e9,
		MaxThreadsPerSM:     2048,
		WarpSize:            32,
		LaunchOverhead:      5 * time.Microsecond,
	}
}

// TotalLanes is the number of scalar execution lanes on the device.
func (d *Device) TotalLanes() int { return d.SMs * d.CoresPerSM }

// LaneCyclesPerSecond is the device's aggregate cycle budget.
func (d *Device) LaneCyclesPerSecond() float64 {
	return float64(d.TotalLanes()) * d.ClockHz
}

// CPUModel describes a host CPU for the baseline and client-side models.
type CPUModel struct {
	// Name is a human-readable CPU name.
	Name string
	// Cores is the number of physical cores.
	Cores int
	// ClockHz is the sustained all-core clock.
	ClockHz float64
	// ThreadScaling is the parallel efficiency at full thread count
	// (memory-bandwidth and turbo effects make it < 1).
	ThreadScaling float64
	// DenseGFLOPS is the achievable dense-math throughput used to model
	// on-device DNN inference latency.
	DenseGFLOPS float64
}

// XeonGold6230 returns the model of the paper's server CPU baseline
// (Intel Xeon Gold 6230, 28 cores @ 2.10 GHz, AES-NI).
func XeonGold6230() *CPUModel {
	return &CPUModel{
		Name:          "Intel Xeon Gold 6230 (28C @ 2.10GHz)",
		Cores:         28,
		ClockHz:       2.1e9,
		ThreadScaling: 0.63, // Table 4: 638ms -> 36ms on 32 threads
		DenseGFLOPS:   900,
	}
}

// IntelCorei3 returns the model of the paper's client device (§5.3: key
// generation and on-device DNN inference are measured on a single Intel
// Core i3 core).
func IntelCorei3() *CPUModel {
	return &CPUModel{
		Name:          "Intel Core i3 (client, 1 core)",
		Cores:         1,
		ClockHz:       3.0e9,
		ThreadScaling: 1.0,
		DenseGFLOPS:   8, // single scalar-ish core for a small MLP
	}
}

// CPUTime models the wall time of work costing the given cycles spread over
// `threads` threads on this CPU (threads beyond Cores do not help).
func (c *CPUModel) CPUTime(cycles float64, threads int) time.Duration {
	if threads < 1 {
		threads = 1
	}
	eff := 1.0
	if threads > 1 {
		// Linear interpolation of efficiency between 1 thread and full
		// subscription.
		span := float64(c.Cores - 1)
		if span > 0 {
			frac := float64(threads-1) / span
			if frac > 1 {
				frac = 1
			}
			eff = 1 - (1-c.ThreadScaling)*frac
		}
	}
	useful := float64(min(threads, c.Cores)) * eff
	secs := cycles / (c.ClockHz * useful)
	return time.Duration(secs * float64(time.Second))
}

// DenseInferTime models dense-model (MLP/LSTM cell) inference latency from
// a FLOP count.
func (c *CPUModel) DenseInferTime(flops float64) time.Duration {
	return time.Duration(flops / (c.DenseGFLOPS * 1e9) * float64(time.Second))
}
