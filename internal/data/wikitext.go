package data

import (
	"fmt"
	"math/rand"
)

// LMConfig parameterizes the WikiText-2 stand-in corpus.
type LMConfig struct {
	// Vocab is the word-embedding table size (paper: ≈33K distinct tokens
	// in WikiText-2; Table 1 lists the 131K-row embedding variant).
	Vocab int
	// TrainTokens and TestTokens are the split lengths.
	TrainTokens, TestTokens int
	// ZipfS is the unigram skew.
	ZipfS float64
	// BigramFollow is the probability the next token comes from the
	// current token's successor set rather than the unigram distribution —
	// the co-occurrence structure co-location exploits.
	BigramFollow float64
	// Succ is the successor-set size per token.
	Succ int
	// Seed makes generation deterministic.
	Seed int64
}

// WikiText2Config is the default stand-in, scaled (scale 1 ≈ the real
// vocabulary).
func WikiText2Config(scale float64) LMConfig {
	v := int(33000 * scale)
	if v < 32 {
		v = 32
	}
	return LMConfig{
		Vocab:        v,
		TrainTokens:  8000,
		TestTokens:   2000,
		ZipfS:        1.1,
		BigramFollow: 0.7,
		Succ:         3,
		Seed:         3,
	}
}

// LMDataset is a generated corpus.
type LMDataset struct {
	Config      LMConfig
	Train, Test []int
}

// GenLM generates a corpus with Zipf unigrams and deterministic per-word
// successor sets (a simple learnable bigram process).
func GenLM(cfg LMConfig) (*LMDataset, error) {
	if cfg.Vocab < 8 {
		return nil, fmt.Errorf("data: vocab %d too small", cfg.Vocab)
	}
	if cfg.TrainTokens < 2 || cfg.TestTokens < 2 {
		return nil, fmt.Errorf("data: token counts must be >= 2")
	}
	if cfg.Succ < 1 {
		return nil, fmt.Errorf("data: Succ must be >= 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := func(n int) []int {
		zipf := NewZipf(rng, cfg.ZipfS, cfg.Vocab)
		out := make([]int, n)
		cur := int(zipf.Draw())
		for i := range out {
			out[i] = cur
			if rng.Float64() < cfg.BigramFollow {
				k := rng.Intn(cfg.Succ) + 1
				cur = successor(cfg, cur, k)
			} else {
				cur = int(zipf.Draw())
			}
		}
		return out
	}
	return &LMDataset{
		Config: cfg,
		Train:  gen(cfg.TrainTokens),
		Test:   gen(cfg.TestTokens),
	}, nil
}

// successor is the deterministic bigram structure: the k-th successor of w.
func successor(cfg LMConfig, w, k int) int {
	return (w*7 + k*13 + 1) % cfg.Vocab
}

// Traces slices a split into per-inference lookup sets: a next-word
// prediction needs the embeddings of the distinct tokens in its context
// window.
func (d *LMDataset) Traces(window int, train bool) [][]uint64 {
	src := d.Test
	if train {
		src = d.Train
	}
	if window < 1 {
		window = 1
	}
	var out [][]uint64
	for off := 0; off+window <= len(src); off += window {
		seen := map[int]bool{}
		var trace []uint64
		for _, tok := range src[off : off+window] {
			if !seen[tok] {
				seen[tok] = true
				trace = append(trace, uint64(tok))
			}
		}
		out = append(out, trace)
	}
	return out
}
