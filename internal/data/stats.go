package data

import "sort"

// Freq counts how often each index appears across traces; the hot-table
// preprocessing consumes this.
func Freq(traces [][]uint64, items int) []int64 {
	counts := make([]int64, items)
	for _, tr := range traces {
		for _, idx := range tr {
			if idx < uint64(items) {
				counts[idx]++
			}
		}
	}
	return counts
}

// TopK returns the k most frequent indices, most frequent first (ties
// broken by index for determinism).
func TopK(counts []int64, k int) []uint64 {
	idx := make([]uint64, len(counts))
	for i := range idx {
		idx[i] = uint64(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		if counts[idx[a]] != counts[idx[b]] {
			return counts[idx[a]] > counts[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// Cooccur counts, for each index, how often every other index appears in
// the same trace, returning the top-C companions per index. Pair counting
// is capped per trace (each unordered pair once), matching the co-location
// profiling of §4.2.
func Cooccur(traces [][]uint64, items, c int) [][]uint64 {
	counts := make([]map[uint64]int64, items)
	for _, tr := range traces {
		for i := 0; i < len(tr); i++ {
			for j := i + 1; j < len(tr); j++ {
				a, b := tr[i], tr[j]
				if a == b || a >= uint64(items) || b >= uint64(items) {
					continue
				}
				if counts[a] == nil {
					counts[a] = map[uint64]int64{}
				}
				if counts[b] == nil {
					counts[b] = map[uint64]int64{}
				}
				counts[a][b]++
				counts[b][a]++
			}
		}
	}
	out := make([][]uint64, items)
	for i := range out {
		m := counts[i]
		if len(m) == 0 {
			continue
		}
		comp := make([]uint64, 0, len(m))
		for k := range m {
			comp = append(comp, k)
		}
		sort.Slice(comp, func(a, b int) bool {
			if m[comp[a]] != m[comp[b]] {
				return m[comp[a]] > m[comp[b]]
			}
			return comp[a] < comp[b]
		})
		if len(comp) > c {
			comp = comp[:c]
		}
		out[i] = comp
	}
	return out
}

// ZipfSkew is a crude check that counts follow a heavy-tailed law: the
// fraction of total mass held by the top 10% of indices.
func ZipfSkew(counts []int64) float64 {
	sorted := make([]int64, len(counts))
	copy(sorted, counts)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
	var total, top int64
	cut := len(sorted) / 10
	if cut < 1 {
		cut = 1
	}
	for i, v := range sorted {
		total += v
		if i < cut {
			top += v
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}
