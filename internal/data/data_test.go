package data

import (
	"math/rand"
	"testing"
)

func TestTable1Inventory(t *testing.T) {
	specs := Table1()
	if len(specs) != 6 {
		t.Fatalf("Table 1 has %d rows, want 6", len(specs))
	}
	// Criteo 1TB: >476 GB per the paper.
	if gb := float64(specs[0].TableBytes()) / (1 << 30); gb < 476 {
		t.Errorf("Criteo 1TB table = %.0f GB, paper says >476 GB", gb)
	}
	// MovieLens: ~3 MB.
	if mb := float64(specs[5].TableBytes()) / (1 << 20); mb < 2 || mb > 4 {
		t.Errorf("MovieLens table = %.1f MB, paper says ≈3 MB", mb)
	}
}

func TestRealWorldModel(t *testing.T) {
	feats := RealWorldModel()
	if len(feats) != 5 {
		t.Fatalf("Table 2 has %d features, want 5", len(feats))
	}
	// Row 2: 20M entries × 144B = 2.68 GB.
	gb := float64(feats[1].Entries) * RealWorldEntryBytes / 1e9
	if gb < 2.5 || gb > 3.1 {
		t.Errorf("feature 2 table = %.2f GB, paper says 2.68 GB", gb)
	}
}

func TestGenRecShape(t *testing.T) {
	cfg := MovieLensConfig(0.01)
	cfg.Train, cfg.Test = 300, 100
	d, err := GenRec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Train) != 300 || len(d.Test) != 100 {
		t.Fatalf("split sizes %d/%d", len(d.Train), len(d.Test))
	}
	for _, s := range d.Train {
		if len(s.History) != cfg.HistoryLen {
			t.Fatalf("history len %d, want %d", len(s.History), cfg.HistoryLen)
		}
		for _, idx := range s.History {
			if idx >= uint64(cfg.Items) {
				t.Fatalf("history index %d out of range", idx)
			}
		}
		if s.Candidate < 0 || s.Candidate >= cfg.Candidates {
			t.Fatalf("candidate %d out of range", s.Candidate)
		}
		if s.Label != 0 && s.Label != 1 {
			t.Fatalf("label %g not binary", s.Label)
		}
	}
}

func TestGenRecDeterministic(t *testing.T) {
	cfg := TaobaoConfig(0.001)
	cfg.Train, cfg.Test = 50, 20
	a, err := GenRec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenRec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train {
		if a.Train[i].Candidate != b.Train[i].Candidate || a.Train[i].Label != b.Train[i].Label {
			t.Fatal("same seed produced different data")
		}
		for j := range a.Train[i].History {
			if a.Train[i].History[j] != b.Train[i].History[j] {
				t.Fatal("same seed produced different histories")
			}
		}
	}
}

func TestGenRecValidation(t *testing.T) {
	bad := RecConfig{Items: 4, Genres: 8, HistoryLen: 1, Train: 1, Test: 1}
	if _, err := GenRec(bad); err == nil {
		t.Error("Items < Genres accepted")
	}
	bad2 := MovieLensConfig(0.01)
	bad2.Train = 0
	if _, err := GenRec(bad2); err == nil {
		t.Error("zero train samples accepted")
	}
}

// TestRecPopularityIsZipf: the generated access pattern must be heavy
// tailed — the property the hot table exploits.
func TestRecPopularityIsZipf(t *testing.T) {
	cfg := MovieLensConfig(0.02)
	cfg.Train = 1500
	d, err := GenRec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := Freq(d.Traces(true), cfg.Items)
	if skew := ZipfSkew(counts); skew < 0.5 {
		t.Errorf("top-10%% mass = %.2f, want heavy tail > 0.5", skew)
	}
}

// TestRecTemporalLocality: consecutive samples of one user share most of
// their history (§2.3's caching premise).
func TestRecTemporalLocality(t *testing.T) {
	cfg := MovieLensConfig(0.02)
	cfg.SessionLen = 5
	d, err := GenRec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shared, pairs := 0, 0
	for i := 1; i < len(d.Train); i++ {
		if d.Train[i].User != d.Train[i-1].User {
			continue
		}
		prev := map[uint64]bool{}
		for _, idx := range d.Train[i-1].History {
			prev[idx] = true
		}
		for _, idx := range d.Train[i].History {
			if prev[idx] {
				shared++
			}
		}
		pairs += len(d.Train[i].History)
	}
	if pairs == 0 {
		t.Fatal("no intra-session pairs generated")
	}
	if frac := float64(shared) / float64(pairs); frac < 0.9 {
		t.Errorf("intra-session history overlap %.2f, want > 0.9", frac)
	}
}

func TestGenLM(t *testing.T) {
	cfg := WikiText2Config(0.01)
	d, err := GenLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Train) != cfg.TrainTokens || len(d.Test) != cfg.TestTokens {
		t.Fatal("wrong split sizes")
	}
	for _, tok := range d.Train {
		if tok < 0 || tok >= cfg.Vocab {
			t.Fatalf("token %d out of range", tok)
		}
	}
	// Bigram structure: successors of a token should be far more likely
	// than chance.
	follow := 0
	for i := 1; i < len(d.Train); i++ {
		w := d.Train[i-1]
		for k := 1; k <= cfg.Succ; k++ {
			if d.Train[i] == successor(cfg, w, k) {
				follow++
				break
			}
		}
	}
	if frac := float64(follow) / float64(len(d.Train)-1); frac < 0.5 {
		t.Errorf("successor-follow rate %.2f, want > 0.5 (BigramFollow=%.2f)", frac, cfg.BigramFollow)
	}
	if _, err := GenLM(LMConfig{Vocab: 2, TrainTokens: 10, TestTokens: 10, Succ: 1}); err == nil {
		t.Error("tiny vocab accepted")
	}
}

func TestLMTraces(t *testing.T) {
	cfg := WikiText2Config(0.01)
	d, err := GenLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traces := d.Traces(16, false)
	if len(traces) != cfg.TestTokens/16 {
		t.Errorf("%d traces, want %d", len(traces), cfg.TestTokens/16)
	}
	for _, tr := range traces {
		seen := map[uint64]bool{}
		for _, idx := range tr {
			if seen[idx] {
				t.Fatal("trace contains duplicates")
			}
			seen[idx] = true
		}
		if len(tr) == 0 || len(tr) > 16 {
			t.Fatalf("trace size %d out of range", len(tr))
		}
	}
}

func TestFreqAndTopK(t *testing.T) {
	traces := [][]uint64{{0, 1, 1}, {1, 2}, {1}}
	counts := Freq(traces, 4)
	want := []int64{1, 4, 1, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
	top := TopK(counts, 2)
	if top[0] != 1 {
		t.Errorf("TopK[0] = %d, want 1", top[0])
	}
	if len(TopK(counts, 100)) != 4 {
		t.Error("TopK should clamp k to len")
	}
}

func TestCooccur(t *testing.T) {
	traces := [][]uint64{{0, 1, 2}, {0, 1}, {0, 1}, {0, 3}}
	co := Cooccur(traces, 4, 2)
	if len(co[0]) != 2 || co[0][0] != 1 {
		t.Errorf("co[0] = %v, want [1 ...]", co[0])
	}
	if len(co[3]) != 1 || co[3][0] != 0 {
		t.Errorf("co[3] = %v, want [0]", co[3])
	}
	// Index beyond items and self-pairs are ignored.
	co2 := Cooccur([][]uint64{{5, 5, 9}}, 4, 2)
	for i := range co2 {
		if len(co2[i]) != 0 {
			t.Error("out-of-range indices should not produce companions")
		}
	}
}

func TestZipfSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 1.2, 100)
	counts := make([]int64, 100)
	for i := 0; i < 10000; i++ {
		v := z.Draw()
		if v >= 100 {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] < counts[50] {
		t.Error("Zipf head should dominate the tail")
	}
}
