// Package data generates the synthetic stand-ins for the paper's
// evaluation datasets (MovieLens-20M, Taobao ads, WikiText-2) and the
// real-world recommendation model of Table 2. Real datasets are not
// available offline; per DESIGN.md the generators reproduce the two
// properties the PIR+ML co-design results depend on:
//
//  1. power-law (Zipf) index popularity — what the frequency-based hot
//     table exploits, and
//  2. intra-inference co-occurrence (genre/topic structure) — what
//     embedding co-location exploits,
//
// plus the per-application shape parameters the paper reports (vocabulary
// sizes, entry sizes, average lookups per inference, and how much of the
// label signal flows through the sparse features).
package data

import "math/rand"

// Zipf draws from a Zipf distribution over [0, n) with exponent s > 1.
type Zipf struct{ z *rand.Zipf }

// NewZipf builds a sampler. Smaller s → heavier tail.
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Draw samples one index.
func (z *Zipf) Draw() uint64 { return z.z.Uint64() }

// TableSpec is one row of the paper's Table 1 embedding-table inventory.
type TableSpec struct {
	// Name is the application.
	Name string
	// Entries is the row count; EntryBytes the row size.
	Entries    int64
	EntryBytes int
}

// TableBytes is the total table size.
func (t TableSpec) TableBytes() int64 { return t.Entries * int64(t.EntryBytes) }

// Table1 reproduces the paper's Table 1 inventory.
func Table1() []TableSpec {
	return []TableSpec{
		{"Criteo 1TB Rec.", 4_000_000_000, 128},
		{"Criteo Rec.", 45_000_000, 128},
		{"FastText Emb. (Language Model)", 2_000_000, 1024},
		{"Taobao Rec.", 900_000, 128},
		{"WikiText2 (Language Model)", 131_000, 512},
		{"Movielens-20M Rec.", 27_000, 128},
	}
}

// RealWorldFeature is one device-only sparse feature of the paper's
// real-world recommendation model (Table 2; entries are 144 bytes).
type RealWorldFeature struct {
	// Entries is the embedding-table row count.
	Entries int
	// AvgQueries is the mean lookups per inference.
	AvgQueries float64
}

// RealWorldEntryBytes is the Table 2 entry size.
const RealWorldEntryBytes = 144

// RealWorldModel reproduces Table 2's five device-only features.
func RealWorldModel() []RealWorldFeature {
	return []RealWorldFeature{
		{7_614_589, 13.9},
		{20_000_000, 47.3},
		{20_000_000, 25.7},
		{2_989_943, 3.2},
		{20_000_000, 14.9},
	}
}

// RealWorldNewFeatureRate is the measured fraction of sparse features per
// inference not already cached on the client (§2.3: 2.44%).
const RealWorldNewFeatureRate = 0.0244
