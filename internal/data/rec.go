package data

import (
	"fmt"
	"math/rand"

	"gpudpf/internal/ml"
)

// RecSample is one recommendation inference: the user's recent-interaction
// history (the sparse lookups PIR protects), a candidate item, dense
// context features, and the click label.
type RecSample struct {
	// User groups consecutive samples into sessions (temporal locality).
	User int
	// History are the protected embedding-table indices.
	History []uint64
	// Candidate is the item being ranked (its embedding is on-device).
	Candidate int
	// CandGenre is the candidate's genre — a public item attribute the
	// on-device model receives alongside the candidate (server-provided
	// candidates come with metadata; §2.1).
	CandGenre int
	// Dense are non-private context features.
	Dense []float64
	// Label is 1 for a click.
	Label float64
}

// RecConfig parameterizes a synthetic recommendation dataset.
type RecConfig struct {
	// Name labels the dataset in reports.
	Name string
	// Items is the protected table's row count.
	Items int
	// Genres is the co-occurrence cluster count.
	Genres int
	// Candidates is the on-device candidate-item vocabulary.
	Candidates int
	// HistoryLen is the lookups per inference (paper: MovieLens ≈72,
	// Taobao ≈2.68).
	HistoryLen int
	// DenseDim is the dense feature width.
	DenseDim int
	// DenseSignal ∈ [0,1] is the fraction of label signal carried by the
	// dense features rather than the sparse history. The paper observes
	// Taobao's sparse features are only a fraction of its inputs, which is
	// why co-design helps it least (Figure 20); high DenseSignal
	// reproduces that.
	DenseSignal float64
	// ZipfS is the popularity skew (smaller = heavier tail).
	ZipfS float64
	// Train and Test are the sample counts.
	Train, Test int
	// SessionLen is how many consecutive samples share a user's history
	// (drives the §2.3 temporal-locality cache experiments).
	SessionLen int
	// Seed makes generation deterministic.
	Seed int64
}

// MovieLensConfig is the MovieLens-20M stand-in, scaled by a factor so
// tests can run small (scale 1 matches the paper's ≈27K-entry table).
func MovieLensConfig(scale float64) RecConfig {
	return RecConfig{
		Name:        "movielens",
		Items:       max(64, int(27000*scale)),
		Genres:      max(4, int(20*scale)),
		Candidates:  max(16, int(2000*scale)),
		HistoryLen:  72,
		DenseDim:    0, // paper: inputs are entirely sparse features
		DenseSignal: 0,
		ZipfS:       1.2,
		Train:       2000,
		Test:        600,
		SessionLen:  4,
		Seed:        1,
	}
}

// TaobaoConfig is the Taobao ads stand-in (≈900K entries at scale 1; very
// few sparse lookups per inference and dense-dominated labels).
func TaobaoConfig(scale float64) RecConfig {
	return RecConfig{
		Name:        "taobao",
		Items:       max(64, int(900000*scale)),
		Genres:      max(4, int(40*scale)),
		Candidates:  max(16, int(4000*scale)),
		HistoryLen:  3, // paper: 2.68 average queries per inference
		DenseDim:    8,
		DenseSignal: 0.85,
		ZipfS:       1.15,
		Train:       2000,
		Test:        600,
		SessionLen:  4,
		Seed:        2,
	}
}

// RecDataset is a generated dataset plus the ground-truth structure the
// co-design preprocessing is allowed to learn from the *training* split.
type RecDataset struct {
	Config      RecConfig
	Train, Test []RecSample
}

// GenRec generates a dataset: items are clustered into genres with
// Zipf-popular items inside each genre; a user has a preferred genre, their
// history concentrates in it, and the label is genre affinity mixed with
// dense signal per DenseSignal.
func GenRec(cfg RecConfig) (*RecDataset, error) {
	if cfg.Items < cfg.Genres || cfg.Genres < 2 {
		return nil, fmt.Errorf("data: need Items >= Genres >= 2, got %d/%d", cfg.Items, cfg.Genres)
	}
	if cfg.HistoryLen < 1 || cfg.Train < 1 || cfg.Test < 1 {
		return nil, fmt.Errorf("data: invalid counts in %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &RecDataset{Config: cfg}
	d.Train = genRecSplit(cfg, rng, cfg.Train, 0)
	d.Test = genRecSplit(cfg, rng, cfg.Test, 1<<30)
	return d, nil
}

// CandidateGenre maps a candidate item to its genre.
func CandidateGenre(cfg RecConfig, cand int) int { return cand % cfg.Genres }

// itemGenre maps an item to its genre: genres own contiguous index ranges,
// which is deliberately *not* what co-location produces (co-location must
// earn its win by re-grouping by observed co-occurrence, and hot-table
// splitting by observed frequency).
func itemGenre(cfg RecConfig, item uint64) int {
	per := cfg.Items / cfg.Genres
	g := int(item) / per
	if g >= cfg.Genres {
		g = cfg.Genres - 1
	}
	return g
}

func genRecSplit(cfg RecConfig, rng *rand.Rand, n, userBase int) []RecSample {
	perGenre := cfg.Items / cfg.Genres
	// In-genre popularity is Zipf over the genre's items.
	zipf := NewZipf(rng, cfg.ZipfS, perGenre)
	genreItem := func(g int) uint64 {
		return uint64(g*perGenre) + zipf.Draw()
	}
	sessionLen := cfg.SessionLen
	if sessionLen < 1 {
		sessionLen = 1
	}
	samples := make([]RecSample, 0, n)
	user := userBase
	for len(samples) < n {
		user++
		g := rng.Intn(cfg.Genres)
		// Session seed history: mostly preferred-genre items.
		hist := make([]uint64, cfg.HistoryLen)
		for i := range hist {
			if rng.Float64() < 0.8 {
				hist[i] = genreItem(g)
			} else {
				hist[i] = genreItem(rng.Intn(cfg.Genres))
			}
		}
		for s := 0; s < sessionLen && len(samples) < n; s++ {
			if s > 0 {
				// Temporal locality: one history slot changes per step.
				hist[rng.Intn(len(hist))] = genreItem(g)
			}
			cand := rng.Intn(cfg.Candidates)
			candGenre := CandidateGenre(cfg, cand)
			genreScore := -1.5
			if candGenre == g {
				genreScore = 1.5
			}
			dense := make([]float64, cfg.DenseDim)
			for i := range dense {
				dense[i] = rng.NormFloat64()
			}
			denseScore := 0.0
			if cfg.DenseDim > 0 {
				denseScore = 2 * dense[0]
			}
			p := ml.Sigmoid((1-cfg.DenseSignal)*genreScore + cfg.DenseSignal*denseScore)
			label := 0.0
			if rng.Float64() < p {
				label = 1
			}
			h := make([]uint64, len(hist))
			copy(h, hist)
			samples = append(samples, RecSample{
				User: user, History: h, Candidate: cand, CandGenre: candGenre,
				Dense: dense, Label: label,
			})
		}
	}
	return samples
}

// Traces returns the per-inference protected-index sets of a split, the
// input to frequency and co-occurrence profiling.
func (d *RecDataset) Traces(train bool) [][]uint64 {
	src := d.Test
	if train {
		src = d.Train
	}
	out := make([][]uint64, len(src))
	for i, s := range src {
		out[i] = s.History
	}
	return out
}
