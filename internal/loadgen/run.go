package loadgen

import (
	"errors"
	"sort"
	"sync"
	"time"

	"gpudpf/internal/engine"
	"gpudpf/internal/serving"
)

// Target is one connection's worth of serving surface the runner drives:
// *pir.Remote over TCP, or an in-process front in tests.
type Target interface {
	Answer(keys [][]byte) ([][]uint32, error)
	UpdateBatch(writes []engine.RowWrite) (uint64, error)
}

// StatsTarget optionally reports server-side serving stats; when the
// first target has it, Run snapshots stats before and after the drive and
// reports the deltas (sheds and epoch retries attributable to this run).
type StatsTarget interface {
	Stats() (serving.Stats, error)
}

// RunConfig wires a schedule to live targets.
type RunConfig struct {
	// Targets is the connection pool; ops are assigned round-robin. Each
	// target serializes its own requests, so the pool size is the
	// client-side concurrency limit.
	Targets []Target
	// UpdateTargets, when set, is a separate pool for update ops. Updates
	// bypass the server's read batcher, but a shared connection still
	// serializes them behind whatever read is in flight on it; a dedicated
	// pool keeps the measured update path free of that head-of-line
	// blocking. Empty means updates share Targets.
	UpdateTargets []Target
	// Schedule is the expanded workload (see Schedule).
	Schedule []Op
	// KeyFor marshals the PIR key to send for a read of row (the caller
	// owns key generation so the runner stays protocol-agnostic).
	KeyFor func(row uint64) []byte
	// WritesFor expands an update op into its row batch.
	WritesFor func(op Op) []engine.RowWrite
}

// Counts classifies request outcomes.
type Counts struct {
	// OK answers arrived intact.
	OK uint64 `json:"ok"`
	// Shed requests were refused by admission control
	// (serving.ErrOverloaded over the wire) — expected past saturation,
	// so they are not Errors.
	Shed uint64 `json:"shed"`
	// Errors is everything else (transport faults, server faults).
	Errors uint64 `json:"errors"`
}

// Latency holds the accepted-request latency distribution in
// milliseconds, measured from each op's scheduled arrival.
type Latency struct {
	P50  float64 `json:"p50_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
}

// Report is what a run measured — the core of the BENCH_serving.json
// artifact.
type Report struct {
	// OfferedQPS is the schedule's arrival rate; AchievedQPS counts only
	// OK completions against the wall-clock the run actually took. Their
	// ratio is the regression gate's throughput signal.
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	Latency     Latency `json:"latency"`
	Counts      Counts  `json:"counts"`
	// EpochRetries is the server's mixed-epoch re-fan delta across the
	// run (0 when the target reports no stats).
	EpochRetries uint64 `json:"epoch_retries"`
	// ServerStats is the post-run server stats snapshot, when available.
	ServerStats *serving.Stats `json:"server_stats,omitempty"`
	// Elapsed is the wall-clock the drive took, scheduled start to last
	// completion.
	Elapsed time.Duration `json:"elapsed_ns"`
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeShed
	outcomeErr
)

// Run replays the schedule open-loop: a dispatcher releases each op at
// its scheduled offset regardless of how many are still in flight, and
// each op's latency runs from that offset to its completion. Arrivals
// never wait for completions — the defining property that lets the run
// observe queueing collapse instead of masking it.
func Run(cfg RunConfig) (Report, error) {
	var rep Report
	if len(cfg.Targets) == 0 {
		return rep, errors.New("loadgen: no targets")
	}
	if len(cfg.Schedule) == 0 {
		return rep, errors.New("loadgen: empty schedule")
	}
	if cfg.KeyFor == nil {
		return rep, errors.New("loadgen: nil KeyFor")
	}

	var before serving.Stats
	statsSrc, hasStats := cfg.Targets[0].(StatsTarget)
	if hasStats {
		s, err := statsSrc.Stats()
		if err != nil {
			hasStats = false
		} else {
			before = s
		}
	}

	updateTargets := cfg.UpdateTargets
	if len(updateTargets) == 0 {
		updateTargets = cfg.Targets
	}

	latencies := make([]time.Duration, len(cfg.Schedule))
	outcomes := make([]outcome, len(cfg.Schedule))
	var wg sync.WaitGroup
	start := time.Now()
	for i, op := range cfg.Schedule {
		if d := time.Until(start.Add(op.At)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, op Op) {
			defer wg.Done()
			var err error
			if op.Update && cfg.WritesFor != nil {
				t := updateTargets[i%len(updateTargets)]
				_, err = t.UpdateBatch(cfg.WritesFor(op))
			} else {
				t := cfg.Targets[i%len(cfg.Targets)]
				_, err = t.Answer([][]byte{cfg.KeyFor(op.Row)})
			}
			// Open-loop latency: from the op's SCHEDULED arrival, so
			// time spent queued behind a busy connection or a saturated
			// server is charged to the server, not silently absorbed.
			latencies[i] = time.Since(start.Add(op.At))
			switch {
			case err == nil:
				outcomes[i] = outcomeOK
			case errors.Is(err, serving.ErrOverloaded):
				outcomes[i] = outcomeShed
			default:
				outcomes[i] = outcomeErr
			}
		}(i, op)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	okLat := make([]time.Duration, 0, len(latencies))
	for i := range outcomes {
		switch outcomes[i] {
		case outcomeOK:
			rep.Counts.OK++
			okLat = append(okLat, latencies[i])
		case outcomeShed:
			rep.Counts.Shed++
		default:
			rep.Counts.Errors++
		}
	}
	last := cfg.Schedule[len(cfg.Schedule)-1].At
	if last > 0 {
		rep.OfferedQPS = float64(len(cfg.Schedule)) / last.Seconds()
	}
	if rep.Elapsed > 0 {
		rep.AchievedQPS = float64(rep.Counts.OK) / rep.Elapsed.Seconds()
	}
	rep.Latency = Latency{
		P50:  percentileMs(okLat, 0.50),
		P95:  percentileMs(okLat, 0.95),
		P99:  percentileMs(okLat, 0.99),
		P999: percentileMs(okLat, 0.999),
	}
	if hasStats {
		if after, err := statsSrc.Stats(); err == nil {
			rep.EpochRetries = after.EpochRetries - before.EpochRetries
			rep.ServerStats = &after
		}
	}
	return rep, nil
}

// percentileMs returns the q-quantile of lat in milliseconds (0 for an
// empty sample). lat is sorted in place.
func percentileMs(lat []time.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := int(q*float64(len(lat))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return float64(lat[idx]) / float64(time.Millisecond)
}
