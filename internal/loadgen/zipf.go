package loadgen

import (
	"math"
	"math/rand/v2"
)

// zipf draws Zipf-distributed values on [0, imax]: P(k) ∝ 1/(v+k)^s with
// s > 1, v ≥ 1 — the standard skewed-popularity model for key-value
// workloads (a few hot rows take most of the traffic, the tail is long).
//
// math/rand/v2 dropped the v1 Zipf type, so this reimplements the same
// rejection-inversion method (Hörmann & Derflinger, "Rejection-inversion
// to generate variates from monotone discrete distributions", 1996) over
// a v2 generator: invert the integral H of the density's upper bound to
// propose a point, accept by comparing against the true mass. Constant
// expected draws per sample, no per-element tables, so a billion-row
// domain costs the same as a thousand-row one.
type zipf struct {
	r    *rand.Rand
	imax float64
	v    float64
	s    float64

	oneMinusS    float64
	oneMinusSInv float64
	hImax        float64
	hX0MinusHMax float64
	cut          float64
}

// h is the transformed integral H(x) = (v+x)^(1-s)/(1-s) of the
// dominating density.
func (z *zipf) h(x float64) float64 {
	return math.Exp(z.oneMinusS*math.Log(z.v+x)) * z.oneMinusSInv
}

// hInv inverts h.
func (z *zipf) hInv(x float64) float64 {
	return math.Exp(z.oneMinusSInv*math.Log(z.oneMinusS*x)) - z.v
}

// newZipf builds the sampler. s must be > 1 and v ≥ 1 (the method's
// domain); returns nil otherwise.
func newZipf(r *rand.Rand, s, v float64, imax uint64) *zipf {
	if s <= 1 || v < 1 {
		return nil
	}
	z := &zipf{r: r, imax: float64(imax), v: v, s: s}
	z.oneMinusS = 1 - s
	z.oneMinusSInv = 1 / z.oneMinusS
	z.hImax = z.h(z.imax + 0.5)
	z.hX0MinusHMax = z.h(0.5) - math.Exp(-s*math.Log(v)) - z.hImax
	z.cut = 1 - z.hInv(z.h(1.5)-math.Exp(-s*math.Log(v+1)))
	return z
}

// draw returns the next Zipf variate in [0, imax].
func (z *zipf) draw() uint64 {
	for {
		u := z.hImax + z.r.Float64()*z.hX0MinusHMax
		x := z.hInv(u)
		k := math.Floor(x + 0.5)
		// Inside the uniform-acceptance band every proposal is exact;
		// outside it, accept by the true mass at k.
		if k-x <= z.cut {
			return uint64(k)
		}
		if u >= z.h(k+0.5)-math.Exp(-z.s*math.Log(k+z.v)) {
			return uint64(k)
		}
	}
}
