package loadgen

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Seed:       42,
		Clients:    1_000_000,
		Rows:       1 << 20,
		ZipfS:      1.2,
		QPS:        5000,
		Duration:   2 * time.Second,
		UpdateFrac: 0.05,
		UpdateRows: 4,
	}
}

// Same seed must expand to the byte-identical schedule: every client ID,
// row index, arrival offset, and the read/update interleave.
func TestScheduleDeterministic(t *testing.T) {
	cfg := testConfig()
	a, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules (%d vs %d ops)", len(a), len(b))
	}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("same schedule, different fingerprints")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
}

// A different seed must actually change the schedule (a fingerprint that
// ignores its input would pass the test above).
func TestScheduleSeedMatters(t *testing.T) {
	cfg := testConfig()
	a, _ := Schedule(cfg)
	cfg.Seed++
	b, _ := Schedule(cfg)
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// The schedule must respect its own knobs: arrival offsets sorted inside
// the duration, clients and rows in range, update fraction near
// UpdateFrac, op count near QPS·Duration.
func TestScheduleShape(t *testing.T) {
	cfg := testConfig()
	ops, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	expected := cfg.QPS * cfg.Duration.Seconds()
	if n := float64(len(ops)); n < 0.9*expected || n > 1.1*expected {
		t.Fatalf("op count %d far from expected %.0f", len(ops), expected)
	}
	updates := 0
	for i, op := range ops {
		if op.At < 0 || op.At >= cfg.Duration {
			t.Fatalf("op %d arrival %v outside [0, %v)", i, op.At, cfg.Duration)
		}
		if i > 0 && op.At < ops[i-1].At {
			t.Fatalf("op %d arrives before op %d", i, i-1)
		}
		if op.Client >= cfg.Clients {
			t.Fatalf("op %d client %d out of range", i, op.Client)
		}
		if op.Row >= cfg.Rows {
			t.Fatalf("op %d row %d out of range", i, op.Row)
		}
		if op.Update {
			updates++
		}
	}
	frac := float64(updates) / float64(len(ops))
	if frac < cfg.UpdateFrac/2 || frac > cfg.UpdateFrac*2 {
		t.Fatalf("update fraction %.3f far from configured %.3f", frac, cfg.UpdateFrac)
	}
}

// Chi-squared goodness-of-fit: the sampler's empirical distribution over
// a small domain must match the Zipf mass P(k) ∝ 1/(1+k)^s it claims.
// The tail is binned so every cell's expected count stays ≥ 5 (the usual
// chi-squared validity rule).
func TestZipfChiSquared(t *testing.T) {
	const (
		s       = 1.3
		imax    = 999 // domain [0, 999]
		samples = 200_000
	)
	r := rand.New(rand.NewPCG(7, 11))
	z := newZipf(r, s, 1, imax)
	if z == nil {
		t.Fatal("newZipf rejected valid parameters")
	}

	// True (normalized) mass.
	mass := make([]float64, imax+1)
	var norm float64
	for k := range mass {
		mass[k] = math.Pow(1+float64(k), -s)
		norm += mass[k]
	}
	for k := range mass {
		mass[k] /= norm
	}

	counts := make([]float64, imax+1)
	for i := 0; i < samples; i++ {
		k := z.draw()
		if k > imax {
			t.Fatalf("sample %d out of domain", k)
		}
		counts[k]++
	}

	// Bin: head values keep their own cell while expected ≥ 5; the rest
	// pool into one tail cell.
	var chi2 float64
	cells := 0
	var tailObs, tailExp float64
	for k := 0; k <= imax; k++ {
		exp := mass[k] * samples
		if exp >= 5 {
			d := counts[k] - exp
			chi2 += d * d / exp
			cells++
		} else {
			tailObs += counts[k]
			tailExp += exp
		}
	}
	if tailExp > 0 {
		d := tailObs - tailExp
		chi2 += d * d / tailExp
		cells++
	}
	df := float64(cells - 1)
	// Wilson–Hilferty: the 99.9% chi-squared critical value for df
	// degrees of freedom (z=3.09 on the cube-root normal approximation).
	crit := df * math.Pow(1-2/(9*df)+3.09*math.Sqrt(2/(9*df)), 3)
	if chi2 > crit {
		t.Fatalf("chi2 %.1f exceeds 99.9%% critical %.1f (df %.0f): sampler does not match Zipf(s=%g)",
			chi2, crit, df, s)
	}
	// And the distribution must actually be skewed: rank-0 mass near its
	// analytic share, not uniform.
	if counts[0] < 0.8*mass[0]*samples {
		t.Fatalf("rank-0 count %v far below Zipf expectation %v", counts[0], mass[0]*samples)
	}
}

// The sampler must reject the out-of-domain parameters rather than loop.
func TestZipfRejectsBadParams(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	if z := newZipf(r, 1.0, 1, 100); z != nil {
		t.Fatal("accepted s=1")
	}
	if z := newZipf(r, 1.5, 0.5, 100); z != nil {
		t.Fatal("accepted v<1")
	}
	if _, err := Schedule(Config{Seed: 1, Clients: 10, Rows: 10, ZipfS: 1.0, QPS: 10, Duration: time.Second}); err == nil {
		t.Fatal("Schedule accepted s=1")
	}
}
