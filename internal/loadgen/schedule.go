// Package loadgen generates and drives deterministic open-loop PIR
// workloads: a seeded PCG expands a small Config into a fixed request
// schedule (Zipf-skewed rows over a large client population, Poisson
// arrivals at a fixed offered rate, a read/update interleave), and Run
// replays that schedule against a serving target, measuring each request
// from its SCHEDULED arrival — not its send — so queueing anywhere in the
// path counts against the server, which is what open-loop means. The same
// seed always yields the byte-identical schedule, so a load measurement
// is reproducible the way the hot-path microbenchmarks are.
package loadgen

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"time"
)

// Config describes a workload; Schedule expands it deterministically.
type Config struct {
	// Seed fixes every random choice in the schedule (arrivals, clients,
	// rows, the read/update interleave). Same seed, same schedule.
	Seed uint64
	// Clients is the client-population size request origins are drawn
	// from (uniformly — population membership, not popularity).
	Clients uint64
	// Rows is the table's row count; requested rows are drawn Zipf-skewed
	// over [0, Rows).
	Rows uint64
	// ZipfS is the Zipf skew exponent (must be > 1; ~1.1 mild, 1.5 hot).
	ZipfS float64
	// QPS is the offered arrival rate (Poisson; the open-loop clock).
	QPS float64
	// Duration is how much schedule to generate.
	Duration time.Duration
	// UpdateFrac is the probability an op is a row-update instead of a
	// read (0 = read-only).
	UpdateFrac float64
	// UpdateRows is how many rows one update op writes (default 1).
	UpdateRows int
}

func (c Config) validate() error {
	if c.Clients == 0 || c.Rows == 0 {
		return errors.New("loadgen: Clients and Rows must be positive")
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("loadgen: ZipfS must be > 1 (got %g)", c.ZipfS)
	}
	if c.QPS <= 0 || c.Duration <= 0 {
		return errors.New("loadgen: QPS and Duration must be positive")
	}
	if c.UpdateFrac < 0 || c.UpdateFrac > 1 {
		return errors.New("loadgen: UpdateFrac must be in [0, 1]")
	}
	return nil
}

// Op is one scheduled request.
type Op struct {
	// At is the op's arrival offset from the start of the run — the
	// moment latency measurement starts, whether or not a connection was
	// free to carry it.
	At time.Duration
	// Client identifies the originating client in [0, Clients).
	Client uint64
	// Row is the requested (or for updates, first written) row.
	Row uint64
	// Update marks a row-update op; false is a read.
	Update bool
}

// scheduleStream derives the second PCG word so a seed of 0 still keys a
// well-mixed generator (splitmix64's increment).
const scheduleStream = 0x9e3779b97f4a7c15

// Schedule expands cfg into its full request schedule. The expansion is a
// pure function of cfg: every draw comes from one PCG in a fixed
// per-op order (arrival gap, client, row, read/update coin), so two calls
// with the same cfg yield byte-identical schedules on any platform.
func Schedule(cfg Config) ([]Op, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^scheduleStream))
	z := newZipf(r, cfg.ZipfS, 1, cfg.Rows-1)
	if z == nil {
		return nil, fmt.Errorf("loadgen: bad Zipf parameter s=%g", cfg.ZipfS)
	}
	var ops []Op
	var at time.Duration
	for {
		// Poisson arrivals: exponential gaps at rate QPS.
		at += time.Duration(r.ExpFloat64() / cfg.QPS * float64(time.Second))
		if at >= cfg.Duration {
			return ops, nil
		}
		op := Op{
			At:     at,
			Client: r.Uint64N(cfg.Clients),
			Row:    z.draw(),
		}
		if cfg.UpdateFrac > 0 {
			op.Update = r.Float64() < cfg.UpdateFrac
		}
		ops = append(ops, op)
	}
}

// Fingerprint hashes a schedule's exact byte content (FNV-1a over each
// op's fixed-width encoding). Equal fingerprints mean byte-identical
// schedules; the bench artifact records it so a regression run can prove
// it replayed the baseline's workload.
func Fingerprint(ops []Op) uint64 {
	h := fnv.New64a()
	var buf [25]byte
	for _, op := range ops {
		binary.LittleEndian.PutUint64(buf[0:], uint64(op.At))
		binary.LittleEndian.PutUint64(buf[8:], op.Client)
		binary.LittleEndian.PutUint64(buf[16:], op.Row)
		buf[24] = 0
		if op.Update {
			buf[24] = 1
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
