package shardnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"gpudpf/internal/engine"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

// RPC opcodes: the first body byte of every request, echoed in the
// response. opErr is response-only, for failures where no request op was
// ever parsed (an unreadable or oversized frame). 0x06+ are protocol v2:
// the epoch-versioned update path. 0x0b+ are protocol v3: the liveness
// probe and the snapshot-transfer (heal) path.
const (
	opAnswer      byte = 0x01
	opAnswerRange byte = 0x02
	opUpdate      byte = 0x03
	opShape       byte = 0x04
	opCounters    byte = 0x05
	opUpdateBatch byte = 0x06
	opEpoch       byte = 0x07
	opPrepare     byte = 0x08
	opCommit      byte = 0x09
	opAbort       byte = 0x0a
	opPing        byte = 0x0b
	opSnapMeta    byte = 0x0c
	opSnapChunk   byte = 0x0d
	opErr         byte = 0xff
)

// response status byte.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// ErrFrameTooLarge is the named protocol error for a frame whose declared
// length exceeds the connection's cap; it is raised before any payload
// allocation, and a node answers it with an error frame before hanging up.
var ErrFrameTooLarge = errors.New("shardnet: frame exceeds size cap")

// ErrProtocol is wrapped by every malformed-frame error, so transports can
// distinguish a broken peer from a failing backend.
var ErrProtocol = errors.New("shardnet: protocol error")

// writeFrame sends body as one length-prefixed frame: uint32 little-endian
// byte count, then the body. net.Buffers gathers header and body into one
// writev on a TCP conn (falling back to two writes elsewhere), so the
// steady-state serving loop's reused response buffer is never copied —
// connections are lockstep, so nothing interleaves between the two parts.
func writeFrame(w io.Writer, body []byte, max int) error {
	if len(body) > max {
		return fmt.Errorf("%w: %d-byte frame, cap %d", ErrFrameTooLarge, len(body), max)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	bufs := net.Buffers{hdr[:], body}
	_, err := bufs.WriteTo(w)
	return err
}

// readFrame reads one frame into *buf (grown as needed, reused across
// calls) and returns the body. A declared length over max fails with
// ErrFrameTooLarge before any allocation.
func readFrame(r io.Reader, max int, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	// Compare in uint64 BEFORE converting: on 32-bit platforms a hostile
	// length near 2^32 would wrap int negative and dodge the cap check
	// straight into a slice-bounds panic.
	declared := binary.LittleEndian.Uint32(hdr[:])
	if uint64(declared) > uint64(max) {
		return nil, fmt.Errorf("%w: peer declared a %d-byte frame, cap is %d", ErrFrameTooLarge, declared, max)
	}
	n := int(declared)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrProtocol)
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}

// wireReader is a bounds-checked cursor over one frame body.
type wireReader struct {
	b   []byte
	off int
	bad bool
}

func (r *wireReader) remaining() int { return len(r.b) - r.off }

func (r *wireReader) u8() byte {
	if r.off+1 > len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *wireReader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *wireReader) take(n int) []byte {
	if n < 0 || r.off+n > len(r.b) {
		r.bad = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// rpcRequest is one parsed request frame.
type rpcRequest struct {
	op     byte
	keys   [][]byte // Answer, AnswerRange; sub-slices of the frame buffer
	lo, hi uint64   // AnswerRange
	row    uint64   // Update
	vals   []uint32 // Update
	epoch  uint64   // Prepare, Commit, Abort, SnapChunk
	writes []engine.RowWrite // UpdateBatch, Prepare
	off    uint64   // SnapChunk: word offset into the held range
	max    uint32   // SnapChunk: word count cap for the reply
}

// appendKeys encodes a key batch: count, then length-prefixed key bytes.
func appendKeys(dst []byte, keys [][]byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(k)))
		dst = append(dst, k...)
	}
	return dst
}

// appendWrites encodes an update-write batch: count, then per write the
// row, lane count and values.
func appendWrites(dst []byte, writes []engine.RowWrite) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(writes)))
	for _, w := range writes {
		dst = binary.LittleEndian.AppendUint64(dst, w.Row)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(w.Vals)))
		for _, v := range w.Vals {
			dst = binary.LittleEndian.AppendUint32(dst, v)
		}
	}
	return dst
}

// appendRequest encodes req as a frame body.
func appendRequest(dst []byte, req *rpcRequest) []byte {
	dst = append(dst, req.op)
	switch req.op {
	case opAnswer:
		dst = appendKeys(dst, req.keys)
	case opAnswerRange:
		dst = binary.LittleEndian.AppendUint64(dst, req.lo)
		dst = binary.LittleEndian.AppendUint64(dst, req.hi)
		dst = appendKeys(dst, req.keys)
	case opUpdate:
		dst = binary.LittleEndian.AppendUint64(dst, req.row)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(req.vals)))
		for _, v := range req.vals {
			dst = binary.LittleEndian.AppendUint32(dst, v)
		}
	case opUpdateBatch:
		dst = appendWrites(dst, req.writes)
	case opPrepare:
		dst = binary.LittleEndian.AppendUint64(dst, req.epoch)
		dst = appendWrites(dst, req.writes)
	case opCommit, opAbort:
		dst = binary.LittleEndian.AppendUint64(dst, req.epoch)
	case opSnapChunk:
		dst = binary.LittleEndian.AppendUint64(dst, req.epoch)
		dst = binary.LittleEndian.AppendUint64(dst, req.off)
		dst = binary.LittleEndian.AppendUint32(dst, req.max)
	}
	return dst
}

// parseKeys decodes a key batch, with every declared count checked against
// the bytes actually present — and the caller's batch cap — BEFORE
// anything is allocated for it: a hostile frame of millions of zero-length
// keys must not buy a slice-header allocation bomb.
func parseKeys(r *wireReader, maxKeys int) ([][]byte, error) {
	count := r.u32()
	if r.bad {
		return nil, fmt.Errorf("%w: truncated key count", ErrProtocol)
	}
	// Each key costs at least its 4-byte length prefix, so a count beyond
	// remaining/4 is a lie regardless of content. Compare in uint64 so the
	// check cannot be dodged by a count that overflows int on 32-bit
	// platforms.
	if uint64(count) > uint64(r.remaining()/4)+1 {
		return nil, fmt.Errorf("%w: %d keys declared in a %d-byte frame", ErrProtocol, count, len(r.b))
	}
	if uint64(count) > uint64(maxKeys) {
		return nil, fmt.Errorf("%w: batch of %d keys exceeds the %d-key cap", ErrProtocol, count, maxKeys)
	}
	n := int(count)
	keys := make([][]byte, n)
	for i := range keys {
		kl := int(r.u32())
		keys[i] = r.take(kl)
		if r.bad {
			return nil, fmt.Errorf("%w: truncated key %d", ErrProtocol, i)
		}
	}
	return keys, nil
}

// parseWrites decodes an update-write batch with the same
// declared-vs-present discipline as parseKeys: every count is checked
// against the bytes actually in the frame BEFORE anything is allocated
// for it.
func parseWrites(r *wireReader) ([]engine.RowWrite, error) {
	count := r.u32()
	if r.bad {
		return nil, fmt.Errorf("%w: truncated write count", ErrProtocol)
	}
	// Each write costs at least its 12-byte row+lanes header, so a count
	// beyond remaining/12 is a lie regardless of content. uint64 math so
	// the check cannot be dodged on 32-bit platforms.
	if uint64(count) > uint64(r.remaining()/12)+1 {
		return nil, fmt.Errorf("%w: %d writes declared in a %d-byte frame", ErrProtocol, count, len(r.b))
	}
	writes := make([]engine.RowWrite, count)
	for i := range writes {
		writes[i].Row = r.u64()
		lanes := r.u32()
		if r.bad {
			return nil, fmt.Errorf("%w: truncated write %d header", ErrProtocol, i)
		}
		if uint64(lanes)*4 > uint64(r.remaining()) {
			return nil, fmt.Errorf("%w: write %d declares %d lanes, frame carries %d bytes", ErrProtocol, i, lanes, r.remaining())
		}
		vals := make([]uint32, lanes)
		for j := range vals {
			vals[j] = r.u32()
		}
		if r.bad {
			return nil, fmt.Errorf("%w: truncated write %d values", ErrProtocol, i)
		}
		writes[i].Vals = vals
	}
	return writes, nil
}

// parseRequest decodes one request frame body, refusing key batches over
// maxKeys before allocating for them. Key slices alias the frame buffer;
// the caller must finish with them before reusing it.
func parseRequest(body []byte, maxKeys int) (*rpcRequest, error) {
	r := &wireReader{b: body}
	req := &rpcRequest{op: r.u8()}
	var err error
	switch req.op {
	case opAnswer:
		if req.keys, err = parseKeys(r, maxKeys); err != nil {
			return nil, err
		}
	case opAnswerRange:
		req.lo, req.hi = r.u64(), r.u64()
		if r.bad {
			return nil, fmt.Errorf("%w: truncated row range", ErrProtocol)
		}
		if req.keys, err = parseKeys(r, maxKeys); err != nil {
			return nil, err
		}
	case opUpdate:
		req.row = r.u64()
		count := r.u32()
		if r.bad {
			return nil, fmt.Errorf("%w: truncated update header", ErrProtocol)
		}
		// uint64 math for the same 32-bit overflow reason as parseKeys.
		if uint64(count)*4 != uint64(r.remaining()) {
			return nil, fmt.Errorf("%w: update declares %d lanes, frame carries %d bytes", ErrProtocol, count, r.remaining())
		}
		n := int(count)
		req.vals = make([]uint32, n)
		for i := range req.vals {
			req.vals[i] = r.u32()
		}
	case opUpdateBatch:
		if req.writes, err = parseWrites(r); err != nil {
			return nil, err
		}
	case opPrepare:
		req.epoch = r.u64()
		if r.bad {
			return nil, fmt.Errorf("%w: truncated prepare epoch", ErrProtocol)
		}
		if req.writes, err = parseWrites(r); err != nil {
			return nil, err
		}
	case opCommit, opAbort:
		req.epoch = r.u64()
		if r.bad {
			return nil, fmt.Errorf("%w: truncated epoch", ErrProtocol)
		}
	case opSnapChunk:
		req.epoch, req.off = r.u64(), r.u64()
		req.max = r.u32()
		if r.bad {
			return nil, fmt.Errorf("%w: truncated snapshot chunk request", ErrProtocol)
		}
	case opShape, opCounters, opEpoch, opPing, opSnapMeta:
		// no payload
	default:
		return nil, fmt.Errorf("%w: unknown opcode %#x", ErrProtocol, req.op)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %#x request", ErrProtocol, r.remaining(), req.op)
	}
	return req, nil
}

// appendErrResponse encodes a failure response for op.
func appendErrResponse(dst []byte, op byte, msg string) []byte {
	dst = append(dst, op, statusErr)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(msg)))
	return append(dst, msg...)
}

// answerHasEpoch flags an answer response whose partials were computed
// against a pinned table epoch (a node fronting a non-epoch-versioned
// backend clears it).
const answerHasEpoch byte = 1

// appendAnswers encodes a successful Answer/AnswerRange response: the
// batch shape, the epoch the partials were computed at (flagged, since a
// node may front a backend with no epochs), then the shares.
func appendAnswers(dst []byte, op byte, answers [][]uint32, lanes int, epoch uint64, hasEpoch bool) []byte {
	dst = append(dst, op, statusOK)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(answers)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(lanes))
	var flags byte
	if hasEpoch {
		flags = answerHasEpoch
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	for _, a := range answers {
		for _, v := range a {
			dst = binary.LittleEndian.AppendUint32(dst, v)
		}
	}
	return dst
}

// responseHeader strips op+status and surfaces a remote failure: for
// statusErr responses it returns remoteErr non-nil with the node's
// message. wantOp is the request's op (opErr responses match any).
func responseHeader(r *wireReader, wantOp byte) (remoteErr error, err error) {
	op, status := r.u8(), r.u8()
	if r.bad {
		return nil, fmt.Errorf("%w: truncated response header", ErrProtocol)
	}
	if op != wantOp && op != opErr {
		return nil, fmt.Errorf("%w: response op %#x for request %#x", ErrProtocol, op, wantOp)
	}
	if status == statusOK {
		if op == opErr {
			return nil, fmt.Errorf("%w: ok status on error op", ErrProtocol)
		}
		return nil, nil
	}
	ml := int(r.u32())
	msg := r.take(ml)
	if r.bad {
		return nil, fmt.Errorf("%w: truncated error message", ErrProtocol)
	}
	if op == opErr {
		// The node refused the frame itself (oversized/unparseable) and is
		// hanging up; classify as a protocol error so the connection is
		// retired, not pooled.
		return nil, fmt.Errorf("%w: node refused request: %s", ErrProtocol, msg)
	}
	return errors.New(string(msg)), nil
}

// parseAnswers decodes an Answer/AnswerRange response body, returning the
// epoch the node computed the shares at (hasEpoch false when the node's
// backend is not epoch-versioned).
func parseAnswers(body []byte, wantOp byte, wantKeys int) (answers [][]uint32, epoch uint64, hasEpoch bool, err error) {
	r := &wireReader{b: body}
	remoteErr, err := responseHeader(r, wantOp)
	if err != nil {
		return nil, 0, false, err
	}
	if remoteErr != nil {
		return nil, 0, false, remoteErr
	}
	nWire, lanesWire := r.u32(), r.u32()
	flags := r.u8()
	epoch = r.u64()
	if r.bad {
		return nil, 0, false, fmt.Errorf("%w: truncated answer header", ErrProtocol)
	}
	if flags&^answerHasEpoch != 0 {
		return nil, 0, false, fmt.Errorf("%w: unknown answer flags %#x", ErrProtocol, flags)
	}
	hasEpoch = flags&answerHasEpoch != 0
	if !hasEpoch && epoch != 0 {
		return nil, 0, false, fmt.Errorf("%w: epoch %d on an epoch-less answer", ErrProtocol, epoch)
	}
	if uint64(nWire) != uint64(wantKeys) {
		return nil, 0, false, fmt.Errorf("%w: %d answers for %d keys", ErrProtocol, nWire, wantKeys)
	}
	// uint64 math like readFrame/parseKeys: a lanes value chosen so
	// n·lanes·4 wraps int on 32-bit platforms must not dodge the size
	// check into a giant NewAnswers allocation.
	if lanesWire == 0 || uint64(nWire)*uint64(lanesWire)*4 != uint64(r.remaining()) {
		return nil, 0, false, fmt.Errorf("%w: %d×%d answers in %d payload bytes", ErrProtocol, nWire, lanesWire, r.remaining())
	}
	n, lanes := int(nWire), int(lanesWire)
	answers = strategy.NewAnswers(n, lanes)
	for _, a := range answers {
		for l := range a {
			a[l] = r.u32()
		}
	}
	return answers, epoch, hasEpoch, nil
}

// appendEpochResp / parseEpochResp encode the epoch-bearing success
// responses (UpdateBatch's new epoch, Epoch's current one).
func appendEpochResp(dst []byte, op byte, epoch uint64) []byte {
	dst = append(dst, op, statusOK)
	return binary.LittleEndian.AppendUint64(dst, epoch)
}

func parseEpochResp(body []byte, wantOp byte) (uint64, error) {
	r := &wireReader{b: body}
	remoteErr, err := responseHeader(r, wantOp)
	if err != nil {
		return 0, err
	}
	if remoteErr != nil {
		return 0, remoteErr
	}
	epoch := r.u64()
	if r.bad || r.remaining() != 0 {
		return 0, fmt.Errorf("%w: malformed epoch response", ErrProtocol)
	}
	return epoch, nil
}

// appendShape / parseShape encode the Shape response.
func appendShape(dst []byte, rows, lanes int) []byte {
	dst = append(dst, opShape, statusOK)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rows))
	return binary.LittleEndian.AppendUint32(dst, uint32(lanes))
}

func parseShape(body []byte) (rows, lanes int, err error) {
	r := &wireReader{b: body}
	remoteErr, err := responseHeader(r, opShape)
	if err != nil {
		return 0, 0, err
	}
	if remoteErr != nil {
		return 0, 0, remoteErr
	}
	rows, lanes = int(r.u64()), int(r.u32())
	if r.bad || r.remaining() != 0 {
		return 0, 0, fmt.Errorf("%w: malformed shape response", ErrProtocol)
	}
	return rows, lanes, nil
}

// appendCounters / parseCounters encode the Counters response.
func appendCounters(dst []byte, s gpu.Stats) []byte {
	dst = append(dst, opCounters, statusOK)
	for _, v := range []int64{s.PRFBlocks, s.ReadBytes, s.WriteBytes, s.Launches, s.PeakMemBytes} {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

func parseCounters(body []byte) (gpu.Stats, error) {
	r := &wireReader{b: body}
	remoteErr, err := responseHeader(r, opCounters)
	if err != nil {
		return gpu.Stats{}, err
	}
	if remoteErr != nil {
		return gpu.Stats{}, remoteErr
	}
	s := gpu.Stats{
		PRFBlocks:    int64(r.u64()),
		ReadBytes:    int64(r.u64()),
		WriteBytes:   int64(r.u64()),
		Launches:     int64(r.u64()),
		PeakMemBytes: int64(r.u64()),
	}
	if r.bad || r.remaining() != 0 {
		return gpu.Stats{}, fmt.Errorf("%w: malformed counters response", ErrProtocol)
	}
	return s, nil
}

// appendSnapMeta / parseSnapMeta encode the SnapshotMeta response: the
// node's pinned snapshot epoch, its effective epoch (>= snapshot epoch
// when epochs were burned), and the global row range it holds — the range
// SnapshotChunk offsets are relative to.
func appendSnapMeta(dst []byte, snapEpoch, effEpoch uint64, lo, hi int) []byte {
	dst = append(dst, opSnapMeta, statusOK)
	dst = binary.LittleEndian.AppendUint64(dst, snapEpoch)
	dst = binary.LittleEndian.AppendUint64(dst, effEpoch)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(lo))
	return binary.LittleEndian.AppendUint64(dst, uint64(hi))
}

func parseSnapMeta(body []byte) (snapEpoch, effEpoch uint64, lo, hi int, err error) {
	r := &wireReader{b: body}
	remoteErr, err := responseHeader(r, opSnapMeta)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if remoteErr != nil {
		return 0, 0, 0, 0, remoteErr
	}
	snapEpoch, effEpoch = r.u64(), r.u64()
	loWire, hiWire := r.u64(), r.u64()
	if r.bad || r.remaining() != 0 {
		return 0, 0, 0, 0, fmt.Errorf("%w: malformed snapshot meta response", ErrProtocol)
	}
	// Row bounds travel as u64; values that wrap int on the receiver are a
	// lie regardless of the sender's word size.
	const maxInt = uint64(^uint(0) >> 1)
	if loWire > maxInt || hiWire > maxInt || loWire > hiWire {
		return 0, 0, 0, 0, fmt.Errorf("%w: snapshot meta row range [%d,%d)", ErrProtocol, loWire, hiWire)
	}
	return snapEpoch, effEpoch, int(loWire), int(hiWire), nil
}

// appendSnapChunk / parseSnapChunk encode one SnapshotChunk response. Every
// frame restates the epoch, the held row range and the word offset it
// starts at, so a resumed or interleaved transfer can never be stitched
// from mismatched frames. An empty word list past the end of the buffer
// terminates the stream.
func appendSnapChunk(dst []byte, epoch uint64, lo, hi int, off uint64, words []uint32) []byte {
	dst = append(dst, opSnapChunk, statusOK)
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(lo))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(hi))
	dst = binary.LittleEndian.AppendUint64(dst, off)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(words)))
	for _, v := range words {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

func parseSnapChunk(body []byte) (epoch uint64, lo, hi int, off uint64, words []uint32, err error) {
	r := &wireReader{b: body}
	remoteErr, err := responseHeader(r, opSnapChunk)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	if remoteErr != nil {
		return 0, 0, 0, 0, nil, remoteErr
	}
	epoch = r.u64()
	loWire, hiWire := r.u64(), r.u64()
	off = r.u64()
	count := r.u32()
	if r.bad {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: truncated snapshot chunk header", ErrProtocol)
	}
	const maxInt = uint64(^uint(0) >> 1)
	if loWire > maxInt || hiWire > maxInt || loWire > hiWire {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: snapshot chunk row range [%d,%d)", ErrProtocol, loWire, hiWire)
	}
	// uint64 math like parseAnswers: a count chosen so count·4 wraps int on
	// 32-bit platforms must not dodge the size check.
	if uint64(count)*4 != uint64(r.remaining()) {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: snapshot chunk declares %d words, frame carries %d bytes", ErrProtocol, count, r.remaining())
	}
	words = make([]uint32, count)
	for i := range words {
		words[i] = r.u32()
	}
	return epoch, int(loWire), int(hiWire), off, words, nil
}

// appendOK encodes a payload-free success (Update).
func appendOK(dst []byte, op byte) []byte { return append(dst, op, statusOK) }

// parseOK decodes a payload-free response (Update).
func parseOK(body []byte, wantOp byte) error {
	r := &wireReader{b: body}
	remoteErr, err := responseHeader(r, wantOp)
	if err != nil {
		return err
	}
	if remoteErr != nil {
		return remoteErr
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in %#x response", ErrProtocol, r.remaining(), wantOp)
	}
	return nil
}
