// Fault injection for the distributed replica: a cluster must fail loudly
// and promptly — naming the guilty shard — when a node dies mid-batch,
// stalls past the caller's deadline, or was started with a mismatched
// configuration. These are the failure modes a two-cloud deployment
// actually sees.
package shardnet

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/engine"
	"gpudpf/internal/strategy"
)

// blockingBackend parks every AnswerRange on its context — a node that
// accepted a request and then hung (or was killed) mid-evaluation.
type blockingBackend struct {
	engine.RangeBackend
	started chan struct{}
	once    sync.Once
}

func (b *blockingBackend) AnswerRange(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return nil, ctx.Err()
}

// slowBackend delays every AnswerRange, honoring cancellation.
type slowBackend struct {
	engine.RangeBackend
	delay time.Duration
}

func (b *slowBackend) AnswerRange(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error) {
	select {
	case <-time.After(b.delay):
		return b.RangeBackend.AnswerRange(ctx, keys, lo, hi)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func mustPRG(t testing.TB, name string) dpf.PRG {
	t.Helper()
	prg, err := dpf.NewPRG(name)
	if err != nil {
		t.Fatal(err)
	}
	return prg
}

// genKeysForCluster generates a small party-0 aes128 batch for the
// cluster's row domain at the default early-termination depth.
func genKeysForCluster(t testing.TB, c *engine.Cluster) (k0s, k1s [][]byte) {
	t.Helper()
	rows, _ := c.Shape()
	return genKeys(t, dpf.NewAESPRG(), dpf.DomainBits(rows), []uint64{1, uint64(rows) - 1}, 11)
}

// mixedCluster builds a 4-shard party-0 cluster over tab where shard
// `remoteIdx` is served over TCP by remoteBE and the rest are in-process
// replicas. It returns the cluster and the remote node (for killing).
func mixedCluster(t *testing.T, remoteIdx int, wrap func(engine.RangeBackend) engine.RangeBackend) (*engine.Cluster, *Server, string) {
	t.Helper()
	const rows, lanes, shards = 256, 4, 4
	tab := buildTable(t, rows, lanes, 7)
	members := make([]engine.ClusterShard, shards)
	var srv *Server
	var addr string
	for i := 0; i < shards; i++ {
		rep := newReplica(t, tab, engine.Config{Party: 0})
		if i != remoteIdx {
			members[i] = engine.ClusterShard{Backend: rep}
			continue
		}
		// The wrapper hides the replica's BackendInfo, so pin the full
		// configuration client-side; the node adopts and echoes it.
		srv, addr = startNode(t, wrap(rep), ServerConfig{})
		cl, err := Dial(addr, Options{PRG: rep.PRGName(), Early: rep.EarlyBits(), Party: rep.Party()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		members[i] = engine.ClusterShard{Backend: cl, Name: addr}
	}
	cluster, err := engine.NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	return cluster, srv, addr
}

// TestClusterShardKillMidBatch: killing a shard node while it evaluates a
// batch fails the whole answer with a *engine.ShardError naming exactly
// that shard — never a silent short sum.
func TestClusterShardKillMidBatch(t *testing.T) {
	const remoteIdx = 2
	started := make(chan struct{})
	cluster, srv, addr := mixedCluster(t, remoteIdx, func(be engine.RangeBackend) engine.RangeBackend {
		return &blockingBackend{RangeBackend: be, started: started}
	})
	kb, _ := genKeysForCluster(t, cluster)
	errCh := make(chan error, 1)
	go func() {
		_, err := cluster.Answer(context.Background(), kb)
		errCh <- err
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("shard node never started evaluating")
	}
	srv.Close() // kill the node mid-batch

	var err error
	select {
	case err = <-errCh:
	case <-time.After(10 * time.Second):
		t.Fatal("cluster answer did not fail after shard death")
	}
	if err == nil {
		t.Fatal("cluster answered despite a dead shard")
	}
	var se *engine.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a ShardError", err)
	}
	if se.Shard != remoteIdx {
		t.Fatalf("ShardError names shard %d, the dead node was shard %d", se.Shard, remoteIdx)
	}
	if se.Name != addr || !strings.Contains(err.Error(), addr) {
		t.Fatalf("ShardError %q does not name the dead node %s", err, addr)
	}
}

// TestClusterSlowShardDeadline: a shard that stalls must cost the caller
// its context deadline, not a hang — the error carries DeadlineExceeded
// and names the slow shard.
func TestClusterSlowShardDeadline(t *testing.T) {
	const remoteIdx = 1
	cluster, _, addr := mixedCluster(t, remoteIdx, func(be engine.RangeBackend) engine.RangeBackend {
		return &slowBackend{RangeBackend: be, delay: 30 * time.Second}
	})
	kb, _ := genKeysForCluster(t, cluster)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cluster.Answer(ctx, kb)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cluster answered despite a stalled shard")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("deadline took %v to propagate", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not carry context.DeadlineExceeded", err)
	}
	var se *engine.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a ShardError", err)
	}
	if se.Shard != remoteIdx || se.Name != addr {
		t.Fatalf("ShardError names shard %d (%s), the slow node was shard %d (%s)", se.Shard, se.Name, remoteIdx, addr)
	}
}

// TestRPCTimeoutBackstop: a caller with no deadline of its own — the
// shipped cluster front batches with context.Background() — must still be
// released by Options.RPCTimeout when a node black-holes, instead of
// wedging forever.
func TestRPCTimeoutBackstop(t *testing.T) {
	tab := buildTable(t, 64, 2, 8)
	rep := newReplica(t, tab, engine.Config{Party: 0})
	_, addr := startNode(t, &slowBackend{RangeBackend: rep, delay: 30 * time.Second}, ServerConfig{})
	c, err := Dial(addr, Options{
		PRG: rep.PRGName(), Early: rep.EarlyBits(), Party: rep.Party(),
		RPCTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys, _ := genKeys(t, dpf.NewAESPRG(), tab.Bits(), []uint64{3}, 12)
	start := time.Now()
	_, err = c.AnswerRange(context.Background(), keys, 0, 64)
	if err == nil {
		t.Fatal("deadline-less RPC against a stalled node returned")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not carry context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("RPC timeout took %v to fire", elapsed)
	}
}

// TestClusterConfigMismatch: a cluster must refuse to assemble when a node
// was started with a different PRF or early-termination depth than its
// siblings — at Dial time when the client pins, at NewCluster time when it
// adopted.
func TestClusterConfigMismatch(t *testing.T) {
	tab := buildTable(t, 128, 2, 9)
	chachaPRG := mustPRG(t, "chacha20")
	chachaNodeRep := newReplica(t, tab, engine.Config{Party: 0, PRG: chachaPRG})
	_, chachaAddr := startNode(t, chachaNodeRep, ServerConfig{})

	// Pinning client: rejected during the handshake, both PRFs named.
	if _, err := Dial(chachaAddr, Options{PRG: "aes128", Party: 0}); err == nil {
		t.Fatal("PRF-mismatched handshake accepted")
	} else if !strings.Contains(err.Error(), "aes128") || !strings.Contains(err.Error(), "chacha20") {
		t.Fatalf("handshake rejection %q does not name both PRFs", err)
	}

	// Adopting client: the mismatch surfaces when the cluster assembles,
	// with both shards and both PRFs named.
	adopting, err := Dial(chachaAddr, Options{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer adopting.Close()
	aesRep := newReplica(t, tab, engine.Config{Party: 0})
	_, err = engine.NewCluster(
		engine.ClusterShard{Backend: aesRep, Name: "local-aes"},
		engine.ClusterShard{Backend: adopting, Name: chachaAddr},
	)
	if err == nil {
		t.Fatal("mixed-PRF cluster assembled")
	}
	for _, want := range []string{"aes128", "chacha20", chachaAddr} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("cluster rejection %q does not name %q", err, want)
		}
	}

	// Early-termination depth mismatch: full-depth node vs default-depth
	// sibling, both depths named.
	v1Rep := newReplica(t, tab, engine.Config{Party: 0, EarlyBits: engine.FullDepthKeys})
	_, v1Addr := startNode(t, v1Rep, ServerConfig{})
	v1Client, err := Dial(v1Addr, Options{PRG: "aes128", Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer v1Client.Close()
	_, err = engine.NewCluster(
		engine.ClusterShard{Backend: aesRep, Name: "local-default"},
		engine.ClusterShard{Backend: v1Client, Name: v1Addr},
	)
	if err == nil {
		t.Fatal("mixed-depth cluster assembled")
	}
	if !strings.Contains(err.Error(), "depth 0") || !strings.Contains(err.Error(), "depth 2") {
		t.Fatalf("cluster rejection %q does not name both depths", err)
	}

	// A node assigned rows it does not hold is refused at assembly.
	partial := newReplica(t, shardTable(t, tab, 0, 64), engine.Config{Party: 0})
	_, partialAddr := startNode(t, partial, ServerConfig{RowLo: 0, RowHi: 64})
	partialClient, err := Dial(partialAddr, Options{PRG: "aes128", Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer partialClient.Close()
	_, err = engine.NewCluster(
		engine.ClusterShard{Backend: partialClient, Name: partialAddr}, // would be assigned [0,64)
		engine.ClusterShard{Backend: aesRep, Name: "local"},            // [64,128)
	)
	if err != nil {
		t.Fatalf("cluster with exactly-held ranges refused: %v", err)
	}
	// Swap the order: the partial node would now be assigned [64,128),
	// which it does not hold.
	_, err = engine.NewCluster(
		engine.ClusterShard{Backend: aesRep, Name: "local"},
		engine.ClusterShard{Backend: partialClient, Name: partialAddr},
	)
	if err == nil {
		t.Fatal("cluster assigned a shard rows it does not hold")
	}
	if !strings.Contains(err.Error(), "[64,128)") || !strings.Contains(err.Error(), "[0,64)") {
		t.Fatalf("held-range rejection %q does not name both ranges", err)
	}
}

// standbyPair starts a primary node (wrapped by wrap) and a standby node
// over the same shard rows and dials both.
func standbyPair(t *testing.T, tab *strategy.Table, cfg engine.Config, lo, hi int, wrap func(engine.RangeBackend) engine.RangeBackend) (prim *Server, primCl, sbCl *Client, primAddr string) {
	t.Helper()
	nodeTab := shardTable(t, tab, lo, hi)
	prim, primAddr = startNode(t, wrap(newReplica(t, nodeTab, cfg)), ServerConfig{RowLo: lo, RowHi: hi})
	sbTab := shardTable(t, tab, lo, hi)
	_, sbAddr := startNode(t, newReplica(t, sbTab, cfg), ServerConfig{RowLo: lo, RowHi: hi})
	rep := newReplica(t, tab, cfg) // only for its pinned config
	opts := Options{PRG: rep.PRGName(), Early: rep.EarlyBits(), Party: rep.Party()}
	var err error
	if primCl, err = Dial(primAddr, opts); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primCl.Close() })
	if sbCl, err = Dial(sbAddr, opts); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sbCl.Close() })
	return prim, primCl, sbCl, primAddr
}

// TestClusterStandbyFailoverMidBatchTCP is the failover acceptance test:
// a 4-shard mixed cluster (in-process replicas + real TCP nodes) serves a
// batch while shard 2's primary node is killed mid-evaluation; the batch
// must complete off the standby node with answers bit-identical to a
// single-process replica.
func TestClusterStandbyFailoverMidBatchTCP(t *testing.T) {
	const rows, lanes, shards, remoteIdx = 256, 4, 4, 2
	tab := buildTable(t, rows, lanes, 27)
	cfg := engine.Config{Party: 0}
	started := make(chan struct{})
	var prim *Server
	members := make([]engine.ClusterShard, shards)
	for i := 0; i < shards; i++ {
		if i != remoteIdx {
			members[i] = engine.ClusterShard{Backend: newReplica(t, tab, cfg)}
			continue
		}
		lo, hi := engine.ShardRange(rows, i, shards)
		var primCl, sbCl *Client
		var addr string
		prim, primCl, sbCl, addr = standbyPair(t, tab, cfg, lo, hi, func(be engine.RangeBackend) engine.RangeBackend {
			return &blockingBackend{RangeBackend: be, started: started}
		})
		members[i] = engine.ClusterShard{Backend: primCl, Name: addr, Standby: sbCl, StandbyName: addr + "-standby"}
	}
	cluster, err := engine.NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := genKeysForCluster(t, cluster)

	type res struct {
		answers [][]uint32
		err     error
	}
	resCh := make(chan res, 1)
	go func() {
		a, err := cluster.Answer(context.Background(), keys)
		resCh <- res{a, err}
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("primary node never started evaluating")
	}
	prim.Close() // kill the primary mid-batch

	var r res
	select {
	case r = <-resCh:
	case <-time.After(10 * time.Second):
		t.Fatal("cluster answer did not complete after primary death")
	}
	if r.err != nil {
		t.Fatalf("failover answer failed: %v", r.err)
	}
	ref := newReplica(t, tab, cfg)
	want, err := ref.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameShares(r.answers, want); err != nil {
		t.Fatalf("failover answers diverge from single replica: %v", err)
	}
}

// TestClusterUpdateBatchTCP: the epoch handshake drives one atomic update
// across a cluster whose members — including a standby — live behind real
// TCP nodes; answers afterwards (and after a failover) match a single
// updated replica.
func TestClusterUpdateBatchTCP(t *testing.T) {
	const rows, lanes, shards = 256, 4, 2
	tab := buildTable(t, rows, lanes, 28)
	cfg := engine.Config{Party: 0}
	// Shard 0 in-process; shard 1 remote with a remote standby.
	lo, hi := engine.ShardRange(rows, 1, shards)
	_, primCl, sbCl, addr := standbyPair(t, tab, cfg, lo, hi, func(be engine.RangeBackend) engine.RangeBackend { return be })
	cluster, err := engine.NewCluster(
		engine.ClusterShard{Backend: newReplica(t, tab, cfg)},
		engine.ClusterShard{Backend: primCl, Name: addr, Standby: sbCl, StandbyName: addr + "-standby"},
	)
	if err != nil {
		t.Fatal(err)
	}
	writes := []engine.RowWrite{
		{Row: 10, Vals: []uint32{1, 2, 3, 4}},    // shard 0's range
		{Row: 200, Vals: []uint32{5, 6, 7, 8}},   // shard 1's range
		{Row: 255, Vals: []uint32{9, 10, 11, 12}}, // shard 1's range
	}
	epoch, err := cluster.UpdateBatch(context.Background(), writes)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("cluster update landed at epoch %d, want 1", epoch)
	}
	refTab := buildTable(t, rows, lanes, 28)
	ref := newReplica(t, refTab, cfg)
	if _, err := ref.UpdateBatch(context.Background(), writes); err != nil {
		t.Fatal(err)
	}
	keys, _ := genKeys(t, dpf.NewAESPRG(), tab.Bits(), []uint64{10, 200, 255, 100}, 29)
	want, err := ref.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameShares(got, want); err != nil {
		t.Fatalf("post-update cluster diverges: %v", err)
	}
	// The standby received the same epoch: kill the primary and the
	// failover must serve the UPDATED rows, bit-identically.
	primCl.Close() // client closed = every RPC to the primary fails fast
	got, err = cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatalf("post-update failover failed: %v", err)
	}
	if err := sameShares(got, want); err != nil {
		t.Fatalf("failover after update serves stale rows: %v", err)
	}
}

// TestClusterUpdatePartialFailureTCP: a remote node that refuses the
// prepare (its backend cannot stage) leaves every member — local and
// remote — readable at the old epoch with the old content.
func TestClusterUpdatePartialFailureTCP(t *testing.T) {
	const rows, lanes, shards = 128, 2, 2
	tab := buildTable(t, rows, lanes, 30)
	cfg := engine.Config{Party: 0}
	lo, hi := engine.ShardRange(rows, 1, shards)
	nodeTab := shardTable(t, tab, lo, hi)
	failer := &prepareRefuser{Replica: newReplica(t, nodeTab, cfg)}
	_, addr := startNode(t, failer, ServerConfig{RowLo: lo, RowHi: hi})
	cl, err := Dial(addr, Options{PRG: "aes128", Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cluster, err := engine.NewCluster(
		engine.ClusterShard{Backend: newReplica(t, tab, cfg)},
		engine.ClusterShard{Backend: cl, Name: addr},
	)
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := genKeys(t, dpf.NewAESPRG(), tab.Bits(), []uint64{5, 100}, 31)
	before, err := cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cluster.UpdateBatch(context.Background(), []engine.RowWrite{
		{Row: 5, Vals: []uint32{1, 2}},
		{Row: 100, Vals: []uint32{3, 4}},
	})
	if err == nil {
		t.Fatal("update succeeded despite a refusing node")
	}
	var se *engine.ShardError
	if !errors.As(err, &se) || se.Name != addr {
		t.Fatalf("prepare refusal reported as %v, want ShardError naming %s", err, addr)
	}
	if !strings.Contains(err.Error(), "staging refused") {
		t.Fatalf("error %q does not carry the node's reason", err)
	}
	after, err := cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatalf("cluster unreadable after aborted update: %v", err)
	}
	if err := sameShares(after, before); err != nil {
		t.Fatalf("aborted update leaked content: %v", err)
	}
	// Heal and retry: the cluster recovers at a fresh epoch.
	failer.heal()
	if _, err := cluster.UpdateBatch(context.Background(), []engine.RowWrite{{Row: 5, Vals: []uint32{1, 2}}}); err != nil {
		t.Fatalf("post-abort update failed: %v", err)
	}
}

// prepareRefuser fails PrepareUpdate until healed.
type prepareRefuser struct {
	*engine.Replica
	mu     sync.Mutex
	healed bool
}

func (p *prepareRefuser) heal() {
	p.mu.Lock()
	p.healed = true
	p.mu.Unlock()
}

func (p *prepareRefuser) PrepareUpdate(ctx context.Context, epoch uint64, writes []engine.RowWrite) error {
	p.mu.Lock()
	ok := p.healed
	p.mu.Unlock()
	if !ok {
		return errors.New("staging refused: no space")
	}
	return p.Replica.PrepareUpdate(ctx, epoch, writes)
}
