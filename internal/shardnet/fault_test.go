// Fault injection for the distributed replica: a cluster must fail loudly
// and promptly — naming the guilty shard — when a node dies mid-batch,
// stalls past the caller's deadline, or was started with a mismatched
// configuration. These are the failure modes a two-cloud deployment
// actually sees.
package shardnet

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/engine"
)

// blockingBackend parks every AnswerRange on its context — a node that
// accepted a request and then hung (or was killed) mid-evaluation.
type blockingBackend struct {
	engine.RangeBackend
	started chan struct{}
	once    sync.Once
}

func (b *blockingBackend) AnswerRange(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return nil, ctx.Err()
}

// slowBackend delays every AnswerRange, honoring cancellation.
type slowBackend struct {
	engine.RangeBackend
	delay time.Duration
}

func (b *slowBackend) AnswerRange(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error) {
	select {
	case <-time.After(b.delay):
		return b.RangeBackend.AnswerRange(ctx, keys, lo, hi)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func mustPRG(t testing.TB, name string) dpf.PRG {
	t.Helper()
	prg, err := dpf.NewPRG(name)
	if err != nil {
		t.Fatal(err)
	}
	return prg
}

// genKeysForCluster generates a small party-0 aes128 batch for the
// cluster's row domain at the default early-termination depth.
func genKeysForCluster(t testing.TB, c *engine.Cluster) (k0s, k1s [][]byte) {
	t.Helper()
	rows, _ := c.Shape()
	return genKeys(t, dpf.NewAESPRG(), dpf.DomainBits(rows), []uint64{1, uint64(rows) - 1}, 11)
}

// mixedCluster builds a 4-shard party-0 cluster over tab where shard
// `remoteIdx` is served over TCP by remoteBE and the rest are in-process
// replicas. It returns the cluster and the remote node (for killing).
func mixedCluster(t *testing.T, remoteIdx int, wrap func(engine.RangeBackend) engine.RangeBackend) (*engine.Cluster, *Server, string) {
	t.Helper()
	const rows, lanes, shards = 256, 4, 4
	tab := buildTable(t, rows, lanes, 7)
	members := make([]engine.ClusterShard, shards)
	var srv *Server
	var addr string
	for i := 0; i < shards; i++ {
		rep := newReplica(t, tab, engine.Config{Party: 0})
		if i != remoteIdx {
			members[i] = engine.ClusterShard{Backend: rep}
			continue
		}
		// The wrapper hides the replica's BackendInfo, so pin the full
		// configuration client-side; the node adopts and echoes it.
		srv, addr = startNode(t, wrap(rep), ServerConfig{})
		cl, err := Dial(addr, Options{PRG: rep.PRGName(), Early: rep.EarlyBits(), Party: rep.Party()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		members[i] = engine.ClusterShard{Backend: cl, Name: addr}
	}
	cluster, err := engine.NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	return cluster, srv, addr
}

// TestClusterShardKillMidBatch: killing a shard node while it evaluates a
// batch fails the whole answer with a *engine.ShardError naming exactly
// that shard — never a silent short sum.
func TestClusterShardKillMidBatch(t *testing.T) {
	const remoteIdx = 2
	started := make(chan struct{})
	cluster, srv, addr := mixedCluster(t, remoteIdx, func(be engine.RangeBackend) engine.RangeBackend {
		return &blockingBackend{RangeBackend: be, started: started}
	})
	kb, _ := genKeysForCluster(t, cluster)
	errCh := make(chan error, 1)
	go func() {
		_, err := cluster.Answer(context.Background(), kb)
		errCh <- err
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("shard node never started evaluating")
	}
	srv.Close() // kill the node mid-batch

	var err error
	select {
	case err = <-errCh:
	case <-time.After(10 * time.Second):
		t.Fatal("cluster answer did not fail after shard death")
	}
	if err == nil {
		t.Fatal("cluster answered despite a dead shard")
	}
	var se *engine.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a ShardError", err)
	}
	if se.Shard != remoteIdx {
		t.Fatalf("ShardError names shard %d, the dead node was shard %d", se.Shard, remoteIdx)
	}
	if se.Name != addr || !strings.Contains(err.Error(), addr) {
		t.Fatalf("ShardError %q does not name the dead node %s", err, addr)
	}
}

// TestClusterSlowShardDeadline: a shard that stalls must cost the caller
// its context deadline, not a hang — the error carries DeadlineExceeded
// and names the slow shard.
func TestClusterSlowShardDeadline(t *testing.T) {
	const remoteIdx = 1
	cluster, _, addr := mixedCluster(t, remoteIdx, func(be engine.RangeBackend) engine.RangeBackend {
		return &slowBackend{RangeBackend: be, delay: 30 * time.Second}
	})
	kb, _ := genKeysForCluster(t, cluster)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cluster.Answer(ctx, kb)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cluster answered despite a stalled shard")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("deadline took %v to propagate", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not carry context.DeadlineExceeded", err)
	}
	var se *engine.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a ShardError", err)
	}
	if se.Shard != remoteIdx || se.Name != addr {
		t.Fatalf("ShardError names shard %d (%s), the slow node was shard %d (%s)", se.Shard, se.Name, remoteIdx, addr)
	}
}

// TestRPCTimeoutBackstop: a caller with no deadline of its own — the
// shipped cluster front batches with context.Background() — must still be
// released by Options.RPCTimeout when a node black-holes, instead of
// wedging forever.
func TestRPCTimeoutBackstop(t *testing.T) {
	tab := buildTable(t, 64, 2, 8)
	rep := newReplica(t, tab, engine.Config{Party: 0})
	_, addr := startNode(t, &slowBackend{RangeBackend: rep, delay: 30 * time.Second}, ServerConfig{})
	c, err := Dial(addr, Options{
		PRG: rep.PRGName(), Early: rep.EarlyBits(), Party: rep.Party(),
		RPCTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys, _ := genKeys(t, dpf.NewAESPRG(), tab.Bits(), []uint64{3}, 12)
	start := time.Now()
	_, err = c.AnswerRange(context.Background(), keys, 0, 64)
	if err == nil {
		t.Fatal("deadline-less RPC against a stalled node returned")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not carry context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("RPC timeout took %v to fire", elapsed)
	}
}

// TestClusterConfigMismatch: a cluster must refuse to assemble when a node
// was started with a different PRF or early-termination depth than its
// siblings — at Dial time when the client pins, at NewCluster time when it
// adopted.
func TestClusterConfigMismatch(t *testing.T) {
	tab := buildTable(t, 128, 2, 9)
	chachaPRG := mustPRG(t, "chacha20")
	chachaNodeRep := newReplica(t, tab, engine.Config{Party: 0, PRG: chachaPRG})
	_, chachaAddr := startNode(t, chachaNodeRep, ServerConfig{})

	// Pinning client: rejected during the handshake, both PRFs named.
	if _, err := Dial(chachaAddr, Options{PRG: "aes128", Party: 0}); err == nil {
		t.Fatal("PRF-mismatched handshake accepted")
	} else if !strings.Contains(err.Error(), "aes128") || !strings.Contains(err.Error(), "chacha20") {
		t.Fatalf("handshake rejection %q does not name both PRFs", err)
	}

	// Adopting client: the mismatch surfaces when the cluster assembles,
	// with both shards and both PRFs named.
	adopting, err := Dial(chachaAddr, Options{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer adopting.Close()
	aesRep := newReplica(t, tab, engine.Config{Party: 0})
	_, err = engine.NewCluster(
		engine.ClusterShard{Backend: aesRep, Name: "local-aes"},
		engine.ClusterShard{Backend: adopting, Name: chachaAddr},
	)
	if err == nil {
		t.Fatal("mixed-PRF cluster assembled")
	}
	for _, want := range []string{"aes128", "chacha20", chachaAddr} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("cluster rejection %q does not name %q", err, want)
		}
	}

	// Early-termination depth mismatch: full-depth node vs default-depth
	// sibling, both depths named.
	v1Rep := newReplica(t, tab, engine.Config{Party: 0, EarlyBits: engine.FullDepthKeys})
	_, v1Addr := startNode(t, v1Rep, ServerConfig{})
	v1Client, err := Dial(v1Addr, Options{PRG: "aes128", Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer v1Client.Close()
	_, err = engine.NewCluster(
		engine.ClusterShard{Backend: aesRep, Name: "local-default"},
		engine.ClusterShard{Backend: v1Client, Name: v1Addr},
	)
	if err == nil {
		t.Fatal("mixed-depth cluster assembled")
	}
	if !strings.Contains(err.Error(), "depth 0") || !strings.Contains(err.Error(), "depth 2") {
		t.Fatalf("cluster rejection %q does not name both depths", err)
	}

	// A node assigned rows it does not hold is refused at assembly.
	partial := newReplica(t, shardTable(t, tab, 0, 64), engine.Config{Party: 0})
	_, partialAddr := startNode(t, partial, ServerConfig{RowLo: 0, RowHi: 64})
	partialClient, err := Dial(partialAddr, Options{PRG: "aes128", Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer partialClient.Close()
	_, err = engine.NewCluster(
		engine.ClusterShard{Backend: partialClient, Name: partialAddr}, // would be assigned [0,64)
		engine.ClusterShard{Backend: aesRep, Name: "local"},            // [64,128)
	)
	if err != nil {
		t.Fatalf("cluster with exactly-held ranges refused: %v", err)
	}
	// Swap the order: the partial node would now be assigned [64,128),
	// which it does not hold.
	_, err = engine.NewCluster(
		engine.ClusterShard{Backend: aesRep, Name: "local"},
		engine.ClusterShard{Backend: partialClient, Name: partialAddr},
	)
	if err == nil {
		t.Fatal("cluster assigned a shard rows it does not hold")
	}
	if !strings.Contains(err.Error(), "[64,128)") || !strings.Contains(err.Error(), "[0,64)") {
		t.Fatalf("held-range rejection %q does not name both ranges", err)
	}
}
