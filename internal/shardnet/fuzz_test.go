package shardnet

import (
	"bytes"
	"testing"

	"gpudpf/internal/gpu"
)

// FuzzParseRequest throws arbitrary frame bodies at the server's request
// parser: it must never panic and never accept a frame that does not
// re-encode to itself (the codec is canonical).
func FuzzParseRequest(f *testing.F) {
	// Seed with one well-formed frame per opcode.
	key := bytes.Repeat([]byte{0xab}, 37)
	f.Add(appendRequest(nil, &rpcRequest{op: opAnswer, keys: [][]byte{key, key[:5]}}))
	f.Add(appendRequest(nil, &rpcRequest{op: opAnswerRange, keys: [][]byte{key}, lo: 3, hi: 999}))
	f.Add(appendRequest(nil, &rpcRequest{op: opUpdate, row: 12, vals: []uint32{1, 2, 3}}))
	f.Add(appendRequest(nil, &rpcRequest{op: opShape}))
	f.Add(appendRequest(nil, &rpcRequest{op: opCounters}))
	f.Add([]byte{opAnswer, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := parseRequest(body, DefaultMaxBatch)
		if err != nil {
			return
		}
		if got := appendRequest(nil, req); !bytes.Equal(got, body) {
			t.Fatalf("accepted request does not re-encode canonically:\n in  %x\n out %x", body, got)
		}
	})
}

// FuzzParseResponses covers the client-side decoders the node's bytes feed
// into; a hostile or corrupt node must not be able to panic a front.
func FuzzParseResponses(f *testing.F) {
	f.Add(appendAnswers(nil, opAnswer, [][]uint32{{1, 2}, {3, 4}}, 2), uint8(opAnswer), 2)
	f.Add(appendErrResponse(nil, opAnswerRange, "engine: shard failed"), uint8(opAnswerRange), 1)
	f.Add(appendShape(nil, 1024, 32), uint8(opShape), 0)
	f.Add(appendCounters(nil, gpu.Stats{PRFBlocks: 9, ReadBytes: 10}), uint8(opCounters), 0)
	f.Add(appendOK(nil, opUpdate), uint8(opUpdate), 0)
	f.Fuzz(func(t *testing.T, body []byte, op uint8, keys int) {
		if keys < 0 || keys > 1<<16 {
			return
		}
		_, _ = parseAnswers(body, op, keys)
		_, _, _ = parseShape(body)
		_, _ = parseCounters(body)
		_ = parseOK(body, op)
	})
}
