package shardnet

import (
	"bytes"
	"testing"

	"gpudpf/internal/engine"
	"gpudpf/internal/gpu"
)

// FuzzParseRequest throws arbitrary frame bodies at the server's request
// parser: it must never panic and never accept a frame that does not
// re-encode to itself (the codec is canonical). Protocol v2 ops — the
// epoch-versioned update path — are seeded alongside v1's.
func FuzzParseRequest(f *testing.F) {
	// Seed with one well-formed frame per opcode.
	key := bytes.Repeat([]byte{0xab}, 37)
	writes := []engine.RowWrite{{Row: 7, Vals: []uint32{1, 2, 3}}, {Row: 9, Vals: []uint32{4}}}
	f.Add(appendRequest(nil, &rpcRequest{op: opAnswer, keys: [][]byte{key, key[:5]}}))
	f.Add(appendRequest(nil, &rpcRequest{op: opAnswerRange, keys: [][]byte{key}, lo: 3, hi: 999}))
	f.Add(appendRequest(nil, &rpcRequest{op: opUpdate, row: 12, vals: []uint32{1, 2, 3}}))
	f.Add(appendRequest(nil, &rpcRequest{op: opShape}))
	f.Add(appendRequest(nil, &rpcRequest{op: opCounters}))
	f.Add(appendRequest(nil, &rpcRequest{op: opUpdateBatch, writes: writes}))
	f.Add(appendRequest(nil, &rpcRequest{op: opEpoch}))
	f.Add(appendRequest(nil, &rpcRequest{op: opPrepare, epoch: 41, writes: writes}))
	f.Add(appendRequest(nil, &rpcRequest{op: opCommit, epoch: 41}))
	f.Add(appendRequest(nil, &rpcRequest{op: opAbort, epoch: 41}))
	f.Add([]byte{opAnswer, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{opUpdateBatch, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := parseRequest(body, DefaultMaxBatch)
		if err != nil {
			return
		}
		if got := appendRequest(nil, req); !bytes.Equal(got, body) {
			t.Fatalf("accepted request does not re-encode canonically:\n in  %x\n out %x", body, got)
		}
	})
}

// FuzzParseResponses covers the client-side decoders the node's bytes feed
// into; a hostile or corrupt node must not be able to panic a front.
func FuzzParseResponses(f *testing.F) {
	f.Add(appendAnswers(nil, opAnswer, [][]uint32{{1, 2}, {3, 4}}, 2, 0, false), uint8(opAnswer), 2)
	f.Add(appendAnswers(nil, opAnswerRange, [][]uint32{{1, 2}}, 2, 77, true), uint8(opAnswerRange), 1)
	f.Add(appendErrResponse(nil, opAnswerRange, "engine: shard failed"), uint8(opAnswerRange), 1)
	f.Add(appendShape(nil, 1024, 32), uint8(opShape), 0)
	f.Add(appendCounters(nil, gpu.Stats{PRFBlocks: 9, ReadBytes: 10}), uint8(opCounters), 0)
	f.Add(appendOK(nil, opUpdate), uint8(opUpdate), 0)
	f.Add(appendEpochResp(nil, opEpoch, 12345), uint8(opEpoch), 0)
	f.Add(appendEpochResp(nil, opUpdateBatch, 2), uint8(opUpdateBatch), 0)
	f.Fuzz(func(t *testing.T, body []byte, op uint8, keys int) {
		if keys < 0 || keys > 1<<16 {
			return
		}
		_, _, _, _ = parseAnswers(body, op, keys)
		_, _, _ = parseShape(body)
		_, _ = parseCounters(body)
		_ = parseOK(body, op)
		_, _ = parseEpochResp(body, op)
	})
}

// FuzzHandshake throws arbitrary frames at the handshake decoders — the
// FIRST bytes either side ever reads from its peer, gob-decoded, so this
// is the most attacker-reachable parser in the package. Neither direction
// may panic, and well-formed handshakes (epoch field included) must
// round-trip.
func FuzzHandshake(f *testing.F) {
	seed := func(v any) []byte {
		var buf bytes.Buffer
		if err := writeHandshake(&buf, v); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(&hello{Proto: protoName, Version: ProtocolVersion, PRG: "aes128", Early: 2, Party: 0}))
	f.Add(seed(&hello{Proto: protoName, Version: ProtocolVersion, Party: AdoptParty, Early: engine.FullDepthKeys}))
	f.Add(seed(&welcome{Version: ProtocolVersion, PRG: "chacha20", Early: 2, Party: 1,
		Rows: 1 << 20, Lanes: 32, RowLo: 0, RowHi: 1 << 19, Epoch: 42, EpochKnown: true}))
	f.Add(seed(&welcome{Err: "shardnet: handshake: unknown protocol"}))
	f.Add([]byte{4, 0, 0, 0, 0xff, 0xfe, 0xfd, 0xfc})
	f.Fuzz(func(t *testing.T, frame []byte) {
		var h hello
		if err := readHandshake(bytes.NewReader(frame), &h); err == nil {
			// An accepted hello must survive re-encoding (gob is not
			// byte-canonical, so round-trip the VALUES, not the bytes).
			var buf bytes.Buffer
			if err := writeHandshake(&buf, &h); err != nil {
				t.Fatalf("accepted hello does not re-encode: %v", err)
			}
			var h2 hello
			if err := readHandshake(&buf, &h2); err != nil || h2 != h {
				t.Fatalf("hello does not round-trip: %+v vs %+v (%v)", h, h2, err)
			}
		}
		var w welcome
		if err := readHandshake(bytes.NewReader(frame), &w); err == nil {
			var buf bytes.Buffer
			if err := writeHandshake(&buf, &w); err != nil {
				t.Fatalf("accepted welcome does not re-encode: %v", err)
			}
			var w2 welcome
			if err := readHandshake(&buf, &w2); err != nil || w2 != w {
				t.Fatalf("welcome does not round-trip: %+v vs %+v (%v)", w, w2, err)
			}
		}
	})
}
