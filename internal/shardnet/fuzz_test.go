package shardnet

import (
	"bytes"
	"testing"

	"gpudpf/internal/engine"
	"gpudpf/internal/gpu"
)

// FuzzParseRequest throws arbitrary frame bodies at the server's request
// parser: it must never panic and never accept a frame that does not
// re-encode to itself (the codec is canonical). Protocol v2 ops — the
// epoch-versioned update path — and v3's (Ping, SnapshotMeta,
// SnapshotChunk) are seeded alongside v1's.
func FuzzParseRequest(f *testing.F) {
	// Seed with one well-formed frame per opcode.
	key := bytes.Repeat([]byte{0xab}, 37)
	writes := []engine.RowWrite{{Row: 7, Vals: []uint32{1, 2, 3}}, {Row: 9, Vals: []uint32{4}}}
	f.Add(appendRequest(nil, &rpcRequest{op: opAnswer, keys: [][]byte{key, key[:5]}}))
	f.Add(appendRequest(nil, &rpcRequest{op: opAnswerRange, keys: [][]byte{key}, lo: 3, hi: 999}))
	f.Add(appendRequest(nil, &rpcRequest{op: opUpdate, row: 12, vals: []uint32{1, 2, 3}}))
	f.Add(appendRequest(nil, &rpcRequest{op: opShape}))
	f.Add(appendRequest(nil, &rpcRequest{op: opCounters}))
	f.Add(appendRequest(nil, &rpcRequest{op: opUpdateBatch, writes: writes}))
	f.Add(appendRequest(nil, &rpcRequest{op: opEpoch}))
	f.Add(appendRequest(nil, &rpcRequest{op: opPrepare, epoch: 41, writes: writes}))
	f.Add(appendRequest(nil, &rpcRequest{op: opCommit, epoch: 41}))
	f.Add(appendRequest(nil, &rpcRequest{op: opAbort, epoch: 41}))
	f.Add(appendRequest(nil, &rpcRequest{op: opPing}))
	f.Add(appendRequest(nil, &rpcRequest{op: opSnapMeta}))
	f.Add(appendRequest(nil, &rpcRequest{op: opSnapChunk, epoch: 41, off: 4096, max: 1 << 18}))
	f.Add([]byte{opAnswer, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{opUpdateBatch, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{opSnapChunk, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := parseRequest(body, DefaultMaxBatch)
		if err != nil {
			return
		}
		if got := appendRequest(nil, req); !bytes.Equal(got, body) {
			t.Fatalf("accepted request does not re-encode canonically:\n in  %x\n out %x", body, got)
		}
	})
}

// FuzzParseResponses covers the client-side decoders the node's bytes feed
// into; a hostile or corrupt node must not be able to panic a front.
func FuzzParseResponses(f *testing.F) {
	f.Add(appendAnswers(nil, opAnswer, [][]uint32{{1, 2}, {3, 4}}, 2, 0, false), uint8(opAnswer), 2)
	f.Add(appendAnswers(nil, opAnswerRange, [][]uint32{{1, 2}}, 2, 77, true), uint8(opAnswerRange), 1)
	f.Add(appendErrResponse(nil, opAnswerRange, "engine: shard failed"), uint8(opAnswerRange), 1)
	f.Add(appendShape(nil, 1024, 32), uint8(opShape), 0)
	f.Add(appendCounters(nil, gpu.Stats{PRFBlocks: 9, ReadBytes: 10}), uint8(opCounters), 0)
	f.Add(appendOK(nil, opUpdate), uint8(opUpdate), 0)
	f.Add(appendEpochResp(nil, opEpoch, 12345), uint8(opEpoch), 0)
	f.Add(appendEpochResp(nil, opUpdateBatch, 2), uint8(opUpdateBatch), 0)
	f.Add(appendOK(nil, opPing), uint8(opPing), 0)
	f.Add(appendSnapMeta(nil, 6, 9, 0, 1024), uint8(opSnapMeta), 0)
	f.Add(appendSnapChunk(nil, 6, 0, 1024, 128, []uint32{1, 2, 3}), uint8(opSnapChunk), 0)
	f.Fuzz(func(t *testing.T, body []byte, op uint8, keys int) {
		if keys < 0 || keys > 1<<16 {
			return
		}
		_, _, _, _ = parseAnswers(body, op, keys)
		_, _, _ = parseShape(body)
		_, _ = parseCounters(body)
		_ = parseOK(body, op)
		_, _ = parseEpochResp(body, op)
		_, _, _, _, _ = parseSnapMeta(body)
		_, _, _, _, _, _ = parseSnapChunk(body)
	})
}

// FuzzSnapshotFrames exercises the protocol v3 snapshot-transfer codecs
// both ways: arbitrary bytes must never panic the decoders, accepted
// frames must carry sane row ranges, and every well-formed encode must
// decode back to the values that produced it. The heal path trusts these
// frames to stitch a table from a peer — a silently mis-decoded offset or
// range would corrupt a member instead of crashing it, so the round-trip
// check is the load-bearing half.
func FuzzSnapshotFrames(f *testing.F) {
	f.Add(uint64(6), uint64(9), uint64(0), uint64(1024), uint64(128), []byte{1, 0, 0, 0, 2, 0, 0, 0})
	f.Add(uint64(1), uint64(1), uint64(512), uint64(4096), uint64(0), []byte{})
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(1<<40), []byte{0xff})
	f.Fuzz(func(t *testing.T, snapEpoch, effEpoch, lo, hi, off uint64, raw []byte) {
		// Decoders first: raw bytes at both parsers must not panic, and an
		// accepted frame must satisfy the range invariant.
		if se, ee, plo, phi, err := parseSnapMeta(raw); err == nil {
			if plo < 0 || plo > phi {
				t.Fatalf("parseSnapMeta accepted range [%d,%d) (epochs %d/%d)", plo, phi, se, ee)
			}
		}
		if _, plo, phi, _, words, err := parseSnapChunk(raw); err == nil {
			if plo < 0 || plo > phi {
				t.Fatalf("parseSnapChunk accepted range [%d,%d)", plo, phi)
			}
			_ = words
		}
		// Encoders second: a well-formed encode must round-trip exactly.
		const maxInt = uint64(^uint(0) >> 1)
		if lo > maxInt || hi > maxInt || lo > hi {
			return
		}
		meta := appendSnapMeta(nil, snapEpoch, effEpoch, int(lo), int(hi))
		se, ee, plo, phi, err := parseSnapMeta(meta)
		if err != nil || se != snapEpoch || ee != effEpoch || uint64(plo) != lo || uint64(phi) != hi {
			t.Fatalf("snap meta does not round-trip: (%d,%d,[%d,%d)) -> (%d,%d,[%d,%d)), err %v",
				snapEpoch, effEpoch, lo, hi, se, ee, plo, phi, err)
		}
		words := make([]uint32, len(raw)/4)
		for i := range words {
			words[i] = uint64ToU32Sample(raw, i)
		}
		chunk := appendSnapChunk(nil, snapEpoch, int(lo), int(hi), off, words)
		ce, clo, chi, coff, cwords, err := parseSnapChunk(chunk)
		if err != nil || ce != snapEpoch || uint64(clo) != lo || uint64(chi) != hi || coff != off {
			t.Fatalf("snap chunk header does not round-trip: err %v", err)
		}
		if len(cwords) != len(words) {
			t.Fatalf("snap chunk carries %d words, sent %d", len(cwords), len(words))
		}
		for i := range words {
			if cwords[i] != words[i] {
				t.Fatalf("snap chunk word %d: sent %#x, got %#x", i, words[i], cwords[i])
			}
		}
	})
}

// uint64ToU32Sample derives the i-th fuzz word from the raw input bytes.
func uint64ToU32Sample(raw []byte, i int) uint32 {
	return uint32(raw[i*4]) | uint32(raw[i*4+1])<<8 | uint32(raw[i*4+2])<<16 | uint32(raw[i*4+3])<<24
}

// FuzzHandshake throws arbitrary frames at the handshake decoders — the
// FIRST bytes either side ever reads from its peer, gob-decoded, so this
// is the most attacker-reachable parser in the package. Neither direction
// may panic, and well-formed handshakes (epoch field included) must
// round-trip.
func FuzzHandshake(f *testing.F) {
	seed := func(v any) []byte {
		var buf bytes.Buffer
		if err := writeHandshake(&buf, v); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(&hello{Proto: protoName, Version: ProtocolVersion, PRG: "aes128", Early: 2, Party: 0}))
	f.Add(seed(&hello{Proto: protoName, Version: ProtocolVersion, Party: AdoptParty, Early: engine.FullDepthKeys}))
	f.Add(seed(&welcome{Version: ProtocolVersion, PRG: "chacha20", Early: 2, Party: 1,
		Rows: 1 << 20, Lanes: 32, RowLo: 0, RowHi: 1 << 19, Epoch: 42, EpochKnown: true}))
	f.Add(seed(&welcome{Err: "shardnet: handshake: unknown protocol"}))
	f.Add([]byte{4, 0, 0, 0, 0xff, 0xfe, 0xfd, 0xfc})
	f.Fuzz(func(t *testing.T, frame []byte) {
		var h hello
		if err := readHandshake(bytes.NewReader(frame), &h); err == nil {
			// An accepted hello must survive re-encoding (gob is not
			// byte-canonical, so round-trip the VALUES, not the bytes).
			var buf bytes.Buffer
			if err := writeHandshake(&buf, &h); err != nil {
				t.Fatalf("accepted hello does not re-encode: %v", err)
			}
			var h2 hello
			if err := readHandshake(&buf, &h2); err != nil || h2 != h {
				t.Fatalf("hello does not round-trip: %+v vs %+v (%v)", h, h2, err)
			}
		}
		var w welcome
		if err := readHandshake(bytes.NewReader(frame), &w); err == nil {
			var buf bytes.Buffer
			if err := writeHandshake(&buf, &w); err != nil {
				t.Fatalf("accepted welcome does not re-encode: %v", err)
			}
			var w2 welcome
			if err := readHandshake(&buf, &w2); err != nil || w2 != w {
				t.Fatalf("welcome does not round-trip: %+v vs %+v (%v)", w, w2, err)
			}
		}
	})
}
