package shardnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gpudpf/internal/backoff"
	"gpudpf/internal/engine"
	"gpudpf/internal/gpu"
)

// Options configures a Client's handshake pins and transport limits.
type Options struct {
	// PRG pins the PRF the node must serve ("" = adopt the node's).
	PRG string
	// Early pins the early-termination depth the node must serve:
	// 0 adopts the node's depth, engine.FullDepthKeys pins legacy
	// full-depth wire-v1 keys, positive values pin that resolved depth.
	Early int
	// Party pins which share the node must compute (AdoptParty = either).
	// The zero value pins party 0 — a cluster front always knows its
	// party, and a silent party mismatch yields garbage shares.
	Party int
	// MaxFrame caps frames both ways (0 = DefaultMaxFrame).
	MaxFrame int
	// DialTimeout bounds each TCP connect + handshake (0 = 10s).
	DialTimeout time.Duration
	// RPCTimeout bounds an RPC whose context carries no deadline of its
	// own (0 = DefaultRPCTimeout, negative = unbounded). It is the
	// backstop that keeps a front serving context.Background() batches —
	// cmd/pirserver's cluster mode, Update, Counters — from wedging
	// forever on a node that black-holes mid-RPC; callers with real
	// deadlines are unaffected.
	RPCTimeout time.Duration
	// Redial shapes the exponential backoff applied to fresh dials after
	// a dial failure (zero-valued fields take backoff.Default). While a
	// backoff window is open, RPCs that would need a fresh connection fail
	// fast, naming the remaining wait, instead of hammering a dead node
	// with TCP connects — which is what lets a cluster front's health
	// prober cycle a tripped member cheaply.
	Redial backoff.Policy
	// RedialSeed seeds the redial jitter stream, so tests (and fleets of
	// fronts, seeded distinctly) get decorrelated yet reproducible
	// schedules. Zero is a valid seed.
	RedialSeed uint64
}

// DefaultRPCTimeout caps deadline-less RPCs: generous against the largest
// legitimate batch on a congested link, small against "the operator is
// watching a hung front".
const DefaultRPCTimeout = 30 * time.Second

// Client speaks the shardnet protocol to one node and implements
// engine.RangeBackend (plus engine.BackendInfo and engine.RangeHolder from
// the handshake), so a remote shard plugs into an engine.Cluster — or any
// other Backend consumer — exactly like an in-process Replica. Connections
// are pooled: each RPC runs lockstep on its own connection, so concurrent
// calls overlap instead of queueing.
type Client struct {
	addr string
	opts Options
	w    welcome

	mu     sync.Mutex
	idle   []*poolConn
	closed bool

	// Redial backoff state, under its own lock so a backed-off dial check
	// never contends with the pool's hot path.
	bmu         sync.Mutex
	bo          *backoff.Backoff
	retryAt     time.Time
	lastDialErr error
}

// poolConn is one handshaken connection plus its reusable frame buffer.
type poolConn struct {
	conn net.Conn
	buf  []byte
}

// Dial connects to a shardnet node, runs the handshake (failing fast,
// with both sides' values named, on any configuration mismatch), and
// returns a pooled client.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = DefaultMaxFrame
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	if opts.RPCTimeout == 0 {
		opts.RPCTimeout = DefaultRPCTimeout
	}
	c := &Client{addr: addr, opts: opts}
	pc, w, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.w = w
	c.mu.Lock()
	c.idle = append(c.idle, pc)
	c.mu.Unlock()
	return c, nil
}

// dialConn opens and handshakes one connection.
func (c *Client) dialConn() (*poolConn, welcome, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, welcome{}, fmt.Errorf("shardnet: dial %s: %w", c.addr, err)
	}
	conn.SetDeadline(time.Now().Add(c.opts.DialTimeout))
	h := hello{
		Proto:   protoName,
		Version: ProtocolVersion,
		PRG:     c.opts.PRG,
		Early:   c.opts.Early,
		Party:   c.opts.Party,
	}
	if err := writeHandshake(conn, &h); err != nil {
		conn.Close()
		return nil, welcome{}, fmt.Errorf("shardnet: %s: handshake: %w", c.addr, err)
	}
	var w welcome
	if err := readHandshake(conn, &w); err != nil {
		conn.Close()
		return nil, welcome{}, fmt.Errorf("shardnet: %s: handshake: %w", c.addr, err)
	}
	if w.Err != "" {
		conn.Close()
		return nil, welcome{}, fmt.Errorf("shardnet: %s: %s", c.addr, w.Err)
	}
	// A welcome is peer-controlled input like any other: a nonsense shape
	// or held range must fail here, loudly, not later as a division by
	// zero in a front's batch arithmetic or a silently wrong assignment.
	if w.Rows <= 0 || w.Lanes <= 0 || w.RowLo < 0 || w.RowHi > w.Rows || w.RowLo >= w.RowHi {
		conn.Close()
		return nil, welcome{}, fmt.Errorf("shardnet: %s: handshake advertises an invalid table: %d×%d rows, held range [%d,%d)",
			c.addr, w.Rows, w.Lanes, w.RowLo, w.RowHi)
	}
	conn.SetDeadline(time.Time{})
	return &poolConn{conn: conn}, w, nil
}

// get pops an idle connection or dials a fresh one. A node restarted with
// a different configuration is caught here: every new connection's
// welcome must match the first — except the advertised table epoch, which
// legitimately moves with every update.
func (c *Client) get() (*poolConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("shardnet: %s: client is closed", c.addr)
	}
	if n := len(c.idle); n > 0 {
		pc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return pc, nil
	}
	c.mu.Unlock()
	// Fail fast inside an open backoff window: a cluster front retrying a
	// dead member must burn microseconds, not a TCP connect timeout per
	// attempt.
	c.bmu.Lock()
	if !c.retryAt.IsZero() {
		if wait := time.Until(c.retryAt); wait > 0 {
			last := c.lastDialErr
			c.bmu.Unlock()
			return nil, fmt.Errorf("shardnet: %s: redial backed off for another %v after: %w",
				c.addr, wait.Round(time.Millisecond), last)
		}
	}
	c.bmu.Unlock()
	pc, w, err := c.dialConn()
	c.bmu.Lock()
	if err != nil {
		if c.bo == nil {
			c.bo = backoff.New(c.opts.Redial, c.opts.RedialSeed)
		}
		c.retryAt = time.Now().Add(c.bo.Next())
		c.lastDialErr = err
		c.bmu.Unlock()
		return nil, err
	}
	if c.bo != nil {
		c.bo.Reset()
	}
	c.retryAt, c.lastDialErr = time.Time{}, nil
	c.bmu.Unlock()
	pinned, got := c.w, w
	pinned.Epoch, pinned.EpochKnown = 0, false
	got.Epoch, got.EpochKnown = 0, false
	if got != pinned {
		pc.conn.Close()
		return nil, fmt.Errorf("shardnet: %s: node configuration changed since first handshake (was %+v, now %+v)", c.addr, pinned, got)
	}
	return pc, nil
}

// put returns a healthy connection to the pool.
func (c *Client) put(pc *poolConn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		pc.conn.Close()
		return
	}
	c.idle = append(c.idle, pc)
	c.mu.Unlock()
}

// Close closes the pooled connections; in-flight RPCs on checked-out
// connections finish (their connections are then discarded).
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, pc := range idle {
		pc.conn.Close()
	}
	return nil
}

// do runs one lockstep RPC: frame out, frame back, parse under the
// connection's reusable buffer. ctx cancellation and deadlines propagate
// by slamming the connection deadline, so a dead or slow node costs the
// caller its deadline, not a hung goroutine. parse must consume the
// response before do returns (the buffer is pooled with the connection);
// a remote error (the node answered, but with a failure) keeps the
// connection pooled, any transport error retires it.
func (c *Client) do(ctx context.Context, body []byte, parse func(resp []byte) error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("shardnet: %s: %w", c.addr, err)
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && c.opts.RPCTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.RPCTimeout)
		defer cancel()
	}
	pc, err := c.get()
	if err != nil {
		return err
	}
	healthy := false
	defer func() {
		if healthy {
			c.put(pc)
		} else {
			pc.conn.Close()
		}
	}()
	if d, ok := ctx.Deadline(); ok {
		// Slightly past the ctx deadline: the AfterFunc below slams the
		// connection the instant ctx actually expires, so the net-layer
		// timeout never races ahead of ctx.Err() becoming non-nil; the
		// grace only bounds the wait if that callback is starved.
		pc.conn.SetDeadline(d.Add(100 * time.Millisecond))
	} else {
		pc.conn.SetDeadline(time.Time{})
	}
	stop := context.AfterFunc(ctx, func() { pc.conn.SetDeadline(time.Unix(1, 0)) })
	ioErr := func(stage string, err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("shardnet: %s: %s: %w", c.addr, stage, cerr)
		}
		return fmt.Errorf("shardnet: %s: %s: %w", c.addr, stage, err)
	}
	if err := writeFrame(pc.conn, body, c.opts.MaxFrame); err != nil {
		stop()
		return ioErr("send", err)
	}
	resp, err := readFrame(pc.conn, c.opts.MaxFrame, &pc.buf)
	if err != nil {
		stop()
		return ioErr("receive", err)
	}
	// stop() reports whether it prevented the cancel callback: if not, the
	// connection's deadline is (or is about to be) slammed — retire it
	// rather than poison the next request.
	healthy = stop()
	if err := parse(resp); err != nil {
		if errors.Is(err, ErrProtocol) {
			healthy = false
			return ioErr("response", err)
		}
		// The node executed the request and reported a failure; surface it
		// with the node named.
		return fmt.Errorf("shardnet: %s: node: %w", c.addr, err)
	}
	return nil
}

// Answer implements engine.Backend: the node evaluates the batch over its
// whole table.
func (c *Client) Answer(ctx context.Context, keys [][]byte) ([][]uint32, error) {
	body := appendRequest(nil, &rpcRequest{op: opAnswer, keys: keys})
	var answers [][]uint32
	err := c.do(ctx, body, func(resp []byte) error {
		var perr error
		answers, _, _, perr = parseAnswers(resp, opAnswer, len(keys))
		return perr
	})
	if err != nil {
		return nil, err
	}
	return answers, nil
}

// AnswerRange implements engine.RangeBackend: the node evaluates the batch
// over global rows [lo, hi) only, returning partial shares.
func (c *Client) AnswerRange(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error) {
	answers, _, _, err := c.AnswerRangeEpoch(ctx, keys, lo, hi)
	return answers, err
}

// AnswerRangeEpoch implements engine.EpochRangeBackend: AnswerRange plus
// the table epoch the node computed the partials at (ok false when the
// node's backend is not epoch-versioned) — what a cluster front needs to
// refuse merging a batch that straddled an update, or a stale standby.
func (c *Client) AnswerRangeEpoch(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, uint64, bool, error) {
	if lo < 0 || lo >= hi {
		return nil, 0, false, fmt.Errorf("shardnet: %s: row range [%d,%d) invalid", c.addr, lo, hi)
	}
	body := appendRequest(nil, &rpcRequest{op: opAnswerRange, keys: keys, lo: uint64(lo), hi: uint64(hi)})
	var answers [][]uint32
	var epoch uint64
	var hasEpoch bool
	err := c.do(ctx, body, func(resp []byte) error {
		var perr error
		answers, epoch, hasEpoch, perr = parseAnswers(resp, opAnswerRange, len(keys))
		return perr
	})
	if err != nil {
		return nil, 0, false, err
	}
	return answers, epoch, hasEpoch, nil
}

// Update implements engine.Backend, routing the row write to the node.
func (c *Client) Update(row uint64, vals []uint32) error {
	body := appendRequest(nil, &rpcRequest{op: opUpdate, row: row, vals: vals})
	return c.do(context.Background(), body, func(resp []byte) error {
		return parseOK(resp, opUpdate)
	})
}

// Epoch implements engine.EpochBackend: the node's current table epoch.
func (c *Client) Epoch(ctx context.Context) (uint64, error) {
	body := appendRequest(nil, &rpcRequest{op: opEpoch})
	var epoch uint64
	err := c.do(ctx, body, func(resp []byte) error {
		var perr error
		epoch, perr = parseEpochResp(resp, opEpoch)
		return perr
	})
	return epoch, err
}

// UpdateBatch implements engine.EpochBackend: the writes land atomically
// on the node as one new epoch, which is returned.
func (c *Client) UpdateBatch(ctx context.Context, writes []engine.RowWrite) (uint64, error) {
	body := appendRequest(nil, &rpcRequest{op: opUpdateBatch, writes: writes})
	var epoch uint64
	err := c.do(ctx, body, func(resp []byte) error {
		var perr error
		epoch, perr = parseEpochResp(resp, opUpdateBatch)
		return perr
	})
	return epoch, err
}

// PrepareUpdate implements engine.EpochBackend: stage the writes as the
// given epoch on the node (invisible until CommitUpdate).
func (c *Client) PrepareUpdate(ctx context.Context, epoch uint64, writes []engine.RowWrite) error {
	body := appendRequest(nil, &rpcRequest{op: opPrepare, epoch: epoch, writes: writes})
	return c.do(ctx, body, func(resp []byte) error {
		return parseOK(resp, opPrepare)
	})
}

// CommitUpdate implements engine.EpochBackend.
func (c *Client) CommitUpdate(ctx context.Context, epoch uint64) error {
	body := appendRequest(nil, &rpcRequest{op: opCommit, epoch: epoch})
	return c.do(ctx, body, func(resp []byte) error {
		return parseOK(resp, opCommit)
	})
}

// AbortUpdate implements engine.EpochBackend: drop or roll back the epoch
// on the node (idempotent, like store.Abort).
func (c *Client) AbortUpdate(ctx context.Context, epoch uint64) error {
	body := appendRequest(nil, &rpcRequest{op: opAbort, epoch: epoch})
	return c.do(ctx, body, func(resp []byte) error {
		return parseOK(resp, opAbort)
	})
}

// Ping implements engine.Pinger: one payload-free frame round-trip, the
// cheapest proof the node is up, handshaken and serving — what a cluster
// front's health prober sends before re-admitting a cooled-down member.
func (c *Client) Ping(ctx context.Context) error {
	body := appendRequest(nil, &rpcRequest{op: opPing})
	return c.do(ctx, body, func(resp []byte) error {
		return parseOK(resp, opPing)
	})
}

// SnapshotMeta implements engine.SnapshotSource: the node's pinned
// snapshot epoch, effective epoch, and the held row range its
// SnapshotChunk offsets are relative to — the donor handshake of a heal.
func (c *Client) SnapshotMeta(ctx context.Context) (snapEpoch, effEpoch uint64, lo, hi int, err error) {
	body := appendRequest(nil, &rpcRequest{op: opSnapMeta})
	err = c.do(ctx, body, func(resp []byte) error {
		var perr error
		snapEpoch, effEpoch, lo, hi, perr = parseSnapMeta(resp)
		return perr
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return snapEpoch, effEpoch, lo, hi, nil
}

// SnapshotChunk implements engine.SnapshotSource: up to max words of the
// node's snapshot buffer for its held range, from word offset off. The
// node may return fewer words than asked (its frame cap bounds a chunk);
// an empty return past the end terminates the stream. The response echoes
// epoch and offset, and a mismatch is a protocol error — a resumed
// transfer can never be stitched from mismatched frames.
func (c *Client) SnapshotChunk(ctx context.Context, epoch uint64, off, max int) ([]uint32, error) {
	if off < 0 || max <= 0 {
		return nil, fmt.Errorf("shardnet: %s: snapshot chunk needs off >= 0 and max > 0 (got %d, %d)", c.addr, off, max)
	}
	wantMax := uint64(max)
	if wantMax > uint64(^uint32(0)) {
		wantMax = uint64(^uint32(0))
	}
	body := appendRequest(nil, &rpcRequest{op: opSnapChunk, epoch: epoch, off: uint64(off), max: uint32(wantMax)})
	var words []uint32
	err := c.do(ctx, body, func(resp []byte) error {
		gotEpoch, _, _, gotOff, w, perr := parseSnapChunk(resp)
		if perr != nil {
			return perr
		}
		if gotEpoch != epoch || gotOff != uint64(off) {
			return fmt.Errorf("%w: snapshot chunk answers epoch %d offset %d for request epoch %d offset %d",
				ErrProtocol, gotEpoch, gotOff, epoch, off)
		}
		words = w
		return nil
	})
	if err != nil {
		return nil, err
	}
	return words, nil
}

// Counters implements engine.Backend with the node's counters; a node that
// cannot be reached reports zeros (the Backend seam has no error path
// here, and counters are advisory).
func (c *Client) Counters() gpu.Stats {
	var stats gpu.Stats
	body := appendRequest(nil, &rpcRequest{op: opCounters})
	err := c.do(context.Background(), body, func(resp []byte) error {
		var perr error
		stats, perr = parseCounters(resp)
		return perr
	})
	if err != nil {
		return gpu.Stats{}
	}
	return stats
}

// Shape implements engine.Backend from the handshake (the node's shape is
// immutable for the life of the process).
func (c *Client) Shape() (rows, lanes int) { return c.w.Rows, c.w.Lanes }

// RemoteShape queries the node's shape over the wire — Shape answers from
// the handshake; this exists to exercise the RPC and for monitoring.
func (c *Client) RemoteShape(ctx context.Context) (rows, lanes int, err error) {
	body := appendRequest(nil, &rpcRequest{op: opShape})
	err = c.do(ctx, body, func(resp []byte) error {
		var perr error
		rows, lanes, perr = parseShape(resp)
		return perr
	})
	return rows, lanes, err
}

// PRGName implements engine.BackendInfo from the handshake.
func (c *Client) PRGName() string { return c.w.PRG }

// EarlyBits implements engine.BackendInfo from the handshake.
func (c *Client) EarlyBits() int { return c.w.Early }

// Party implements engine.BackendInfo from the handshake.
func (c *Client) Party() int { return c.w.Party }

// HeldRange implements engine.RangeHolder: the global rows the node
// advertised holding.
func (c *Client) HeldRange() (lo, hi int) { return c.w.RowLo, c.w.RowHi }

// Addr returns the node address this client dials.
func (c *Client) Addr() string { return c.addr }

// AdvertisedEpoch returns the table epoch the node advertised in the
// handshake (advisory — the authoritative epoch rides on every answer),
// and whether the node's backend is epoch-versioned at all.
func (c *Client) AdvertisedEpoch() (epoch uint64, known bool) { return c.w.Epoch, c.w.EpochKnown }

var _ engine.RangeBackend = (*Client)(nil)
var _ engine.BackendInfo = (*Client)(nil)
var _ engine.RangeHolder = (*Client)(nil)
var _ engine.EpochBackend = (*Client)(nil)
var _ engine.EpochRangeBackend = (*Client)(nil)
var _ engine.Pinger = (*Client)(nil)
var _ engine.SnapshotSource = (*Client)(nil)
