package shardnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gpudpf/internal/engine"
)

// ServerConfig assembles a shard node.
type ServerConfig struct {
	// RowLo, RowHi is the global row range this node authoritatively
	// holds, advertised in the handshake so a cluster front can refuse an
	// assignment the node cannot serve. Both zero means the node holds
	// its backend's whole table.
	RowLo, RowHi int
	// MaxFrame caps accepted and emitted frames (0 = DefaultMaxFrame).
	MaxFrame int
	// MaxBatch caps the keys accepted in one Answer/AnswerRange request
	// (0 = DefaultMaxBatch), enforced in the request parser before any
	// per-key allocation. The frame cap bounds request BYTES, but a
	// hostile frame full of zero-length keys would otherwise still buy a
	// large allocation fan-out — millions of slice headers at parse, then
	// key structs and per-shard partials in the backend — before the
	// first key fails to unmarshal.
	MaxBatch int
	// WriteTimeout bounds each response write (0 = 30s): a peer that
	// requests a batch and then never reads would otherwise fill the TCP
	// window and pin the connection's goroutine and response buffer until
	// the server closes.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds how long a fresh connection may take to
	// complete the handshake (0 = 10s). Without it, a peer that connects
	// and sends nothing — a port scanner, a wedged front — would hold a
	// goroutine and file descriptor forever; the frame caps bound hostile
	// input in bytes, this bounds it in time. Established connections are
	// exempt: an idle pooled connection from a front is normal.
	HandshakeTimeout time.Duration
}

// Server exposes an engine.RangeBackend over the shardnet protocol. The
// node's pinned configuration (PRF, early-termination depth, party) is
// read from the backend when it implements engine.BackendInfo — every
// engine.Replica does — and enforced against each client's handshake.
type Server struct {
	be           engine.RangeBackend
	hsTimeout    time.Duration
	writeTimeout time.Duration
	maxFrame     int
	maxBatch     int
	rows         int
	lanes        int
	lo, hi       int
	prg          string
	early        int
	party        int
	hasInfo      bool

	// ctx cancels in-flight backend work when the server closes: a shard
	// node shutting down abandons its partial sums instead of finishing
	// batches nobody will merge.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
}

// NewServer builds a node over the backend.
func NewServer(be engine.RangeBackend, cfg ServerConfig) (*Server, error) {
	if be == nil {
		return nil, errors.New("shardnet: nil backend")
	}
	rows, lanes := be.Shape()
	lo, hi := cfg.RowLo, cfg.RowHi
	if lo == 0 && hi == 0 {
		hi = rows
	}
	if lo < 0 || hi > rows || lo >= hi {
		return nil, fmt.Errorf("shardnet: held row range [%d,%d) invalid for table of %d rows", lo, hi, rows)
	}
	maxFrame := cfg.MaxFrame
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	s := &Server{
		be:           be,
		hsTimeout:    cfg.HandshakeTimeout,
		writeTimeout: cfg.WriteTimeout,
		maxFrame:     maxFrame,
		maxBatch:     cfg.MaxBatch,
		rows:         rows,
		lanes:        lanes,
		lo:           lo,
		hi:           hi,
		party:        AdoptParty,
		listeners:    map[net.Listener]struct{}{},
		conns:        map[net.Conn]struct{}{},
	}
	if info, ok := engine.AsInfo(be); ok {
		s.prg, s.early, s.party = info.PRGName(), info.EarlyBits(), info.Party()
		s.hasInfo = true
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	return s, nil
}

// Serve runs a blocking accept loop on l, answering shardnet connections
// until l closes (or the server does). Multiple Serve calls on different
// listeners are allowed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("shardnet: server is closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("shardnet: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops the node: listeners and live connections are closed and
// in-flight backend work is cancelled. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ls := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		ls = append(ls, l)
	}
	cs := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		cs = append(cs, c)
	}
	s.mu.Unlock()
	s.cancel()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range cs {
		c.Close()
	}
	return nil
}

// handshake answers one client hello; reports whether the connection may
// proceed to the RPC loop.
func (s *Server) handshake(conn net.Conn) bool {
	conn.SetDeadline(time.Now().Add(s.hsTimeout))
	defer conn.SetDeadline(time.Time{})
	var h hello
	if err := readHandshake(conn, &h); err != nil {
		return false
	}
	w := welcome{
		Version: ProtocolVersion,
		PRG:     s.prg,
		Early:   s.early,
		Party:   s.party,
		Rows:    s.rows,
		Lanes:   s.lanes,
		RowLo:   s.lo,
		RowHi:   s.hi,
	}
	if eb, ok := engine.AsEpoch(s.be); ok {
		if epoch, err := eb.Epoch(s.ctx); err == nil {
			w.Epoch, w.EpochKnown = epoch, true
		}
	}
	switch {
	case h.Proto != protoName:
		w.Err = fmt.Sprintf("shardnet: handshake: unknown protocol %q, this node speaks %q", h.Proto, protoName)
	case h.Version != ProtocolVersion:
		w.Err = fmt.Sprintf("shardnet: handshake: client speaks shardnet wire version %d, this node speaks version %d", h.Version, ProtocolVersion)
	case h.PRG != "" && s.hasInfo && h.PRG != s.prg:
		w.Err = fmt.Sprintf("shardnet: handshake: client keys use prg=%s, this node serves prg=%s", h.PRG, s.prg)
	case h.Early != 0 && s.hasInfo && normEarly(h.Early) != s.early:
		w.Err = fmt.Sprintf("shardnet: handshake: client keys carry early-termination depth %d, this node serves depth %d", normEarly(h.Early), s.early)
	case h.Party != AdoptParty && s.hasInfo && h.Party != s.party:
		w.Err = fmt.Sprintf("shardnet: handshake: client expects party-%d shares, this node computes party %d", h.Party, s.party)
	}
	if !s.hasInfo {
		// A backend without pinned configuration adopts the client's
		// expectations verbatim so the client's own records stay coherent.
		if h.PRG != "" {
			w.PRG = h.PRG
		}
		if h.Early != 0 {
			w.Early = normEarly(h.Early)
		}
		if h.Party != AdoptParty {
			w.Party = h.Party
		}
	}
	if err := writeHandshake(conn, &w); err != nil {
		return false
	}
	return w.Err == ""
}

// frameResult is one read frame (or the read error that ended the stream)
// handed from a connection's reader goroutine to its RPC loop.
type frameResult struct {
	body []byte
	err  error
}

// serveConn runs the handshake and then the lockstep RPC loop for one
// connection. All reads happen on a dedicated reader goroutine so the
// loop learns about a dead or departed peer WHILE the backend is still
// evaluating — the connection context is cancelled the moment the read
// side fails, and dispatch runs under that context, so abandoned batches
// stop burning shard CPU instead of completing for nobody.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	if !s.handshake(conn) {
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	// Capacity 2 keeps the common case allocation-light; a pipelining peer
	// can fill both slots with body frames, so EVERY reader send carries a
	// ctx.Done escape (the loop's deferred cancel fires if it returns
	// early) — without one, the final error send could block forever and
	// leak the goroutine. The error is sent BEFORE cancel(), so whenever
	// the loop sees Done from the reader's own cancel, the error is
	// already drainable.
	frames := make(chan frameResult, 2)
	go func() {
		var buf []byte
		for {
			body, err := readFrame(conn, s.maxFrame, &buf)
			if err != nil {
				select {
				case frames <- frameResult{err: err}:
				case <-ctx.Done():
				}
				cancel() // peer gone or unrecoverable stream: abandon in-flight work
				return
			}
			// The read buffer is reused; hand the loop its own copy in case
			// a pipelining client has the next frame arrive mid-dispatch.
			// The ctx arm keeps the reader from leaking if the RPC loop
			// already returned (its deferred cancel fires).
			select {
			case frames <- frameResult{body: append([]byte(nil), body...)}:
			case <-ctx.Done():
				return
			}
		}
	}()
	var respBuf []byte
	for {
		var fr frameResult
		select {
		case fr = <-frames:
		case <-ctx.Done():
			// The reader queues its error before cancelling, so drain it if
			// present; an empty channel means the server itself is closing.
			select {
			case fr = <-frames:
			default:
				return
			}
		}
		if fr.err != nil {
			if errors.Is(fr.err, ErrFrameTooLarge) || errors.Is(fr.err, ErrProtocol) {
				// Name the violation to the peer before hanging up; the
				// stream position is unrecoverable past a refused frame.
				_ = s.writeResponse(conn, appendErrResponse(respBuf[:0], opErr, fr.err.Error()))
			}
			return
		}
		req, err := parseRequest(fr.body, s.maxBatch)
		if err != nil {
			_ = s.writeResponse(conn, appendErrResponse(respBuf[:0], opErr, err.Error()))
			return
		}
		resp := s.dispatch(ctx, req, respBuf[:0])
		if err := s.writeResponse(conn, resp); err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// The request was legitimate but its answer does not fit the
				// cap (answers scale with lanes, requests with key bytes).
				// Tell the client why instead of leaving it an opaque EOF;
				// the error frame itself always fits.
				_ = s.writeResponse(conn, appendErrResponse(resp[:0], opErr,
					fmt.Sprintf("shardnet: %d-byte response exceeds the %d-byte frame cap; narrow the batch", len(resp), s.maxFrame)))
			}
			return
		}
		respBuf = resp[:0]
	}
}

// writeResponse sends one response frame under the per-write deadline, so
// a peer that stops reading cannot pin the connection's goroutine and
// response buffer past WriteTimeout.
func (s *Server) writeResponse(conn net.Conn, body []byte) error {
	conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
	return writeFrame(conn, body, s.maxFrame)
}

// dispatch executes one parsed request against the backend and encodes the
// response into dst. Requests are held to the node's authoritative row
// range: rows outside [lo, hi) are zero in a shard node's table, so
// answering for them would return silently wrong partial shares — exactly
// the failure mode this package exists to make loud.
func (s *Server) dispatch(ctx context.Context, req *rpcRequest, dst []byte) []byte {
	switch req.op {
	case opAnswer:
		if s.lo != 0 || s.hi != s.rows {
			return appendErrResponse(dst, req.op,
				fmt.Sprintf("shardnet: this node holds only rows [%d,%d) of %d; whole-table Answer needs AnswerRange through a cluster", s.lo, s.hi, s.rows))
		}
		return s.dispatchAnswers(ctx, req, dst, 0, s.rows)
	case opAnswerRange:
		if req.hi > uint64(s.rows) || req.lo >= req.hi {
			return appendErrResponse(dst, req.op, fmt.Sprintf("shardnet: row range [%d,%d) invalid for table of %d rows", req.lo, req.hi, s.rows))
		}
		if req.lo < uint64(s.lo) || req.hi > uint64(s.hi) {
			return appendErrResponse(dst, req.op,
				fmt.Sprintf("shardnet: row range [%d,%d) outside the rows [%d,%d) this node holds", req.lo, req.hi, s.lo, s.hi))
		}
		return s.dispatchAnswers(ctx, req, dst, int(req.lo), int(req.hi))
	case opUpdate:
		if req.row < uint64(s.lo) || req.row >= uint64(s.hi) {
			return appendErrResponse(dst, req.op,
				fmt.Sprintf("shardnet: update row %d outside the rows [%d,%d) this node holds", req.row, s.lo, s.hi))
		}
		if err := s.be.Update(req.row, req.vals); err != nil {
			return appendErrResponse(dst, req.op, err.Error())
		}
		return appendOK(dst, req.op)
	case opUpdateBatch:
		eb, resp := s.epochBackend(req, dst)
		if eb == nil {
			return resp
		}
		if resp := s.checkWritesHeld(req, dst); resp != nil {
			return resp
		}
		epoch, err := eb.UpdateBatch(ctx, req.writes)
		if err != nil {
			return appendErrResponse(dst, req.op, err.Error())
		}
		return appendEpochResp(dst, req.op, epoch)
	case opEpoch:
		eb, resp := s.epochBackend(req, dst)
		if eb == nil {
			return resp
		}
		epoch, err := eb.Epoch(ctx)
		if err != nil {
			return appendErrResponse(dst, req.op, err.Error())
		}
		return appendEpochResp(dst, req.op, epoch)
	case opPrepare:
		eb, resp := s.epochBackend(req, dst)
		if eb == nil {
			return resp
		}
		if resp := s.checkWritesHeld(req, dst); resp != nil {
			return resp
		}
		if err := eb.PrepareUpdate(ctx, req.epoch, req.writes); err != nil {
			return appendErrResponse(dst, req.op, err.Error())
		}
		return appendOK(dst, req.op)
	case opCommit:
		eb, resp := s.epochBackend(req, dst)
		if eb == nil {
			return resp
		}
		if err := eb.CommitUpdate(ctx, req.epoch); err != nil {
			return appendErrResponse(dst, req.op, err.Error())
		}
		return appendOK(dst, req.op)
	case opAbort:
		eb, resp := s.epochBackend(req, dst)
		if eb == nil {
			return resp
		}
		if err := eb.AbortUpdate(ctx, req.epoch); err != nil {
			return appendErrResponse(dst, req.op, err.Error())
		}
		return appendOK(dst, req.op)
	case opShape:
		rows, lanes := s.be.Shape()
		return appendShape(dst, rows, lanes)
	case opCounters:
		return appendCounters(dst, s.be.Counters())
	case opPing:
		return appendOK(dst, req.op)
	case opSnapMeta:
		src, resp := s.snapshotSource(req, dst)
		if src == nil {
			return resp
		}
		snapEpoch, effEpoch, beLo, beHi, err := src.SnapshotMeta(ctx)
		if err != nil {
			return appendErrResponse(dst, req.op, err.Error())
		}
		if beLo > s.lo || beHi < s.hi {
			return appendErrResponse(dst, req.op,
				fmt.Sprintf("shardnet: backend snapshot covers rows [%d,%d), this node holds [%d,%d)", beLo, beHi, s.lo, s.hi))
		}
		// Advertise the node's authoritative range, not the backend's: chunk
		// offsets are relative to what a healing peer should adopt.
		return appendSnapMeta(dst, snapEpoch, effEpoch, s.lo, s.hi)
	case opSnapChunk:
		src, resp := s.snapshotSource(req, dst)
		if src == nil {
			return resp
		}
		if req.max == 0 {
			return appendErrResponse(dst, req.op, "shardnet: snapshot chunk needs max > 0")
		}
		heldWords := uint64(s.hi-s.lo) * uint64(s.lanes)
		if req.off >= heldWords {
			// Past the end of the held range: the empty chunk terminates the
			// stream, epoch and offset echoed so the client can pair it up.
			return appendSnapChunk(dst, req.epoch, s.lo, s.hi, req.off, nil)
		}
		want := uint64(req.max)
		if rem := heldWords - req.off; want > rem {
			want = rem
		}
		// Leave headroom for the chunk header inside the frame cap so a
		// max-sized request never produces an unsendable response.
		if frameCap := uint64(s.maxFrame-64) / 4; want > frameCap {
			want = frameCap
		}
		// Offsets on the wire are relative to the node's held range;
		// translate into the backend snapshot's buffer, which may start
		// below s.lo.
		_, _, beLo, _, err := src.SnapshotMeta(ctx)
		if err != nil {
			return appendErrResponse(dst, req.op, err.Error())
		}
		beOff := (s.lo-beLo)*s.lanes + int(req.off)
		words, err := src.SnapshotChunk(ctx, req.epoch, beOff, int(want))
		if err != nil {
			return appendErrResponse(dst, req.op, err.Error())
		}
		return appendSnapChunk(dst, req.epoch, s.lo, s.hi, req.off, words)
	}
	return appendErrResponse(dst, opErr, fmt.Sprintf("shardnet: unknown opcode %#x", req.op))
}

// snapshotSource resolves the backend's snapshot-export capability for a
// v3 heal RPC, or encodes the named refusal.
func (s *Server) snapshotSource(req *rpcRequest, dst []byte) (engine.SnapshotSource, []byte) {
	src, ok := engine.AsSnapshotSource(s.be)
	if !ok {
		return nil, appendErrResponse(dst, req.op, "shardnet: this node's backend does not export snapshots")
	}
	return src, nil
}

// dispatchAnswers runs an answer-type request over [lo, hi) and encodes
// the response, carrying the evaluation epoch when the backend pins one.
func (s *Server) dispatchAnswers(ctx context.Context, req *rpcRequest, dst []byte, lo, hi int) []byte {
	if eb, ok := engine.AsEpochRange(s.be); ok {
		answers, epoch, hasEpoch, err := eb.AnswerRangeEpoch(ctx, req.keys, lo, hi)
		if err != nil {
			return appendErrResponse(dst, req.op, err.Error())
		}
		return appendAnswers(dst, req.op, answers, s.lanes, epoch, hasEpoch)
	}
	var answers [][]uint32
	var err error
	if req.op == opAnswer {
		answers, err = s.be.Answer(ctx, req.keys)
	} else {
		answers, err = s.be.AnswerRange(ctx, req.keys, lo, hi)
	}
	if err != nil {
		return appendErrResponse(dst, req.op, err.Error())
	}
	return appendAnswers(dst, req.op, answers, s.lanes, 0, false)
}

// epochBackend resolves the backend's epoch capability for a v2 update
// RPC, or encodes the named refusal.
func (s *Server) epochBackend(req *rpcRequest, dst []byte) (engine.EpochBackend, []byte) {
	eb, ok := engine.AsEpoch(s.be)
	if !ok {
		return nil, appendErrResponse(dst, req.op, "shardnet: this node's backend does not support epoch-versioned updates")
	}
	return eb, nil
}

// checkWritesHeld enforces the node's authoritative row range on an
// update batch: a write outside it would land in rows this node serves as
// zero-filled garbage — the loud refusal the held-range check exists for.
func (s *Server) checkWritesHeld(req *rpcRequest, dst []byte) []byte {
	for i, w := range req.writes {
		if w.Row < uint64(s.lo) || w.Row >= uint64(s.hi) {
			return appendErrResponse(dst, req.op,
				fmt.Sprintf("shardnet: write %d targets row %d outside the rows [%d,%d) this node holds", i, w.Row, s.lo, s.hi))
		}
	}
	return nil
}
