// Replica-group fault and heal coverage over real TCP: load-balanced
// N-member shards must survive member death mid-batch bit-identically,
// a stale member must be quarantined and then healed to the current
// epoch over the snapshot RPCs while update churn keeps moving the
// cluster, and the client's redial backoff must fail fast instead of
// hammering a dead node.
package shardnet

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gpudpf/internal/backoff"
	"gpudpf/internal/engine"
	"gpudpf/internal/strategy"
)

// memberTrio starts three nodes over the same shard rows (the first
// wrapped by wrap) and dials all three.
func memberTrio(t *testing.T, tab *strategy.Table, cfg engine.Config, lo, hi int, wrap func(engine.RangeBackend) engine.RangeBackend) (srv0 *Server, cls [3]*Client, addrs [3]string) {
	t.Helper()
	var opts Options
	for j := 0; j < 3; j++ {
		rep := newReplica(t, shardTable(t, tab, lo, hi), cfg)
		if j == 0 {
			opts = Options{PRG: rep.PRGName(), Early: rep.EarlyBits(), Party: rep.Party()}
		}
		be := engine.RangeBackend(rep)
		if j == 0 {
			be = wrap(be)
		}
		srv, addr := startNode(t, be, ServerConfig{RowLo: lo, RowHi: hi})
		if j == 0 {
			srv0 = srv
		}
		cl, err := Dial(addr, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		cls[j], addrs[j] = cl, addr
	}
	return srv0, cls, addrs
}

// TestClusterGroupKillMidBatchTCP is the replica-group acceptance test:
// a 4-shard mixed cluster where shard 2 is a THREE-member group over real
// TCP serves a batch while the member evaluating it is killed; the batch
// completes off a sibling bit-identically. Then a second member's client
// is closed — the group degraded to one live member keeps serving.
func TestClusterGroupKillMidBatchTCP(t *testing.T) {
	const rows, lanes, shards, remoteIdx = 256, 4, 4, 2
	tab := buildTable(t, rows, lanes, 33)
	cfg := engine.Config{Party: 0}
	started := make(chan struct{})
	var srv0 *Server
	var cls [3]*Client
	members := make([]engine.ClusterShard, shards)
	for i := 0; i < shards; i++ {
		if i != remoteIdx {
			members[i] = engine.ClusterShard{Backend: newReplica(t, tab, cfg)}
			continue
		}
		lo, hi := engine.ShardRange(rows, i, shards)
		var addrs [3]string
		srv0, cls, addrs = memberTrio(t, tab, cfg, lo, hi, func(be engine.RangeBackend) engine.RangeBackend {
			return &blockingBackend{RangeBackend: be, started: started}
		})
		members[i] = engine.ClusterShard{
			Members:     []engine.RangeBackend{cls[0], cls[1], cls[2]},
			MemberNames: addrs[:],
		}
	}
	cluster, err := engine.NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	if got := cluster.GroupSize(remoteIdx); got != 3 {
		t.Fatalf("GroupSize = %d, want 3", got)
	}
	keys, _ := genKeysForCluster(t, cluster)

	type res struct {
		answers [][]uint32
		err     error
	}
	resCh := make(chan res, 1)
	go func() {
		a, err := cluster.Answer(context.Background(), keys)
		resCh <- res{a, err}
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("member node never started evaluating")
	}
	srv0.Close() // kill the evaluating member mid-batch

	var r res
	select {
	case r = <-resCh:
	case <-time.After(10 * time.Second):
		t.Fatal("cluster answer did not complete after member death")
	}
	if r.err != nil {
		t.Fatalf("group failover answer failed: %v", r.err)
	}
	ref := newReplica(t, tab, cfg)
	want, err := ref.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameShares(r.answers, want); err != nil {
		t.Fatalf("group failover answers diverge from single replica: %v", err)
	}

	// Degrade to one live member: the group still serves, bit-identically.
	cls[1].Close()
	got, err := cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatalf("degraded group failed: %v", err)
	}
	if err := sameShares(got, want); err != nil {
		t.Fatalf("degraded group answers diverge: %v", err)
	}
}

// TestSnapshotRPCs drives the protocol v3 snapshot pair directly against
// a node holding a sub-range: meta advertises the held range, chunks are
// resumable at arbitrary word offsets and reassemble to the node's exact
// rows, reads past the end terminate the stream, and a chunk requested at
// a superseded epoch fails loudly instead of serving torn bytes.
func TestSnapshotRPCs(t *testing.T) {
	const rows, lanes = 128, 4
	const lo, hi = 64, 128
	tab := buildTable(t, rows, lanes, 34)
	cfg := engine.Config{Party: 0}
	rep := newReplica(t, shardTable(t, tab, lo, hi), cfg)
	_, addr := startNode(t, rep, ServerConfig{RowLo: lo, RowHi: hi})
	cl, err := Dial(addr, Options{PRG: rep.PRGName(), Early: rep.EarlyBits(), Party: rep.Party()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	if err := cl.Ping(ctx); err != nil {
		t.Fatalf("ping failed: %v", err)
	}
	snapEpoch, effEpoch, gotLo, gotHi, err := cl.SnapshotMeta(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gotLo != lo || gotHi != hi {
		t.Fatalf("meta advertises rows [%d,%d), node holds [%d,%d)", gotLo, gotHi, lo, hi)
	}
	if snapEpoch != 0 || effEpoch != 0 {
		t.Fatalf("fresh node at snapshot epoch %d / effective %d, want 0/0", snapEpoch, effEpoch)
	}

	// Pull the held range in deliberately awkward chunk sizes and check
	// every word against the source table.
	words := (hi - lo) * lanes
	buf := make([]uint32, 0, words)
	for len(buf) < words {
		chunk, err := cl.SnapshotChunk(ctx, snapEpoch, len(buf), 37)
		if err != nil {
			t.Fatalf("chunk at offset %d: %v", len(buf), err)
		}
		if len(chunk) == 0 {
			t.Fatalf("stream ended at %d of %d words", len(buf), words)
		}
		buf = append(buf, chunk...)
	}
	for w := range buf {
		if want := tab.Data[lo*lanes+w]; buf[w] != want {
			t.Fatalf("word %d (row %d): pulled %#x, table holds %#x", w, lo+w/lanes, buf[w], want)
		}
	}

	// Resume from an arbitrary offset: same bytes.
	mid := words / 3
	chunk, err := cl.SnapshotChunk(ctx, snapEpoch, mid, words)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk) != words-mid {
		t.Fatalf("resume at %d returned %d words, want %d", mid, len(chunk), words-mid)
	}
	for i, v := range chunk {
		if v != buf[mid+i] {
			t.Fatalf("resumed word %d diverges", mid+i)
		}
	}

	// Past the end: empty terminator, not an error.
	if tail, err := cl.SnapshotChunk(ctx, snapEpoch, words, 64); err != nil || len(tail) != 0 {
		t.Fatalf("past-end chunk: %d words, %v", len(tail), err)
	}

	// Move the node's epoch; the old-epoch transfer must fail loudly and a
	// fresh meta must advertise the new epoch.
	if _, err := rep.UpdateBatch(ctx, []engine.RowWrite{{Row: lo + 1, Vals: []uint32{1, 2, 3, 4}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SnapshotChunk(ctx, snapEpoch, 0, 64); err == nil || !strings.Contains(err.Error(), "restart from SnapshotMeta") {
		t.Fatalf("superseded-epoch chunk: %v", err)
	}
	if se, _, _, _, err := cl.SnapshotMeta(ctx); err != nil || se != 1 {
		t.Fatalf("post-update meta: epoch %d, %v (want 1)", se, err)
	}
}

// TestClusterHealStaleMemberTCP is the heal acceptance test: a two-member
// TCP replica group where one member missed an epoch is quarantined by
// the next update handshake, then healed back to the CURRENT epoch over
// the snapshot RPCs while background refresh churn keeps advancing the
// cluster — and afterwards the healed member serves the updated rows
// bit-identically to its donor.
func TestClusterHealStaleMemberTCP(t *testing.T) {
	const rows, lanes, shards = 128, 2, 2
	tab := buildTable(t, rows, lanes, 35)
	cfg := engine.Config{Party: 0}
	ctx := context.Background()

	shard0 := newReplica(t, tab, cfg)
	lo, hi := engine.ShardRange(rows, 1, shards)
	m0rep := newReplica(t, shardTable(t, tab, lo, hi), cfg)
	m1rep := newReplica(t, shardTable(t, tab, lo, hi), cfg)
	_, m0addr := startNode(t, m0rep, ServerConfig{RowLo: lo, RowHi: hi})
	_, m1addr := startNode(t, m1rep, ServerConfig{RowLo: lo, RowHi: hi})
	opts := Options{PRG: shard0.PRGName(), Early: shard0.EarlyBits(), Party: shard0.Party()}
	m0cl, err := Dial(m0addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m0cl.Close()
	m1cl, err := Dial(m1addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m1cl.Close()
	cluster, err := engine.NewCluster(
		engine.ClusterShard{Backend: shard0, Name: "local"},
		engine.ClusterShard{Members: []engine.RangeBackend{m0cl, m1cl}, MemberNames: []string{m0addr, m1addr}},
	)
	if err != nil {
		t.Fatal(err)
	}
	ref := newReplica(t, buildTable(t, rows, lanes, 35), cfg)

	// Member 1 misses an epoch: its siblings move without it.
	w1 := []engine.RowWrite{{Row: uint64(lo), Vals: []uint32{7, 7}}}
	for _, r := range []*engine.Replica{shard0, m0rep} {
		if _, err := r.UpdateBatch(ctx, w1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ref.UpdateBatch(ctx, w1); err != nil {
		t.Fatal(err)
	}

	// The next cluster update quarantines the laggard and still lands.
	w2 := []engine.RowWrite{{Row: 3, Vals: []uint32{8, 8}}}
	if _, err := cluster.UpdateBatch(ctx, w2); err != nil {
		t.Fatalf("update failed despite a current member per shard: %v", err)
	}
	if _, err := ref.UpdateBatch(ctx, w2); err != nil {
		t.Fatal(err)
	}
	if st := cluster.Status(1); !st[1].Quarantined {
		t.Fatalf("stale member not quarantined: %+v", st)
	}

	// Background churn: refresh batches keep advancing the cluster (and
	// the reference replica, in lockstep) while the heal is in flight.
	var (
		churnWG   sync.WaitGroup
		stopChurn = make(chan struct{})
	)
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := uint32(0); ; i++ {
			select {
			case <-stopChurn:
				return
			case <-time.After(2 * time.Millisecond):
			}
			w := []engine.RowWrite{{Row: uint64(20 + int(i)%8), Vals: []uint32{i, i + 1}}}
			if _, err := ref.UpdateBatch(ctx, w); err != nil {
				t.Errorf("ref churn: %v", err)
				return
			}
			if _, err := cluster.UpdateBatch(ctx, w); err != nil {
				t.Errorf("cluster churn: %v", err)
				return
			}
		}
	}()

	if err := cluster.Heal(ctx, 1, 1); err != nil {
		close(stopChurn)
		churnWG.Wait()
		t.Fatalf("heal under churn failed: %v", err)
	}
	close(stopChurn)
	churnWG.Wait()

	if st := cluster.Status(1); st[1].Quarantined || st[1].Tripped {
		t.Fatalf("healed member still out of rotation: %+v", st[1])
	}
	e0, err := m0cl.Epoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := m1cl.Epoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if e0 != e1 {
		t.Fatalf("healed member at epoch %d, donor at %d", e1, e0)
	}

	// The healed member serves the donor's exact rows...
	keys, _ := genKeysForCluster(t, cluster)
	donorPart, err := m0cl.AnswerRange(ctx, keys, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	healedPart, err := m1cl.AnswerRange(ctx, keys, lo, hi)
	if err != nil {
		t.Fatalf("healed member not serving: %v", err)
	}
	if err := sameShares(healedPart, donorPart); err != nil {
		t.Fatalf("healed member's partials diverge from its donor: %v", err)
	}
	// ...and the cluster as a whole stays bit-identical to the reference.
	want, err := ref.Answer(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.Answer(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameShares(got, want); err != nil {
		t.Fatalf("post-heal cluster diverges from reference: %v", err)
	}

	// And the healed member rides the next handshake like everyone else.
	if _, err := cluster.UpdateBatch(ctx, []engine.RowWrite{{Row: 5, Vals: []uint32{1, 2}}}); err != nil {
		t.Fatalf("post-heal update failed: %v", err)
	}
	if st := cluster.Status(1); st[1].Quarantined {
		t.Fatalf("healed member re-quarantined by the next update: %+v", st[1])
	}
}

// TestClientRedialBackoff: after a dial failure the client opens a
// backoff window during which RPCs needing a fresh connection fail fast
// — naming the wait — instead of paying a TCP connect per attempt; once
// the window expires a real dial is attempted again.
func TestClientRedialBackoff(t *testing.T) {
	tab := buildTable(t, 64, 2, 36)
	rep := newReplica(t, tab, engine.Config{Party: 0})
	srv, addr := startNode(t, rep, ServerConfig{})
	cl, err := Dial(addr, Options{
		PRG: rep.PRGName(), Early: rep.EarlyBits(), Party: rep.Party(),
		Redial: backoff.Policy{Base: 300 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// The pooled connection dies first; then one real dial fails and opens
	// the window.
	var dialErr error
	for i := 0; i < 2 && dialErr == nil; i++ {
		dialErr = cl.Ping(ctx)
	}
	if dialErr == nil {
		t.Fatal("ping succeeded against a closed node")
	}
	for strings.Contains(dialErr.Error(), "receive") || strings.Contains(dialErr.Error(), "send") {
		// Still draining pooled connections; the next attempt dials.
		dialErr = cl.Ping(ctx)
	}
	if strings.Contains(dialErr.Error(), "backed off") {
		t.Fatalf("first dial failure already reports backoff: %v", dialErr)
	}

	// Inside the window: fail fast, naming the remaining wait.
	start := time.Now()
	err = cl.Ping(ctx)
	if err == nil || !strings.Contains(err.Error(), "redial backed off") {
		t.Fatalf("in-window ping error %v does not name the backoff", err)
	}
	if !errors.Is(err, errors.Unwrap(err)) || errors.Unwrap(err) == nil {
		t.Fatalf("backed-off error %v does not wrap the dial failure", err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("backed-off ping took %v, want a fast failure", elapsed)
	}

	// Past the window: a real dial is attempted again (and still fails —
	// the node is gone — but without the backoff marker).
	time.Sleep(350 * time.Millisecond)
	err = cl.Ping(ctx)
	if err == nil {
		t.Fatal("ping succeeded against a closed node")
	}
	if strings.Contains(err.Error(), "redial backed off") {
		t.Fatalf("post-window ping still backed off: %v", err)
	}
}
