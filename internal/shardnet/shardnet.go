// Package shardnet puts an engine backend on the network, so one logical
// PIR replica can span machines: a Server exposes any engine.RangeBackend
// (typically a Replica over one shard's rows) over TCP, and a Client
// implements engine.RangeBackend against such a node — plug N clients into
// an engine.Cluster and a million-user table splits across hosts while
// answers stay bit-identical to a single process.
//
// The protocol is deliberately minimal. Every exchange is a length-framed
// binary frame (little-endian uint32 byte count, then the body; frames
// over the negotiated cap are refused with ErrFrameTooLarge before
// allocation). Marshaled DPF keys travel inside frames as-is — the dpf
// wire format is already versioned and validated, so re-encoding it would
// only add copies. gob appears exactly once, inside the first frame each
// direction: the handshake, where flexibility beats compactness.
//
// The handshake pins everything two processes must agree on before
// partial shares can mean anything, and rejections name both values:
//
//   - the shardnet protocol version (ProtocolVersion),
//   - the PRF the node's keys must use (like -prg, the dpf wire format
//     carries no PRF identifier),
//   - the early-termination depth served keys carry (resolved, 0 = legacy
//     full-depth wire-v1 keys),
//   - the party (0 or 1) whose shares the node computes,
//
// and it advertises the node's table shape plus the row range the node
// authoritatively holds, which engine.NewCluster checks against each
// shard's assignment.
//
// After the handshake a connection carries lockstep request/response
// frames for the RPCs: the v1 five (Answer, AnswerRange, Update, Shape,
// Counters), the v2 epoch-versioned update path (UpdateBatch, Epoch,
// PrepareUpdate, CommitUpdate, AbortUpdate), and the v3 replica-group
// pair — Ping, the cheap liveness probe, and SnapshotMeta/SnapshotChunk,
// which stream a node's pinned table snapshot in capped offset-resumable
// frames so a stale peer can be healed to the current epoch. The Client
// keeps a pool of such connections, so concurrent batches — and the
// per-shard fan-out of a Cluster answer — overlap across connections
// rather than queueing on one.
package shardnet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"gpudpf/internal/engine"
)

// ProtocolVersion is the shardnet wire version spoken by this build; the
// handshake refuses any other, naming both versions. Version 2 added the
// epoch-versioned table store: the welcome advertises the node's table
// epoch, answer responses carry the epoch their partials were computed
// at, and the UpdateBatch / Epoch / PrepareUpdate / CommitUpdate /
// AbortUpdate RPCs drive snapshot-consistent updates (the cluster epoch
// handshake) over the wire. Version 3 added replica-group support: the
// Ping liveness probe the cluster's health prober uses, and the
// SnapshotMeta / SnapshotChunk pair that streams a node's pinned table
// snapshot in capped, offset-resumable frames so a stale group member can
// be healed to the current epoch from a healthy peer.
const ProtocolVersion = 3

// protoName guards against pointing a shardnet client at some other
// length-framed service (or vice versa).
const protoName = "gpudpf-shardnet"

// DefaultMaxFrame is the frame byte cap used when a config leaves it zero:
// comfortably above any real batch (a 512-key batch with 64-lane rows
// answers in ~128 KiB) while bounding what a hostile peer can make either
// side buffer.
const DefaultMaxFrame = 16 << 20

// maxHandshakeBytes caps the gob-encoded handshake frame; a hello/welcome
// is a few hundred bytes.
const maxHandshakeBytes = 4096

// DefaultMaxBatch is the per-request key cap used when ServerConfig
// leaves MaxBatch zero: an order of magnitude above the serving layer's
// formed batches while bounding the backend allocation fan-out a hostile
// frame of near-empty keys could otherwise buy.
const DefaultMaxBatch = 4096

// AdoptParty configures a Client (Options.Party) to accept whichever
// party the node computes instead of pinning one.
const AdoptParty = -1

// hello is the client's handshake message: the protocol version it
// speaks and the configuration it expects the node to serve. Zero values
// adopt the node's configuration instead of pinning: PRG "" accepts any
// PRF, Early 0 accepts any depth (engine.FullDepthKeys pins legacy
// full-depth keys, positive values pin that resolved depth), Party
// AdoptParty accepts either share.
type hello struct {
	Proto   string
	Version int
	PRG     string
	Early   int
	Party   int
}

// welcome is the node's reply: a non-empty Err means the handshake was
// rejected (the message names both sides' values); otherwise the node's
// pinned configuration, table shape, the global row range it
// authoritatively holds, and — when the backend is epoch-versioned — the
// table epoch it currently serves (advisory: epochs move with updates;
// the authoritative epoch rides on every answer response).
type welcome struct {
	Err        string
	Version    int
	PRG        string
	Early      int
	Party      int
	Rows       int
	Lanes      int
	RowLo      int
	RowHi      int
	Epoch      uint64
	EpochKnown bool
}

// normEarly maps a client's early pin encoding to the resolved depth it
// pins: engine.FullDepthKeys pins depth 0 (legacy wire-v1 keys).
func normEarly(early int) int {
	if early == engine.FullDepthKeys {
		return 0
	}
	return early
}

// writeHandshake gob-encodes v into one capped frame. Framing the gob
// bytes keeps the handshake decoder off the live stream: nothing it
// buffers can swallow the first RPC frame.
func writeHandshake(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("shardnet: encoding handshake: %w", err)
	}
	return writeFrame(w, buf.Bytes(), maxHandshakeBytes)
}

// readHandshake reads one capped frame and gob-decodes it into v.
func readHandshake(r io.Reader, v any) error {
	var buf []byte
	body, err := readFrame(r, maxHandshakeBytes, &buf)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		return fmt.Errorf("shardnet: decoding handshake: %w", err)
	}
	return nil
}
