package shardnet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/engine"
	"gpudpf/internal/strategy"
)

// buildTable fills a table deterministically from seed.
func buildTable(t testing.TB, rows, lanes int, seed int64) *strategy.Table {
	t.Helper()
	tab, err := strategy.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	return tab
}

// shardTable copies only rows [lo, hi) of tab into a fresh zeroed table of
// the same shape — what a real shard node holds: its own rows, garbage
// (here zeros) elsewhere.
func shardTable(t testing.TB, tab *strategy.Table, lo, hi int) *strategy.Table {
	t.Helper()
	sub, err := strategy.NewTable(tab.NumRows, tab.Lanes)
	if err != nil {
		t.Fatal(err)
	}
	copy(sub.Data[lo*tab.Lanes:hi*tab.Lanes], tab.Data[lo*tab.Lanes:hi*tab.Lanes])
	return sub
}

func newReplica(t testing.TB, tab *strategy.Table, cfg engine.Config) *engine.Replica {
	t.Helper()
	rep, err := engine.NewReplica(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// startNode serves be on a loopback listener; the server and listener are
// torn down with the test.
func startNode(t testing.TB, be engine.RangeBackend, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv, err := NewServer(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

// genKeys returns marshaled keys for both parties at the replica-default
// early-termination depth.
func genKeys(t testing.TB, prg dpf.PRG, bits int, indices []uint64, seed int64) (k0s, k1s [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	early := dpf.DefaultEarly(bits, 1)
	for _, idx := range indices {
		key0, key1, err := dpf.GenEarly(prg, idx, bits, []uint32{1}, early, rng)
		if err != nil {
			t.Fatal(err)
		}
		raw0, err := key0.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		raw1, err := key1.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		k0s = append(k0s, raw0)
		k1s = append(k1s, raw1)
	}
	return k0s, k1s
}

func sameShares(a, b [][]uint32) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d answers", len(a), len(b))
	}
	for q := range a {
		if len(a[q]) != len(b[q]) {
			return fmt.Errorf("answer %d: %d vs %d lanes", q, len(a[q]), len(b[q]))
		}
		for l := range a[q] {
			if a[q][l] != b[q][l] {
				return fmt.Errorf("answer %d lane %d: %#x vs %#x", q, l, a[q][l], b[q][l])
			}
		}
	}
	return nil
}

// TestClientServerRoundTrip drives every RPC against a replica node over
// real TCP: Answer and AnswerRange must be bit-identical to the local
// replica, Update must be visible to subsequent answers, and Shape /
// Counters must report the node's state.
func TestClientServerRoundTrip(t *testing.T) {
	const rows, lanes = 300, 4
	tab := buildTable(t, rows, lanes, 1)
	rep := newReplica(t, tab, engine.Config{Party: 0})
	_, addr := startNode(t, rep, ServerConfig{})

	c, err := Dial(addr, Options{PRG: "aes128", Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if r, l := c.Shape(); r != rows || l != lanes {
		t.Fatalf("handshake shape %d×%d, want %d×%d", r, l, rows, lanes)
	}
	if r, l, err := c.RemoteShape(context.Background()); err != nil || r != rows || l != lanes {
		t.Fatalf("remote shape %d×%d (%v), want %d×%d", r, l, err, rows, lanes)
	}
	if got, want := c.EarlyBits(), rep.EarlyBits(); got != want {
		t.Fatalf("handshake early %d, want %d", got, want)
	}
	if lo, hi := c.HeldRange(); lo != 0 || hi != rows {
		t.Fatalf("held range [%d,%d), want [0,%d)", lo, hi, rows)
	}

	// A local replica over the same content is the bit-exactness reference.
	ref := newReplica(t, buildTable(t, rows, lanes, 1), engine.Config{Party: 0})
	keys, _ := genKeys(t, dpf.NewAESPRG(), tab.Bits(), []uint64{0, 13, 255, 299}, 2)

	remote, err := c.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	local, err := ref.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameShares(remote, local); err != nil {
		t.Fatalf("remote Answer diverges: %v", err)
	}

	// Partial ranges must sum to the full answer.
	partA, err := c.AnswerRange(context.Background(), keys, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	partB, err := c.AnswerRange(context.Background(), keys, 100, rows)
	if err != nil {
		t.Fatal(err)
	}
	for q := range partA {
		for l := range partA[q] {
			partA[q][l] += partB[q][l]
		}
	}
	if err := sameShares(partA, local); err != nil {
		t.Fatalf("remote partials do not sum to the answer: %v", err)
	}

	// Update over the wire is visible to the next answer.
	newRow := []uint32{7, 8, 9, 10}
	if err := c.Update(13, newRow); err != nil {
		t.Fatal(err)
	}
	if err := ref.Update(13, newRow); err != nil {
		t.Fatal(err)
	}
	remote, err = c.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	local, err = ref.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameShares(remote, local); err != nil {
		t.Fatalf("post-update remote Answer diverges: %v", err)
	}

	if stats := c.Counters(); stats.PRFBlocks == 0 {
		t.Fatal("node counters report no PRF work after answering")
	}

	// Concurrent RPCs must be safe (the pool grows as needed).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := c.Answer(context.Background(), keys); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMixedClusterMatchesReplica is the acceptance sweep: a 4-shard
// cluster — shards 0 and 2 in-process replicas, shards 1 and 3 real TCP
// shard nodes holding ONLY their own rows — must answer every
// strategy × PRF batch bit-identically to a single-process replica.
func TestMixedClusterMatchesReplica(t *testing.T) {
	const rows, lanes, shards = 256, 4, 4
	strategies := []strategy.Strategy{
		strategy.BranchParallel{},
		strategy.LevelByLevel{},
		strategy.MemBoundTree{K: 8, Fused: true},
		strategy.CoopGroups{},
		strategy.MultiGPU{Devices: 2},
		strategy.CPUBaseline{Threads: 2},
	}
	prgNames := dpf.AllPRGNames()
	if testing.Short() {
		prgNames = prgNames[:2]
	}
	tab := buildTable(t, rows, lanes, 3)
	bounds := make([]int, shards+1)
	for i := 0; i < shards; i++ {
		bounds[i], bounds[i+1] = engine.ShardRange(rows, i, shards)
	}
	for _, prgName := range prgNames {
		for _, strat := range strategies {
			t.Run(prgName+"/"+strat.Name(), func(t *testing.T) {
				prg, err := dpf.NewPRG(prgName)
				if err != nil {
					t.Fatal(err)
				}
				cfg := engine.Config{Party: 0, PRG: prg, Strategy: strat}
				ref := newReplica(t, tab, cfg)

				members := make([]engine.ClusterShard, shards)
				for i := 0; i < shards; i++ {
					if i%2 == 0 {
						members[i] = engine.ClusterShard{Backend: newReplica(t, tab, cfg)}
						continue
					}
					// A real remote node holding only its shard's rows.
					nodeTab := shardTable(t, tab, bounds[i], bounds[i+1])
					_, addr := startNode(t, newReplica(t, nodeTab, cfg), ServerConfig{RowLo: bounds[i], RowHi: bounds[i+1]})
					cl, err := Dial(addr, Options{PRG: prgName, Party: 0})
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { cl.Close() })
					members[i] = engine.ClusterShard{Backend: cl, Name: addr}
				}
				cluster, err := engine.NewCluster(members...)
				if err != nil {
					t.Fatal(err)
				}
				keys, _ := genKeys(t, prg, tab.Bits(), []uint64{0, 63, 64, 128, 200, 255}, 4)
				want, err := ref.Answer(context.Background(), keys)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cluster.Answer(context.Background(), keys)
				if err != nil {
					t.Fatal(err)
				}
				if err := sameShares(got, want); err != nil {
					t.Fatalf("cluster diverges from single-process replica: %v", err)
				}
			})
		}
	}
}

// TestHandshakePinning: every pinned fact mismatch is rejected with both
// sides' values named.
func TestHandshakePinning(t *testing.T) {
	tab := buildTable(t, 128, 2, 5)
	rep := newReplica(t, tab, engine.Config{Party: 1})
	_, addr := startNode(t, rep, ServerConfig{})

	cases := []struct {
		name string
		opts Options
		want []string
	}{
		{"prg", Options{PRG: "chacha20", Party: 1}, []string{"chacha20", "aes128"}},
		{"early", Options{PRG: "aes128", Early: engine.FullDepthKeys, Party: 1},
			[]string{"depth 0", fmt.Sprintf("depth %d", rep.EarlyBits())}},
		{"party", Options{PRG: "aes128", Party: 0}, []string{"party-0", "party 1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Dial(addr, tc.opts)
			if err == nil {
				t.Fatal("mismatched handshake accepted")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("handshake rejection %q does not name %q", err, want)
				}
			}
		})
	}

	// Adopting clients learn the node's configuration instead.
	c, err := Dial(addr, Options{Party: AdoptParty})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.PRGName() != "aes128" || c.Party() != 1 || c.EarlyBits() != rep.EarlyBits() {
		t.Fatalf("adopted config prg=%s party=%d early=%d", c.PRGName(), c.Party(), c.EarlyBits())
	}

	// A client from a different protocol era is refused with both versions
	// named.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeHandshake(conn, &hello{Proto: protoName, Version: 99, Party: AdoptParty}); err != nil {
		t.Fatal(err)
	}
	var w welcome
	if err := readHandshake(conn, &w); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.Err, "version 99") || !strings.Contains(w.Err, fmt.Sprintf("version %d", ProtocolVersion)) {
		t.Fatalf("version rejection %q does not name both versions", w.Err)
	}
}

// TestBatchCap: a request declaring more keys than the node's batch cap is
// refused before any backend allocation fan-out — the frame cap bounds
// bytes, this bounds the per-key amplification.
func TestBatchCap(t *testing.T) {
	tab := buildTable(t, 64, 2, 15)
	rep := newReplica(t, tab, engine.Config{Party: 0})
	_, addr := startNode(t, rep, ServerConfig{MaxBatch: 3})
	c, err := Dial(addr, Options{PRG: "aes128", Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys, _ := genKeys(t, dpf.NewAESPRG(), tab.Bits(), []uint64{0, 1, 2, 3}, 16)
	if _, err := c.Answer(context.Background(), keys); err == nil {
		t.Fatal("over-cap batch served")
	} else if !strings.Contains(err.Error(), "3-key cap") {
		t.Fatalf("batch-cap rejection %q does not name the cap", err)
	}
	if _, err := c.Answer(context.Background(), keys[:3]); err != nil {
		t.Fatalf("at-cap batch refused: %v", err)
	}
}

// TestHeldRangeEnforced: a shard node refuses to answer for rows it does
// not hold — whole-table Answer, out-of-slice AnswerRange, and misrouted
// Update all fail loudly instead of contributing zero-filled garbage
// shares.
func TestHeldRangeEnforced(t *testing.T) {
	const rows, lanes = 256, 4
	tab := buildTable(t, rows, lanes, 13)
	nodeTab := shardTable(t, tab, 64, 128)
	rep := newReplica(t, nodeTab, engine.Config{Party: 0})
	_, addr := startNode(t, rep, ServerConfig{RowLo: 64, RowHi: 128})
	c, err := Dial(addr, Options{PRG: "aes128", Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys, _ := genKeys(t, dpf.NewAESPRG(), tab.Bits(), []uint64{70}, 14)

	if _, err := c.Answer(context.Background(), keys); err == nil {
		t.Fatal("whole-table Answer served by a partial node")
	} else if !strings.Contains(err.Error(), "holds only rows [64,128)") {
		t.Fatalf("Answer rejection %q does not name the held range", err)
	}
	if _, err := c.AnswerRange(context.Background(), keys, 0, 128); err == nil {
		t.Fatal("out-of-slice AnswerRange served")
	} else if !strings.Contains(err.Error(), "outside the rows [64,128)") {
		t.Fatalf("AnswerRange rejection %q does not name the held range", err)
	}
	if err := c.Update(5, []uint32{1, 2, 3, 4}); err == nil {
		t.Fatal("misrouted Update accepted")
	} else if !strings.Contains(err.Error(), "outside the rows [64,128)") {
		t.Fatalf("Update rejection %q does not name the held range", err)
	}

	// Requests inside the slice still work, bit-identically to a full
	// replica's partials for the same range.
	got, err := c.AnswerRange(context.Background(), keys, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	ref := newReplica(t, tab, engine.Config{Party: 0})
	want, err := ref.AnswerRange(context.Background(), keys, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameShares(got, want); err != nil {
		t.Fatalf("in-slice partials diverge: %v", err)
	}
	if err := c.Update(70, []uint32{1, 2, 3, 4}); err != nil {
		t.Fatalf("in-slice update refused: %v", err)
	}
}

// TestHandshakeTimeout: a peer that connects and never speaks is cut off
// once the handshake deadline passes — it cannot hold a goroutine and
// file descriptor forever.
func TestHandshakeTimeout(t *testing.T) {
	tab := buildTable(t, 64, 2, 10)
	rep := newReplica(t, tab, engine.Config{Party: 0})
	_, addr := startNode(t, rep, ServerConfig{HandshakeTimeout: 150 * time.Millisecond})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the node must hang up on its own.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	start := time.Now()
	var one [1]byte
	if _, err := conn.Read(one[:]); err == nil {
		t.Fatal("silent connection got data instead of a hang-up")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("silent connection held open for %v", elapsed)
	}

	// A normal client on the same node still handshakes fine.
	c, err := Dial(addr, Options{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

// TestOversizedResponseNamed: a legitimate request whose ANSWER exceeds
// the frame cap (answers scale with lanes, requests with key bytes) must
// come back as a named cap error, not an opaque EOF.
func TestOversizedResponseNamed(t *testing.T) {
	// 64 rows × 200 lanes: a single-key request is ~360 bytes (fits a
	// 512-byte cap), its answer is 200·4+10 bytes (does not).
	tab := buildTable(t, 64, 200, 11)
	rep := newReplica(t, tab, engine.Config{Party: 0})
	_, addr := startNode(t, rep, ServerConfig{MaxFrame: 512})
	c, err := Dial(addr, Options{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys, _ := genKeys(t, dpf.NewAESPRG(), tab.Bits(), []uint64{5}, 12)
	_, err = c.Answer(context.Background(), keys)
	if err == nil {
		t.Fatal("oversized answer delivered through a 512-byte cap")
	}
	for _, want := range []string{"frame cap", "narrow the batch"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not carry %q", err, want)
		}
	}
}

// TestFrameCap: a frame over the node's cap is refused with the named
// error before the node reads (or allocates) the payload, and the
// connection is closed.
func TestFrameCap(t *testing.T) {
	tab := buildTable(t, 64, 2, 6)
	rep := newReplica(t, tab, engine.Config{Party: 0})
	_, addr := startNode(t, rep, ServerConfig{MaxFrame: 256})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeHandshake(conn, &hello{Proto: protoName, Version: ProtocolVersion, Party: AdoptParty}); err != nil {
		t.Fatal(err)
	}
	var w welcome
	if err := readHandshake(conn, &w); err != nil || w.Err != "" {
		t.Fatalf("handshake failed: %v / %s", err, w.Err)
	}
	// Declare a 1 MiB frame on a 256-byte-cap connection; send only the
	// header — the node must refuse without waiting for a payload.
	var hdr [4]byte
	hdr[0], hdr[1], hdr[2] = 0x00, 0x00, 0x10
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf []byte
	body, err := readFrame(conn, DefaultMaxFrame, &buf)
	if err != nil {
		t.Fatalf("reading refusal frame: %v", err)
	}
	if body[0] != opErr || body[1] != statusErr {
		t.Fatalf("refusal frame op=%#x status=%d", body[0], body[1])
	}
	if !strings.Contains(string(body), "size cap") {
		t.Fatalf("refusal %q does not name the cap", string(body[2:]))
	}
	if _, err := readFrame(conn, DefaultMaxFrame, &buf); err == nil {
		t.Fatal("connection survived an oversized frame")
	}
}

// TestEpochRPCsRoundTrip drives the protocol-v2 update path against a
// real node: epoch queries, atomic UpdateBatch, the prepare/commit
// handshake, abort-as-rollback, and held-range enforcement for writes.
func TestEpochRPCsRoundTrip(t *testing.T) {
	const rows, lanes = 128, 4
	tab := buildTable(t, rows, lanes, 17)
	rep := newReplica(t, tab, engine.Config{Party: 0})
	_, addr := startNode(t, rep, ServerConfig{})
	c, err := Dial(addr, Options{PRG: "aes128", Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if epoch, known := c.AdvertisedEpoch(); !known || epoch != 0 {
		t.Fatalf("handshake advertises epoch %d known=%v, want 0/true", epoch, known)
	}
	if epoch, err := c.Epoch(context.Background()); err != nil || epoch != 0 {
		t.Fatalf("Epoch RPC: %d, %v", epoch, err)
	}

	// Atomic batch over the wire; a local replica mirrors it as reference.
	ref := newReplica(t, buildTable(t, rows, lanes, 17), engine.Config{Party: 0})
	writes := []engine.RowWrite{
		{Row: 3, Vals: []uint32{1, 2, 3, 4}},
		{Row: 90, Vals: []uint32{5, 6, 7, 8}},
	}
	epoch, err := c.UpdateBatch(context.Background(), writes)
	if err != nil || epoch != 1 {
		t.Fatalf("UpdateBatch: epoch %d, %v", epoch, err)
	}
	if _, err := ref.UpdateBatch(context.Background(), writes); err != nil {
		t.Fatal(err)
	}
	keys, _ := genKeys(t, dpf.NewAESPRG(), tab.Bits(), []uint64{3, 90, 60}, 18)
	remote, err := c.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	local, err := ref.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameShares(remote, local); err != nil {
		t.Fatalf("post-UpdateBatch answers diverge: %v", err)
	}
	// AnswerRangeEpoch reports the epoch the shares were computed at.
	if _, e, ok, err := c.AnswerRangeEpoch(context.Background(), keys, 0, rows); err != nil || !ok || e != 1 {
		t.Fatalf("AnswerRangeEpoch: epoch %d ok=%v err=%v, want 1/true", e, ok, err)
	}

	// Two-phase: prepare is invisible, commit lands it.
	w2 := []engine.RowWrite{{Row: 3, Vals: []uint32{9, 9, 9, 9}}}
	if err := c.PrepareUpdate(context.Background(), 2, w2); err != nil {
		t.Fatal(err)
	}
	if _, e, _, err := c.AnswerRangeEpoch(context.Background(), keys, 0, rows); err != nil || e != 1 {
		t.Fatalf("prepared epoch visible before commit: epoch %d err=%v", e, err)
	}
	if err := c.CommitUpdate(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	// Abort after commit rolls back to the pre-commit view.
	if err := c.AbortUpdate(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	remote, err = c.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameShares(remote, local); err != nil {
		t.Fatalf("rolled-back answers diverge from pre-commit state: %v", err)
	}
	// The burned epoch is skipped: the next update lands above it.
	if epoch, err := c.UpdateBatch(context.Background(), w2); err != nil || epoch != 3 {
		t.Fatalf("post-rollback UpdateBatch: epoch %d, %v (want 3: epoch 2 is burned)", epoch, err)
	}
}

// TestUpdateBatchHeldRangeEnforced: a shard node refuses batch writes (and
// prepares) outside the rows it holds.
func TestUpdateBatchHeldRangeEnforced(t *testing.T) {
	const rows, lanes = 256, 2
	tab := buildTable(t, rows, lanes, 19)
	nodeTab := shardTable(t, tab, 64, 128)
	rep := newReplica(t, nodeTab, engine.Config{Party: 0})
	_, addr := startNode(t, rep, ServerConfig{RowLo: 64, RowHi: 128})
	c, err := Dial(addr, Options{PRG: "aes128", Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := []engine.RowWrite{{Row: 70, Vals: []uint32{1, 2}}, {Row: 5, Vals: []uint32{3, 4}}}
	if _, err := c.UpdateBatch(context.Background(), bad); err == nil {
		t.Fatal("misrouted batch write accepted")
	} else if !strings.Contains(err.Error(), "outside the rows [64,128)") {
		t.Fatalf("batch rejection %q does not name the held range", err)
	}
	if err := c.PrepareUpdate(context.Background(), 1, bad); err == nil {
		t.Fatal("misrouted prepare accepted")
	} else if !strings.Contains(err.Error(), "outside the rows [64,128)") {
		t.Fatalf("prepare rejection %q does not name the held range", err)
	}
	// In-range writes work, and the epoch advances.
	good := []engine.RowWrite{{Row: 70, Vals: []uint32{1, 2}}}
	if epoch, err := c.UpdateBatch(context.Background(), good); err != nil || epoch != 1 {
		t.Fatalf("in-range batch: epoch %d, %v", epoch, err)
	}
}
