package core

import (
	"testing"

	"gpudpf/internal/codesign"
	"gpudpf/internal/netsim"
)

// testService builds a service over a 64-item table with co-location pairs
// (2k, 2k+1) and a hot table.
func testService(t *testing.T, p codesign.Params, cacheEntries int) (*Service, [][]float32, []int64) {
	t.Helper()
	const items = 64
	freq := make([]int64, items)
	co := make([][]uint64, items)
	for i := 0; i < items; i++ {
		freq[i] = int64(items - i)
		if i%2 == 0 {
			co[i] = []uint64{uint64(i + 1)}
		} else {
			co[i] = []uint64{uint64(i - 1)}
		}
	}
	layout, err := codesign.BuildLayout(items, 4, freq, co, p)
	if err != nil {
		t.Fatal(err)
	}
	emb := make([][]float32, items)
	for i := range emb {
		emb[i] = []float32{float32(i), float32(i) + 0.5, -float32(i), 1}
	}
	svc, err := New(Config{
		Layout:       layout,
		Freq:         freq,
		CacheEntries: cacheEntries,
		Link:         netsim.LAN(),
		Seed:         42,
	}, emb)
	if err != nil {
		t.Fatal(err)
	}
	return svc, emb, freq
}

func checkEmb(t *testing.T, got map[uint64][]float32, emb [][]float32, item uint64) {
	t.Helper()
	v, ok := got[item]
	if !ok {
		t.Fatalf("item %d not returned", item)
	}
	for j := range v {
		if v[j] != emb[item][j] {
			t.Fatalf("item %d lane %d: %g != %g", item, j, v[j], emb[item][j])
		}
	}
}

// TestFetchExactEmbeddings: every retrieved item's embedding is bit-exact,
// across plain / colocated / hot-table layouts.
func TestFetchExactEmbeddings(t *testing.T) {
	layouts := []struct {
		p      codesign.Params
		wanted []uint64
	}{
		// With C=0 and QFull=8, bins are 8 rows wide: pick bin-distinct
		// items. With C=1 the pair (2,3) shares a grouped row.
		{codesign.Params{C: 0, QFull: 8}, []uint64{2, 13, 40, 63}},
		{codesign.Params{C: 1, QFull: 8}, []uint64{2, 3, 40, 63}},
		{codesign.Params{C: 1, HotRows: 8, QHot: 4, QFull: 8}, []uint64{2, 3, 40, 63}},
	}
	for _, tc := range layouts {
		p := tc.p
		svc, emb, _ := testService(t, p, 0)
		got, tr, err := svc.FetchEmbeddings(tc.wanted)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if tr.Dropped > 0 {
			// With generous budgets nothing should drop here.
			t.Fatalf("%+v: unexpected drops %d", p, tr.Dropped)
		}
		for _, it := range tc.wanted {
			checkEmb(t, got, emb, it)
		}
		if tr.Comm.UpBytes <= 0 || tr.Comm.DownBytes <= 0 {
			t.Error("comm bytes not accounted")
		}
		if tr.TotalLatency() <= 0 {
			t.Error("latency model returned zero")
		}
	}
}

// TestBudgetDropsAreReported: an over-budget inference drops the least
// important items and reports it.
func TestBudgetDropsAreReported(t *testing.T) {
	svc, emb, _ := testService(t, codesign.Params{C: 0, QFull: 1}, 0)
	// Two items in the same bin region with QFull=1: one must drop; the
	// globally more frequent (lower index) must win.
	got, tr, err := svc.FetchEmbeddings([]uint64{40, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Retrieved != 1 || tr.Dropped != 1 {
		t.Fatalf("retrieved/dropped = %d/%d, want 1/1", tr.Retrieved, tr.Dropped)
	}
	checkEmb(t, got, emb, 2)
	if _, ok := got[40]; ok {
		t.Error("item 40 should have been dropped (lower frequency)")
	}
}

// TestCacheReducesPressure: with the cache on, repeated fetches hit locally
// and stop competing for the budget (§2.3), while the query count the
// servers see is unchanged.
func TestCacheReducesPressure(t *testing.T) {
	svc, emb, _ := testService(t, codesign.Params{C: 0, QFull: 2}, 16)
	// QFull=2 over 64 rows → two 32-row bins. First inference: fetch 2
	// (bin 0) and 40 (bin 1).
	_, tr1, err := svc.FetchEmbeddings([]uint64{2, 40})
	if err != nil {
		t.Fatal(err)
	}
	if tr1.CacheHits != 0 || svc.CacheLen() == 0 {
		t.Fatalf("first fetch should miss and fill cache: %+v", tr1)
	}
	// Second inference re-uses 2 and 40 and adds one new item per bin: the
	// cached pair frees the whole budget for the new items.
	got, tr2, err := svc.FetchEmbeddings([]uint64{2, 40, 30, 50})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.CacheHits != 2 {
		t.Fatalf("cache hits = %d, want 2", tr2.CacheHits)
	}
	if tr2.Dropped != 0 {
		t.Fatalf("budget should fit the two new items, dropped %d", tr2.Dropped)
	}
	for _, it := range []uint64{2, 40, 30, 50} {
		checkEmb(t, got, emb, it)
	}
	// Comm is identical whether or not the cache hit (leakage invariant).
	if tr2.Comm != tr1.Comm {
		t.Errorf("comm changed with cache state: %+v vs %+v", tr1.Comm, tr2.Comm)
	}
}

// TestCacheEviction: the cache never exceeds its capacity.
func TestCacheEviction(t *testing.T) {
	c := newEmbCache(2)
	c.put(1, []float32{1})
	c.put(2, []float32{2})
	c.put(3, []float32{3})
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2", c.len())
	}
	if _, ok := c.get(1); ok {
		t.Error("oldest entry should have been evicted")
	}
	if _, ok := c.get(3); !ok {
		t.Error("newest entry missing")
	}
	// Zero-capacity cache is inert.
	z := newEmbCache(0)
	z.put(1, []float32{1})
	if _, ok := z.get(1); ok || z.len() != 0 {
		t.Error("zero-cap cache should store nothing")
	}
}

// TestFixedQueryShape: the servers see the same number of keys per
// inference for wildly different access patterns.
func TestFixedQueryShape(t *testing.T) {
	svc, _, _ := testService(t, codesign.Params{C: 1, HotRows: 8, QHot: 2, QFull: 4}, 0)
	var comms []int64
	for _, wanted := range [][]uint64{{}, {0}, {0, 1, 2, 3, 4, 5, 6, 7}, {63}} {
		_, tr, err := svc.FetchEmbeddings(wanted)
		if err != nil {
			t.Fatal(err)
		}
		comms = append(comms, tr.Comm.Total())
	}
	for i := 1; i < len(comms); i++ {
		if comms[i] != comms[0] {
			t.Fatalf("communication varies with access pattern: %v", comms)
		}
	}
}

// TestConfigValidation.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("missing layout accepted")
	}
	freq := make([]int64, 8)
	layout, err := codesign.BuildLayout(8, 2, freq, nil, codesign.Params{QFull: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Layout: layout, PRG: "nope"}, make([][]float32, 8)); err == nil {
		t.Error("bad PRG accepted")
	}
	if _, err := New(Config{Layout: layout}, make([][]float32, 3)); err == nil {
		t.Error("short embeddings accepted")
	}
}

// TestDeterministicWithSeed: same seed, same traces.
func TestDeterministicWithSeed(t *testing.T) {
	mk := func() *Trace {
		svc, _, _ := testService(t, codesign.Params{C: 0, QFull: 4}, 0)
		_, tr, err := svc.FetchEmbeddings([]uint64{1, 5, 9})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(), mk()
	if a.Comm != b.Comm || a.Retrieved != b.Retrieved {
		t.Error("same seed produced different traces")
	}
}
