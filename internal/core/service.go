// Package core wires the whole system together: the paper's private
// on-device ML inference service (Figure 1b). A client holds a small
// on-device model and a bounded embedding cache; the two non-colluding
// servers hold the co-design-preprocessed embedding tables (grouped full
// table + hot table); every inference issues a fixed, pattern-independent
// set of PBR queries, reconstructs the retrieved embeddings, and feeds them
// to the on-device model. The per-inference Trace carries the Figure 12
// latency breakdown (Gen, PIR, network, on-device DNN) and exact
// communication bytes.
package core

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"gpudpf/internal/batchpir"
	"gpudpf/internal/codesign"
	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/netsim"
	"gpudpf/internal/pir"
)

// Config assembles a Service.
type Config struct {
	// PRG names the PRF shared by client and servers (default aes128).
	PRG string
	// Layout is the co-design serving layout (required).
	Layout *codesign.Layout
	// Freq orders lookups by importance when budgets overflow (training
	// statistics; may be nil for input order).
	Freq []int64
	// CacheEntries bounds the client-side embedding cache (0 disables;
	// §2.3: temporal locality makes only ~2.44% of lookups new).
	CacheEntries int
	// Link models the client↔server network (zero value: netsim.FourG).
	Link netsim.Link
	// Device models the servers' GPU (nil: TeslaV100).
	Device *gpu.Device
	// ClientCPU models the client device (nil: IntelCorei3).
	ClientCPU *gpu.CPUModel
	// Seed drives dummy planning and key generation determinism in tests;
	// 0 uses a fixed default.
	Seed int64
}

// Service is a running private embedding service: one client and both
// parties' servers (in-process).
type Service struct {
	cfg    Config
	prg    dpf.PRG
	layout *codesign.Layout
	rng    *rand.Rand

	// mu serializes UpdateEmbeddings against FetchEmbeddings. Each
	// replica's epoch-versioned store already makes its own updates
	// atomic against its own answers (snapshot pinning), but an update
	// must land on BOTH parties' replicas before a fetch may straddle it
	// — a party-0 answer at the new epoch reconstructed against a
	// party-1 answer at the old one is garbage with no error anywhere
	// (and the client rng/cache are single-threaded).
	mu sync.Mutex

	fullClient, hotClient *batchpir.Client
	fullS0, fullS1        *batchpir.Server
	hotS0, hotS1          *batchpir.Server
	fullTab, hotTab       *pir.Table
	cache                 *embCache
}

// Trace records one inference's protocol outcome for reporting.
type Trace struct {
	// Wanted is the deduplicated lookup count; CacheHits were served
	// locally; Retrieved and Dropped partition the rest.
	Wanted, CacheHits, Retrieved, Dropped int
	// Comm is the exact application-layer byte count.
	Comm pir.CommStats
	// GenLatency, PIRLatency and NetworkLatency are the modeled
	// components of Figure 12 (the on-device DNN term is the model's
	// FLOPs over the client CPU; callers add it via DNNLatency).
	GenLatency, PIRLatency, NetworkLatency time.Duration
}

// TotalLatency is the modeled end-to-end latency excluding the on-device
// model (add the application's DNN term).
func (t *Trace) TotalLatency() time.Duration {
	return t.GenLatency + t.PIRLatency + t.NetworkLatency
}

// New builds the service over trained embeddings (emb[i] is item i's
// vector, layout.Dim wide).
func New(cfg Config, emb [][]float32) (*Service, error) {
	if cfg.Layout == nil {
		return nil, fmt.Errorf("core: Config.Layout is required")
	}
	if cfg.PRG == "" {
		cfg.PRG = "aes128"
	}
	if cfg.Device == nil {
		cfg.Device = gpu.TeslaV100()
	}
	if cfg.ClientCPU == nil {
		cfg.ClientCPU = gpu.IntelCorei3()
	}
	if cfg.Link.BandwidthBitsPerSec == 0 {
		cfg.Link = netsim.FourG()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5eed
	}
	prg, err := dpf.NewPRG(cfg.PRG)
	if err != nil {
		return nil, err
	}
	full, hot, err := cfg.Layout.BuildTables(emb)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:     cfg,
		prg:     prg,
		layout:  cfg.Layout,
		rng:     rand.New(rand.NewPCG(uint64(cfg.Seed), 0)),
		cache:   newEmbCache(cfg.CacheEntries),
		fullTab: full,
		hotTab:  hot,
	}
	s.fullClient, err = batchpir.NewClient(cfg.PRG, cfg.Layout.FullCfg, s.rng)
	if err != nil {
		return nil, err
	}
	s.fullS0, err = batchpir.NewServer(0, full, cfg.Layout.FullCfg, pir.WithPRG(cfg.PRG))
	if err != nil {
		return nil, err
	}
	s.fullS1, err = batchpir.NewServer(1, full, cfg.Layout.FullCfg, pir.WithPRG(cfg.PRG))
	if err != nil {
		return nil, err
	}
	if cfg.Layout.Params.HotRows > 0 {
		s.hotClient, err = batchpir.NewClient(cfg.PRG, cfg.Layout.HotCfg, s.rng)
		if err != nil {
			return nil, err
		}
		s.hotS0, err = batchpir.NewServer(0, hot, cfg.Layout.HotCfg, pir.WithPRG(cfg.PRG))
		if err != nil {
			return nil, err
		}
		s.hotS1, err = batchpir.NewServer(1, hot, cfg.Layout.HotCfg, pir.WithPRG(cfg.PRG))
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// FetchEmbeddings privately retrieves the wanted items' embeddings. The
// returned map contains cache hits plus everything the fixed-budget plan
// retrieved; budget-dropped items are simply absent (the model treats them
// as missing features). The Trace reports what happened and at what cost.
func (s *Service) FetchEmbeddings(wanted []uint64) (map[uint64][]float32, *Trace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := &Trace{}
	out := map[uint64][]float32{}
	var misses []uint64
	seen := map[uint64]bool{}
	for _, it := range wanted {
		if seen[it] {
			continue
		}
		seen[it] = true
		tr.Wanted++
		if v, ok := s.cache.get(it); ok {
			out[it] = v
			tr.CacheHits++
			continue
		}
		misses = append(misses, it)
	}

	// The plan runs even when everything hit the cache: the query count
	// must not reveal cache state.
	plan, err := s.layout.Plan(codesign.OrderByFrequency(misses, s.cfg.Freq), s.rng)
	if err != nil {
		return nil, nil, err
	}
	tr.Retrieved = len(plan.Retrieved)
	tr.Dropped = len(plan.Dropped)

	if err := s.fetchTable(s.fullClient, s.fullS0, s.fullS1, plan.FullOffsets, plan.FullServedRows, plan, out, tr); err != nil {
		return nil, nil, err
	}
	if s.hotClient != nil {
		if err := s.fetchTable(s.hotClient, s.hotS0, s.hotS1, plan.HotOffsets, plan.HotServedRows, plan, out, tr); err != nil {
			return nil, nil, err
		}
	}
	for _, it := range plan.Retrieved {
		if v, ok := out[it]; ok {
			s.cache.put(it, v)
		}
	}
	s.modelLatency(tr)
	tr.NetworkLatency = s.cfg.Link.RoundTrip(tr.Comm.UpBytes/2, tr.Comm.DownBytes/2)
	return out, tr, nil
}

// fetchTable runs one table's PBR round and decodes served rows into items.
// The two parties answer concurrently through the engine-backed servers,
// mirroring the deployment where they are different clouds.
func (s *Service) fetchTable(c *batchpir.Client, s0, s1 *batchpir.Server,
	offsets []uint64, servedRows []int64, plan *codesign.InferencePlan,
	out map[uint64][]float32, tr *Trace) error {
	k0, k1, err := c.KeysForOffsets(offsets)
	if err != nil {
		return err
	}
	for b := range k0 {
		tr.Comm.UpBytes += int64(len(k0[b]) + len(k1[b]))
	}
	type answer struct {
		shares [][]uint32
		err    error
	}
	ch := make(chan answer, 1)
	go func() {
		a, err := s0.Answer(k0)
		ch <- answer{a, err}
	}()
	a1, err1 := s1.Answer(k1)
	r0 := <-ch
	if r0.err != nil {
		return fmt.Errorf("core: party 0: %w", r0.err)
	}
	if err1 != nil {
		return fmt.Errorf("core: party 1: %w", err1)
	}
	a0 := r0.shares
	for b := range a0 {
		tr.Comm.DownBytes += int64(len(a0[b])+len(a1[b])) * 4
		if servedRows[b] < 0 {
			continue // dummy bin
		}
		row, err := pir.Reconstruct(a0[b], a1[b])
		if err != nil {
			return err
		}
		groupedRow := uint64(servedRows[b])
		for _, item := range plan.RowItems[groupedRow] {
			v, err := s.layout.ExtractItem(item, row)
			if err != nil {
				return err
			}
			out[item] = v
		}
	}
	return nil
}

// modelLatency fills the Gen and PIR terms from the device models.
func (s *Service) modelLatency(tr *Trace) {
	// Client-side Gen: one key pair per bin on the client CPU.
	genCycles := 0.0
	genCycles += float64(s.layout.EffectiveQFull()) *
		gpu.GenProfile(s.prg.CPUCyclesPerBlock(), s.layout.FullCfg.BinBits(), 1)
	if s.layout.Params.HotRows > 0 {
		genCycles += float64(s.layout.EffectiveQHot()) *
			gpu.GenProfile(s.prg.CPUCyclesPerBlock(), s.layout.HotCfg.BinBits(), 1)
	}
	tr.GenLatency = s.cfg.ClientCPU.CPUTime(genCycles, 1)

	// Server-side Eval, amortized per inference at the tuned batch size
	// (the paper's throughput-serving story; see Layout.Throughput).
	if qps, batchLat, batch, err := s.layout.Throughput(s.cfg.Device, s.prg, 0); err == nil && qps > 0 {
		tr.PIRLatency = time.Duration(float64(batchLat) / float64(batch))
	}
}

// UpdateEmbeddings applies in-place value updates to the protected table on
// both servers — the paper's transparent update path (§4.2): table entries
// change when the model is re-trained, but as long as indexing does not
// change, nothing on the client needs to be redeployed. Updated items are
// invalidated from the client cache; affected hot-table copies are kept in
// sync. Insertions/deletions (which change indexing) require rebuilding the
// layout and redeploying the client map, exactly as in the paper.
func (s *Service) UpdateEmbeddings(updates map[uint64][]float32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for item, vec := range updates {
		if item >= uint64(s.layout.Items) {
			return fmt.Errorf("core: update for item %d outside table of %d items", item, s.layout.Items)
		}
		if len(vec) != s.layout.Dim {
			return fmt.Errorf("core: item %d update has %d lanes, want %d", item, len(vec), s.layout.Dim)
		}
		row := int(s.layout.RowOf[item])
		slot := int(s.layout.SlotOf[item])
		// Patch the grouped row in our reference copy, then push the whole
		// row to every replica that holds it.
		rowData := s.fullTab.Row(row)
		pir.PackFloats(rowData[slot*s.layout.Dim:(slot+1)*s.layout.Dim], vec)
		if err := s.fullS0.Update(uint64(row), rowData); err != nil {
			return err
		}
		if err := s.fullS1.Update(uint64(row), rowData); err != nil {
			return err
		}
		if hot := s.layout.HotOf[row]; hot >= 0 {
			copy(s.hotTab.Row(int(hot)), rowData)
			if err := s.hotS0.Update(uint64(hot), rowData); err != nil {
				return err
			}
			if err := s.hotS1.Update(uint64(hot), rowData); err != nil {
				return err
			}
		}
		// The client must not serve the stale value; co-located neighbours
		// in the same row are unchanged and may stay cached.
		s.cache.invalidate(item)
	}
	return nil
}

// Layout exposes the serving layout.
func (s *Service) Layout() *codesign.Layout { return s.layout }

// CacheLen reports the client cache occupancy.
func (s *Service) CacheLen() int { return s.cache.len() }
