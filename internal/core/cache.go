package core

// embCache is the client-side embedding cache of §2.3: user features change
// slowly between consecutive inferences, so recently fetched rows are kept
// on device. Eviction is FIFO over insertion order, which is enough for the
// session-locality pattern the paper measures (only 2.44% of lookups are
// new). The cache never changes what the servers observe — the fixed query
// budget is issued regardless — it only reduces which lookups compete for
// that budget.
type embCache struct {
	cap   int
	items map[uint64][]float32
	order []uint64
}

func newEmbCache(capacity int) *embCache {
	return &embCache{cap: capacity, items: map[uint64][]float32{}}
}

func (c *embCache) get(k uint64) ([]float32, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	v, ok := c.items[k]
	return v, ok
}

func (c *embCache) put(k uint64, v []float32) {
	if c.cap <= 0 {
		return
	}
	if _, ok := c.items[k]; ok {
		c.items[k] = v
		return
	}
	for len(c.items) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.items, oldest)
	}
	c.items[k] = v
	c.order = append(c.order, k)
}

// invalidate drops a key (stale entries in the eviction order are skipped
// harmlessly when they surface).
func (c *embCache) invalidate(k uint64) { delete(c.items, k) }

func (c *embCache) len() int { return len(c.items) }
