package core

import (
	"testing"

	"gpudpf/internal/codesign"
)

// TestUpdateEmbeddings: in-place updates propagate to both servers, the
// hot-table copy, and evict stale cache entries — with no change to the
// protocol shape.
func TestUpdateEmbeddings(t *testing.T) {
	svc, emb, _ := testService(t, codesign.Params{C: 1, HotRows: 8, QHot: 4, QFull: 8}, 32)

	// Warm the cache with the old value of a hot item (0 is most frequent)
	// and a cold item.
	got, _, err := svc.FetchEmbeddings([]uint64{0, 40})
	if err != nil {
		t.Fatal(err)
	}
	checkEmb(t, got, emb, 0)
	checkEmb(t, got, emb, 40)

	newHot := []float32{100, 101, 102, 103}
	newCold := []float32{-1, -2, -3, -4}
	if err := svc.UpdateEmbeddings(map[uint64][]float32{0: newHot, 40: newCold}); err != nil {
		t.Fatal(err)
	}

	got2, tr, err := svc.FetchEmbeddings([]uint64{0, 40})
	if err != nil {
		t.Fatal(err)
	}
	if tr.CacheHits != 0 {
		t.Errorf("stale cache served an updated item (%d hits)", tr.CacheHits)
	}
	for i, want := range newHot {
		if got2[0][i] != want {
			t.Fatalf("hot item lane %d: %g, want %g", i, got2[0][i], want)
		}
	}
	for i, want := range newCold {
		if got2[40][i] != want {
			t.Fatalf("cold item lane %d: %g, want %g", i, got2[40][i], want)
		}
	}

	// A co-located neighbour of item 0 (item 1 shares the row under C=1)
	// still reads its original value.
	got3, _, err := svc.FetchEmbeddings([]uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	checkEmb(t, got3, emb, 1)
}

// TestUpdateValidation: out-of-range items and wrong widths are rejected.
func TestUpdateValidation(t *testing.T) {
	svc, _, _ := testService(t, codesign.Params{C: 0, QFull: 4}, 0)
	if err := svc.UpdateEmbeddings(map[uint64][]float32{999: {1, 2, 3, 4}}); err == nil {
		t.Error("out-of-range item accepted")
	}
	if err := svc.UpdateEmbeddings(map[uint64][]float32{1: {1, 2}}); err == nil {
		t.Error("wrong-width vector accepted")
	}
}

// TestUpdatePreservesQueryShape: communication before and after an update
// is identical (updates are invisible at the protocol layer).
func TestUpdatePreservesQueryShape(t *testing.T) {
	svc, _, _ := testService(t, codesign.Params{C: 0, HotRows: 8, QHot: 2, QFull: 4}, 0)
	_, before, err := svc.FetchEmbeddings([]uint64{5})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.UpdateEmbeddings(map[uint64][]float32{5: {9, 9, 9, 9}}); err != nil {
		t.Fatal(err)
	}
	_, after, err := svc.FetchEmbeddings([]uint64{5})
	if err != nil {
		t.Fatal(err)
	}
	if before.Comm != after.Comm {
		t.Errorf("update changed the wire shape: %+v vs %+v", before.Comm, after.Comm)
	}
}

// TestConcurrentFetchAndUpdate: FetchEmbeddings and UpdateEmbeddings may
// race from the caller's perspective; the service-level lock must order
// them (the two parties' replicas alias one table, so engine-level locks
// alone cannot). Run under -race in CI.
func TestConcurrentFetchAndUpdate(t *testing.T) {
	svc, _, _ := testService(t, codesign.Params{C: 1, HotRows: 8, QHot: 4, QFull: 8}, 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		vec := []float32{9, 8, 7, 6}
		for i := 0; i < 10; i++ {
			if err := svc.UpdateEmbeddings(map[uint64][]float32{uint64(i % 64): vec}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		if _, _, err := svc.FetchEmbeddings([]uint64{uint64(63 - i)}); err != nil {
			t.Error(err)
			break
		}
	}
	<-done
}
