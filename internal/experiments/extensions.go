package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"gpudpf/internal/codesign"
	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/integrity"
	"gpudpf/internal/pir"
	"gpudpf/internal/serving"
	"gpudpf/internal/strategy"
)

// ExtMultiGPU regenerates the §3.2.7 scaling claim: sharding one large
// table across N devices divides latency ~linearly while total work stays
// optimal, and per-device utilization at a fixed batch motivates larger
// batches.
func ExtMultiGPU() (*Table, error) {
	t := &Table{
		ID:      "ext-multigpu",
		Title:   "Multi-GPU sharding of a 64M-entry table (§3.2.7), B=64, AES-128",
		Columns: []string{"devices", "latency", "QPS", "fleet PRF blocks", "fleet memory"},
		Notes:   "each device evaluates an L/N shard via EvalRange; the final reduction is linear",
	}
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	for _, n := range []int{1, 2, 4, 8, 16} {
		rep, err := (strategy.MultiGPU{Devices: n}).Model(dev, prg, 26, 64, 64)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n),
			rep.Latency.Round(10*time.Microsecond).String(),
			fmtF(rep.Throughput),
			fmt.Sprintf("%d", rep.PRFBlocks),
			fmtBytes(rep.PeakMemBytes))
	}
	return t, nil
}

// ExtServing maps offered load to latency percentiles through the batcher
// in front of the modeled V100 (1M-entry table) — the operational side of
// the paper's throughput claims.
func ExtServing() (*Table, error) {
	t := &Table{
		ID:      "ext-serving",
		Title:   "Serving simulation: offered load vs latency (1M table, batcher MaxBatch=128/MaxDelay=50ms)",
		Columns: []string{"PRF", "offered QPS", "completed QPS", "p50", "p99", "mean batch", "device util"},
		Notes:   "beyond the modeled capacity the queue saturates and tail latency explodes",
	}
	dev := gpu.TeslaV100()
	policy := serving.Policy{MaxBatch: 128, MaxDelay: 50 * time.Millisecond}
	for _, prgName := range []string{"aes128", "chacha20"} {
		prg, err := dpf.NewPRG(prgName)
		if err != nil {
			return nil, err
		}
		s := strategy.MemBoundTree{K: 128, Fused: true}
		lat := func(batch int) time.Duration {
			rep, err := s.Model(dev, prg, 20, batch, 64)
			if err != nil {
				return time.Hour
			}
			return rep.Latency
		}
		rng := rand.New(rand.NewSource(31))
		for _, qps := range []float64{100, 400, 1200, 2400, 4800} {
			p, err := serving.Simulate(rng, qps, 3*time.Second, policy, lat)
			if err != nil {
				return nil, err
			}
			t.AddRow(prgName, fmtF(p.OfferedQPS), fmtF(p.CompletedQPS),
				p.P50.Round(100*time.Microsecond).String(),
				p.P99.Round(100*time.Microsecond).String(),
				fmt.Sprintf("%.1f", p.MeanBatch),
				fmt.Sprintf("%.0f%%", p.Utilization*100))
		}
	}
	return t, nil
}

// ExtIntegrity measures the authenticated-PIR extension's real overhead:
// communication and PRF work of a verified fetch vs a plain fetch.
func ExtIntegrity() (*Table, error) {
	t := &Table{
		ID:      "ext-integrity",
		Title:   "Authenticated PIR (Merkle path fetched privately): overhead vs plain fetch",
		Columns: []string{"table rows", "plain comm", "verified comm", "comm overhead", "extra queries"},
		Notes:   "extends the honest-but-curious model toward malicious servers (§2.1)",
	}
	for _, rows := range []int{256, 1024, 4096} {
		tab, err := pir.NewTable(rows, 16)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(rows)))
		for i := range tab.Data {
			tab.Data[i] = rng.Uint32()
		}
		com, err := integrity.Commit(tab)
		if err != nil {
			return nil, err
		}
		connect := func(serveTab *pir.Table, r int) (*pir.TwoServer, error) {
			s0, err := pir.NewServer(0, serveTab)
			if err != nil {
				return nil, err
			}
			s1, err := pir.NewServer(1, serveTab)
			if err != nil {
				return nil, err
			}
			c, err := pir.NewClient("aes128", r, rand.New(rand.NewSource(3)))
			if err != nil {
				return nil, err
			}
			return &pir.TwoServer{Client: c, E0: pir.InProcess{Server: s0}, E1: pir.InProcess{Server: s1}}, nil
		}
		vs, err := integrity.NewVerifiedSession(com, tab, connect)
		if err != nil {
			return nil, err
		}
		_, verified, err := vs.Fetch(uint64(rows / 2))
		if err != nil {
			return nil, err
		}
		plainTS, err := connect(tab, rows)
		if err != nil {
			return nil, err
		}
		_, plain, err := plainTS.Fetch([]uint64{uint64(rows / 2)})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", rows),
			fmtBytes(plain.Total()), fmtBytes(verified.Total()),
			fmt.Sprintf("%.1fx", float64(verified.Total())/float64(plain.Total())),
			fmt.Sprintf("%d", len(com.Levels)))
	}
	return t, nil
}

// AblationCoopThreshold justifies the paper's 2^22 scheduling threshold:
// batched membound vs cooperative groups across table sizes.
func AblationCoopThreshold() (*Table, error) {
	t := &Table{
		ID:      "abl-coop",
		Title:   "Scheduling ablation: batched membound vs cooperative groups (B tuned, 300ms budget)",
		Columns: []string{"table size", "membound QPS", "membound b1 latency", "coop QPS", "coop latency", "scheduler picks"},
		Notes:   "the scheduler switches to cooperative groups at 2^22 (§3.2.5)",
	}
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	for _, bits := range []int{18, 20, 22, 24, 26} {
		mbQPS := "n/a (no batch <300ms)"
		if mb, err := strategy.TuneBatch(dev, strategy.MemBoundTree{K: 128, Fused: true}, prg, bits, 64, 300*time.Millisecond); err == nil {
			mbQPS = fmtF(mb.Throughput)
		}
		mb1, err := (strategy.MemBoundTree{K: 128, Fused: true}).Model(dev, prg, bits, 1, 64)
		if err != nil {
			return nil, err
		}
		coop, err := (strategy.CoopGroups{}).Model(dev, prg, bits, 1, 64)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("2^%d", bits),
			mbQPS, mb1.Latency.Round(10*time.Microsecond).String(),
			fmtF(coop.Throughput), coop.Latency.Round(10*time.Microsecond).String(),
			strategy.Schedule(bits).Name())
	}
	return t, nil
}

// AblationHotFraction sweeps the hot-table size on the MovieLens app
// (DESIGN.md §6): quality and computation vs fraction, fixed budgets.
func AblationHotFraction() (*Table, error) {
	apps, err := Apps()
	if err != nil {
		return nil, err
	}
	var app *App
	for _, a := range apps {
		if a.Name == "movielens" {
			app = a
		}
	}
	if app == nil {
		return nil, fmt.Errorf("experiments: movielens app missing")
	}
	t := &Table{
		ID:      "abl-hotfrac",
		Title:   "Hot-table fraction ablation (movielens, C=2, QHot=8, QFull=16)",
		Columns: []string{"hot fraction", "quality", "PRF blocks/inf", "comm/inf"},
		Notes:   "paper finds 10–20% of the table a good hot-table size (§4.2)",
	}
	for _, frac := range []float64{0, 0.05, 0.1, 0.2, 0.4} {
		groups := (app.Items + 2) / 3 // C=2 → groups of ≤3
		p := codesign.Params{C: 2, HotRows: int(frac * float64(groups)), QHot: 8, QFull: 16}
		if p.HotRows == 0 {
			p.QHot = 0
		}
		l, err := codesign.BuildLayout(app.Items, app.Dim, app.Freq, app.Cooccur, p)
		if err != nil {
			return nil, err
		}
		q, err := app.Quality(l)
		if err != nil {
			return nil, err
		}
		cost := l.Cost()
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100), qualStr(app, q),
			fmt.Sprintf("%d", cost.PRFBlocks), fmtBytes(cost.CommBytes()))
	}
	return t, nil
}

// AblationColocation sweeps C on the WikiText-2 app (words co-occur
// strongly, the case the paper says favours C≈4–5).
func AblationColocation() (*Table, error) {
	apps, err := Apps()
	if err != nil {
		return nil, err
	}
	app := apps[0] // wikitext2
	t := &Table{
		ID:      "abl-coloc",
		Title:   "Co-location ablation (wikitext2, no hot table, QFull=16)",
		Columns: []string{"C", "quality", "PRF blocks/inf", "comm/inf"},
		Notes:   "paper: higher C (4–5) favours language tasks; recommendation prefers 1–3 (§4.2)",
	}
	for _, c := range []int{0, 1, 2, 4, 6} {
		l, err := codesign.BuildLayout(app.Items, app.Dim, app.Freq, app.Cooccur, codesign.Params{C: c, QFull: 16})
		if err != nil {
			return nil, err
		}
		q, err := app.Quality(l)
		if err != nil {
			return nil, err
		}
		cost := l.Cost()
		t.AddRow(fmt.Sprintf("%d", c), qualStr(app, q),
			fmt.Sprintf("%d", cost.PRFBlocks), fmtBytes(cost.CommBytes()))
	}
	return t, nil
}
