package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   "note",
	}
	tab.AddRow("1", "2")
	out := tab.Render()
	for _, want := range []string{"== x: demo ==", "a", "bb", "1", "2", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestHardwareExperiments runs every model-only experiment and sanity
// checks its shape.
func TestHardwareExperiments(t *testing.T) {
	cases := []struct {
		name string
		run  func() (*Table, error)
		rows int // minimum rows
	}{
		{"fig3", Fig3, 6},
		{"tab1", Table1, 6},
		{"tab2", Table2, 5},
		{"fig6", Fig6, 15},
		{"fig8", Fig8, 8},
		{"fig9", Fig9, 8},
		{"fig13", Fig13, 10},
		{"fig14", Fig14, 7},
		{"tab4", Table4, 9},
		{"tab5", Table5, 5},
		{"ext-multigpu", ExtMultiGPU, 5},
		{"ext-integrity", ExtIntegrity, 3},
		{"abl-coop", AblationCoopThreshold, 5},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			tab, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) < c.rows {
				t.Fatalf("%s has %d rows, want >= %d:\n%s", c.name, len(tab.Rows), c.rows, tab.Render())
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s: row width %d != %d columns", c.name, len(row), len(tab.Columns))
				}
			}
		})
	}
}

// TestTable4Shape: the regenerated Table 4 must show the GPU beating the
// 32-thread CPU on every table size.
func TestTable4Shape(t *testing.T) {
	tab, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in triples: GPU, CPU 1t, CPU 32t.
	if len(tab.Rows)%3 != 0 {
		t.Fatalf("unexpected row grouping:\n%s", tab.Render())
	}
	var gpuRows, cpu32Rows []string
	for _, row := range tab.Rows {
		switch row[2] {
		case "GPU (V100)":
			gpuRows = append(gpuRows, row[3])
		case "CPU 32-thread":
			cpu32Rows = append(cpu32Rows, row[3])
		}
	}
	if len(gpuRows) != 3 || len(cpu32Rows) != 3 {
		t.Fatalf("missing platform rows:\n%s", tab.Render())
	}
}

// TestAppExperiments exercises the trained-model experiments (slow: trains
// three models and runs grid searches). Skipped with -short.
func TestAppExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("app experiments train models; skipped in -short")
	}
	apps, err := Apps()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 3 {
		t.Fatalf("%d apps, want 3", len(apps))
	}
	for _, app := range apps {
		if app.Baseline == 0 || app.AvgQueries <= 0 {
			t.Fatalf("%s: degenerate app %+v", app.Name, app)
		}
		// Recommendation baselines must beat random; LM must beat uniform.
		if app.QualityLabel == "AUC" && app.Baseline < 0.6 {
			t.Errorf("%s: baseline AUC %.3f too weak to measure drops", app.Name, app.Baseline)
		}
		if app.QualityLabel == "ppl" && -app.Baseline > float64(app.Items) {
			t.Errorf("%s: baseline ppl %.1f worse than uniform", app.Name, -app.Baseline)
		}
	}

	for _, run := range []struct {
		name string
		fn   func() (*Table, error)
	}{
		{"fig11+tab3", Fig11Table3},
		{"fig12", Fig12},
		{"fig16", Fig16},
		{"fig17", Fig17},
		{"fig18", Fig18},
		{"fig19", Fig19},
		{"fig20", Fig20},
		{"abl-hotfrac", AblationHotFraction},
		{"abl-coloc", AblationColocation},
	} {
		tab, err := run.fn()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", run.name)
		}
		t.Logf("%s:\n%s", run.name, tab.Render())
	}
}

// TestDropSensitivity: each trained app must lose quality when everything
// is dropped — otherwise the co-design experiments measure nothing.
func TestDropSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("needs trained apps")
	}
	apps, err := Apps()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		allDropped := make([]map[uint64]bool, len(app.TestTraces))
		for i, tr := range app.TestTraces {
			m := map[uint64]bool{}
			for _, idx := range tr {
				m[idx] = true
			}
			allDropped[i] = m
		}
		worst, err := app.ScoreDrops(allDropped)
		if err != nil {
			t.Fatal(err)
		}
		if worst >= app.Baseline {
			t.Errorf("%s: dropping every lookup did not hurt (%.4g vs %.4g)",
				app.Name, worst, app.Baseline)
		}
		// Taobao is dense-dominated: its hit should be the smallest
		// relative one (Figure 20's point) — checked in the fig tests.
		_ = worst
	}
}
