package experiments

import (
	"fmt"
	"time"

	"gpudpf/internal/codesign"
)

// Fig16 regenerates Figure 16: computation (a) and communication (b)
// needed to reach the Acc-relaxed quality target with and without ML
// co-design.
func Fig16() (*Table, error) {
	apps, err := Apps()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig16",
		Title:   "Computation and communication to reach Acc-relaxed, with/without co-design",
		Columns: []string{"app", "axis", "without co-design", "with co-design", "saving"},
		Notes:   "paper: co-design improves computation 1.9–7.4x and communication 1–2.6x",
	}
	for _, app := range apps {
		budget := codesign.Budgets{CommBytes: app.CommBudget, Latency: time.Duration(app.LatencyBudget) * time.Millisecond}
		target := app.RelaxedTarget()

		withC, err := searchApp(app, appSpace(), budget, "std")
		if err != nil {
			return nil, err
		}
		withoutC, err := searchApp(app, pbrOnlySpace(), budget, "pbr")
		if err != nil {
			return nil, err
		}
		// The no-co-design arm may also fall back to the straightforward
		// per-lookup design, like the paper's baseline systems do.
		plain, err := plainSweep(app)
		if err != nil {
			return nil, err
		}

		// (a) minimum computation meeting the target under the comm budget.
		minPRF := func(cands []codesign.Candidate, includePlain bool) (int64, bool) {
			best := int64(-1)
			for _, c := range cands {
				if c.Quality < target {
					continue
				}
				if best < 0 || c.Cost.PRFBlocks < best {
					best = c.Cost.PRFBlocks
				}
			}
			if includePlain {
				for _, p := range plain {
					if p.Quality < target || p.Comm() > app.CommBudget {
						continue
					}
					if best < 0 || p.PRF < best {
						best = p.PRF
					}
				}
			}
			return best, best >= 0
		}
		aWith, okW := minPRF(withC, true)
		aWithout, okWo := minPRF(withoutC, true)
		t.AddRow(app.Name, "computation (PRF blocks)",
			prfOrNA(aWithout, okWo), prfOrNA(aWith, okW), ratioStr(aWithout, aWith, okW && okWo))

		// (b) minimum communication meeting the target under a computation
		// cap (a few full-table passes — the analogue of the paper's fixed
		// PRF budgets).
		compCap := int64(8 * app.Items)
		minComm := func(cands []codesign.Candidate, includePlain bool) (int64, bool) {
			best := int64(-1)
			for _, c := range cands {
				if c.Quality < target || c.Cost.PRFBlocks > compCap {
					continue
				}
				if best < 0 || c.Cost.CommBytes() < best {
					best = c.Cost.CommBytes()
				}
			}
			if includePlain {
				for _, p := range plain {
					if p.Quality < target || p.PRF > compCap {
						continue
					}
					if best < 0 || p.Comm() < best {
						best = p.Comm()
					}
				}
			}
			return best, best >= 0
		}
		bWith, okW2 := minComm(withC, true)
		bWithout, okWo2 := minComm(withoutC, true)
		t.AddRow(app.Name, "communication",
			commOrNA(bWithout, okWo2), commOrNA(bWith, okW2), ratioStr(bWithout, bWith, okW2 && okWo2))
	}
	return t, nil
}

func prfOrNA(v int64, ok bool) string {
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf("%d", v)
}

func commOrNA(v int64, ok bool) string {
	if !ok {
		return "n/a"
	}
	return fmtBytes(v)
}

func ratioStr(without, with int64, ok bool) string {
	if !ok || with <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(without)/float64(with))
}

// Fig17 regenerates Figure 17: the computation/communication pareto with
// model quality fixed within 2% of baseline.
func Fig17() (*Table, error) {
	apps, err := Apps()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig17",
		Title:   "Computation vs communication pareto (quality within 2% of baseline)",
		Columns: []string{"app", "design", "PRF blocks", "communication", "quality"},
	}
	for _, app := range apps {
		target := app.Baseline - 0.02*abs(app.Baseline)
		budget := codesign.Budgets{CommBytes: app.CommBudget, Latency: time.Duration(app.LatencyBudget) * time.Millisecond}
		for _, variant := range []struct {
			name  string
			space codesign.Space
			kind  string
		}{{"batch-pir", pbrOnlySpace(), "pbr"}, {"w/ co-design", appSpace(), "std"}} {
			cands, err := searchApp(app, variant.space, budget, variant.kind)
			if err != nil {
				return nil, err
			}
			for _, c := range paretoCompComm(cands, target) {
				t.AddRow(app.Name, variant.name,
					fmt.Sprintf("%d", c.Cost.PRFBlocks), fmtBytes(c.Cost.CommBytes()),
					qualStr(app, c.Quality))
			}
		}
		// The straightforward per-lookup design for reference.
		plain, err := plainSweep(app)
		if err != nil {
			return nil, err
		}
		for _, p := range plain {
			if p.Quality >= target && p.Comm() <= app.CommBudget {
				t.AddRow(app.Name, "per-lookup PIR",
					fmt.Sprintf("%d", p.PRF), fmtBytes(p.Comm()), qualStr(app, p.Quality))
				break // cheapest feasible point only
			}
		}
	}
	return t, nil
}

// paretoCompComm filters to quality-meeting candidates minimal on
// (computation, communication).
func paretoCompComm(cands []codesign.Candidate, target float64) []codesign.Candidate {
	var feasible []codesign.Candidate
	for _, c := range cands {
		if c.Quality >= target {
			feasible = append(feasible, c)
		}
	}
	var front []codesign.Candidate
	for i, c := range feasible {
		dominated := false
		for j, o := range feasible {
			if i == j {
				continue
			}
			if o.Cost.PRFBlocks <= c.Cost.PRFBlocks && o.Cost.CommBytes() <= c.Cost.CommBytes() &&
				(o.Cost.PRFBlocks < c.Cost.PRFBlocks || o.Cost.CommBytes() < c.Cost.CommBytes()) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	return front
}

// FigQualityVsQPS regenerates Figures 18 (wikitext2), 19 (movielens) and
// 20 (taobao): throughput vs model quality with and without co-design at a
// tight and a loose budget.
func FigQualityVsQPS(appName, figID string) (*Table, error) {
	apps, err := Apps()
	if err != nil {
		return nil, err
	}
	var app *App
	for _, a := range apps {
		if a.Name == appName {
			app = a
		}
	}
	if app == nil {
		return nil, fmt.Errorf("experiments: unknown app %q", appName)
	}
	t := &Table{
		ID:      figID,
		Title:   fmt.Sprintf("Throughput vs quality (%s), with/without co-design", appName),
		Columns: []string{"budget", "design", "QPS", "quality"},
		Notes:   "pareto points only; co-design helps most under the tight budget",
	}
	budgets := []struct {
		name string
		b    codesign.Budgets
	}{
		{"tight", codesign.Budgets{CommBytes: app.TightComm, Latency: 50 * time.Millisecond}},
		{"loose", codesign.Budgets{CommBytes: app.CommBudget, Latency: 200 * time.Millisecond}},
	}
	for _, bud := range budgets {
		for _, variant := range []struct {
			name  string
			space codesign.Space
			kind  string
		}{{"batch-pir", pbrOnlySpace(), "pbr"}, {"w/ co-design", appSpace(), "std"}} {
			cands, err := searchApp(app, variant.space, bud.b, variant.kind)
			if err != nil {
				t.AddRow(bud.name, variant.name, "n/a", "infeasible budget")
				continue
			}
			for _, c := range codesign.ParetoFront(cands) {
				t.AddRow(bud.name, variant.name, fmtF(c.QPS), qualStr(app, c.Quality))
			}
		}
	}
	return t, nil
}

// Fig18 is the WikiText-2 quality/throughput figure.
func Fig18() (*Table, error) { return FigQualityVsQPS("wikitext2", "fig18") }

// Fig19 is the MovieLens quality/throughput figure.
func Fig19() (*Table, error) { return FigQualityVsQPS("movielens", "fig19") }

// Fig20 is the Taobao quality/throughput figure.
func Fig20() (*Table, error) { return FigQualityVsQPS("taobao", "fig20") }

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// All runs every experiment in paper order, then the extensions and
// ablations.
func All() ([]*Table, error) {
	runners := []func() (*Table, error){
		Fig3, Table1, Table2, Fig6, Fig8, Fig9,
		Fig11Table3, Fig12, Fig13, Fig14, Table4, Table5,
		Fig16, Fig17, Fig18, Fig19, Fig20,
		ExtMultiGPU, ExtServing, ExtIntegrity,
		AblationCoopThreshold, AblationHotFraction, AblationColocation,
	}
	var out []*Table
	for _, run := range runners {
		tab, err := run()
		if err != nil {
			return nil, err
		}
		out = append(out, tab)
	}
	return out, nil
}
