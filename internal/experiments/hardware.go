package experiments

import (
	"fmt"
	"time"

	"gpudpf/internal/data"
	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

// Fig3 regenerates Figure 3: Gen vs Eval cost across table sizes. Gen runs
// on the client model (Intel Core i3), Eval on the single-threaded Xeon
// model — the point is the orders-of-magnitude gap that motivates
// accelerating Eval only.
func Fig3() (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   "Gen vs Eval performance (AES-128)",
		Columns: []string{"table size", "Gen (client i3)", "Eval (CPU 1t)", "Eval/Gen"},
	}
	prg := dpf.NewAESPRG()
	i3 := gpu.IntelCorei3()
	for _, bits := range []int{10, 14, 18, 20, 22, 24} {
		gen := i3.CPUTime(gpu.GenProfile(prg.CPUCyclesPerBlock(), bits, 1), 1)
		rep, err := (strategy.CPUBaseline{Threads: 1}).Model(nil, prg, bits, 1, 64)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("2^%d", bits),
			gen.Round(time.Microsecond).String(),
			rep.Latency.Round(10*time.Microsecond).String(),
			fmtF(rep.Latency.Seconds()/gen.Seconds()))
	}
	return t, nil
}

// Table1 regenerates Table 1: embedding table sizes for public models.
func Table1() (*Table, error) {
	t := &Table{
		ID:      "tab1",
		Title:   "Embedding table sizes for popular public datasets/models",
		Columns: []string{"application", "# entries", "entry size", "table size"},
	}
	for _, spec := range data.Table1() {
		t.AddRow(spec.Name, fmt.Sprintf("%d", spec.Entries),
			fmt.Sprintf("%dB", spec.EntryBytes), fmtBytes(spec.TableBytes()))
	}
	return t, nil
}

// Table2 regenerates Table 2: the real-world model's device-only features.
func Table2() (*Table, error) {
	t := &Table{
		ID:      "tab2",
		Title:   "Real-world recommendation model: top-5 device-only sparse features",
		Columns: []string{"# entries", "avg queries/inference", "table size (144B entries)"},
		Notes: fmt.Sprintf("temporal locality: only %.2f%% of sparse features are new per inference",
			data.RealWorldNewFeatureRate*100),
	}
	for _, f := range data.RealWorldModel() {
		t.AddRow(fmt.Sprintf("%d", f.Entries), fmtF(f.AvgQueries),
			fmtBytes(int64(f.Entries)*data.RealWorldEntryBytes))
	}
	return t, nil
}

// Fig6 regenerates Figure 6: PRF work and peak memory per strategy across
// table sizes (batch 32, 2048-bit entries).
func Fig6() (*Table, error) {
	t := &Table{
		ID:      "fig6",
		Title:   "PRFs evaluated and peak memory per parallelization strategy (B=32)",
		Columns: []string{"table size", "strategy", "PRF blocks", "peak memory"},
		Notes:   "branch-parallel pays L·logL work; level-by-level pays O(B·L) memory; membound pays neither",
	}
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	strats := []strategy.Strategy{
		strategy.BranchParallel{},
		strategy.LevelByLevel{},
		strategy.MemBoundTree{K: 128, Fused: true},
	}
	for _, bits := range []int{14, 16, 18, 20, 22, 24} {
		for _, s := range strats {
			rep, err := s.Model(dev, prg, bits, 32, 64)
			if err != nil {
				t.AddRow(fmt.Sprintf("2^%d", bits), s.Name(), "-", "OOM (>16GB)")
				continue
			}
			t.AddRow(fmt.Sprintf("2^%d", bits), s.Name(),
				fmt.Sprintf("%d", rep.PRFBlocks), fmtBytes(rep.PeakMemBytes))
		}
	}
	return t, nil
}

// Fig8 regenerates Figure 8: membound memory vs table size (a) and
// utilization vs K (b).
func Fig8() (*Table, error) {
	t := &Table{
		ID:      "fig8",
		Title:   "Memory-bounded traversal: memory vs L, and utilization vs K (L=2^20, B=8)",
		Columns: []string{"sweep", "value", "peak memory", "utilization"},
	}
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	for _, bits := range []int{16, 18, 20, 22, 24} {
		rep, err := (strategy.MemBoundTree{K: 128, Fused: true}).Model(dev, prg, bits, 8, 64)
		if err != nil {
			return nil, err
		}
		t.AddRow("L", fmt.Sprintf("2^%d", bits), fmtBytes(rep.PeakMemBytes), fmt.Sprintf("%.1f%%", rep.Utilization*100))
	}
	for _, k := range []int{8, 32, 128, 512, 1024} {
		rep, err := (strategy.MemBoundTree{K: k, Fused: true}).Model(dev, prg, 20, 8, 64)
		if err != nil {
			return nil, err
		}
		t.AddRow("K", fmt.Sprintf("%d", k), fmtBytes(rep.PeakMemBytes), fmt.Sprintf("%.1f%%", rep.Utilization*100))
	}
	return t, nil
}

// Fig9 regenerates Figure 9: utilization vs batch size (a) and vs table
// size for batch-1 cooperative groups against batched execution (b).
func Fig9() (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "GPU utilization vs batch size (membound, L=2^20) and vs table size (coop B=1)",
		Columns: []string{"sweep", "value", "strategy", "utilization"},
	}
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	mb := strategy.MemBoundTree{K: 128, Fused: true}
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		rep, err := mb.Model(dev, prg, 20, b, 64)
		if err != nil {
			return nil, err
		}
		t.AddRow("batch", fmt.Sprintf("%d", b), rep.Strategy, fmt.Sprintf("%.1f%%", rep.Utilization*100))
	}
	for _, bits := range []int{14, 16, 18, 20, 22, 24, 26} {
		coop, err := (strategy.CoopGroups{}).Model(dev, prg, bits, 1, 64)
		if err != nil {
			return nil, err
		}
		batched, err := mb.Model(dev, prg, bits, 1, 64)
		if err != nil {
			return nil, err
		}
		t.AddRow("table", fmt.Sprintf("2^%d", bits), "coop-groups", fmt.Sprintf("%.1f%%", coop.Utilization*100))
		t.AddRow("table", fmt.Sprintf("2^%d", bits), "membound B=1", fmt.Sprintf("%.1f%%", batched.Utilization*100))
	}
	return t, nil
}

// Fig13 regenerates Figure 13: the latency/throughput frontier per
// strategy at 1M and 16M entries.
func Fig13() (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Throughput vs latency per GPU optimization (entry 2048b)",
		Columns: []string{"table", "strategy", "batch", "latency", "QPS"},
		Notes:   "level-by-level rows stop at its device-memory cliff; coop-groups shines on the large table",
	}
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	strats := []strategy.Strategy{
		strategy.BranchParallel{},
		strategy.LevelByLevel{},
		strategy.MemBoundTree{K: 128, Fused: true},
		strategy.CoopGroups{},
	}
	for _, bits := range []int{20, 24} {
		for _, s := range strats {
			for b := 1; b <= 4096; b *= 8 {
				rep, err := s.Model(dev, prg, bits, b, 64)
				if err != nil {
					break // OOM at this and larger batches
				}
				t.AddRow(fmt.Sprintf("2^%d", bits), s.Name(), fmt.Sprintf("%d", b),
					rep.Latency.Round(10*time.Microsecond).String(), fmtF(rep.Throughput))
			}
		}
	}
	return t, nil
}

// Fig14 regenerates Figure 14: entry-size impact with and without operator
// fusion (1M entries).
func Fig14() (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "Entry size vs latency/throughput, fusion on/off (L=2^20, B=32)",
		Columns: []string{"entry size", "fused latency", "fused QPS", "unfused latency", "unfused QPS", "fusion speedup"},
	}
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	for _, entryBytes := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		lanes := entryBytes / 4
		f, err := (strategy.MemBoundTree{K: 128, Fused: true}).Model(dev, prg, 20, 32, lanes)
		if err != nil {
			return nil, err
		}
		u, err := (strategy.MemBoundTree{K: 128, Fused: false}).Model(dev, prg, 20, 32, lanes)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtBytes(int64(entryBytes)),
			f.Latency.Round(10*time.Microsecond).String(), fmtF(f.Throughput),
			u.Latency.Round(10*time.Microsecond).String(), fmtF(u.Throughput),
			fmt.Sprintf("%.2fx", f.Throughput/u.Throughput))
	}
	return t, nil
}

// Table4 regenerates Table 4 / Figure 15: GPU vs single- and multi-threaded
// CPU across table sizes, with key sizes.
func Table4() (*Table, error) {
	t := &Table{
		ID:      "tab4",
		Title:   "GPU (all optimizations) vs CPU baseline, AES-128, 2048-bit entries",
		Columns: []string{"# entries", "key bytes", "platform", "QPS", "latency"},
		Notes:   "paper: 16K GPU 60,347 / 1M GPU 1,358 / 4M GPU 468 QPS; >17x over 32-thread CPU on every row",
	}
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	for _, row := range []struct {
		bits int
		name string
	}{{14, "16K"}, {20, "1M"}, {22, "4M"}} {
		keyBytes := dpf.MarshaledSizeEarly(row.bits, 1, dpf.DefaultEarly(row.bits, 1))
		// Batch tuned for throughput within the paper's 300ms budget
		// (§5.1); our membound model needs larger batches than the
		// authors' kernels to saturate, so batch latency runs higher.
		gpuRep, err := strategy.TuneBatch(dev, strategy.Schedule(row.bits), prg, row.bits, 64, 300*time.Millisecond)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.name, fmt.Sprintf("%d", keyBytes), "GPU (V100)",
			fmtF(gpuRep.Throughput), gpuRep.Latency.Round(10*time.Microsecond).String())
		for _, threads := range []int{1, 32} {
			rep, err := (strategy.CPUBaseline{Threads: threads}).Model(nil, prg, row.bits, 1, 64)
			if err != nil {
				return nil, err
			}
			t.AddRow(row.name, fmt.Sprintf("%d", keyBytes),
				fmt.Sprintf("CPU %d-thread", threads),
				fmtF(rep.Throughput), rep.Latency.Round(10*time.Microsecond).String())
		}
	}
	return t, nil
}

// Table5 regenerates Table 5: PRF comparison at 1M entries, batch 512.
func Table5() (*Table, error) {
	t := &Table{
		ID:      "tab5",
		Title:   "Memory-efficient GPU DPF with different PRFs (L=2^20, B=512)",
		Columns: []string{"PRF", "type", "latency", "QPS", "vs AES-128"},
		Notes:   "paper QPS: AES 965, SHA 921, ChaCha20 3,640, SipHash 7,447, HighwayHash 1,973",
	}
	dev := gpu.TeslaV100()
	kinds := map[string]string{
		"aes128":   "block cipher (CTR)",
		"sha256":   "hash (HMAC)",
		"chacha20": "stream cipher",
		"siphash":  "PRF",
		"highway":  "PRF",
	}
	var aesQPS float64
	reps := map[string]strategy.Report{}
	for _, name := range dpf.AllPRGNames() {
		prg, err := dpf.NewPRG(name)
		if err != nil {
			return nil, err
		}
		rep, err := (strategy.MemBoundTree{K: 128, Fused: true}).Model(dev, prg, 20, 512, 64)
		if err != nil {
			return nil, err
		}
		reps[name] = rep
		if name == "aes128" {
			aesQPS = rep.Throughput
		}
	}
	for _, name := range dpf.AllPRGNames() {
		rep := reps[name]
		t.AddRow(name, kinds[name],
			rep.Latency.Round(100*time.Microsecond).String(),
			fmtF(rep.Throughput), fmt.Sprintf("%.2fx", rep.Throughput/aesQPS))
	}
	return t, nil
}
