package experiments

import (
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"sync"

	"gpudpf/internal/codesign"
	"gpudpf/internal/data"
	"gpudpf/internal/ml"
)

// App is one end-to-end evaluation application (§5.1): a trained model
// whose protected embedding lookups flow through the co-design layer.
type App struct {
	// Name is wikitext2 / movielens / taobao.
	Name string
	// Items and Dim describe the protected table (Dim float32 lanes; the
	// entry sizes track Table 1: 128 bytes).
	Items, Dim int
	// Freq and Cooccur are training-split statistics for preprocessing.
	Freq    []int64
	Cooccur [][]uint64
	// TestTraces are the held-out per-inference lookup sets.
	TestTraces [][]uint64
	// AvgQueries is the mean lookups per inference on the test split.
	AvgQueries float64
	// Baseline is the no-drop quality (internal units, higher = better;
	// LM quality is negated perplexity).
	Baseline float64
	// QualityLabel and Display map internal quality to the paper's metric.
	QualityLabel string
	Display      func(float64) float64
	// EcoTol and RelaxedTol are the quality slack for Acc-eco (tiny) and
	// Acc-relaxed (paper: <0.5% for recommendation, <5% for LM), in
	// internal units.
	EcoTol, RelaxedTol float64
	// ScoreDrops re-scores the model on the test split with the given
	// per-trace dropped-lookup sets.
	ScoreDrops func(drops []map[uint64]bool) (float64, error)
	// ModelFLOPs drives the on-device DNN latency term (Figure 12).
	ModelFLOPs float64
	// CommBudget and LatencyBudget are the paper's standard budgets scaled
	// to this app's table size (budgets must stay well under the table
	// size or trivial full-download dominates; see EXPERIMENTS.md).
	CommBudget    int64
	TightComm     int64
	LatencyBudget int64 // milliseconds
}

// EcoTarget and RelaxedTarget are the quality floors for the two paper
// operating points.
func (a *App) EcoTarget() float64     { return a.Baseline - a.EcoTol }
func (a *App) RelaxedTarget() float64 { return a.Baseline - a.RelaxedTol }

// Quality evaluates a layout by simulating its drops on the held-out split
// and re-scoring the model (deterministic dummy randomness so grid points
// are comparable).
func (a *App) Quality(l *codesign.Layout) (float64, error) {
	drops, err := l.SimulateDrops(a.TestTraces, a.Freq, randv2.New(randv2.NewPCG(7, 0)))
	if err != nil {
		return 0, err
	}
	return a.ScoreDrops(drops)
}

// PlainDrops simulates the straightforward (non-PBR) design: each
// inference issues exactly q independent full-table queries, most frequent
// lookups first; anything beyond q drops. No bin collisions.
func (a *App) PlainDrops(q int) []map[uint64]bool {
	out := make([]map[uint64]bool, len(a.TestTraces))
	for i, tr := range a.TestTraces {
		ordered := codesign.OrderByFrequency(tr, a.Freq)
		m := map[uint64]bool{}
		for j := q; j < len(ordered); j++ {
			m[ordered[j]] = true
		}
		out[i] = m
	}
	return out
}

// recApp trains the 2-layer MLP recommendation model and wires its quality
// function. The model sees the privately pooled user history (the part PIR
// protects), the candidate's public metadata (genre one-hot — candidates
// arrive from the server with attributes, §2.1) and the dense context.
func recApp(cfg data.RecConfig, dim, hidden, epochs int) (*App, error) {
	ds, err := data.GenRec(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	hist := ml.NewEmbedding(cfg.Items, dim, rng)
	mlp := ml.NewMLP(dim+cfg.Genres+cfg.DenseDim, hidden, rng)

	feats := func(s data.RecSample, drops map[uint64]bool) ml.Vec {
		x := make(ml.Vec, dim+cfg.Genres+cfg.DenseDim)
		hist.Bag(x[:dim], s.History, drops)
		x[dim+s.CandGenre] = 1
		copy(x[dim+cfg.Genres:], s.Dense)
		return x
	}
	// Embeddings take a larger step than the dense layers: each history
	// item receives only 1/len(history) of the pooled gradient.
	const lr, embLR = 0.05, 0.4
	for e := 0; e < epochs; e++ {
		for _, s := range ds.Train {
			x := feats(s, nil)
			_, dx := mlp.TrainStep(x, s.Label, lr)
			hist.BagGrad(dx[:dim], s.History, nil, embLR)
		}
	}

	score := func(drops []map[uint64]bool) (float64, error) {
		scores := make([]float64, len(ds.Test))
		labels := make([]float64, len(ds.Test))
		for i, s := range ds.Test {
			var d map[uint64]bool
			if drops != nil {
				if i >= len(drops) {
					return 0, fmt.Errorf("experiments: %d drop sets for %d test samples", len(drops), len(ds.Test))
				}
				d = drops[i]
			}
			scores[i] = mlp.Predict(feats(s, d))
			labels[i] = s.Label
		}
		return ml.AUC(scores, labels), nil
	}

	trainTraces := ds.Traces(true)
	testTraces := ds.Traces(false)
	freq := data.Freq(trainTraces, cfg.Items)
	baseline, err := score(nil)
	if err != nil {
		return nil, err
	}
	return &App{
		Name:         cfg.Name,
		Items:        cfg.Items,
		Dim:          dim,
		Freq:         freq,
		Cooccur:      data.Cooccur(trainTraces, cfg.Items, 8),
		TestTraces:   testTraces,
		AvgQueries:   avgTraceLen(testTraces),
		Baseline:     baseline,
		QualityLabel: "AUC",
		Display:      func(q float64) float64 { return q },
		EcoTol:       0.004 * baseline,
		RelaxedTol:   0.02 * baseline,
		ScoreDrops:   score,
		ModelFLOPs:   mlp.FLOPs(),
	}, nil
}

// lmApp trains the LSTM language model.
func lmApp(cfg data.LMConfig, embDim, hiddenDim, window, epochs int) (*App, error) {
	ds, err := data.GenLM(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 200))
	model := ml.NewLSTM(cfg.Vocab, embDim, hiddenDim, rng)
	const lr = 0.1
	for e := 0; e < epochs; e++ {
		for off := 0; off+window+1 <= len(ds.Train); off += window {
			model.TrainStep(ds.Train[off:off+window+1], lr)
		}
	}

	// Quality: mean NLL over test windows, each with its own drop set.
	nllWithDrops := func(drops []map[uint64]bool) float64 {
		var total float64
		n := 0
		for w := 0; w*window+window <= len(ds.Test); w++ {
			var d map[int]bool
			if drops != nil && w < len(drops) {
				d = map[int]bool{}
				for idx := range drops[w] {
					d[int(idx)] = true
				}
			}
			total += model.NLL(ds.Test[w*window:w*window+window], d)
			n++
		}
		return total / float64(n)
	}

	trainTraces := ds.Traces(window, true)
	testTraces := ds.Traces(window, false)
	freq := data.Freq(trainTraces, cfg.Vocab)
	basePPL := ml.PerplexityFromNLL(nllWithDrops(nil))
	return &App{
		Name:         "wikitext2",
		Items:        cfg.Vocab,
		Dim:          embDim,
		Freq:         freq,
		Cooccur:      data.Cooccur(trainTraces, cfg.Vocab, 8),
		TestTraces:   testTraces,
		AvgQueries:   avgTraceLen(testTraces),
		Baseline:     -basePPL,
		QualityLabel: "ppl",
		Display:      func(q float64) float64 { return -q },
		EcoTol:       0.005 * basePPL,
		RelaxedTol:   0.05 * basePPL,
		ScoreDrops: func(drops []map[uint64]bool) (float64, error) {
			return -ml.PerplexityFromNLL(nllWithDrops(drops)), nil
		},
		ModelFLOPs: model.FLOPs(),
	}, nil
}

func avgTraceLen(traces [][]uint64) float64 {
	if len(traces) == 0 {
		return 0
	}
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	return float64(total) / float64(len(traces))
}

var (
	appsOnce sync.Once
	appsVal  []*App
	appsErr  error
)

// Apps builds (once) the three evaluation applications at experiment scale:
// small enough to train in seconds, large enough that the communication
// budgets bind (well under the table sizes).
func Apps() ([]*App, error) {
	appsOnce.Do(func() {
		appsVal, appsErr = buildApps()
	})
	return appsVal, appsErr
}

// buildApps constructs the three applications. Scales are chosen so every
// model genuinely learns from its synthetic data (each vocabulary item gets
// enough training exposure for drops to hurt) while the communication
// budgets stay an order of magnitude below the table sizes — the paper's
// regime, scaled down; see EXPERIMENTS.md.
func buildApps() ([]*App, error) {
	lmCfg := data.LMConfig{
		Vocab: 512, TrainTokens: 30000, TestTokens: 2000,
		ZipfS: 1.1, BigramFollow: 0.7, Succ: 3, Seed: 3,
	}
	lm, err := lmApp(lmCfg, 32, 24, 16, 6) // 128B entries → 64KB table
	if err != nil {
		return nil, fmt.Errorf("experiments: building wikitext2: %w", err)
	}
	lm.CommBudget, lm.TightComm, lm.LatencyBudget = 32<<10, 8<<10, 300

	mlCfg := data.RecConfig{
		Name: "movielens", Items: 2048, Genres: 8, Candidates: 100,
		HistoryLen: 16, ZipfS: 1.2, Train: 4000, Test: 400,
		SessionLen: 4, Seed: 1,
	}
	movie, err := recApp(mlCfg, 16, 24, 6) // 64B entries → 128KB table
	if err != nil {
		return nil, fmt.Errorf("experiments: building movielens: %w", err)
	}
	movie.CommBudget, movie.TightComm, movie.LatencyBudget = 32<<10, 8<<10, 300

	tbCfg := data.RecConfig{
		Name: "taobao", Items: 16384, Genres: 8, Candidates: 100,
		HistoryLen: 3, DenseDim: 8, DenseSignal: 0.85, ZipfS: 1.15,
		Train: 2400, Test: 400, SessionLen: 4, Seed: 2,
	}
	taobao, err := recApp(tbCfg, 16, 24, 2) // 1MB table
	if err != nil {
		return nil, fmt.Errorf("experiments: building taobao: %w", err)
	}
	taobao.CommBudget, taobao.TightComm, taobao.LatencyBudget = 24<<10, 6<<10, 300

	return []*App{lm, movie, taobao}, nil
}
