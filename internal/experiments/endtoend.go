package experiments

import (
	"fmt"
	randv2 "math/rand/v2"
	"sync"
	"time"

	"gpudpf/internal/codesign"
	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/netsim"
	"gpudpf/internal/strategy"
)

// plainPoint is the straightforward design: q independent full-table DPF
// queries per inference (no PBR, no co-design). Lookups beyond q drop.
type plainPoint struct {
	Q       int
	Quality float64
	PRF     int64
	Up      int64
	Down    int64
}

func (p plainPoint) Comm() int64 { return p.Up + p.Down }

func appBits(app *App) int {
	bits := 1
	for 1<<uint(bits) < app.Items {
		bits++
	}
	return bits
}

// plainSweep evaluates the plain design across query budgets.
func plainSweep(app *App) ([]plainPoint, error) {
	bits := appBits(app)
	domain := int64(1) << uint(bits)
	var out []plainPoint
	for _, q := range []int{1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256} {
		quality, err := app.ScoreDrops(app.PlainDrops(q))
		if err != nil {
			return nil, err
		}
		// Priced in the default early-terminated key format (§3.1), like
		// codesign.Cost: the plain and co-designed columns must stay
		// comparable.
		early := dpf.DefaultEarly(bits, 1)
		out = append(out, plainPoint{
			Q:       q,
			Quality: quality,
			PRF:     int64(q) * (2*(domain>>uint(early)) - 2),
			Up:      int64(q) * int64(dpf.MarshaledSizeEarly(bits, 1, early)) * 2,
			Down:    int64(q) * int64(app.Dim) * 4 * 2,
		})
	}
	return out, nil
}

// plainBest picks the cheapest plain point meeting the quality target and
// the communication budget (fewest queries = highest throughput).
func plainBest(points []plainPoint, target float64, commBudget int64) (plainPoint, bool) {
	for _, p := range points { // ascending Q
		if p.Quality >= target && (commBudget == 0 || p.Comm() <= commBudget) {
			return p, true
		}
	}
	return plainPoint{}, false
}

// plainGPUQPS and plainCPUQPS model inference throughput for the plain
// design (query throughput divided by queries per inference).
func plainGPUQPS(app *App, prg dpf.PRG, q int, maxLatency time.Duration) (float64, error) {
	bits := appBits(app)
	rep, err := strategy.TuneBatch(gpu.TeslaV100(), strategy.Schedule(bits), prg, bits, app.Dim, maxLatency)
	if err != nil {
		return 0, err
	}
	return rep.Throughput / float64(q), nil
}

func plainCPUQPS(app *App, prg dpf.PRG, q, threads int) (float64, error) {
	bits := appBits(app)
	rep, err := (strategy.CPUBaseline{Threads: threads}).Model(nil, prg, bits, 1, app.Dim)
	if err != nil {
		return 0, err
	}
	return rep.Throughput / float64(q), nil
}

// appSpace is the co-design grid used for the application experiments —
// compact but covering the paper's good regions.
func appSpace() codesign.Space {
	return codesign.Space{
		Cs:       []int{0, 1, 2, 4},
		HotFracs: []float64{0, 0.1, 0.2},
		QHots:    []int{2, 4, 8, 16},
		QFulls:   []int{1, 2, 4, 8, 16, 32, 64, 96, 128},
	}
}

// pbrOnlySpace is batch-PIR without co-design (Figures 18–20's baseline).
func pbrOnlySpace() codesign.Space {
	return codesign.Space{
		Cs:       []int{0},
		HotFracs: []float64{0},
		QHots:    []int{1},
		QFulls:   []int{1, 2, 4, 8, 16, 32, 64, 128, 256},
	}
}

// searchMemo caches grid searches across experiment runners.
var (
	searchMu   sync.Mutex
	searchMemo = map[string][]codesign.Candidate{}
)

func searchApp(app *App, space codesign.Space, budgets codesign.Budgets, kind string) ([]codesign.Candidate, error) {
	key := fmt.Sprintf("%s/%s/%d/%d", app.Name, kind, budgets.CommBytes, budgets.Latency)
	searchMu.Lock()
	cands, ok := searchMemo[key]
	searchMu.Unlock()
	if ok {
		return cands, nil
	}
	s := &codesign.Searcher{
		Items: app.Items, Dim: app.Dim,
		Freq: app.Freq, Cooccur: app.Cooccur,
		Quality: app.Quality,
		Device:  gpu.TeslaV100(),
		PRG:     dpf.NewAESPRG(),
		Rng:     randv2.New(randv2.NewPCG(11, 0)),
	}
	cands, err := s.Search(space, budgets)
	if err != nil {
		return nil, err
	}
	searchMu.Lock()
	searchMemo[key] = cands
	searchMu.Unlock()
	return cands, nil
}

// rescoreQPS recomputes candidates' modeled throughput under a different
// PRF (quality and communication are PRF-independent).
func rescoreQPS(cands []codesign.Candidate, prg dpf.PRG, maxLatency time.Duration) []codesign.Candidate {
	out := make([]codesign.Candidate, 0, len(cands))
	dev := gpu.TeslaV100()
	for _, c := range cands {
		qps, lat, batch, err := c.Layout.Throughput(dev, prg, maxLatency)
		if err != nil {
			continue
		}
		c.QPS, c.Latency, c.Batch = qps, lat, batch
		out = append(out, c)
	}
	// Keep sorted by QPS descending.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].QPS > out[j-1].QPS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Fig11Table3 regenerates Figure 11 (normalized throughput) and Table 3
// (unnormalized QPS) in one table: per app, the CPU baseline, GPU, GPU+
// co-design and GPU+co-design+ChaCha20 designs at Acc-eco and Acc-relaxed.
func Fig11Table3() (*Table, error) {
	apps, err := Apps()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig11+tab3",
		Title:   "End-to-end inference throughput per design point",
		Columns: []string{"app", "design", "point", "QPS", "vs CPU eco", "quality"},
		Notes:   "paper Table 3 (CPU→best): Wikitext2 5→2,306; MovieLens 44→5,476; Taobao 8k→256k QPS",
	}
	chacha := dpf.NewChaChaPRG()
	aes := dpf.NewAESPRG()
	for _, app := range apps {
		budget := codesign.Budgets{CommBytes: app.CommBudget, Latency: time.Duration(app.LatencyBudget) * time.Millisecond}
		plain, err := plainSweep(app)
		if err != nil {
			return nil, err
		}
		cands, err := searchApp(app, appSpace(), budget, "std")
		if err != nil {
			return nil, err
		}
		chaCands := rescoreQPS(cands, chacha, budget.Latency)

		var cpuEcoQPS float64
		for _, point := range []struct {
			label  string
			target float64
		}{{"acc-eco", app.EcoTarget()}, {"acc-relaxed", app.RelaxedTarget()}} {
			pp, ok := plainBest(plain, point.target, app.CommBudget)
			if !ok {
				t.AddRow(app.Name, "CPU 32t", point.label, "n/a", "-", "-")
				t.AddRow(app.Name, "GPU", point.label, "n/a", "-", "-")
			} else {
				cpuQPS, err := plainCPUQPS(app, aes, pp.Q, 32)
				if err != nil {
					return nil, err
				}
				if point.label == "acc-eco" {
					cpuEcoQPS = cpuQPS
				}
				gpuQPS, err := plainGPUQPS(app, aes, pp.Q, budget.Latency)
				if err != nil {
					return nil, err
				}
				t.AddRow(app.Name, "CPU 32t", point.label, fmtF(cpuQPS),
					norm(cpuQPS, cpuEcoQPS), qualStr(app, pp.Quality))
				t.AddRow(app.Name, "GPU", point.label, fmtF(gpuQPS),
					norm(gpuQPS, cpuEcoQPS), qualStr(app, pp.Quality))
			}
			// The co-design sweep subsumes the plain per-lookup design
			// (the paper's parameter search would pick it when it wins),
			// so the reported point is the better of the two.
			codesignRow := func(label string, prg dpf.PRG, cands []codesign.Candidate) error {
				bestQPS := 0.0
				bestQual := 0.0
				if best, ok := codesign.BestMeetingQuality(cands, point.target); ok {
					bestQPS, bestQual = best.QPS, best.Quality
				}
				if pp, ok := plainBest(plain, point.target, app.CommBudget); ok {
					qps, err := plainGPUQPS(app, prg, pp.Q, budget.Latency)
					if err != nil {
						return err
					}
					if qps > bestQPS {
						bestQPS, bestQual = qps, pp.Quality
					}
				}
				if bestQPS == 0 {
					t.AddRow(app.Name, label, point.label, "n/a", "-", "-")
					return nil
				}
				t.AddRow(app.Name, label, point.label, fmtF(bestQPS),
					norm(bestQPS, cpuEcoQPS), qualStr(app, bestQual))
				return nil
			}
			if err := codesignRow("GPU+codesign", aes, cands); err != nil {
				return nil, err
			}
			if err := codesignRow("GPU+codesign+chacha", chacha, chaCands); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

func norm(qps, base float64) string {
	if base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", qps/base)
}

func qualStr(app *App, q float64) string {
	return fmt.Sprintf("%s=%.4g", app.QualityLabel, app.Display(q))
}

// Fig12 regenerates the end-to-end latency breakdown: Gen, PIR, network
// (4G) and on-device DNN per application at its Acc-eco co-design point.
func Fig12() (*Table, error) {
	apps, err := Apps()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig12",
		Title:   "End-to-end latency breakdown per inference (4G network)",
		Columns: []string{"app", "Gen (client)", "PIR (server)", "network", "DNN (client)", "total"},
		Notes:   "paper keeps end-to-end latency within ≈500ms; PIR is no longer the sole bottleneck",
	}
	link := netsim.FourG()
	i3 := gpu.IntelCorei3()
	aes := dpf.NewAESPRG()
	for _, app := range apps {
		budget := codesign.Budgets{CommBytes: app.CommBudget, Latency: time.Duration(app.LatencyBudget) * time.Millisecond}
		cands, err := searchApp(app, appSpace(), budget, "std")
		if err != nil {
			return nil, err
		}
		best, ok := codesign.BestMeetingQuality(cands, app.EcoTarget())
		if !ok {
			best = cands[0]
		}
		l := best.Layout
		cost := best.Cost

		genCycles := float64(l.EffectiveQFull()) * gpu.GenProfile(aes.CPUCyclesPerBlock(), l.FullCfg.BinBits(), 1)
		if l.Params.HotRows > 0 {
			genCycles += float64(l.EffectiveQHot()) * gpu.GenProfile(aes.CPUCyclesPerBlock(), l.HotCfg.BinBits(), 1)
		}
		gen := i3.CPUTime(genCycles, 1)
		pir := time.Duration(float64(best.Latency) / float64(best.Batch))
		network := link.RoundTrip(cost.UpBytes/2, cost.DownBytes/2)
		dnn := i3.DenseInferTime(app.ModelFLOPs)
		total := gen + pir + network + dnn
		t.AddRow(app.Name,
			gen.Round(time.Microsecond).String(),
			pir.Round(10*time.Microsecond).String(),
			network.Round(time.Millisecond).String(),
			dnn.Round(time.Microsecond).String(),
			total.Round(time.Millisecond).String())
	}
	return t, nil
}
