// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each runner returns a Table of the same rows/series the
// paper reports; cmd/benchall renders them all and EXPERIMENTS.md records
// paper-vs-measured. GPU-side numbers come from the calibrated device model
// (see internal/gpu and DESIGN.md's substitution table); protocol-side
// numbers (drops, bytes, model quality) are real measurements of the real
// implementation on synthetic data.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated artifact.
type Table struct {
	// ID is the paper artifact id ("fig6", "tab4", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Columns and Rows are the rendered data.
	Columns []string
	Rows    [][]string
	// Notes carries methodology caveats.
	Notes string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// fmtF renders a float compactly.
func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// fmtBytes renders a byte count with units.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
