//go:build amd64 && !purego

package strategy

// AVX2 answer kernel for the query-tiled matmul. accumulateRowsAVX2 runs
// the leaf·row lane-wise mod-2^32 multiply-accumulate 8 lanes per
// VPMULLD/VPADDD, keeping one query's answer accumulators in YMM registers
// across a whole row block. Gating mirrors aesni_amd64.go: the build tags
// select the asm implementation, a CPUID probe selects it at runtime, and
// the scalar loop stays as both the fallback and the test reference.

// accumulateRowsAVX2 adds leaves[j]·rows[j·lanes : j·lanes+simdLanes] into
// dst[:simdLanes] for j in [0, n), mod 2^32. simdLanes must be a non-zero
// multiple of 8 and ≤ lanes; lanes beyond simdLanes are the caller's
// scalar tail. All loads and stores are unaligned-tolerant, so pooled
// scratch and table backing need no special alignment. Implemented in
// simd_amd64.s.
//
//go:noescape
func accumulateRowsAVX2(dst, leaves, rows *uint32, lanes, simdLanes, n int)

// hasAVX2 reports AVX2 with OS-enabled YMM state: CPUID.1:ECX.OSXSAVE and
// .AVX, XCR0's XMM+YMM bits, and CPUID.(7,0):EBX.AVX2. Implemented in
// simd_amd64.s.
func hasAVX2() bool

// avx2OK gates the SIMD accumulate path; accumulateTileScalar is the
// fallback (and the reference the property tests compare against).
var avx2OK = hasAVX2()
