// Package strategy implements the paper's DPF execution strategies
// (§3.2): branch-parallel, level-by-level, memory-bounded tree traversal
// with and without operator fusion, cooperative-groups scheduling for very
// large tables, and the CPU baseline.
//
// Every strategy does two things:
//
//   - Run really evaluates a batch of DPF keys against a table on the host
//     (bounded parallelism via internal/gpu.ParallelFor), producing correct
//     secret shares while counting PRF blocks, modeled device-memory
//     allocations and global-memory traffic into a gpu.Counters.
//   - Model produces the same counts analytically and converts them into
//     modeled device latency/throughput/utilization via the gpu cost model.
//
// Tests pin Run's counted totals to Model's analytic totals, so the
// experiment harness can use Model at paper scale (tables of 2^24+ entries)
// without hours of host compute, while correctness and the count formulas
// are validated by real execution at smaller scale.
package strategy

import (
	"fmt"

	"gpudpf/internal/dpf"
)

// Table is an embedding table held by one PIR server: NumRows rows of
// Lanes 32-bit lanes each (entry bytes = 4·Lanes). The DPF domain is the
// next power of two ≥ NumRows; leaves beyond NumRows contribute nothing.
//
// Ownership convention: a Table handed to the serving stack is a SNAPSHOT
// payload. internal/store adopts it as one immutable epoch — the
// strategies stream Data with no locks because nothing ever mutates a
// served table in place; updates build a new Table (a new epoch) instead.
// Code that builds tables (loaders, tests) may fill Data freely BEFORE
// handing the table over; afterwards all writes go through the store.
type Table struct {
	// NumRows is the number of embedding entries.
	NumRows int
	// Lanes is the entry width in uint32 lanes.
	Lanes int
	// Data is the row-major table content, len NumRows·Lanes.
	Data []uint32
}

// NewTable allocates a zeroed table.
func NewTable(rows, lanes int) (*Table, error) {
	if rows <= 0 || lanes <= 0 {
		return nil, fmt.Errorf("strategy: invalid table shape %dx%d", rows, lanes)
	}
	return &Table{NumRows: rows, Lanes: lanes, Data: make([]uint32, rows*lanes)}, nil
}

// Row returns row i as a slice into the table.
func (t *Table) Row(i int) []uint32 { return t.Data[i*t.Lanes : (i+1)*t.Lanes] }

// Clone returns a deep copy of the table — a fresh mutable buffer for
// callers that need to derive a new snapshot payload from a served one.
func (t *Table) Clone() *Table {
	data := make([]uint32, len(t.Data))
	copy(data, t.Data)
	return &Table{NumRows: t.NumRows, Lanes: t.Lanes, Data: data}
}

// Bits returns the DPF tree depth for this table: ceil(log2(NumRows)),
// minimum 1.
func (t *Table) Bits() int { return dpf.DomainBits(t.NumRows) }

// SizeBytes is the table's memory footprint.
func (t *Table) SizeBytes() int64 { return int64(t.NumRows) * int64(t.Lanes) * 4 }

// EntryBytes is one row's size in bytes.
func (t *Table) EntryBytes() int { return t.Lanes * 4 }
