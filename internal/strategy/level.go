package strategy

import (
	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// LevelByLevel expands the tree breadth-first, materializing every level in
// global memory (Figure 5b). Work is the optimal O(L), but the working set
// is O(B·L): the ping-pong level buffers plus the expanded one-hot share
// vector that the separate matrix-multiplication kernel consumes. The
// memory footprint is what caps its batch size (Figure 6, Figure 13).
type LevelByLevel struct{}

// Name implements Strategy.
func (LevelByLevel) Name() string { return "level-by-level" }

// levelMemBytes models the per-batch device working set: for each in-flight
// query, the two ping-pong level buffers (L + L/2 nodes at the widest
// moment) plus the L·4-byte expanded leaf vector handed to the matmul.
func levelMemBytes(batch, bits, lanes int) int64 {
	domain := int64(1) << uint(bits)
	perQuery := domain*nodeBytes + domain/2*nodeBytes + domain*4
	return int64(batch)*perQuery + int64(batch)*int64(lanes)*4
}

// levelTrafficBytes models global-memory traffic: every level is written
// once and read once as the parent of the next, and the leaf vector makes a
// write+read round trip into the matmul kernel.
func levelTrafficBytes(batch, bits int) (reads, writes int64) {
	domain := int64(1) << uint(bits)
	nodeW := (2*domain - 2) * nodeBytes
	nodeR := (domain - 2) * nodeBytes
	leaf := domain * 4
	return int64(batch) * (nodeR + leaf), int64(batch) * (nodeW + leaf)
}

// Run implements Strategy.
func (l LevelByLevel) Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab); err != nil {
		return nil, err
	}
	return l.run(prg, keys, tab, 0, tab.NumRows, true, ctr)
}

// RunRange implements Strategy. Breadth-first expansion materializes every
// level whole, so the range cannot prune PRF work — it only restricts the
// matmul pass. Sharding this strategy buys dot-product parallelism, not
// expansion savings.
func (l LevelByLevel) RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab); err != nil {
		return nil, err
	}
	if err := validateRange(tab, lo, hi); err != nil {
		return nil, err
	}
	return l.run(prg, keys, tab, lo, hi, fullRange(tab, lo, hi), ctr)
}

func (LevelByLevel) run(prg dpf.PRG, keys []*dpf.Key, tab *Table, rlo, rhi int, full bool, ctr *gpu.Counters) ([][]uint32, error) {
	bits := tab.Bits()
	mem := levelMemBytes(len(keys), bits, tab.Lanes)
	ctr.Alloc(mem)
	defer ctr.Free(mem)
	ctr.AddLaunch() // expansion kernel
	ctr.AddLaunch() // matmul kernel

	answers := make([][]uint32, len(keys))
	gpu.ParallelFor(len(keys), func(q int) {
		k := keys[q]
		domain := 1 << uint(bits)
		seeds := make([]dpf.Seed, 1, domain)
		ts := make([]uint8, 1, domain)
		seeds[0], ts[0] = k.Root, k.Party
		next := make([]dpf.Seed, 0, domain)
		nextT := make([]uint8, 0, domain)
		var blocks int64
		for level := 0; level < bits; level++ {
			cw := k.CWs[level]
			next = next[:0]
			nextT = nextT[:0]
			for i := range seeds {
				ls, lt, rs, rt := dpf.StepBoth(prg, seeds[i], ts[i], cw)
				next = append(next, ls, rs)
				nextT = append(nextT, lt, rt)
			}
			blocks += int64(len(seeds)) * dpf.BlocksPerExpand
			seeds, next = next, seeds
			ts, nextT = nextT, ts
		}
		ctr.AddPRFBlocks(blocks)
		// Separate matmul pass over the range's slice of the leaf vector.
		ans := make([]uint32, tab.Lanes)
		for j := rlo; j < rhi; j++ {
			leaf := dpf.LeafValueScalar(k, seeds[j], ts[j])
			accumulateRow(ans, leaf, tab.Row(j))
		}
		answers[q] = ans
	})
	r, w := levelTrafficBytes(len(keys), bits)
	if full {
		ctr.AddRead(r + tableReadBytes(len(keys), bits, tab.Lanes))
	} else {
		ctr.AddRead(r + rangeReadBytes(len(keys), tab.Lanes, rhi-rlo))
	}
	ctr.AddWrite(w)
	return answers, nil
}

// Model implements Strategy.
func (LevelByLevel) Model(dev *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error) {
	domain := int64(1) << uint(bits)
	r, w := levelTrafficBytes(batch, bits)
	st := gpu.Stats{
		PRFBlocks:    int64(batch) * (2*domain - 2),
		ReadBytes:    r + tableReadBytes(batch, bits, lanes),
		WriteBytes:   w,
		Launches:     2,
		PeakMemBytes: levelMemBytes(batch, bits, lanes),
	}
	p := gpu.KernelProfile{
		Stats:             st,
		PRGCyclesPerBlock: prg.GPUCyclesPerBlock(),
		// The bottom half of the tree carries most of the work, so the
		// exposed parallelism is effectively batch × L/2.
		Parallelism: int64(batch) * domain / 2,
		ArithCycles: dotArithCycles(batch, bits, lanes),
	}
	return finishReport(dev, LevelByLevel{}.Name(), prg, bits, batch, lanes, p)
}
