package strategy

import (
	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// LevelByLevel expands the tree breadth-first, materializing every level in
// global memory (Figure 5b). Work is the optimal O(L), but the working set
// is O(B·L): the ping-pong level buffers plus the expanded one-hot share
// vector that the separate matrix-multiplication kernel consumes. The
// memory footprint is what caps its batch size (Figure 6, Figure 13).
//
// The host execution advances each level with one dpf.StepBothBatch (one
// PRF batch call per level) through pooled ping-pong buffers, and the
// separate matmul pass is query-tiled: one streaming pass over the row
// range per tile of tileQueries queries.
type LevelByLevel struct {
	// Workers bounds the matmul pass's row-block fan-out (the expansion is
	// already query-parallel). 0 or 1 = sequential. Set via WithWorkers.
	Workers int
}

// Name implements Strategy.
func (LevelByLevel) Name() string { return "level-by-level" }

// withWorkers implements workerTunable.
func (l LevelByLevel) withWorkers(n int) Strategy {
	l.Workers = n
	return l
}

// levelMemBytes models the per-batch device working set: for each in-flight
// query, the two ping-pong level buffers (G + G/2 nodes at the widest
// moment, where G = L >> early is the terminal frontier) plus the
// L·4-byte expanded leaf vector handed to the matmul.
func levelMemBytes(batch, bits, lanes, early int) int64 {
	domain := int64(1) << uint(bits)
	frontier := domain >> uint(early)
	perQuery := frontier*nodeBytes + frontier/2*nodeBytes + domain*4
	return int64(batch)*perQuery + int64(batch)*int64(lanes)*4
}

// levelTrafficBytes models global-memory traffic: every level is written
// once and read once as the parent of the next (the tree now stops early
// levels up), and the leaf vector makes a write+read round trip into the
// matmul kernel.
func levelTrafficBytes(batch, bits, early int) (reads, writes int64) {
	domain := int64(1) << uint(bits)
	frontier := domain >> uint(early)
	nodeW := (2*frontier - 2) * nodeBytes
	nodeR := (frontier - 2) * nodeBytes
	leaf := domain * 4
	return int64(batch) * (nodeR + leaf), int64(batch) * (nodeW + leaf)
}

// Run implements Strategy.
func (l LevelByLevel) Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab.Bits()); err != nil {
		return nil, err
	}
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := l.runInto(prg, keys, tab.View(), 0, tab.NumRows, true, ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRange implements Strategy. Breadth-first expansion materializes every
// level whole, so the range cannot prune PRF work — it only restricts the
// matmul pass. Sharding this strategy buys dot-product parallelism, not
// expansion savings.
func (l LevelByLevel) RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error) {
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := l.RunRangeInto(prg, keys, tab.View(), lo, hi, ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRangeInto implements Strategy.
func (l LevelByLevel) RunRangeInto(prg dpf.PRG, keys []*dpf.Key, v TableView, lo, hi int, ctr *gpu.Counters, dst [][]uint32) error {
	if err := validateKeys(keys, dpf.DomainBits(v.Rows())); err != nil {
		return err
	}
	if err := validateRange(v.Rows(), lo, hi); err != nil {
		return err
	}
	if err := validateDst(keys, v.Lanes(), dst); err != nil {
		return err
	}
	return l.runInto(prg, keys, v, lo, hi, fullRange(v.Rows(), lo, hi), ctr, dst)
}

func (l LevelByLevel) runInto(prg dpf.PRG, keys []*dpf.Key, v TableView, rlo, rhi int, full bool, ctr *gpu.Counters, dst [][]uint32) error {
	bits := dpf.DomainBits(v.Rows())
	lanes := v.Lanes()
	early := keys[0].Early
	mem := levelMemBytes(len(keys), bits, lanes, early)
	ctr.Alloc(mem)
	defer ctr.Free(mem)
	ctr.AddLaunch() // expansion kernel
	ctr.AddLaunch() // matmul kernel

	rows := rhi - rlo
	for t := 0; t < len(keys); t += tileQueries {
		te := tileEnd(t, len(keys))
		tile := keys[t:te]
		lt := getLeafTile(len(tile), rows)
		gpu.ParallelFor(len(tile), func(i int) {
			expandLevelByLevel(prg, tile[i], rlo, rhi, lt.rows[i], ctr)
		})
		// Query-tiled matmul pass over the range's slice of the leaf
		// vectors, row-block-parallel when a worker budget is configured.
		if err := accumulateTilePar(v, rlo, rhi, lt.rows, dst[t:te], l.Workers); err != nil {
			lt.release()
			return err
		}
		lt.release()
	}
	r, w := levelTrafficBytes(len(keys), bits, early)
	if full {
		ctr.AddRead(r + tableReadBytes(len(keys), bits, lanes))
	} else {
		ctr.AddRead(r + rangeReadBytes(len(keys), lanes, rows))
	}
	ctr.AddWrite(w)
	return nil
}

// expandLevelByLevel materializes every level of one key's tree through
// pooled ping-pong buffers (one batched PRF call per level) and converts
// leaves [rlo, rhi) into leaf shares — the terminal frontier is Domain()
// >> Early nodes, each group-converted into 2^Early shares.
func expandLevelByLevel(prg dpf.PRG, k *dpf.Key, rlo, rhi int, leaf []uint32, ctr *gpu.Counters) {
	sc := getWalkScratch()
	seeds, ts := sc.frontier.ExpandFrontier(prg, k)
	ctr.AddPRFBlocks(treeBlocks(k.Bits, k.Early))
	dpf.LeafRangeInto(k, seeds, ts, uint64(rlo), uint64(rhi), leaf)
	sc.release()
}

// Model implements Strategy.
func (LevelByLevel) Model(dev *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error) {
	domain := int64(1) << uint(bits)
	early := modelEarly(bits)
	r, w := levelTrafficBytes(batch, bits, early)
	st := gpu.Stats{
		PRFBlocks:    int64(batch) * treeBlocks(bits, early),
		ReadBytes:    r + tableReadBytes(batch, bits, lanes),
		WriteBytes:   w,
		Launches:     2,
		PeakMemBytes: levelMemBytes(batch, bits, lanes, early),
	}
	p := gpu.KernelProfile{
		Stats:             st,
		PRGCyclesPerBlock: prgCyclesPerBlock(prg.GPUCyclesPerBlock(), early),
		// The bottom half of the tree carries most of the work, so the
		// exposed parallelism is effectively batch × frontier/2.
		Parallelism: int64(batch) * (domain >> uint(early)) / 2,
		ArithCycles: dotArithCycles(batch, bits, lanes),
	}
	return finishReport(dev, LevelByLevel{}.Name(), prg, bits, batch, lanes, p)
}
