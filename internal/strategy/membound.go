package strategy

import (
	"fmt"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// DefaultK is the frontier width the paper settles on for the V100
// (§3.2.3): wide enough to expose parallelism, narrow enough to keep the
// working set on-chip.
const DefaultK = 128

// MemBoundTree is the paper's memory-bounded tree traversal (§3.2.3): a
// depth-first descent that keeps at most K nodes per level alive, giving
// optimal O(L) work with an O(B·K·log L) working set instead of
// level-by-level's O(B·L). With Fused set, the leaf dot product against the
// table is fused into the traversal (§3.2.4), eliminating the expanded
// one-hot vector's global-memory round trip entirely.
type MemBoundTree struct {
	// K is the frontier width; 0 means DefaultK.
	K int
	// Fused enables DPF×matmul operator fusion.
	Fused bool
}

// Name implements Strategy.
func (m MemBoundTree) Name() string {
	if m.Fused {
		return "membound-fused"
	}
	return "membound-unfused"
}

func (m MemBoundTree) k() int {
	if m.K <= 0 {
		return DefaultK
	}
	return m.K
}

// memBoundLevels is the number of recursion frames holding a K-wide buffer.
func memBoundLevels(bits, k int) int {
	lg := 0
	for 1<<uint(lg+1) <= k {
		lg++
	}
	levels := bits - lg + 1
	if levels < 1 {
		levels = 1
	}
	return levels
}

// memBytes models the modeled device working set of the batch.
func (m MemBoundTree) memBytes(batch, bits, lanes int) int64 {
	k := int64(m.k())
	levels := int64(memBoundLevels(bits, m.k()))
	perQuery := levels*2*k*nodeBytes + int64(lanes)*4
	if !m.Fused {
		perQuery += (int64(1) << uint(bits)) * 4 // expanded leaf vector
	}
	return int64(batch) * perQuery
}

type mbNode struct {
	s dpf.Seed
	t uint8
}

// Run implements Strategy.
func (m MemBoundTree) Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab); err != nil {
		return nil, err
	}
	// The full run walks the whole domain (leaves beyond NumRows carry
	// zero rows), keeping the calibrated counter totals.
	return m.run(prg, keys, tab, 0, uint64(1)<<uint(tab.Bits()), true, ctr)
}

// RunRange implements Strategy: the descent prunes every K-wide node group
// whose leaf span misses [lo, hi), so a 1/N range costs ~1/N of the PRF
// work plus one root-to-range path.
func (m MemBoundTree) RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab); err != nil {
		return nil, err
	}
	if err := validateRange(tab, lo, hi); err != nil {
		return nil, err
	}
	return m.run(prg, keys, tab, uint64(lo), uint64(hi), fullRange(tab, lo, hi), ctr)
}

// run evaluates leaves [lo, hi) in domain coordinates. full selects the
// calibrated whole-table accounting; partial ranges are costed
// proportionally.
func (m MemBoundTree) run(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi uint64, full bool, ctr *gpu.Counters) ([][]uint32, error) {
	k := m.k()
	if k&(k-1) != 0 {
		return nil, fmt.Errorf("strategy: K=%d must be a power of two", k)
	}
	bits := tab.Bits()
	if full {
		hi = uint64(1) << uint(bits)
	}
	var mem int64
	if full {
		mem = m.memBytes(len(keys), bits, tab.Lanes)
	} else {
		perQuery := int64(memBoundLevels(bits, k))*2*int64(k)*nodeBytes + int64(tab.Lanes)*4
		if !m.Fused {
			perQuery += int64(hi-lo) * 4
		}
		mem = int64(len(keys)) * perQuery
	}
	ctr.Alloc(mem)
	defer ctr.Free(mem)
	ctr.AddLaunch()
	if !m.Fused {
		ctr.AddLaunch() // separate matmul kernel
	}

	answers := make([][]uint32, len(keys))
	gpu.ParallelFor(len(keys), func(q int) {
		key := keys[q]
		ans := make([]uint32, tab.Lanes)
		var leafVec []uint32
		if !m.Fused {
			leafVec = make([]uint32, hi-lo)
		}
		var blocks int64
		var walk func(nodes []mbNode, depth int, base uint64)
		walk = func(nodes []mbNode, depth int, base uint64) {
			span := uint64(1) << uint(bits-depth)
			if base >= hi || base+span*uint64(len(nodes)) <= lo {
				return // whole group outside the range
			}
			if depth == bits {
				for i, nd := range nodes {
					j := base + uint64(i)
					if j < lo || j >= hi {
						continue
					}
					leaf := dpf.LeafValueScalar(key, nd.s, nd.t)
					if m.Fused {
						if j < uint64(tab.NumRows) {
							accumulateRow(ans, leaf, tab.Row(int(j)))
						}
					} else {
						leafVec[j-lo] = leaf
					}
				}
				return
			}
			cw := key.CWs[depth]
			children := make([]mbNode, 0, 2*len(nodes))
			for _, nd := range nodes {
				ls, lt, rs, rt := dpf.StepBoth(prg, nd.s, nd.t, cw)
				children = append(children, mbNode{ls, lt}, mbNode{rs, rt})
			}
			blocks += int64(len(nodes)) * dpf.BlocksPerExpand
			if len(children) <= k {
				walk(children, depth+1, base)
				return
			}
			half := len(children) / 2
			childSpan := span / 2
			walk(children[:half], depth+1, base)
			walk(children[half:], depth+1, base+uint64(half)*childSpan)
		}
		walk([]mbNode{{key.Root, key.Party}}, 0, 0)
		if !m.Fused {
			for j := lo; j < hi && j < uint64(tab.NumRows); j++ {
				accumulateRow(ans, leafVec[j-lo], tab.Row(int(j)))
			}
		}
		ctr.AddPRFBlocks(blocks)
		answers[q] = ans
	})
	var reads, writes int64
	if full {
		reads = tableReadBytes(len(keys), bits, tab.Lanes)
	} else {
		reads = rangeReadBytes(len(keys), tab.Lanes, int(hi-lo))
	}
	writes = int64(len(keys)) * int64(tab.Lanes) * 4
	if !m.Fused {
		leafBytes := int64(len(keys)) * int64(hi-lo) * 4
		reads += leafBytes
		writes += leafBytes
	}
	ctr.AddRead(reads)
	ctr.AddWrite(writes)
	return answers, nil
}

// Model implements Strategy.
func (m MemBoundTree) Model(dev *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error) {
	domain := int64(1) << uint(bits)
	reads := tableReadBytes(batch, bits, lanes)
	writes := int64(batch) * int64(lanes) * 4
	launches := int64(1)
	if !m.Fused {
		leafBytes := int64(batch) * domain * 4
		reads += leafBytes
		writes += leafBytes
		launches++
	}
	st := gpu.Stats{
		PRFBlocks:    int64(batch) * (2*domain - 2),
		ReadBytes:    reads,
		WriteBytes:   writes,
		Launches:     launches,
		PeakMemBytes: m.memBytes(batch, bits, lanes),
	}
	p := gpu.KernelProfile{
		Stats:             st,
		PRGCyclesPerBlock: prg.GPUCyclesPerBlock(),
		Parallelism:       int64(batch) * int64(m.k()),
		ArithCycles:       dotArithCycles(batch, bits, lanes),
	}
	r, err := finishReport(dev, m.Name(), prg, bits, batch, lanes, p)
	if err != nil {
		return r, err
	}
	if !m.Fused {
		// An unfused pipeline cannot overlap the expansion kernel's compute
		// with the matmul kernel's memory traffic; serialize the phases
		// (this is what Figure 14 measures).
		memSec := float64(st.ReadBytes+st.WriteBytes) / dev.MemBandwidthBps
		r.Latency += timeFromSeconds(memSec)
		if r.Latency > 0 {
			r.Throughput = float64(batch) / r.Latency.Seconds()
		}
	}
	return r, nil
}
