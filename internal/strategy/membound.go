package strategy

import (
	"fmt"
	"runtime"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// DefaultK is the frontier width the paper settles on for the V100
// (§3.2.3): wide enough to expose parallelism, narrow enough to keep the
// working set on-chip.
const DefaultK = 128

// MemBoundTree is the paper's memory-bounded tree traversal (§3.2.3): a
// depth-first descent that keeps at most K nodes per level alive, giving
// optimal O(L) work with an O(B·K·log L) working set instead of
// level-by-level's O(B·L). With Fused set, the leaf dot product against the
// table is fused into the traversal (§3.2.4), eliminating the expanded
// one-hot vector's global-memory round trip entirely.
//
// Execution is tiled and batched: queries are processed in tiles of
// tileQueries, each query's K-wide frontier advances one dpf.StepBothBatch
// (one PRF batch call) per group-level, and a single streaming pass over
// the row range then serves the whole tile's dot products
// (accumulateTile). All traversal state comes from pooled scratch, so the
// steady-state hot path allocates nothing beyond the returned answers.
type MemBoundTree struct {
	// K is the frontier width; 0 means DefaultK.
	K int
	// Fused enables DPF×matmul operator fusion.
	Fused bool
	// Workers bounds the table-stream fan-out: each tile's accumulate pass
	// splits into row blocks across up to Workers goroutines, and with
	// multiple tiles in flight the next tile's leaf expansion overlaps the
	// current tile's table stream. 0 or 1 runs the sequential pipeline.
	// Set via WithWorkers; answers are bit-identical either way.
	Workers int
}

// withWorkers implements workerTunable.
func (m MemBoundTree) withWorkers(n int) Strategy {
	m.Workers = n
	return m
}

// Name implements Strategy.
func (m MemBoundTree) Name() string {
	if m.Fused {
		return "membound-fused"
	}
	return "membound-unfused"
}

func (m MemBoundTree) k() int {
	if m.K <= 0 {
		return DefaultK
	}
	return m.K
}

// memBoundLevels is the number of recursion frames holding a K-wide
// buffer; the walk is depth levels deep (tree depth minus the
// early-termination cut).
func memBoundLevels(depth, k int) int {
	lg := 0
	for 1<<uint(lg+1) <= k {
		lg++
	}
	levels := depth - lg + 1
	if levels < 1 {
		levels = 1
	}
	return levels
}

// memBytes models the modeled device working set of the batch; early is
// the keys' termination depth (terminal nodes cover 2^early leaves, so the
// walk is that many levels shorter).
func (m MemBoundTree) memBytes(batch, bits, lanes, early int) int64 {
	k := int64(m.k())
	levels := int64(memBoundLevels(bits-early, m.k()))
	perQuery := levels*2*k*nodeBytes + int64(lanes)*4
	if !m.Fused {
		perQuery += (int64(1) << uint(bits)) * 4 // expanded leaf vector
	}
	return int64(batch) * perQuery
}

// Run implements Strategy.
func (m MemBoundTree) Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab.Bits()); err != nil {
		return nil, err
	}
	// The full run walks the whole domain (leaves beyond NumRows carry
	// zero rows), keeping the calibrated counter totals.
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := m.runInto(prg, keys, tab.View(), 0, uint64(1)<<uint(tab.Bits()), true, ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRange implements Strategy: the descent prunes every K-wide node group
// whose leaf span misses [lo, hi), so a 1/N range costs ~1/N of the PRF
// work plus one root-to-range path.
func (m MemBoundTree) RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error) {
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := m.RunRangeInto(prg, keys, tab.View(), lo, hi, ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRangeInto implements Strategy.
func (m MemBoundTree) RunRangeInto(prg dpf.PRG, keys []*dpf.Key, v TableView, lo, hi int, ctr *gpu.Counters, dst [][]uint32) error {
	if err := validateKeys(keys, dpf.DomainBits(v.Rows())); err != nil {
		return err
	}
	if err := validateRange(v.Rows(), lo, hi); err != nil {
		return err
	}
	if err := validateDst(keys, v.Lanes(), dst); err != nil {
		return err
	}
	return m.runInto(prg, keys, v, uint64(lo), uint64(hi), fullRange(v.Rows(), lo, hi), ctr, dst)
}

// runInto evaluates leaves [lo, hi) in domain coordinates, accumulating
// into dst. full selects the calibrated whole-table accounting; partial
// ranges are costed proportionally.
func (m MemBoundTree) runInto(prg dpf.PRG, keys []*dpf.Key, v TableView, lo, hi uint64, full bool, ctr *gpu.Counters, dst [][]uint32) error {
	k := m.k()
	if k&(k-1) != 0 {
		return fmt.Errorf("strategy: K=%d must be a power of two", k)
	}
	bits := dpf.DomainBits(v.Rows())
	lanes := v.Lanes()
	early := keys[0].Early
	if full {
		hi = uint64(1) << uint(bits)
	}
	var mem int64
	if full {
		mem = m.memBytes(len(keys), bits, lanes, early)
	} else {
		perQuery := int64(memBoundLevels(bits-early, k))*2*int64(k)*nodeBytes + int64(lanes)*4
		if !m.Fused {
			perQuery += int64(hi-lo) * 4
		}
		mem = int64(len(keys)) * perQuery
	}
	ctr.Alloc(mem)
	defer ctr.Free(mem)
	ctr.AddLaunch()
	if !m.Fused {
		ctr.AddLaunch() // separate matmul kernel
	}

	rows := int(hi - lo)
	rowHi := int(hi)
	if rowHi > v.Rows() {
		rowHi = v.Rows()
	}
	if workers := parWorkers(m.Workers); workers > 1 && len(keys) > tileQueries {
		// Multi-tile batch with a worker budget: the pipelined loop below
		// overlaps tile N+1's expansion with tile N's table stream and fans
		// each stream across the budget.
		if err := m.runTilesPipelined(prg, keys, v, lo, hi, rows, rowHi, bits, k, workers, ctr, dst); err != nil {
			return err
		}
	} else {
		// Never-reassigned copies for the parallel branch's closure: capturing
		// a reassigned variable (hi, k) would force it to the heap on every
		// call, including the allocation-free sequential path.
		cBits, cK, cLo, cHi := bits, k, lo, hi
		for t := 0; t < len(keys); t += tileQueries {
			te := tileEnd(t, len(keys))
			tile := keys[t:te]
			lt := getLeafTile(len(tile), rows)
			// Expansion: each query's K-bounded group walk emits its leaf
			// shares for [lo, hi) into the tile's leaf matrix. The one-query
			// and single-core cases run inline — no goroutines, no closure —
			// so the engine's sequential steady state stays allocation-free.
			if len(tile) == 1 || runtime.GOMAXPROCS(0) == 1 {
				for i := range tile {
					m.expandQuery(prg, tile[i], bits, k, lo, hi, lt.rows[i], ctr)
				}
			} else {
				rows := lt.rows
				gpu.ParallelFor(len(tile), func(i int) {
					m.expandQuery(prg, tile[i], cBits, cK, cLo, cHi, rows[i], ctr)
				})
			}
			// Accumulate: ONE streaming pass over the tile's row range serves
			// all its queries (the §3.1 batched matmul, executed). The row
			// blocks fan across the worker budget when one was configured
			// (accumulateTilePar falls back to the sequential pass at 1).
			if int(lo) < rowHi {
				if err := accumulateTilePar(v, int(lo), rowHi, lt.rows, dst[t:te], m.Workers); err != nil {
					lt.release()
					return err
				}
			}
			lt.release()
		}
	}

	var reads, writes int64
	if full {
		reads = tableReadBytes(len(keys), bits, lanes)
	} else {
		reads = rangeReadBytes(len(keys), lanes, rows)
	}
	writes = int64(len(keys)) * int64(lanes) * 4
	if !m.Fused {
		leafBytes := int64(len(keys)) * int64(rows) * 4
		reads += leafBytes
		writes += leafBytes
	}
	ctr.AddRead(reads)
	ctr.AddWrite(writes)
	return nil
}

// runTilesPipelined is the multi-tile loop with the two phases overlapped:
// leaf expansion is AES compute-bound and the table stream is memory-
// bandwidth-bound, so running tile N+1's expansion (in a goroutine, into a
// second pooled leaf tile) while tile N streams the table stops the phases
// serializing. At most one expansion is in flight — double buffering, not
// a queue — so the leaf-scratch footprint is bounded at two tiles. Answers
// are bit-identical to the sequential loop: each tile still accumulates
// into its own dst slice, in tile order.
func (m MemBoundTree) runTilesPipelined(prg dpf.PRG, keys []*dpf.Key, v TableView, lo, hi uint64, rows, rowHi, bits, k, workers int, ctr *gpu.Counters, dst [][]uint32) error {
	expand := func(tile []*dpf.Key, lt *leafTile) {
		if len(tile) == 1 {
			m.expandQuery(prg, tile[0], bits, k, lo, hi, lt.rows[0], ctr)
			return
		}
		ltRows := lt.rows
		gpu.ParallelFor(len(tile), func(i int) {
			m.expandQuery(prg, tile[i], bits, k, lo, hi, ltRows[i], ctr)
		})
	}
	cur := getLeafTile(tileEnd(0, len(keys)), rows)
	expand(keys[:tileEnd(0, len(keys))], cur)
	for t := 0; t < len(keys); t += tileQueries {
		te := tileEnd(t, len(keys))
		var nxt *leafTile
		var ready chan struct{}
		if te < len(keys) {
			nte := tileEnd(te, len(keys))
			nxt = getLeafTile(nte-te, rows)
			ready = make(chan struct{})
			tile, lt := keys[te:nte], nxt
			go func() {
				expand(tile, lt)
				close(ready)
			}()
		}
		var err error
		if int(lo) < rowHi {
			err = accumulateTilePar(v, int(lo), rowHi, cur.rows, dst[t:te], workers)
		}
		if ready != nil {
			// The in-flight expansion writes nxt and ctr; join it before
			// touching either (or returning an error past it).
			<-ready
		}
		cur.release()
		cur = nxt
		if err != nil {
			if nxt != nil {
				nxt.release()
			}
			return err
		}
	}
	return nil
}

// expandQuery walks one key's memory-bounded descent over [lo, hi) with
// pooled scratch, writing leaf shares into leaf and counting PRF blocks.
// The walk is TreeDepth levels deep: early-terminated keys stop above the
// leaves and convert each terminal seed into its whole leaf group.
func (m MemBoundTree) expandQuery(prg dpf.PRG, key *dpf.Key, bits, k int, lo, hi uint64, leaf []uint32, ctr *gpu.Counters) {
	sc := getWalkScratch()
	depth := key.TreeDepth()
	sc.growLevels(depth, k)
	w := mbWalker{prg: prg, key: key, k: k, bits: bits, depth: depth, lo: lo, hi: hi, leaf: leaf, sc: sc}
	sc.levels[0][0] = key.Root
	sc.levelT[0][0] = key.Party
	w.walk(0, sc.levels[0][:1], sc.levelT[0][:1], 0)
	ctr.AddPRFBlocks(w.blocks)
	sc.release()
}

// mbWalker is one query's memory-bounded descent: groups of at most K
// nodes advance level by level through the scratch's per-depth buffers,
// one batched PRF call per group-level.
type mbWalker struct {
	prg    dpf.PRG
	key    *dpf.Key
	k      int
	bits   int
	depth  int // tree depth actually walked (bits - key.Early)
	lo, hi uint64
	leaf   []uint32 // leaf shares for [lo, hi), indexed j-lo
	sc     *walkScratch
	blocks int64
}

// walk expands the group (seeds, ts) rooted at level covering leaves
// [base, base+span·len(seeds)), pruning groups outside [lo, hi). At the
// terminal level each node converts into 2^Early leaf shares, clipped to
// the range.
func (w *mbWalker) walk(level int, seeds []dpf.Seed, ts []uint8, base uint64) {
	span := uint64(1) << uint(w.bits-level)
	if base >= w.hi || base+span*uint64(len(seeds)) <= w.lo {
		return // whole group outside the range
	}
	if level == w.depth {
		// seeds cover leaves [base, base+len·span); clip to [lo, hi) in
		// frontier-local leaf coordinates and group-convert.
		covered := span * uint64(len(seeds))
		lLo, lHi := uint64(0), covered
		if base < w.lo {
			lLo = w.lo - base
		}
		if base+covered > w.hi {
			lHi = w.hi - base
		}
		dpf.LeafRangeInto(w.key, seeds, ts, lLo, lHi, w.leaf[base+lLo-w.lo:base+lHi-w.lo])
		return
	}
	if level == w.depth-1 && w.key.Lanes == 1 {
		// Fused final step: when the group's children's leaves all lie
		// inside [lo, hi), the last expansion corrects and converts straight
		// into the leaf matrix (dpf.StepLeafBatch) — the terminal frontier,
		// the walk's widest level, never round-trips through the level
		// buffers. Clipped edge groups fall through to the generic step +
		// LeafRangeInto above.
		covered := span * uint64(len(seeds))
		if base >= w.lo && base+covered <= w.hi {
			dpf.StepLeafBatch(w.prg, w.key, seeds, ts, w.leaf[base-w.lo:base+covered-w.lo], &w.sc.batch)
			w.blocks += int64(len(seeds)) * dpf.BlocksPerExpand
			return
		}
	}
	n := len(seeds)
	next := w.sc.levels[level+1][:2*n]
	nextT := w.sc.levelT[level+1][:2*n]
	dpf.StepBothBatch(w.prg, seeds, ts, w.key.CWs[level], next, nextT, &w.sc.batch)
	w.blocks += int64(n) * dpf.BlocksPerExpand
	if 2*n <= w.k {
		w.walk(level+1, next, nextT, base)
		return
	}
	childSpan := span / 2
	w.walk(level+1, next[:n], nextT[:n], base)
	w.walk(level+1, next[n:], nextT[n:], base+uint64(n)*childSpan)
}

// Model implements Strategy. PRFBlocks prices the early-terminated tree
// (the default key format for this depth); the per-block cycle constant is
// re-anchored accordingly (see prgCyclesPerBlock).
func (m MemBoundTree) Model(dev *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error) {
	domain := int64(1) << uint(bits)
	early := modelEarly(bits)
	reads := tableReadBytes(batch, bits, lanes)
	writes := int64(batch) * int64(lanes) * 4
	launches := int64(1)
	if !m.Fused {
		leafBytes := int64(batch) * domain * 4
		reads += leafBytes
		writes += leafBytes
		launches++
	}
	st := gpu.Stats{
		PRFBlocks:    int64(batch) * treeBlocks(bits, early),
		ReadBytes:    reads,
		WriteBytes:   writes,
		Launches:     launches,
		PeakMemBytes: m.memBytes(batch, bits, lanes, early),
	}
	p := gpu.KernelProfile{
		Stats:             st,
		PRGCyclesPerBlock: prgCyclesPerBlock(prg.GPUCyclesPerBlock(), early),
		Parallelism:       int64(batch) * int64(m.k()),
		ArithCycles:       dotArithCycles(batch, bits, lanes),
	}
	r, err := finishReport(dev, m.Name(), prg, bits, batch, lanes, p)
	if err != nil {
		return r, err
	}
	if !m.Fused {
		// An unfused pipeline cannot overlap the expansion kernel's compute
		// with the matmul kernel's memory traffic; serialize the phases
		// (this is what Figure 14 measures).
		memSec := float64(st.ReadBytes+st.WriteBytes) / dev.MemBandwidthBps
		r.Latency += timeFromSeconds(memSec)
		if r.Latency > 0 {
			r.Throughput = float64(batch) / r.Latency.Seconds()
		}
	}
	return r, nil
}
