package strategy

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// errFragmented is fragView's RowRange refusal — it forces every consumer
// down the chunk-iterator path, like a delta-overlaid or paged snapshot.
var errFragmented = errors.New("fragView: not contiguous")

// fragView serves a Table through an arbitrarily fragmented TableView:
// chunk boundaries fall at the fixed cut rows, and the contiguous RowRange
// fast path is refused. It simulates the chunk geometry of the store's
// overlay and paged backings without importing the store (which would
// cycle), so the strategy package can pin chunked-vs-contiguous
// equivalence locally.
type fragView struct {
	t    *Table
	cuts []int // sorted interior cut rows, each in (0, NumRows)
}

func (f fragView) Rows() int  { return f.t.NumRows }
func (f fragView) Lanes() int { return f.t.Lanes }

func (f fragView) RowRange(lo, hi int) ([]uint32, error) { return nil, errFragmented }

func (f fragView) Chunks(lo, hi int, fn func(Chunk) error) error {
	if lo < 0 || hi > f.t.NumRows || lo > hi {
		return fmt.Errorf("fragView: bad range [%d,%d)", lo, hi)
	}
	cur := lo
	for _, c := range f.cuts {
		if c <= cur {
			continue
		}
		if c >= hi {
			break
		}
		if err := fn(Chunk{Row: cur, Data: f.t.Data[cur*f.t.Lanes : c*f.t.Lanes]}); err != nil {
			return err
		}
		cur = c
	}
	if cur < hi {
		return fn(Chunk{Row: cur, Data: f.t.Data[cur*f.t.Lanes : hi*f.t.Lanes]})
	}
	return nil
}

// randomCuts draws a sorted set of interior cut rows, dense enough to
// shatter the table into many small chunks (including single-row ones).
func randomCuts(rng *rand.Rand, rows, n int) []int {
	set := map[int]bool{}
	for len(set) < n {
		set[1+rng.Intn(rows-1)] = true
	}
	cuts := make([]int, 0, n)
	for c := range set {
		cuts = append(cuts, c)
	}
	sort.Ints(cuts)
	return cuts
}

// TestChunkedViewEquivalence pins the TableView redesign's core promise:
// for every strategy and PRF, RunRangeInto over a randomly fragmented view
// is bit-identical to the same call over the contiguous in-RAM view — for
// the full table and for sub-ranges whose endpoints fall inside chunks.
func TestChunkedViewEquivalence(t *testing.T) {
	const rows, lanes = 1500, 3
	rng := rand.New(rand.NewSource(808))
	for _, prgCase := range []struct {
		name string
		prg  dpf.PRG
	}{
		{"aes128", dpf.NewAESPRG()},
		{"chacha20", dpf.NewChaChaPRG()},
	} {
		t.Run(prgCase.name, func(t *testing.T) {
			prg := prgCase.prg
			tab := buildTable(t, rows, lanes, 99)
			var keys []*dpf.Key
			for _, idx := range []uint64{0, 7, 733, uint64(rows) - 1} {
				k0, _, err := dpf.Gen(prg, idx, tab.Bits(), []uint32{1}, rng)
				if err != nil {
					t.Fatal(err)
				}
				keys = append(keys, &k0)
			}
			ranges := [][2]int{{0, rows}, {0, 1}, {257, 1337}, {rows - 5, rows}}
			for _, s := range allStrategies() {
				for _, r := range ranges {
					lo, hi := r[0], r[1]
					var ctr gpu.Counters
					want := NewAnswers(len(keys), lanes)
					if err := s.RunRangeInto(prg, keys, tab.View(), lo, hi, &ctr, want); err != nil {
						t.Fatalf("%s contiguous [%d,%d): %v", s.Name(), lo, hi, err)
					}
					for trial := 0; trial < 3; trial++ {
						fv := fragView{t: tab, cuts: randomCuts(rng, rows, 64)}
						got := NewAnswers(len(keys), lanes)
						if err := s.RunRangeInto(prg, keys, fv, lo, hi, &ctr, got); err != nil {
							t.Fatalf("%s fragmented [%d,%d): %v", s.Name(), lo, hi, err)
						}
						for q := range want {
							for l := range want[q] {
								if got[q][l] != want[q][l] {
									t.Fatalf("%s/%s [%d,%d) q=%d lane=%d: fragmented %d != contiguous %d",
										s.Name(), prgCase.name, lo, hi, q, l, got[q][l], want[q][l])
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestTableFromView materializes a fragmented view and checks the copy is
// bit-identical, and that the contiguous adapter round-trips shape errors.
func TestTableFromView(t *testing.T) {
	const rows, lanes = 200, 5
	rng := rand.New(rand.NewSource(809))
	tab := buildTable(t, rows, lanes, 5)
	fv := fragView{t: tab, cuts: randomCuts(rng, rows, 31)}
	got, err := TableFromView(fv)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows != rows || got.Lanes != lanes {
		t.Fatalf("materialized shape %d×%d", got.NumRows, got.Lanes)
	}
	for i, v := range got.Data {
		if v != tab.Data[i] {
			t.Fatalf("word %d: %d != %d", i, v, tab.Data[i])
		}
	}
	if &got.Data[0] == &tab.Data[0] {
		t.Fatal("TableFromView aliased the source buffer")
	}
}

// TestViewRangeValidation: the chunk iterator rejects inverted and
// out-of-bounds ranges and accepts empty ones.
func TestViewRangeValidation(t *testing.T) {
	tab := buildTable(t, 16, 2, 3)
	v := tab.View()
	if err := v.Chunks(4, 3, func(Chunk) error { return nil }); err == nil {
		t.Error("inverted range accepted")
	}
	if err := v.Chunks(0, 17, func(Chunk) error { return nil }); err == nil {
		t.Error("out-of-bounds range accepted")
	}
	calls := 0
	if err := v.Chunks(5, 5, func(Chunk) error { calls++; return nil }); err != nil {
		t.Errorf("empty range refused: %v", err)
	}
	if calls != 0 {
		t.Errorf("empty range yielded %d chunks", calls)
	}
}
