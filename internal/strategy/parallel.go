package strategy

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file adds intra-tile table-stream parallelism to the tiled hot path.
// A tile's accumulate pass is a sum of independent row-range dot products:
// answers[q] = Σ_j leaves[q][j]·row[j] with every add mod 2^32, so any
// partition of [lo, hi) into row blocks, accumulated into per-worker
// partials and merged lane-wise, produces bit-identical answers regardless
// of block size, worker count, or merge order (addition mod 2^32 is
// commutative and associative). That linearity is the same one the
// replica-level shard merge and the multi-GPU partial-sum reduction already
// rely on — here it is applied one level down, inside a single shard's
// streaming pass, so one replica finally uses every memory channel the
// host has.

const (
	// parMinBlockRows is the smallest row block a worker is handed. Below
	// this the per-block dispatch overhead (atomic fetch, chunk-iterator
	// setup) rivals the accumulate work itself, and blocks stop spanning
	// whole backing pages on the paged path.
	parMinBlockRows = 2048
	// parBlocksPerWorker oversubscribes blocks to workers so the atomic
	// block dispenser can rebalance: on a paged view some blocks hit the
	// cache and some wait on the file, and a static split would leave the
	// lucky workers idle.
	parBlocksPerWorker = 4
)

// workerTunable is implemented by strategies whose table-stream pass can
// fan out across a bounded worker pool. withWorkers returns a copy (the
// strategies are value types) bound to the budget; the concrete type is
// preserved so callers' type assertions and Name() stay stable.
type workerTunable interface {
	withWorkers(n int) Strategy
}

// WithWorkers returns s bound to a table-stream worker budget of n: its
// RunRangeInto splits each tile's row range into blocks fanned across up
// to n workers (see accumulateTilePar). Strategies that already cooperate
// device-wide per query (CoopGroups, BranchParallel) and budgets of <= 1
// return s unchanged. Answers are bit-identical to the sequential pass for
// every n. engine.Replica uses this to hand surplus Workers budget down
// into the strategy layer when it has fewer shards than workers.
func WithWorkers(s Strategy, n int) Strategy {
	if n <= 1 {
		return s
	}
	if t, ok := s.(workerTunable); ok {
		return t.withWorkers(n)
	}
	return s
}

// parWorkers clamps a configured worker budget to what the runtime can
// actually run in parallel. The GOMAXPROCS gate keeps single-core hosts —
// and AllocsPerRun, which pins GOMAXPROCS to 1 — on the allocation-free
// sequential path, where goroutine fan-out could only add overhead.
func parWorkers(cfg int) int {
	w := cfg
	if w < 1 {
		w = 1
	}
	if p := runtime.GOMAXPROCS(0); w > p {
		w = p
	}
	return w
}

// accumulateTilePar is accumulateTile with the row range split into blocks
// fanned across up to `workers` goroutines. Each worker streams its blocks
// through the same AVX2/scalar accumulateChunk dispatch into a pooled
// per-worker tile×lanes partial, and the partials merge lane-wise mod 2^32
// into answers — bit-identical to the sequential pass by linearity (see
// the file comment). Ranges too narrow to split, and effective worker
// counts of 1, take the sequential path unchanged.
func accumulateTilePar(v TableView, lo, hi int, leaves [][]uint32, answers [][]uint32, workers int) error {
	workers = parWorkers(workers)
	// Every variable the worker closure captures below (blockRows, nBlocks,
	// lanes, and the parameters) is assigned exactly once: a captured
	// variable that is also reassigned gets heap-boxed at its declaration —
	// on every call, including the sequential fallback the engine's
	// allocation-free steady state runs through.
	blockRows := parBlockSize(hi-lo, workers)
	nBlocks := (hi - lo + blockRows - 1) / blockRows
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 {
		return accumulateTile(v, lo, hi, leaves, answers)
	}
	lanes := v.Lanes()

	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := getWalkScratch()
			local := sc.growLocal(len(leaves), lanes)
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks || failed.Load() {
					break
				}
				blo := lo + b*blockRows
				bhi := blo + blockRows
				if bhi > hi {
					bhi = hi
				}
				if err := accumulateBlock(v, blo, bhi, lo, lanes, leaves, local); err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					break
				}
			}
			// Merge even a failed worker's partial: on error the caller
			// discards answers, and an unconditional merge keeps the
			// success path branch-free.
			mu.Lock()
			for q := range answers {
				aq := answers[q]
				for l, x := range local[q] {
					aq[l] += x
				}
			}
			mu.Unlock()
			sc.release()
		}()
	}
	wg.Wait()
	return firstErr
}

// parBlockSize picks the row-block width for a range of `rows` rows split
// across `workers`: about parBlocksPerWorker blocks per worker, floored at
// parMinBlockRows. A budget of 1 (or an empty range) returns one covering
// block, which collapses the caller to the sequential path.
func parBlockSize(rows, workers int) int {
	if workers <= 1 || rows <= 0 {
		return rows + 1
	}
	b := (rows + workers*parBlocksPerWorker - 1) / (workers * parBlocksPerWorker)
	if b < parMinBlockRows {
		b = parMinBlockRows
	}
	return b
}

// accumulateBlock streams one row block [blo, bhi) of a tile pass whose
// leaves are indexed from leafLo, through the same contiguous-fast-path /
// chunk-iterator dispatch as accumulateTile.
func accumulateBlock(v TableView, blo, bhi, leafLo, lanes int, leaves [][]uint32, local [][]uint32) error {
	if data, err := v.RowRange(blo, bhi); err == nil {
		accumulateChunk(data, lanes, blo, leafLo, leaves, local)
		return nil
	}
	return v.Chunks(blo, bhi, func(c Chunk) error {
		accumulateChunk(c.Data, lanes, c.Row, leafLo, leaves, local)
		return nil
	})
}
