package strategy

import (
	"sync"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// BranchParallel assigns each thread one leaf (or a range of leaves) and
// recomputes the whole root-to-leaf path per leaf (Figure 5a). It exposes
// maximal parallelism and needs almost no intermediate memory, but performs
// O(L·log L) PRF work instead of the optimal O(L) — the redundancy the
// paper's Figure 6 charts.
//
// Execution is query-tiled: for each leaf, the whole tile's paths descend
// together (one dpf.StepBatch — a single batched PRF call — per level,
// since the leaf bit is shared and only the keys differ), and the table
// row is then read once for all tile queries instead of once per query.
type BranchParallel struct{}

// Name implements Strategy.
func (BranchParallel) Name() string { return "branch-parallel" }

// Run implements Strategy.
func (b BranchParallel) Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab); err != nil {
		return nil, err
	}
	// The full run assigns one thread per domain leaf (including the
	// zero-row tail beyond NumRows), keeping the calibrated totals.
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := b.runInto(prg, keys, tab, 0, 1<<uint(tab.Bits()), true, ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRange implements Strategy: path-per-leaf execution prunes perfectly —
// only the range's leaves get a thread.
func (b BranchParallel) RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error) {
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := b.RunRangeInto(prg, keys, tab, lo, hi, ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRangeInto implements Strategy.
func (b BranchParallel) RunRangeInto(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters, dst [][]uint32) error {
	if err := validateKeys(keys, tab); err != nil {
		return err
	}
	if err := validateRange(tab, lo, hi); err != nil {
		return err
	}
	if err := validateDst(keys, tab, dst); err != nil {
		return err
	}
	return b.runInto(prg, keys, tab, lo, hi, fullRange(tab, lo, hi), ctr, dst)
}

func (BranchParallel) runInto(prg dpf.PRG, keys []*dpf.Key, tab *Table, rlo, rhi int, full bool, ctr *gpu.Counters, dst [][]uint32) error {
	bits := tab.Bits()
	if full {
		rlo, rhi = 0, 1<<uint(bits)
	}
	// Modeled device allocations: per-query output accumulators only; the
	// per-thread path state lives in registers.
	outBytes := int64(len(keys)) * int64(tab.Lanes) * 4
	ctr.Alloc(outBytes)
	defer ctr.Free(outBytes)
	ctr.AddLaunch()

	for t := 0; t < len(keys); t += tileQueries {
		te := tileEnd(t, len(keys))
		tile := keys[t:te]
		tileDst := dst[t:te]
		var mu sync.Mutex
		gpu.ParallelForChunked(rhi-rlo, 0, func(clo, chi int) {
			sc := getWalkScratch()
			sc.growKeys(len(tile))
			local := sc.growLocal(len(tile), tab.Lanes)
			// Gather every key's correction words once per chunk — they
			// depend on the level only, not on the leaf.
			cwm := sc.growCWMat(bits, len(tile))
			for level := 0; level < bits; level++ {
				row := cwm[level*len(tile) : (level+1)*len(tile)]
				for q, k := range tile {
					row[q] = k.CWs[level]
				}
			}
			for j := rlo + clo; j < rlo+chi; j++ {
				for q, k := range tile {
					sc.seeds[q], sc.ts[q] = k.Root, k.Party
				}
				for level := 0; level < bits; level++ {
					bit := uint8(j>>uint(bits-1-level)) & 1
					// A GPU thread derives only the needed child per
					// level: one block per level per leaf, batched across
					// the query tile.
					dpf.StepBatch(prg, sc.seeds, sc.ts, cwm[level*len(tile):(level+1)*len(tile)], bit, &sc.batch)
				}
				if j < tab.NumRows {
					// One row read serves the whole tile (the tiled
					// table pass).
					row := tab.Row(j)
					for q, k := range tile {
						leaf := dpf.LeafValueScalar(k, sc.seeds[q], sc.ts[q])
						accumulateRow(local[q], leaf, row)
					}
				}
			}
			ctr.AddPRFBlocks(int64(chi-clo) * int64(bits) * int64(len(tile)))
			mu.Lock()
			for q := range local {
				for i := range tileDst[q] {
					tileDst[q][i] += local[q][i]
				}
			}
			mu.Unlock()
			sc.release()
		})
	}
	if full {
		ctr.AddRead(tableReadBytes(len(keys), bits, tab.Lanes))
	} else {
		ctr.AddRead(rangeReadBytes(len(keys), tab.Lanes, rhi-rlo))
	}
	ctr.AddWrite(outBytes)
	return nil
}

// Model implements Strategy.
func (BranchParallel) Model(dev *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error) {
	domain := int64(1) << uint(bits)
	outBytes := int64(batch) * int64(lanes) * 4
	st := gpu.Stats{
		PRFBlocks:    int64(batch) * domain * int64(bits),
		ReadBytes:    tableReadBytes(batch, bits, lanes),
		WriteBytes:   outBytes,
		Launches:     1,
		PeakMemBytes: outBytes,
	}
	p := gpu.KernelProfile{
		Stats:             st,
		PRGCyclesPerBlock: prg.GPUCyclesPerBlock(),
		Parallelism:       int64(batch) * domain,
		ArithCycles:       dotArithCycles(batch, bits, lanes),
	}
	return finishReport(dev, BranchParallel{}.Name(), prg, bits, batch, lanes, p)
}
