package strategy

import (
	"sync"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// BranchParallel assigns each thread one terminal node (a leaf for
// full-depth keys, a 2^Early-leaf group for early-terminated ones) and
// recomputes the whole root-to-terminal path per thread (Figure 5a). It
// exposes maximal parallelism and needs almost no intermediate memory, but
// performs O(G·log L) PRF work (G = L >> Early terminal nodes) instead of
// the optimal O(G) — the redundancy the paper's Figure 6 charts.
//
// Execution is query-tiled: for each terminal node, the whole tile's paths
// descend together (one dpf.StepBatch — a single batched PRF call — per
// level, since the path bits are shared and only the keys differ), the
// terminal seed converts into its whole leaf group, and each covered table
// row is then read once for all tile queries instead of once per query.
type BranchParallel struct{}

// Name implements Strategy.
func (BranchParallel) Name() string { return "branch-parallel" }

// Run implements Strategy.
func (b BranchParallel) Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab.Bits()); err != nil {
		return nil, err
	}
	// The full run assigns one thread per domain leaf (including the
	// zero-row tail beyond NumRows), keeping the calibrated totals.
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := b.runInto(prg, keys, tab.View(), 0, 1<<uint(tab.Bits()), true, ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRange implements Strategy: path-per-leaf execution prunes perfectly —
// only the range's leaves get a thread.
func (b BranchParallel) RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error) {
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := b.RunRangeInto(prg, keys, tab.View(), lo, hi, ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRangeInto implements Strategy.
func (b BranchParallel) RunRangeInto(prg dpf.PRG, keys []*dpf.Key, v TableView, lo, hi int, ctr *gpu.Counters, dst [][]uint32) error {
	if err := validateKeys(keys, dpf.DomainBits(v.Rows())); err != nil {
		return err
	}
	if err := validateRange(v.Rows(), lo, hi); err != nil {
		return err
	}
	if err := validateDst(keys, v.Lanes(), dst); err != nil {
		return err
	}
	return b.runInto(prg, keys, v, lo, hi, fullRange(v.Rows(), lo, hi), ctr, dst)
}

func (BranchParallel) runInto(prg dpf.PRG, keys []*dpf.Key, v TableView, rlo, rhi int, full bool, ctr *gpu.Counters, dst [][]uint32) error {
	bits := dpf.DomainBits(v.Rows())
	lanes := v.Lanes()
	early := keys[0].Early
	depth := bits - early
	gs := 1 << uint(early)
	if full {
		rlo, rhi = 0, 1<<uint(bits)
	}
	// Modeled device allocations: per-query output accumulators only; the
	// per-thread path state lives in registers.
	outBytes := int64(len(keys)) * int64(lanes) * 4
	ctr.Alloc(outBytes)
	defer ctr.Free(outBytes)
	ctr.AddLaunch()

	// Threads own terminal nodes: group g covers leaves
	// [g<<early, (g+1)<<early), and the range may start or end mid-group.
	gLo := rlo >> uint(early)
	gHi := (rhi + gs - 1) >> uint(early)
	for t := 0; t < len(keys); t += tileQueries {
		te := tileEnd(t, len(keys))
		tile := keys[t:te]
		tileDst := dst[t:te]
		var mu sync.Mutex
		var firstErr error
		gpu.ParallelForChunked(gHi-gLo, 0, func(clo, chi int) {
			sc := getWalkScratch()
			sc.growKeys(len(tile))
			local := sc.growLocal(len(tile), lanes)
			// Gather every key's correction words once per chunk — they
			// depend on the level only, not on the terminal node.
			cwm := sc.growCWMat(depth, len(tile))
			for level := 0; level < depth; level++ {
				row := cwm[level*len(tile) : (level+1)*len(tile)]
				for q, k := range tile {
					row[q] = k.CWs[level]
				}
			}
			for g := gLo + clo; g < gLo+chi; g++ {
				for q, k := range tile {
					sc.seeds[q], sc.ts[q] = k.Root, k.Party
				}
				for level := 0; level < depth; level++ {
					bit := uint8(g>>uint(depth-1-level)) & 1
					// A GPU thread derives only the needed child per
					// level: one block per level per terminal node,
					// batched across the query tile.
					dpf.StepBatch(prg, sc.seeds, sc.ts, cwm[level*len(tile):(level+1)*len(tile)], bit, &sc.batch)
				}
				// One terminal seed serves the group's whole leaf span —
				// the §3.1 conversion — clipped to the range and the
				// table's real rows.
				jLo, jHi := g*gs, (g+1)*gs
				if jLo < rlo {
					jLo = rlo
				}
				if jHi > rhi {
					jHi = rhi
				}
				if jHi > v.Rows() {
					jHi = v.Rows()
				}
				if jLo >= jHi {
					continue
				}
				err := v.Chunks(jLo, jHi, func(ch Chunk) error {
					for j := 0; j < len(ch.Data)/lanes; j++ {
						// One row read serves the whole tile (the
						// tiled table pass).
						row := ch.Data[j*lanes : (j+1)*lanes]
						sub := (ch.Row + j) & (gs - 1)
						for q, k := range tile {
							leaf := dpf.LeafLane(k, sc.seeds[q], sc.ts[q], sub)
							accumulateRow(local[q], leaf, row)
						}
					}
					return nil
				})
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					sc.release()
					return
				}
			}
			ctr.AddPRFBlocks(int64(chi-clo) * int64(depth) * int64(len(tile)))
			mu.Lock()
			for q := range local {
				for i := range tileDst[q] {
					tileDst[q][i] += local[q][i]
				}
			}
			mu.Unlock()
			sc.release()
		})
		if firstErr != nil {
			return firstErr
		}
	}
	if full {
		ctr.AddRead(tableReadBytes(len(keys), bits, lanes))
	} else {
		ctr.AddRead(rangeReadBytes(len(keys), lanes, rhi-rlo))
	}
	ctr.AddWrite(outBytes)
	return nil
}

// Model implements Strategy: one thread per terminal node recomputing its
// depth-long path, so total work is batch × (L>>early) × (bits-early)
// blocks — still the redundant-by-log-factor strategy, on a tree 2^early×
// narrower.
func (BranchParallel) Model(dev *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error) {
	early := modelEarly(bits)
	frontier := int64(1) << uint(bits-early)
	outBytes := int64(batch) * int64(lanes) * 4
	st := gpu.Stats{
		PRFBlocks:    int64(batch) * frontier * int64(bits-early),
		ReadBytes:    tableReadBytes(batch, bits, lanes),
		WriteBytes:   outBytes,
		Launches:     1,
		PeakMemBytes: outBytes,
	}
	p := gpu.KernelProfile{
		Stats:             st,
		PRGCyclesPerBlock: prgCyclesPerBlock(prg.GPUCyclesPerBlock(), early),
		Parallelism:       int64(batch) * frontier,
		ArithCycles:       dotArithCycles(batch, bits, lanes),
	}
	return finishReport(dev, BranchParallel{}.Name(), prg, bits, batch, lanes, p)
}
