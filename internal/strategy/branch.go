package strategy

import (
	"sync"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// BranchParallel assigns each thread one leaf (or a range of leaves) and
// recomputes the whole root-to-leaf path per leaf (Figure 5a). It exposes
// maximal parallelism and needs almost no intermediate memory, but performs
// O(L·log L) PRF work instead of the optimal O(L) — the redundancy the
// paper's Figure 6 charts.
type BranchParallel struct{}

// Name implements Strategy.
func (BranchParallel) Name() string { return "branch-parallel" }

// Run implements Strategy.
func (b BranchParallel) Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab); err != nil {
		return nil, err
	}
	// The full run assigns one thread per domain leaf (including the
	// zero-row tail beyond NumRows), keeping the calibrated totals.
	return b.run(prg, keys, tab, 0, 1<<uint(tab.Bits()), true, ctr)
}

// RunRange implements Strategy: path-per-leaf execution prunes perfectly —
// only the range's leaves get a thread.
func (b BranchParallel) RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab); err != nil {
		return nil, err
	}
	if err := validateRange(tab, lo, hi); err != nil {
		return nil, err
	}
	return b.run(prg, keys, tab, lo, hi, fullRange(tab, lo, hi), ctr)
}

func (BranchParallel) run(prg dpf.PRG, keys []*dpf.Key, tab *Table, rlo, rhi int, full bool, ctr *gpu.Counters) ([][]uint32, error) {
	bits := tab.Bits()
	if full {
		rlo, rhi = 0, 1<<uint(bits)
	}
	// Modeled device allocations: per-query output accumulators only; the
	// per-thread path state lives in registers.
	outBytes := int64(len(keys)) * int64(tab.Lanes) * 4
	ctr.Alloc(outBytes)
	defer ctr.Free(outBytes)
	ctr.AddLaunch()

	answers := make([][]uint32, len(keys))
	for q, k := range keys {
		ans := make([]uint32, tab.Lanes)
		var mu sync.Mutex
		gpu.ParallelForChunked(rhi-rlo, 0, func(clo, chi int) {
			local := make([]uint32, tab.Lanes)
			for j := rlo + clo; j < rlo+chi; j++ {
				s, t := k.Root, k.Party
				for level := 0; level < bits; level++ {
					bit := uint8(j>>uint(bits-1-level)) & 1
					s, t = dpf.Step(prg, s, t, k.CWs[level], bit)
				}
				// A GPU thread derives only the needed child per level:
				// one block per level per leaf.
				leaf := dpf.LeafValueScalar(k, s, t)
				if j < tab.NumRows {
					accumulateRow(local, leaf, tab.Row(j))
				}
			}
			ctr.AddPRFBlocks(int64(chi-clo) * int64(bits))
			mu.Lock()
			for i := range ans {
				ans[i] += local[i]
			}
			mu.Unlock()
		})
		answers[q] = ans
	}
	if full {
		ctr.AddRead(tableReadBytes(len(keys), bits, tab.Lanes))
	} else {
		ctr.AddRead(rangeReadBytes(len(keys), tab.Lanes, rhi-rlo))
	}
	ctr.AddWrite(outBytes)
	return answers, nil
}

// Model implements Strategy.
func (BranchParallel) Model(dev *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error) {
	domain := int64(1) << uint(bits)
	outBytes := int64(batch) * int64(lanes) * 4
	st := gpu.Stats{
		PRFBlocks:    int64(batch) * domain * int64(bits),
		ReadBytes:    tableReadBytes(batch, bits, lanes),
		WriteBytes:   outBytes,
		Launches:     1,
		PeakMemBytes: outBytes,
	}
	p := gpu.KernelProfile{
		Stats:             st,
		PRGCyclesPerBlock: prg.GPUCyclesPerBlock(),
		Parallelism:       int64(batch) * domain,
		ArithCycles:       dotArithCycles(batch, bits, lanes),
	}
	return finishReport(dev, BranchParallel{}.Name(), prg, bits, batch, lanes, p)
}
