package strategy

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// forceGOMAXPROCS raises GOMAXPROCS for the test so the worker fan-out
// actually runs parallel even on single-core CI shards (Go happily
// oversubscribes), restoring the old value on cleanup. Bit-identity must
// hold at ANY setting — this just makes the parallel code path execute.
func forceGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// parWorkerCounts is the worker-count sweep the acceptance criteria pin:
// 1 (must collapse to the sequential pass), 2, 3 (uneven splits), and 8
// (more workers than blocks — the clamp path).
var parWorkerCounts = []int{1, 2, 3, 8}

// TestAccumulateTileParMatchesSequential: kernel-level bit-identity of the
// row-block parallel accumulate against the sequential pass, across worker
// counts × lane widths × contiguous/fragmented views. Rows are sized to a
// non-integral number of blocks so the last block is short, and the
// fragmented view's cuts land wherever they like relative to block
// boundaries.
func TestAccumulateTileParMatchesSequential(t *testing.T) {
	forceGOMAXPROCS(t, 8)
	rng := rand.New(rand.NewSource(42))
	const queries = 5
	rows := 2*parMinBlockRows + 777
	for _, lanes := range []int{1, 4, 16} {
		tab := buildTable(t, rows, lanes, int64(lanes))
		leaves := make([][]uint32, queries)
		for q := range leaves {
			leaves[q] = make([]uint32, rows)
			for j := range leaves[q] {
				leaves[q][j] = rng.Uint32()
			}
		}
		views := []struct {
			name string
			v    TableView
		}{
			{"contiguous", tab.View()},
			{"fragmented", fragView{t: tab, cuts: randomCuts(rng, rows, 97)}},
		}
		for _, lo := range []int{0, 333} {
			hi := rows - 111
			want := NewAnswers(queries, lanes)
			if err := accumulateTile(tab.View(), lo, hi, sliceLeaves(leaves, lo), want); err != nil {
				t.Fatal(err)
			}
			for _, vw := range views {
				for _, w := range parWorkerCounts {
					got := NewAnswers(queries, lanes)
					if err := accumulateTilePar(vw.v, lo, hi, sliceLeaves(leaves, lo), got, w); err != nil {
						t.Fatalf("lanes=%d %s workers=%d: %v", lanes, vw.name, w, err)
					}
					for q := range want {
						for l := range want[q] {
							if got[q][l] != want[q][l] {
								t.Fatalf("lanes=%d %s workers=%d q=%d lane=%d: got %d want %d",
									lanes, vw.name, w, q, l, got[q][l], want[q][l])
							}
						}
					}
				}
			}
		}
	}
}

// sliceLeaves re-bases full-domain leaf vectors so index 0 is range row lo
// (the leaves[q][row-leafLo] convention of accumulateTile).
func sliceLeaves(leaves [][]uint32, lo int) [][]uint32 {
	out := make([][]uint32, len(leaves))
	for q := range leaves {
		out[q] = leaves[q][lo:]
	}
	return out
}

// TestParallelStrategyBitIdentity is the acceptance property test: for
// every strategy × worker count {1,2,3,8} × PRF × contiguous/fragmented
// view, WithWorkers(s, w) answers bit-identically to the sequential s, on
// a multi-tile batch (so membound's pipelined expand/stream overlap runs)
// over a non-power-of-two table (so the domain padding clip is exercised).
// The counted PRF blocks must not change either — the counters stay pinned
// to the analytic model however the work fans out.
func TestParallelStrategyBitIdentity(t *testing.T) {
	forceGOMAXPROCS(t, 8)
	rng := rand.New(rand.NewSource(7))
	rows := 2*parMinBlockRows + 777
	const lanes, batch = 4, 40 // two tiles, the second short
	tab := buildTable(t, rows, lanes, 11)
	frag := fragView{t: tab, cuts: randomCuts(rng, rows, 61)}
	prgs := []struct {
		name string
		prg  dpf.PRG
	}{
		{"aes128", dpf.NewAESPRG()},
		{"chacha20", dpf.NewChaChaPRG()},
	}
	for _, pc := range prgs {
		keys, _, _ := genBatch(t, pc.prg, tab, batch, 23)
		for _, s := range allStrategies() {
			var seqCtr gpu.Counters
			want := NewAnswers(batch, lanes)
			if err := s.RunRangeInto(pc.prg, keys, tab.View(), 0, rows, &seqCtr, want); err != nil {
				t.Fatalf("%s/%s sequential: %v", s.Name(), pc.name, err)
			}
			seq := seqCtr.Snapshot()
			for _, w := range parWorkerCounts {
				ps := WithWorkers(s, w)
				for _, vw := range []struct {
					name string
					v    TableView
				}{{"contiguous", tab.View()}, {"fragmented", frag}} {
					var ctr gpu.Counters
					got := NewAnswers(batch, lanes)
					if err := ps.RunRangeInto(pc.prg, keys, vw.v, 0, rows, &ctr, got); err != nil {
						t.Fatalf("%s/%s workers=%d %s: %v", s.Name(), pc.name, w, vw.name, err)
					}
					for q := range want {
						for l := range want[q] {
							if got[q][l] != want[q][l] {
								t.Fatalf("%s/%s workers=%d %s q=%d lane=%d: got %d want %d",
									s.Name(), pc.name, w, vw.name, q, l, got[q][l], want[q][l])
							}
						}
					}
					if par := ctr.Snapshot(); par.PRFBlocks != seq.PRFBlocks {
						t.Fatalf("%s/%s workers=%d %s: counted %d PRF blocks parallel, %d sequential",
							s.Name(), pc.name, w, vw.name, par.PRFBlocks, seq.PRFBlocks)
					}
				}
			}
		}
	}
}

// TestWithWorkersPreservesType: WithWorkers must return the same concrete
// strategy type (Name and type assertions stay stable), and budgets <= 1
// or unsupported strategies come back unchanged.
func TestWithWorkersPreservesType(t *testing.T) {
	for _, s := range allStrategies() {
		ps := WithWorkers(s, 4)
		if got, want := fmt.Sprintf("%T", ps), fmt.Sprintf("%T", s); got != want {
			t.Errorf("WithWorkers changed type %s -> %s", want, got)
		}
		if ps.Name() != s.Name() {
			t.Errorf("WithWorkers changed name %s -> %s", s.Name(), ps.Name())
		}
		if one := WithWorkers(s, 1); one != s {
			t.Errorf("%s: WithWorkers(1) should be identity", s.Name())
		}
	}
	m := WithWorkers(MemBoundTree{K: 8, Fused: true}, 6)
	if mb, ok := m.(MemBoundTree); !ok || mb.Workers != 6 {
		t.Errorf("MemBoundTree budget not bound: %#v", m)
	}
}
