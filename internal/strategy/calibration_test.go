package strategy

import (
	"testing"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// This file pins the device model to the paper's measured numbers. The
// targets are the *shapes* (ratios, orderings, crossovers); absolute values
// are required only to land within a factor-of-two band of the published
// measurements, per EXPERIMENTS.md's methodology.

// within checks x ∈ [lo, hi].
func within(t *testing.T, name string, x, lo, hi float64) {
	t.Helper()
	if x < lo || x > hi {
		t.Errorf("%s = %.4g, want in [%.4g, %.4g]", name, x, lo, hi)
	}
}

// TestTable4CPUBaseline: Xeon single-thread 1M-entry latency ≈638ms and
// 32-thread ≈36ms with 2048-bit entries.
func TestTable4CPUBaseline(t *testing.T) {
	prg := dpf.NewAESPRG()
	one, err := (CPUBaseline{Threads: 1}).Model(nil, prg, 20, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "cpu-1t 1M latency (ms)", float64(one.Latency.Milliseconds()), 400, 900)
	many, err := (CPUBaseline{Threads: 32}).Model(nil, prg, 20, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "cpu-32t 1M latency (ms)", float64(many.Latency.Milliseconds()), 20, 60)
}

// TestTable4GPUSpeedup: GPU throughput must beat the 32-thread CPU by >17x
// on every Table 4 row (16K, 1M, 4M entries).
func TestTable4GPUSpeedup(t *testing.T) {
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	for _, bits := range []int{14, 20, 22} {
		gpuRep, err := TuneBatch(dev, Schedule(bits), prg, bits, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		cpuRep, err := (CPUBaseline{Threads: 32}).Model(nil, prg, bits, 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		speedup := gpuRep.Throughput / cpuRep.Throughput
		if speedup < 17 {
			t.Errorf("bits=%d: GPU/CPU32 speedup %.1f, want >17 (Table 4)", bits, speedup)
		}
		if speedup > 500 {
			t.Errorf("bits=%d: speedup %.0f implausibly large", bits, speedup)
		}
	}
}

// TestTable4GPUAbsolute: the 1M-entry AES GPU throughput should land near
// the paper's 1,358 QPS.
func TestTable4GPUAbsolute(t *testing.T) {
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	r, err := TuneBatch(dev, MemBoundTree{K: 128, Fused: true}, prg, 20, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "GPU 1M QPS", r.Throughput, 700, 2700)
}

// TestTable5PRFOrdering: modeled QPS at the paper's Table 5 shape (1M
// entries, batch 512) must order siphash > chacha20 > highway > aes128 >
// sha256, and ChaCha20's speedup over AES must be in the 2.5x–5x band
// (paper: 3.77x).
func TestTable5PRFOrdering(t *testing.T) {
	dev := gpu.TeslaV100()
	qps := map[string]float64{}
	for _, name := range dpf.AllPRGNames() {
		prg, err := dpf.NewPRG(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := (MemBoundTree{K: 128, Fused: true}).Model(dev, prg, 20, 512, 64)
		if err != nil {
			t.Fatal(err)
		}
		qps[name] = r.Throughput
	}
	if !(qps["siphash"] > qps["chacha20"] && qps["chacha20"] > qps["highway"] &&
		qps["highway"] > qps["aes128"] && qps["aes128"] >= qps["sha256"]) {
		t.Errorf("PRF QPS ordering violates Table 5: %v", qps)
	}
	within(t, "chacha/aes speedup", qps["chacha20"]/qps["aes128"], 2.5, 5)
	within(t, "siphash/aes speedup", qps["siphash"]/qps["aes128"], 5, 11)
}

// TestGenVsEvalGap pins Figure 3: client-side Gen is orders of magnitude
// cheaper than server-side Eval.
func TestGenVsEvalGap(t *testing.T) {
	i3 := gpu.IntelCorei3()
	prg := dpf.NewAESPRG()
	genLat := i3.CPUTime(gpu.GenProfile(prg.CPUCyclesPerBlock(), 20, 1), 1)
	evalRep, err := (CPUBaseline{Threads: 1}).Model(nil, prg, 20, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if genLat > time.Millisecond {
		t.Errorf("Gen latency %v, want < 1ms", genLat)
	}
	if ratio := evalRep.Latency.Seconds() / genLat.Seconds(); ratio < 1000 {
		t.Errorf("Eval/Gen ratio %.0f, want > 1000", ratio)
	}
}

// TestTuneBatchRespectsLatencyBudget: tuned batches must not exceed the
// budget, and tighter budgets must not increase throughput.
func TestTuneBatchRespectsLatencyBudget(t *testing.T) {
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	mb := MemBoundTree{K: 128, Fused: true}
	loose, err := TuneBatch(dev, mb, prg, 20, 64, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := TuneBatch(dev, mb, prg, 20, 64, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Latency > 300*time.Millisecond || tight.Latency > 50*time.Millisecond {
		t.Error("TuneBatch violated the latency budget")
	}
	if tight.Throughput > loose.Throughput {
		t.Error("tighter latency budget should not increase throughput")
	}
	// Impossible budget errors out but still reports batch 1.
	if _, err := TuneBatch(dev, mb, prg, 24, 64, time.Microsecond); err == nil {
		t.Error("microsecond budget at 16M entries should be infeasible")
	}
}
