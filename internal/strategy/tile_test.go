package strategy

import (
	"math/rand"
	"testing"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// This file guards the tiled/batched hot path: every strategy × PRF must
// produce output bit-identical to the scalar seed path (per-query
// root-to-leaf evaluation through the scalar PRG Expand, one table pass
// per query), and RunRange over any random partition of [0, NumRows) must
// sum (mod 2^32) to Run's answers.

// scalarReference computes each key's answer the way the seed code did
// before tiling: dpf.EvalAt per row (scalar Step/Expand calls only — no
// batch code path), then a per-query dot product. Mod-2^32 lane sums are
// order-independent, so the tiled path must match this exactly, not
// approximately.
func scalarReference(t *testing.T, prg dpf.PRG, keys []*dpf.Key, tab *Table) [][]uint32 {
	t.Helper()
	ref := make([][]uint32, len(keys))
	for q, k := range keys {
		ans := make([]uint32, tab.Lanes)
		for j := 0; j < tab.NumRows; j++ {
			leaf, err := dpf.EvalAt(prg, k, uint64(j))
			if err != nil {
				t.Fatal(err)
			}
			accumulateRow(ans, leaf[0], tab.Row(j))
		}
		ref[q] = ans
	}
	return ref
}

// TestTiledMatchesScalarAllPRGs: for every strategy and every PRF, the
// tiled/batched Run is bit-identical to the scalar reference. The batch of
// 34 keys spans two tiles (32 + 2), exercising both the full-tile and
// ragged-tail paths.
func TestTiledMatchesScalarAllPRGs(t *testing.T) {
	const rows, lanes, batch = 100, 3, 34
	for _, name := range dpf.AllPRGNames() {
		prg, err := dpf.NewPRG(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			tab := buildTable(t, rows, lanes, 21)
			rng := rand.New(rand.NewSource(22))
			keys := make([]*dpf.Key, batch)
			for q := range keys {
				k0, k1, err := dpf.Gen(prg, uint64(rng.Intn(rows)), tab.Bits(), []uint32{1}, rng)
				if err != nil {
					t.Fatal(err)
				}
				if q%2 == 0 {
					keys[q] = &k0
				} else {
					keys[q] = &k1 // party-1 keys exercise the negation path
				}
			}
			want := scalarReference(t, prg, keys, tab)
			for _, s := range allStrategies() {
				var ctr gpu.Counters
				got, err := s.Run(prg, keys, tab, &ctr)
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				for q := range want {
					for l := range want[q] {
						if got[q][l] != want[q][l] {
							t.Fatalf("%s/%s q=%d lane=%d: tiled %d != scalar %d",
								s.Name(), name, q, l, got[q][l], want[q][l])
						}
					}
				}
			}
		})
	}
}

// TestEarlyMatchesFullDepthAllStrategies is the §3.1 acceptance property:
// for every PRF × every strategy, a batch of early-terminated (wire v2)
// key pairs and a batch of full-depth (wire v1) pairs for the same indices
// produce bit-identical reconstructed answers — the exact table rows, mod
// 2^32 — and each party's v2 share matches the scalar EvalAt reference for
// its own key. Early termination changes the walk, never the answer.
func TestEarlyMatchesFullDepthAllStrategies(t *testing.T) {
	const rows, lanes, batch = 100, 3, 5
	for _, name := range dpf.AllPRGNames() {
		prg, err := dpf.NewPRG(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			tab := buildTable(t, rows, lanes, 61)
			rng := rand.New(rand.NewSource(62))
			type pair struct{ k0, k1 *dpf.Key }
			var v1, v2 []pair
			var idx []uint64
			for q := 0; q < batch; q++ {
				alpha := uint64(rng.Intn(rows))
				a0, a1, err := dpf.GenEarly(prg, alpha, tab.Bits(), []uint32{1}, 0, rng)
				if err != nil {
					t.Fatal(err)
				}
				b0, b1, err := dpf.GenEarly(prg, alpha, tab.Bits(), []uint32{1}, 2, rng)
				if err != nil {
					t.Fatal(err)
				}
				v1 = append(v1, pair{&a0, &a1})
				v2 = append(v2, pair{&b0, &b1})
				idx = append(idx, alpha)
			}
			split := func(ps []pair) (k0s, k1s []*dpf.Key) {
				for _, p := range ps {
					k0s = append(k0s, p.k0)
					k1s = append(k1s, p.k1)
				}
				return
			}
			v10, v11 := split(v1)
			v20, v21 := split(v2)
			refV2 := scalarReference(t, prg, v20, tab)
			for _, s := range allStrategies() {
				var ctr gpu.Counters
				run := func(keys []*dpf.Key) [][]uint32 {
					got, err := s.Run(prg, keys, tab, &ctr)
					if err != nil {
						t.Fatalf("%s: %v", s.Name(), err)
					}
					return got
				}
				a10, a11 := run(v10), run(v11)
				a20, a21 := run(v20), run(v21)
				for q := range idx {
					want := tab.Row(int(idx[q]))
					for l := 0; l < lanes; l++ {
						recV1 := a10[q][l] + a11[q][l]
						recV2 := a20[q][l] + a21[q][l]
						if recV2 != recV1 || recV2 != want[l] {
							t.Fatalf("%s/%s q=%d lane=%d: v2 %d, v1 %d, table %d",
								s.Name(), name, q, l, recV2, recV1, want[l])
						}
						if a20[q][l] != refV2[q][l] {
							t.Fatalf("%s/%s q=%d lane=%d: v2 share %d != scalar reference %d",
								s.Name(), name, q, l, a20[q][l], refV2[q][l])
						}
					}
				}
			}
		})
	}
}

// TestRunRangeRandomPartitions: property test — for every strategy,
// summing RunRange partials over ANY partition of [0, NumRows) reproduces
// Run (mod 2^32), not just the fixed cut set range_test.go uses.
func TestRunRangeRandomPartitions(t *testing.T) {
	const rows, lanes = 300, 2
	prg := dpf.NewChaChaPRG()
	tab := buildTable(t, rows, lanes, 31)
	rng := rand.New(rand.NewSource(32))
	keys := make([]*dpf.Key, 5)
	for q := range keys {
		k0, _, err := dpf.Gen(prg, uint64(rng.Intn(rows)), tab.Bits(), []uint32{1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		keys[q] = &k0
	}
	for _, s := range allStrategies() {
		var ctr gpu.Counters
		want, err := s.Run(prg, keys, tab, &ctr)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			// Draw a random partition: 0 < c1 < ... < ck < rows.
			cuts := []int{0}
			for c := 1 + rng.Intn(rows-1); c < rows; c += 1 + rng.Intn(rows) {
				cuts = append(cuts, c)
			}
			cuts = append(cuts, rows)
			got := make([][]uint32, len(keys))
			for q := range got {
				got[q] = make([]uint32, lanes)
			}
			for c := 0; c+1 < len(cuts); c++ {
				part, err := s.RunRange(prg, keys, tab, cuts[c], cuts[c+1], &ctr)
				if err != nil {
					t.Fatalf("%s trial %d range [%d,%d): %v", s.Name(), trial, cuts[c], cuts[c+1], err)
				}
				for q := range part {
					for l := range part[q] {
						got[q][l] += part[q][l]
					}
				}
			}
			for q := range want {
				for l := range want[q] {
					if got[q][l] != want[q][l] {
						t.Fatalf("%s trial %d cuts %v: q=%d lane=%d partition sum %d != %d",
							s.Name(), trial, cuts, q, l, got[q][l], want[q][l])
					}
				}
			}
		}
	}
}

// TestRunRangeIntoAccumulates: RunRangeInto adds into its destination (it
// must not overwrite — the engine merges shard partials in place), and a
// second accumulation doubles the share.
func TestRunRangeIntoAccumulates(t *testing.T) {
	const rows, lanes = 64, 2
	prg := dpf.NewAESPRG()
	tab := buildTable(t, rows, lanes, 41)
	rng := rand.New(rand.NewSource(42))
	k0, _, err := dpf.Gen(prg, 7, tab.Bits(), []uint32{1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	keys := []*dpf.Key{&k0}
	for _, s := range allStrategies() {
		var ctr gpu.Counters
		want, err := s.RunRange(prg, keys, tab, 0, rows, &ctr)
		if err != nil {
			t.Fatal(err)
		}
		dst := [][]uint32{make([]uint32, lanes)}
		if err := s.RunRangeInto(prg, keys, tab.View(), 0, rows, &ctr, dst); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := s.RunRangeInto(prg, keys, tab.View(), 0, rows, &ctr, dst); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for l := range want[0] {
			if dst[0][l] != 2*want[0][l] {
				t.Fatalf("%s lane %d: double accumulate %d != 2×%d", s.Name(), l, dst[0][l], want[0][l])
			}
		}
	}
}

// TestRunRangeIntoValidatesDst: wrong destination shapes are rejected.
func TestRunRangeIntoValidatesDst(t *testing.T) {
	prg := dpf.NewAESPRG()
	tab := buildTable(t, 16, 2, 51)
	k0, _, err := dpf.Gen(prg, 3, tab.Bits(), []uint32{1}, rand.New(rand.NewSource(52)))
	if err != nil {
		t.Fatal(err)
	}
	keys := []*dpf.Key{&k0}
	s := MemBoundTree{K: 8, Fused: true}
	var ctr gpu.Counters
	if err := s.RunRangeInto(prg, keys, tab.View(), 0, 16, &ctr, nil); err == nil {
		t.Error("nil dst accepted")
	}
	if err := s.RunRangeInto(prg, keys, tab.View(), 0, 16, &ctr, [][]uint32{make([]uint32, 1)}); err == nil {
		t.Error("wrong-lane dst accepted")
	}
}
