package strategy

import (
	"fmt"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// nodeBytes is the modeled device footprint of one tree node: a 128-bit
// seed plus its control bit.
const nodeBytes = 17

// tileQueries is the matrix-multiplication tile width: one pass over the
// table serves this many queries' dot products (the paper batches
// per-table dot products into one matrix-matrix multiply, §3.1). This is
// both the modeled width in tableReadBytes and the width the real Run /
// RunRange hot paths execute — a batch of B queries streams the table
// ⌈B/32⌉ times, not B times.
const tileQueries = 32

// Strategy is one DPF execution strategy.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Run evaluates the batch of keys against tab, accumulating counts
	// into ctr, and returns one answer share vector (tab.Lanes wide) per
	// key. Keys must be scalar (one lane) and match the table's Bits.
	Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error)
	// RunRange evaluates the batch against rows [lo, hi) of tab only,
	// returning per-key partial answer shares (tab.Lanes wide). Summing
	// the partials of ranges that partition [0, NumRows) lane-wise
	// (mod 2^32) yields exactly Run's answers — the seam engine.Replica
	// shards on. Tree strategies prune subtrees outside the range where
	// their traversal order allows it, so a 1/N range costs ~1/N of the
	// full evaluation; breadth-first strategies (level-by-level,
	// coop-groups) still expand the whole tree and only restrict the dot
	// product. Counter accounting for partial ranges is proportional, not
	// pinned to Model.
	RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error)
	// RunRangeInto is RunRange accumulating into caller-provided answer
	// buffers: dst[q] (v.Lanes() wide, zeroed by the caller) receives key
	// q's partial share for rows [lo, hi). Strategies add into dst without
	// allocating per-call answer storage, which is what lets
	// engine.Replica pool its shard partials for an allocation-free
	// steady-state Answer. The table arrives as a TableView — strategies
	// stream it chunk-by-chunk (accumulateTile), so the same code path
	// serves in-RAM tables (one maximal chunk), delta-epoch overlays, and
	// paged backings larger than memory.
	RunRangeInto(prg dpf.PRG, keys []*dpf.Key, v TableView, lo, hi int, ctr *gpu.Counters, dst [][]uint32) error
	// Model analytically predicts the device-side execution of a batch of
	// the given shape and converts it to a Report via dev's cost model.
	Model(dev *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error)
}

// Report is the modeled outcome of executing one batch.
type Report struct {
	// Strategy and PRG identify the configuration.
	Strategy string
	PRG      string
	// Bits, Batch and Lanes describe the workload shape.
	Bits  int
	Batch int
	Lanes int
	// PRFBlocks is the total 128-bit PRF block count for the batch.
	PRFBlocks int64
	// PeakMemBytes is the modeled peak device memory.
	PeakMemBytes int64
	// Latency is the modeled batch latency; Throughput is queries/second
	// at that latency; Utilization is the achieved fraction of device
	// lanes.
	Latency     time.Duration
	Throughput  float64
	Utilization float64
}

func (r Report) String() string {
	return fmt.Sprintf("%s/%s L=2^%d B=%d lanes=%d: %.3g QPS, %v, util %.1f%%, peak %.1f MB",
		r.Strategy, r.PRG, r.Bits, r.Batch, r.Lanes,
		r.Throughput, r.Latency.Round(10*time.Microsecond), r.Utilization*100,
		float64(r.PeakMemBytes)/(1<<20))
}

// validateKeys checks the Run preconditions shared by all strategies.
// Early-termination depth must be uniform across the batch: the tiled
// walkers advance whole tiles through shared level loops, which only makes
// sense when every key's tree has the same depth (engine.Replica enforces
// this per key at the front door, so a mixed batch never reaches here from
// the serving path).
func validateKeys(keys []*dpf.Key, bits int) error {
	if len(keys) == 0 {
		return fmt.Errorf("strategy: empty batch")
	}
	early := keys[0].Early
	for i, k := range keys {
		if k.Lanes != 1 {
			return fmt.Errorf("strategy: key %d has %d lanes; PIR keys are scalar", i, k.Lanes)
		}
		if k.Bits != bits {
			return fmt.Errorf("strategy: key %d has %d bits, table needs %d", i, k.Bits, bits)
		}
		if k.Early != early {
			return fmt.Errorf("strategy: key %d has early-termination depth %d, batch started with %d; batches must be depth-uniform", i, k.Early, early)
		}
	}
	return nil
}

// modelEarly is the early-termination depth the analytic Models assume: the
// default depth Gen gives scalar PIR keys for this tree depth. Counters pin
// to Model exactly for batches of default-format keys; explicitly
// full-depth (wire v1) batches do proportionally more PRF work than the
// model prices.
func modelEarly(bits int) int { return dpf.DefaultEarly(bits, 1) }

// treeBlocks is the PRF block count of one full early-terminated expansion:
// the walk stops `early` levels up, so 2^(bits-early)-1 Expand calls derive
// the terminal frontier, two blocks each. early=0 recovers the classic
// 2L-2.
func treeBlocks(bits, early int) int64 {
	return 2*(int64(1)<<uint(bits-early)) - 2
}

// prgCyclesPerBlock re-anchors a PRF's calibrated per-block device cost to
// early-terminated block counts. The per-PRF cycle constants were fitted so
// that FULL-tree block accounting reproduces the paper's measured
// latencies — measurements that already include the §3.1 early-termination
// optimisation. Now that PRFBlocks counts the genuinely shortened tree
// (2^early× fewer blocks for the same kernel), the same fitted cost is
// re-expressed per terminal-tree block; modeled latencies stay anchored to
// the paper while PRFBlocks reports the real PRF work.
func prgCyclesPerBlock(cycles float64, early int) float64 {
	return cycles * float64(int64(1)<<uint(early))
}

// validateRange checks a RunRange row range against the table's row count.
func validateRange(rows, lo, hi int) error {
	if lo < 0 || hi > rows || lo >= hi {
		return fmt.Errorf("strategy: row range [%d,%d) invalid for table of %d rows", lo, hi, rows)
	}
	return nil
}

// fullRange reports whether [lo, hi) covers the whole table, in which case
// strategies keep the calibrated full-run counter accounting (pinned to
// Model by the tests).
func fullRange(rows, lo, hi int) bool { return lo == 0 && hi == rows }

// accumulateRow adds leaf·row into ans lane-wise (mod 2^32).
func accumulateRow(ans []uint32, leaf uint32, row []uint32) {
	for i, v := range row {
		ans[i] += leaf * v
	}
}

// accumulateTile is the executed form of the paper's query-tiled matmul
// (§3.1, §3.2.4): ONE streaming pass over rows [lo, hi) accumulates every
// tile query's dot product at once. Each row is read from memory once and
// reused leaves-wide from cache, instead of the table being streamed once
// per query — the traffic tableReadBytes has always modeled. leaves[q][j-lo]
// is query q's leaf share for row j; answers[q] accumulates lane-wise mod
// 2^32 (order-independent, so tiled output is bit-identical to the scalar
// per-query pass). The table arrives as a TableView and is consumed
// chunk-by-chunk: an in-RAM view is one maximal chunk (so the SIMD
// kernel's per-call work is unchanged), a delta-epoch or paged view is
// several — the per-lane summation order is the same either way. The only
// error sources are the view's (a paged backing's read failing mid-pass).
func accumulateTile(v TableView, lo, hi int, leaves [][]uint32, answers [][]uint32) error {
	lanes := v.Lanes()
	// Contiguous fast path: one kernel call over the zero-copy row slice,
	// and — because the chunk-callback closure is only constructed on the
	// fragmented path below — no per-tile allocation, which the engine's
	// steady-state Answer path counts on.
	if data, err := v.RowRange(lo, hi); err == nil {
		accumulateChunk(data, lanes, lo, lo, leaves, answers)
		return nil
	}
	return v.Chunks(lo, hi, func(c Chunk) error {
		accumulateChunk(c.Data, lanes, c.Row, lo, leaves, answers)
		return nil
	})
}

// accumulateChunk accumulates one contiguous run (rows [row, row+n) where
// n = len(data)/lanes) of a tile pass whose leaves are indexed from
// leafLo. Kernel dispatch: rows of 8+ lanes go through the AVX2 multiply-
// accumulate kernel when the CPU has it (and the build isn't purego);
// everything else — narrow rows, other architectures, older CPUs — takes
// the scalar loop. Both paths are bit-identical by construction: mod-2^32
// lane adds are order-independent.
func accumulateChunk(data []uint32, lanes, row, leafLo int, leaves [][]uint32, answers [][]uint32) {
	if avx2OK && lanes >= 8 {
		accumulateChunkAVX2(data, lanes, row, leafLo, leaves, answers)
		return
	}
	accumulateChunkScalar(data, lanes, row, leafLo, leaves, answers)
}

// accumulateChunkScalar is the portable accumulate loop, the dispatch
// fallback and the reference the SIMD kernel's property tests pin against.
func accumulateChunkScalar(data []uint32, lanes, row, leafLo int, leaves [][]uint32, answers [][]uint32) {
	// The row is staged through a fixed-size stack buffer: answers and the
	// table share an element type, so without the copy the compiler must
	// reload every row element once per query against possible aliasing.
	// (The SIMD kernel needs no such staging — its loads are explicit and
	// unaligned-tolerant — so rowBuf's size only bounds this scalar branch;
	// wider rows take the direct-row loop below.)
	var rowBuf [64]uint32
	n := len(data) / lanes
	if lanes <= len(rowBuf) {
		for j := 0; j < n; j++ {
			rw := rowBuf[:lanes]
			copy(rw, data[j*lanes:(j+1)*lanes])
			for q, lv := range leaves {
				accumulateRow(answers[q], lv[row+j-leafLo], rw)
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		rw := data[j*lanes : (j+1)*lanes]
		for q, lv := range leaves {
			accumulateRow(answers[q], lv[row+j-leafLo], rw)
		}
	}
}

// NewAnswers allocates a batch of answer accumulators backed by one flat
// zeroed slice — two allocations for the whole batch, the only ones the
// steady-state hot path retains. engine.Replica uses it for the answers
// it returns; strategies use it for Run/RunRange results.
func NewAnswers(n, lanes int) [][]uint32 {
	flat := make([]uint32, n*lanes)
	ans := make([][]uint32, n)
	for i := range ans {
		ans[i] = flat[i*lanes : (i+1)*lanes : (i+1)*lanes]
	}
	return ans
}

// validateDst checks a RunRangeInto destination batch.
func validateDst(keys []*dpf.Key, lanes int, dst [][]uint32) error {
	if len(dst) != len(keys) {
		return fmt.Errorf("strategy: %d answer buffers for %d keys", len(dst), len(keys))
	}
	for q := range dst {
		if len(dst[q]) != lanes {
			return fmt.Errorf("strategy: answer buffer %d has %d lanes, table has %d", q, len(dst[q]), lanes)
		}
	}
	return nil
}

// tableReadBytes models the global-memory traffic of the fused/tiled dot
// product: one table pass per tile of queries.
func tableReadBytes(batch, bits, lanes int) int64 {
	rows := int64(1) << uint(bits)
	tiles := int64((batch + tileQueries - 1) / tileQueries)
	return tiles * rows * int64(lanes) * 4
}

// rangeReadBytes is tableReadBytes for a partial row range: one pass over
// the range's rows per tile of queries.
func rangeReadBytes(batch, lanes, rows int) int64 {
	tiles := int64((batch + tileQueries - 1) / tileQueries)
	return tiles * int64(rows) * int64(lanes) * 4
}

// dotArithCycles models the multiply-accumulate work of the dot product
// (one lane-cycle per MAC).
func dotArithCycles(batch, bits, lanes int) float64 {
	rows := float64(int64(1) << uint(bits))
	return float64(batch) * rows * float64(lanes)
}

// finishReport converts a kernel profile into a Report.
func finishReport(dev *gpu.Device, name string, prg dpf.PRG, bits, batch, lanes int, p gpu.KernelProfile) (Report, error) {
	lat, util, err := dev.Estimate(p)
	if err != nil {
		return Report{}, fmt.Errorf("strategy %s (L=2^%d B=%d): %w", name, bits, batch, err)
	}
	r := Report{
		Strategy:     name,
		PRG:          prg.Name(),
		Bits:         bits,
		Batch:        batch,
		Lanes:        lanes,
		PRFBlocks:    p.Stats.PRFBlocks,
		PeakMemBytes: p.Stats.PeakMemBytes,
		Latency:      lat,
		Utilization:  util,
	}
	if lat > 0 {
		r.Throughput = float64(batch) / lat.Seconds()
	}
	return r, nil
}

// timeFromSeconds converts a float second count to a Duration.
func timeFromSeconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// TuneBatch sweeps power-of-two batch sizes and returns the batch that
// maximizes modeled throughput subject to a latency budget (0 = unlimited)
// and device memory. This is the paper's per-experiment batch tuning
// ("batch size is tuned for each experiment separately", §5.1).
func TuneBatch(dev *gpu.Device, s Strategy, prg dpf.PRG, bits, lanes int, maxLatency time.Duration) (Report, error) {
	var best Report
	found := false
	for b := 1; b <= 1<<17; b *= 2 {
		r, err := s.Model(dev, prg, bits, b, lanes)
		if err != nil {
			break // OOM: larger batches only get worse
		}
		if maxLatency > 0 && r.Latency > maxLatency {
			if !found {
				// Even batch 1 exceeds the budget; report it anyway so
				// callers can see by how much.
				return r, fmt.Errorf("strategy: no batch size meets latency budget %v (batch 1 takes %v)", maxLatency, r.Latency)
			}
			break
		}
		if !found || r.Throughput > best.Throughput {
			best, found = r, true
		}
	}
	if !found {
		return Report{}, fmt.Errorf("strategy: no feasible batch size for %s at L=2^%d", s.Name(), bits)
	}
	return best, nil
}
