package strategy

import (
	"fmt"
	"sync"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// CPUBaseline is the optimized CPU DPF-PIR the paper compares against
// (Google Research's distributed_point_functions library on a Xeon Gold
// 6230 with AES-NI): a full level-order expansion followed by the table dot
// product, run on a configurable number of threads.
//
// Run really executes on the host; Model prices the same work on the
// configured CPUModel with hardware-crypto cycle constants, reproducing
// Table 4's single-thread and 32-thread rows.
type CPUBaseline struct {
	// Threads is the worker count (1 = single-threaded row of Table 4).
	Threads int
	// CPU is the modeled processor; nil means XeonGold6230.
	CPU *gpu.CPUModel
	// Workers bounds the executed table pass's row-block fan-out. It is
	// separate from Threads, which prices the modeled CPU (and names the
	// strategy). Set via WithWorkers.
	Workers int
}

// withWorkers implements workerTunable.
func (c CPUBaseline) withWorkers(n int) Strategy {
	c.Workers = n
	return c
}

// Name implements Strategy.
func (c CPUBaseline) Name() string { return fmt.Sprintf("cpu-%dt", c.threads()) }

func (c CPUBaseline) threads() int {
	if c.Threads <= 0 {
		return 1
	}
	return c.Threads
}

func (c CPUBaseline) cpu() *gpu.CPUModel {
	if c.CPU == nil {
		return gpu.XeonGold6230()
	}
	return c.CPU
}

// Run implements Strategy. Queries are distributed over threads; each query
// is expanded level by level exactly like the reference library, then a
// query-tiled pass streams the table once per tile of tileQueries queries.
func (c CPUBaseline) Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab.Bits()); err != nil {
		return nil, err
	}
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := c.runFullInto(prg, keys, tab.View(), ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// cpuMemBytes models the per-batch working set: the level-order expansion's
// ping-pong frontier (G + G/2 nodes) plus the answer accumulators.
func cpuMemBytes(batch, bits, lanes, early int) int64 {
	frontier := int64(1) << uint(bits-early)
	return int64(batch) * (frontier*nodeBytes*3/2 + int64(lanes)*4)
}

func (c CPUBaseline) runFullInto(prg dpf.PRG, keys []*dpf.Key, v TableView, ctr *gpu.Counters, dst [][]uint32) error {
	bits := dpf.DomainBits(v.Rows())
	lanes := v.Lanes()
	early := keys[0].Early
	domain := int64(1) << uint(bits)
	mem := cpuMemBytes(len(keys), bits, lanes, early)
	ctr.Alloc(mem)
	defer ctr.Free(mem)

	for t := 0; t < len(keys); t += tileQueries {
		te := tileEnd(t, len(keys))
		tile := keys[t:te]
		lt := getLeafTile(len(tile), int(domain))
		gpu.ParallelFor(len(tile), func(i int) {
			sc := getWalkScratch()
			dpf.EvalFullInto(prg, tile[i], lt.rows[i], &sc.frontier)
			ctr.AddPRFBlocks(treeBlocks(bits, tile[i].Early))
			sc.release()
		})
		if err := accumulateTilePar(v, 0, v.Rows(), lt.rows, dst[t:te], c.Workers); err != nil {
			lt.release()
			return err
		}
		lt.release()
	}
	ctr.AddRead(int64(len(keys)) * int64(v.Rows()) * int64(lanes) * 4)
	ctr.AddWrite(int64(len(keys)) * int64(lanes) * 4)
	return nil
}

// RunRange implements Strategy: the range is evaluated with the pruned
// depth-first dpf.EvalRange, costing O(range + log L) PRF calls per key
// instead of the full O(L) expansion.
func (c CPUBaseline) RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab.Bits()); err != nil {
		return nil, err
	}
	if err := validateRange(tab.NumRows, lo, hi); err != nil {
		return nil, err
	}
	dst := NewAnswers(len(keys), tab.Lanes)
	if fullRange(tab.NumRows, lo, hi) {
		if err := c.runFullInto(prg, keys, tab.View(), ctr, dst); err != nil {
			return nil, err
		}
		return dst, nil
	}
	if err := c.runRangeInto(prg, keys, tab.View(), lo, hi, ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRangeInto implements Strategy.
func (c CPUBaseline) RunRangeInto(prg dpf.PRG, keys []*dpf.Key, v TableView, lo, hi int, ctr *gpu.Counters, dst [][]uint32) error {
	if err := validateKeys(keys, dpf.DomainBits(v.Rows())); err != nil {
		return err
	}
	if err := validateRange(v.Rows(), lo, hi); err != nil {
		return err
	}
	if err := validateDst(keys, v.Lanes(), dst); err != nil {
		return err
	}
	if fullRange(v.Rows(), lo, hi) {
		return c.runFullInto(prg, keys, v, ctr, dst)
	}
	return c.runRangeInto(prg, keys, v, lo, hi, ctr, dst)
}

func (c CPUBaseline) runRangeInto(prg dpf.PRG, keys []*dpf.Key, v TableView, lo, hi int, ctr *gpu.Counters, dst [][]uint32) error {
	bits := dpf.DomainBits(v.Rows())
	lanes := v.Lanes()
	rows := hi - lo
	mem := int64(len(keys)) * (int64(rows)*4 + int64(lanes)*4)
	ctr.Alloc(mem)
	defer ctr.Free(mem)

	var firstErr error
	var errMu sync.Mutex
	for t := 0; t < len(keys); t += tileQueries {
		te := tileEnd(t, len(keys))
		tile := keys[t:te]
		lt := getLeafTile(len(tile), rows)
		gpu.ParallelFor(len(tile), func(i int) {
			if err := dpf.EvalRange(prg, tile[i], uint64(lo), uint64(hi), lt.rows[i]); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			// Pruned DFS: ~2·(range groups) blocks for the subtrees plus
			// the root-to-range path down the shortened tree.
			early := tile[i].Early
			groups := (int64(rows) + int64(1)<<uint(early) - 1) >> uint(early)
			ctr.AddPRFBlocks(2*groups - 2 + 2*int64(bits-early))
		})
		if firstErr == nil {
			if err := accumulateTilePar(v, lo, hi, lt.rows, dst[t:te], c.Workers); err != nil {
				firstErr = err
			}
		}
		lt.release()
	}
	if firstErr != nil {
		return firstErr
	}
	ctr.AddRead(int64(len(keys)) * int64(rows) * int64(lanes) * 4)
	ctr.AddWrite(int64(len(keys)) * int64(lanes) * 4)
	return nil
}

// Model implements Strategy. dev is unused; the CPU model prices the work
// (the reference CPU library performs the same §3.1 early termination, so
// its calibrated per-block constant re-anchors the same way).
func (c CPUBaseline) Model(_ *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error) {
	early := modelEarly(bits)
	blocks := int64(batch) * treeBlocks(bits, early)
	cycles := float64(blocks)*prgCyclesPerBlock(prg.CPUCyclesPerBlock(), early) + dotArithCycles(batch, bits, lanes)*0.5
	lat := c.cpu().CPUTime(cycles, c.threads())
	r := Report{
		Strategy:     c.Name(),
		PRG:          prg.Name(),
		Bits:         bits,
		Batch:        batch,
		Lanes:        lanes,
		PRFBlocks:    blocks,
		PeakMemBytes: cpuMemBytes(batch, bits, lanes, early),
		Latency:      lat,
		Utilization:  float64(min(c.threads(), c.cpu().Cores)) / float64(c.cpu().Cores),
	}
	if lat > 0 {
		r.Throughput = float64(batch) / lat.Seconds()
	}
	return r, nil
}
