package strategy

import (
	"sync"

	"gpudpf/internal/dpf"
)

// This file holds the pooled scratch the tiled hot paths run through. Two
// kinds of state recur across strategies: a tile of leaf-share vectors
// (what accumulateTile consumes) and per-goroutine tree-walk buffers
// (frontiers, batch scratch, per-key path states). Both grow to the
// largest shape seen and are recycled through sync.Pools, so the
// steady-state Run/RunRange path performs no allocations beyond the
// returned answer slices.

// leafTile is a pooled tile of leaf-share vectors: queries × rows values
// in one flat backing, with per-query headers.
type leafTile struct {
	flat []uint32
	rows [][]uint32
}

var leafTilePool = sync.Pool{New: func() any { return new(leafTile) }}

// getLeafTile returns a tile sized queries × rows. Contents are stale —
// every walker overwrites its full in-range span before accumulateTile
// reads it.
func getLeafTile(queries, rows int) *leafTile {
	lt := leafTilePool.Get().(*leafTile)
	need := queries * rows
	if cap(lt.flat) < need {
		lt.flat = make([]uint32, need)
	}
	lt.flat = lt.flat[:need]
	if cap(lt.rows) < queries {
		lt.rows = make([][]uint32, queries)
	}
	lt.rows = lt.rows[:queries]
	for q := range lt.rows {
		lt.rows[q] = lt.flat[q*rows : (q+1)*rows]
	}
	return lt
}

func (lt *leafTile) release() { leafTilePool.Put(lt) }

// walkScratch is one goroutine's reusable expansion state: the membound
// per-depth node groups, a breadth-first frontier, the PRG batch scratch,
// per-key path states for the tiled path-per-leaf descent, and small local
// accumulator/buffer space.
type walkScratch struct {
	levels   [][]dpf.Seed // membound: node group per depth, cap 2K each
	levelT   [][]uint8
	frontier dpf.FrontierScratch // breadth-first ping-pong levels
	batch    dpf.BatchScratch
	seeds    []dpf.Seed // per-key path states (branch tile walk)
	ts       []uint8
	cws      []dpf.CW   // per-key correction words, one level at a time
	local    []uint32   // chunk-local answer accumulators, tile × lanes
	localHdr [][]uint32 // per-query headers into local
	buf      []uint32   // range leaf buffer (cpu/multigpu EvalRange)
}

// coopScratch holds CoopGroups' domain-wide ping-pong level buffers. It
// pools separately from walkScratch on purpose: one large-table coop run
// grows these to O(domain) bytes, and a shared pool would recirculate
// that footprint through the strategies that only need kilobytes.
type coopScratch struct {
	pingS []dpf.Seed
	pongS []dpf.Seed
	pingT []uint8
	pongT []uint8
}

var coopScratchPool = sync.Pool{New: func() any { return new(coopScratch) }}

func getCoopScratch() *coopScratch { return coopScratchPool.Get().(*coopScratch) }

func (c *coopScratch) release() { coopScratchPool.Put(c) }

// growPing returns domain-wide ping-pong level buffers (contents stale).
func (c *coopScratch) growPing(n int) (cur []dpf.Seed, curT []uint8, next []dpf.Seed, nextT []uint8) {
	if cap(c.pingS) < n {
		c.pingS, c.pongS = make([]dpf.Seed, n), make([]dpf.Seed, n)
		c.pingT, c.pongT = make([]uint8, n), make([]uint8, n)
	}
	return c.pingS[:n], c.pingT[:n], c.pongS[:n], c.pongT[:n]
}

var walkScratchPool = sync.Pool{New: func() any { return new(walkScratch) }}

func getWalkScratch() *walkScratch { return walkScratchPool.Get().(*walkScratch) }

func (w *walkScratch) release() { walkScratchPool.Put(w) }

// growLevels sizes the membound group buffers: depths+1 levels of capacity
// 2k nodes each (a ≤k-wide group expands to ≤2k children before the walk
// splits it).
func (w *walkScratch) growLevels(depths, k int) {
	if len(w.levels) < depths+1 {
		lv := make([][]dpf.Seed, depths+1)
		lt := make([][]uint8, depths+1)
		copy(lv, w.levels)
		copy(lt, w.levelT)
		w.levels, w.levelT = lv, lt
	}
	for d := 0; d <= depths; d++ {
		if cap(w.levels[d]) < 2*k {
			w.levels[d] = make([]dpf.Seed, 2*k)
			w.levelT[d] = make([]uint8, 2*k)
		}
	}
}

// growKeys sizes the per-key path-state buffers for a tile of n keys.
func (w *walkScratch) growKeys(n int) {
	if cap(w.seeds) < n {
		w.seeds = make([]dpf.Seed, n)
		w.ts = make([]uint8, n)
	}
	w.seeds, w.ts = w.seeds[:n], w.ts[:n]
}

// growCWMat returns a levels×n correction-word matrix (row per level,
// contents stale) so the per-leaf descent can gather each key's CWs once
// per chunk instead of once per leaf.
func (w *walkScratch) growCWMat(levels, n int) []dpf.CW {
	need := levels * n
	if cap(w.cws) < need {
		w.cws = make([]dpf.CW, need)
	}
	w.cws = w.cws[:need]
	return w.cws
}

// growLocal returns a zeroed tile × lanes local accumulator matrix whose
// backing and headers both live in the scratch.
func (w *walkScratch) growLocal(queries, lanes int) [][]uint32 {
	need := queries * lanes
	if cap(w.local) < need {
		w.local = make([]uint32, need)
	}
	w.local = w.local[:need]
	clear(w.local)
	if cap(w.localHdr) < queries {
		w.localHdr = make([][]uint32, queries)
	}
	w.localHdr = w.localHdr[:queries]
	for q := range w.localHdr {
		w.localHdr[q] = w.local[q*lanes : (q+1)*lanes]
	}
	return w.localHdr
}

// growBuf returns an n-wide uint32 buffer (contents stale).
func (w *walkScratch) growBuf(n int) []uint32 {
	if cap(w.buf) < n {
		w.buf = make([]uint32, n)
	}
	w.buf = w.buf[:n]
	return w.buf
}

// tileEnd clips a tile starting at q to the batch size.
func tileEnd(q, n int) int {
	if q+tileQueries < n {
		return q + tileQueries
	}
	return n
}
