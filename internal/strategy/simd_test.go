package strategy

import (
	"fmt"
	"math/rand"
	"testing"
)

// naiveAccumulate is the straight-line definition of the tiled matmul,
// independent of both accumulateRow and the SIMD kernel: answers[q][l] +=
// leaves[q][j-lo] * tab.Data[j*lanes+l] mod 2^32 for every row in [lo, hi).
func naiveAccumulate(tab *Table, lo, hi int, leaves [][]uint32, answers [][]uint32) {
	for j := lo; j < hi; j++ {
		for q := range leaves {
			leaf := leaves[q][j-lo]
			for l := 0; l < tab.Lanes; l++ {
				answers[q][l] += leaf * tab.Data[j*tab.Lanes+l]
			}
		}
	}
}

// accumulateTileScalar forces the scalar kernel over the view's chunks —
// the reference implementation the dispatched kernel must match.
func accumulateTileScalar(v TableView, lo, hi int, leaves, answers [][]uint32) error {
	lanes := v.Lanes()
	return v.Chunks(lo, hi, func(c Chunk) error {
		accumulateChunkScalar(c.Data, lanes, c.Row, lo, leaves, answers)
		return nil
	})
}

// randomLeafTile fills a tile-shaped leaf matrix with arbitrary values:
// the accumulate kernels are pure mod-2^32 arithmetic, so the property
// holds for any inputs, not just genuine DPF shares.
func randomLeafTile(rng *rand.Rand, queries, rows int) [][]uint32 {
	lv := make([][]uint32, queries)
	for q := range lv {
		lv[q] = make([]uint32, rows)
		for j := range lv[q] {
			lv[q][j] = rng.Uint32()
		}
	}
	return lv
}

// TestAccumulateTileKernelMatchesScalar pins the dispatched accumulateTile
// — the AVX2 kernel on hosts that have it, the scalar loop elsewhere and
// under -tags purego — bit-identical to accumulateTileScalar and to the
// naive definition, across lane counts straddling every dispatch boundary
// (below the 8-lane SIMD floor, non-multiples of 8 exercising the scalar
// tail, and above the 64-lane rowBuf staging limit), tile sizes 1..32, and
// random row ranges that straddle the simdRowBlock blocking.
func TestAccumulateTileKernelMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1606))
	for _, lanes := range []int{1, 4, 8, 13, 16, 64, 100} {
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			rows := 3*simdRowBlock + 17
			tab := buildTable(t, rows, lanes, int64(lanes))
			for tile := 1; tile <= tileQueries; tile++ {
				lo := rng.Intn(rows)
				hi := lo + 1 + rng.Intn(rows-lo)
				lv := randomLeafTile(rng, tile, hi-lo)
				got := NewAnswers(tile, lanes)
				wantScalar := NewAnswers(tile, lanes)
				wantNaive := NewAnswers(tile, lanes)
				if err := accumulateTile(tab.View(), lo, hi, lv, got); err != nil {
					t.Fatal(err)
				}
				if err := accumulateTileScalar(tab.View(), lo, hi, lv, wantScalar); err != nil {
					t.Fatal(err)
				}
				naiveAccumulate(tab, lo, hi, lv, wantNaive)
				for q := range got {
					for l := range got[q] {
						if got[q][l] != wantScalar[q][l] {
							t.Fatalf("tile=%d rows=[%d,%d) q=%d lane=%d: dispatch %d != scalar %d",
								tile, lo, hi, q, l, got[q][l], wantScalar[q][l])
						}
						if got[q][l] != wantNaive[q][l] {
							t.Fatalf("tile=%d rows=[%d,%d) q=%d lane=%d: dispatch %d != naive %d",
								tile, lo, hi, q, l, got[q][l], wantNaive[q][l])
						}
					}
				}
			}
		})
	}
}

// BenchmarkAccumulateKernel measures the answer kernel A/B on the bench
// table shape (64-byte rows, full 32-query tile): "dispatch" is whatever
// accumulateTile selects on this host (the AVX2 kernel when available),
// "scalar" forces the fallback loop. The gap is the SIMD win in isolation,
// without the AES expansion half of the hot path.
func BenchmarkAccumulateKernel(b *testing.B) {
	const rows, lanes = 1 << 16, 16
	tab, err := NewTable(rows, lanes)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	lv := randomLeafTile(rng, tileQueries, rows)
	ans := NewAnswers(tileQueries, lanes)
	for _, k := range []struct {
		name string
		fn   func(TableView, int, int, [][]uint32, [][]uint32) error
	}{
		{"dispatch", accumulateTile},
		{"scalar", accumulateTileScalar},
	} {
		b.Run(k.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(rows) * int64(lanes) * 4)
			v := tab.View()
			for i := 0; i < b.N; i++ {
				if err := k.fn(v, 0, rows, lv, ans); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestAccumulateTileWideLanes is the >64-lane regression test: rows wider
// than the scalar path's rowBuf staging buffer take its direct-row branch,
// and on AVX2 hosts the same width runs the SIMD kernel with a 4-lane
// scalar tail — both must agree with the naive definition. (Before the
// kernel dispatch split, only the ≤64-lane staging branch was ever
// exercised by the strategy tests.)
func TestAccumulateTileWideLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(1607))
	const lanes, rows = 100, 517
	tab := buildTable(t, rows, lanes, 7)
	for _, tile := range []int{1, 5, tileQueries} {
		lv := randomLeafTile(rng, tile, rows)
		got := NewAnswers(tile, lanes)
		want := NewAnswers(tile, lanes)
		if err := accumulateTile(tab.View(), 0, rows, lv, got); err != nil {
			t.Fatal(err)
		}
		naiveAccumulate(tab, 0, rows, lv, want)
		for q := range got {
			for l := range got[q] {
				if got[q][l] != want[q][l] {
					t.Fatalf("tile=%d q=%d lane=%d: got %d want %d", tile, q, l, got[q][l], want[q][l])
				}
			}
		}
	}
}
