package strategy

import (
	"math/rand"
	"testing"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// TestRunRangePartition: for every strategy, summing the partial shares of
// ranges that partition [0, NumRows) reproduces Run's answers exactly —
// the linearity engine.Replica's sharding relies on.
func TestRunRangePartition(t *testing.T) {
	const rows, lanes = 300, 3 // non-power-of-two rows exercise the domain tail
	prg := dpf.NewAESPRG()
	tab, err := NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	indices := []uint64{0, 13, 255, 299}
	keys := make([]*dpf.Key, len(indices))
	for q, idx := range indices {
		k0, _, err := dpf.Gen(prg, idx, tab.Bits(), []uint32{1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		keys[q] = &k0
	}
	// Uneven cuts, including a range that ends exactly at NumRows (inside
	// the padded domain tail).
	cuts := []int{0, 1, 97, 256, rows}

	for _, s := range []Strategy{
		CPUBaseline{Threads: 2},
		BranchParallel{},
		LevelByLevel{},
		MemBoundTree{K: 8, Fused: true},
		MemBoundTree{K: 8, Fused: false},
		CoopGroups{},
		MultiGPU{Devices: 2, K: 8},
	} {
		t.Run(s.Name(), func(t *testing.T) {
			var ctr gpu.Counters
			want, err := s.Run(prg, keys, tab, &ctr)
			if err != nil {
				t.Fatal(err)
			}
			got := make([][]uint32, len(keys))
			for q := range got {
				got[q] = make([]uint32, lanes)
			}
			for c := 0; c+1 < len(cuts); c++ {
				part, err := s.RunRange(prg, keys, tab, cuts[c], cuts[c+1], &ctr)
				if err != nil {
					t.Fatalf("range [%d,%d): %v", cuts[c], cuts[c+1], err)
				}
				for q := range part {
					for l := range part[q] {
						got[q][l] += part[q][l]
					}
				}
			}
			for q := range want {
				for l := range want[q] {
					if got[q][l] != want[q][l] {
						t.Fatalf("key %d lane %d: partition sum %d != full run %d", q, l, got[q][l], want[q][l])
					}
				}
			}
		})
	}
}

// TestRunRangeValidation: bad ranges are rejected.
func TestRunRangeValidation(t *testing.T) {
	prg := dpf.NewAESPRG()
	tab, err := NewTable(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	k0, _, err := dpf.Gen(prg, 3, tab.Bits(), []uint32{1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	keys := []*dpf.Key{&k0}
	s := MemBoundTree{K: 8, Fused: true}
	var ctr gpu.Counters
	for _, r := range [][2]int{{-1, 4}, {4, 4}, {8, 4}, {0, 17}} {
		if _, err := s.RunRange(prg, keys, tab, r[0], r[1], &ctr); err == nil {
			t.Errorf("range [%d,%d) accepted", r[0], r[1])
		}
	}
}
