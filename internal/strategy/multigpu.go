package strategy

import (
	"fmt"
	"sync"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// MultiGPU implements the paper's multi-GPU scaling scheme (§3.2.7): when
// one table exceeds a single device's memory, each of N devices evaluates
// the DPF over a 1/N shard of the index range and the partial dot products
// are summed — correct because the final reduction is linear. Each device
// effectively sees a table of L/N entries, so per-query latency drops
// ~linearly with N, while a larger batch is needed to keep every device
// utilized (the paper's closing observation, verified by the model).
type MultiGPU struct {
	// Devices is the shard count N (>= 1).
	Devices int
	// K is the per-device frontier width (0 = DefaultK). Sharded
	// execution always fuses the dot product.
	K int
	// Workers bounds each (tile, shard) job's row-block fan-out — useful
	// when the job count is below the core count (few shards, one tile).
	// 0 or 1 = sequential per job. Set via WithWorkers.
	Workers int
}

// withWorkers implements workerTunable.
func (m MultiGPU) withWorkers(n int) Strategy {
	m.Workers = n
	return m
}

// Name implements Strategy.
func (m MultiGPU) Name() string { return fmt.Sprintf("multigpu-%d", m.n()) }

func (m MultiGPU) n() int {
	if m.Devices < 1 {
		return 1
	}
	return m.Devices
}

func (m MultiGPU) k() int {
	if m.K <= 0 {
		return DefaultK
	}
	return m.K
}

// Run implements Strategy: every (query tile, shard) pair really evaluates
// its index range via the pruned DFS, and one streaming pass over the
// shard's rows accumulates the whole tile's partial answers.
func (m MultiGPU) Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab.Bits()); err != nil {
		return nil, err
	}
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := m.runInto(prg, keys, tab.View(), 0, uint64(1)<<uint(tab.Bits()), ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRange implements Strategy: the device shards split [lo, hi) instead of
// the whole domain, so a replica-level shard nests cleanly inside the
// multi-device split. Ranges narrower than the device count use one device
// per leaf.
func (m MultiGPU) RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error) {
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := m.RunRangeInto(prg, keys, tab.View(), lo, hi, ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRangeInto implements Strategy.
func (m MultiGPU) RunRangeInto(prg dpf.PRG, keys []*dpf.Key, v TableView, lo, hi int, ctr *gpu.Counters, dst [][]uint32) error {
	if err := validateKeys(keys, dpf.DomainBits(v.Rows())); err != nil {
		return err
	}
	if err := validateRange(v.Rows(), lo, hi); err != nil {
		return err
	}
	if err := validateDst(keys, v.Lanes(), dst); err != nil {
		return err
	}
	if m.n() > hi-lo {
		m.Devices = hi - lo
	}
	if fullRange(v.Rows(), lo, hi) {
		// Whole-table range: walk the full padded domain like Run, keeping
		// the calibrated counter accounting (cf. fullRange in the other
		// strategies).
		return m.runInto(prg, keys, v, 0, uint64(1)<<uint(dpf.DomainBits(v.Rows())), ctr, dst)
	}
	return m.runInto(prg, keys, v, uint64(lo), uint64(hi), ctr, dst)
}

// runInto evaluates leaves [rlo, rhi) in domain coordinates, split across
// the modeled devices, accumulating into dst.
func (m MultiGPU) runInto(prg dpf.PRG, keys []*dpf.Key, v TableView, rlo, rhi uint64, ctr *gpu.Counters, dst [][]uint32) error {
	n := m.n()
	bits := dpf.DomainBits(v.Rows())
	lanes := v.Lanes()
	domain := uint64(1) << uint(bits)
	if uint64(n) > rhi-rlo || rhi > domain {
		return fmt.Errorf("strategy: %d shards exceed range [%d,%d) of domain %d", n, rlo, rhi, domain)
	}
	// Modeled per-device working set mirrors the fused membound traversal
	// on a table of L/N rows (clamping the keys' termination depth to what
	// a tiny shard tree can hold).
	early := keys[0].Early
	inner := MemBoundTree{K: m.k(), Fused: true}
	shardBits := shardDepth(bits, n)
	mem := int64(n) * inner.memBytes(len(keys), shardBits, lanes, dpf.ClampEarly(early, shardBits))
	ctr.Alloc(mem)
	defer ctr.Free(mem)
	ctr.AddLaunch()

	var mu sync.Mutex
	type job struct{ tile, shard int }
	tiles := (len(keys) + tileQueries - 1) / tileQueries
	jobs := make([]job, 0, tiles*n)
	for t := 0; t < tiles; t++ {
		for s := 0; s < n; s++ {
			jobs = append(jobs, job{t * tileQueries, s})
		}
	}
	var firstErr error
	var errMu sync.Mutex
	width := rhi - rlo
	gpu.ParallelFor(len(jobs), func(i int) {
		j := jobs[i]
		te := tileEnd(j.tile, len(keys))
		tile := keys[j.tile:te]
		lo := rlo + uint64(j.shard)*width/uint64(n)
		hi := rlo + uint64(j.shard+1)*width/uint64(n)
		lt := getLeafTile(len(tile), int(hi-lo))
		defer lt.release()
		for q, k := range tile {
			if err := dpf.EvalRange(prg, k, lo, hi, lt.rows[q]); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			// Pruned DFS costs ~2·(span groups) + 2·(walked depth) blocks
			// for the shard path down the shortened tree.
			groups := (int64(hi-lo) + int64(1)<<uint(early) - 1) >> uint(early)
			ctr.AddPRFBlocks(2*groups - 2 + 2*int64(bits-early))
		}
		rowHi := hi
		if rowHi > uint64(v.Rows()) {
			rowHi = uint64(v.Rows())
		}
		sc := getWalkScratch()
		local := sc.growLocal(len(tile), lanes)
		if lo < rowHi {
			if err := accumulateTilePar(v, int(lo), int(rowHi), lt.rows, local, m.Workers); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				sc.release()
				return
			}
		}
		mu.Lock()
		for q := range local {
			for l := range local[q] {
				dst[j.tile+q][l] += local[q][l]
			}
		}
		mu.Unlock()
		sc.release()
	})
	if firstErr != nil {
		return firstErr
	}
	if rlo == 0 && rhi == uint64(1)<<uint(bits) {
		ctr.AddRead(tableReadBytes(len(keys), bits, lanes))
	} else {
		ctr.AddRead(rangeReadBytes(len(keys), lanes, int(width)))
	}
	ctr.AddWrite(int64(len(keys)) * int64(lanes) * 4 * int64(n))
	return nil
}

// Model implements Strategy: each device runs the fused membound model on
// an L/N-entry shard; devices run in parallel, so batch latency is the
// shard latency plus a small cross-device reduction.
func (m MultiGPU) Model(dev *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error) {
	n := m.n()
	inner := MemBoundTree{K: m.k(), Fused: true}
	shardBits := shardDepth(bits, n)
	rep, err := inner.Model(dev, prg, shardBits, batch, lanes)
	if err != nil {
		return Report{}, fmt.Errorf("strategy %s: %w", m.Name(), err)
	}
	// Cross-device reduction: each device ships batch×lanes partial sums.
	reduceSec := float64(int64(n)*int64(batch)*int64(lanes)*4) / dev.MemBandwidthBps
	rep.Strategy = m.Name()
	rep.Bits = bits
	// Total fleet work: each shard walks its own early-terminated subtree
	// and re-derives its root-to-shard path, so sharding costs
	// 2·(bits-early) extra blocks per (query, shard) over the
	// single-device optimum. Priced with the full tree's default
	// termination depth — the keys' wire format doesn't change when the
	// evaluation is sharded.
	early := modelEarly(bits)
	shardGroups := (int64(1)<<uint(shardBits) + int64(1)<<uint(early) - 1) >> uint(early)
	rep.PRFBlocks = int64(n)*int64(batch)*(2*shardGroups-2) + int64(batch)*int64(n)*2*int64(bits-early)
	rep.PeakMemBytes = int64(n) * rep.PeakMemBytes // fleet total
	rep.Latency += timeFromSeconds(reduceSec)
	if rep.Latency > 0 {
		rep.Throughput = float64(batch) / rep.Latency.Seconds()
	}
	return rep, nil
}

// shardDepth is the tree depth of one shard's effective table.
func shardDepth(bits, n int) int {
	d := bits
	for n > 1 {
		d--
		n /= 2
	}
	if d < 1 {
		d = 1
	}
	return d
}
