package strategy

import (
	"fmt"
	"sync"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// MultiGPU implements the paper's multi-GPU scaling scheme (§3.2.7): when
// one table exceeds a single device's memory, each of N devices evaluates
// the DPF over a 1/N shard of the index range and the partial dot products
// are summed — correct because the final reduction is linear. Each device
// effectively sees a table of L/N entries, so per-query latency drops
// ~linearly with N, while a larger batch is needed to keep every device
// utilized (the paper's closing observation, verified by the model).
type MultiGPU struct {
	// Devices is the shard count N (>= 1).
	Devices int
	// K is the per-device frontier width (0 = DefaultK). Sharded
	// execution always fuses the dot product.
	K int
}

// Name implements Strategy.
func (m MultiGPU) Name() string { return fmt.Sprintf("multigpu-%d", m.n()) }

func (m MultiGPU) n() int {
	if m.Devices < 1 {
		return 1
	}
	return m.Devices
}

func (m MultiGPU) k() int {
	if m.K <= 0 {
		return DefaultK
	}
	return m.K
}

// Run implements Strategy: every (query, shard) pair really evaluates its
// index range via the pruned DFS and accumulates the partial answer.
func (m MultiGPU) Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab); err != nil {
		return nil, err
	}
	return m.run(prg, keys, tab, 0, uint64(1)<<uint(tab.Bits()), ctr)
}

// RunRange implements Strategy: the device shards split [lo, hi) instead of
// the whole domain, so a replica-level shard nests cleanly inside the
// multi-device split. Ranges narrower than the device count use one device
// per leaf.
func (m MultiGPU) RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab); err != nil {
		return nil, err
	}
	if err := validateRange(tab, lo, hi); err != nil {
		return nil, err
	}
	if m.n() > hi-lo {
		m.Devices = hi - lo
	}
	if fullRange(tab, lo, hi) {
		// Whole-table range: walk the full padded domain like Run, keeping
		// the calibrated counter accounting (cf. fullRange in the other
		// strategies).
		return m.run(prg, keys, tab, 0, uint64(1)<<uint(tab.Bits()), ctr)
	}
	return m.run(prg, keys, tab, uint64(lo), uint64(hi), ctr)
}

// run evaluates leaves [rlo, rhi) in domain coordinates, split across the
// modeled devices.
func (m MultiGPU) run(prg dpf.PRG, keys []*dpf.Key, tab *Table, rlo, rhi uint64, ctr *gpu.Counters) ([][]uint32, error) {
	n := m.n()
	bits := tab.Bits()
	domain := uint64(1) << uint(bits)
	if uint64(n) > rhi-rlo || rhi > domain {
		return nil, fmt.Errorf("strategy: %d shards exceed range [%d,%d) of domain %d", n, rlo, rhi, domain)
	}
	// Modeled per-device working set mirrors the fused membound traversal
	// on a table of L/N rows.
	inner := MemBoundTree{K: m.k(), Fused: true}
	shardBits := shardDepth(bits, n)
	mem := int64(n) * inner.memBytes(len(keys), shardBits, tab.Lanes)
	ctr.Alloc(mem)
	defer ctr.Free(mem)
	ctr.AddLaunch()

	answers := make([][]uint32, len(keys))
	for q := range answers {
		answers[q] = make([]uint32, tab.Lanes)
	}
	var mu sync.Mutex
	type job struct{ q, shard int }
	jobs := make([]job, 0, len(keys)*n)
	for q := range keys {
		for s := 0; s < n; s++ {
			jobs = append(jobs, job{q, s})
		}
	}
	var firstErr error
	var errMu sync.Mutex
	width := rhi - rlo
	gpu.ParallelFor(len(jobs), func(i int) {
		j := jobs[i]
		lo := rlo + uint64(j.shard)*width/uint64(n)
		hi := rlo + uint64(j.shard+1)*width/uint64(n)
		buf := make([]uint32, hi-lo)
		if err := dpf.EvalRange(prg, keys[j.q], lo, hi, buf); err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			return
		}
		// Pruned DFS costs ~2·span + 2·depth blocks for the shard path.
		ctr.AddPRFBlocks(2*int64(hi-lo) - 2 + 2*int64(bits))
		local := make([]uint32, tab.Lanes)
		for jdx := lo; jdx < hi && jdx < uint64(tab.NumRows); jdx++ {
			accumulateRow(local, buf[jdx-lo], tab.Row(int(jdx)))
		}
		mu.Lock()
		for l := range local {
			answers[j.q][l] += local[l]
		}
		mu.Unlock()
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if rlo == 0 && rhi == uint64(1)<<uint(bits) {
		ctr.AddRead(tableReadBytes(len(keys), bits, tab.Lanes))
	} else {
		ctr.AddRead(rangeReadBytes(len(keys), tab.Lanes, int(width)))
	}
	ctr.AddWrite(int64(len(keys)) * int64(tab.Lanes) * 4 * int64(n))
	return answers, nil
}

// Model implements Strategy: each device runs the fused membound model on
// an L/N-entry shard; devices run in parallel, so batch latency is the
// shard latency plus a small cross-device reduction.
func (m MultiGPU) Model(dev *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error) {
	n := m.n()
	inner := MemBoundTree{K: m.k(), Fused: true}
	shardBits := shardDepth(bits, n)
	rep, err := inner.Model(dev, prg, shardBits, batch, lanes)
	if err != nil {
		return Report{}, fmt.Errorf("strategy %s: %w", m.Name(), err)
	}
	// Cross-device reduction: each device ships batch×lanes partial sums.
	reduceSec := float64(int64(n)*int64(batch)*int64(lanes)*4) / dev.MemBandwidthBps
	rep.Strategy = m.Name()
	rep.Bits = bits
	// Total fleet work: each shard re-derives its root-to-shard path, so
	// sharding costs 2·bits extra blocks per (query, shard) over the
	// single-device optimum.
	rep.PRFBlocks = int64(n)*rep.PRFBlocks + int64(batch)*int64(n)*2*int64(bits)
	rep.PeakMemBytes = int64(n) * rep.PeakMemBytes // fleet total
	rep.Latency += timeFromSeconds(reduceSec)
	if rep.Latency > 0 {
		rep.Throughput = float64(batch) / rep.Latency.Seconds()
	}
	return rep, nil
}

// shardDepth is the tree depth of one shard's effective table.
func shardDepth(bits, n int) int {
	d := bits
	for n > 1 {
		d--
		n /= 2
	}
	if d < 1 {
		d = 1
	}
	return d
}
