package strategy

import (
	"testing"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// TestMultiGPUCorrectness: sharded evaluation reconstructs exact rows for
// shard counts that do and do not divide the domain evenly.
func TestMultiGPUCorrectness(t *testing.T) {
	prg := dpf.NewAESPRG()
	tab := buildTable(t, 500, 5, 21)
	k0s, k1s, idx := genBatch(t, prg, tab, 4, 22)
	for _, n := range []int{1, 2, 3, 4, 8} {
		s := MultiGPU{Devices: n}
		var c0, c1 gpu.Counters
		a0, err := s.Run(prg, k0s, tab, &c0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		a1, err := s.Run(prg, k1s, tab, &c1)
		if err != nil {
			t.Fatal(err)
		}
		for q := range idx {
			want := tab.Row(int(idx[q]))
			for l := range want {
				if a0[q][l]+a1[q][l] != want[l] {
					t.Fatalf("n=%d q=%d lane=%d: reconstruction failed", n, q, l)
				}
			}
		}
	}
}

// TestMultiGPUMatchesSingle: with one device the answers equal the fused
// membound strategy's.
func TestMultiGPUMatchesSingle(t *testing.T) {
	prg := dpf.NewChaChaPRG()
	tab := buildTable(t, 256, 2, 23)
	k0s, _, _ := genBatch(t, prg, tab, 3, 24)
	var c1, c2 gpu.Counters
	a, err := (MultiGPU{Devices: 1}).Run(prg, k0s, tab, &c1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (MemBoundTree{K: 128, Fused: true}).Run(prg, k0s, tab, &c2)
	if err != nil {
		t.Fatal(err)
	}
	for q := range a {
		for l := range a[q] {
			if a[q][l] != b[q][l] {
				t.Fatal("single-device multigpu diverges from membound")
			}
		}
	}
}

// TestMultiGPUModelScaling pins §3.2.7: latency drops ~linearly with N and
// at a fixed batch the per-fleet utilization motivates larger batches.
func TestMultiGPUModelScaling(t *testing.T) {
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	const bits, batch, lanes = 24, 64, 64
	base, err := (MultiGPU{Devices: 1}).Model(dev, prg, bits, batch, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8} {
		rep, err := (MultiGPU{Devices: n}).Model(dev, prg, bits, batch, lanes)
		if err != nil {
			t.Fatal(err)
		}
		speedup := base.Latency.Seconds() / rep.Latency.Seconds()
		if speedup < float64(n)*0.7 || speedup > float64(n)*1.3 {
			t.Errorf("n=%d: latency speedup %.2f, want ≈%d", n, speedup, n)
		}
		// Total work is preserved (plus small per-shard path overhead).
		if rep.PRFBlocks < base.PRFBlocks {
			t.Errorf("n=%d: total PRF work shrank", n)
		}
	}
}

// TestMultiGPUValidation: too many shards for the domain must error.
func TestMultiGPUValidation(t *testing.T) {
	prg := dpf.NewAESPRG()
	tab := buildTable(t, 4, 1, 25) // domain 4
	k0s, _, _ := genBatch(t, prg, tab, 1, 26)
	var ctr gpu.Counters
	if _, err := (MultiGPU{Devices: 8}).Run(prg, k0s, tab, &ctr); err == nil {
		t.Error("8 shards over a 4-leaf domain accepted")
	}
}
