package strategy

import (
	"sync"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// CoopGroups is the paper's batch/table-size-aware scheduling (§3.2.5): for
// very large tables a *single* DPF already saturates the device, so all
// blocks cooperate on one DPF at a time (CUDA cooperative groups provide
// the required grid-wide barrier per level). Queries in the batch execute
// back to back, which slashes per-query latency on huge tables; on small
// tables the per-level grid synchronization dominates and utilization
// collapses — exactly Figure 9b.
type CoopGroups struct{}

// Name implements Strategy.
func (CoopGroups) Name() string { return "coop-groups" }

// CoopThresholdBits is the table size (log2) above which the paper selects
// cooperative groups over batched execution (2^22 entries, §3.2.5).
const CoopThresholdBits = 22

// Schedule picks the execution strategy the paper's scheduler would: the
// fused memory-bounded traversal below the threshold, cooperative groups at
// or above it.
func Schedule(bits int) Strategy {
	if bits >= CoopThresholdBits {
		return CoopGroups{}
	}
	return MemBoundTree{K: DefaultK, Fused: true}
}

// coopMemBytes models one query's working set: the two widest ping-pong
// level buffers, exactly one query resident at a time.
func coopMemBytes(bits, lanes int) int64 {
	domain := int64(1) << uint(bits)
	return domain*nodeBytes + domain/2*nodeBytes + int64(lanes)*4
}

// Run implements Strategy. Queries run sequentially; each level of each
// query's tree is expanded with full-width parallelism.
func (c CoopGroups) Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab); err != nil {
		return nil, err
	}
	return c.run(prg, keys, tab, 0, tab.NumRows, ctr)
}

// RunRange implements Strategy. The grid-wide level expansion is inherently
// whole-tree, so the range restricts only the leaf dot product — like
// level-by-level, sharding buys dot-product parallelism here, not PRF
// savings.
func (c CoopGroups) RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab); err != nil {
		return nil, err
	}
	if err := validateRange(tab, lo, hi); err != nil {
		return nil, err
	}
	return c.run(prg, keys, tab, lo, hi, ctr)
}

func (CoopGroups) run(prg dpf.PRG, keys []*dpf.Key, tab *Table, rlo, rhi int, ctr *gpu.Counters) ([][]uint32, error) {
	bits := tab.Bits()
	mem := coopMemBytes(bits, tab.Lanes)
	ctr.Alloc(mem)
	defer ctr.Free(mem)

	domain := 1 << uint(bits)
	answers := make([][]uint32, len(keys))
	for q, k := range keys {
		seeds := make([]dpf.Seed, 1, domain)
		ts := make([]uint8, 1, domain)
		seeds[0], ts[0] = k.Root, k.Party
		for level := 0; level < bits; level++ {
			cw := k.CWs[level]
			n := len(seeds)
			next := make([]dpf.Seed, 2*n)
			nextT := make([]uint8, 2*n)
			gpu.ParallelForChunked(n, 0, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					ls, lt, rs, rt := dpf.StepBoth(prg, seeds[i], ts[i], cw)
					next[2*i], next[2*i+1] = ls, rs
					nextT[2*i], nextT[2*i+1] = lt, rt
				}
				ctr.AddPRFBlocks(int64(hi-lo) * dpf.BlocksPerExpand)
			})
			seeds, ts = next, nextT
			ctr.AddLaunch() // grid-wide barrier per level
		}
		ans := make([]uint32, tab.Lanes)
		var mu sync.Mutex
		gpu.ParallelForChunked(rhi-rlo, 0, func(lo, hi int) {
			local := make([]uint32, tab.Lanes)
			for j := rlo + lo; j < rlo+hi; j++ {
				leaf := dpf.LeafValueScalar(k, seeds[j], ts[j])
				accumulateRow(local, leaf, tab.Row(j))
			}
			mu.Lock()
			for i := range ans {
				ans[i] += local[i]
			}
			mu.Unlock()
		})
		answers[q] = ans
	}
	ctr.AddRead(int64(len(keys)) * (int64(rhi-rlo)*int64(tab.Lanes)*4 + int64(domain)*nodeBytes))
	ctr.AddWrite(int64(len(keys)) * (int64(domain)*2*nodeBytes + int64(tab.Lanes)*4))
	return answers, nil
}

// Model implements Strategy. Latency is summed per level because the
// exposed parallelism is the level width: narrow levels near the root leave
// the device mostly idle, and every level pays a grid-sync (launch)
// overhead.
func (CoopGroups) Model(dev *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error) {
	domain := int64(1) << uint(bits)
	if coopMemBytes(bits, lanes) > dev.GlobalMemBytes {
		return Report{}, gpu.ErrOutOfMemory
	}
	var perQuery float64 // seconds
	var cycles float64
	for level := 0; level < bits; level++ {
		width := int64(1) << uint(level) // nodes expanded at this level
		levelCycles := float64(width*dpf.BlocksPerExpand) * prg.GPUCyclesPerBlock()
		cycles += levelCycles
		occ := dev.Occupancy(width)
		lanesActive := occ * float64(dev.TotalLanes())
		perQuery += levelCycles / (lanesActive * dev.ClockHz)
		perQuery += dev.LaunchOverhead.Seconds()
	}
	// Fused dot product at the leaf level, full width.
	dot := dotArithCycles(1, bits, lanes)
	cycles += dot
	perQuery += dot / (float64(dev.TotalLanes()) * dev.ClockHz)
	memSec := float64(domain*int64(lanes)*4) / dev.MemBandwidthBps
	if memSec > perQuery {
		perQuery = memSec
	}
	lat := timeFromSeconds(perQuery * float64(batch))
	util := 0.0
	if lat > 0 {
		util = cycles * float64(batch) / (lat.Seconds() * dev.LaneCyclesPerSecond())
	}
	r := Report{
		Strategy:     CoopGroups{}.Name(),
		PRG:          prg.Name(),
		Bits:         bits,
		Batch:        batch,
		Lanes:        lanes,
		PRFBlocks:    int64(batch) * (2*domain - 2),
		PeakMemBytes: coopMemBytes(bits, lanes),
		Latency:      lat,
		Utilization:  util,
	}
	if lat > 0 {
		r.Throughput = float64(batch) / lat.Seconds()
	}
	return r, nil
}
