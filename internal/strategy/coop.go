package strategy

import (
	"sync"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// CoopGroups is the paper's batch/table-size-aware scheduling (§3.2.5): for
// very large tables a *single* DPF already saturates the device, so all
// blocks cooperate on one DPF at a time (CUDA cooperative groups provide
// the required grid-wide barrier per level). Queries in the batch execute
// back to back, which slashes per-query latency on huge tables; on small
// tables the per-level grid synchronization dominates and utilization
// collapses — exactly Figure 9b.
type CoopGroups struct{}

// Name implements Strategy.
func (CoopGroups) Name() string { return "coop-groups" }

// CoopThresholdBits is the table size (log2) above which the paper selects
// cooperative groups over batched execution (2^22 entries, §3.2.5).
const CoopThresholdBits = 22

// Schedule picks the execution strategy the paper's scheduler would: the
// fused memory-bounded traversal below the threshold, cooperative groups at
// or above it.
func Schedule(bits int) Strategy {
	if bits >= CoopThresholdBits {
		return CoopGroups{}
	}
	return MemBoundTree{K: DefaultK, Fused: true}
}

// coopMemBytes models one query's working set: the two widest ping-pong
// level buffers (the terminal frontier is domain >> early nodes), exactly
// one query resident at a time.
func coopMemBytes(bits, lanes, early int) int64 {
	frontier := int64(1) << uint(bits-early)
	return frontier*nodeBytes + frontier/2*nodeBytes + int64(lanes)*4
}

// Run implements Strategy. Queries run sequentially; each level of each
// query's tree is expanded with full-width parallelism.
func (c CoopGroups) Run(prg dpf.PRG, keys []*dpf.Key, tab *Table, ctr *gpu.Counters) ([][]uint32, error) {
	if err := validateKeys(keys, tab.Bits()); err != nil {
		return nil, err
	}
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := c.runInto(prg, keys, tab.View(), 0, tab.NumRows, ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRange implements Strategy. The grid-wide level expansion is inherently
// whole-tree, so the range restricts only the leaf dot product — like
// level-by-level, sharding buys dot-product parallelism here, not PRF
// savings.
func (c CoopGroups) RunRange(prg dpf.PRG, keys []*dpf.Key, tab *Table, lo, hi int, ctr *gpu.Counters) ([][]uint32, error) {
	dst := NewAnswers(len(keys), tab.Lanes)
	if err := c.RunRangeInto(prg, keys, tab.View(), lo, hi, ctr, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// RunRangeInto implements Strategy.
func (c CoopGroups) RunRangeInto(prg dpf.PRG, keys []*dpf.Key, v TableView, lo, hi int, ctr *gpu.Counters, dst [][]uint32) error {
	if err := validateKeys(keys, dpf.DomainBits(v.Rows())); err != nil {
		return err
	}
	if err := validateRange(v.Rows(), lo, hi); err != nil {
		return err
	}
	if err := validateDst(keys, v.Lanes(), dst); err != nil {
		return err
	}
	return c.runInto(prg, keys, v, lo, hi, ctr, dst)
}

// runInto executes queries back to back — one query owns the whole device
// at a time, which is cooperative groups' point (§3.2.5) and why the dot
// product here stays per-query rather than query-tiled. Each level still
// advances through batched PRF calls (dpf.StepBothBatch per chunk) over
// pooled ping-pong buffers.
func (CoopGroups) runInto(prg dpf.PRG, keys []*dpf.Key, v TableView, rlo, rhi int, ctr *gpu.Counters, dst [][]uint32) error {
	bits := dpf.DomainBits(v.Rows())
	lanes := v.Lanes()
	early := keys[0].Early
	mem := coopMemBytes(bits, lanes, early)
	ctr.Alloc(mem)
	defer ctr.Free(mem)

	depth := bits - early
	frontier := 1 << uint(depth)
	sc := getCoopScratch()
	cur, curT, next, nextT := sc.growPing(frontier)
	for q, k := range keys {
		cur[0], curT[0] = k.Root, k.Party
		n := 1
		for level := 0; level < depth; level++ {
			cw := k.CWs[level]
			seeds, ts, out, outT := cur[:n], curT[:n], next[:2*n], nextT[:2*n]
			gpu.ParallelForChunked(n, 0, func(lo, hi int) {
				csc := getWalkScratch()
				dpf.StepBothBatch(prg, seeds[lo:hi], ts[lo:hi], cw, out[2*lo:2*hi], outT[2*lo:2*hi], &csc.batch)
				ctr.AddPRFBlocks(int64(hi-lo) * dpf.BlocksPerExpand)
				csc.release()
			})
			cur, next = next, cur
			curT, nextT = nextT, curT
			n *= 2
			ctr.AddLaunch() // grid-wide barrier per level
		}
		ans := dst[q]
		var mu sync.Mutex
		var firstErr error
		gpu.ParallelForChunked(rhi-rlo, 0, func(lo, hi int) {
			csc := getWalkScratch()
			local := csc.growLocal(1, lanes)[0]
			leaves := csc.growBuf(hi - lo)
			// Chunk boundaries cut through terminal groups wherever they
			// like; the group conversion clips.
			dpf.LeafRangeInto(k, cur[:n], curT[:n], uint64(rlo+lo), uint64(rlo+hi), leaves)
			// The worker's row span streams through the view's chunk
			// iterator — one run for an in-RAM table, several for an
			// overlaid or paged one.
			err := v.Chunks(rlo+lo, rlo+hi, func(ch Chunk) error {
				for j := 0; j < len(ch.Data)/lanes; j++ {
					accumulateRow(local, leaves[ch.Row+j-rlo-lo], ch.Data[j*lanes:(j+1)*lanes])
				}
				return nil
			})
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			for i := range ans {
				ans[i] += local[i]
			}
			mu.Unlock()
			csc.release()
		})
		if firstErr != nil {
			sc.release()
			return firstErr
		}
	}
	sc.release()
	ctr.AddRead(int64(len(keys)) * (int64(rhi-rlo)*int64(lanes)*4 + int64(frontier)*nodeBytes))
	ctr.AddWrite(int64(len(keys)) * (int64(frontier)*2*nodeBytes + int64(lanes)*4))
	return nil
}

// Model implements Strategy. Latency is summed per level because the
// exposed parallelism is the level width: narrow levels near the root leave
// the device mostly idle, and every level pays a grid-sync (launch)
// overhead.
func (CoopGroups) Model(dev *gpu.Device, prg dpf.PRG, bits, batch, lanes int) (Report, error) {
	domain := int64(1) << uint(bits)
	early := modelEarly(bits)
	if coopMemBytes(bits, lanes, early) > dev.GlobalMemBytes {
		return Report{}, gpu.ErrOutOfMemory
	}
	cpb := prgCyclesPerBlock(prg.GPUCyclesPerBlock(), early)
	var perQuery float64 // seconds
	var cycles float64
	for level := 0; level < bits-early; level++ {
		width := int64(1) << uint(level) // nodes expanded at this level
		levelCycles := float64(width*dpf.BlocksPerExpand) * cpb
		cycles += levelCycles
		occ := dev.Occupancy(width)
		lanesActive := occ * float64(dev.TotalLanes())
		perQuery += levelCycles / (lanesActive * dev.ClockHz)
		perQuery += dev.LaunchOverhead.Seconds()
	}
	// Fused dot product at the leaf level, full width.
	dot := dotArithCycles(1, bits, lanes)
	cycles += dot
	perQuery += dot / (float64(dev.TotalLanes()) * dev.ClockHz)
	memSec := float64(domain*int64(lanes)*4) / dev.MemBandwidthBps
	if memSec > perQuery {
		perQuery = memSec
	}
	lat := timeFromSeconds(perQuery * float64(batch))
	util := 0.0
	if lat > 0 {
		util = cycles * float64(batch) / (lat.Seconds() * dev.LaneCyclesPerSecond())
	}
	r := Report{
		Strategy:     CoopGroups{}.Name(),
		PRG:          prg.Name(),
		Bits:         bits,
		Batch:        batch,
		Lanes:        lanes,
		PRFBlocks:    int64(batch) * treeBlocks(bits, early),
		PeakMemBytes: coopMemBytes(bits, lanes, early),
		Latency:      lat,
		Utilization:  util,
	}
	if lat > 0 {
		r.Throughput = float64(batch) / lat.Seconds()
	}
	return r, nil
}
