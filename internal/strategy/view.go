package strategy

import "fmt"

// Chunk is one contiguous, row-aligned run of table data yielded by a
// TableView: rows [Row, Row+len(Data)/lanes) in row-major order. The slice
// is immutable shared storage — callers read, never write, and must not
// retain it past the callback that yielded it: paged backings recycle page
// buffers once a chunk's callback returns, so a retained slice may be
// overwritten by a later page load. (Copy inside the callback to keep
// data, as TableFromView does.)
type Chunk struct {
	// Row is the table row index of Data's first row.
	Row int
	// Data is the run's row-major lane data, a whole number of rows.
	Data []uint32
}

// TableView is the snapshot read contract the answer path consumes: a
// table shape plus an iterator over contiguous row runs. The in-RAM
// backing yields one maximal chunk per Chunks call, so the SIMD kernel's
// per-call work is unchanged; delta-epoch overlays yield a run per patch
// boundary, and a paged backing yields page-sized runs — all through the
// same contract, which is what lets one answer path serve tables that
// are in RAM, patched, or larger than memory.
type TableView interface {
	// Rows is the table's row count.
	Rows() int
	// Lanes is the entry width in uint32 lanes.
	Lanes() int
	// Chunks calls fn for each contiguous row run covering rows [lo, hi),
	// in ascending row order with no gaps or overlaps. It stops at the
	// first error (fn's, a range error, or a backing read error).
	Chunks(lo, hi int, fn func(Chunk) error) error
	// RowRange returns rows [lo, hi) as one contiguous slice when the
	// backing can do so without copying, and an error otherwise (see
	// store.ErrNotContiguous). Callers that can stream should prefer
	// Chunks, which never fails on fragmentation.
	RowRange(lo, hi int) ([]uint32, error)
}

// checkViewRange validates a chunk-iterator row range ([lo,hi) within a
// table of rows rows; empty ranges are allowed and iterate nothing).
func checkViewRange(rows, lo, hi int) error {
	if lo < 0 || hi > rows || lo > hi {
		return fmt.Errorf("strategy: row range [%d,%d) invalid for table of %d rows", lo, hi, rows)
	}
	return nil
}

// tableView adapts *Table to TableView: one maximal chunk, zero-copy
// ranges. (Table's shape is exported fields, so the adapter carries the
// method set.)
type tableView struct{ t *Table }

// View returns the table as a TableView. The view shares the table's
// storage; the immutability convention (see Table) carries over.
func (t *Table) View() TableView { return tableView{t} }

// Rows implements TableView.
func (v tableView) Rows() int { return v.t.NumRows }

// Lanes implements TableView.
func (v tableView) Lanes() int { return v.t.Lanes }

// Chunks implements TableView: the whole range is one contiguous run.
func (v tableView) Chunks(lo, hi int, fn func(Chunk) error) error {
	if err := checkViewRange(v.t.NumRows, lo, hi); err != nil {
		return err
	}
	if lo == hi {
		return nil
	}
	return fn(Chunk{Row: lo, Data: v.t.Data[lo*v.t.Lanes : hi*v.t.Lanes]})
}

// RowRange implements TableView (always contiguous for an in-RAM table).
func (v tableView) RowRange(lo, hi int) ([]uint32, error) {
	if err := checkViewRange(v.t.NumRows, lo, hi); err != nil {
		return nil, err
	}
	return v.t.Data[lo*v.t.Lanes : hi*v.t.Lanes], nil
}

// TableFromView materializes a view into a freshly allocated Table — the
// escape hatch for callers that genuinely need a contiguous private copy
// (replica cloning, tests). It is the only sanctioned way to flatten a
// fragmented or paged view; the answer path itself never does this.
func TableFromView(v TableView) (*Table, error) {
	tab, err := NewTable(v.Rows(), v.Lanes())
	if err != nil {
		return nil, err
	}
	lanes := v.Lanes()
	err = v.Chunks(0, v.Rows(), func(c Chunk) error {
		copy(tab.Data[c.Row*lanes:], c.Data)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tab, nil
}
