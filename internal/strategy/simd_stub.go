//go:build !amd64 || purego

package strategy

// Non-amd64 builds (and -tags purego) always take the scalar accumulate
// loop; avx2OK is a compile-time false so the dispatch branch folds away.

const avx2OK = false

func accumulateRowsAVX2(dst, leaves, rows *uint32, lanes, simdLanes, n int) {
	panic("strategy: accumulateRowsAVX2 without AVX2")
}
