package strategy

import (
	"math/rand"
	"testing"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
)

// buildTable fills a table with deterministic pseudo-random content.
func buildTable(t *testing.T, rows, lanes int, seed int64) *Table {
	t.Helper()
	tab, err := NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	return tab
}

// genBatch creates a batch of key pairs for random indices within the table.
func genBatch(t *testing.T, prg dpf.PRG, tab *Table, batch int, seed int64) (k0s, k1s []*dpf.Key, idx []uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < batch; q++ {
		alpha := uint64(rng.Intn(tab.NumRows))
		a, b, err := dpf.Gen(prg, alpha, tab.Bits(), []uint32{1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		k0s = append(k0s, &a)
		k1s = append(k1s, &b)
		idx = append(idx, alpha)
	}
	return
}

func allStrategies() []Strategy {
	return []Strategy{
		BranchParallel{},
		LevelByLevel{},
		MemBoundTree{K: 8, Fused: true},
		MemBoundTree{K: 8, Fused: false},
		MemBoundTree{K: 128, Fused: true},
		CoopGroups{},
		MultiGPU{Devices: 2},
		CPUBaseline{Threads: 1},
		CPUBaseline{Threads: 4},
	}
}

// TestStrategiesReconstructRows: every strategy must produce shares that
// reconstruct the exact table rows, across entry widths and non-power-of-two
// row counts.
func TestStrategiesReconstructRows(t *testing.T) {
	prg := dpf.NewAESPRG()
	for _, shape := range []struct{ rows, lanes int }{
		{64, 1}, {64, 4}, {100, 7}, {256, 16}, {1000, 3},
	} {
		tab := buildTable(t, shape.rows, shape.lanes, int64(shape.rows))
		k0s, k1s, idx := genBatch(t, prg, tab, 5, int64(shape.lanes))
		for _, s := range allStrategies() {
			var c0, c1 gpu.Counters
			a0, err := s.Run(prg, k0s, tab, &c0)
			if err != nil {
				t.Fatalf("%s rows=%d: %v", s.Name(), shape.rows, err)
			}
			a1, err := s.Run(prg, k1s, tab, &c1)
			if err != nil {
				t.Fatal(err)
			}
			for q := range idx {
				want := tab.Row(int(idx[q]))
				for l := 0; l < tab.Lanes; l++ {
					got := a0[q][l] + a1[q][l]
					if got != want[l] {
						t.Fatalf("%s rows=%d lanes=%d q=%d lane=%d: got %d want %d",
							s.Name(), shape.rows, shape.lanes, q, l, got, want[l])
					}
				}
			}
		}
	}
}

// TestRunCountsMatchModel pins the analytic count formulas to the real
// execution's counted totals (PRF blocks exactly; peak memory exactly since
// strategies allocate their modeled working set).
func TestRunCountsMatchModel(t *testing.T) {
	prg := dpf.NewChaChaPRG()
	dev := gpu.TeslaV100()
	const rows = 256 // power of two so the formulas are exact
	const lanes = 4
	tab := buildTable(t, rows, lanes, 5)
	for _, batch := range []int{1, 3, 8} {
		k0s, _, _ := genBatch(t, prg, tab, batch, 77)
		for _, s := range allStrategies() {
			var ctr gpu.Counters
			if _, err := s.Run(prg, k0s, tab, &ctr); err != nil {
				t.Fatal(err)
			}
			got := ctr.Snapshot()
			model, err := s.Model(dev, prg, tab.Bits(), batch, lanes)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if got.PRFBlocks != model.PRFBlocks {
				t.Errorf("%s batch=%d: counted %d PRF blocks, model %d",
					s.Name(), batch, got.PRFBlocks, model.PRFBlocks)
			}
			if got.PeakMemBytes != model.PeakMemBytes {
				t.Errorf("%s batch=%d: counted peak %d, model %d",
					s.Name(), batch, got.PeakMemBytes, model.PeakMemBytes)
			}
		}
	}
}

// TestWorkOptimality pins the Figure 6 claims on the early-terminated tree
// (§3.1): with G = L >> early terminal nodes, tree strategies do 2G-2
// blocks per query — a ~4× cut over the classic 2L-2 for default scalar
// keys — and branch-parallel does G·(log L - early).
func TestWorkOptimality(t *testing.T) {
	prg := dpf.NewAESPRG()
	tab := buildTable(t, 512, 1, 9)
	k0s, _, _ := genBatch(t, prg, tab, 1, 3)
	bits := tab.Bits()
	early := k0s[0].Early
	if early != dpf.DefaultEarlyBits {
		t.Fatalf("default keys carry early=%d, want %d", early, dpf.DefaultEarlyBits)
	}
	groups := int64(1) << uint(bits-early)

	for _, s := range []Strategy{LevelByLevel{}, MemBoundTree{K: 16, Fused: true}, CoopGroups{}, CPUBaseline{Threads: 1}} {
		var ctr gpu.Counters
		if _, err := s.Run(prg, k0s, tab, &ctr); err != nil {
			t.Fatal(err)
		}
		if got := ctr.Snapshot().PRFBlocks; got != 2*groups-2 {
			t.Errorf("%s: %d blocks, want %d (optimal)", s.Name(), got, 2*groups-2)
		}
	}
	var ctr gpu.Counters
	if _, err := (BranchParallel{}).Run(prg, k0s, tab, &ctr); err != nil {
		t.Fatal(err)
	}
	if got := ctr.Snapshot().PRFBlocks; got != groups*int64(bits-early) {
		t.Errorf("branch-parallel: %d blocks, want %d (G·depth)", got, groups*int64(bits-early))
	}

	// Explicit full-depth (wire v1) keys still do the classic counts.
	rng := rand.New(rand.NewSource(91))
	v1, _, err := dpf.GenEarly(prg, 7, bits, []uint32{1}, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	domain := int64(1) << uint(bits)
	var v1ctr gpu.Counters
	if _, err := (MemBoundTree{K: 16, Fused: true}).Run(prg, []*dpf.Key{&v1}, tab, &v1ctr); err != nil {
		t.Fatal(err)
	}
	if got := v1ctr.Snapshot().PRFBlocks; got != 2*domain-2 {
		t.Errorf("full-depth key: %d blocks, want %d", got, 2*domain-2)
	}
}

// TestMixedDepthBatchRejected: the tiled walkers need depth-uniform
// batches; a batch mixing wire-v1 and wire-v2 keys must fail validation,
// not silently corrupt answers.
func TestMixedDepthBatchRejected(t *testing.T) {
	prg := dpf.NewAESPRG()
	tab := buildTable(t, 64, 2, 71)
	rng := rand.New(rand.NewSource(72))
	full, _, err := dpf.GenEarly(prg, 3, tab.Bits(), []uint32{1}, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	early, _, err := dpf.GenEarly(prg, 9, tab.Bits(), []uint32{1}, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	var ctr gpu.Counters
	for _, s := range allStrategies() {
		if _, err := s.Run(prg, []*dpf.Key{&full, &early}, tab, &ctr); err == nil {
			t.Errorf("%s: mixed-depth batch accepted", s.Name())
		}
	}
}

// TestMemoryOrdering pins the Figure 6 memory claim: for a large modeled
// shape, membound << level-by-level, and membound grows logarithmically
// with L while level-by-level grows linearly.
func TestMemoryOrdering(t *testing.T) {
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	const batch = 32
	mb := MemBoundTree{K: 128, Fused: true}
	lvl := LevelByLevel{}
	var prevMB, prevLvl int64
	for _, bits := range []int{14, 16, 18, 20} {
		rm, err := mb.Model(dev, prg, bits, batch, 64)
		if err != nil {
			t.Fatal(err)
		}
		rl, err := lvl.Model(dev, prg, bits, batch, 64)
		if err != nil {
			t.Fatal(err)
		}
		// Early termination shrinks level-by-level's node frontier 4×
		// (its leaf vector stays O(L)), so the gap at the smallest shape
		// is ~6×; it widens with bits as the linear terms dominate.
		if rm.PeakMemBytes*5 > rl.PeakMemBytes {
			t.Errorf("bits=%d: membound peak %d not ≪ level peak %d", bits, rm.PeakMemBytes, rl.PeakMemBytes)
		}
		if prevLvl > 0 {
			lvlGrowth := float64(rl.PeakMemBytes) / float64(prevLvl)
			mbGrowth := float64(rm.PeakMemBytes) / float64(prevMB)
			if lvlGrowth < 3.5 { // 4x table → ~4x memory
				t.Errorf("bits=%d: level-by-level growth %.2f, want ≈4", bits, lvlGrowth)
			}
			if mbGrowth > 1.5 { // logarithmic growth
				t.Errorf("bits=%d: membound growth %.2f, want ≈1", bits, mbGrowth)
			}
		}
		prevMB, prevLvl = rm.PeakMemBytes, rl.PeakMemBytes
	}
}

// TestLevelByLevelOOM: at paper scale, level-by-level must hit device OOM at
// batch sizes membound handles easily (the Figure 13 cliff).
func TestLevelByLevelOOM(t *testing.T) {
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	const bits = 22 // 4M rows
	// Early termination cut level-by-level's node frontier 4×, so the OOM
	// cliff moved out by roughly that factor — batch 512 is past it.
	if _, err := (LevelByLevel{}).Model(dev, prg, bits, 512, 64); err == nil {
		t.Error("level-by-level at 4M×batch512 should exceed 16GB")
	}
	if _, err := (MemBoundTree{K: 128, Fused: true}).Model(dev, prg, bits, 512, 64); err != nil {
		t.Errorf("membound at same shape should fit: %v", err)
	}
}

// TestFusionImprovesModel: fusing must not hurt modeled latency, and must
// help clearly at large entry sizes (Figure 14).
func TestFusionImprovesModel(t *testing.T) {
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	const bits = 20
	for _, lanes := range []int{16, 64, 256, 1024} {
		rf, err := (MemBoundTree{K: 128, Fused: true}).Model(dev, prg, bits, 32, lanes)
		if err != nil {
			t.Fatal(err)
		}
		ru, err := (MemBoundTree{K: 128, Fused: false}).Model(dev, prg, bits, 32, lanes)
		if err != nil {
			t.Fatal(err)
		}
		if rf.Latency > ru.Latency {
			t.Errorf("lanes=%d: fused %v slower than unfused %v", lanes, rf.Latency, ru.Latency)
		}
	}
}

// TestCoopVsBatchedUtilization pins Figure 9b: cooperative groups reach
// high utilization only on very large tables; batched membound wins small
// tables.
func TestCoopVsBatchedUtilization(t *testing.T) {
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	coop := CoopGroups{}
	small, err := coop.Model(dev, prg, 14, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	large, err := coop.Model(dev, prg, 24, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if small.Utilization > 0.5 {
		t.Errorf("coop util on 16K table = %.2f, want low", small.Utilization)
	}
	if large.Utilization < 0.6 {
		t.Errorf("coop util on 16M table = %.2f, want high", large.Utilization)
	}
	if large.Utilization <= small.Utilization {
		t.Error("coop utilization should grow with table size")
	}
}

// TestCoopImprovesLargeTableLatency pins §3.2.5: on ≥2^22 tables coop's
// single-query latency beats batched execution's batch latency without
// giving up much throughput.
func TestCoopImprovesLargeTableLatency(t *testing.T) {
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	const bits = 23
	batched, err := TuneBatch(dev, MemBoundTree{K: 128, Fused: true}, prg, bits, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	coop, err := (CoopGroups{}).Model(dev, prg, bits, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if coop.Latency >= batched.Latency {
		t.Errorf("coop latency %v not below batched %v", coop.Latency, batched.Latency)
	}
	if coop.Throughput < batched.Throughput/3 {
		t.Errorf("coop throughput %.0f collapsed vs batched %.0f", coop.Throughput, batched.Throughput)
	}
}

// TestSchedule pins the 2^22 threshold.
func TestSchedule(t *testing.T) {
	if Schedule(21).Name() != "membound-fused" {
		t.Error("below threshold should pick membound-fused")
	}
	if Schedule(22).Name() != "coop-groups" {
		t.Error("at threshold should pick coop-groups")
	}
}

// TestBatchingIncreasesUtilization pins Figure 9a.
func TestBatchingIncreasesUtilization(t *testing.T) {
	dev := gpu.TeslaV100()
	prg := dpf.NewAESPRG()
	mb := MemBoundTree{K: 128, Fused: true}
	prev := -1.0
	for _, b := range []int{1, 4, 16, 64} {
		r, err := mb.Model(dev, prg, 20, b, 64)
		if err != nil {
			t.Fatal(err)
		}
		if r.Utilization < prev {
			t.Errorf("batch=%d: utilization %.3f decreased", b, r.Utilization)
		}
		prev = r.Utilization
	}
	if prev != 1.0 {
		t.Errorf("batch=64,K=128 should saturate: util=%.3f", prev)
	}
}
