//go:build amd64 && !purego

#include "textflag.h"

// func accumulateRowsAVX2(dst, leaves, rows *uint32, lanes, simdLanes, n int)
//
// dst[l] += leaves[j] * rows[j*lanes+l] (mod 2^32) for j in [0,n),
// l in [0,simdLanes). The lane range is walked in chunks of 16 (two YMM
// accumulators amortizing each leaf broadcast) then 8; for each chunk the
// accumulators stay in registers across the whole row block, so a row's
// chunk is loaded exactly once (VPMULLD with a memory operand) and dst is
// touched exactly twice. All accesses are unaligned-tolerant.
//
// Register use: DI dst, SI leaves, DX rows, CX row stride in bytes,
// R8 simd byte width, R9 n, R10 lane byte offset, R12 row cursor,
// R13 leaf cursor, R14 row counter; Y0/Y1 accumulators, Y2 broadcast
// leaf, Y3/Y4 products.
TEXT ·accumulateRowsAVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ leaves+8(FP), SI
	MOVQ rows+16(FP), DX
	MOVQ lanes+24(FP), CX
	SHLQ $2, CX              // row stride in bytes
	MOVQ simdLanes+32(FP), R8
	SHLQ $2, R8              // SIMD-covered byte width
	MOVQ n+40(FP), R9
	TESTQ R9, R9
	JZ   done
	XORQ R10, R10            // lane byte offset

chunk16:
	LEAQ 64(R10), R11
	CMPQ R11, R8
	JA   chunk8              // fewer than 16 lanes remain
	VMOVDQU (DI)(R10*1), Y0
	VMOVDQU 32(DI)(R10*1), Y1
	LEAQ (DX)(R10*1), R12    // row cursor at this lane offset
	MOVQ SI, R13             // leaf cursor
	MOVQ R9, R14

rows16:
	VPBROADCASTD (R13), Y2
	VPMULLD (R12), Y2, Y3
	VPMULLD 32(R12), Y2, Y4
	VPADDD  Y3, Y0, Y0
	VPADDD  Y4, Y1, Y1
	ADDQ $4, R13
	ADDQ CX, R12
	DECQ R14
	JNZ  rows16

	VMOVDQU Y0, (DI)(R10*1)
	VMOVDQU Y1, 32(DI)(R10*1)
	ADDQ $64, R10
	JMP  chunk16

chunk8:
	CMPQ R10, R8
	JAE  done                // SIMD-covered lanes exhausted
	VMOVDQU (DI)(R10*1), Y0
	LEAQ (DX)(R10*1), R12
	MOVQ SI, R13
	MOVQ R9, R14

rows8:
	VPBROADCASTD (R13), Y2
	VPMULLD (R12), Y2, Y3
	VPADDD  Y3, Y0, Y0
	ADDQ $4, R13
	ADDQ CX, R12
	DECQ R14
	JNZ  rows8

	VMOVDQU Y0, (DI)(R10*1)
	ADDQ $32, R10
	JMP  chunk8

done:
	VZEROUPPER
	RET

// func hasAVX2() bool
//
// AVX2 needs three checks, not one: the CPU must report OSXSAVE+AVX
// (CPUID.1:ECX bits 27/26+28), the OS must have enabled XMM+YMM state
// saving (XCR0 bits 1:0 == 11b via XGETBV), and only then does
// CPUID.(EAX=7,ECX=0):EBX bit 5 (AVX2) mean the instructions are usable.
TEXT ·hasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $0x18000000, CX     // OSXSAVE (27) | AVX (28)
	CMPL CX, $0x18000000
	JNE  no
	XORL CX, CX
	XGETBV                   // XCR0 -> DX:AX
	ANDL $6, AX              // XMM (1) | YMM (2) state enabled
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	SHRL $5, BX              // AVX2 is EBX bit 5
	ANDL $1, BX
	MOVB BX, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET
