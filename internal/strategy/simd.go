package strategy

// simdRowBlock is the row blocking of the AVX2 accumulate path: the kernel
// is called once per (query, block), so the block's slice of the table —
// 16 KB at the benchmark's 16-lane rows — stays L1-resident while all ≤32
// queries of the tile reuse it, preserving accumulateTile's read-each-row-
// once traffic model (§3.2.4) with register-resident accumulators.
const simdRowBlock = 256

// accumulateTileAVX2 is accumulateTile through the AVX2 kernel. Per row
// block, each query's answer lanes ride in YMM registers while the kernel
// performs the same leaf·row lane-wise mod-2^32 multiply-accumulate as the
// scalar loop, 8 lanes per VPMULLD/VPADDD. Lane counts that are not a
// multiple of 8 finish with a scalar tail per block. Output is
// bit-identical to accumulateTileScalar: mod-2^32 adds commute, and
// per-lane the summation order is unchanged. Only called when avx2OK and
// lanes ≥ 8.
func accumulateTileAVX2(tab *Table, lo, hi int, leaves [][]uint32, answers [][]uint32) {
	lanes := tab.Lanes
	simdLanes := lanes &^ 7
	for j0 := lo; j0 < hi; j0 += simdRowBlock {
		j1 := j0 + simdRowBlock
		if j1 > hi {
			j1 = hi
		}
		n := j1 - j0
		rows := tab.Data[j0*lanes : j1*lanes]
		for q, lv := range leaves {
			accumulateRowsAVX2(&answers[q][0], &lv[j0-lo], &rows[0], lanes, simdLanes, n)
		}
		if simdLanes == lanes {
			continue
		}
		// Scalar tail for the 1–7 lanes past the last full SIMD chunk.
		for j := j0; j < j1; j++ {
			row := tab.Row(j)
			for q, lv := range leaves {
				ans := answers[q]
				leaf := lv[j-lo]
				for i := simdLanes; i < lanes; i++ {
					ans[i] += leaf * row[i]
				}
			}
		}
	}
}
