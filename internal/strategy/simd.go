package strategy

// simdRowBlock is the row blocking of the AVX2 accumulate path: the kernel
// is called once per (query, block), so the block's slice of the table —
// 16 KB at the benchmark's 16-lane rows — stays L1-resident while all ≤32
// queries of the tile reuse it, preserving accumulateTile's read-each-row-
// once traffic model (§3.2.4) with register-resident accumulators.
const simdRowBlock = 256

// accumulateChunkAVX2 is accumulateChunk through the AVX2 kernel: one
// contiguous run of rows [row, row+len(data)/lanes), leaves indexed from
// leafLo. Per row block, each query's answer lanes ride in YMM registers
// while the kernel performs the same leaf·row lane-wise mod-2^32 multiply-
// accumulate as the scalar loop, 8 lanes per VPMULLD/VPADDD. Lane counts
// that are not a multiple of 8 finish with a scalar tail per block. Output
// is bit-identical to accumulateChunkScalar: mod-2^32 adds commute, and
// per-lane the summation order is unchanged. Only called when avx2OK and
// lanes ≥ 8. An in-RAM view hands the whole range over as one chunk, so
// the kernel's per-call work is the same as when it streamed Table.Data
// directly; paged views hand page-sized chunks, still ≥ simdRowBlock rows
// for any realistic page budget.
func accumulateChunkAVX2(data []uint32, lanes, row, leafLo int, leaves [][]uint32, answers [][]uint32) {
	simdLanes := lanes &^ 7
	nRows := len(data) / lanes
	for j0 := 0; j0 < nRows; j0 += simdRowBlock {
		j1 := j0 + simdRowBlock
		if j1 > nRows {
			j1 = nRows
		}
		n := j1 - j0
		rows := data[j0*lanes : j1*lanes]
		leafOff := row + j0 - leafLo
		for q, lv := range leaves {
			accumulateRowsAVX2(&answers[q][0], &lv[leafOff], &rows[0], lanes, simdLanes, n)
		}
		if simdLanes == lanes {
			continue
		}
		// Scalar tail for the 1–7 lanes past the last full SIMD chunk.
		for j := j0; j < j1; j++ {
			rw := data[j*lanes : (j+1)*lanes]
			for q, lv := range leaves {
				ans := answers[q]
				leaf := lv[row+j-leafLo]
				for i := simdLanes; i < lanes; i++ {
					ans[i] += leaf * rw[i]
				}
			}
		}
	}
}
