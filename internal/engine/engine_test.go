package engine

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"gpudpf/internal/dpf"
	"gpudpf/internal/strategy"
)

func buildTable(t testing.TB, rows, lanes int, seed int64) *strategy.Table {
	t.Helper()
	tab, err := strategy.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range tab.Data {
		tab.Data[i] = rng.Uint32()
	}
	return tab
}

// genKeys returns marshaled party-0 and party-1 keys for the indices.
func genKeys(t testing.TB, tab *strategy.Table, indices []uint64, seed int64) (k0s, k1s [][]byte) {
	t.Helper()
	prg := dpf.NewAESPRG()
	rng := rand.New(rand.NewSource(seed))
	for _, idx := range indices {
		key0, key1, err := dpf.Gen(prg, idx, tab.Bits(), []uint32{1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		raw0, err := key0.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		raw1, err := key1.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		k0s = append(k0s, raw0)
		k1s = append(k1s, raw1)
	}
	return k0s, k1s
}

// TestReplicaMatchesSequential: for several shard/worker configurations the
// reconstructed rows match the table — and every configuration produces the
// same shares as the unsharded reference.
func TestReplicaMatchesSequential(t *testing.T) {
	const rows, lanes = 300, 4
	tab := buildTable(t, rows, lanes, 1)
	indices := []uint64{0, 7, 128, 299}
	k0s, k1s := genKeys(t, tab, indices, 2)

	ref0, err := NewReplica(tab, Config{Party: 0, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	want0, err := ref0.Answer(context.Background(), k0s)
	if err != nil {
		t.Fatal(err)
	}

	for _, cfg := range []Config{
		{Shards: 2, Workers: 1},
		{Shards: 3, Workers: 2},
		{Shards: 8, Workers: 4},
		{Shards: 1000, Workers: 8}, // clamped to rows
	} {
		cfg0, cfg1 := cfg, cfg
		cfg0.Party, cfg1.Party = 0, 1
		r0, err := NewReplica(tab, cfg0)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := NewReplica(tab, cfg1)
		if err != nil {
			t.Fatal(err)
		}
		a0, err := r0.Answer(context.Background(), k0s)
		if err != nil {
			t.Fatalf("shards=%d: %v", cfg.Shards, err)
		}
		a1, err := r1.Answer(context.Background(), k1s)
		if err != nil {
			t.Fatalf("shards=%d: %v", cfg.Shards, err)
		}
		for q, idx := range indices {
			for l := 0; l < lanes; l++ {
				if a0[q][l] != want0[q][l] {
					t.Fatalf("shards=%d key %d lane %d: share %d != sequential %d",
						cfg.Shards, q, l, a0[q][l], want0[q][l])
				}
				if got := a0[q][l] + a1[q][l]; got != tab.Row(int(idx))[l] {
					t.Fatalf("shards=%d key %d lane %d: reconstructed %d != table %d",
						cfg.Shards, q, l, got, tab.Row(int(idx))[l])
				}
			}
		}
	}
}

// TestReplicaStrategies: sharding composes with every execution strategy.
func TestReplicaStrategies(t *testing.T) {
	const rows, lanes = 200, 2
	tab := buildTable(t, rows, lanes, 3)
	indices := []uint64{5, 199}
	k0s, k1s := genKeys(t, tab, indices, 4)
	for _, s := range []strategy.Strategy{
		strategy.CPUBaseline{Threads: 2},
		strategy.BranchParallel{},
		strategy.LevelByLevel{},
		strategy.MemBoundTree{K: 8, Fused: true},
		strategy.CoopGroups{},
	} {
		r0, err := NewReplica(tab, Config{Party: 0, Shards: 4, Workers: 2, Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		r1, err := NewReplica(tab, Config{Party: 1, Shards: 4, Workers: 2, Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		a0, err := r0.Answer(context.Background(), k0s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		a1, err := r1.Answer(context.Background(), k1s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for q, idx := range indices {
			for l := 0; l < lanes; l++ {
				if got := a0[q][l] + a1[q][l]; got != tab.Row(int(idx))[l] {
					t.Fatalf("%s key %d lane %d: reconstructed %d != table %d",
						s.Name(), q, l, got, tab.Row(int(idx))[l])
				}
			}
		}
	}
}

// TestReplicaUpdate: updates land in answers and are serialized against
// reads.
func TestReplicaUpdate(t *testing.T) {
	const rows, lanes = 64, 3
	tab := buildTable(t, rows, lanes, 5)
	r0, err := NewReplica(tab, Config{Party: 0, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewReplica(tab, Config{Party: 1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	newRow := []uint32{111, 222, 333}
	if err := r0.Update(10, newRow); err != nil {
		t.Fatal(err)
	}
	if err := r1.Update(10, newRow); err != nil {
		t.Fatal(err)
	}
	k0s, k1s := genKeys(t, tab, []uint64{10}, 6)
	a0, err := r0.Answer(context.Background(), k0s)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := r1.Answer(context.Background(), k1s)
	if err != nil {
		t.Fatal(err)
	}
	for l, want := range newRow {
		if got := a0[0][l] + a1[0][l]; got != want {
			t.Fatalf("lane %d: reconstructed %d != updated %d", l, got, want)
		}
	}
	if err := r0.Update(uint64(rows), newRow); err == nil {
		t.Error("out-of-range update accepted")
	}
	if err := r0.Update(0, []uint32{1}); err == nil {
		t.Error("wrong-width update accepted")
	}
}

// TestReplicaValidation: bad configurations and bad batches are rejected.
func TestReplicaValidation(t *testing.T) {
	tab := buildTable(t, 16, 1, 7)
	if _, err := NewReplica(nil, Config{}); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := NewReplica(tab, Config{Party: 2}); err == nil {
		t.Error("party 2 accepted")
	}
	if _, err := NewReplica(tab, Config{Shards: -1}); err == nil {
		t.Error("negative shards accepted")
	}
	r, err := NewReplica(tab, Config{Party: 0, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Answer(context.Background(), nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := r.Answer(context.Background(), [][]byte{{1, 2, 3}}); err == nil {
		t.Error("garbage key accepted")
	}
	_, k1s := genKeys(t, tab, []uint64{3}, 8)
	if _, err := r.Answer(context.Background(), k1s); err == nil {
		t.Error("wrong-party key accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k0s, _ := genKeys(t, tab, []uint64{3}, 9)
	if _, err := r.Answer(ctx, k0s); err == nil {
		t.Error("cancelled context accepted")
	}
}

// TestValidateKey: the no-evaluation key check front doors rely on.
func TestValidateKey(t *testing.T) {
	tab := buildTable(t, 64, 1, 20)
	r, err := NewReplica(tab, Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	k0s, k1s := genKeys(t, tab, []uint64{5}, 21)
	if err := r.ValidateKey(k0s[0]); err != nil {
		t.Errorf("valid key rejected: %v", err)
	}
	if err := r.ValidateKey(k1s[0]); err == nil {
		t.Error("wrong-party key accepted")
	}
	if err := r.ValidateKey([]byte{1, 2, 3}); err == nil {
		t.Error("garbage key accepted")
	}
	bigTab := buildTable(t, 256, 1, 22)
	bigKeys, _ := genKeys(t, bigTab, []uint64{5}, 23)
	if err := r.ValidateKey(bigKeys[0]); err == nil {
		t.Error("wrong-depth key accepted")
	}
}

// genKeysEarly is genKeys at an explicit early-termination depth.
func genKeysEarly(t testing.TB, tab *strategy.Table, indices []uint64, early int, seed int64) (k0s, k1s [][]byte) {
	t.Helper()
	prg := dpf.NewAESPRG()
	rng := rand.New(rand.NewSource(seed))
	for _, idx := range indices {
		key0, key1, err := dpf.GenEarly(prg, idx, tab.Bits(), []uint32{1}, early, rng)
		if err != nil {
			t.Fatal(err)
		}
		raw0, err := key0.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		raw1, err := key1.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		k0s = append(k0s, raw0)
		k1s = append(k1s, raw1)
	}
	return k0s, k1s
}

// TestEarlyDepthValidation: a replica serves exactly one key depth — the
// default replica rejects legacy full-depth keys and vice versa — and the
// rejection names the configured PRF, the parsed wire version, and both
// depths, so a mismatched client knows exactly what to fix.
func TestEarlyDepthValidation(t *testing.T) {
	tab := buildTable(t, 64, 1, 30)
	def, err := NewReplica(tab, Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := def.EarlyBits(), dpf.DefaultEarlyBits; got != want {
		t.Fatalf("default EarlyBits = %d, want %d", got, want)
	}
	v2Keys, _ := genKeys(t, tab, []uint64{5}, 31)
	v1Keys, _ := genKeysEarly(t, tab, []uint64{5}, 0, 32)

	if err := def.ValidateKey(v2Keys[0]); err != nil {
		t.Errorf("default replica rejected default key: %v", err)
	}
	err = def.ValidateKey(v1Keys[0])
	if err == nil {
		t.Fatal("default replica accepted full-depth key")
	}
	for _, want := range []string{"prg=aes128", "wire v1", "depth 0", "depth 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("v1-against-v2 error %q missing %q", err, want)
		}
	}
	if _, err := def.Answer(context.Background(), v1Keys); err == nil {
		t.Error("default replica answered full-depth key")
	}

	legacy, err := NewReplica(tab, Config{Party: 0, EarlyBits: FullDepthKeys})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.EarlyBits() != 0 {
		t.Fatalf("FullDepthKeys EarlyBits = %d, want 0", legacy.EarlyBits())
	}
	if err := legacy.ValidateKey(v1Keys[0]); err != nil {
		t.Errorf("legacy replica rejected full-depth key: %v", err)
	}
	err = legacy.ValidateKey(v2Keys[0])
	if err == nil {
		t.Fatal("legacy replica accepted early-terminated key")
	}
	if !strings.Contains(err.Error(), "wire v2") {
		t.Errorf("v2-against-v1 error %q missing wire version", err)
	}

	// Both depths answer when matched, and the shares they produce
	// reconstruct the same table row.
	legacy1, err := NewReplica(tab, Config{Party: 1, EarlyBits: FullDepthKeys})
	if err != nil {
		t.Fatal(err)
	}
	def1, err := NewReplica(tab, Config{Party: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, v1Party1 := genKeysEarly(t, tab, []uint64{5}, 0, 32)
	_, v2Party1 := genKeys(t, tab, []uint64{5}, 31)
	ctx := context.Background()
	a0v2, err := def.Answer(ctx, v2Keys)
	if err != nil {
		t.Fatal(err)
	}
	a1v2, err := def1.Answer(ctx, v2Party1)
	if err != nil {
		t.Fatal(err)
	}
	a0v1, err := legacy.Answer(ctx, v1Keys)
	if err != nil {
		t.Fatal(err)
	}
	a1v1, err := legacy1.Answer(ctx, v1Party1)
	if err != nil {
		t.Fatal(err)
	}
	want := tab.Row(5)[0]
	if got := a0v2[0][0] + a1v2[0][0]; got != want {
		t.Errorf("v2 reconstruction = %d, want %d", got, want)
	}
	if got := a0v1[0][0] + a1v1[0][0]; got != want {
		t.Errorf("v1 reconstruction = %d, want %d", got, want)
	}

	if _, err := NewReplica(tab, Config{Party: 0, EarlyBits: dpf.MaxEarlyBits + 1}); err == nil {
		t.Error("out-of-range EarlyBits accepted")
	}
}

// TestDefaultStrategyPerShard: the scheduler must see the shard width, not
// the table — a large sharded table wants the pruning traversal, not
// CoopGroups (whose RunRange cannot prune).
func TestDefaultStrategyPerShard(t *testing.T) {
	tab, err := strategy.NewTable(1<<strategy.CoopThresholdBits, 1)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := NewReplica(tab, Config{Party: 0, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := whole.Strategy().Name(); got != "coop-groups" {
		t.Errorf("unsharded 2^%d table got %s, want coop-groups", strategy.CoopThresholdBits, got)
	}
	sharded, err := NewReplica(tab, Config{Party: 0, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := sharded.Strategy().Name(); got != "membound-fused" {
		t.Errorf("8-way sharded 2^%d table got %s, want membound-fused (shard-width scheduling)", strategy.CoopThresholdBits, got)
	}
}

// TestReplicaShape: Shape and Counters are wired through.
func TestReplicaShape(t *testing.T) {
	tab := buildTable(t, 48, 5, 10)
	r, err := NewReplica(tab, Config{Party: 0, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows, lanes := r.Shape()
	if rows != 48 || lanes != 5 {
		t.Fatalf("Shape() = %d, %d; want 48, 5", rows, lanes)
	}
	if r.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", r.Shards())
	}
	k0s, _ := genKeys(t, tab, []uint64{1}, 11)
	if _, err := r.Answer(context.Background(), k0s); err != nil {
		t.Fatal(err)
	}
	if st := r.Counters(); st.PRFBlocks == 0 {
		t.Error("no PRF blocks counted")
	}
}
