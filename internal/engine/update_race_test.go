package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gpudpf/internal/strategy"
)

// fullTableWrites turns a table state into an every-row update batch.
func fullTableWrites(tab *strategy.Table) []RowWrite {
	writes := make([]RowWrite, tab.NumRows)
	for i := 0; i < tab.NumRows; i++ {
		writes[i] = RowWrite{Row: uint64(i), Vals: tab.Row(i)}
	}
	return writes
}

// shareSet classifies a batch answer against the two reference share sets:
// every key's share must match the SAME reference (a blend of the two
// table states inside one batch is a torn snapshot).
func shareSet(got [][]uint32, refA, refB [][]uint32) (string, error) {
	matches := func(ref [][]uint32) bool {
		for q := range got {
			for l := range got[q] {
				if got[q][l] != ref[q][l] {
					return false
				}
			}
		}
		return true
	}
	switch {
	case matches(refA):
		return "A", nil
	case matches(refB):
		return "B", nil
	}
	return "", errors.New("answer matches neither table state — torn or corrupt snapshot")
}

// raceFixture builds the two full-table states and their reference shares
// for a pool of keys.
type raceFixture struct {
	tabA, tabB *strategy.Table
	keys       [][]byte
	refA, refB [][]uint32
}

func buildRaceFixture(t *testing.T, rows, lanes int) *raceFixture {
	t.Helper()
	f := &raceFixture{
		tabA: buildTable(t, rows, lanes, 71),
		tabB: buildTable(t, rows, lanes, 72),
	}
	f.keys, _ = genKeys(t, f.tabA, []uint64{0, uint64(rows) / 3, uint64(rows) / 2, uint64(rows) - 1}, 73)
	for _, tab := range []*strategy.Table{f.tabA, f.tabB} {
		cp, err := strategy.NewTable(rows, lanes)
		if err != nil {
			t.Fatal(err)
		}
		copy(cp.Data, tab.Data)
		ref, err := NewReplica(cp, Config{Party: 0})
		if err != nil {
			t.Fatal(err)
		}
		shares, err := ref.Answer(context.Background(), f.keys)
		if err != nil {
			t.Fatal(err)
		}
		if tab == f.tabA {
			f.refA = shares
		} else {
			f.refB = shares
		}
	}
	return f
}

// TestConcurrentUpdateAnswerRace is the regression test for the historical
// Update/Answer race: writers flip the whole table between two states with
// UpdateBatch while readers hammer Answer. Snapshot pinning must make
// every batch answer exactly one state's shares — and the test must be
// clean under -race, which the old write-rows-in-place path could never
// be for backends sharing one table. (Run it with -race; the CI
// distributed job does.)
func TestConcurrentUpdateAnswerRace(t *testing.T) {
	const rows, lanes = 256, 4
	f := buildRaceFixture(t, rows, lanes)
	cp, err := strategy.NewTable(rows, lanes)
	if err != nil {
		t.Fatal(err)
	}
	copy(cp.Data, f.tabA.Data)
	rep, err := NewReplica(cp, Config{Party: 0, Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	writesA, writesB := fullTableWrites(f.tabA), fullTableWrites(f.tabB)

	var done atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				got, err := rep.Answer(context.Background(), f.keys)
				if err != nil {
					errCh <- err
					return
				}
				if _, err := shareSet(got, f.refA, f.refB); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < 60; i++ {
			writes := writesB
			if i%2 == 1 {
				writes = writesA
			}
			if _, err := rep.UpdateBatch(context.Background(), writes); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestClusterConcurrentUpdateAnswerRace is the cluster form of the same
// regression — and the shape that was GENUINELY racy before the store
// refactor: in-process shard replicas sharing one table slice, updates
// landing through one shard's lock while sibling shards streamed the same
// rows with no lock in common. Now each answer merges partials pinned to
// one epoch per shard, the merge refuses mixed epochs, and cluster
// UpdateBatch flips all shards in one handshake: every answer matches
// exactly one of the two table states.
func TestClusterConcurrentUpdateAnswerRace(t *testing.T) {
	const rows, lanes, shards = 256, 4, 4
	f := buildRaceFixture(t, rows, lanes)
	members := make([]ClusterShard, shards)
	for i := range members {
		cp, err := strategy.NewTable(rows, lanes)
		if err != nil {
			t.Fatal(err)
		}
		copy(cp.Data, f.tabA.Data)
		rep, err := NewReplica(cp, Config{Party: 0})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = ClusterShard{Backend: rep, Name: fmt.Sprintf("s%d", i)}
	}
	cluster, err := NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	writesA, writesB := fullTableWrites(f.tabA), fullTableWrites(f.tabB)

	var done atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	var mixedRefusals atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				got, err := cluster.Answer(context.Background(), f.keys)
				if err != nil {
					// A batch that straddles update after update can
					// exhaust its bounded retries; refusing loudly is
					// correct — blending would not be.
					if errors.Is(err, ErrMixedEpoch) {
						mixedRefusals.Add(1)
						continue
					}
					errCh <- err
					return
				}
				if _, err := shareSet(got, f.refA, f.refB); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < 40; i++ {
			writes := writesB
			if i%2 == 1 {
				writes = writesA
			}
			if _, err := cluster.UpdateBatch(context.Background(), writes); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	t.Logf("mixed-epoch refusals under churn: %d (all refused loudly, none blended)", mixedRefusals.Load())
}
