// Package engine unifies the server-side request path behind one seam: a
// Backend interface that every consumer (pir.Server, batchpir.Server,
// core.Service, serving.Batcher, cmd/pirserver) routes answers through, and
// a sharded Replica implementation that partitions the table into
// contiguous row ranges and fans each key batch across a bounded worker
// pool. Shares are additive (mod 2^32, lane-wise), so per-shard partial
// sums merge into exactly the answers a sequential evaluation produces —
// the same linearity the paper's multi-GPU scheme exploits (§3.2.7), here
// applied inside one replica so the hot path is parallel end to end.
// Future backends (GPU simulation, multi-device, remote shards) plug into
// the same interface.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

// Backend is one party's answer engine as seen by every request path.
type Backend interface {
	// Answer expands a batch of marshaled DPF keys against the table and
	// returns one answer share (Lanes wide) per key. Safe for concurrent
	// use; ctx cancels work between shards.
	Answer(ctx context.Context, keys [][]byte) ([][]uint32, error)
	// Update overwrites one row's content in place (the paper's
	// transparent embedding-update path, §4.2), serialized against this
	// backend's own in-flight Answers. Backends built over a shared table
	// (e.g. both parties' replicas in one process) do not see each
	// other's locks — callers owning such a pair must serialize updates
	// against answers themselves, as core.Service does.
	Update(row uint64, vals []uint32) error
	// Counters exposes the accumulated execution counters (PRF blocks,
	// modeled memory, traffic) for reporting.
	Counters() gpu.Stats
	// Shape returns the served table's row and lane counts.
	Shape() (rows, lanes int)
}

// Config assembles a Replica.
type Config struct {
	// Party is which share (0 or 1) the replica computes.
	Party int
	// Shards partitions the table into this many contiguous row ranges;
	// 0 or 1 is the unsharded, sequential-equivalent configuration.
	// Shards beyond the row count are clamped.
	Shards int
	// Workers bounds the shard worker pool (0 = GOMAXPROCS).
	Workers int
	// PRG is the PRF shared with clients (nil = aes128).
	PRG dpf.PRG
	// Strategy overrides the execution strategy (nil = the paper's
	// scheduler for the table's size).
	Strategy strategy.Strategy
}

// Replica is the sharded Backend over one party's table replica.
type Replica struct {
	party   uint8
	prg     dpf.PRG
	strat   strategy.Strategy
	tab     *strategy.Table
	bounds  []int // shard i covers rows [bounds[i], bounds[i+1])
	workers int

	// mu serializes Update (write) against in-flight Answers (read) so
	// a row never changes mid-batch.
	mu  sync.RWMutex
	ctr gpu.Counters
}

// NewReplica builds the sharded engine over the table. The table is shared,
// not copied; all mutations must go through Update.
func NewReplica(tab *strategy.Table, cfg Config) (*Replica, error) {
	if cfg.Party != 0 && cfg.Party != 1 {
		return nil, fmt.Errorf("engine: party must be 0 or 1, got %d", cfg.Party)
	}
	if tab == nil || tab.NumRows == 0 {
		return nil, fmt.Errorf("engine: replica needs a table")
	}
	if cfg.Shards < 0 || cfg.Workers < 0 {
		return nil, fmt.Errorf("engine: negative Shards/Workers (%d/%d)", cfg.Shards, cfg.Workers)
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > tab.NumRows {
		shards = tab.NumRows
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	prg := cfg.PRG
	if prg == nil {
		prg = dpf.NewAESPRG()
	}
	strat := cfg.Strategy
	if strat == nil {
		// Schedule for the shard width, not the whole table: a shard only
		// walks its own range, so a 2^24 table split 8 ways wants the
		// strategy for 2^21-row tables. Scheduling on table bits would
		// hand large sharded tables CoopGroups, whose breadth-first
		// RunRange cannot prune and would multiply total work by the
		// shard count.
		shardRows := (tab.NumRows + shards - 1) / shards
		widthBits := 1
		for 1<<uint(widthBits) < shardRows {
			widthBits++
		}
		strat = strategy.Schedule(widthBits)
	}
	bounds := make([]int, shards+1)
	for i := range bounds {
		bounds[i] = i * tab.NumRows / shards
	}
	return &Replica{
		party:   uint8(cfg.Party),
		prg:     prg,
		strat:   strat,
		tab:     tab,
		bounds:  bounds,
		workers: workers,
	}, nil
}

// Party returns which share (0 or 1) this replica computes.
func (r *Replica) Party() int { return int(r.party) }

// Table returns the served table (shared, not copied).
func (r *Replica) Table() *strategy.Table { return r.tab }

// Shards returns the shard count.
func (r *Replica) Shards() int { return len(r.bounds) - 1 }

// Strategy returns the execution strategy shards run.
func (r *Replica) Strategy() strategy.Strategy { return r.strat }

// Shape implements Backend.
func (r *Replica) Shape() (rows, lanes int) { return r.tab.NumRows, r.tab.Lanes }

// Counters implements Backend.
func (r *Replica) Counters() gpu.Stats { return r.ctr.Snapshot() }

// ValidateKey checks a marshaled key against the replica without
// evaluating it: it must unmarshal, carry this replica's party, be scalar,
// and match the table's tree depth. Front doors that coalesce many
// clients' keys into one batch (serving.Batcher) use it to reject a bad
// key at its own request instead of failing every co-batched request.
func (r *Replica) ValidateKey(raw []byte) error {
	var k dpf.Key
	if err := k.UnmarshalBinary(raw); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if k.Party != r.party {
		return fmt.Errorf("engine: key is for party %d, this replica is party %d", k.Party, r.party)
	}
	if k.Lanes != 1 {
		return fmt.Errorf("engine: key has %d lanes; PIR keys are scalar", k.Lanes)
	}
	if bits := r.tab.Bits(); k.Bits != bits {
		return fmt.Errorf("engine: key has %d bits, table needs %d", k.Bits, bits)
	}
	return nil
}

// Answer implements Backend: keys are unmarshaled and validated once, then
// every shard evaluates the whole batch over its row range on the bounded
// worker pool, and the per-shard partial shares are summed lane-wise.
func (r *Replica) Answer(ctx context.Context, rawKeys [][]byte) ([][]uint32, error) {
	if len(rawKeys) == 0 {
		return nil, fmt.Errorf("engine: empty key batch")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	keys := make([]*dpf.Key, len(rawKeys))
	for i, raw := range rawKeys {
		var k dpf.Key
		if err := k.UnmarshalBinary(raw); err != nil {
			return nil, fmt.Errorf("engine: key %d: %w", i, err)
		}
		if k.Party != r.party {
			return nil, fmt.Errorf("engine: key %d is for party %d, this replica is party %d", i, k.Party, r.party)
		}
		keys[i] = &k
	}

	r.mu.RLock()
	defer r.mu.RUnlock()
	shards := r.Shards()
	if shards == 1 {
		answers, err := r.strat.RunRange(r.prg, keys, r.tab, 0, r.tab.NumRows, &r.ctr)
		if err != nil {
			return nil, fmt.Errorf("engine: evaluating batch: %w", err)
		}
		return answers, nil
	}

	partials := make([][][]uint32, shards)
	errs := make([]error, shards)
	jobs := make(chan int)
	workers := r.workers
	if workers > shards {
		workers = shards
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				partials[i], errs[i] = r.strat.RunRange(r.prg, keys, r.tab, r.bounds[i], r.bounds[i+1], &r.ctr)
			}
		}()
	}
	for i := 0; i < shards; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: shard %d [%d,%d): %w", i, r.bounds[i], r.bounds[i+1], err)
		}
	}

	// Merge: shard 0's partials become the answers, the rest accumulate in.
	answers := partials[0]
	for s := 1; s < shards; s++ {
		for q := range answers {
			part := partials[s][q]
			for l := range answers[q] {
				answers[q][l] += part[l]
			}
		}
	}
	return answers, nil
}

// Update implements Backend.
func (r *Replica) Update(row uint64, vals []uint32) error {
	if row >= uint64(r.tab.NumRows) {
		return fmt.Errorf("engine: update row %d outside table of %d rows", row, r.tab.NumRows)
	}
	if len(vals) != r.tab.Lanes {
		return fmt.Errorf("engine: update has %d lanes, table rows have %d", len(vals), r.tab.Lanes)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	copy(r.tab.Row(int(row)), vals)
	return nil
}

var _ Backend = (*Replica)(nil)
