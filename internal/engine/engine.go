// Package engine unifies the server-side request path behind one seam: a
// Backend interface that every consumer (pir.Server, batchpir.Server,
// core.Service, serving.Batcher, cmd/pirserver) routes answers through, and
// a sharded Replica implementation that partitions the table into
// contiguous row ranges and fans each key batch across a bounded worker
// pool. Shares are additive (mod 2^32, lane-wise), so per-shard partial
// sums merge into exactly the answers a sequential evaluation produces —
// the same linearity the paper's multi-GPU scheme exploits (§3.2.7), here
// applied inside one replica so the hot path is parallel end to end.
// Future backends (GPU simulation, multi-device, remote shards) plug into
// the same interface.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/store"
	"gpudpf/internal/strategy"
)

// Backend is one party's answer engine as seen by every request path.
type Backend interface {
	// Answer expands a batch of marshaled DPF keys against the table and
	// returns one answer share (Lanes wide) per key. Safe for concurrent
	// use; ctx cancels work between shards. Each call evaluates against
	// one consistent table epoch: an update installed mid-batch is not
	// seen by that batch.
	Answer(ctx context.Context, keys [][]byte) ([][]uint32, error)
	// Update overwrites one row's content (the paper's transparent
	// embedding-update path, §4.2). Backends over an epoch-versioned
	// store install the write as a new table epoch without blocking
	// in-flight Answers, which keep their pinned snapshot; batch writes
	// go through EpochBackend.UpdateBatch.
	Update(row uint64, vals []uint32) error
	// Counters exposes the accumulated execution counters (PRF blocks,
	// modeled memory, traffic) for reporting.
	Counters() gpu.Stats
	// Shape returns the served table's row and lane counts.
	Shape() (rows, lanes int)
}

// RangeBackend is a Backend that can also evaluate a batch against a row
// sub-range of its domain, returning per-key PARTIAL answer shares:
// summing the partials of ranges that partition [0, rows) lane-wise
// (mod 2^32) yields exactly Answer's shares — the same linearity
// Replica's in-process shards exploit, exposed so a Cluster can split one
// logical replica's row domain across backends that live in other
// processes or on other machines (shardnet.Client is the remote
// implementation).
type RangeBackend interface {
	Backend
	// AnswerRange evaluates the keys against rows [lo, hi) only.
	AnswerRange(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error)
}

// BackendInfo exposes the serving configuration a backend pins — the
// facts two backends must agree on before their partial shares can be
// merged. Cluster uses it to reject a mixed-configuration shard set at
// construction instead of serving garbage shares.
type BackendInfo interface {
	// PRGName names the PRF served keys must use.
	PRGName() string
	// EarlyBits is the early-termination depth served keys must carry
	// (0 = legacy full-depth wire-v1 keys).
	EarlyBits() int
	// Party is which share (0 or 1) the backend computes.
	Party() int
}

// RangeHolder reports which global rows a backend authoritatively holds.
// A shard node serving rows [lo, hi) of a larger domain answers garbage
// outside that range; Cluster checks each shard's assignment against it.
type RangeHolder interface {
	HeldRange() (lo, hi int)
}

// KeyValidator checks a marshaled key against a backend's configuration
// without evaluating it. Batching front doors use it to reject a bad key
// at its own request instead of failing every co-batched request.
type KeyValidator interface {
	ValidateKey(raw []byte) error
}

// Config assembles a Replica.
type Config struct {
	// Party is which share (0 or 1) the replica computes.
	Party int
	// Shards partitions the table into this many contiguous row ranges;
	// 0 or 1 is the unsharded, sequential-equivalent configuration.
	// Shards beyond the row count are clamped.
	Shards int
	// Workers bounds the shard worker pool (0 = GOMAXPROCS).
	Workers int
	// PRG is the PRF shared with clients (nil = aes128). Every PRF of the
	// Table 5 sweep (aes128, sha256, chacha20, siphash, highway) is
	// servable — cmd/pirserver wires this through its -prg flag, so the
	// sweep is reachable from the TCP serving path. Key validation errors
	// name the replica's PRF: the wire format carries no PRF identifier,
	// so a client on the wrong PRF otherwise fails silently with garbage
	// shares.
	PRG dpf.PRG
	// EarlyBits is the early-termination depth (§3.1) served keys must
	// carry, shared with clients like the PRF. 0 means the dpf default for
	// the table's tree depth (DefaultEarlyBits, clamped — what
	// pir.NewClient emits); FullDepthKeys serves legacy full-depth wire-v1
	// keys. The strategies' tiled walkers need depth-uniform batches, so
	// the replica pins one depth and rejects mismatched keys loudly at
	// validation instead of failing co-batched requests downstream.
	EarlyBits int
	// Strategy overrides the execution strategy (nil = the paper's
	// scheduler for the table's size).
	Strategy strategy.Strategy
}

// FullDepthKeys configures a replica (Config.EarlyBits) to serve legacy
// full-depth wire-v1 keys.
const FullDepthKeys = -1

// Replica is the sharded Backend over one party's table replica. The
// table lives in an epoch-versioned store.Store: every Answer pins one
// immutable snapshot for the whole batch, and updates install new epochs
// without blocking readers — Update/Answer share no lock at all.
type Replica struct {
	party   uint8
	prg     dpf.PRG
	early   int // early-termination depth served keys must carry
	strat   strategy.Strategy
	st      *store.Store
	rows    int
	lanes   int
	bits    int
	bounds  []int // shard i covers rows [bounds[i], bounds[i+1])
	workers int

	ctr gpu.Counters

	// scratch recycles Answer's per-call state — unmarshaled keys (whose
	// correction-word and final-CW slices are reused across calls) and
	// per-shard partial-share buffers — so the steady-state Answer path
	// allocates nothing beyond the returned answer slices.
	scratch sync.Pool
}

// NewReplica builds the sharded engine over the table, adopting it as
// epoch 0 of a fresh store.Store — the caller must not mutate the table
// afterwards; all writes go through Update/UpdateBatch (which install new
// epochs and leave prior snapshots untouched).
func NewReplica(tab *strategy.Table, cfg Config) (*Replica, error) {
	if tab == nil || tab.NumRows == 0 {
		return nil, fmt.Errorf("engine: replica needs a table")
	}
	st, err := store.New(tab)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return NewReplicaOverStore(st, cfg)
}

// NewReplicaOverStore builds the sharded engine over an existing
// epoch-versioned store — the constructor for callers that coordinate the
// store's epochs themselves or share one store between replicas (both
// parties of an in-process test pair, a replica and its admin updater).
func NewReplicaOverStore(st *store.Store, cfg Config) (*Replica, error) {
	if cfg.Party != 0 && cfg.Party != 1 {
		return nil, fmt.Errorf("engine: party must be 0 or 1, got %d", cfg.Party)
	}
	if st == nil {
		return nil, fmt.Errorf("engine: replica needs a store")
	}
	if cfg.Shards < 0 || cfg.Workers < 0 {
		return nil, fmt.Errorf("engine: negative Shards/Workers (%d/%d)", cfg.Shards, cfg.Workers)
	}
	rows, lanes := st.Shape()
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > rows {
		shards = rows
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	prg := cfg.PRG
	if prg == nil {
		prg = dpf.NewAESPRG()
	}
	bits := dpf.DomainBits(rows)
	early := cfg.EarlyBits
	switch {
	case early == 0:
		early = dpf.DefaultEarly(bits, 1)
	case early == FullDepthKeys:
		early = 0
	case early < 0 || early > dpf.MaxEarlyBits:
		return nil, fmt.Errorf("engine: EarlyBits %d out of range [%d,%d]", cfg.EarlyBits, FullDepthKeys, dpf.MaxEarlyBits)
	default:
		// Clamp like the client side so matching flags stay matched on
		// tiny tables.
		early = dpf.ClampEarly(early, bits)
	}
	strat := cfg.Strategy
	if strat == nil {
		// Schedule for the shard width, not the whole table: a shard only
		// walks its own range, so a 2^24 table split 8 ways wants the
		// strategy for 2^21-row tables. Scheduling on table bits would
		// hand large sharded tables CoopGroups, whose breadth-first
		// RunRange cannot prune and would multiply total work by the
		// shard count.
		shardRows := (rows + shards - 1) / shards
		strat = strategy.Schedule(dpf.DomainBits(shardRows))
	}
	// Surplus worker budget flows down into the strategy layer: the shard
	// fan-out can use at most `shards` workers, so when shards < workers the
	// leftover per-shard budget fans each shard's table stream across row
	// blocks instead (a 1-shard replica finally scales with cores). Answers
	// are bit-identical either way, and the counters still pin to the
	// analytic Model — the same work is accounted once however it fans out.
	if per := workers / shards; per > 1 {
		strat = strategy.WithWorkers(strat, per)
	}
	bounds := make([]int, shards+1)
	for i := 0; i < shards; i++ {
		bounds[i], bounds[i+1] = ShardRange(rows, i, shards)
	}
	return &Replica{
		party:   uint8(cfg.Party),
		prg:     prg,
		early:   early,
		strat:   strat,
		st:      st,
		rows:    rows,
		lanes:   lanes,
		bits:    bits,
		bounds:  bounds,
		workers: workers,
	}, nil
}

// Party returns which share (0 or 1) this replica computes.
func (r *Replica) Party() int { return int(r.party) }

// Table materializes a copy of the current epoch's table. A snapshot's
// own buffers are only guaranteed stable while pinned (superseded backings
// are recycled into later epochs' copies), and this method cannot hand the
// pin to the caller — so it copies, assembling from the snapshot's chunk
// iterator (which works for delta-epoch overlays and paged backings alike;
// a paged backing can surface a read error). It is a debugging/reporting
// accessor, not a hot path; code that needs zero-copy reads pins a
// snapshot via Store().Acquire and releases it when done.
func (r *Replica) Table() (*strategy.Table, error) {
	snap := r.st.Acquire()
	defer snap.Release()
	return strategy.TableFromView(snap)
}

// Store returns the replica's epoch-versioned table store — the seam for
// coordinated updates (engine.Cluster's epoch handshake) and for sharing
// one table between replicas.
func (r *Replica) Store() *store.Store { return r.st }

// Shards returns the shard count.
func (r *Replica) Shards() int { return len(r.bounds) - 1 }

// Strategy returns the execution strategy shards run.
func (r *Replica) Strategy() strategy.Strategy { return r.strat }

// EarlyBits returns the early-termination depth served keys must carry
// (0 = legacy full-depth wire-v1 keys).
func (r *Replica) EarlyBits() int { return r.early }

// PRGName implements BackendInfo: the PRF served keys must use.
func (r *Replica) PRGName() string { return r.prg.Name() }

// HeldRange implements RangeHolder: a replica holds its whole table.
func (r *Replica) HeldRange() (lo, hi int) { return 0, r.rows }

// Shape implements Backend.
func (r *Replica) Shape() (rows, lanes int) { return r.rows, r.lanes }

// Counters implements Backend.
func (r *Replica) Counters() gpu.Stats { return r.ctr.Snapshot() }

// keyErrPrefix tags a key-validation error with the replica's configured
// PRF and the parsed wire version of the offending key — the two facts a
// failing client needs first: the wire format carries no PRF identifier,
// and a v1/v2 mismatch (a legacy client against an early-termination
// replica, or vice versa) is otherwise indistinguishable from corruption.
func (r *Replica) keyErrPrefix(raw []byte) string {
	return fmt.Sprintf("engine (prg=%s, key wire v%d)", r.prg.Name(), dpf.WireVersion(raw))
}

// validatePinnedKey checks an unmarshaled key against a pinned serving
// configuration — the one shared core behind Replica.validateKey and
// Cluster.ValidateKey, so the in-process and distributed front doors can
// never drift apart in what they accept or how they explain a rejection.
// Errors carry no context prefix; callers wrap with theirs on the (cold)
// failure path, keeping the hot path allocation-free.
func validatePinnedKey(k *dpf.Key, party, bits, early int) error {
	if int(k.Party) != party {
		return fmt.Errorf("key is for party %d, this backend serves party %d", k.Party, party)
	}
	if k.Lanes != 1 {
		return fmt.Errorf("key has %d lanes; PIR keys are scalar", k.Lanes)
	}
	if k.Bits != bits {
		return fmt.Errorf("key has %d bits, table needs %d", k.Bits, bits)
	}
	if k.Early != early {
		return fmt.Errorf("key has early-termination depth %d, this backend serves depth %d — generate keys with the matching -early (0 needs wire v1, 1+ wire v2)",
			k.Early, early)
	}
	return nil
}

// validateKey checks an unmarshaled key against the replica's party, lane
// shape, tree depth, and configured early-termination depth.
func (r *Replica) validateKey(raw []byte, k *dpf.Key) error {
	if err := validatePinnedKey(k, int(r.party), r.bits, r.early); err != nil {
		return fmt.Errorf("%s: %w", r.keyErrPrefix(raw), err)
	}
	return nil
}

// ValidateKey checks a marshaled key against the replica without
// evaluating it: it must unmarshal, carry this replica's party, be scalar,
// and match the table's tree depth and the replica's early-termination
// depth. Front doors that coalesce many clients' keys into one batch
// (serving.Batcher) use it to reject a bad key at its own request instead
// of failing every co-batched request — the depth check also keeps batches
// depth-uniform, which the strategies' tiled walkers require. Errors name
// the replica's PRF and the key's parsed wire version.
func (r *Replica) ValidateKey(raw []byte) error {
	var k dpf.Key
	if err := k.UnmarshalBinary(raw); err != nil {
		return fmt.Errorf("%s: %w", r.keyErrPrefix(raw), err)
	}
	return r.validateKey(raw, &k)
}

// getAnswerScratch pops a pooled scratch or makes the first one.
func getAnswerScratch(p *sync.Pool) *answerScratch {
	if sc, ok := p.Get().(*answerScratch); ok {
		return sc
	}
	return new(answerScratch)
}

// answerScratch is Answer's pooled per-call state. Keys are unmarshaled
// into retained dpf.Key structs (UnmarshalBinary reuses their CW/Final
// capacity), and shard partials live in one flat backing that is cleared,
// not reallocated, per call.
type answerScratch struct {
	keys     []dpf.Key
	keyPtrs  []*dpf.Key
	flat     []uint32
	hdr      [][]uint32
	partials [][][]uint32
	errs     []error
}

// grow sizes the scratch for a batch × shards call, preserving the
// retained keys' internal slices.
func (s *answerScratch) grow(batch, shards, lanes int) {
	if cap(s.keys) < batch {
		keys := make([]dpf.Key, batch)
		copy(keys, s.keys)
		s.keys = keys
	}
	s.keys = s.keys[:batch]
	if cap(s.keyPtrs) < batch {
		s.keyPtrs = make([]*dpf.Key, batch)
	}
	s.keyPtrs = s.keyPtrs[:batch]
	for i := range s.keyPtrs {
		s.keyPtrs[i] = &s.keys[i]
	}
	if shards == 0 {
		return
	}
	need := shards * batch * lanes
	if cap(s.flat) < need {
		s.flat = make([]uint32, need)
	}
	s.flat = s.flat[:need]
	clear(s.flat) // strategies accumulate into zeroed partials
	if cap(s.hdr) < shards*batch {
		s.hdr = make([][]uint32, shards*batch)
	}
	s.hdr = s.hdr[:shards*batch]
	if cap(s.partials) < shards {
		s.partials = make([][][]uint32, shards)
	}
	s.partials = s.partials[:shards]
	if cap(s.errs) < shards {
		s.errs = make([]error, shards)
	}
	s.errs = s.errs[:shards]
	for i := range s.errs {
		s.errs[i] = nil
	}
	for sh := 0; sh < shards; sh++ {
		rows := s.hdr[sh*batch : (sh+1)*batch]
		for q := 0; q < batch; q++ {
			off := (sh*batch + q) * lanes
			rows[q] = s.flat[off : off+lanes]
		}
		s.partials[sh] = rows
	}
}

// Answer implements Backend: keys are unmarshaled and validated once into
// pooled key structs, then every shard evaluates the whole batch over its
// row range on the bounded worker pool via the strategy's allocation-free
// RunRangeInto, and the per-shard partial shares are merged in place into
// the returned answers. Steady state, the only allocations are the
// returned answer slices themselves. The whole batch runs against ONE
// pinned table snapshot: a concurrent update neither blocks it nor tears
// it.
func (r *Replica) Answer(ctx context.Context, rawKeys [][]byte) ([][]uint32, error) {
	answers, _, err := r.answerBounds(ctx, rawKeys, r.bounds)
	return answers, err
}

// AnswerRange implements RangeBackend: the batch is evaluated against rows
// [lo, hi) only, the range split across the replica's shard/worker budget
// exactly like Answer splits the full table, yielding the partial shares a
// Cluster merges. Unlike Answer's steady state, the per-call shard bounds
// are freshly allocated — this is the network-facing path, not the
// in-process hot path.
func (r *Replica) AnswerRange(ctx context.Context, rawKeys [][]byte, lo, hi int) ([][]uint32, error) {
	answers, _, _, err := r.AnswerRangeEpoch(ctx, rawKeys, lo, hi)
	return answers, err
}

// AnswerRangeEpoch implements EpochRangeBackend: AnswerRange plus the
// epoch of the snapshot the partials were computed against — what lets a
// Cluster refuse to merge partials from different table versions. ok is
// always true: a replica's table is always epoch-versioned.
func (r *Replica) AnswerRangeEpoch(ctx context.Context, rawKeys [][]byte, lo, hi int) ([][]uint32, uint64, bool, error) {
	if lo < 0 || hi > r.rows || lo >= hi {
		return nil, 0, false, fmt.Errorf("engine: row range [%d,%d) invalid for table of %d rows", lo, hi, r.rows)
	}
	shards := r.Shards()
	if shards > hi-lo {
		shards = hi - lo
	}
	bounds := make([]int, shards+1)
	for i := range bounds {
		bounds[i] = lo + i*(hi-lo)/shards
	}
	answers, epoch, err := r.answerBounds(ctx, rawKeys, bounds)
	return answers, epoch, err == nil, err
}

// answerBounds is the shared Answer/AnswerRange core: shard i of the call
// covers rows [bounds[i], bounds[i+1]). The returned epoch is the pinned
// snapshot's.
func (r *Replica) answerBounds(ctx context.Context, rawKeys [][]byte, bounds []int) ([][]uint32, uint64, error) {
	if len(rawKeys) == 0 {
		return nil, 0, fmt.Errorf("engine: empty key batch")
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	// sc is initialized exactly once and never reassigned: the shard
	// workers' closure captures it, and capturing a reassigned variable
	// would heap-move it on every call.
	sc := getAnswerScratch(&r.scratch)
	shards := len(bounds) - 1
	partialShards := shards
	if shards == 1 {
		partialShards = 0 // sequential path accumulates straight into answers
	}
	sc.grow(len(rawKeys), partialShards, r.lanes)
	keys := sc.keyPtrs
	for i, raw := range rawKeys {
		if err := keys[i].UnmarshalBinary(raw); err != nil {
			r.scratch.Put(sc)
			return nil, 0, fmt.Errorf("%s: key %d: %w", r.keyErrPrefix(raw), i, err)
		}
		if err := r.validateKey(raw, keys[i]); err != nil {
			r.scratch.Put(sc)
			return nil, 0, fmt.Errorf("key %d: %w", i, err)
		}
	}
	answers := strategy.NewAnswers(len(rawKeys), r.lanes)

	// Pin one table epoch for the whole batch: every shard of this call
	// streams the same immutable snapshot, and a concurrent update
	// neither blocks behind the batch nor changes rows under it.
	snap := r.st.Acquire()
	defer snap.Release()
	epoch := snap.Epoch()
	if shards == 1 {
		err := r.strat.RunRangeInto(r.prg, keys, snap, bounds[0], bounds[1], &r.ctr, answers)
		r.scratch.Put(sc)
		if err != nil {
			return nil, 0, fmt.Errorf("engine: evaluating batch: %w", err)
		}
		return answers, epoch, nil
	}

	workers := r.workers
	if workers > shards {
		workers = shards
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= shards {
					return
				}
				if err := ctx.Err(); err != nil {
					sc.errs[i] = err
					continue
				}
				sc.errs[i] = r.strat.RunRangeInto(r.prg, keys, snap, bounds[i], bounds[i+1], &r.ctr, sc.partials[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range sc.errs {
		if err != nil {
			r.scratch.Put(sc)
			return nil, 0, fmt.Errorf("engine: shard %d [%d,%d): %w", i, bounds[i], bounds[i+1], err)
		}
	}

	// Merge the shard partials in place into the answers.
	for s := 0; s < shards; s++ {
		for q := range answers {
			part := sc.partials[s][q]
			for l := range answers[q] {
				answers[q][l] += part[l]
			}
		}
	}
	r.scratch.Put(sc)
	return answers, epoch, nil
}

// Update implements Backend: the single-row form of UpdateBatch, installed
// as a new table epoch (in-flight Answers keep their pinned snapshot).
func (r *Replica) Update(row uint64, vals []uint32) error {
	if row >= uint64(r.rows) {
		return fmt.Errorf("engine: update row %d outside table of %d rows", row, r.rows)
	}
	if len(vals) != r.lanes {
		return fmt.Errorf("engine: update has %d lanes, table rows have %d", len(vals), r.lanes)
	}
	_, err := r.UpdateBatch(context.Background(), []RowWrite{{Row: row, Vals: vals}})
	return err
}

var _ RangeBackend = (*Replica)(nil)
var _ BackendInfo = (*Replica)(nil)
var _ RangeHolder = (*Replica)(nil)
var _ KeyValidator = (*Replica)(nil)
var _ EpochBackend = (*Replica)(nil)
var _ EpochRangeBackend = (*Replica)(nil)
