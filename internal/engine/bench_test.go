package engine

import (
	"context"
	"fmt"
	"testing"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

// BenchmarkEngineAnswer sweeps shards × workers over an 80k-row table at a
// small batch size — the regime where the seed's strictly sequential path
// underutilizes the host, since per-key parallelism alone cannot fill the
// cores. The "seedpath" case is exactly what pir.Server.Answer did before
// the engine existed: strategy.Run over the full padded DPF domain (the
// table's 80k rows pad to a 2^17 domain, so ~37% of its PRF work hits
// all-zero rows); shards=1 is the engine's sequential-equivalent
// configuration, which keeps the same calibrated full-domain walk. The
// multi-shard rows beat both on two counts: each shard's ranged walk
// prunes the padded tail (a win even at GOMAXPROCS=1 — roughly the 1.6×
// domain/rows ratio here), and on multi-core hosts the bounded worker pool
// fans the shards out for a further ~linear speedup. Run with:
//
//	go test ./internal/engine -bench EngineAnswer -benchtime 3x
func BenchmarkEngineAnswer(b *testing.B) {
	const rows, lanes, batch = 80 << 10, 16, 4
	tab := buildTable(b, rows, lanes, 1)
	k0s, _ := genKeys(b, tab, []uint64{3, 9999, 40000, 81000}[:batch], 2)

	b.Run("seedpath", func(b *testing.B) {
		prg := dpf.NewAESPRG()
		strat := strategy.Schedule(tab.Bits())
		keys := make([]*dpf.Key, len(k0s))
		for i, raw := range k0s {
			var k dpf.Key
			if err := k.UnmarshalBinary(raw); err != nil {
				b.Fatal(err)
			}
			keys[i] = &k
		}
		var ctr gpu.Counters
		b.ReportAllocs()
		b.SetBytes(int64(rows) * int64(lanes) * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := strat.Run(prg, keys, tab, &ctr); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, cfg := range []struct{ shards, workers int }{
		{1, 1},
		{2, 2},
		{4, 4},
		{8, 8},
		{16, 8},
	} {
		b.Run(fmt.Sprintf("shards=%d/workers=%d", cfg.shards, cfg.workers), func(b *testing.B) {
			r, err := NewReplica(tab, Config{Party: 0, Shards: cfg.shards, Workers: cfg.workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetBytes(int64(rows) * int64(lanes) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Answer(context.Background(), k0s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
