package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"gpudpf/internal/gpu"
)

// stubRange is a scriptable RangeBackend for fault and validation tests.
type stubRange struct {
	rows, lanes int
	fail        error
	onAnswer    func(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error)
}

func (s *stubRange) Answer(ctx context.Context, keys [][]byte) ([][]uint32, error) {
	return s.AnswerRange(ctx, keys, 0, s.rows)
}

func (s *stubRange) AnswerRange(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error) {
	if s.onAnswer != nil {
		return s.onAnswer(ctx, keys, lo, hi)
	}
	if s.fail != nil {
		return nil, s.fail
	}
	out := make([][]uint32, len(keys))
	for i := range out {
		out[i] = make([]uint32, s.lanes)
	}
	return out, nil
}

func (s *stubRange) Update(row uint64, vals []uint32) error { return s.fail }
func (s *stubRange) Counters() gpu.Stats                    { return gpu.Stats{PRFBlocks: 10, ReadBytes: 20} }
func (s *stubRange) Shape() (int, int)                      { return s.rows, s.lanes }

// TestClusterMatchesReplicaInProcess: clusters of 1..5 in-process replica
// shards answer bit-identically to the unsharded replica, for both
// parties, and the reconstruction matches the table.
func TestClusterMatchesReplicaInProcess(t *testing.T) {
	const rows, lanes = 300, 4
	tab := buildTable(t, rows, lanes, 21)
	indices := []uint64{0, 7, 128, 299}
	k0s, k1s := genKeys(t, tab, indices, 22)

	refs := make([]*Replica, 2)
	for p := range refs {
		var err error
		refs[p], err = NewReplica(tab, Config{Party: p})
		if err != nil {
			t.Fatal(err)
		}
	}
	for shards := 1; shards <= 5; shards++ {
		clusters := make([]*Cluster, 2)
		for p := range clusters {
			members := make([]ClusterShard, shards)
			for i := range members {
				rep, err := NewReplica(tab, Config{Party: p})
				if err != nil {
					t.Fatal(err)
				}
				members[i] = ClusterShard{Backend: rep}
			}
			var err error
			clusters[p], err = NewCluster(members...)
			if err != nil {
				t.Fatal(err)
			}
			if !clusters[p].Pinned() {
				t.Fatal("all-replica cluster not pinned")
			}
		}
		for p, keys := range [][][]byte{k0s, k1s} {
			want, err := refs[p].Answer(context.Background(), keys)
			if err != nil {
				t.Fatal(err)
			}
			got, err := clusters[p].Answer(context.Background(), keys)
			if err != nil {
				t.Fatalf("shards=%d party=%d: %v", shards, p, err)
			}
			for q := range want {
				for l := range want[q] {
					if got[q][l] != want[q][l] {
						t.Fatalf("shards=%d party=%d query=%d lane=%d: cluster %#x, replica %#x",
							shards, p, q, l, got[q][l], want[q][l])
					}
				}
			}
		}
		// Reconstruction across the two clusters yields the table rows.
		a0, err := clusters[0].Answer(context.Background(), k0s)
		if err != nil {
			t.Fatal(err)
		}
		a1, err := clusters[1].Answer(context.Background(), k1s)
		if err != nil {
			t.Fatal(err)
		}
		for q, idx := range indices {
			row := tab.Row(int(idx))
			for l := range row {
				if a0[q][l]+a1[q][l] != row[l] {
					t.Fatalf("shards=%d: row %d lane %d does not reconstruct", shards, idx, l)
				}
			}
		}
	}
}

// TestClusterUpdate: writes route to the owning shard and are visible to
// the next answer; out-of-shape writes are rejected.
func TestClusterUpdate(t *testing.T) {
	const rows, lanes = 200, 4
	tab := buildTable(t, rows, lanes, 23)
	members := make([]ClusterShard, 4)
	for i := range members {
		rep, err := NewReplica(tab, Config{Party: 0})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = ClusterShard{Backend: rep}
	}
	cluster, err := NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReplica(buildTable(t, rows, lanes, 23), Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Rows in different shards' ranges — since all in-process shards share
	// one table here, routing correctness shows as the write landing at all.
	for _, row := range []uint64{0, 60, 120, 199} {
		vals := []uint32{uint32(row), 2, 3, 4}
		if err := cluster.Update(row, vals); err != nil {
			t.Fatal(err)
		}
		if err := ref.Update(row, vals); err != nil {
			t.Fatal(err)
		}
	}
	k0s, _ := genKeys(t, tab, []uint64{0, 60, 120, 199}, 24)
	got, err := cluster.Answer(context.Background(), k0s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Answer(context.Background(), k0s)
	if err != nil {
		t.Fatal(err)
	}
	for q := range want {
		for l := range want[q] {
			if got[q][l] != want[q][l] {
				t.Fatalf("post-update query %d lane %d: cluster %#x, replica %#x", q, l, got[q][l], want[q][l])
			}
		}
	}
	if err := cluster.Update(uint64(rows), []uint32{1, 2, 3, 4}); err == nil {
		t.Fatal("out-of-range update accepted")
	}
	if err := cluster.Update(0, []uint32{1}); err == nil {
		t.Fatal("wrong-width update accepted")
	}
}

// TestClusterConstructionValidation: shape disagreement, oversubscription
// and nil backends are refused with the shard named.
func TestClusterConstructionValidation(t *testing.T) {
	if _, err := NewCluster(); err == nil {
		t.Fatal("empty cluster assembled")
	}
	if _, err := NewCluster(ClusterShard{}); err == nil {
		t.Fatal("nil backend accepted")
	}
	a := &stubRange{rows: 100, lanes: 4}
	b := &stubRange{rows: 100, lanes: 8}
	_, err := NewCluster(ClusterShard{Backend: a, Name: "a"}, ClusterShard{Backend: b, Name: "b"})
	if err == nil || !strings.Contains(err.Error(), "100×8") || !strings.Contains(err.Error(), "100×4") {
		t.Fatalf("shape mismatch not named: %v", err)
	}
	tiny := &stubRange{rows: 2, lanes: 1}
	members := []ClusterShard{{Backend: tiny}, {Backend: tiny}, {Backend: tiny}}
	if _, err := NewCluster(members...); err == nil {
		t.Fatal("3 shards over 2 rows assembled")
	}
}

// TestClusterShardErrorIdentifiesShard: a failing shard is named with its
// index, name and row range, and the error chain keeps the cause.
func TestClusterShardErrorIdentifiesShard(t *testing.T) {
	cause := errors.New("disk on fire")
	members := []ClusterShard{
		{Backend: &stubRange{rows: 100, lanes: 2}, Name: "alpha"},
		{Backend: &stubRange{rows: 100, lanes: 2, fail: cause}, Name: "beta"},
		{Backend: &stubRange{rows: 100, lanes: 2}, Name: "gamma"},
	}
	cluster, err := NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cluster.Answer(context.Background(), [][]byte{{1}})
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a ShardError", err)
	}
	if se.Shard != 1 || se.Name != "beta" {
		t.Fatalf("ShardError names shard %d (%s), want 1 (beta)", se.Shard, se.Name)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("error chain %v lost the cause", err)
	}
	for _, want := range []string{"beta", "shard 1", "[33,66)"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestClusterCancellationPreference: when one shard genuinely fails, the
// cancellations it induces in its siblings are not what gets reported.
func TestClusterCancellationPreference(t *testing.T) {
	cause := errors.New("node vanished")
	blocked := func(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error) {
		<-ctx.Done() // sibling: parks until the failing shard cancels the fan-out
		return nil, ctx.Err()
	}
	members := []ClusterShard{
		{Backend: &stubRange{rows: 100, lanes: 2, onAnswer: blocked}, Name: "patient"},
		{Backend: &stubRange{rows: 100, lanes: 2, fail: cause}, Name: "dead"},
	}
	cluster, err := NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cluster.Answer(context.Background(), [][]byte{{1}})
	var se *ShardError
	if !errors.As(err, &se) || se.Name != "dead" || !errors.Is(err, cause) {
		t.Fatalf("reported %v, want the genuinely failing shard", err)
	}

	// A pre-cancelled parent context short-circuits before any fan-out.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cluster.Answer(ctx, [][]byte{{1}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: %v", err)
	}
}

// TestClusterCountersAggregate: counters sum across shards.
func TestClusterCountersAggregate(t *testing.T) {
	members := []ClusterShard{
		{Backend: &stubRange{rows: 100, lanes: 2}},
		{Backend: &stubRange{rows: 100, lanes: 2}},
		{Backend: &stubRange{rows: 100, lanes: 2}},
	}
	cluster, err := NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	stats := cluster.Counters()
	if stats.PRFBlocks != 30 || stats.ReadBytes != 60 {
		t.Fatalf("aggregate counters %+v, want PRFBlocks=30 ReadBytes=60", stats)
	}
}

// TestClusterMalformedPartials: a shard returning the wrong number or
// shape of partials is reported as that shard's failure, never merged.
func TestClusterMalformedPartials(t *testing.T) {
	short := func(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error) {
		return [][]uint32{{1, 2}}, nil // one answer regardless of batch size
	}
	members := []ClusterShard{
		{Backend: &stubRange{rows: 100, lanes: 2}, Name: "honest"},
		{Backend: &stubRange{rows: 100, lanes: 2, onAnswer: short}, Name: "liar"},
	}
	cluster, err := NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cluster.Answer(context.Background(), [][]byte{{1}, {2}})
	var se *ShardError
	if !errors.As(err, &se) || se.Name != "liar" {
		t.Fatalf("malformed partials reported as %v, want ShardError naming liar", err)
	}
}

// TestClusterValidateKey: a pinned cluster rejects keys for the wrong
// party, depth or domain with the same naming the replica uses; an
// unpinned cluster defers to its shards.
func TestClusterValidateKey(t *testing.T) {
	const rows, lanes = 256, 4
	tab := buildTable(t, rows, lanes, 31)
	members := make([]ClusterShard, 2)
	for i := range members {
		rep, err := NewReplica(tab, Config{Party: 0})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = ClusterShard{Backend: rep}
	}
	cluster, err := NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	k0s, k1s := genKeys(t, tab, []uint64{5}, 32)
	if err := cluster.ValidateKey(k0s[0]); err != nil {
		t.Fatalf("valid key rejected: %v", err)
	}
	if err := cluster.ValidateKey(k1s[0]); err == nil || !strings.Contains(err.Error(), "party") {
		t.Fatalf("wrong-party key: %v", err)
	}
	if err := cluster.ValidateKey([]byte{0, 1, 2}); err == nil {
		t.Fatal("garbage key accepted")
	}
	smallTab := buildTable(t, 16, lanes, 33)
	smallKeys, _ := genKeys(t, smallTab, []uint64{3}, 34)
	if err := cluster.ValidateKey(smallKeys[0]); err == nil || !strings.Contains(err.Error(), "bits") {
		t.Fatalf("wrong-domain key: %v", err)
	}

	unpinned, err := NewCluster(
		ClusterShard{Backend: &stubRange{rows: rows, lanes: lanes}},
		ClusterShard{Backend: &stubRange{rows: rows, lanes: lanes}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if unpinned.Pinned() {
		t.Fatal("stub cluster claims to be pinned")
	}
	if err := unpinned.ValidateKey([]byte{9, 9}); err != nil {
		t.Fatalf("unpinned cluster should defer validation: %v", err)
	}

	// One info-bearing shard is enough to pin: a front over a mixed set
	// (replica + opaque wrapper) must still reject bad keys at the door.
	rep, err := NewReplica(tab, Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := NewCluster(
		ClusterShard{Backend: rep},
		ClusterShard{Backend: &stubRange{rows: rows, lanes: lanes}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Pinned() {
		t.Fatal("cluster with an info-bearing shard not pinned")
	}
	if err := partial.ValidateKey(k1s[0]); err == nil {
		t.Fatal("partially-pinned cluster accepted a wrong-party key")
	}
}

// TestReplicaAnswerRangePartition: AnswerRange partials over any partition
// of the rows sum to the full answer (the property Cluster merging rests
// on), including partitions not aligned to the replica's own shards.
func TestReplicaAnswerRangePartition(t *testing.T) {
	const rows, lanes = 300, 4
	tab := buildTable(t, rows, lanes, 41)
	rep, err := NewReplica(tab, Config{Party: 0, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := genKeys(t, tab, []uint64{0, 150, 299}, 42)
	want, err := rep.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, cuts := range [][]int{
		{0, rows},
		{0, 1, rows},
		{0, 37, 153, 154, rows},
		{0, 75, 150, 225, rows},
	} {
		sum := make([][]uint32, len(keys))
		for q := range sum {
			sum[q] = make([]uint32, lanes)
		}
		for c := 0; c+1 < len(cuts); c++ {
			part, err := rep.AnswerRange(context.Background(), keys, cuts[c], cuts[c+1])
			if err != nil {
				t.Fatalf("range [%d,%d): %v", cuts[c], cuts[c+1], err)
			}
			for q := range sum {
				for l := range sum[q] {
					sum[q][l] += part[q][l]
				}
			}
		}
		for q := range want {
			for l := range want[q] {
				if sum[q][l] != want[q][l] {
					t.Fatalf("partition %v query %d lane %d: %#x != %#x", cuts, q, l, sum[q][l], want[q][l])
				}
			}
		}
	}
	if _, err := rep.AnswerRange(context.Background(), keys, 10, 5); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := rep.AnswerRange(context.Background(), keys, 0, rows+1); err == nil {
		t.Fatal("out-of-table range accepted")
	}
}
