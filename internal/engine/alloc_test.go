package engine

import (
	"context"
	"testing"
)

// answerAllocs measures steady-state allocations of one Answer call after
// a warmup that fills the replica's pools and scratch.
func answerAllocs(t *testing.T, r *Replica, keys [][]byte) float64 {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := r.Answer(ctx, keys); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(20, func() {
		if _, err := r.Answer(ctx, keys); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAnswerSteadyStateAllocs pins the tentpole's zero-allocation claim:
// with pooled keys, pooled shard partials and the strategies'
// RunRangeInto, a sequential replica's steady-state Answer allocates
// nothing beyond the two allocations of the returned answer batch (flat
// backing + headers). AllocsPerRun runs under GOMAXPROCS(1), so the
// strategies take their inline expansion paths — exactly the engine's
// per-shard execution shape.
func TestAnswerSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates and defeats sync.Pool reuse")
	}
	const rows, lanes = 1 << 10, 8
	tab := buildTable(t, rows, lanes, 1)
	for _, batch := range []int{1, 4, 32} {
		indices := make([]uint64, batch)
		for i := range indices {
			indices[i] = uint64(i * 31 % rows)
		}
		k0s, _ := genKeys(t, tab, indices, 2)
		r, err := NewReplica(tab, Config{Party: 0, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := answerAllocs(t, r, k0s); got > 2 {
			t.Errorf("batch=%d: sequential Answer allocates %.1f/op, want ≤ 2 (returned answers only)", batch, got)
		}
	}
}

// TestAnswerShardedAllocsBounded: the sharded path spawns its worker
// goroutines per call, but everything else — keys, partials, merge — is
// pooled, so per-call allocations stay a small constant independent of
// batch and table size (the seed path allocated per key per shard per
// node).
func TestAnswerShardedAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates and defeats sync.Pool reuse")
	}
	const rows, lanes, batch = 1 << 10, 8, 16
	tab := buildTable(t, rows, lanes, 3)
	indices := make([]uint64, batch)
	for i := range indices {
		indices[i] = uint64(i * 17 % rows)
	}
	k0s, _ := genKeys(t, tab, indices, 4)
	r, err := NewReplica(tab, Config{Party: 0, Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Budget: the two returned-answer allocations plus O(workers) transient
	// goroutine/closure state. Nothing may scale with batch × shards.
	if got := answerAllocs(t, r, k0s); got > 16 {
		t.Errorf("sharded Answer allocates %.1f/op, want ≤ 16 (answers + O(workers) fan-out)", got)
	}
}
