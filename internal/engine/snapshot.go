package engine

import (
	"context"
	"fmt"
)

// Pinger is a backend that can answer a cheap liveness probe. The cluster's
// health prober uses it to check a cooled-down member before re-admitting
// it to rotation, so liveness checks do not cost a full AnswerRange against
// a possibly-loaded node. shardnet.Client implements it as a one-frame RPC;
// engine.Replica trivially in-process.
type Pinger interface {
	Ping(ctx context.Context) error
}

// SnapshotSource is a backend that can export its current table snapshot,
// chunk by chunk — the donor side of healing. The two-call shape mirrors
// the shardnet SnapshotMeta/SnapshotChunk RPCs: Meta pins what to copy,
// Chunk streams it, resumable by offset.
type SnapshotSource interface {
	// SnapshotMeta reports the backend's current snapshot epoch, its
	// effective epoch (>= snapshot epoch when epochs were burned by
	// aborts), and the row range [lo,hi) the backend actually holds —
	// the range SnapshotChunk offsets are relative to.
	SnapshotMeta(ctx context.Context) (snapEpoch, effEpoch uint64, lo, hi int, err error)
	// SnapshotChunk returns up to max words of the snapshot's row-major
	// lane buffer for the held range, starting at word offset off.
	// The epoch must match a SnapshotMeta result; if the backend's
	// snapshot has moved on, SnapshotChunk fails and the healer restarts
	// from a fresh SnapshotMeta. A short (or empty) return past the end
	// of the buffer terminates the stream.
	SnapshotChunk(ctx context.Context, epoch uint64, off, max int) ([]uint32, error)
}

// SnapshotSink is a backend that can import a peer's snapshot — the
// receiving side of healing. Remote members that do not implement it are
// healed through the epoch-update RPCs instead (prepare the donor's rows as
// the donor's epoch, commit, burn up to floor).
type SnapshotSink interface {
	// AdoptSnapshot overwrites rows [lo,hi) with vals (row-major,
	// (hi-lo)*lanes words), installs the result as epoch, and raises the
	// backend's burned-epoch floor to floor. epoch must lie strictly
	// above the backend's effective epoch.
	AdoptSnapshot(ctx context.Context, epoch, floor uint64, lo, hi int, vals []uint32) error
}

// Ping implements Pinger: an in-process replica is alive by construction.
func (r *Replica) Ping(ctx context.Context) error { return ctx.Err() }

// SnapshotMeta implements SnapshotSource over the replica's store.
func (r *Replica) SnapshotMeta(ctx context.Context) (snapEpoch, effEpoch uint64, lo, hi int, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, 0, 0, err
	}
	sn := r.st.Acquire()
	defer sn.Release()
	return sn.Epoch(), r.st.Epoch(), 0, r.rows, nil
}

// SnapshotChunk implements SnapshotSource. The returned slice is a copy —
// the snapshot is released before returning.
func (r *Replica) SnapshotChunk(ctx context.Context, epoch uint64, off, max int) ([]uint32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if off < 0 || max <= 0 {
		return nil, fmt.Errorf("engine: snapshot chunk needs off >= 0 and max > 0 (got %d, %d)", off, max)
	}
	sn := r.st.Acquire()
	defer sn.Release()
	if sn.Epoch() != epoch {
		return nil, fmt.Errorf("engine: snapshot moved from epoch %d to %d during transfer; restart from SnapshotMeta", epoch, sn.Epoch())
	}
	words := r.rows * r.lanes
	if off >= words {
		return nil, nil
	}
	end := off + max
	if end > words {
		end = words
	}
	// CopyWords assembles the window from the snapshot's chunk iterator, so
	// export works identically over in-RAM, delta-overlaid, and paged
	// backings.
	out := make([]uint32, end-off)
	if err := sn.CopyWords(off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// AdoptSnapshot implements SnapshotSink over the replica's store.
func (r *Replica) AdoptSnapshot(ctx context.Context, epoch, floor uint64, lo, hi int, vals []uint32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := r.st.Adopt(epoch, floor, lo, hi, vals); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}
