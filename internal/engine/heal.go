package engine

import (
	"context"
	"errors"
	"fmt"
)

// Heal brings a stale or tripped replica-group member back to the
// cluster's current table epoch from a healthy same-shard peer and
// re-admits it to rotation.
//
// The donor is any other member of the shard that exports snapshots
// (SnapshotSource — an in-process Replica, or a shardnet.Client whose
// node speaks the SnapshotMeta/SnapshotChunk RPCs). The member adopts the
// donor's pinned snapshot — via SnapshotSink when it implements it
// (in-process replicas, a pirserver -join pull), else through the
// epoch-update operations it already speaks (prepare the donor's rows as
// the donor's snapshot epoch, commit, burn up to the donor's effective
// epoch), so remote members heal over the existing wire protocol. Note
// the fallback ships the whole held range as one prepared batch and is
// therefore bounded by the wire layer's frame and batch caps; very large
// shards need a member-side sink (-join) instead.
//
// Update churn may advance the cluster's epoch while a transfer is in
// flight: Heal catches up best-effort a bounded number of rounds without
// blocking updates, then takes the cluster's update lock for one final
// round — with the handshake frozen the donor cannot move, so the member
// provably lands on the current epoch before its quarantine is lifted.
func (c *Cluster) Heal(ctx context.Context, shard, member int) error {
	if shard < 0 || shard >= len(c.groups) {
		return fmt.Errorf("engine: heal: no shard %d in a cluster of %d", shard, len(c.groups))
	}
	g := c.groups[shard]
	if member < 0 || member >= len(g.members) {
		return fmt.Errorf("engine: heal: shard %d has no member %d (group of %d)", shard, member, len(g.members))
	}
	// Best-effort catch-up rounds outside the update lock: shrink the gap
	// while churn continues.
	var lastErr error
	for attempt := 0; attempt < healAttempts; attempt++ {
		synced, err := c.healOnce(ctx, g, shard, member)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return fmt.Errorf("engine: heal shard %d member %s: %w", shard, g.names[member], err)
			}
			continue
		}
		if synced {
			break
		}
	}
	// Final round with updates frozen: the donor's epoch cannot advance
	// under c.umu, so one successful pass means the member IS current.
	c.umu.Lock()
	defer c.umu.Unlock()
	for attempt := 0; attempt < healAttempts; attempt++ {
		synced, err := c.healOnce(ctx, g, shard, member)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		if !synced {
			continue
		}
		g.health[member].recover()
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("member did not converge to the donor's epoch")
	}
	return fmt.Errorf("engine: heal shard %d member %s: %w", shard, g.names[member], lastErr)
}

// healOnce runs one catch-up round: pick a donor, compare epochs, and if
// the member is behind transfer the donor's snapshot (or just raise the
// member's burned-epoch floor when only burned numbers separate them).
// synced reports the member's effective epoch has reached the donor's.
func (c *Cluster) healOnce(ctx context.Context, g *shardGroup, shard, member int) (synced bool, err error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	teb, ok := AsEpoch(g.members[member])
	if !ok {
		return false, fmt.Errorf("%w: member cannot adopt epochs", ErrNotEpochCapable)
	}
	targetEff, err := teb.Epoch(ctx)
	if err != nil {
		return false, fmt.Errorf("member unreachable: %w", err)
	}
	src, donorName, err := c.healDonor(g, member)
	if err != nil {
		return false, err
	}
	snapEpoch, donorEff, lo, hi, err := src.SnapshotMeta(ctx)
	if err != nil {
		return false, fmt.Errorf("donor %s: %w", donorName, err)
	}
	if targetEff >= donorEff {
		return true, nil
	}
	if snapEpoch <= targetEff {
		// Only burned epoch numbers separate them: raise the member's
		// floor (AbortUpdate burns idempotently) instead of re-shipping a
		// table it already has.
		if aerr := teb.AbortUpdate(ctx, donorEff); aerr != nil {
			return false, fmt.Errorf("raising burned floor to %d: %w", donorEff, aerr)
		}
		return false, nil // re-check next round
	}
	words := (hi - lo) * c.lanes
	buf := make([]uint32, 0, words)
	for len(buf) < words {
		chunk, cerr := src.SnapshotChunk(ctx, snapEpoch, len(buf), healChunkWords)
		if cerr != nil {
			return false, fmt.Errorf("donor %s at offset %d: %w", donorName, len(buf), cerr)
		}
		if len(chunk) == 0 {
			return false, fmt.Errorf("donor %s: snapshot stream ended at %d of %d words", donorName, len(buf), words)
		}
		if len(buf)+len(chunk) > words {
			return false, fmt.Errorf("donor %s: snapshot stream overran %d words", donorName, words)
		}
		buf = append(buf, chunk...)
	}
	if sink, ok := AsSnapshotSink(g.members[member]); ok {
		if aerr := sink.AdoptSnapshot(ctx, snapEpoch, donorEff, lo, hi, buf); aerr != nil {
			return false, fmt.Errorf("adopting donor %s epoch %d: %w", donorName, snapEpoch, aerr)
		}
	} else {
		// Wire fallback: the member speaks the epoch-update RPCs — ship
		// the donor's rows as a prepared batch at the donor's snapshot
		// epoch, then burn up to the donor's effective epoch.
		writes := make([]RowWrite, hi-lo)
		for r := range writes {
			writes[r] = RowWrite{Row: uint64(lo + r), Vals: buf[r*c.lanes : (r+1)*c.lanes]}
		}
		if perr := teb.PrepareUpdate(ctx, snapEpoch, writes); perr != nil {
			return false, fmt.Errorf("preparing donor %s epoch %d on member: %w", donorName, snapEpoch, perr)
		}
		if cerr := teb.CommitUpdate(ctx, snapEpoch); cerr != nil {
			_ = teb.AbortUpdate(ctx, snapEpoch)
			return false, fmt.Errorf("committing donor %s epoch %d on member: %w", donorName, snapEpoch, cerr)
		}
		if donorEff > snapEpoch {
			if aerr := teb.AbortUpdate(ctx, donorEff); aerr != nil {
				return false, fmt.Errorf("raising burned floor to %d: %w", donorEff, aerr)
			}
		}
	}
	// Converged only if the donor did not move meanwhile; the next round
	// (or the locked final round) settles it.
	return false, nil
}

// healDonor picks a same-shard donor for member: the first other member
// that is not quarantined and exports snapshots.
func (c *Cluster) healDonor(g *shardGroup, member int) (SnapshotSource, string, error) {
	for j := range g.members {
		if j == member || g.health[j].isStale() {
			continue
		}
		if src, ok := AsSnapshotSource(g.members[j]); ok {
			return src, g.names[j], nil
		}
	}
	return nil, "", errors.New("no healthy snapshot-exporting donor in the replica group")
}
