package engine

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// countingMember wraps a healthy replica and counts the answer batches
// routed to it, so load-balance tests can observe the rotation.
type countingMember struct {
	*Replica
	batches atomic.Int64
}

func (m *countingMember) AnswerRange(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error) {
	a, _, _, err := m.AnswerRangeEpoch(ctx, keys, lo, hi)
	return a, err
}

func (m *countingMember) AnswerRangeEpoch(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, uint64, bool, error) {
	m.batches.Add(1)
	return m.Replica.AnswerRangeEpoch(ctx, keys, lo, hi)
}

// groupCluster builds a one-shard party-0 cluster whose replica group has
// n members over src's content, each wrapped in flakyPrimary for
// tripping, and a reference replica over the same content.
func groupCluster(t *testing.T, src *stubTable, n int) (*Cluster, []*flakyPrimary, *Replica) {
	t.Helper()
	sh := ClusterShard{}
	members := make([]*flakyPrimary, n)
	for j := range members {
		rep, err := NewReplica(src.clone(t), Config{Party: 0})
		if err != nil {
			t.Fatal(err)
		}
		members[j] = &flakyPrimary{Replica: rep}
		sh.Members = append(sh.Members, members[j])
		sh.MemberNames = append(sh.MemberNames, string(rune('a'+j)))
	}
	cluster, err := NewCluster(sh)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReplica(src.clone(t), Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, members, ref
}

// TestClusterGroupLoadBalance: sequential batches against a healthy
// three-member group rotate across all members instead of pinning one.
func TestClusterGroupLoadBalance(t *testing.T) {
	const rows, lanes, batches = 128, 2, 30
	src := &stubTable{rows: rows, lanes: lanes, seed: 61}
	sh := ClusterShard{}
	members := make([]*countingMember, 3)
	for j := range members {
		rep, err := NewReplica(src.clone(t), Config{Party: 0})
		if err != nil {
			t.Fatal(err)
		}
		members[j] = &countingMember{Replica: rep}
		sh.Members = append(sh.Members, members[j])
	}
	cluster, err := NewCluster(sh)
	if err != nil {
		t.Fatal(err)
	}
	if got := cluster.GroupSize(0); got != 3 {
		t.Fatalf("GroupSize = %d, want 3", got)
	}
	keys, _ := genKeys(t, src.clone(t), []uint64{3, 77}, 62)
	for i := 0; i < batches; i++ {
		if _, err := cluster.Answer(context.Background(), keys); err != nil {
			t.Fatal(err)
		}
	}
	total := int64(0)
	for j, m := range members {
		n := m.batches.Load()
		total += n
		if n < batches/3-2 {
			t.Fatalf("member %d served %d of %d batches; rotation is pinning", j, n, batches)
		}
	}
	if total != batches {
		t.Fatalf("%d member batches for %d cluster batches", total, batches)
	}
}

// TestClusterGroupKillOneOfThree: a member killed mid-service trips its
// breaker after enough consecutive failures while every batch keeps
// succeeding, bit-identical to a single-process replica.
func TestClusterGroupKillOneOfThree(t *testing.T) {
	const rows, lanes = 128, 2
	src := &stubTable{rows: rows, lanes: lanes, seed: 63}
	cluster, members, ref := groupCluster(t, src, 3)
	keys, _ := genKeys(t, src.clone(t), []uint64{5, 99, 127}, 64)
	want, err := ref.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	members[1].trip()
	// Enough batches to hit the dead member more than tripFailures times.
	for i := 0; i < 4*tripFailures; i++ {
		got, err := cluster.Answer(context.Background(), keys)
		if err != nil {
			t.Fatalf("batch %d failed despite two healthy members: %v", i, err)
		}
		assertSameShares(t, got, want)
	}
	st := cluster.Status(0)
	if !st[1].Tripped || st[1].LastErr == nil {
		t.Fatalf("dead member not tripped: %+v", st[1])
	}
	if st[0].Tripped || st[2].Tripped {
		t.Fatalf("healthy members tripped: %+v", st)
	}
}

// TestClusterGroupDegradedToOne: with N-1 members dead the group is
// degraded but still serving, bit-identical.
func TestClusterGroupDegradedToOne(t *testing.T) {
	const rows, lanes = 128, 2
	src := &stubTable{rows: rows, lanes: lanes, seed: 65}
	cluster, members, ref := groupCluster(t, src, 3)
	keys, _ := genKeys(t, src.clone(t), []uint64{0, 64}, 66)
	want, err := ref.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	members[0].trip()
	members[2].trip()
	for i := 0; i < 2*tripFailures; i++ {
		got, err := cluster.Answer(context.Background(), keys)
		if err != nil {
			t.Fatalf("batch %d failed despite one live member: %v", i, err)
		}
		assertSameShares(t, got, want)
	}
}

// TestClusterGroupAllDeadEnumerates: when every member of a group fails,
// the ShardError enumerates each member by name with its own error, and
// the first member's cause stays reachable through errors.Is.
func TestClusterGroupAllDeadEnumerates(t *testing.T) {
	causeA := errors.New("connection reset by peer")
	causeC := errors.New("no route to host")
	sh := ClusterShard{
		Members: []RangeBackend{
			&stubRange{rows: 100, lanes: 2, fail: causeA},
			&stubRange{rows: 100, lanes: 2, fail: errors.New("i/o timeout")},
			&stubRange{rows: 100, lanes: 2, fail: causeC},
		},
		MemberNames: []string{"node-a", "node-b", "node-c"},
	}
	cluster, err := NewCluster(sh)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cluster.Answer(context.Background(), [][]byte{{1}})
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 0 {
		t.Fatalf("all-dead group reported as %v, want ShardError for shard 0", err)
	}
	for _, c := range []error{causeA, causeC} {
		if !errors.Is(err, c) {
			t.Fatalf("error chain %v lost member cause %v", err, c)
		}
	}
	for _, want := range []string{"node-a", "node-b", "node-c", "connection reset", "i/o timeout", "no route"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestClusterQuarantineAndHeal is the replica-group promotion story end
// to end: a member that misses an epoch is quarantined by the next update
// handshake (the update itself succeeds on the rest of the group), the
// cluster keeps serving bit-identically without it, Heal brings it back
// to the current epoch via snapshot transfer, and afterwards it serves
// and participates in updates again.
func TestClusterQuarantineAndHeal(t *testing.T) {
	const rows, lanes = 128, 2
	src := &stubTable{rows: rows, lanes: lanes, seed: 67}
	cluster, members, ref := groupCluster(t, src, 3)
	ctx := context.Background()

	// Advance members 0 and 1 behind the cluster's back; member 2 misses
	// the epoch.
	w1 := []RowWrite{{Row: 5, Vals: make([]uint32, lanes)}}
	for _, m := range members[:2] {
		if _, err := m.Replica.UpdateBatch(ctx, w1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ref.UpdateBatch(ctx, w1); err != nil {
		t.Fatal(err)
	}

	// The next cluster update quarantines the laggard and lands on the
	// rest of the group.
	w2 := []RowWrite{{Row: 7, Vals: []uint32{9, 9}}}
	if _, err := cluster.UpdateBatch(ctx, w2); err != nil {
		t.Fatalf("update failed despite two current members: %v", err)
	}
	if _, err := ref.UpdateBatch(ctx, w2); err != nil {
		t.Fatal(err)
	}
	st := cluster.Status(0)
	if !st[2].Quarantined {
		t.Fatalf("laggard member not quarantined: %+v", st)
	}
	if st[0].Quarantined || st[1].Quarantined {
		t.Fatalf("current members quarantined: %+v", st)
	}

	// Degraded but serving, bit-identically, off the healthy members.
	keys, _ := genKeys(t, src.clone(t), []uint64{5, 7, 100}, 68)
	want, err := ref.Answer(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		got, err := cluster.Answer(ctx, keys)
		if err != nil {
			t.Fatal(err)
		}
		assertSameShares(t, got, want)
	}

	// Heal the quarantined member from a healthy donor and verify it is
	// back: rotation-clean status, epochs in lockstep, and its own
	// answers bit-identical once its siblings are killed.
	if err := cluster.Heal(ctx, 0, 2); err != nil {
		t.Fatalf("heal failed: %v", err)
	}
	if st := cluster.Status(0); st[2].Quarantined || st[2].Tripped {
		t.Fatalf("healed member still out of rotation: %+v", st[2])
	}
	healedEpoch, err := members[2].Replica.Epoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	donorEpoch, err := members[0].Replica.Epoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if healedEpoch != donorEpoch {
		t.Fatalf("healed member at epoch %d, donor at %d", healedEpoch, donorEpoch)
	}
	members[0].trip()
	members[1].trip()
	for i := 0; i < 2*tripFailures; i++ {
		got, err := cluster.Answer(ctx, keys)
		if err != nil {
			t.Fatalf("healed member not serving: %v", err)
		}
		assertSameShares(t, got, want)
	}

	// And it participates in the next epoch handshake.
	w3 := []RowWrite{{Row: 11, Vals: []uint32{3, 4}}}
	if _, err := cluster.UpdateBatch(ctx, w3); err != nil {
		t.Fatalf("post-heal update failed: %v", err)
	}
	e2, err := members[2].Replica.Epoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	e0, err := members[0].Replica.Epoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e0 {
		t.Fatalf("healed member missed the post-heal update: epoch %d vs %d", e2, e0)
	}
}

// TestClusterHealRefusesBadIndices: Heal validates its addressing instead
// of panicking on a bad shard or member index.
func TestClusterHealRefusesBadIndices(t *testing.T) {
	src := &stubTable{rows: 64, lanes: 2, seed: 69}
	cluster, _, _ := groupCluster(t, src, 2)
	if err := cluster.Heal(context.Background(), 5, 0); err == nil || !strings.Contains(err.Error(), "no shard 5") {
		t.Fatalf("bad shard index: %v", err)
	}
	if err := cluster.Heal(context.Background(), 0, 7); err == nil || !strings.Contains(err.Error(), "no member 7") {
		t.Fatalf("bad member index: %v", err)
	}
}
