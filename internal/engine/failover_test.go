package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"gpudpf/internal/strategy"
)

// flakyPrimary wraps a healthy replica and fails AnswerRange(Epoch) while
// tripped — a primary that died mid-service but would answer correctly if
// it were alive (so accidental routing THROUGH it would not be caught by
// share comparison; only the failover path produces answers at all).
type flakyPrimary struct {
	*Replica
	mu      sync.Mutex
	tripped bool
	calls   int
}

func (f *flakyPrimary) trip() {
	f.mu.Lock()
	f.tripped = true
	f.mu.Unlock()
}

func (f *flakyPrimary) AnswerRange(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error) {
	a, _, _, err := f.AnswerRangeEpoch(ctx, keys, lo, hi)
	return a, err
}

func (f *flakyPrimary) AnswerRangeEpoch(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, uint64, bool, error) {
	f.mu.Lock()
	f.calls++
	dead := f.tripped
	f.mu.Unlock()
	if dead {
		return nil, 0, false, errors.New("primary: connection reset by peer")
	}
	return f.Replica.AnswerRangeEpoch(ctx, keys, lo, hi)
}

// prepareFailer injects a failure into the prepare phase.
type prepareFailer struct {
	*Replica
	fail error
}

func (p *prepareFailer) PrepareUpdate(ctx context.Context, epoch uint64, writes []RowWrite) error {
	if p.fail != nil {
		return p.fail
	}
	return p.Replica.PrepareUpdate(ctx, epoch, writes)
}

// commitFailer prepares fine but dies at commit — after its siblings may
// already have committed, the hardest partial failure the handshake must
// unwind.
type commitFailer struct {
	*Replica
	fail error
}

func (p *commitFailer) CommitUpdate(ctx context.Context, epoch uint64) error {
	if p.fail != nil {
		return p.fail
	}
	return p.Replica.CommitUpdate(ctx, epoch)
}

// stubTable carries the deterministic test table's shape and seed so
// clones share content but never backing arrays (each replica owns its
// store).
type stubTable struct {
	rows, lanes int
	seed        int64
}

func (s *stubTable) clone(t *testing.T) *strategy.Table {
	t.Helper()
	return buildTable(t, s.rows, s.lanes, s.seed)
}

// assertSameShares fails the test on the first diverging lane.
func assertSameShares(t *testing.T, got, want [][]uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d vs %d answers", len(got), len(want))
	}
	for q := range want {
		for l := range want[q] {
			if got[q][l] != want[q][l] {
				t.Fatalf("query %d lane %d: %#x != %#x", q, l, got[q][l], want[q][l])
			}
		}
	}
}

// standbyCluster builds a party-0 cluster of `shards` replicas over src's
// content where every shard also has a standby replica over the same
// content, returning the cluster and the wrapped primaries (for
// tripping).
func standbyCluster(t *testing.T, src *stubTable, shards int) (*Cluster, []*flakyPrimary) {
	t.Helper()
	members := make([]ClusterShard, shards)
	primaries := make([]*flakyPrimary, shards)
	for i := range members {
		rep, err := NewReplica(src.clone(t), Config{Party: 0})
		if err != nil {
			t.Fatal(err)
		}
		sb, err := NewReplica(src.clone(t), Config{Party: 0})
		if err != nil {
			t.Fatal(err)
		}
		primaries[i] = &flakyPrimary{Replica: rep}
		members[i] = ClusterShard{Backend: primaries[i], Standby: sb}
	}
	cluster, err := NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	return cluster, primaries
}

// TestClusterStandbyFailover: a primary killed mid-service is retried on
// its standby transparently — the batch succeeds and the answers are
// bit-identical to a single-process replica over the same table.
func TestClusterStandbyFailover(t *testing.T) {
	const rows, lanes = 256, 4
	src := &stubTable{rows: rows, lanes: lanes, seed: 51}
	cluster, primaries := standbyCluster(t, src, 4)
	ref, err := NewReplica(src.clone(t), Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := genKeys(t, src.clone(t), []uint64{0, 100, 200, 255}, 52)
	want, err := ref.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}

	// Healthy pass first.
	got, err := cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	assertSameShares(t, got, want)

	// Kill shard 2's primary; the batch must still succeed, bit-identical.
	primaries[2].trip()
	got, err = cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatalf("answer failed despite a standby: %v", err)
	}
	assertSameShares(t, got, want)

	// Kill every primary: the whole batch still serves off standbys.
	for _, p := range primaries {
		p.trip()
	}
	got, err = cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatalf("answer failed with all primaries dead: %v", err)
	}
	assertSameShares(t, got, want)
}

// TestClusterStandbyBothFail: when primary AND standby fail the answer is
// a ShardError naming the shard, with both members' failures visible.
func TestClusterStandbyBothFail(t *testing.T) {
	cause := errors.New("disk on fire")
	members := []ClusterShard{
		{Backend: &stubRange{rows: 100, lanes: 2}, Name: "alpha"},
		{Backend: &stubRange{rows: 100, lanes: 2, fail: cause}, Name: "beta",
			Standby: &stubRange{rows: 100, lanes: 2, fail: errors.New("standby cold")}, StandbyName: "beta-standby"},
	}
	cluster, err := NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cluster.Answer(context.Background(), [][]byte{{1}})
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 1 {
		t.Fatalf("double failure reported as %v, want ShardError for shard 1", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("error chain %v lost the primary cause", err)
	}
	for _, want := range []string{"beta-standby", "standby cold"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestClusterStandbyValidation: standbys are held to the same construction
// checks as primaries — shape, pinned configuration, held range.
func TestClusterStandbyValidation(t *testing.T) {
	const rows, lanes = 128, 4
	tab := buildTable(t, rows, lanes, 53)
	rep, err := NewReplica(tab, Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong shape.
	_, err = NewCluster(ClusterShard{Backend: rep, Standby: &stubRange{rows: rows, lanes: lanes + 1}, StandbyName: "fat"})
	if err == nil || !strings.Contains(err.Error(), "fat") {
		t.Fatalf("wrong-shape standby accepted: %v", err)
	}
	// Wrong party.
	other, err := NewReplica(buildTable(t, rows, lanes, 53), Config{Party: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewCluster(ClusterShard{Backend: rep, Standby: other, StandbyName: "wrong-party"})
	if err == nil || !strings.Contains(err.Error(), "party") {
		t.Fatalf("wrong-party standby accepted: %v", err)
	}
	// Standby that does not hold the shard's range.
	holder := &heldStub{stubRange: stubRange{rows: rows, lanes: lanes}, lo: 0, hi: 32}
	_, err = NewCluster(
		ClusterShard{Backend: rep},                           // would serve [0,64)
		ClusterShard{Backend: rep, Standby: holder, StandbyName: "narrow"}, // [64,128) but holds [0,32)
	)
	if err == nil || !strings.Contains(err.Error(), "narrow") {
		t.Fatalf("narrow standby accepted: %v", err)
	}
}

// heldStub is a stubRange with a held range.
type heldStub struct {
	stubRange
	lo, hi int
}

func (h *heldStub) HeldRange() (int, int) { return h.lo, h.hi }

// TestClusterStaleStandbyRefused: a standby at an older table epoch must
// not silently stand in for its primary — the merge check refuses the
// blend with ErrMixedEpoch instead of returning shares of two tables.
func TestClusterStaleStandbyRefused(t *testing.T) {
	const rows, lanes = 128, 2
	src := &stubTable{rows: rows, lanes: lanes, seed: 54}
	// Two shards; shard 1 has a standby. Move the PRIMARIES (and shard 0)
	// to epoch 1 behind the standby's back by driving their stores
	// directly — the standby stays at epoch 0.
	rep0, err := NewReplica(src.clone(t), Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	prim1, err := NewReplica(src.clone(t), Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	sb1, err := NewReplica(src.clone(t), Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyPrimary{Replica: prim1}
	cluster, err := NewCluster(
		ClusterShard{Backend: rep0, Name: "s0"},
		ClusterShard{Backend: flaky, Name: "s1", Standby: sb1, StandbyName: "s1-standby"},
	)
	if err != nil {
		t.Fatal(err)
	}
	newRow := make([]uint32, lanes)
	for _, r := range []*Replica{rep0, prim1} {
		if _, err := r.UpdateBatch(context.Background(), []RowWrite{{Row: 5, Vals: newRow}}); err != nil {
			t.Fatal(err)
		}
	}
	keys, _ := genKeys(t, src.clone(t), []uint64{5, 100}, 55)
	if _, err := cluster.Answer(context.Background(), keys); err != nil {
		t.Fatalf("healthy cluster refused: %v", err)
	}
	flaky.trip()
	_, err = cluster.Answer(context.Background(), keys)
	if !errors.Is(err, ErrMixedEpoch) {
		t.Fatalf("stale standby blended in: %v", err)
	}
	for _, want := range []string{"s1-standby", "epoch 0", "epoch 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mixed-epoch error %q does not name %q", err, want)
		}
	}
}

// TestClusterUpdateBatchAtomicAcrossShards: one UpdateBatch touching rows
// in several shards' ranges lands everywhere — answers afterwards are
// bit-identical to a single replica given the same batch — and the
// cluster's epoch advances in lockstep on every member.
func TestClusterUpdateBatchAtomicAcrossShards(t *testing.T) {
	const rows, lanes = 256, 4
	src := &stubTable{rows: rows, lanes: lanes, seed: 56}
	cluster, _ := standbyCluster(t, src, 4)
	ref, err := NewReplica(src.clone(t), Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	writes := []RowWrite{
		{Row: 3, Vals: []uint32{1, 2, 3, 4}},
		{Row: 100, Vals: []uint32{5, 6, 7, 8}},
		{Row: 200, Vals: []uint32{9, 10, 11, 12}},
		{Row: 255, Vals: []uint32{13, 14, 15, 16}},
	}
	epoch, err := cluster.UpdateBatch(context.Background(), writes)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("cluster update landed at epoch %d, want 1", epoch)
	}
	if got, err := cluster.Epoch(context.Background()); err != nil || got != 1 {
		t.Fatalf("cluster epoch %d (%v), want 1", got, err)
	}
	if _, err := ref.UpdateBatch(context.Background(), writes); err != nil {
		t.Fatal(err)
	}
	keys, _ := genKeys(t, src.clone(t), []uint64{3, 100, 200, 255, 17}, 57)
	want, err := ref.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	assertSameShares(t, got, want)
}

// TestClusterUpdateBatchPrepareFailure: a shard that rejects the prepare
// aborts the epoch everywhere — every member stays readable at the old
// epoch with the old content, and the next update succeeds at a fresh
// (never reissued) epoch.
func TestClusterUpdateBatchPrepareFailure(t *testing.T) {
	const rows, lanes = 128, 2
	src := &stubTable{rows: rows, lanes: lanes, seed: 58}
	reps := make([]*Replica, 3)
	members := make([]ClusterShard, 3)
	cause := errors.New("no disk space for the staging copy")
	var failer *prepareFailer
	for i := range members {
		var err error
		reps[i], err = NewReplica(src.clone(t), Config{Party: 0})
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			failer = &prepareFailer{Replica: reps[i], fail: cause}
			members[i] = ClusterShard{Backend: failer, Name: "staging-full"}
			continue
		}
		members[i] = ClusterShard{Backend: reps[i]}
	}
	cluster, err := NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := genKeys(t, src.clone(t), []uint64{0, 64, 127}, 59)
	before, err := cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cluster.UpdateBatch(context.Background(), []RowWrite{{Row: 10, Vals: []uint32{9, 9}}})
	if err == nil {
		t.Fatal("update succeeded despite a rejecting shard")
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Name != "staging-full" || !errors.Is(err, cause) {
		t.Fatalf("prepare failure reported as %v, want ShardError naming staging-full", err)
	}
	// Every shard is still readable, at the old content.
	after, err := cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatalf("cluster unreadable after aborted update: %v", err)
	}
	assertSameShares(t, after, before)
	// The aborted epoch is burned on the members that prepared; a healed
	// cluster (failure cleared) updates successfully at a fresh number.
	failer.fail = nil
	epoch, err := cluster.UpdateBatch(context.Background(), []RowWrite{{Row: 10, Vals: []uint32{9, 9}}})
	if err != nil {
		t.Fatalf("post-abort update failed: %v", err)
	}
	if epoch < 1 {
		t.Fatalf("post-abort update landed at epoch %d", epoch)
	}
	if _, err := cluster.Answer(context.Background(), keys); err != nil {
		t.Fatal(err)
	}
}

// TestClusterUpdateBatchCommitFailure: a shard that dies at commit — after
// its siblings already committed — rolls the whole cluster back: every
// member is readable at the old content, no mixed-epoch state survives,
// and the update path recovers.
func TestClusterUpdateBatchCommitFailure(t *testing.T) {
	const rows, lanes = 128, 2
	src := &stubTable{rows: rows, lanes: lanes, seed: 60}
	members := make([]ClusterShard, 3)
	cause := errors.New("node lost power at commit")
	var failer *commitFailer
	for i := range members {
		rep, err := NewReplica(src.clone(t), Config{Party: 0})
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			failer = &commitFailer{Replica: rep, fail: cause}
			members[i] = ClusterShard{Backend: failer, Name: "power-loss"}
			continue
		}
		members[i] = ClusterShard{Backend: rep}
	}
	cluster, err := NewCluster(members...)
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := genKeys(t, src.clone(t), []uint64{1, 60, 120}, 61)
	before, err := cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cluster.UpdateBatch(context.Background(), []RowWrite{
		{Row: 1, Vals: []uint32{7, 7}},
		{Row: 120, Vals: []uint32{8, 8}},
	})
	if err == nil {
		t.Fatal("update succeeded despite a commit death")
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Name != "power-loss" || !errors.Is(err, cause) {
		t.Fatalf("commit failure reported as %v, want ShardError naming power-loss", err)
	}
	// The siblings that DID commit were rolled back: the cluster answers
	// the old content, consistently, and the epoch agrees everywhere.
	after, err := cluster.Answer(context.Background(), keys)
	if err != nil {
		t.Fatalf("cluster unreadable after rolled-back update: %v", err)
	}
	assertSameShares(t, after, before)
	if _, err := cluster.Epoch(context.Background()); err != nil {
		t.Fatalf("epochs diverged after rollback: %v", err)
	}
	// Recovery: heal the shard, update again, and see the new content.
	failer.fail = nil
	if _, err := cluster.UpdateBatch(context.Background(), []RowWrite{{Row: 1, Vals: []uint32{7, 7}}}); err != nil {
		t.Fatalf("post-rollback update failed: %v", err)
	}
}

// TestClusterUpdateBatchNonEpochMember: a cluster holding a member that
// cannot join the handshake refuses UpdateBatch with the member named —
// never a partial, best-effort write.
func TestClusterUpdateBatchNonEpochMember(t *testing.T) {
	tab := buildTable(t, 128, 2, 62)
	rep, err := NewReplica(tab, Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(
		ClusterShard{Backend: rep},
		ClusterShard{Backend: &stubRange{rows: 128, lanes: 2}, Name: "legacy-node"},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cluster.UpdateBatch(context.Background(), []RowWrite{{Row: 0, Vals: []uint32{1, 2}}})
	if !errors.Is(err, ErrNotEpochCapable) || !strings.Contains(err.Error(), "legacy-node") {
		t.Fatalf("non-epoch member not refused by name: %v", err)
	}
}

// TestClusterAnswerRetriesAcrossCommitWave: a batch whose fan-out straddles
// an update's commit wave (one shard answers before, one after) is
// detected by the epoch check and re-fanned — the caller sees one
// consistent post-update answer, never a blend.
func TestClusterAnswerRetriesAcrossCommitWave(t *testing.T) {
	const rows, lanes = 128, 2
	src := &stubTable{rows: rows, lanes: lanes, seed: 63}
	rep0, err := NewReplica(src.clone(t), Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := NewReplica(src.clone(t), Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	gate := &gatedBackend{Replica: rep0, answered: make(chan struct{}), release: make(chan struct{})}
	fast := &notifyDone{Replica: rep1, done: make(chan struct{})}
	cluster, err := NewCluster(
		ClusterShard{Backend: gate, Name: "slow"},
		ClusterShard{Backend: fast, Name: "fast"},
	)
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := genKeys(t, src.clone(t), []uint64{5, 100}, 64)

	done := make(chan struct{})
	var answers [][]uint32
	var answerErr error
	go func() {
		defer close(done)
		answers, answerErr = cluster.Answer(context.Background(), keys)
	}()
	// Wait until the fast shard has answered at epoch 0 and the slow
	// shard is parked, then commit an update and release the slow shard:
	// its first-pass partial lands at epoch 1 against the fast shard's
	// epoch-0 partial.
	<-gate.answered
	<-fast.done
	writes := []RowWrite{{Row: 5, Vals: []uint32{42, 43}}}
	if _, err := cluster.UpdateBatch(context.Background(), writes); err != nil {
		t.Fatal(err)
	}
	close(gate.release)
	<-done
	if answerErr != nil {
		t.Fatalf("straddling batch failed: %v", answerErr)
	}
	ref, err := NewReplica(src.clone(t), Config{Party: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.UpdateBatch(context.Background(), writes); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Answer(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	assertSameShares(t, answers, want)
	if gate.calls() < 2 {
		t.Fatalf("slow shard served %d calls; the mixed first pass was not retried", gate.calls())
	}
}

// gatedBackend blocks its FIRST AnswerRangeEpoch until released (signaling
// that a sibling has already answered); later calls pass straight through.
type gatedBackend struct {
	*Replica
	mu       sync.Mutex
	n        int
	answered chan struct{} // closed when the first call has parked
	release  chan struct{}
}

func (g *gatedBackend) calls() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func (g *gatedBackend) AnswerRange(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, error) {
	a, _, _, err := g.AnswerRangeEpoch(ctx, keys, lo, hi)
	return a, err
}

func (g *gatedBackend) AnswerRangeEpoch(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, uint64, bool, error) {
	g.mu.Lock()
	g.n++
	first := g.n == 1
	g.mu.Unlock()
	if first {
		close(g.answered)
		select {
		case <-g.release:
		case <-ctx.Done():
			return nil, 0, false, ctx.Err()
		}
	}
	return g.Replica.AnswerRangeEpoch(ctx, keys, lo, hi)
}

// notifyDone closes done after its first completed range answer.
type notifyDone struct {
	*Replica
	once sync.Once
	done chan struct{}
}

func (n *notifyDone) AnswerRangeEpoch(ctx context.Context, keys [][]byte, lo, hi int) ([][]uint32, uint64, bool, error) {
	a, e, ok, err := n.Replica.AnswerRangeEpoch(ctx, keys, lo, hi)
	n.once.Do(func() { close(n.done) })
	return a, e, ok, err
}
