package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpudpf/internal/backoff"
	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

// ShardRange returns the row range [lo, hi) that shard i of n serves in
// an evenly split domain of rows entries. Every layer that derives the
// split — Replica's in-process shard bounds, Cluster's assignment, and a
// shard node started with `pirserver -shardnode i/n` — must compute it
// through this one function: a node whose held slice diverges from the
// front's assignment is only caught at startup by the RangeHolder check,
// and two layers quietly disagreeing on the rounding is exactly the kind
// of drift that turns into garbage shares.
func ShardRange(rows, i, n int) (lo, hi int) {
	return i * rows / n, (i + 1) * rows / n
}

// ClusterShard is one replica group of a Cluster: N backends that all hold
// the same row range (in-process Replicas, or shardnet.Clients speaking to
// nodes in other processes or on other machines) plus names for errors —
// when a member dies mid-batch the operator needs to know WHICH machine.
// Answer batches load-balance across the group's healthy members and a
// member that fails mid-batch is retried transparently on the next,
// provided the survivor's answer merges at the same table epoch as the
// other shards' (a stale member is refused, never silently blended in).
//
// The legacy two-field form — Backend plus an optional Standby — still
// compiles and behaves as a one- or two-member group: Backend is member 0,
// Standby member 1, and Members (if any) follow. At least one of Backend
// and Members must be set.
type ClusterShard struct {
	Backend RangeBackend
	// Name identifies Backend in errors (typically its address for
	// remote shards); empty defaults to "shard i".
	Name string
	// Standby, when non-nil, is a second member holding the same rows.
	// Kept for compatibility with two-member deployments; it is an
	// ordinary group member now — it serves load-balanced traffic rather
	// than idling, and participates in cluster updates (the epoch
	// handshake prepares and commits on every member), so a failover
	// never serves stale rows undetected.
	Standby RangeBackend
	// StandbyName names the standby in errors; empty defaults to
	// "shard i standby".
	StandbyName string
	// Members are additional replica-group members beyond
	// Backend/Standby (or the whole group, when Backend is nil). All
	// entries must be non-nil.
	Members []RangeBackend
	// MemberNames name Members entrywise in errors; missing or empty
	// entries default to "shard i member j".
	MemberNames []string
}

// ShardError is the named error a Cluster returns when one shard's
// sub-range evaluation fails: it identifies the shard by index, name and
// assigned row range, and wraps the underlying cause (so errors.Is sees
// context.DeadlineExceeded through it when a slow shard blows the
// caller's deadline, and connection errors when a shard node dies). When
// a whole replica group is down the cause enumerates every member's name
// and failure, so the operator can tell which member to heal.
type ShardError struct {
	// Shard is the failing shard's index in the cluster.
	Shard int
	// Name is the shard's configured name (the first group member's, or
	// the specific member's for member-scoped failures such as a refused
	// prepare).
	Name string
	// Lo, Hi is the row range the shard was asked to evaluate.
	Lo, Hi int
	// Err is the underlying failure.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("engine: cluster shard %d (%s) rows [%d,%d): %v", e.Shard, e.Name, e.Lo, e.Hi, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// groupFailure is the cause inside a ShardError when a whole replica
// group failed one batch: one entry per member, in group order, each
// naming the member and its failure (or why it was not tried). Unwrap
// exposes every underlying error, so errors.Is still sees the first
// member's cause — and everyone else's.
type groupFailure struct {
	parts  []string
	causes []error
}

func (g *groupFailure) Error() string   { return strings.Join(g.parts, "; ") }
func (g *groupFailure) Unwrap() []error { return g.causes }

// ErrMixedEpoch is wrapped by the error a Cluster returns when shards
// answered one batch at different table epochs — an update handshake
// committed mid-fan-out, or a member holds a stale table. The Answer path
// retries a bounded number of times first (the commit wave is milliseconds
// wide); a persistent mismatch means the cluster's replicas genuinely
// diverged and must fail loudly.
var ErrMixedEpoch = errors.New("engine: cluster shards answered at different table epochs")

// ErrNotEpochCapable is wrapped by cluster update errors when a member
// backend does not implement EpochBackend and therefore cannot join the
// all-or-nothing epoch handshake.
var ErrNotEpochCapable = errors.New("engine: backend does not support epoch-versioned updates")

// answerEpochRetries bounds how many times Answer re-fans a batch whose
// partials straddled an update commit.
const answerEpochRetries = 3

// abortTimeout bounds the rollback fan-out after a failed cluster update;
// it runs on a fresh context because the caller's may already be dead —
// dying with an epoch half-installed is the one thing the handshake must
// never do silently.
const abortTimeout = 30 * time.Second

// tripFailures is how many consecutive failures trip a member's breaker:
// the member leaves rotation for a backoff cooldown, then is probed
// (Ping) before re-entry, so a flapping node does not eat every batch's
// first attempt.
const tripFailures = 3

// probeTimeout bounds the health probe against a cooled-down member.
const probeTimeout = 2 * time.Second

// healAttempts bounds Heal's catch-up rounds against a donor whose epoch
// keeps advancing under update churn before the final locked round.
const healAttempts = 5

// healChunkWords is the word granularity Heal fetches snapshots at.
const healChunkWords = 256 << 10

// memberHealth is one group member's failure-tracking state. Answer
// goroutines and the update path share it; the mutex guards everything
// but the in-flight counter (read lock-free by the balancer).
type memberHealth struct {
	inflight atomic.Int64

	mu      sync.Mutex
	fails   int
	tripped bool
	retryAt time.Time
	bo      *backoff.Backoff
	stale   bool
	lastErr error
}

// pickClass buckets the member for selection: 0 = healthy, 1 = tripped
// but cooldown expired (probe before use), 2 = tripped and cooling (last
// resort only). ok is false for quarantined members, which never serve.
func (h *memberHealth) pickClass(now time.Time) (class int, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch {
	case h.stale:
		return 0, false
	case !h.tripped:
		return 0, true
	case !now.Before(h.retryAt):
		return 1, true
	default:
		return 2, true
	}
}

func (h *memberHealth) onSuccess() {
	h.mu.Lock()
	h.fails = 0
	h.tripped = false
	h.lastErr = nil
	h.bo.Reset()
	h.mu.Unlock()
}

func (h *memberHealth) onFailure(err error, now time.Time) {
	h.mu.Lock()
	h.lastErr = err
	h.fails++
	if h.tripped || h.fails >= tripFailures {
		h.tripped = true
		h.retryAt = now.Add(h.bo.Next())
	}
	h.mu.Unlock()
}

// quarantine marks the member stale: it missed one or more cluster
// epochs and must be healed (snapshot transfer) before serving again —
// the epoch merge check would refuse its answers anyway; quarantine just
// stops paying for the doomed attempt.
func (h *memberHealth) quarantine(err error) {
	h.mu.Lock()
	h.stale = true
	h.lastErr = err
	h.mu.Unlock()
}

// recover returns the member to full health: Heal calls it once the
// member has adopted the cluster's current epoch.
func (h *memberHealth) recover() {
	h.mu.Lock()
	h.stale = false
	h.tripped = false
	h.fails = 0
	h.lastErr = nil
	h.bo.Reset()
	h.mu.Unlock()
}

func (h *memberHealth) isStale() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stale
}

// status reports the member's state for MemberStatus.
func (h *memberHealth) status() (tripped, stale bool, lastErr error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tripped, h.stale, h.lastErr
}

// shardGroup is one shard's replica group: the members, their health, and
// the rotation counter the balancer ties on.
type shardGroup struct {
	members []RangeBackend
	names   []string
	health  []*memberHealth
	rr      atomic.Uint64
}

// pick chooses the next member to try: the lowest pick class wins, ties
// broken by in-flight load, remaining ties by a rotating start index (so
// sequential traffic round-robins and concurrent traffic spreads by
// load). Returns -1 when every member is tried or quarantined; probe is
// true when the choice is a tripped member that must be probed first.
func (g *shardGroup) pick(tried []bool, now time.Time) (idx int, probe bool) {
	n := len(g.members)
	start := int(g.rr.Add(1)-1) % n
	best, bestClass := -1, 0
	var bestIn int64
	for j := 0; j < n; j++ {
		i := (start + j) % n
		if tried[i] {
			continue
		}
		class, ok := g.health[i].pickClass(now)
		if !ok {
			continue
		}
		in := g.health[i].inflight.Load()
		if best < 0 || class < bestClass || (class == bestClass && in < bestIn) {
			best, bestClass, bestIn = i, class, in
		}
	}
	return best, best >= 0 && bestClass >= 1
}

// Cluster is a Backend that splits the row domain across N shard replica
// groups so one logical replica can span processes and machines: a key
// batch fans out concurrently as AnswerRange calls over contiguous row
// ranges — each shard's batch served by one load-balanced group member —
// and the per-shard partial sums merge lane-wise mod 2^32, by the
// linearity of the shares bit-identical to a single-process Replica over
// the same table. Construction fails loudly on any configuration the
// merge would silently corrupt: disagreeing table shapes, PRFs,
// early-termination depths or parties across any members (BackendInfo),
// or a member assigned rows it does not hold (RangeHolder).
//
// Epochs make the merge safe under change: when members report the table
// epoch their partials were computed at (EpochRangeBackend), a batch that
// straddled an update is detected and retried instead of merged, and
// UpdateBatch drives the prepare/commit epoch handshake so a multi-row
// update lands on every reachable member or on none. A member that missed
// epochs — it was unreachable during an update, or reports an older epoch
// — is quarantined: excluded from rotation and from later handshakes
// until Heal brings it to the current epoch via snapshot transfer.
type Cluster struct {
	groups []*shardGroup
	// bounds[i] .. bounds[i+1] is shard i's row range, the same even
	// split Replica uses for its in-process shards.
	bounds []int
	rows   int
	lanes  int

	// umu serializes cluster-driven updates and Heal's final join: one
	// epoch handshake in flight at a time (concurrent Answers are NOT
	// blocked — they pin snapshots on the shards and the epoch check
	// guards the merge).
	umu sync.Mutex

	// pinned configuration, known when at least one member reports
	// BackendInfo (all reporting members must agree); ValidateKey uses it
	// to reject bad keys at the front door. Members without BackendInfo
	// (wrappers, test stubs) neither pin nor un-pin: they are trusted to
	// match the configuration their siblings advertise.
	prgName string
	early   int
	party   int
	pinned  bool

	// epochRetries counts mixed-epoch detections on the answer path —
	// every time a batch's partials straddled an update commit (or hit a
	// not-yet-quarantined stale member) and the batch was re-fanned. The
	// serving front door reports it so a load harness can price what
	// epoch churn costs under real traffic.
	epochRetries atomic.Uint64
}

// EpochRetries returns how many answer batches were re-fanned because
// their partial shares straddled an update commit (ErrMixedEpoch on the
// merge). A steadily climbing counter under update churn is expected; the
// cost is one extra fan-out per count, never a wrong answer.
func (c *Cluster) EpochRetries() uint64 { return c.epochRetries.Load() }

// clusterMember is one backend of the cluster with its naming, position
// and health handle.
type clusterMember struct {
	be     RangeBackend
	name   string
	shard  int // index of the shard whose range this member serves
	member int // index within the shard's replica group
	h      *memberHealth
}

// members lists every backend in shard order, group members in order.
func (c *Cluster) members() []clusterMember {
	ms := make([]clusterMember, 0, len(c.groups)*2)
	for i, g := range c.groups {
		for j := range g.members {
			ms = append(ms, clusterMember{be: g.members[j], name: g.names[j], shard: i, member: j, h: g.health[j]})
		}
	}
	return ms
}

// activeMembers is members() minus the quarantined: the set answers serve
// from and epoch handshakes run over.
func (c *Cluster) activeMembers() []clusterMember {
	ms := c.members()
	out := ms[:0]
	for _, m := range ms {
		if !m.h.isStale() {
			out = append(out, m)
		}
	}
	return out
}

// NewCluster assembles a cluster over the given shards; shard i serves
// rows [i·rows/N, (i+1)·rows/N) of the common table domain.
func NewCluster(shards ...ClusterShard) (*Cluster, error) {
	if len(shards) == 0 {
		return nil, errors.New("engine: cluster needs at least one shard")
	}
	c := &Cluster{groups: make([]*shardGroup, len(shards))}
	for i, sh := range shards {
		g := &shardGroup{}
		add := func(be RangeBackend, name, defName string) {
			if name == "" {
				name = defName
			}
			g.members = append(g.members, be)
			g.names = append(g.names, name)
		}
		if sh.Backend != nil {
			add(sh.Backend, sh.Name, fmt.Sprintf("shard %d", i))
		}
		if sh.Standby != nil {
			add(sh.Standby, sh.StandbyName, fmt.Sprintf("shard %d standby", i))
		}
		for j, be := range sh.Members {
			if be == nil {
				return nil, fmt.Errorf("engine: cluster shard %d member %d is nil", i, j)
			}
			name := ""
			if j < len(sh.MemberNames) {
				name = sh.MemberNames[j]
			}
			add(be, name, fmt.Sprintf("shard %d member %d", i, j))
		}
		if len(g.members) == 0 {
			return nil, fmt.Errorf("engine: cluster shard %d has no backend", i)
		}
		g.health = make([]*memberHealth, len(g.members))
		for j := range g.health {
			// Deterministic per-position seeds: reproducible cooldown
			// schedules in tests, decorrelated across members.
			seed := uint64(i)*0x9e3779b97f4a7c15 + uint64(j) + 1
			g.health[j] = &memberHealth{bo: backoff.New(backoff.Default(), seed)}
		}
		c.groups[i] = g
	}
	c.rows, c.lanes = c.groups[0].members[0].Shape()
	if c.rows <= 0 || c.lanes <= 0 {
		return nil, fmt.Errorf("engine: cluster shard 0 (%s) reports an invalid %d×%d table", c.groups[0].names[0], c.rows, c.lanes)
	}
	members := c.members()
	for _, m := range members {
		rows, lanes := m.be.Shape()
		if rows != c.rows || lanes != c.lanes {
			return nil, fmt.Errorf("engine: cluster member %s serves a %d×%d table, shard 0 (%s) a %d×%d one — all members must replicate the same domain",
				m.name, rows, lanes, c.groups[0].names[0], c.rows, c.lanes)
		}
	}
	if len(c.groups) > c.rows {
		return nil, fmt.Errorf("engine: cluster of %d shards over a table of only %d rows", len(c.groups), c.rows)
	}
	c.bounds = make([]int, len(c.groups)+1)
	for i := range c.groups {
		c.bounds[i], c.bounds[i+1] = ShardRange(c.rows, i, len(c.groups))
	}
	// Every pinned fact must agree pairwise before partial shares may be
	// merged; name both values and both members in the rejection.
	firstName := ""
	for _, m := range members {
		info, ok := AsInfo(m.be)
		if !ok {
			continue
		}
		if firstName == "" {
			firstName = m.name
			c.prgName, c.early, c.party = info.PRGName(), info.EarlyBits(), info.Party()
			c.pinned = true
			continue
		}
		if got := info.PRGName(); got != c.prgName {
			return nil, fmt.Errorf("engine: cluster member %s serves prg=%s, %s prg=%s — members must share one PRF",
				m.name, got, firstName, c.prgName)
		}
		if got := info.EarlyBits(); got != c.early {
			return nil, fmt.Errorf("engine: cluster member %s serves early-termination depth %d, %s depth %d — members must share one depth",
				m.name, got, firstName, c.early)
		}
		if got := info.Party(); got != c.party {
			return nil, fmt.Errorf("engine: cluster member %s computes party %d shares, %s party %d — a cluster is one party",
				m.name, got, firstName, c.party)
		}
	}
	for _, m := range members {
		holder, ok := AsRangeHolder(m.be)
		if !ok {
			continue
		}
		lo, hi := holder.HeldRange()
		if lo < 0 || hi > c.rows || lo >= hi {
			return nil, fmt.Errorf("engine: cluster member %s claims to hold an invalid row range [%d,%d) of %d rows", m.name, lo, hi, c.rows)
		}
		if c.bounds[m.shard] < lo || c.bounds[m.shard+1] > hi {
			return nil, fmt.Errorf("engine: cluster member %s is assigned rows [%d,%d) but holds only [%d,%d) — start the node with the matching shard index/count",
				m.name, c.bounds[m.shard], c.bounds[m.shard+1], lo, hi)
		}
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.groups) }

// GroupSize returns the number of replica-group members serving shard i.
func (c *Cluster) GroupSize(shard int) int { return len(c.groups[shard].members) }

// Bounds returns the row split: shard i serves [Bounds()[i], Bounds()[i+1]).
func (c *Cluster) Bounds() []int { return append([]int(nil), c.bounds...) }

// Shape implements Backend.
func (c *Cluster) Shape() (rows, lanes int) { return c.rows, c.lanes }

// MemberStatus is one replica-group member's health as seen by the
// cluster, for operators and tests.
type MemberStatus struct {
	// Name is the member's configured name.
	Name string
	// Tripped reports the member's failure breaker is open (it serves
	// only as a probed last resort until a success resets it).
	Tripped bool
	// Quarantined reports the member missed cluster epochs and is
	// excluded from rotation and updates until healed.
	Quarantined bool
	// LastErr is the failure that tripped or quarantined the member
	// (nil when healthy).
	LastErr error
}

// Status reports the health of shard i's replica group, in member order.
func (c *Cluster) Status(shard int) []MemberStatus {
	g := c.groups[shard]
	out := make([]MemberStatus, len(g.members))
	for j := range g.members {
		tripped, stale, lastErr := g.health[j].status()
		out[j] = MemberStatus{Name: g.names[j], Tripped: tripped, Quarantined: stale, LastErr: lastErr}
	}
	return out
}

// Counters implements Backend: the lane-wise aggregate over every group
// member (all members serve load-balanced traffic; PRF blocks, traffic
// and launches are additive across the split, PeakMemBytes is the sum of
// per-member peaks, an upper bound on any single machine's footprint).
func (c *Cluster) Counters() gpu.Stats {
	var total gpu.Stats
	for _, m := range c.members() {
		s := m.be.Counters()
		total.PRFBlocks += s.PRFBlocks
		total.ReadBytes += s.ReadBytes
		total.WriteBytes += s.WriteBytes
		total.Launches += s.Launches
		total.PeakMemBytes += s.PeakMemBytes
	}
	return total
}

// answerRangeEpoch evaluates keys against [lo, hi) on be, reporting the
// table epoch when the backend can pin one (hasEpoch false otherwise).
func answerRangeEpoch(ctx context.Context, be RangeBackend, keys [][]byte, lo, hi int) (part [][]uint32, epoch uint64, hasEpoch bool, err error) {
	if eb, ok := AsEpochRange(be); ok {
		return eb.AnswerRangeEpoch(ctx, keys, lo, hi)
	}
	part, err = be.AnswerRange(ctx, keys, lo, hi)
	return part, 0, false, err
}

// shardAnswer is one shard's successful contribution to a batch.
type shardAnswer struct {
	part     [][]uint32
	epoch    uint64
	hasEpoch bool
	// name is the member that actually produced the partial, for
	// epoch-mismatch errors.
	name string
}

// Answer implements Backend: the batch fans out to every shard's row range
// concurrently, each shard's sub-batch served by one load-balanced member
// of its replica group, and the partial shares merge lane-wise mod 2^32.
// A member that fails mid-batch is retried transparently on the next
// healthy member (each member tried at most once per pass); only when the
// whole group is down does the fan-out cancel and the answer come back as
// a *ShardError naming the shard with every member's failure enumerated —
// a failure induced by the caller's own ctx keeps the ctx error in the
// chain (errors.Is sees DeadlineExceeded). Partials are merged only when
// every shard that reports a table epoch reports the SAME one; a batch
// that straddles an update commit is re-fanned (bounded retries), so a
// mixed-epoch answer can never be returned.
func (c *Cluster) Answer(ctx context.Context, keys [][]byte) ([][]uint32, error) {
	if len(keys) == 0 {
		return nil, errors.New("engine: empty key batch")
	}
	var lastErr error
	for attempt := 0; attempt <= answerEpochRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		answers, err := c.answerOnce(ctx, keys)
		if err == nil {
			return answers, nil
		}
		if !errors.Is(err, ErrMixedEpoch) {
			return nil, err
		}
		// An update handshake was committing while the batch fanned out
		// (or a stale member answered before its quarantine landed); the
		// next pass rotates members and lands after the wave.
		c.epochRetries.Add(1)
		lastErr = err
	}
	return nil, lastErr
}

// groupAnswer serves one shard's sub-batch off its replica group: members
// are tried in balancer order, each at most once, failures recorded
// against their health (unless the caller's ctx already died — a
// sibling-induced cancellation must not poison health state). A tripped
// member whose cooldown expired is probed (Ping) before being trusted
// with the batch.
func (c *Cluster) groupAnswer(ctx context.Context, shard int, keys [][]byte) (shardAnswer, error) {
	g := c.groups[shard]
	lo, hi := c.bounds[shard], c.bounds[shard+1]
	tried := make([]bool, len(g.members))
	memberErrs := make([]error, len(g.members))
	for {
		if err := ctx.Err(); err != nil {
			if first := firstErr(memberErrs); first != nil {
				break // report the members we did try, not the bare cancel
			}
			return shardAnswer{}, err
		}
		idx, probe := g.pick(tried, time.Now())
		if idx < 0 {
			break
		}
		h := g.health[idx]
		if probe {
			if p, ok := AsPinger(g.members[idx]); ok {
				pctx, pcancel := context.WithTimeout(ctx, probeTimeout)
				perr := p.Ping(pctx)
				pcancel()
				if perr != nil {
					tried[idx] = true
					memberErrs[idx] = fmt.Errorf("health probe failed: %w", perr)
					if ctx.Err() == nil {
						h.onFailure(perr, time.Now())
					}
					continue
				}
			}
		}
		tried[idx] = true
		h.inflight.Add(1)
		part, epoch, hasEpoch, err := answerRangeEpoch(ctx, g.members[idx], keys, lo, hi)
		h.inflight.Add(-1)
		if err == nil {
			h.onSuccess()
			return shardAnswer{part: part, epoch: epoch, hasEpoch: hasEpoch, name: g.names[idx]}, nil
		}
		memberErrs[idx] = err
		if ctx.Err() == nil {
			h.onFailure(err, time.Now())
		}
	}
	return shardAnswer{}, c.groupErr(g, memberErrs)
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// groupErr assembles the all-members-failed cause: the single member's
// bare error for a one-member group (the common remote-shard case keeps
// its exact error chain), an enumeration of every member's name and
// failure otherwise — quarantined members included, with the reason they
// were skipped.
func (c *Cluster) groupErr(g *shardGroup, memberErrs []error) error {
	if len(g.members) == 1 && memberErrs[0] != nil {
		return memberErrs[0]
	}
	gf := &groupFailure{}
	for j := range g.members {
		switch {
		case memberErrs[j] != nil:
			gf.parts = append(gf.parts, fmt.Sprintf("%s: %v", g.names[j], memberErrs[j]))
			gf.causes = append(gf.causes, memberErrs[j])
		default:
			_, stale, lastErr := g.health[j].status()
			if !stale {
				continue // never picked (e.g. ctx died first) and nothing to report
			}
			reason := "stale epoch"
			if lastErr != nil {
				reason = lastErr.Error()
			}
			gf.parts = append(gf.parts, fmt.Sprintf("%s: quarantined (%s); heal to rejoin", g.names[j], reason))
			if lastErr != nil {
				gf.causes = append(gf.causes, lastErr)
			}
		}
	}
	if len(gf.parts) == 0 {
		return errors.New("no serviceable replica-group member")
	}
	return gf
}

// answerOnce runs one fan-out/merge pass.
func (c *Cluster) answerOnce(ctx context.Context, keys [][]byte) ([][]uint32, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]shardAnswer, len(c.groups))
	errs := make([]error, len(c.groups))
	var wg sync.WaitGroup
	wg.Add(len(c.groups))
	for i := range c.groups {
		go func(i int) {
			defer wg.Done()
			ans, err := c.groupAnswer(ctx, i, keys)
			if err != nil {
				errs[i] = err
				cancel() // stop paying for partials the batch can no longer use
				return
			}
			results[i] = ans
		}(i)
	}
	wg.Wait()
	// Prefer the shard that actually failed over siblings that merely saw
	// the cancellation it triggered.
	fail := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if fail < 0 || (errors.Is(errs[fail], context.Canceled) && !errors.Is(err, context.Canceled)) {
			fail = i
		}
	}
	if fail >= 0 {
		return nil, &ShardError{Shard: fail, Name: c.groups[fail].names[0], Lo: c.bounds[fail], Hi: c.bounds[fail+1], Err: errs[fail]}
	}
	// Partials may only merge when they were computed against one table
	// epoch: members on different epochs would sum shares of two
	// different tables into one silently wrong answer.
	ref := -1
	for i, r := range results {
		if !r.hasEpoch {
			continue
		}
		if ref < 0 {
			ref = i
			continue
		}
		if r.epoch != results[ref].epoch {
			return nil, fmt.Errorf("%w: shard %d (%s) at epoch %d, shard %d (%s) at epoch %d",
				ErrMixedEpoch, ref, results[ref].name, results[ref].epoch, i, r.name, r.epoch)
		}
	}
	answers := strategy.NewAnswers(len(keys), c.lanes)
	for i, r := range results {
		if len(r.part) != len(keys) {
			return nil, &ShardError{Shard: i, Name: r.name, Lo: c.bounds[i], Hi: c.bounds[i+1],
				Err: fmt.Errorf("engine: %d partial shares for %d keys", len(r.part), len(keys))}
		}
		for q := range answers {
			if len(r.part[q]) != c.lanes {
				return nil, &ShardError{Shard: i, Name: r.name, Lo: c.bounds[i], Hi: c.bounds[i+1],
					Err: fmt.Errorf("engine: partial share %d has %d lanes, table has %d", q, len(r.part[q]), c.lanes)}
			}
			for l := range answers[q] {
				answers[q][l] += r.part[q][l]
			}
		}
	}
	return answers, nil
}

// shardErr wraps err as the named failure of member m.
func (c *Cluster) shardErr(m clusterMember, err error) *ShardError {
	return &ShardError{Shard: m.shard, Name: m.name, Lo: c.bounds[m.shard], Hi: c.bounds[m.shard+1], Err: err}
}

// epochBackends resolves every given member as an EpochBackend, or
// returns a named error for the first member that cannot join the epoch
// handshake.
func (c *Cluster) epochBackends(ms []clusterMember) ([]EpochBackend, error) {
	ebs := make([]EpochBackend, len(ms))
	for i, m := range ms {
		eb, ok := AsEpoch(m.be)
		if !ok {
			return nil, c.shardErr(m, fmt.Errorf("%w (member %s)", ErrNotEpochCapable, m.name))
		}
		ebs[i] = eb
	}
	return ebs, nil
}

// forMembers runs fn on every member concurrently and returns the first
// failure as a named ShardError (nil when all succeed).
func (c *Cluster) forMembers(ms []clusterMember, fn func(i int) error) error {
	errs := make([]error, len(ms))
	var wg sync.WaitGroup
	wg.Add(len(ms))
	for i := range ms {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return c.shardErr(ms[i], err)
		}
	}
	return nil
}

// Epoch returns the cluster's table epoch, which every active
// (non-quarantined) member must agree on; disagreement (a member that
// missed an update outside a handshake, a freshly restarted node at epoch
// 0) is a named error, never a quiet majority vote.
func (c *Cluster) Epoch(ctx context.Context) (uint64, error) {
	ms := c.activeMembers()
	ebs, err := c.epochBackends(ms)
	if err != nil {
		return 0, err
	}
	epochs := make([]uint64, len(ms))
	if err := c.forMembers(ms, func(i int) error {
		var eerr error
		epochs[i], eerr = ebs[i].Epoch(ctx)
		return eerr
	}); err != nil {
		return 0, err
	}
	for i := 1; i < len(ms); i++ {
		if epochs[i] != epochs[0] {
			return 0, fmt.Errorf("%w: member %s at epoch %d, member %s at epoch %d",
				ErrMixedEpoch, ms[0].name, epochs[0], ms[i].name, epochs[i])
		}
	}
	if len(epochs) == 0 {
		return 0, errors.New("engine: every cluster member is quarantined")
	}
	return epochs[0], nil
}

// UpdateBatch installs the row writes atomically across the whole cluster
// — every reachable replica-group member — via the epoch handshake: all
// participants prepare epoch N+1, and the commit wave starts only when
// every participant acked the prepare. Any straggler aborts the epoch
// everywhere (prepared members drop the staged epoch, committed members
// roll back), so a partial failure leaves every participant readable at
// epoch N and the burned epoch number is never reissued.
//
// Promotion happens here: a member that cannot report its epoch (node
// down) or reports an older epoch than its siblings is quarantined —
// excluded from this and future handshakes and from answer rotation until
// Heal catches it up — rather than blocking the update or being blended
// in stale. The update fails only when a shard would lose its LAST
// member. Concurrent Answers are not blocked: they keep their pinned
// snapshots, and a batch that straddles the commit wave is caught by the
// merge epoch check and retried.
func (c *Cluster) UpdateBatch(ctx context.Context, writes []RowWrite) (uint64, error) {
	if err := validateRowWrites(writes, c.rows, c.lanes); err != nil {
		return 0, err
	}
	c.umu.Lock()
	defer c.umu.Unlock()
	ms := c.activeMembers()
	ebs, err := c.epochBackends(ms)
	if err != nil {
		return 0, err
	}
	// Gather every participant's epoch. The max wins: members below it
	// missed a past update and are quarantined, members that cannot
	// answer are unreachable and are quarantined too — both rejoin via
	// Heal, at the then-current epoch.
	epochs := make([]uint64, len(ms))
	gatherErrs := make([]error, len(ms))
	var wg sync.WaitGroup
	wg.Add(len(ms))
	for i := range ms {
		go func(i int) {
			defer wg.Done()
			epochs[i], gatherErrs[i] = ebs[i].Epoch(ctx)
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("engine: cluster update refused: %w", err)
	}
	var epoch uint64
	seen := false
	for i := range ms {
		if gatherErrs[i] == nil {
			if !seen || epochs[i] > epoch {
				epoch, seen = epochs[i], true
			}
		}
	}
	participants := ms[:0]
	pebs := ebs[:0]
	for i, m := range ms {
		switch {
		case gatherErrs[i] != nil:
			m.h.quarantine(fmt.Errorf("unreachable during cluster update: %w", gatherErrs[i]))
		case epochs[i] < epoch:
			m.h.quarantine(fmt.Errorf("behind at epoch %d (cluster at epoch %d)", epochs[i], epoch))
		default:
			participants = append(participants, m)
			pebs = append(pebs, ebs[i])
		}
	}
	if err := c.requireAllShards(participants); err != nil {
		return 0, fmt.Errorf("engine: cluster update refused: %w", err)
	}
	target := epoch + 1
	// Each participant stages only the writes for its own row range (the
	// rows its answers can ever read); members whose range the batch does
	// not touch stage an empty write set — an epoch tick, so the whole
	// cluster moves to N+1 in lockstep and the merge check stays sharp.
	perShard := make([][]RowWrite, len(c.groups))
	for _, w := range writes {
		i := 0
		for int(w.Row) >= c.bounds[i+1] {
			i++
		}
		perShard[i] = append(perShard[i], w)
	}
	abortAll := func() {
		// The caller's ctx may already be dead (its deadline may be WHY
		// a phase failed); the rollback must still reach every member.
		actx, acancel := context.WithTimeout(context.WithoutCancel(ctx), abortTimeout)
		defer acancel()
		var awg sync.WaitGroup
		awg.Add(len(participants))
		for i := range participants {
			go func(i int) {
				defer awg.Done()
				_ = pebs[i].AbortUpdate(actx, target) // idempotent; best effort
			}(i)
		}
		awg.Wait()
	}
	if err := c.forMembers(participants, func(i int) error {
		return pebs[i].PrepareUpdate(ctx, target, perShard[participants[i].shard])
	}); err != nil {
		abortAll()
		return 0, fmt.Errorf("engine: cluster update aborted at prepare: %w", err)
	}
	if err := c.forMembers(participants, func(i int) error {
		return pebs[i].CommitUpdate(ctx, target)
	}); err != nil {
		abortAll()
		return 0, fmt.Errorf("engine: cluster update rolled back at commit: %w", err)
	}
	return target, nil
}

// requireAllShards fails (naming the starved shard and every member's
// state) when some shard has no member among ms — an update that skipped
// a whole shard would desynchronize the row split, and an answer could
// never be served.
func (c *Cluster) requireAllShards(ms []clusterMember) error {
	alive := make([]int, len(c.groups))
	for _, m := range ms {
		alive[m.shard]++
	}
	for i, n := range alive {
		if n > 0 {
			continue
		}
		g := c.groups[i]
		return &ShardError{Shard: i, Name: g.names[0], Lo: c.bounds[i], Hi: c.bounds[i+1],
			Err: c.groupErr(g, make([]error, len(g.members)))}
	}
	return nil
}

// Update implements Backend. When every active member supports
// epoch-versioned updates the write goes through UpdateBatch — one atomic
// epoch across the whole cluster. Otherwise it falls back to routing the
// write to every member of the shard that serves the row (so a later
// failover does not serve the stale value).
func (c *Cluster) Update(row uint64, vals []uint32) error {
	if row >= uint64(c.rows) {
		return fmt.Errorf("engine: update row %d outside table of %d rows", row, c.rows)
	}
	if len(vals) != c.lanes {
		return fmt.Errorf("engine: update has %d lanes, table rows have %d", len(vals), c.lanes)
	}
	if _, err := c.epochBackends(c.activeMembers()); err == nil {
		_, uerr := c.UpdateBatch(context.Background(), []RowWrite{{Row: row, Vals: vals}})
		return uerr
	}
	i := 0
	for int(row) >= c.bounds[i+1] {
		i++
	}
	g := c.groups[i]
	for j, be := range g.members {
		if err := be.Update(row, vals); err != nil {
			return &ShardError{Shard: i, Name: g.names[j], Lo: c.bounds[i], Hi: c.bounds[i+1], Err: err}
		}
	}
	return nil
}

// ValidateKey implements KeyValidator when the member set pins a
// configuration (at least one member reported BackendInfo): the key must
// unmarshal, carry the cluster's party, be scalar, and match the domain's
// tree depth and the pinned early-termination depth — the same checks
// Replica.ValidateKey runs, performed at the cluster front so a bad key
// fails its own request before any network fan-out. Without a pinned
// configuration it accepts everything and leaves rejection to the shards.
func (c *Cluster) ValidateKey(raw []byte) error {
	if !c.pinned {
		return nil
	}
	prefix := func() string {
		return fmt.Sprintf("engine cluster (prg=%s, key wire v%d)", c.prgName, dpf.WireVersion(raw))
	}
	var k dpf.Key
	if err := k.UnmarshalBinary(raw); err != nil {
		return fmt.Errorf("%s: %w", prefix(), err)
	}
	if err := validatePinnedKey(&k, c.party, dpf.DomainBits(c.rows), c.early); err != nil {
		return fmt.Errorf("%s: %w", prefix(), err)
	}
	return nil
}

// PRGName implements BackendInfo when pinned ("" otherwise).
func (c *Cluster) PRGName() string { return c.prgName }

// EarlyBits implements BackendInfo when pinned (0 otherwise).
func (c *Cluster) EarlyBits() int { return c.early }

// Party implements BackendInfo when pinned (0 otherwise).
func (c *Cluster) Party() int { return c.party }

// Pinned reports whether any member exposed its configuration, i.e.
// whether ValidateKey and the BackendInfo accessors are authoritative.
func (c *Cluster) Pinned() bool { return c.pinned }

// Close closes every member backend that is closeable (remote shard
// clients included); in-process replicas have nothing to close.
func (c *Cluster) Close() error {
	var first error
	for _, m := range c.members() {
		if closer, ok := AsCloser(m.be); ok {
			if err := closer.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

var _ Backend = (*Cluster)(nil)
var _ KeyValidator = (*Cluster)(nil)
