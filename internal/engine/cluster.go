package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"gpudpf/internal/dpf"
	"gpudpf/internal/gpu"
	"gpudpf/internal/strategy"
)

// ShardRange returns the row range [lo, hi) that shard i of n serves in
// an evenly split domain of rows entries. Every layer that derives the
// split — Replica's in-process shard bounds, Cluster's assignment, and a
// shard node started with `pirserver -shardnode i/n` — must compute it
// through this one function: a node whose held slice diverges from the
// front's assignment is only caught at startup by the RangeHolder check,
// and two layers quietly disagreeing on the rounding is exactly the kind
// of drift that turns into garbage shares.
func ShardRange(rows, i, n int) (lo, hi int) {
	return i * rows / n, (i + 1) * rows / n
}

// ClusterShard is one member of a Cluster: a backend that can answer row
// sub-ranges (an in-process Replica, or a shardnet.Client speaking to a
// node in another process or on another machine) plus a name for errors —
// when a shard dies mid-batch the operator needs to know WHICH machine.
// An optional Standby is a second backend holding the same row range: a
// primary that fails mid-batch is retried there transparently, provided
// the standby's answer merges at the same table epoch as the other
// shards' (a stale standby is refused, never silently blended in).
type ClusterShard struct {
	Backend RangeBackend
	// Name identifies the shard in errors (typically its address for
	// remote shards); empty defaults to "shard i".
	Name string
	// Standby, when non-nil, serves the same rows as Backend and takes
	// over a live batch when Backend fails. It participates in cluster
	// updates (the epoch handshake prepares and commits on standbys
	// too), so a failover never serves stale rows undetected.
	Standby RangeBackend
	// StandbyName names the standby in errors; empty defaults to
	// "shard i standby".
	StandbyName string
}

// ShardError is the named error a Cluster returns when one shard's
// sub-range evaluation fails: it identifies the shard by index, name and
// assigned row range, and wraps the underlying cause (so errors.Is sees
// context.DeadlineExceeded through it when a slow shard blows the
// caller's deadline, and connection errors when a shard node dies).
type ShardError struct {
	// Shard is the failing shard's index in the cluster.
	Shard int
	// Name is the shard's configured name (address for remote shards).
	Name string
	// Lo, Hi is the row range the shard was asked to evaluate.
	Lo, Hi int
	// Err is the underlying failure.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("engine: cluster shard %d (%s) rows [%d,%d): %v", e.Shard, e.Name, e.Lo, e.Hi, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// ErrMixedEpoch is wrapped by the error a Cluster returns when shards
// answered one batch at different table epochs — an update handshake
// committed mid-fan-out, or a shard (often a standby taking over) holds a
// stale table. The Answer path retries a bounded number of times first
// (the commit wave is milliseconds wide); a persistent mismatch means the
// cluster's replicas genuinely diverged and must fail loudly.
var ErrMixedEpoch = errors.New("engine: cluster shards answered at different table epochs")

// ErrNotEpochCapable is wrapped by cluster update errors when a member
// backend does not implement EpochBackend and therefore cannot join the
// all-or-nothing epoch handshake.
var ErrNotEpochCapable = errors.New("engine: backend does not support epoch-versioned updates")

// answerEpochRetries bounds how many times Answer re-fans a batch whose
// partials straddled an update commit.
const answerEpochRetries = 3

// abortTimeout bounds the rollback fan-out after a failed cluster update;
// it runs on a fresh context because the caller's may already be dead —
// dying with an epoch half-installed is the one thing the handshake must
// never do silently.
const abortTimeout = 30 * time.Second

// Cluster is a Backend that splits the row domain across N shard backends
// so one logical replica can span processes and machines: a key batch
// fans out concurrently as AnswerRange calls over contiguous row ranges,
// and the per-shard partial sums merge lane-wise mod 2^32 — by the
// linearity of the shares, bit-identical to a single-process Replica over
// the same table. Construction fails loudly on any configuration the
// merge would silently corrupt: disagreeing table shapes, PRFs,
// early-termination depths or parties across shards or standbys
// (BackendInfo), or a member assigned rows it does not hold (RangeHolder).
//
// Epochs make the merge safe under change: when members report the table
// epoch their partials were computed at (EpochRangeBackend), a batch that
// straddled an update is detected and retried instead of merged, and
// UpdateBatch drives the prepare/commit epoch handshake so a multi-row
// update lands on every shard — primaries and standbys — or on none.
type Cluster struct {
	shards []ClusterShard
	// bounds[i] .. bounds[i+1] is shard i's row range, the same even
	// split Replica uses for its in-process shards.
	bounds []int
	rows   int
	lanes  int

	// umu serializes cluster-driven updates: one epoch handshake in
	// flight at a time (concurrent Answers are NOT blocked — they pin
	// snapshots on the shards and the epoch check guards the merge).
	umu sync.Mutex

	// pinned configuration, known when at least one member reports
	// BackendInfo (all reporting members must agree); ValidateKey uses it
	// to reject bad keys at the front door. Members without BackendInfo
	// (wrappers, test stubs) neither pin nor un-pin: they are trusted to
	// match the configuration their siblings advertise.
	prgName string
	early   int
	party   int
	pinned  bool
}

// clusterMember is one backend of the cluster — a shard primary or a
// standby — with the naming and row assignment validation and the update
// fan-out share.
type clusterMember struct {
	be      RangeBackend
	name    string
	shard   int // index of the shard whose range this member serves
	standby bool
}

// members lists every backend in shard order, primaries before their
// standbys.
func (c *Cluster) members() []clusterMember {
	ms := make([]clusterMember, 0, len(c.shards)*2)
	for i, sh := range c.shards {
		ms = append(ms, clusterMember{be: sh.Backend, name: sh.Name, shard: i})
		if sh.Standby != nil {
			ms = append(ms, clusterMember{be: sh.Standby, name: sh.StandbyName, shard: i, standby: true})
		}
	}
	return ms
}

// NewCluster assembles a cluster over the given shards; shard i serves
// rows [i·rows/N, (i+1)·rows/N) of the common table domain.
func NewCluster(shards ...ClusterShard) (*Cluster, error) {
	if len(shards) == 0 {
		return nil, errors.New("engine: cluster needs at least one shard")
	}
	c := &Cluster{shards: make([]ClusterShard, len(shards))}
	copy(c.shards, shards)
	for i := range c.shards {
		if c.shards[i].Backend == nil {
			return nil, fmt.Errorf("engine: cluster shard %d has no backend", i)
		}
		if c.shards[i].Name == "" {
			c.shards[i].Name = fmt.Sprintf("shard %d", i)
		}
		if c.shards[i].Standby != nil && c.shards[i].StandbyName == "" {
			c.shards[i].StandbyName = fmt.Sprintf("shard %d standby", i)
		}
	}
	c.rows, c.lanes = c.shards[0].Backend.Shape()
	if c.rows <= 0 || c.lanes <= 0 {
		return nil, fmt.Errorf("engine: cluster shard 0 (%s) reports an invalid %d×%d table", c.shards[0].Name, c.rows, c.lanes)
	}
	members := c.members()
	for _, m := range members {
		rows, lanes := m.be.Shape()
		if rows != c.rows || lanes != c.lanes {
			return nil, fmt.Errorf("engine: cluster member %s serves a %d×%d table, shard 0 (%s) a %d×%d one — all members must replicate the same domain",
				m.name, rows, lanes, c.shards[0].Name, c.rows, c.lanes)
		}
	}
	if len(c.shards) > c.rows {
		return nil, fmt.Errorf("engine: cluster of %d shards over a table of only %d rows", len(c.shards), c.rows)
	}
	c.bounds = make([]int, len(c.shards)+1)
	for i := range c.shards {
		c.bounds[i], c.bounds[i+1] = ShardRange(c.rows, i, len(c.shards))
	}
	// Every pinned fact must agree pairwise before partial shares may be
	// merged; name both values and both members in the rejection.
	firstName := ""
	for _, m := range members {
		info, ok := m.be.(BackendInfo)
		if !ok {
			continue
		}
		if firstName == "" {
			firstName = m.name
			c.prgName, c.early, c.party = info.PRGName(), info.EarlyBits(), info.Party()
			c.pinned = true
			continue
		}
		if got := info.PRGName(); got != c.prgName {
			return nil, fmt.Errorf("engine: cluster member %s serves prg=%s, %s prg=%s — members must share one PRF",
				m.name, got, firstName, c.prgName)
		}
		if got := info.EarlyBits(); got != c.early {
			return nil, fmt.Errorf("engine: cluster member %s serves early-termination depth %d, %s depth %d — members must share one depth",
				m.name, got, firstName, c.early)
		}
		if got := info.Party(); got != c.party {
			return nil, fmt.Errorf("engine: cluster member %s computes party %d shares, %s party %d — a cluster is one party",
				m.name, got, firstName, c.party)
		}
	}
	for _, m := range members {
		holder, ok := m.be.(RangeHolder)
		if !ok {
			continue
		}
		lo, hi := holder.HeldRange()
		if lo < 0 || hi > c.rows || lo >= hi {
			return nil, fmt.Errorf("engine: cluster member %s claims to hold an invalid row range [%d,%d) of %d rows", m.name, lo, hi, c.rows)
		}
		if c.bounds[m.shard] < lo || c.bounds[m.shard+1] > hi {
			return nil, fmt.Errorf("engine: cluster member %s is assigned rows [%d,%d) but holds only [%d,%d) — start the node with the matching shard index/count",
				m.name, c.bounds[m.shard], c.bounds[m.shard+1], lo, hi)
		}
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Bounds returns the row split: shard i serves [Bounds()[i], Bounds()[i+1]).
func (c *Cluster) Bounds() []int { return append([]int(nil), c.bounds...) }

// Shape implements Backend.
func (c *Cluster) Shape() (rows, lanes int) { return c.rows, c.lanes }

// Counters implements Backend: the lane-wise aggregate over the serving
// shards (PRF blocks, traffic and launches are additive across the split;
// PeakMemBytes is the sum of per-shard peaks, an upper bound on any
// single machine's footprint). Idle standbys are not counted.
func (c *Cluster) Counters() gpu.Stats {
	var total gpu.Stats
	for _, sh := range c.shards {
		s := sh.Backend.Counters()
		total.PRFBlocks += s.PRFBlocks
		total.ReadBytes += s.ReadBytes
		total.WriteBytes += s.WriteBytes
		total.Launches += s.Launches
		total.PeakMemBytes += s.PeakMemBytes
	}
	return total
}

// answerRangeEpoch evaluates keys against [lo, hi) on be, reporting the
// table epoch when the backend can pin one (hasEpoch false otherwise).
func answerRangeEpoch(ctx context.Context, be RangeBackend, keys [][]byte, lo, hi int) (part [][]uint32, epoch uint64, hasEpoch bool, err error) {
	if eb, ok := be.(EpochRangeBackend); ok {
		return eb.AnswerRangeEpoch(ctx, keys, lo, hi)
	}
	part, err = be.AnswerRange(ctx, keys, lo, hi)
	return part, 0, false, err
}

// shardAnswer is one shard's successful contribution to a batch.
type shardAnswer struct {
	part     [][]uint32
	epoch    uint64
	hasEpoch bool
	// name is the member that actually produced the partial (the standby
	// after a failover), for epoch-mismatch errors.
	name string
}

// Answer implements Backend: the batch fans out to every shard's row range
// concurrently, and the partial shares merge lane-wise mod 2^32. A shard
// that fails mid-batch is retried transparently on its standby; only when
// both fail (or no standby is configured) does the fan-out cancel and the
// answer come back as a *ShardError naming the shard — a failure induced
// by the caller's own ctx keeps the ctx error in the chain (errors.Is
// sees DeadlineExceeded). Partials are merged only when every shard that
// reports a table epoch reports the SAME one; a batch that straddles an
// update commit is re-fanned (bounded retries), so a mixed-epoch answer
// can never be returned.
func (c *Cluster) Answer(ctx context.Context, keys [][]byte) ([][]uint32, error) {
	if len(keys) == 0 {
		return nil, errors.New("engine: empty key batch")
	}
	var lastErr error
	for attempt := 0; attempt <= answerEpochRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		answers, err := c.answerOnce(ctx, keys)
		if err == nil {
			return answers, nil
		}
		if !errors.Is(err, ErrMixedEpoch) {
			return nil, err
		}
		// An update handshake was committing while the batch fanned out;
		// the next pass lands after the wave.
		lastErr = err
	}
	return nil, lastErr
}

// answerOnce runs one fan-out/merge pass.
func (c *Cluster) answerOnce(ctx context.Context, keys [][]byte) ([][]uint32, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]shardAnswer, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	wg.Add(len(c.shards))
	for i := range c.shards {
		go func(i int) {
			defer wg.Done()
			sh := c.shards[i]
			lo, hi := c.bounds[i], c.bounds[i+1]
			part, epoch, hasEpoch, err := answerRangeEpoch(ctx, sh.Backend, keys, lo, hi)
			name := sh.Name
			if err != nil && sh.Standby != nil && ctx.Err() == nil {
				// The primary died on a live batch; the standby holds the
				// same rows — retry there before failing the whole answer.
				if part2, epoch2, hasEpoch2, err2 := answerRangeEpoch(ctx, sh.Standby, keys, lo, hi); err2 == nil {
					part, epoch, hasEpoch, err = part2, epoch2, hasEpoch2, nil
					name = sh.StandbyName
				} else {
					err = fmt.Errorf("primary: %w; standby %s also failed: %v", err, sh.StandbyName, err2)
				}
			}
			if err != nil {
				errs[i] = err
				cancel() // stop paying for partials the batch can no longer use
				return
			}
			results[i] = shardAnswer{part: part, epoch: epoch, hasEpoch: hasEpoch, name: name}
		}(i)
	}
	wg.Wait()
	// Prefer the shard that actually failed over siblings that merely saw
	// the cancellation it triggered.
	fail := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if fail < 0 || (errors.Is(errs[fail], context.Canceled) && !errors.Is(err, context.Canceled)) {
			fail = i
		}
	}
	if fail >= 0 {
		return nil, &ShardError{Shard: fail, Name: c.shards[fail].Name, Lo: c.bounds[fail], Hi: c.bounds[fail+1], Err: errs[fail]}
	}
	// Partials may only merge when they were computed against one table
	// epoch: shards (or standbys) on different epochs would sum shares of
	// two different tables into one silently wrong answer.
	ref := -1
	for i, r := range results {
		if !r.hasEpoch {
			continue
		}
		if ref < 0 {
			ref = i
			continue
		}
		if r.epoch != results[ref].epoch {
			return nil, fmt.Errorf("%w: shard %d (%s) at epoch %d, shard %d (%s) at epoch %d",
				ErrMixedEpoch, ref, results[ref].name, results[ref].epoch, i, r.name, r.epoch)
		}
	}
	answers := strategy.NewAnswers(len(keys), c.lanes)
	for i, r := range results {
		if len(r.part) != len(keys) {
			return nil, &ShardError{Shard: i, Name: r.name, Lo: c.bounds[i], Hi: c.bounds[i+1],
				Err: fmt.Errorf("engine: %d partial shares for %d keys", len(r.part), len(keys))}
		}
		for q := range answers {
			if len(r.part[q]) != c.lanes {
				return nil, &ShardError{Shard: i, Name: r.name, Lo: c.bounds[i], Hi: c.bounds[i+1],
					Err: fmt.Errorf("engine: partial share %d has %d lanes, table has %d", q, len(r.part[q]), c.lanes)}
			}
			for l := range answers[q] {
				answers[q][l] += r.part[q][l]
			}
		}
	}
	return answers, nil
}

// shardErr wraps err as the named failure of member m.
func (c *Cluster) shardErr(m clusterMember, err error) *ShardError {
	return &ShardError{Shard: m.shard, Name: m.name, Lo: c.bounds[m.shard], Hi: c.bounds[m.shard+1], Err: err}
}

// epochMembers returns every member as an EpochBackend, or a named error
// for the first member that cannot join the epoch handshake.
func (c *Cluster) epochMembers() ([]clusterMember, []EpochBackend, error) {
	ms := c.members()
	ebs := make([]EpochBackend, len(ms))
	for i, m := range ms {
		eb, ok := m.be.(EpochBackend)
		if !ok {
			return nil, nil, c.shardErr(m, fmt.Errorf("%w (member %s)", ErrNotEpochCapable, m.name))
		}
		ebs[i] = eb
	}
	return ms, ebs, nil
}

// forAllMembers runs fn on every member concurrently and returns the
// first failure as a named ShardError (nil when all succeed).
func (c *Cluster) forAllMembers(ms []clusterMember, ebs []EpochBackend, fn func(i int) error) error {
	errs := make([]error, len(ms))
	var wg sync.WaitGroup
	wg.Add(len(ms))
	for i := range ms {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return c.shardErr(ms[i], err)
		}
	}
	return nil
}

// Epoch returns the cluster's table epoch, which every member must agree
// on; disagreement (a shard that missed an update, a freshly restarted
// node at epoch 0) is a named error, never a quiet majority vote.
func (c *Cluster) Epoch(ctx context.Context) (uint64, error) {
	ms, ebs, err := c.epochMembers()
	if err != nil {
		return 0, err
	}
	epochs := make([]uint64, len(ms))
	if err := c.forAllMembers(ms, ebs, func(i int) error {
		var eerr error
		epochs[i], eerr = ebs[i].Epoch(ctx)
		return eerr
	}); err != nil {
		return 0, err
	}
	for i := 1; i < len(ms); i++ {
		if epochs[i] != epochs[0] {
			return 0, fmt.Errorf("%w: member %s at epoch %d, member %s at epoch %d",
				ErrMixedEpoch, ms[0].name, epochs[0], ms[i].name, epochs[i])
		}
	}
	return epochs[0], nil
}

// UpdateBatch installs the row writes atomically across the whole cluster
// — every shard primary AND standby — via the epoch handshake: all
// members prepare epoch N+1, and the commit wave starts only when every
// member acked the prepare. Any straggler aborts the epoch everywhere
// (prepared members drop the staged epoch, committed members roll back),
// so a partial failure leaves every member readable at epoch N and the
// burned epoch number is never reissued. Concurrent Answers are not
// blocked: they keep their pinned snapshots, and a batch that straddles
// the commit wave is caught by the merge epoch check and retried.
func (c *Cluster) UpdateBatch(ctx context.Context, writes []RowWrite) (uint64, error) {
	if err := validateRowWrites(writes, c.rows, c.lanes); err != nil {
		return 0, err
	}
	c.umu.Lock()
	defer c.umu.Unlock()
	ms, ebs, err := c.epochMembers()
	if err != nil {
		return 0, err
	}
	epoch, err := c.Epoch(ctx)
	if err != nil {
		return 0, fmt.Errorf("engine: cluster update refused: %w", err)
	}
	target := epoch + 1
	// Each member stages only the writes for its own row range (the rows
	// its answers can ever read); members whose range the batch does not
	// touch stage an empty write set — an epoch tick, so the whole
	// cluster moves to N+1 in lockstep and the merge check stays sharp.
	perShard := make([][]RowWrite, len(c.shards))
	for _, w := range writes {
		i := 0
		for int(w.Row) >= c.bounds[i+1] {
			i++
		}
		perShard[i] = append(perShard[i], w)
	}
	abortAll := func() {
		// The caller's ctx may already be dead (its deadline may be WHY
		// a phase failed); the rollback must still reach every member.
		actx, acancel := context.WithTimeout(context.WithoutCancel(ctx), abortTimeout)
		defer acancel()
		var wg sync.WaitGroup
		wg.Add(len(ms))
		for i := range ms {
			go func(i int) {
				defer wg.Done()
				_ = ebs[i].AbortUpdate(actx, target) // idempotent; best effort
			}(i)
		}
		wg.Wait()
	}
	if err := c.forAllMembers(ms, ebs, func(i int) error {
		return ebs[i].PrepareUpdate(ctx, target, perShard[ms[i].shard])
	}); err != nil {
		abortAll()
		return 0, fmt.Errorf("engine: cluster update aborted at prepare: %w", err)
	}
	if err := c.forAllMembers(ms, ebs, func(i int) error {
		return ebs[i].CommitUpdate(ctx, target)
	}); err != nil {
		abortAll()
		return 0, fmt.Errorf("engine: cluster update rolled back at commit: %w", err)
	}
	return target, nil
}

// Update implements Backend. When every member supports epoch-versioned
// updates the write goes through UpdateBatch — one atomic epoch across
// the whole cluster, standbys included. Otherwise it falls back to
// routing the write to the shard that serves the row (and its standby, so
// a later failover does not serve the stale value).
func (c *Cluster) Update(row uint64, vals []uint32) error {
	if row >= uint64(c.rows) {
		return fmt.Errorf("engine: update row %d outside table of %d rows", row, c.rows)
	}
	if len(vals) != c.lanes {
		return fmt.Errorf("engine: update has %d lanes, table rows have %d", len(vals), c.lanes)
	}
	if _, _, err := c.epochMembers(); err == nil {
		_, uerr := c.UpdateBatch(context.Background(), []RowWrite{{Row: row, Vals: vals}})
		return uerr
	}
	i := 0
	for int(row) >= c.bounds[i+1] {
		i++
	}
	if err := c.shards[i].Backend.Update(row, vals); err != nil {
		return &ShardError{Shard: i, Name: c.shards[i].Name, Lo: c.bounds[i], Hi: c.bounds[i+1], Err: err}
	}
	if sb := c.shards[i].Standby; sb != nil {
		if err := sb.Update(row, vals); err != nil {
			return &ShardError{Shard: i, Name: c.shards[i].StandbyName, Lo: c.bounds[i], Hi: c.bounds[i+1], Err: err}
		}
	}
	return nil
}

// ValidateKey implements KeyValidator when the member set pins a
// configuration (at least one member reported BackendInfo): the key must
// unmarshal, carry the cluster's party, be scalar, and match the domain's
// tree depth and the pinned early-termination depth — the same checks
// Replica.ValidateKey runs, performed at the cluster front so a bad key
// fails its own request before any network fan-out. Without a pinned
// configuration it accepts everything and leaves rejection to the shards.
func (c *Cluster) ValidateKey(raw []byte) error {
	if !c.pinned {
		return nil
	}
	prefix := func() string {
		return fmt.Sprintf("engine cluster (prg=%s, key wire v%d)", c.prgName, dpf.WireVersion(raw))
	}
	var k dpf.Key
	if err := k.UnmarshalBinary(raw); err != nil {
		return fmt.Errorf("%s: %w", prefix(), err)
	}
	if err := validatePinnedKey(&k, c.party, dpf.DomainBits(c.rows), c.early); err != nil {
		return fmt.Errorf("%s: %w", prefix(), err)
	}
	return nil
}

// PRGName implements BackendInfo when pinned ("" otherwise).
func (c *Cluster) PRGName() string { return c.prgName }

// EarlyBits implements BackendInfo when pinned (0 otherwise).
func (c *Cluster) EarlyBits() int { return c.early }

// Party implements BackendInfo when pinned (0 otherwise).
func (c *Cluster) Party() int { return c.party }

// Pinned reports whether any member exposed its configuration, i.e.
// whether ValidateKey and the BackendInfo accessors are authoritative.
func (c *Cluster) Pinned() bool { return c.pinned }

// Close closes every member backend that is closeable (remote shard
// clients, standbys included); in-process replicas have nothing to close.
func (c *Cluster) Close() error {
	var first error
	for _, m := range c.members() {
		if closer, ok := m.be.(io.Closer); ok {
			if err := closer.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

var _ Backend = (*Cluster)(nil)
var _ KeyValidator = (*Cluster)(nil)
